//===- examples/inspect_groups.cpp - Affinity graph explorer -------------------===//
//
// Dumps any benchmark model's profiling artefacts: the interned contexts,
// the affinity graph (as DOT, Figure 9 style), the groups, and the
// selectors the identification stage derived. Useful for understanding
// why HALO makes the placement decisions it makes.
//
//   ./build/examples/inspect_groups xalanc
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluation.h"

#include <cstdio>
#include <cstring>

using namespace halo;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "povray";
  if (!createWorkload(Name)) {
    std::fprintf(stderr, "unknown benchmark '%s'; choose from:", Name.c_str());
    for (const std::string &Known : workloadNames())
      std::fprintf(stderr, " %s", Known.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  Evaluation Eval(paperSetup(Name));
  const HaloArtifacts &Art = Eval.haloArtifacts();

  std::printf("== %s: profiling artefacts (test input) ==\n", Name.c_str());
  std::printf("accesses analysed: %llu\n",
              (unsigned long long)Art.ProfiledAccesses);
  std::printf("graph: %u nodes / %llu edges after the 90%% filter\n",
              Art.Graph.numNodes(), (unsigned long long)Art.Graph.numEdges());

  std::printf("\ncontexts:\n");
  for (GraphNodeId Node : Art.Graph.nodes())
    std::printf("  ctx %u (%llu accesses): %s\n", Node,
                (unsigned long long)Art.Graph.nodeAccesses(Node),
                Art.Contexts.describe(Node, Eval.program()).c_str());

  std::printf("\ngroups:\n");
  for (size_t G = 0; G < Art.Groups.size(); ++G) {
    std::printf("  group %zu (weight %llu):\n", G,
                (unsigned long long)Art.Groups[G].Weight);
    for (GraphNodeId M : Art.Groups[G].Members)
      std::printf("    %s\n", Art.Contexts.describe(M, Eval.program()).c_str());
    std::printf("    selector: %s\n",
                Art.Identification.Selectors[G].describe(Eval.program()).c_str());
  }
  std::printf("\ninstrumented call sites (%u):\n",
              Art.Plan.numInstrumentedSites());
  for (CallSiteId Site : Art.Plan.sites())
    std::printf("  bit %d: %s\n", Art.Plan.bitFor(Site),
                Eval.program().callSite(Site).Label.c_str());

  std::printf("\nDOT (Figure 9 style):\n%s",
              Art.groupsAsDot(Eval.program()).c_str());
  return 0;
}
