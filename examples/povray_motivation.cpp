//===- examples/povray_motivation.cpp - The paper's Figures 2 and 3 -----------===//
//
// Walks through the paper's motivating example (Section 3): a token-driven
// loop allocates objects of types A, B, and C through a pov_malloc-style
// wrapper; the access loop later touches only A and B. Prints the two heap
// layouts of Figure 3 -- the size-segregated baseline scattering C between
// A and B, and the group allocator's segregated pools -- plus the
// resulting cache behaviour.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "eval/Evaluation.h"
#include "mem/SizeClassAllocator.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <map>

using namespace halo;

int main() {
  // The povray benchmark model *is* the motivating pattern; run its
  // pipeline on the test input.
  Evaluation Eval(paperSetup("povray"));
  const HaloArtifacts &Art = Eval.haloArtifacts();

  std::printf("contexts seen while profiling povray (test input):\n");
  for (ContextId C = 0; C < Art.Contexts.size(); ++C)
    std::printf("  ctx %u: %s (%llu allocations)\n", C,
                Art.Contexts.describe(C, Eval.program()).c_str(),
                (unsigned long long)Art.Contexts.info(C).Allocations);

  std::printf("\ngroups (the paper groups Copy_Plane with Copy_CSG):\n");
  for (size_t G = 0; G < Art.Groups.size(); ++G) {
    std::printf("  group %zu:", G);
    for (GraphNodeId M : Art.Groups[G].Members)
      std::printf(" [%s]", Art.Contexts.describe(M, Eval.program()).c_str());
    std::printf("\n    selector: %s\n",
                Art.Identification.Selectors[G].describe(Eval.program()).c_str());
  }

  // Render the first few objects of each layout like Figure 3: letters by
  // allocation order, positions by address.
  auto Layout = [&](AllocatorKind Kind) {
    // Tag addresses via a fresh profiled run under the chosen allocator.
    // For illustration we re-run the first 24 allocations manually.
    MemoryHierarchy Mem;
    SizeClassAllocator Backing;
    Runtime RT(Eval.program(), Backing);
    std::unique_ptr<SelectorGroupPolicy> Policy;
    std::unique_ptr<GroupAllocator> GA;
    if (Kind == AllocatorKind::Halo) {
      RT.setInstrumentation(&Art.Plan);
      Policy = std::make_unique<SelectorGroupPolicy>(RT.groupState(),
                                                     Art.CompiledSelectors);
      GA = std::make_unique<GroupAllocator>(Backing, *Policy);
      RT.setAllocator(*GA);
    }
    // A B C A B C ... as in Figure 2's token loop.
    const Program &P = Eval.program();
    CallSiteId SMainParse = 0, SPlane = 1, SCsg = 2, STexture = 3,
               SPlanePov = 4, SCsgPov = 5, STexturePov = 6, SPovMalloc = 7;
    std::map<uint64_t, char> ByAddr;
    Runtime::Scope Parse(RT, SMainParse);
    for (int I = 0; I < 8; ++I) {
      {
        Runtime::Scope C(RT, SPlane);
        Runtime::Scope W(RT, SPlanePov);
        ByAddr[RT.malloc(32, SPovMalloc)] = 'A';
      }
      {
        Runtime::Scope C(RT, SCsg);
        Runtime::Scope W(RT, SCsgPov);
        ByAddr[RT.malloc(32, SPovMalloc)] = 'B';
      }
      {
        Runtime::Scope C(RT, STexture);
        Runtime::Scope W(RT, STexturePov);
        ByAddr[RT.malloc(32, SPovMalloc)] = 'C';
      }
    }
    (void)P;
    std::string Picture;
    for (auto &[Addr, Letter] : ByAddr)
      Picture.push_back(Letter);
    return Picture;
  };

  std::printf("\nFigure 3 layouts (objects in address order):\n");
  std::printf("  (a) size-segregated baseline: %s\n",
              Layout(AllocatorKind::Jemalloc).c_str());
  std::printf("  (b) HALO group allocator:     %s\n",
              Layout(AllocatorKind::Halo).c_str());

  // And the measured consequence on the ref input.
  RunMetrics Base = Eval.measure(AllocatorKind::Jemalloc, Scale::Ref, 1);
  RunMetrics Halo = Eval.measure(AllocatorKind::Halo, Scale::Ref, 1);
  std::printf("\nref input: baseline %llu L1D misses, HALO %llu "
              "(%.1f%% reduction); time %+.1f%%\n",
              (unsigned long long)Base.Mem.L1Misses,
              (unsigned long long)Halo.Mem.L1Misses,
              100.0 * (1.0 - double(Halo.Mem.L1Misses) /
                                 double(Base.Mem.L1Misses)),
              100.0 * (Base.Seconds / Halo.Seconds - 1.0));
  std::printf("povray is compute-bound: misses drop, time barely moves "
              "(Section 5.2).\n");
  return 0;
}
