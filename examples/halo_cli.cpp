//===- examples/halo_cli.cpp - Artefact-style command-line driver --------------===//
//
// Mirrors the workflow of the paper's artefact (Appendix A.5): the halo
// tool's `baseline`, `run`, and `plot` commands, which carry out baseline
// and HALO-optimised runs for each workload and plot results. Run output
// is JSON "containing the specific data points for each run" (A.6);
// `plot` renders ASCII bar charts of the Figure 13/14 series. The
// artefact's per-benchmark flags (A.8) are accepted too.
//
//   halo_cli baseline <benchmark> [--trials N] [--jobs N]
//   halo_cli run <benchmark> [--trials N] [--jobs N] [--chunk-size BYTES]
//            [--max-spare-chunks N] [--max-groups N] [--affinity-distance A]
//   halo_cli hds <benchmark> [--trials N] [--jobs N]
//   halo_cli trace <benchmark>       # record an event trace, print counts
//   halo_cli plot [benchmark...] [--trials N] [--jobs N]
//
// Trials are recorded once per seed into an event trace and measured by
// replay, fanned out across --jobs worker threads (default: hardware
// concurrency).
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluation.h"
#include "support/Format.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace halo;

namespace {

struct CliOptions {
  std::string Command;
  std::string Benchmark;
  std::vector<std::string> Benchmarks;
  int Trials = 3;
  int Jobs = 0; ///< 0 = hardware concurrency.
  uint64_t ChunkSize = 0;
  int MaxSpareChunks = -1;
  uint32_t MaxGroups = 0;
  uint64_t AffinityDistance = 0;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: halo_cli <baseline|run|hds|trace> <benchmark> [flags]\n"
      "       halo_cli plot [benchmark...] [flags]\n"
      "flags: --trials N  --jobs N  --chunk-size BYTES  --max-spare-chunks N\n"
      "       --max-groups N  --affinity-distance BYTES\n"
      "benchmarks:");
  for (const std::string &Name : workloadNames())
    std::fprintf(stderr, " %s", Name.c_str());
  std::fprintf(stderr, "\n");
  std::exit(1);
}

[[noreturn]] void usageError(const char *Format, const char *A,
                             const char *B = "") {
  std::fprintf(stderr, "halo_cli: error: ");
  std::fprintf(stderr, Format, A, B);
  std::fprintf(stderr, "\n");
  usage();
}

/// Strict decimal parse: the whole value must be digits and fit
/// [Min, Max] (atoi's silent "--trials x" -> 0, and a narrowing cast's
/// silent "--trials 4294967296" -> 0, are exactly the bugs this forbids).
uint64_t parseUnsigned(const std::string &Flag, const char *Text,
                       uint64_t Min, uint64_t Max = UINT64_MAX) {
  if (*Text == '\0' || !std::isdigit(static_cast<unsigned char>(*Text)))
    usageError("invalid value for %s: '%s' (expected a number)",
               Flag.c_str(), Text);
  errno = 0;
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Text, &End, 10);
  if (*End != '\0')
    usageError("invalid value for %s: '%s' (expected a number)",
               Flag.c_str(), Text);
  if (errno == ERANGE || Value > Max)
    usageError("value for %s out of range: '%s'", Flag.c_str(), Text);
  if (Value < Min)
    usageError("value for %s too small: '%s'", Flag.c_str(), Text);
  return Value;
}

CliOptions parseArgs(int Argc, char **Argv) {
  CliOptions Opts;
  if (Argc < 2)
    usage();
  Opts.Command = Argv[1];
  bool IsPlot = Opts.Command == "plot";
  int I = 2;
  if (!IsPlot) {
    if (Argc < 3 || Argv[2][0] == '-')
      usage();
    Opts.Benchmark = Argv[2];
    I = 3;
  }
  for (; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&]() -> const char * {
      if (I + 1 >= Argc)
        usageError("flag %s expects a value", Arg.c_str());
      return Argv[++I];
    };
    if (Arg == "--trials")
      Opts.Trials =
          static_cast<int>(parseUnsigned(Arg, Value(), /*Min=*/1, INT_MAX));
    else if (Arg == "--jobs")
      Opts.Jobs =
          static_cast<int>(parseUnsigned(Arg, Value(), /*Min=*/1, INT_MAX));
    else if (Arg == "--chunk-size")
      Opts.ChunkSize = parseUnsigned(Arg, Value(), /*Min=*/1);
    else if (Arg == "--max-spare-chunks")
      Opts.MaxSpareChunks = static_cast<int>(
          parseUnsigned(Arg, Value(), /*Min=*/0, INT_MAX));
    else if (Arg == "--max-groups")
      Opts.MaxGroups = static_cast<uint32_t>(
          parseUnsigned(Arg, Value(), /*Min=*/1, UINT32_MAX));
    else if (Arg == "--affinity-distance")
      Opts.AffinityDistance = parseUnsigned(Arg, Value(), /*Min=*/1);
    else if (Arg[0] == '-')
      usageError("unknown flag '%s'", Arg.c_str());
    else if (IsPlot)
      Opts.Benchmarks.push_back(Arg);
    else
      usageError("unexpected argument '%s'", Arg.c_str());
  }
  return Opts;
}

BenchmarkSetup setupFor(const CliOptions &Opts) {
  BenchmarkSetup Setup = paperSetup(Opts.Benchmark);
  if (Opts.ChunkSize) {
    Setup.Halo.Allocator.ChunkSize = Opts.ChunkSize;
    Setup.Hds.Allocator.ChunkSize = Opts.ChunkSize;
  }
  if (Opts.MaxSpareChunks >= 0) {
    Setup.Halo.Allocator.MaxSpareChunks = Opts.MaxSpareChunks;
    Setup.Hds.Allocator.MaxSpareChunks = Opts.MaxSpareChunks;
  }
  if (Opts.MaxGroups)
    Setup.Halo.Grouping.MaxGroups = Opts.MaxGroups;
  if (Opts.AffinityDistance)
    Setup.Halo.Profile.AffinityDistance = Opts.AffinityDistance;
  return Setup;
}

void printRunsJson(const std::string &Benchmark, const std::string &Config,
                   const std::vector<RunMetrics> &Runs) {
  std::printf("{\n  \"benchmark\": \"%s\",\n  \"configuration\": \"%s\",\n"
              "  \"runs\": [\n",
              Benchmark.c_str(), Config.c_str());
  for (size_t I = 0; I < Runs.size(); ++I) {
    const RunMetrics &M = Runs[I];
    std::printf("    {\"seconds\": %.9f, \"cycles\": %llu, "
                "\"l1d_accesses\": %llu, \"l1d_misses\": %llu, "
                "\"l2_misses\": %llu, \"l3_misses\": %llu, "
                "\"tlb_misses\": %llu, \"grouped_allocs\": %llu, "
                "\"forwarded_allocs\": %llu, \"frag_percent\": %.4f, "
                "\"frag_bytes\": %llu}%s\n",
                M.Seconds, (unsigned long long)M.Cycles,
                (unsigned long long)M.Mem.Accesses,
                (unsigned long long)M.Mem.L1Misses,
                (unsigned long long)M.Mem.L2Misses,
                (unsigned long long)M.Mem.L3Misses,
                (unsigned long long)M.Mem.TlbMisses,
                (unsigned long long)M.GroupedAllocs,
                (unsigned long long)M.ForwardedAllocs,
                M.Frag.wastedPercent(),
                (unsigned long long)M.Frag.wastedBytes(),
                I + 1 < Runs.size() ? "," : "");
  }
  std::printf("  ],\n  \"median_seconds\": %.9f,\n"
              "  \"median_l1d_misses\": %.0f\n}\n",
              Evaluation::medianSeconds(Runs),
              Evaluation::medianL1Misses(Runs));
}

void asciiBar(const char *Label, double Percent, double FullScale) {
  int Width = static_cast<int>(40.0 * std::abs(Percent) / FullScale);
  if (Width > 40)
    Width = 40;
  std::printf("  %-10s %+6.2f%% %s%.*s\n", Label, Percent,
              Percent < 0 ? "-" : "", Width,
              "########################################");
}

int runPlot(const CliOptions &Opts) {
  std::vector<std::string> Names =
      Opts.Benchmarks.empty() ? workloadNames() : Opts.Benchmarks;
  std::printf("HALO vs jemalloc (top: L1D miss reduction, bottom: "
              "speedup), %d trial(s)\n\n",
              Opts.Trials);
  for (const std::string &Name : Names) {
    if (!createWorkload(Name)) {
      std::fprintf(stderr, "unknown benchmark '%s'\n", Name.c_str());
      return 1;
    }
    ComparisonRow Row =
        compareTechniques(Name, Opts.Trials, Scale::Ref, Opts.Jobs);
    std::printf("%s\n", Name.c_str());
    asciiBar("hds", Row.HdsMissReduction, 40.0);
    asciiBar("halo", Row.HaloMissReduction, 40.0);
    asciiBar("hds", Row.HdsSpeedup, 40.0);
    asciiBar("halo", Row.HaloSpeedup, 40.0);
  }
  return 0;
}

int runTrace(const CliOptions &Opts) {
  Evaluation Eval(setupFor(Opts));
  const EventTrace &Trace = Eval.trace(Scale::Ref, /*Seed=*/100);
  const TraceCounts &C = Trace.counts();
  std::printf(
      "{\n  \"benchmark\": \"%s\",\n  \"scale\": \"ref\",\n"
      "  \"events\": %llu,\n  \"bytes\": %llu,\n  \"objects\": %llu,\n"
      "  \"bytes_per_event\": %.3f,\n"
      "  \"counts\": {\"calls\": %llu, \"returns\": %llu, \"allocs\": %llu, "
      "\"frees\": %llu,\n             \"loads\": %llu, \"stores\": %llu, "
      "\"raw_loads\": %llu, \"raw_stores\": %llu,\n             "
      "\"computes\": %llu, \"reallocs\": %llu}\n}\n",
      Opts.Benchmark.c_str(), (unsigned long long)Trace.numEvents(),
      (unsigned long long)Trace.byteSize(),
      (unsigned long long)Trace.numObjects(),
      Trace.numEvents()
          ? static_cast<double>(Trace.byteSize()) /
                static_cast<double>(Trace.numEvents())
          : 0.0,
      (unsigned long long)C.Calls, (unsigned long long)C.Returns,
      (unsigned long long)C.Allocs, (unsigned long long)C.Frees,
      (unsigned long long)C.Loads, (unsigned long long)C.Stores,
      (unsigned long long)C.RawLoads, (unsigned long long)C.RawStores,
      (unsigned long long)C.Computes, (unsigned long long)C.Reallocs);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts = parseArgs(Argc, Argv);
  if (Opts.Command == "plot")
    return runPlot(Opts);

  if (!createWorkload(Opts.Benchmark)) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", Opts.Benchmark.c_str());
    return 1;
  }
  if (Opts.Command == "trace")
    return runTrace(Opts);

  Evaluation Eval(setupFor(Opts));
  AllocatorKind Kind;
  if (Opts.Command == "baseline")
    Kind = AllocatorKind::Jemalloc;
  else if (Opts.Command == "run")
    Kind = AllocatorKind::Halo;
  else if (Opts.Command == "hds")
    Kind = AllocatorKind::Hds;
  else
    usage();

  std::vector<RunMetrics> Runs =
      Eval.measureTrials(Kind, Scale::Ref, Opts.Trials, /*SeedBase=*/100,
                         Opts.Jobs);
  printRunsJson(Opts.Benchmark, Opts.Command, Runs);
  return 0;
}
