//===- examples/halo_cli.cpp - Artefact-style command-line driver --------------===//
//
// Mirrors the workflow of the paper's artefact (Appendix A.5): the halo
// tool's `baseline`, `run`, and `plot` commands, which carry out baseline
// and HALO-optimised runs for each workload and plot results. Run output
// is JSON "containing the specific data points for each run" (A.6);
// `plot` renders ASCII bar charts of the Figure 13/14 series. The
// artefact's per-benchmark flags (A.8) are accepted too.
//
//   halo_cli baseline <benchmark> [--trials N] [--jobs N] [--machine NAME]
//   halo_cli run <benchmark> [--trials N] [--jobs N] [--machine NAME]
//            [--chunk-size BYTES] [--max-spare-chunks N] [--max-groups N]
//            [--affinity-distance A]
//   halo_cli hds <benchmark> [--trials N] [--jobs N] [--machine NAME]
//   halo_cli trace <benchmark>       # record an event trace, print counts
//   halo_cli plot [benchmark...] [--trials N] [--jobs N] [--machine NAME]
//   halo_cli machines                # list the machine presets
//   halo_cli sweep [benchmark...] [--trials N] [--jobs N] [--out FILE]
//
// Measurements run on a simulated machine model (sim/Machine.h); --machine
// selects a preset (default: xeon-w2195, the paper's evaluation machine).
// `sweep` measures jemalloc/HDS/HALO on every preset (or just the one
// --machine names) — the recorded traces and pipeline artifacts are
// machine-independent, so each benchmark records once and replays per
// machine — and writes the per-machine rows to BENCH_machines.json.
// Trials are recorded once per seed into an event
// trace and measured by replay, fanned out across --jobs worker threads;
// `plot` additionally shards whole benchmarks across the same pool.
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluation.h"
#include "eval/Report.h"
#include "support/Format.h"
#include "support/Stats.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace halo;

namespace {

struct CliOptions {
  std::string Command;
  std::string Benchmark;
  std::vector<std::string> Benchmarks;
  std::string Machine; ///< Empty = default preset.
  std::string OutPath; ///< sweep: JSON output file ("" = stdout only).
  int Trials = 3;
  int Jobs = 0; ///< 0 = hardware concurrency.
  uint64_t ChunkSize = 0;
  int MaxSpareChunks = -1;
  uint32_t MaxGroups = 0;
  uint64_t AffinityDistance = 0;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: halo_cli <baseline|run|hds|trace> <benchmark> [flags]\n"
      "       halo_cli plot [benchmark...] [flags]\n"
      "       halo_cli sweep [benchmark...] [flags]   # all machines -> JSON\n"
      "       halo_cli machines                       # list machine presets\n"
      "flags: --trials N  --jobs N  --machine NAME  --chunk-size BYTES\n"
      "       --max-spare-chunks N  --max-groups N  --affinity-distance BYTES\n"
      "       --out FILE (sweep)\n"
      "benchmarks:");
  for (const std::string &Name : workloadNames())
    std::fprintf(stderr, " %s", Name.c_str());
  std::fprintf(stderr, "\nmachines:");
  for (const std::string &Name : machineNames())
    std::fprintf(stderr, " %s", Name.c_str());
  std::fprintf(stderr, "\n");
  std::exit(1);
}

[[noreturn]] void usageError(const char *Format, const char *A,
                             const char *B = "") {
  std::fprintf(stderr, "halo_cli: error: ");
  std::fprintf(stderr, Format, A, B);
  std::fprintf(stderr, "\n");
  usage();
}

/// Strict decimal parse: the whole value must be digits and fit
/// [Min, Max] (atoi's silent "--trials x" -> 0, and a narrowing cast's
/// silent "--trials 4294967296" -> 0, are exactly the bugs this forbids).
uint64_t parseUnsigned(const std::string &Flag, const char *Text,
                       uint64_t Min, uint64_t Max = UINT64_MAX) {
  if (*Text == '\0' || !std::isdigit(static_cast<unsigned char>(*Text)))
    usageError("invalid value for %s: '%s' (expected a number)",
               Flag.c_str(), Text);
  errno = 0;
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Text, &End, 10);
  if (*End != '\0')
    usageError("invalid value for %s: '%s' (expected a number)",
               Flag.c_str(), Text);
  if (errno == ERANGE || Value > Max)
    usageError("value for %s out of range: '%s'", Flag.c_str(), Text);
  if (Value < Min)
    usageError("value for %s too small: '%s'", Flag.c_str(), Text);
  return Value;
}

/// The one --jobs handler, shared by every subcommand: a strict numeric
/// worker count, where 0 explicitly requests the "pick for me" default.
/// What that default means -- hardware concurrency, never less than one
/// -- is decided in exactly one place, halo::resolveJobs
/// (support/Executor.h), which every parallel path in the library
/// consults too.
int parseJobs(const std::string &Flag, const char *Text) {
  return static_cast<int>(parseUnsigned(Flag, Text, /*Min=*/0, INT_MAX));
}

CliOptions parseArgs(int Argc, char **Argv) {
  CliOptions Opts;
  if (Argc < 2)
    usage();
  Opts.Command = Argv[1];
  bool ListCommand = Opts.Command == "plot" || Opts.Command == "sweep" ||
                     Opts.Command == "machines";
  int I = 2;
  if (!ListCommand) {
    if (Argc < 3 || Argv[2][0] == '-')
      usage();
    Opts.Benchmark = Argv[2];
    I = 3;
  }
  for (; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&]() -> const char * {
      if (I + 1 >= Argc)
        usageError("flag %s expects a value", Arg.c_str());
      return Argv[++I];
    };
    if (Arg == "--trials")
      Opts.Trials =
          static_cast<int>(parseUnsigned(Arg, Value(), /*Min=*/1, INT_MAX));
    else if (Arg == "--jobs")
      Opts.Jobs = parseJobs(Arg, Value());
    else if (Arg == "--machine") {
      Opts.Machine = Value();
      if (!findMachine(Opts.Machine)) {
        std::string Known;
        for (const std::string &Name : machineNames())
          Known += (Known.empty() ? "" : " ") + Name;
        usageError("unknown machine '%s' (available: %s)",
                   Opts.Machine.c_str(), Known.c_str());
      }
    } else if (Arg == "--out")
      Opts.OutPath = Value();
    else if (Arg == "--chunk-size")
      Opts.ChunkSize = parseUnsigned(Arg, Value(), /*Min=*/1);
    else if (Arg == "--max-spare-chunks")
      Opts.MaxSpareChunks = static_cast<int>(
          parseUnsigned(Arg, Value(), /*Min=*/0, INT_MAX));
    else if (Arg == "--max-groups")
      Opts.MaxGroups = static_cast<uint32_t>(
          parseUnsigned(Arg, Value(), /*Min=*/1, UINT32_MAX));
    else if (Arg == "--affinity-distance")
      Opts.AffinityDistance = parseUnsigned(Arg, Value(), /*Min=*/1);
    else if (Arg[0] == '-')
      usageError("unknown flag '%s'", Arg.c_str());
    else if (ListCommand && Opts.Command != "machines")
      Opts.Benchmarks.push_back(Arg);
    else
      usageError("unexpected argument '%s'", Arg.c_str());
  }
  if (!Opts.OutPath.empty() && Opts.Command != "sweep")
    usageError("--out is only valid with the sweep command%s", "");
  return Opts;
}

/// The machine the options name (parseArgs already rejected unknown names).
const MachineConfig &machineFor(const CliOptions &Opts) {
  if (Opts.Machine.empty())
    return defaultMachine();
  return *findMachine(Opts.Machine);
}

BenchmarkSetup setupFor(const CliOptions &Opts,
                        const std::string &Benchmark) {
  BenchmarkSetup Setup = paperSetup(Benchmark);
  Setup.Machine = machineFor(Opts);
  if (Opts.ChunkSize) {
    Setup.Halo.Allocator.ChunkSize = Opts.ChunkSize;
    Setup.Hds.Allocator.ChunkSize = Opts.ChunkSize;
  }
  if (Opts.MaxSpareChunks >= 0) {
    Setup.Halo.Allocator.MaxSpareChunks = Opts.MaxSpareChunks;
    Setup.Hds.Allocator.MaxSpareChunks = Opts.MaxSpareChunks;
  }
  if (Opts.MaxGroups)
    Setup.Halo.Grouping.MaxGroups = Opts.MaxGroups;
  if (Opts.AffinityDistance)
    Setup.Halo.Profile.AffinityDistance = Opts.AffinityDistance;
  return Setup;
}

BenchmarkSetup setupFor(const CliOptions &Opts) {
  return setupFor(Opts, Opts.Benchmark);
}

void printRunsJson(const std::string &Benchmark, const std::string &Config,
                   const std::vector<RunMetrics> &Runs) {
  std::printf("{\n  \"benchmark\": \"%s\",\n  \"configuration\": \"%s\",\n"
              "  \"runs\": [\n",
              Benchmark.c_str(), Config.c_str());
  for (size_t I = 0; I < Runs.size(); ++I) {
    const RunMetrics &M = Runs[I];
    std::printf("    {\"seconds\": %.9f, \"cycles\": %llu, "
                "\"l1d_accesses\": %llu, \"l1d_misses\": %llu, "
                "\"l2_misses\": %llu, \"l3_misses\": %llu, "
                "\"tlb_misses\": %llu, \"grouped_allocs\": %llu, "
                "\"forwarded_allocs\": %llu, \"frag_percent\": %.4f, "
                "\"frag_bytes\": %llu}%s\n",
                M.Seconds, (unsigned long long)M.Cycles,
                (unsigned long long)M.Mem.Accesses,
                (unsigned long long)M.Mem.L1Misses,
                (unsigned long long)M.Mem.L2Misses,
                (unsigned long long)M.Mem.L3Misses,
                (unsigned long long)M.Mem.TlbMisses,
                (unsigned long long)M.GroupedAllocs,
                (unsigned long long)M.ForwardedAllocs,
                M.Frag.wastedPercent(),
                (unsigned long long)M.Frag.wastedBytes(),
                I + 1 < Runs.size() ? "," : "");
  }
  std::printf("  ],\n  \"median_seconds\": %.9f,\n"
              "  \"median_l1d_misses\": %.0f\n}\n",
              Evaluation::medianSeconds(Runs),
              Evaluation::medianL1Misses(Runs));
}

void asciiBar(const char *Label, double Percent, double FullScale) {
  int Width = static_cast<int>(40.0 * std::abs(Percent) / FullScale);
  if (Width > 40)
    Width = 40;
  std::printf("  %-10s %+6.2f%% %s%.*s\n", Label, Percent,
              Percent < 0 ? "-" : "", Width,
              "########################################");
}

/// Expands the requested benchmark list (empty = all) and validates names.
std::vector<std::string> benchmarkList(const CliOptions &Opts) {
  std::vector<std::string> Names =
      Opts.Benchmarks.empty() ? workloadNames() : Opts.Benchmarks;
  for (const std::string &Name : Names)
    if (!createWorkload(Name))
      usageError("unknown benchmark '%s'", Name.c_str());
  return Names;
}

int runPlot(const CliOptions &Opts) {
  std::vector<std::string> Names = benchmarkList(Opts);
  const MachineConfig &M = machineFor(Opts);
  std::printf("HALO vs jemalloc on %s (top: L1D miss reduction, bottom: "
              "speedup), %d trial(s)\n\n",
              M.Name.c_str(), Opts.Trials);
  // Whole benchmarks are sharded across the worker pool; rows come back in
  // request order and bit-identical to a serial run.
  std::vector<ComparisonRow> Rows =
      compareAcrossBenchmarks(Names, Opts.Trials, Scale::Ref, Opts.Jobs, M);
  for (const ComparisonRow &Row : Rows) {
    std::printf("%s\n", Row.Benchmark.c_str());
    asciiBar("hds", Row.HdsMissReduction, 40.0);
    asciiBar("halo", Row.HaloMissReduction, 40.0);
    asciiBar("hds", Row.HdsSpeedup, 40.0);
    asciiBar("halo", Row.HaloSpeedup, 40.0);
  }
  return 0;
}

int runMachines() {
  Report Table("Machine presets (sim/Machine.h)");
  Table.setColumns({"machine", "geometry", "lat L1/L2/L3/mem/TLB",
                    "description"});
  for (const MachineConfig &M : machinePresets()) {
    const LatencyModel &Lat = M.Hierarchy.Latency;
    char LatBuf[64];
    std::snprintf(LatBuf, sizeof(LatBuf), "%u/%u/%u/%u/%u", Lat.L1Hit,
                  Lat.L2Hit, Lat.L3Hit, Lat.Memory, Lat.TlbMiss);
    Table.addRow({M.Name, M.summary(), LatBuf, M.Description});
  }
  Table.addNote("default: " + defaultMachine().Name +
                " (the paper's evaluation machine)");
  Table.print();
  return 0;
}

/// One BENCH_machines.json row: a (benchmark, machine, allocator kind)
/// cell of the cross-machine sweep.
struct SweepRow {
  std::string Bench;
  std::string Machine;
  std::string Kind;
  double WallMs;  ///< Median simulated run time on that machine, in ms.
  int Trials;
  double L1dMisses; ///< Median per-run L1D misses.
  double TlbMisses; ///< Median per-run dTLB misses.
  double SpeedupPercent; ///< vs jemalloc on the same machine (0 for it).
};

void writeSweepJson(const std::string &Path,
                    const std::vector<SweepRow> &Rows) {
  FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "halo_cli: cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  std::fputs("[\n", Out);
  for (size_t I = 0; I < Rows.size(); ++I) {
    const SweepRow &R = Rows[I];
    std::fprintf(Out,
                 "  {\"bench\": \"%s\", \"machine\": \"%s\", "
                 "\"kind\": \"%s\", \"wall_ms\": %.6f, \"trials\": %d, "
                 "\"l1d_misses\": %.0f, \"tlb_misses\": %.0f, "
                 "\"speedup_percent\": %.4f}%s\n",
                 R.Bench.c_str(), R.Machine.c_str(), R.Kind.c_str(),
                 R.WallMs, R.Trials, R.L1dMisses, R.TlbMisses,
                 R.SpeedupPercent, I + 1 < Rows.size() ? "," : "");
  }
  std::fputs("]\n", Out);
  std::fclose(Out);
}

int runSweep(const CliOptions &Opts) {
  std::vector<std::string> Names = benchmarkList(Opts);
  // Default: every preset; --machine narrows the sweep to one.
  std::vector<const MachineConfig *> Machines;
  if (Opts.Machine.empty())
    for (const MachineConfig &M : machinePresets())
      Machines.push_back(&M);
  else
    Machines.push_back(&machineFor(Opts));
  std::vector<SweepRow> Rows;

  Report Table("Cross-machine sweep: median run time / misses per machine");
  Table.setColumns({"bench", "machine", "kind", "wall_ms", "l1d_misses",
                    "tlb_misses", "speedup%"});

  auto KindName = [](AllocatorKind Kind) {
    switch (Kind) {
    case AllocatorKind::Jemalloc:
      return "jemalloc";
    case AllocatorKind::Hds:
      return "hds";
    case AllocatorKind::Halo:
      return "halo";
    default:
      return "?";
    }
  };

  for (const std::string &Name : Names) {
    // One Evaluation per benchmark: traces and pipeline artifacts are
    // machine-independent, so every machine replays the same per-seed
    // recordings and shares one profiling pass. sweepMachines fans the
    // per-machine loop (and trial fan-out inside it) across the worker
    // pool; cells come back machine-major in preset order, bit-identical
    // to a serial sweep.
    Evaluation Eval(setupFor(Opts, Name));
    std::vector<SweepCell> Cells = sweepMachines(
        Eval, Machines, Opts.Trials, Scale::Ref, /*SeedBase=*/100,
        Opts.Jobs);
    // speedup% compares each cell against its machine's jemalloc cell;
    // identified by Kind, not by position, so the cell layout is free to
    // change without mislabelling rows.
    std::map<const MachineConfig *, double> BaselineSeconds;
    for (const SweepCell &Cell : Cells)
      if (Cell.Kind == AllocatorKind::Jemalloc)
        BaselineSeconds[Cell.Machine] = Evaluation::medianSeconds(Cell.Runs);
    for (const SweepCell &Cell : Cells) {
      double Seconds = Evaluation::medianSeconds(Cell.Runs);
      SweepRow Row;
      Row.Bench = Name;
      Row.Machine = Cell.Machine->Name;
      Row.Kind = KindName(Cell.Kind);
      Row.WallMs = Seconds * 1e3;
      Row.Trials = Opts.Trials;
      Row.L1dMisses = Evaluation::medianL1Misses(Cell.Runs);
      Row.TlbMisses = Evaluation::medianTlbMisses(Cell.Runs);
      Row.SpeedupPercent =
          Cell.Kind == AllocatorKind::Jemalloc
              ? 0.0
              : percentImprovement(BaselineSeconds.at(Cell.Machine),
                                   Seconds);
      Table.addRow({Row.Bench, Row.Machine, Row.Kind,
                    formatDouble(Row.WallMs, 3),
                    formatDouble(Row.L1dMisses, 0),
                    formatDouble(Row.TlbMisses, 0),
                    formatDouble(Row.SpeedupPercent, 2)});
      Rows.push_back(std::move(Row));
    }
  }

  Table.addNote("wall_ms: median simulated run time on that machine; "
                "speedup%: vs jemalloc on the same machine");
  Table.print();
  if (!Opts.OutPath.empty()) {
    writeSweepJson(Opts.OutPath, Rows);
    std::printf("wrote %s (%zu rows)\n", Opts.OutPath.c_str(), Rows.size());
  }
  return 0;
}

int runTrace(const CliOptions &Opts) {
  Evaluation Eval(setupFor(Opts));
  const EventTrace &Trace = Eval.trace(Scale::Ref, /*Seed=*/100);
  const TraceCounts &C = Trace.counts();
  std::printf(
      "{\n  \"benchmark\": \"%s\",\n  \"scale\": \"ref\",\n"
      "  \"events\": %llu,\n  \"bytes\": %llu,\n  \"objects\": %llu,\n"
      "  \"bytes_per_event\": %.3f,\n"
      "  \"counts\": {\"calls\": %llu, \"returns\": %llu, \"allocs\": %llu, "
      "\"frees\": %llu,\n             \"loads\": %llu, \"stores\": %llu, "
      "\"raw_loads\": %llu, \"raw_stores\": %llu,\n             "
      "\"computes\": %llu, \"reallocs\": %llu}\n}\n",
      Opts.Benchmark.c_str(), (unsigned long long)Trace.numEvents(),
      (unsigned long long)Trace.byteSize(),
      (unsigned long long)Trace.numObjects(),
      Trace.numEvents()
          ? static_cast<double>(Trace.byteSize()) /
                static_cast<double>(Trace.numEvents())
          : 0.0,
      (unsigned long long)C.Calls, (unsigned long long)C.Returns,
      (unsigned long long)C.Allocs, (unsigned long long)C.Frees,
      (unsigned long long)C.Loads, (unsigned long long)C.Stores,
      (unsigned long long)C.RawLoads, (unsigned long long)C.RawStores,
      (unsigned long long)C.Computes, (unsigned long long)C.Reallocs);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts = parseArgs(Argc, Argv);
  if (Opts.Command == "machines")
    return runMachines();
  if (Opts.Command == "plot")
    return runPlot(Opts);
  if (Opts.Command == "sweep")
    return runSweep(Opts);

  if (!createWorkload(Opts.Benchmark)) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", Opts.Benchmark.c_str());
    return 1;
  }
  if (Opts.Command == "trace")
    return runTrace(Opts);

  Evaluation Eval(setupFor(Opts));
  AllocatorKind Kind;
  if (Opts.Command == "baseline")
    Kind = AllocatorKind::Jemalloc;
  else if (Opts.Command == "run")
    Kind = AllocatorKind::Halo;
  else if (Opts.Command == "hds")
    Kind = AllocatorKind::Hds;
  else
    usage();

  std::vector<RunMetrics> Runs =
      Eval.measureTrials(Kind, Scale::Ref, Opts.Trials, /*SeedBase=*/100,
                         Opts.Jobs);
  printRunsJson(Opts.Benchmark, Opts.Command, Runs);
  return 0;
}
