//===- examples/halo_cli.cpp - Artefact-style command-line driver --------------===//
//
// Mirrors the workflow of the paper's artefact (Appendix A.5): the halo
// tool's `baseline`, `run`, and `plot` commands, which carry out baseline
// and HALO-optimised runs for each workload and plot results. Run output
// is JSON "containing the specific data points for each run" (A.6);
// `plot` renders ASCII bar charts of the Figure 13/14 series. The
// artefact's per-benchmark flags (A.8) are accepted too.
//
//   halo_cli baseline <benchmark> [--trials N] [--jobs N] [--machine NAME]
//   halo_cli run <benchmark> [--trials N] [--jobs N] [--machine NAME]
//            [--chunk-size BYTES] [--max-spare-chunks N] [--max-groups N]
//            [--affinity-distance A]
//   halo_cli hds <benchmark> [--trials N] [--jobs N] [--machine NAME]
//   halo_cli trace <benchmark>       # record an event trace, print counts
//   halo_cli plot [benchmark...] [--trials N] [--jobs N] [--machine NAME]
//   halo_cli machines                # list the machine presets
//   halo_cli sweep [benchmark...] [--trials N] [--jobs N] [--out FILE]
//   halo_cli experiments [benchmark...] [--machines NAME,...|all]
//            [--kinds KIND,...] [--scale test|ref] [--seed-base N]
//            [--trials N] [--jobs N] [--out FILE]
//   halo_cli store <ls|gc|verify> [--store-dir DIR]
//   halo_cli serve --socket PATH [--jobs N] [--store-dir DIR]
//   halo_cli client <run|stats|shutdown> [benchmark...] --socket PATH
//
// `serve` runs the plan daemon (serve/Server.h): one warm Executor pool,
// one open artifact store, and every benchmark's Evaluation cached across
// requests; `client run` submits the same matrix `experiments` takes and
// streams the cells back as they complete, writing (with --out) the very
// JSON document a local `experiments --out` would -- byte-identical, the
// "served = local" contract.
//
// --store-dir DIR (or $HALO_STORE) attaches a content-addressed artifact
// store (store/ArtifactStore.h) to the measuring subcommands: recordings
// and pipeline artifacts hit in the store load instead of re-running, and
// cold results publish for the next invocation. Warm results are
// bit-identical to cold ones. `store ls` lists entries, `store verify`
// exits non-zero if any entry is corrupt, `store gc` removes corrupt
// entries and abandoned temp files.
//
// Measurements run on a simulated machine model (sim/Machine.h); --machine
// selects a preset (default: xeon-w2195, the paper's evaluation machine).
// Every measuring subcommand expands to an ExperimentSpec and executes
// through the one plan scheduler (eval/Experiment.h): traces record once
// per (benchmark, scale, seed), pipeline artifacts materialise once per
// benchmark, and the requested cells replay across --jobs workers at
// benchmark x machine x kind x trial granularity -- or, when there are
// fewer cells than workers (--replay-mode auto) or on request
// (--replay-mode sharded), across shards within each trace, so a single
// run/baseline/hds cell fans out too. `sweep` measures
// jemalloc/HDS/HALO on every preset (or just the one --machine names) and
// writes the per-machine rows to BENCH_machines.json; `experiments` takes
// the full matrix spec -- lists of benchmarks, machines, and allocator
// kinds -- and writes the unified JSON keyed by the full measurement key.
// --out redirects any JSON-emitting subcommand's document to a file.
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluation.h"
#include "eval/Experiment.h"
#include "eval/Report.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "store/ArtifactStore.h"
#include "support/Executor.h"
#include "support/Format.h"
#include "support/Stats.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace halo;

namespace {

struct CliOptions {
  std::string Command;
  std::string Benchmark;
  std::vector<std::string> Benchmarks;
  std::string Machine; ///< Empty = default preset.
  std::vector<std::string> MachineList; ///< experiments: --machines.
  std::vector<std::string> KindList;    ///< experiments: --kinds.
  Scale S = Scale::Ref;                 ///< experiments: --scale.
  uint64_t SeedBase = 100;              ///< experiments: --seed-base.
  bool SawScale = false;                ///< --scale given explicitly.
  bool SawSeedBase = false;             ///< --seed-base given explicitly.
  std::string OutPath; ///< JSON output file ("" = stdout).
  std::string StoreVerb; ///< store: ls / gc / verify.
  std::string StoreDir;  ///< --store-dir ("" = $HALO_STORE or off).
  std::string ClientVerb; ///< client: run / stats / shutdown.
  std::string SocketPath; ///< --socket (serve / client).
  ReplayMode Mode = ReplayMode::Auto; ///< --replay-mode.
  bool SawReplayMode = false;         ///< --replay-mode given explicitly.
  TraceMode Traces = TraceMode::Auto; ///< --trace-mode.
  bool SawTraceMode = false;          ///< --trace-mode given explicitly.
  std::string TraceFile; ///< trace info: the file to inspect.
  std::string SavePath;  ///< trace --save: stream the recording here.
  int Trials = 3;
  int Jobs = 0; ///< 0 = hardware concurrency.
  uint64_t ChunkSize = 0;
  int MaxSpareChunks = -1;
  uint32_t MaxGroups = 0;
  uint64_t AffinityDistance = 0;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: halo_cli <baseline|run|hds|trace> <benchmark> [flags]\n"
      "       halo_cli trace <benchmark> --save FILE  # stream trace to disk\n"
      "       halo_cli trace info <FILE>              # inspect an on-disk trace\n"
      "       halo_cli plot [benchmark...] [flags]\n"
      "       halo_cli sweep [benchmark...] [flags]   # all machines -> JSON\n"
      "       halo_cli experiments [benchmark...] [flags]  # matrix -> JSON\n"
      "       halo_cli machines                       # list machine presets\n"
      "       halo_cli store <ls|gc|verify> [--store-dir DIR]\n"
      "       halo_cli serve --socket PATH [--jobs N] [--store-dir DIR]\n"
      "       halo_cli client run [benchmark...] --socket PATH [flags]\n"
      "       halo_cli client <stats|shutdown> --socket PATH\n"
      "flags: --trials N  --jobs N  --machine NAME  --chunk-size BYTES\n"
      "       --max-spare-chunks N  --max-groups N  --affinity-distance BYTES\n"
      "       --out FILE (any JSON-emitting command)\n"
      "       --replay-mode auto|serial|sharded: how --jobs workers split a\n"
      "         replay -- across cells, or across shards within each trace\n"
      "         (auto shards when cells alone would leave workers idle, so\n"
      "         single-cell baseline/run/hds fan out too; results are\n"
      "         bit-identical either way)\n"
      "       --trace-mode auto|memory|mapped: how measurement traces are\n"
      "         held -- in RAM (memory, the oracle), or recorded streaming\n"
      "         to disk and replayed mmap'd block by block in bounded\n"
      "         memory (mapped); auto maps only large stored traces.\n"
      "         Metrics are bit-identical under every mode\n"
      "       --machines NAME[,NAME...]|all  --kinds KIND[,KIND...]\n"
      "       --scale test|ref  --seed-base N  (experiments)\n"
      "       --store-dir DIR (or $HALO_STORE): content-addressed cache of\n"
      "         recordings + pipeline artifacts (baseline/run/hds/sweep/\n"
      "         experiments/store/serve)\n"
      "       --socket PATH: the Unix-domain socket serve listens on and\n"
      "         client connects to. client run takes the experiments\n"
      "         matrix flags (--machines --kinds --scale --seed-base\n"
      "         --trials --out) and streams cells as the daemon finishes\n"
      "         them; with --out the JSON is byte-identical to a local\n"
      "         `experiments --out` of the same matrix\n"
      "benchmarks:");
  for (const std::string &Name : workloadNames())
    std::fprintf(stderr, " %s", Name.c_str());
  std::fprintf(stderr, "\nmachines:");
  for (const std::string &Name : machineNames())
    std::fprintf(stderr, " %s", Name.c_str());
  std::fprintf(stderr, "\nkinds:");
  for (AllocatorKind Kind : allAllocatorKinds())
    std::fprintf(stderr, " %s", allocatorKindName(Kind));
  std::fprintf(stderr, "\n");
  std::exit(1);
}

[[noreturn]] void usageError(const std::string &Message) {
  std::fprintf(stderr, "halo_cli: error: %s\n", Message.c_str());
  usage();
}

/// Space-joined machine preset names for error messages.
std::string knownMachines() {
  std::string Known;
  for (const std::string &Name : machineNames())
    Known += (Known.empty() ? "" : " ") + Name;
  return Known;
}

/// Space-joined allocator kind names for error messages.
std::string knownKinds() {
  std::string Known;
  for (AllocatorKind Kind : allAllocatorKinds())
    Known += (Known.empty() ? "" : " ") + std::string(allocatorKindName(Kind));
  return Known;
}

/// Strict argument cursor shared by every subcommand's flag handling:
/// yields arguments in order and owns the error-checked value parsing --
/// raw values, bounded numbers, worker counts, machine names, comma
/// lists -- so each new subcommand composes its flags from these helpers
/// instead of re-rolling the parse loop.
class FlagParser {
public:
  FlagParser(int Argc, char **Argv, int First)
      : Argc(Argc), Argv(Argv), I(First) {}

  bool done() const { return I >= Argc; }
  std::string next() { return Argv[I++]; }

  /// The raw value following flag \p Flag; errors if none is left.
  const char *value(const std::string &Flag) {
    if (I >= Argc)
      usageError("flag " + Flag + " expects a value");
    return Argv[I++];
  }

  /// Strict decimal parse: the whole value must be digits and fit
  /// [Min, Max] (atoi's silent "--trials x" -> 0, and a narrowing cast's
  /// silent "--trials 4294967296" -> 0, are exactly the bugs this
  /// forbids).
  uint64_t unsignedValue(const std::string &Flag, uint64_t Min,
                         uint64_t Max = UINT64_MAX) {
    const char *Text = value(Flag);
    if (*Text == '\0' || !std::isdigit(static_cast<unsigned char>(*Text)))
      usageError("invalid value for " + Flag + ": '" + Text +
                 "' (expected a number)");
    errno = 0;
    char *End = nullptr;
    unsigned long long Parsed = std::strtoull(Text, &End, 10);
    if (*End != '\0')
      usageError("invalid value for " + Flag + ": '" + Text +
                 "' (expected a number)");
    if (errno == ERANGE || Parsed > Max)
      usageError("value for " + Flag + " out of range: '" + Text + "'");
    if (Parsed < Min)
      usageError("value for " + Flag + " too small: '" + Text + "'");
    return Parsed;
  }

  /// The one --jobs handler: a strict numeric worker count, where 0
  /// explicitly requests the "pick for me" default. What that default
  /// means -- hardware concurrency, never less than one -- is decided in
  /// exactly one place, halo::resolveJobs (support/Executor.h), which
  /// every parallel path in the library consults too.
  int jobsValue(const std::string &Flag) {
    return static_cast<int>(unsignedValue(Flag, /*Min=*/0, INT_MAX));
  }

  /// A validated machine-preset lookup, listing the presets on error.
  const MachineConfig *machineValue(const std::string &Flag) {
    std::string Name = value(Flag);
    const MachineConfig *Machine = findMachine(Name);
    if (!Machine)
      usageError("unknown machine '" + Name + "' for " + Flag +
                 " (available: " + knownMachines() + ")");
    return Machine;
  }

  /// A comma-separated list; empty items are rejected.
  std::vector<std::string> listValue(const std::string &Flag) {
    std::string Text = value(Flag);
    std::vector<std::string> Items;
    size_t Start = 0;
    while (Start <= Text.size()) {
      size_t Comma = Text.find(',', Start);
      if (Comma == std::string::npos)
        Comma = Text.size();
      if (Comma == Start)
        usageError("empty item in " + Flag + " list '" + Text + "'");
      Items.push_back(Text.substr(Start, Comma - Start));
      Start = Comma + 1;
    }
    return Items;
  }

private:
  int Argc;
  char **Argv;
  int I;
};

/// True when the invocation writes a JSON document (and thus honours
/// --out). For store and client the verb decides: `store ls --out` emits
/// the entry listing as JSON, `client run --out` the experiments
/// document.
bool emitsJson(const CliOptions &Opts) {
  return Opts.Command == "baseline" || Opts.Command == "run" ||
         Opts.Command == "hds" || Opts.Command == "trace" ||
         Opts.Command == "sweep" || Opts.Command == "experiments" ||
         (Opts.Command == "store" && Opts.StoreVerb == "ls") ||
         (Opts.Command == "client" && Opts.ClientVerb == "run");
}

CliOptions parseArgs(int Argc, char **Argv) {
  CliOptions Opts;
  if (Argc < 2)
    usage();
  Opts.Command = Argv[1];
  bool ListCommand = Opts.Command == "plot" || Opts.Command == "sweep" ||
                     Opts.Command == "experiments" ||
                     Opts.Command == "machines" || Opts.Command == "serve";
  int First = 2;
  if (Opts.Command == "client") {
    // The verb comes first; any later positionals are benchmarks
    // (meaningful for `client run` only, validated below).
    if (Argc < 3 || Argv[2][0] == '-')
      usage();
    Opts.ClientVerb = Argv[2];
    First = 3;
    ListCommand = true;
  } else if (!ListCommand) {
    if (Argc < 3 || Argv[2][0] == '-')
      usage();
    Opts.Benchmark = Argv[2];
    First = 3;
  }
  FlagParser Args(Argc, Argv, First);
  while (!Args.done()) {
    std::string Arg = Args.next();
    if (Arg == "--trials")
      Opts.Trials =
          static_cast<int>(Args.unsignedValue(Arg, /*Min=*/1, INT_MAX));
    else if (Arg == "--jobs")
      Opts.Jobs = Args.jobsValue(Arg);
    else if (Arg == "--machine")
      Opts.Machine = Args.machineValue(Arg)->Name;
    else if (Arg == "--machines")
      Opts.MachineList = Args.listValue(Arg);
    else if (Arg == "--kinds")
      Opts.KindList = Args.listValue(Arg);
    else if (Arg == "--scale") {
      std::string Name = Args.value(Arg);
      std::optional<Scale> S = parseScale(Name);
      if (!S)
        usageError("unknown scale '" + Name + "' for " + Arg +
                   " (available: test ref)");
      Opts.S = *S;
      Opts.SawScale = true;
    } else if (Arg == "--seed-base") {
      Opts.SeedBase = Args.unsignedValue(Arg, /*Min=*/0);
      Opts.SawSeedBase = true;
    }
    else if (Arg == "--replay-mode") {
      std::string Name = Args.value(Arg);
      if (!parseReplayMode(Name, Opts.Mode))
        usageError("unknown replay mode '" + Name + "' for " + Arg +
                   " (available: auto serial sharded)");
      Opts.SawReplayMode = true;
    }
    else if (Arg == "--trace-mode") {
      std::string Name = Args.value(Arg);
      std::optional<TraceMode> M = parseTraceMode(Name);
      if (!M)
        usageError("unknown trace mode '" + Name + "' for " + Arg +
                   " (available: auto memory mapped)");
      Opts.Traces = *M;
      Opts.SawTraceMode = true;
    }
    else if (Arg == "--socket")
      Opts.SocketPath = Args.value(Arg);
    else if (Arg == "--save")
      Opts.SavePath = Args.value(Arg);
    else if (Arg == "--out")
      Opts.OutPath = Args.value(Arg);
    else if (Arg == "--store-dir")
      Opts.StoreDir = Args.value(Arg);
    else if (Arg == "--chunk-size")
      Opts.ChunkSize = Args.unsignedValue(Arg, /*Min=*/1);
    else if (Arg == "--max-spare-chunks")
      Opts.MaxSpareChunks =
          static_cast<int>(Args.unsignedValue(Arg, /*Min=*/0, INT_MAX));
    else if (Arg == "--max-groups")
      Opts.MaxGroups = static_cast<uint32_t>(
          Args.unsignedValue(Arg, /*Min=*/1, UINT32_MAX));
    else if (Arg == "--affinity-distance")
      Opts.AffinityDistance = Args.unsignedValue(Arg, /*Min=*/1);
    else if (Arg[0] == '-')
      usageError("unknown flag '" + Arg + "'");
    else if (ListCommand && Opts.Command != "machines")
      Opts.Benchmarks.push_back(Arg);
    else if (Opts.Command == "trace" && Opts.Benchmark == "info" &&
             Opts.TraceFile.empty())
      Opts.TraceFile = Arg;
    else
      usageError("unexpected argument '" + Arg + "'");
  }
  if (Opts.Command == "store") {
    // The verb parsed into the benchmark slot; validate it strictly.
    Opts.StoreVerb = Opts.Benchmark;
    Opts.Benchmark.clear();
    if (Opts.StoreVerb != "ls" && Opts.StoreVerb != "gc" &&
        Opts.StoreVerb != "verify")
      usageError("unknown store verb '" + Opts.StoreVerb +
                 "' (available: ls gc verify)");
  }
  if (Opts.Command == "client") {
    if (Opts.ClientVerb != "run" && Opts.ClientVerb != "stats" &&
        Opts.ClientVerb != "shutdown")
      usageError("unknown client verb '" + Opts.ClientVerb +
                 "' (available: run stats shutdown)");
    if (Opts.ClientVerb != "run" && !Opts.Benchmarks.empty())
      usageError("client " + Opts.ClientVerb + " takes no benchmarks");
  }
  if ((Opts.Command == "serve" || Opts.Command == "client") &&
      Opts.SocketPath.empty())
    usageError(Opts.Command + " needs --socket PATH");
  if (!Opts.SocketPath.empty() && Opts.Command != "serve" &&
      Opts.Command != "client")
    usageError("--socket is only valid with the serve and client commands");
  if (!Opts.OutPath.empty() && !emitsJson(Opts))
    usageError("--out is not supported by the " + Opts.Command +
               " command (it emits no JSON)");
  if (Opts.SawReplayMode && Opts.Command != "baseline" &&
      Opts.Command != "run" && Opts.Command != "hds" &&
      Opts.Command != "sweep" && Opts.Command != "experiments")
    usageError("--replay-mode is only valid with the measuring commands "
               "(baseline run hds sweep experiments)");
  if (Opts.SawTraceMode && Opts.Command != "baseline" &&
      Opts.Command != "run" && Opts.Command != "hds" &&
      Opts.Command != "sweep" && Opts.Command != "experiments" &&
      Opts.Command != "serve")
    usageError("--trace-mode is only valid with the measuring commands "
               "(baseline run hds sweep experiments serve)");
  if (Opts.Command == "trace" && Opts.Benchmark == "info") {
    if (Opts.TraceFile.empty())
      usageError("trace info needs a trace file to inspect");
    if (!Opts.SavePath.empty())
      usageError("--save is not valid with trace info (it only inspects)");
  } else if (Opts.Command == "trace") {
    if (!Opts.TraceFile.empty())
      usageError("unexpected argument '" + Opts.TraceFile + "'");
  } else if (!Opts.SavePath.empty()) {
    usageError("--save is only valid with the trace command");
  }
  if (!Opts.StoreDir.empty() && Opts.Command != "store" &&
      Opts.Command != "baseline" && Opts.Command != "run" &&
      Opts.Command != "hds" && Opts.Command != "sweep" &&
      Opts.Command != "experiments" && Opts.Command != "serve")
    usageError("--store-dir is not supported by the " + Opts.Command +
               " command");
  bool MatrixCommand = Opts.Command == "experiments" ||
                       (Opts.Command == "client" && Opts.ClientVerb == "run");
  if (!MatrixCommand) {
    if (!Opts.MachineList.empty())
      usageError("--machines is only valid with the experiments and "
                 "client run commands (use --machine)");
    if (!Opts.KindList.empty())
      usageError("--kinds is only valid with the experiments and "
                 "client run commands");
    if (Opts.SawScale)
      usageError("--scale is only valid with the experiments and "
                 "client run commands");
    if (Opts.SawSeedBase)
      usageError("--seed-base is only valid with the experiments and "
                 "client run commands");
  } else if (!Opts.MachineList.empty() && !Opts.Machine.empty()) {
    // --machine would only set the setup machine (which cannot affect
    // the machine-independent artifacts) while --machines names the
    // measured cells; accepting both would silently drop one.
    usageError("--machine and --machines cannot be combined (list every "
               "measured machine in --machines)");
  }
  return Opts;
}

/// Opens the --out path for one JSON document ("" = stdout). Callers
/// open BEFORE measuring so an unwritable path fails fast instead of
/// discarding an arbitrarily long run; the stream actually targets
/// Path + ".tmp" so an interrupted or failed run never clobbers the
/// previous file — closeOutput() renames it into place on success.
FILE *openOutput(const std::string &Path) {
  if (Path.empty())
    return stdout;
  std::string TmpPath = Path + ".tmp";
  FILE *Out = std::fopen(TmpPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "halo_cli: cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  return Out;
}

/// Closes an openOutput() stream, moves the temp file into place, and
/// acknowledges file writes; \p Detail is appended to the notice
/// (e.g. " (12 rows)").
void closeOutput(FILE *Out, const std::string &Path,
                 const std::string &Detail = "") {
  if (Out == stdout)
    return;
  std::fclose(Out);
  std::string TmpPath = Path + ".tmp";
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::fprintf(stderr, "halo_cli: cannot move %s into place\n",
                 Path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s%s\n", Path.c_str(), Detail.c_str());
}

/// Opens the artifact store the options select: --store-dir, else
/// $HALO_STORE, else none. Opened BEFORE measuring (like openOutput) so a
/// bad or unwritable directory fails fast with the usage message instead
/// of silently turning every warm run cold.
std::optional<ArtifactStore> openStore(const CliOptions &Opts) {
  std::string Dir = Opts.StoreDir;
  if (Dir.empty())
    if (const char *Env = std::getenv("HALO_STORE"))
      Dir = Env;
  if (Dir.empty())
    return std::nullopt;
  try {
    return ArtifactStore(std::move(Dir));
  } catch (const std::runtime_error &E) {
    usageError(E.what());
  }
}

/// The machine the options name (parseArgs already rejected unknown names).
const MachineConfig &machineFor(const CliOptions &Opts) {
  if (Opts.Machine.empty())
    return defaultMachine();
  return *findMachine(Opts.Machine);
}

BenchmarkSetup setupFor(const CliOptions &Opts,
                        const std::string &Benchmark) {
  BenchmarkSetup Setup = paperSetup(Benchmark);
  Setup.Machine = machineFor(Opts);
  if (Opts.ChunkSize) {
    Setup.Halo.Allocator.ChunkSize = Opts.ChunkSize;
    Setup.Hds.Allocator.ChunkSize = Opts.ChunkSize;
  }
  if (Opts.MaxSpareChunks >= 0) {
    Setup.Halo.Allocator.MaxSpareChunks = Opts.MaxSpareChunks;
    Setup.Hds.Allocator.MaxSpareChunks = Opts.MaxSpareChunks;
  }
  if (Opts.MaxGroups)
    Setup.Halo.Grouping.MaxGroups = Opts.MaxGroups;
  if (Opts.AffinityDistance)
    Setup.Halo.Profile.AffinityDistance = Opts.AffinityDistance;
  return Setup;
}

BenchmarkSetup setupFor(const CliOptions &Opts) {
  return setupFor(Opts, Opts.Benchmark);
}

void asciiBar(const char *Label, double Percent, double FullScale) {
  int Width = static_cast<int>(40.0 * std::abs(Percent) / FullScale);
  if (Width > 40)
    Width = 40;
  std::printf("  %-10s %+6.2f%% %s%.*s\n", Label, Percent,
              Percent < 0 ? "-" : "", Width,
              "########################################");
}

/// Expands the requested benchmark list (empty = all) and validates names.
std::vector<std::string> benchmarkList(const CliOptions &Opts) {
  std::vector<std::string> Names =
      Opts.Benchmarks.empty() ? workloadNames() : Opts.Benchmarks;
  for (const std::string &Name : Names)
    if (!createWorkload(Name))
      usageError("unknown benchmark '" + Name + "'");
  return Names;
}

int runPlot(const CliOptions &Opts) {
  std::vector<std::string> Names = benchmarkList(Opts);
  const MachineConfig &M = machineFor(Opts);
  std::printf("HALO vs jemalloc on %s (top: L1D miss reduction, bottom: "
              "speedup), %d trial(s)\n\n",
              M.Name.c_str(), Opts.Trials);
  // One plan behind the scenes: cells fan out at benchmark x kind x trial
  // granularity; rows come back in request order and bit-identical to a
  // serial run.
  std::vector<ComparisonRow> Rows =
      compareAcrossBenchmarks(Names, Opts.Trials, Scale::Ref, Opts.Jobs, M);
  for (const ComparisonRow &Row : Rows) {
    std::printf("%s\n", Row.Benchmark.c_str());
    asciiBar("hds", Row.HdsMissReduction, 40.0);
    asciiBar("halo", Row.HaloMissReduction, 40.0);
    asciiBar("hds", Row.HdsSpeedup, 40.0);
    asciiBar("halo", Row.HaloSpeedup, 40.0);
  }
  return 0;
}

int runMachines() {
  Report Table("Machine presets (sim/Machine.h)");
  Table.setColumns({"machine", "geometry", "lat L1/L2/L3/mem/TLB",
                    "description"});
  for (const MachineConfig &M : machinePresets()) {
    const LatencyModel &Lat = M.Hierarchy.Latency;
    char LatBuf[64];
    std::snprintf(LatBuf, sizeof(LatBuf), "%u/%u/%u/%u/%u", Lat.L1Hit,
                  Lat.L2Hit, Lat.L3Hit, Lat.Memory, Lat.TlbMiss);
    Table.addRow({M.Name, M.summary(), LatBuf, M.Description});
  }
  Table.addNote("default: " + defaultMachine().Name +
                " (the paper's evaluation machine)");
  Table.print();
  return 0;
}

int runSweep(const CliOptions &Opts) {
  std::vector<std::string> Names = benchmarkList(Opts);
  // Default: every preset; --machine narrows the sweep to one.
  std::vector<const MachineConfig *> Machines;
  if (Opts.Machine.empty())
    for (const MachineConfig &M : machinePresets())
      Machines.push_back(&M);
  else
    Machines.push_back(&machineFor(Opts));

  // One plan across the whole benchmark x machine matrix: each benchmark
  // records its traces and materialises its pipelines once, and the
  // replay stage spans every (benchmark, machine, kind, trial) cell, so
  // mixed sweeps keep all --jobs workers busy. Cells come back
  // benchmark-major, machine-major inside, kinds in jemalloc/hds/halo
  // order -- bit-identical to a serial sweep.
  ExperimentSpec Spec;
  Spec.Benchmarks = Names;
  Spec.Machines = Machines;
  Spec.Kinds = {AllocatorKind::Jemalloc, AllocatorKind::Hds,
                AllocatorKind::Halo};
  Spec.S = Scale::Ref;
  Spec.Trials = Opts.Trials;
  Spec.MakeSetup = [&Opts](const std::string &Name) {
    return setupFor(Opts, Name);
  };
  std::optional<ArtifactStore> Store = openStore(Opts);
  FILE *Out = Opts.OutPath.empty() ? nullptr : openOutput(Opts.OutPath);
  ExperimentPlan Plan = buildPlan({Spec}, {}, Store ? &*Store : nullptr);
  ResultSet Results = runPlan(Plan, Opts.Jobs, Opts.Mode, Opts.Traces);

  std::vector<SweepRow> Rows = sweepRows(Results);
  sweepReport(Rows).print();
  if (Out) {
    writeSweepJson(Out, Rows);
    closeOutput(Out, Opts.OutPath,
                " (" + std::to_string(Rows.size()) + " rows)");
  }
  return 0;
}

int runExperiments(const CliOptions &Opts) {
  ExperimentSpec Spec;
  Spec.Benchmarks = benchmarkList(Opts);
  // --machines: preset names or "all"; default is the --machine preset
  // (or the setup default) as a single-machine matrix.
  for (const std::string &Name : Opts.MachineList) {
    if (Name == "all") {
      for (const MachineConfig &M : machinePresets())
        Spec.Machines.push_back(&M);
      continue;
    }
    const MachineConfig *M = findMachine(Name);
    if (!M)
      usageError("unknown machine '" + Name + "' in --machines (available: " +
                 knownMachines() + " all)");
    Spec.Machines.push_back(M);
  }
  if (Spec.Machines.empty() && !Opts.Machine.empty())
    Spec.Machines.push_back(&machineFor(Opts));
  if (!Opts.KindList.empty()) {
    Spec.Kinds.clear();
    for (const std::string &Name : Opts.KindList) {
      std::optional<AllocatorKind> Kind = parseAllocatorKind(Name);
      if (!Kind)
        usageError("unknown allocator kind '" + Name +
                   "' in --kinds (available: " + knownKinds() + ")");
      Spec.Kinds.push_back(*Kind);
    }
  }
  Spec.S = Opts.S;
  Spec.Trials = Opts.Trials;
  Spec.SeedBase = Opts.SeedBase;
  Spec.MakeSetup = [&Opts](const std::string &Name) {
    return setupFor(Opts, Name);
  };

  std::optional<ArtifactStore> Store = openStore(Opts);
  FILE *Out = openOutput(Opts.OutPath);
  ExperimentPlan Plan = buildPlan({Spec}, {}, Store ? &*Store : nullptr);
  ResultSet Results = runPlan(Plan, Opts.Jobs, Opts.Mode, Opts.Traces);
  if (Out != stdout) {
    // With a file destination the console gets the human-readable view.
    experimentsReport(Results).print();
    std::printf("plan: %zu cell(s), %zu recording(s), %zu artifact "
                "task(s), %zu replay(s)",
                Plan.cells().size(), Plan.numRecordings(),
                Plan.numArtifactTasks(), Plan.numReplays());
    if (Plan.store())
      std::printf(", %zu stored recording(s), %zu stored artifact(s)",
                  Plan.numStoredRecordings(), Plan.numStoredArtifacts());
    std::printf("\n");
  }
  writeExperimentsJson(Out, Results);
  closeOutput(Out, Opts.OutPath,
              " (" + std::to_string(Results.size()) + " cells)");
  return 0;
}

/// Minimal JSON string escaping for file names and store labels.
std::string jsonEscaped(const std::string &Text) {
  std::string Escaped;
  Escaped.reserve(Text.size());
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Escaped += '\\';
    Escaped += C;
  }
  return Escaped;
}

int runStore(const CliOptions &Opts) {
  // The store commands refuse to guess a directory: inspecting or
  // collecting "no store" is always a mistake.
  if (Opts.StoreDir.empty() && !std::getenv("HALO_STORE"))
    usageError("the store command needs a directory (--store-dir DIR or "
               "$HALO_STORE)");
  std::optional<ArtifactStore> Store = openStore(Opts);

  if (Opts.StoreVerb == "gc") {
    size_t Removed = Store->gc();
    std::printf("removed %zu file(s) from %s\n", Removed,
                Store->dir().c_str());
    return 0;
  }

  // ls and verify share the listing. ls parses only headers -- payload
  // sizes always appear, however large the entries, so oversized traces
  // are visible before gc decisions -- while verify reads and checksums
  // every payload and fails the exit code on any invalid entry so
  // scripts can gate on store health.
  std::vector<ArtifactStore::Entry> Entries =
      Store->entries(/*Validate=*/Opts.StoreVerb == "verify");
  Report Table("Artifact store " + Store->dir());
  Table.setColumns({"file", "type", "label", "payload bytes", "status"});
  size_t Invalid = 0;
  for (const ArtifactStore::Entry &E : Entries) {
    if (!E.Valid)
      ++Invalid;
    Table.addRow({E.File, artifactTypeName(E.Type), E.Label,
                  std::to_string(E.PayloadSize),
                  E.Valid ? "ok" : "CORRUPT: " + E.Problem});
  }
  Table.addNote(std::to_string(Entries.size()) + " entr" +
                (Entries.size() == 1 ? "y" : "ies") + ", " +
                std::to_string(Invalid) + " invalid");
  Table.print();
  if (Opts.StoreVerb == "ls" && !Opts.OutPath.empty()) {
    // The machine-readable listing, through the same tmp+rename output
    // path every JSON-emitting subcommand uses.
    FILE *Out = openOutput(Opts.OutPath);
    std::fprintf(Out, "[\n");
    for (size_t I = 0; I < Entries.size(); ++I) {
      const ArtifactStore::Entry &E = Entries[I];
      std::fprintf(Out,
                   "  {\"file\": \"%s\", \"type\": \"%s\", \"label\": "
                   "\"%s\", \"payload_bytes\": %llu, \"valid\": %s, "
                   "\"problem\": \"%s\"}%s\n",
                   jsonEscaped(E.File).c_str(), artifactTypeName(E.Type),
                   jsonEscaped(E.Label).c_str(),
                   (unsigned long long)E.PayloadSize,
                   E.Valid ? "true" : "false",
                   jsonEscaped(E.Problem).c_str(),
                   I + 1 < Entries.size() ? "," : "");
    }
    std::fprintf(Out, "]\n");
    closeOutput(Out, Opts.OutPath,
                " (" + std::to_string(Entries.size()) + " entries)");
  }
  if (Opts.StoreVerb == "verify" && Invalid) {
    std::fprintf(stderr,
                 "halo_cli: store verify: %zu corrupt entr%s (run "
                 "`halo_cli store gc` to remove)\n",
                 Invalid, Invalid == 1 ? "y" : "ies");
    return 1;
  }
  return 0;
}

/// The shared trace-counts JSON body (no trailing "}\n": callers may
/// append extra fields).
void writeTraceCounts(FILE *Out, const std::string &Benchmark,
                      uint64_t Events, uint64_t Bytes, uint64_t Objects,
                      const TraceCounts &C) {
  std::fprintf(
      Out,
      "{\n  \"benchmark\": \"%s\",\n  \"scale\": \"ref\",\n"
      "  \"events\": %llu,\n  \"bytes\": %llu,\n  \"objects\": %llu,\n"
      "  \"bytes_per_event\": %.3f,\n"
      "  \"counts\": {\"calls\": %llu, \"returns\": %llu, \"allocs\": %llu, "
      "\"frees\": %llu,\n             \"loads\": %llu, \"stores\": %llu, "
      "\"raw_loads\": %llu, \"raw_stores\": %llu,\n             "
      "\"computes\": %llu, \"reallocs\": %llu}",
      Benchmark.c_str(), (unsigned long long)Events,
      (unsigned long long)Bytes, (unsigned long long)Objects,
      Events ? static_cast<double>(Bytes) / static_cast<double>(Events) : 0.0,
      (unsigned long long)C.Calls, (unsigned long long)C.Returns,
      (unsigned long long)C.Allocs, (unsigned long long)C.Frees,
      (unsigned long long)C.Loads, (unsigned long long)C.Stores,
      (unsigned long long)C.RawLoads, (unsigned long long)C.RawStores,
      (unsigned long long)C.Computes, (unsigned long long)C.Reallocs);
}

int runTrace(const CliOptions &Opts) {
  FILE *Out = openOutput(Opts.OutPath);
  Evaluation Eval(setupFor(Opts));
  if (!Opts.SavePath.empty()) {
    // Stream the recording to disk (never resident in full), then map the
    // file back: open() fully validates the image, so the counts below
    // double as an integrity check of what was just written.
    Eval.recordTraceFile(Scale::Ref, /*Seed=*/100, Opts.SavePath);
    MappedTrace Trace = MappedTrace::open(Opts.SavePath);
    uint64_t Comp = 0;
    for (size_t B = 0; B < Trace.numBlocks(); ++B)
      Comp += Trace.block(B).CompBytes;
    writeTraceCounts(Out, Opts.Benchmark, Trace.numEvents(),
                     Trace.rawBytes(), Trace.numObjects(), Trace.counts());
    std::fprintf(Out,
                 ",\n  \"file\": \"%s\",\n  \"file_bytes\": %llu,\n"
                 "  \"blocks\": %llu,\n  \"compression_ratio\": %.3f\n}\n",
                 Opts.SavePath.c_str(), (unsigned long long)Trace.fileBytes(),
                 (unsigned long long)Trace.numBlocks(),
                 Comp ? static_cast<double>(Trace.rawBytes()) /
                            static_cast<double>(Comp)
                      : 0.0);
    closeOutput(Out, Opts.OutPath);
    std::fprintf(stderr, "halo_cli: wrote %s (%llu bytes, %llu events)\n",
                 Opts.SavePath.c_str(), (unsigned long long)Trace.fileBytes(),
                 (unsigned long long)Trace.numEvents());
    return 0;
  }
  const EventTrace &Trace = Eval.trace(Scale::Ref, /*Seed=*/100);
  writeTraceCounts(Out, Opts.Benchmark, Trace.numEvents(), Trace.byteSize(),
                   Trace.numObjects(), Trace.counts());
  std::fprintf(Out, "\n}\n");
  closeOutput(Out, Opts.OutPath);
  return 0;
}

int runTraceInfo(const CliOptions &Opts) {
  // Accept both forms a trace lives in on disk: a bare trace file
  // (trace --save) and a store entry file wrapping one (putTraceFile).
  std::optional<MappedTrace> Trace;
  std::string Problem;
  try {
    Trace = MappedTrace::open(Opts.TraceFile);
  } catch (const SerializationError &E) {
    Problem = E.what();
    Trace = openTraceEntryFile(Opts.TraceFile);
  } catch (const std::runtime_error &E) {
    Problem = E.what();
  }
  if (!Trace) {
    std::fprintf(stderr, "halo_cli: trace info: %s: %s\n",
                 Opts.TraceFile.c_str(), Problem.c_str());
    return 1;
  }

  FILE *Out = openOutput(Opts.OutPath);
  const TraceIndex &Idx = Trace->index();
  uint64_t Comp = 0;
  for (const TraceBlockInfo &B : Idx.Blocks)
    Comp += B.CompBytes;
  const TraceCounts &C = Idx.Counts;
  // open() already re-validated the whole image -- index structure plus
  // every block checksum -- so reaching this line IS the integrity check.
  std::fprintf(
      Out,
      "{\n  \"file\": \"%s\",\n  \"format_version\": %u,\n"
      "  \"integrity\": \"ok\",\n  \"file_bytes\": %llu,\n"
      "  \"events\": %llu,\n  \"objects\": %llu,\n  \"raw_bytes\": %llu,\n"
      "  \"compressed_bytes\": %llu,\n  \"compression_ratio\": %.3f,\n"
      "  \"counts\": {\"calls\": %llu, \"returns\": %llu, \"allocs\": %llu, "
      "\"frees\": %llu,\n             \"loads\": %llu, \"stores\": %llu, "
      "\"raw_loads\": %llu, \"raw_stores\": %llu,\n             "
      "\"computes\": %llu, \"reallocs\": %llu},\n"
      "  \"blocks\": [\n",
      Opts.TraceFile.c_str(), TraceFormatVersion,
      (unsigned long long)Trace->fileBytes(),
      (unsigned long long)Trace->numEvents(),
      (unsigned long long)Trace->numObjects(),
      (unsigned long long)Trace->rawBytes(), (unsigned long long)Comp,
      Comp ? static_cast<double>(Trace->rawBytes()) /
                 static_cast<double>(Comp)
           : 0.0,
      (unsigned long long)C.Calls, (unsigned long long)C.Returns,
      (unsigned long long)C.Allocs, (unsigned long long)C.Frees,
      (unsigned long long)C.Loads, (unsigned long long)C.Stores,
      (unsigned long long)C.RawLoads, (unsigned long long)C.RawStores,
      (unsigned long long)C.Computes, (unsigned long long)C.Reallocs);
  for (size_t B = 0; B < Idx.Blocks.size(); ++B) {
    const TraceBlockInfo &Blk = Idx.Blocks[B];
    std::fprintf(Out,
                 "    {\"block\": %zu, \"method\": \"%s\", \"events\": %llu, "
                 "\"raw_bytes\": %llu, \"compressed_bytes\": %llu, "
                 "\"first_event\": %llu, \"first_object\": %llu}%s\n",
                 B, Blk.Method ? "lz" : "raw",
                 (unsigned long long)Blk.Events,
                 (unsigned long long)Blk.RawBytes,
                 (unsigned long long)Blk.CompBytes,
                 (unsigned long long)Blk.FirstEvent,
                 (unsigned long long)Blk.FirstObject,
                 B + 1 < Idx.Blocks.size() ? "," : "");
  }
  std::fprintf(Out, "  ]\n}\n");
  closeOutput(Out, Opts.OutPath);
  return 0;
}

int runServe(const CliOptions &Opts) {
  DaemonConfig Config;
  Config.SocketPath = Opts.SocketPath;
  Config.Jobs = Opts.Jobs;
  Config.Traces = Opts.Traces;
  Config.StoreDir = Opts.StoreDir;
  if (Config.StoreDir.empty())
    if (const char *Env = std::getenv("HALO_STORE"))
      Config.StoreDir = Env;
  // Resolve the pool size up front so a malformed HALO_JOBS fails here,
  // not after the socket is bound.
  unsigned Workers = resolveJobs(Opts.Jobs);
  std::string StoreNote =
      Config.StoreDir.empty() ? std::string(", no store")
                              : ", store " + Config.StoreDir;
  std::fprintf(stderr, "halo_cli: serving on %s (%u worker(s)%s)\n",
               Opts.SocketPath.c_str(), Workers, StoreNote.c_str());
  HaloDaemon Daemon(Config);
  int Exit = Daemon.serve();
  std::fprintf(stderr, "halo_cli: daemon on %s shut down\n",
               Opts.SocketPath.c_str());
  return Exit;
}

int runClientStats(HaloClient &Client, const CliOptions &Opts) {
  DaemonStats St = Client.stats();
  Report Table("halo serve on " + Opts.SocketPath);
  Table.setColumns({"counter", "value"});
  Table.addRow({"active sessions", std::to_string(St.ActiveSessions)});
  Table.addRow({"sessions served", std::to_string(St.SessionsServed)});
  Table.addRow({"plans submitted", std::to_string(St.PlansSubmitted)});
  Table.addRow({"plans completed", std::to_string(St.PlansCompleted)});
  Table.addRow({"plans cancelled", std::to_string(St.PlansCancelled)});
  Table.addRow({"plans failed", std::to_string(St.PlansFailed)});
  Table.addRow({"cells streamed", std::to_string(St.CellsStreamed)});
  Table.addRow({"tasks executed", std::to_string(St.TasksExecuted)});
  Table.addRow({"warm benchmarks", std::to_string(St.WarmBenchmarks)});
  Table.addNote(std::to_string(St.Workers) + " worker(s), " +
                (St.HasStore ? "store attached" : "no store"));
  Table.print();
  return 0;
}

int runClient(const CliOptions &Opts) {
  HaloClient Client(Opts.SocketPath);
  if (Opts.ClientVerb == "stats")
    return runClientStats(Client, Opts);
  if (Opts.ClientVerb == "shutdown") {
    Client.shutdownServer();
    std::printf("daemon on %s acknowledged shutdown\n",
                Opts.SocketPath.c_str());
    return 0;
  }

  // client run: the experiments matrix, measured by the daemon. Names are
  // validated locally first (same registries) so typos fail with the
  // usage message instead of a protocol round trip.
  PlanRequest R;
  R.Benchmarks = benchmarkList(Opts);
  for (const std::string &Name : Opts.MachineList) {
    if (Name == "all") {
      for (const MachineConfig &M : machinePresets())
        R.Machines.push_back(M.Name);
      continue;
    }
    if (!findMachine(Name))
      usageError("unknown machine '" + Name + "' in --machines (available: " +
                 knownMachines() + " all)");
    R.Machines.push_back(Name);
  }
  if (!Opts.KindList.empty()) {
    R.Kinds.clear();
    for (const std::string &Name : Opts.KindList) {
      std::optional<AllocatorKind> Kind = parseAllocatorKind(Name);
      if (!Kind)
        usageError("unknown allocator kind '" + Name +
                   "' in --kinds (available: " + knownKinds() + ")");
      R.Kinds.push_back(*Kind);
    }
  }
  R.S = Opts.S;
  R.Trials = Opts.Trials;
  R.SeedBase = Opts.SeedBase;

  // Open --out before submitting (fail fast on an unwritable path), but
  // only rename into place for a completed plan -- a cancelled or failed
  // plan must not overwrite a previous good document with a partial one.
  FILE *Out = openOutput(Opts.OutPath);
  uint64_t PlanId = Client.submit(R);
  PlanOutcome Outcome =
      Client.wait(PlanId, [&](const CellResultMsg &M) {
        std::fprintf(stderr, "halo_cli: cell %llu: %s %s %s done\n",
                     (unsigned long long)M.CellIndex, M.Key.Benchmark.c_str(),
                     M.Key.Machine.c_str(), allocatorKindName(M.Key.Kind));
      });

  if (Outcome.Status != PlanStatus::Ok) {
    if (Out != stdout) {
      std::fclose(Out);
      std::remove((Opts.OutPath + ".tmp").c_str());
    }
    if (Outcome.Status == PlanStatus::Failed)
      std::fprintf(stderr, "halo_cli: plan failed: %s\n",
                   Outcome.Message.c_str());
    else
      std::fprintf(stderr, "halo_cli: plan cancelled (%llu of %llu cells "
                           "arrived)\n",
                   (unsigned long long)Outcome.CellsReceived,
                   (unsigned long long)Outcome.NumCells);
    return 1;
  }

  if (Out != stdout) {
    experimentsReport(Outcome.Results).print();
    std::printf("served: %llu cell(s) streamed from %s\n",
                (unsigned long long)Outcome.CellsReceived,
                Opts.SocketPath.c_str());
  }
  writeExperimentsJson(Out, Outcome.Results);
  closeOutput(Out, Opts.OutPath,
              " (" + std::to_string(Outcome.Results.size()) + " cells)");
  return 0;
}

} // namespace

static int runMain(const CliOptions &Opts);

int main(int Argc, char **Argv) {
  CliOptions Opts = parseArgs(Argc, Argv);
  try {
    return runMain(Opts);
  } catch (const std::exception &E) {
    // One catch for everything the library throws past a subcommand:
    // connection failures, protocol errors, a malformed HALO_JOBS.
    std::fprintf(stderr, "halo_cli: error: %s\n", E.what());
    return 1;
  }
}

static int runMain(const CliOptions &Opts) {
  if (Opts.Command == "machines")
    return runMachines();
  if (Opts.Command == "plot")
    return runPlot(Opts);
  if (Opts.Command == "sweep")
    return runSweep(Opts);
  if (Opts.Command == "experiments")
    return runExperiments(Opts);
  if (Opts.Command == "store")
    return runStore(Opts);
  if (Opts.Command == "serve")
    return runServe(Opts);
  if (Opts.Command == "client")
    return runClient(Opts);
  if (Opts.Command == "trace" && Opts.Benchmark == "info")
    return runTraceInfo(Opts);

  if (!createWorkload(Opts.Benchmark)) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", Opts.Benchmark.c_str());
    return 1;
  }
  if (Opts.Command == "trace")
    return runTrace(Opts);

  AllocatorKind Kind;
  if (Opts.Command == "baseline")
    Kind = AllocatorKind::Jemalloc;
  else if (Opts.Command == "run")
    Kind = AllocatorKind::Halo;
  else if (Opts.Command == "hds")
    Kind = AllocatorKind::Hds;
  else
    usage();

  // A 1x1x1 plan: same scheduler and emitter as the big sweeps. With one
  // cell the replay stage's auto mode shards within the trace, so --jobs
  // speeds up even this single measurement.
  std::optional<ArtifactStore> Store = openStore(Opts);
  FILE *Out = openOutput(Opts.OutPath);
  ExperimentSpec Spec;
  Spec.Benchmarks = {Opts.Benchmark};
  Spec.Kinds = {Kind};
  Spec.S = Scale::Ref;
  Spec.Trials = Opts.Trials;
  Spec.MakeSetup = [&Opts](const std::string &Name) {
    return setupFor(Opts, Name);
  };
  ExperimentPlan Plan = buildPlan({Spec}, {}, Store ? &*Store : nullptr);
  ResultSet Results = runPlan(Plan, Opts.Jobs, Opts.Mode, Opts.Traces);

  writeRunsJson(Out, Opts.Benchmark, Opts.Command,
                Results.cells().front().Runs);
  closeOutput(Out, Opts.OutPath);
  return 0;
}
