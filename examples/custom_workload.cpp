//===- examples/custom_workload.cpp - Bring your own program -------------------===//
//
// Shows how a downstream user plugs their own allocation/access behaviour
// into the toolkit: implement the Workload interface, then reuse the
// evaluation machinery (pipelines, allocators, cache hierarchy, trial
// medians) unchanged. The example program builds an LRU cache whose hash
// cells and entries are hot while audit records interleave cold.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "hds/HdsPipeline.h"
#include "mem/SizeClassAllocator.h"
#include "support/Rng.h"

#include <cstdio>
#include <memory>
#include <vector>

using namespace halo;

namespace {

/// A user-written model of an LRU-cache-heavy service.
class LruService {
public:
  void build(Program &P) {
    FunctionId Main = P.addFunction("main");
    FunctionId Fill = P.addFunction("warm_cache");
    FunctionId Serve = P.addFunction("serve");
    SFill = P.addCallSite(Main, Fill, "main>warm_cache");
    SCell = P.addMallocSite(Fill, "warm>malloc_cell");
    SEntry = P.addMallocSite(Fill, "warm>malloc_entry");
    SAudit = P.addMallocSite(Fill, "warm>malloc_audit");
    SServe = P.addCallSite(Main, Serve, "main>serve");
  }

  void run(Runtime &RT, uint64_t Seed) {
    Rng Random(Seed);
    struct Slot {
      uint64_t Cell;
      uint64_t Entry;
    };
    std::vector<Slot> Table;
    std::vector<uint64_t> Audits;
    {
      Runtime::Scope Fill(RT, SFill);
      for (int I = 0; I < 30000; ++I) {
        Slot S;
        S.Cell = RT.malloc(32, SCell);
        RT.store(S.Cell, 32);
        S.Entry = RT.malloc(32, SEntry);
        RT.store(S.Entry, 32);
        Table.push_back(S);
        if (Random.nextBool(0.5)) {
          uint64_t A = RT.malloc(32, SAudit);
          RT.store(A, 8);
          Audits.push_back(A);
        }
      }
    }
    {
      Runtime::Scope Serve(RT, SServe);
      for (int Hit = 0; Hit < 200000; ++Hit) {
        Slot &S = Table[Random.nextBelow(Table.size())];
        RT.load(S.Cell, 32);
        RT.load(S.Entry, 32);
        RT.store(S.Entry + 8, 8);
        RT.compute(40);
      }
    }
    for (Slot &S : Table) {
      RT.free(S.Cell);
      RT.free(S.Entry);
    }
    for (uint64_t A : Audits)
      RT.free(A);
  }

private:
  CallSiteId SFill = InvalidId, SCell = InvalidId, SEntry = InvalidId,
             SAudit = InvalidId, SServe = InvalidId;
};

} // namespace

int main() {
  Program P;
  LruService Service;
  Service.build(P);

  // Profile and derive the optimisation (seed 1 plays the training input).
  HaloArtifacts Art =
      optimizeBinary(P, [&](Runtime &RT) { Service.run(RT, 1); });
  std::printf("derived %zu group(s) from %u contexts\n", Art.Groups.size(),
              Art.Contexts.size());
  for (size_t G = 0; G < Art.Groups.size(); ++G)
    std::printf("  group %zu: %s\n", G,
                Art.Identification.Selectors[G].describe(P).c_str());

  // Measure baseline and optimised runs on a fresh input (seed 2).
  auto Measure = [&](bool UseHalo) {
    MemoryHierarchy Mem;
    SizeClassAllocator Backing;
    Runtime RT(P, Backing);
    std::unique_ptr<SelectorGroupPolicy> Policy;
    std::unique_ptr<GroupAllocator> GA;
    if (UseHalo) {
      RT.setInstrumentation(&Art.Plan);
      Policy = std::make_unique<SelectorGroupPolicy>(RT.groupState(),
                                                     Art.CompiledSelectors);
      GA = std::make_unique<GroupAllocator>(Backing, *Policy);
      RT.setAllocator(*GA);
    }
    RT.setMemory(&Mem);
    Service.run(RT, 2);
    return std::pair(Mem.counters().L1Misses, RT.timing().seconds());
  };

  auto [BaseMisses, BaseTime] = Measure(false);
  auto [HaloMisses, HaloTime] = Measure(true);
  std::printf("baseline: %llu misses; HALO: %llu misses (%.1f%% fewer); "
              "time %.1f%% better\n",
              (unsigned long long)BaseMisses, (unsigned long long)HaloMisses,
              100.0 * (1.0 - double(HaloMisses) / double(BaseMisses)),
              100.0 * (1.0 - HaloTime / BaseTime));

  // The hot-data-streams comparison runs on the same model for free.
  HdsArtifacts Hds =
      optimizeBinaryHds(P, [&](Runtime &RT) { Service.run(RT, 1); });
  std::printf("HDS found %zu hot streams and %zu co-allocation group(s)\n",
              Hds.Analysis.Streams.size(), Hds.Groups.size());
  return 0;
}
