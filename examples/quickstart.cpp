//===- examples/quickstart.cpp - End-to-end HALO in one file -------------------===//
//
// The fastest tour of the library: model a tiny program, profile it, run
// the HALO pipeline, and measure the optimised binary against the jemalloc
// baseline on the simulated memory hierarchy.
//
//   cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "mem/SizeClassAllocator.h"

#include <cstdio>
#include <memory>
#include <vector>

using namespace halo;

namespace {

/// A little program: a parser allocates hot nodes and cold log records from
/// two helpers, then an evaluator walks the nodes many times.
struct TinyProgram {
  Program P;
  CallSiteId SParse, SNodeHelper, SLogHelper, SNodeMalloc, SLogMalloc, SEval;

  TinyProgram() {
    FunctionId Main = P.addFunction("main");
    FunctionId Parse = P.addFunction("parse");
    FunctionId NodeHelper = P.addFunction("new_node");
    FunctionId LogHelper = P.addFunction("new_log");
    FunctionId Eval = P.addFunction("evaluate");
    SParse = P.addCallSite(Main, Parse, "main>parse");
    SNodeHelper = P.addCallSite(Parse, NodeHelper, "parse>new_node");
    SLogHelper = P.addCallSite(Parse, LogHelper, "parse>new_log");
    SNodeMalloc = P.addMallocSite(NodeHelper, "new_node>malloc");
    SLogMalloc = P.addMallocSite(LogHelper, "new_log>malloc");
    SEval = P.addCallSite(Main, Eval, "main>evaluate");
  }

  void run(Runtime &RT) {
    std::vector<uint64_t> Nodes, Logs;
    {
      Runtime::Scope Parse(RT, SParse);
      for (int I = 0; I < 20000; ++I) {
        {
          Runtime::Scope H(RT, SNodeHelper);
          Nodes.push_back(RT.malloc(32, SNodeMalloc));
        }
        RT.store(Nodes.back(), 32);
        {
          Runtime::Scope H(RT, SLogHelper);
          Logs.push_back(RT.malloc(32, SLogMalloc));
        }
        RT.store(Logs.back(), 8);
      }
    }
    {
      Runtime::Scope Eval(RT, SEval);
      for (int Pass = 0; Pass < 8; ++Pass)
        for (uint64_t Node : Nodes)
          RT.load(Node, 32);
    }
    for (uint64_t Node : Nodes)
      RT.free(Node);
    for (uint64_t Log : Logs)
      RT.free(Log);
  }
};

} // namespace

int main() {
  TinyProgram Prog;

  // 1. Run the whole pipeline: profile -> group -> identify -> rewrite.
  HaloArtifacts Art =
      optimizeBinary(Prog.P, [&](Runtime &RT) { Prog.run(RT); });
  std::printf("pipeline: %u contexts, %u graph nodes, %zu group(s), "
              "%u instrumented site(s)\n",
              Art.Contexts.size(), Art.Graph.numNodes(), Art.Groups.size(),
              Art.Plan.numInstrumentedSites());
  for (size_t G = 0; G < Art.Groups.size(); ++G)
    std::printf("  group %zu selector: %s\n", G,
                Art.Identification.Selectors[G].describe(Prog.P).c_str());

  // 2. Measure baseline vs optimised on the default machine preset (the
  //    paper's Xeon W-2195; swap in any preset from machinePresets()).
  const MachineConfig &Machine = defaultMachine();
  auto Measure = [&](bool UseHalo) {
    MemoryHierarchy Mem(Machine.Hierarchy);
    SizeClassAllocator Backing;
    Runtime RT(Prog.P, Backing, Machine.Costs);
    std::unique_ptr<SelectorGroupPolicy> Policy;
    std::unique_ptr<GroupAllocator> GA;
    if (UseHalo) {
      RT.setInstrumentation(&Art.Plan);
      Policy = std::make_unique<SelectorGroupPolicy>(RT.groupState(),
                                                     Art.CompiledSelectors);
      GA = std::make_unique<GroupAllocator>(Backing, *Policy);
      RT.setAllocator(*GA);
    }
    RT.setMemory(&Mem);
    Prog.run(RT);
    return std::pair(Mem.counters().L1Misses, RT.timing().seconds());
  };

  auto [BaseMisses, BaseTime] = Measure(false);
  auto [HaloMisses, HaloTime] = Measure(true);
  std::printf("baseline: %llu L1D misses, %.6f sim-seconds\n",
              (unsigned long long)BaseMisses, BaseTime);
  std::printf("HALO:     %llu L1D misses, %.6f sim-seconds\n",
              (unsigned long long)HaloMisses, HaloTime);
  std::printf("miss reduction: %.1f%%, speedup: %.1f%%\n",
              100.0 * (1.0 - double(HaloMisses) / double(BaseMisses)),
              100.0 * (1.0 - HaloTime / BaseTime));
  return 0;
}
