//===- group/Grouping.h - Context grouping (Fig. 6-8) ----------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The grouping stage of Section 4.2: a greedy algorithm that repeatedly
/// grows tight-knit clusters around the strongest remaining edges of the
/// affinity graph, guided by the loop-aware weighted-density score
/// (Figure 7) and the merge-benefit function m(A,B) = Sc - (1-T) max(Sa,Sb)
/// (Figure 8). The paper finds these clusters more amenable to region-based
/// co-allocation than modularity, HCS, or cut-based clustering;
/// bench/ablation_grouping compares against such baselines.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_GROUP_GROUPING_H
#define HALO_GROUP_GROUPING_H

#include "graph/AffinityGraph.h"

#include <cstdint>
#include <limits>
#include <vector>

namespace halo {

class Executor;

/// Tuning knobs of Figure 6 plus the artefact's --max-groups flag.
// (BinaryWriter/BinaryReader come in via graph/AffinityGraph.h's forward
// declarations; saveGroups/loadGroups below use them.)
struct GroupingOptions {
  /// Edges lighter than this are dropped before grouping (args.min_weight).
  uint64_t MinEdgeWeight = 2;
  /// Merge tolerance T; "performs well at around 5%".
  double MergeTolerance = 0.05;
  /// A finished group is kept only if its internal weight reaches
  /// gthresh * graph.accesses.
  double GroupWeightThreshold = 0.005;
  /// args.max_group_members.
  uint32_t MaxGroupMembers = 16;
  /// Upper bound on emitted groups (the artefact passes --max-groups 4 for
  /// roms); 0 means unlimited.
  uint32_t MaxGroups = 0;
};

/// One allocation-context group.
struct Group {
  std::vector<GraphNodeId> Members;
  uint64_t Weight = 0;     ///< Internal edge weight.
  uint64_t Accesses = 0;   ///< Sum of member access counts (popularity).
};

/// The merge benefit of adding \p Candidate to \p Members (Figure 8).
double mergeBenefit(const AffinityGraph &Graph,
                    const std::vector<GraphNodeId> &Members,
                    GraphNodeId Candidate, double Tolerance);

/// Runs the Figure 6 grouping algorithm over \p Graph (which it copies so
/// edge thresholding does not disturb the caller's graph). Groups are
/// returned sorted by popularity (most accessed first), which is the order
/// identification processes them in.
///
/// This is the incremental implementation: a one-time weight-sorted edge
/// list with a forward-only availability sweep replaces the per-group edge
/// rescan, and merge benefits are computed from running group aggregates
/// plus each candidate's accumulated weight into the group (O(deg) via the
/// CSR snapshot) instead of rescoring the union. Output is bit-identical
/// to buildGroupsReference; bench/bench_grouping_scale measures the gap.
std::vector<Group> buildGroups(const AffinityGraph &Graph,
                               const GroupingOptions &Options);

/// buildGroups sharded by connected component on \p Pool: a union-find over
/// the CSR snapshot partitions the thresholded graph, components are grouped
/// in parallel as independent Executor tasks (each running the same
/// incremental core buildGroups runs), and the per-component group lists are
/// stitched in first-appearance component order before the one global
/// popularity sort. Output is bit-identical to buildGroups (and so to
/// buildGroupsReference) at every jobs count.
///
/// Exactness rests on a tolerance bound: with the Figure 7 score
/// W / (loops + pairs), a candidate with no edge into the group beats the
/// empty benefit only when T > k / (L + 1 + p(k+1)) for a group of k
/// members with L member loops -- minimized at L = k, giving
/// f(k) = k / (k + 1 + k(k+1)/2), non-increasing in k. Whenever
/// MergeTolerance <= 0.999 * f(MaxGroupMembers - 1) (~0.1103 at the default
/// 16 members, comfortably above the paper's T = 0.05), groups can never
/// span components and per-component grouping is exact. Options outside the
/// bound fall back to one serial task -- still bit-identical, just not
/// parallel.
std::vector<Group> buildGroupsParallel(const AffinityGraph &Graph,
                                       const GroupingOptions &Options,
                                       Executor &Pool);

/// The direct transliteration of Figure 6 (rescans all edges per group and
/// rescores the whole union per merge candidate). Kept as the semantic
/// reference: tests assert buildGroups produces identical output, and the
/// scale bench reports the speedup against it.
std::vector<Group> buildGroupsReference(const AffinityGraph &Graph,
                                        const GroupingOptions &Options);

/// Naive comparison clusterer for the ablation bench: connected components
/// of the thresholded graph, split to MaxGroupMembers in id order. Roughly
/// what a cut-based scheme with no density objective produces.
std::vector<Group> buildComponentGroups(const AffinityGraph &Graph,
                                        const GroupingOptions &Options);

/// Serializes \p Groups (members, weight, popularity) preserving order --
/// the popularity order identification depends on survives a round trip.
void saveGroups(const std::vector<Group> &Groups, BinaryWriter &W);

/// Decodes a saveGroups() stream; throws SerializationError on truncation
/// or out-of-range member ids.
std::vector<Group> loadGroups(BinaryReader &R);

} // namespace halo

#endif // HALO_GROUP_GROUPING_H
