//===- group/Grouping.cpp - Context grouping (Fig. 6-8) --------------------===//

#include "group/Grouping.h"

#include "graph/Adjacency.h"
#include "support/BinaryIO.h"
#include "support/Executor.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace halo;

namespace {

/// The Figure 8 merge benefit m(A, B) = Sc - (1 - T) * max(Sa, Sb). Shared
/// between the reference and incremental paths for bit-identical rounding.
inline double benefitOf(double Sc, double Sa, double Sb, double Tolerance) {
  return Sc - (1.0 - Tolerance) * std::max(Sa, Sb);
}

inline uint64_t pairCount(uint64_t NumNodes) {
  return NumNodes * (NumNodes - 1) / 2;
}

/// Shared epilogue of every group builder: identification processes groups
/// most-popular-first (Fig. 10), capped at MaxGroups. The reference and
/// incremental builders MUST share this for their bit-identical-output
/// contract to hold.
std::vector<Group> finalizeGroups(std::vector<Group> Groups,
                                  const GroupingOptions &Options) {
  std::sort(Groups.begin(), Groups.end(), [](const Group &A, const Group &B) {
    if (A.Accesses != B.Accesses)
      return A.Accesses > B.Accesses;
    return A.Members < B.Members;
  });
  if (Options.MaxGroups && Groups.size() > Options.MaxGroups)
    Groups.resize(Options.MaxGroups);
  return Groups;
}

} // namespace

double halo::mergeBenefit(const AffinityGraph &Graph,
                          const std::vector<GraphNodeId> &Members,
                          GraphNodeId Candidate, double Tolerance) {
  // m(A, B) = Sc - (1 - T) * max(Sa, Sb)
  double Sa = Graph.score(Members);
  double Sb = Graph.score({Candidate});
  std::vector<GraphNodeId> Union = Members;
  Union.push_back(Candidate);
  double Sc = Graph.score(Union);
  return benefitOf(Sc, Sa, Sb, Tolerance);
}

std::vector<Group>
halo::buildGroupsReference(const AffinityGraph &Input,
                           const GroupingOptions &Options) {
  AffinityGraph Graph = Input;
  Graph.removeLightEdges(Options.MinEdgeWeight);

  std::unordered_set<GraphNodeId> Avail;
  for (GraphNodeId Node : Graph.nodes())
    Avail.insert(Node);

  std::vector<Group> Groups;
  while (!Avail.empty()) {
    // Form a group around the hottest node in the strongest available edge.
    bool Found = false;
    AffinityGraph::Edge Best{0, 0, 0};
    for (const AffinityGraph::Edge &E : Graph.edges()) {
      if (!Avail.count(E.U) || !Avail.count(E.V))
        continue;
      if (!Found || E.Weight > Best.Weight) {
        Best = E;
        Found = true;
      }
    }
    if (!Found)
      break; // No edges left between available nodes.

    GraphNodeId Seed =
        Graph.nodeAccesses(Best.U) >= Graph.nodeAccesses(Best.V) ? Best.U
                                                                 : Best.V;
    Group G;
    G.Members.push_back(Seed);
    Avail.erase(Seed);

    // Grow the group greedily by maximum merge benefit.
    constexpr GraphNodeId NoMatch = ~0u;
    while (G.Members.size() < Options.MaxGroupMembers) {
      double BestScore = 0.0;
      GraphNodeId BestMatch = NoMatch;
      // Deterministic iteration: visit candidates in ascending id order.
      std::vector<GraphNodeId> Candidates(Avail.begin(), Avail.end());
      std::sort(Candidates.begin(), Candidates.end());
      for (GraphNodeId Stranger : Candidates) {
        double Benefit =
            mergeBenefit(Graph, G.Members, Stranger, Options.MergeTolerance);
        if (Benefit > BestScore) {
          BestScore = Benefit;
          BestMatch = Stranger;
        }
      }
      if (BestMatch == NoMatch)
        break;
      G.Members.push_back(BestMatch);
      Avail.erase(BestMatch);
    }

    // Keep the group only if it exceeds the minimum group weight.
    G.Weight = Graph.subgraphWeight(G.Members);
    double MinWeight = Options.GroupWeightThreshold *
                       static_cast<double>(Graph.totalAccesses());
    if (static_cast<double>(G.Weight) >= MinWeight) {
      for (GraphNodeId Member : G.Members)
        G.Accesses += Graph.nodeAccesses(Member);
      std::sort(G.Members.begin(), G.Members.end());
      Groups.push_back(std::move(G));
    }
  }

  return finalizeGroups(std::move(Groups), Options);
}

//===----------------------------------------------------------------------===//
// Incremental grouping
//
// Output-identical to buildGroupsReference (tests/grouping_equivalence_test
// sweeps randomized graphs), but asymptotically faster:
//
//  * The strongest-available-edge search is a single cursor over a one-time
//    (weight desc, U asc, V asc)-sorted edge list. Availability only ever
//    shrinks, so an edge skipped once is dead forever and the cursor never
//    backs up: O(E log E) total instead of O(E) per group.
//
//  * Group aggregates (WeightSum, loop count) and every available node's
//    weight into the group (WeightToGroup) are maintained incrementally, so
//    a candidate's merge benefit is O(1) arithmetic instead of an O(k^2)
//    rescore of the union.
//
//  * Only candidates whose benefit can differ are enumerated, in ascending
//    order: (a) the group frontier (WeightToGroup > 0, tracked as members
//    are merged, O(deg) via the CSR snapshot), (b) loop-carrying nodes
//    (their self-edge raises Sb/Sc), and (c) one representative of the
//    remaining "no edge into the group, no loop" class -- every node in
//    that class has the exact same benefit, so only the lowest id could
//    ever win the reference's first-strictly-greater scan.
//===----------------------------------------------------------------------===//

namespace {

/// Runs the incremental grouping loop over \p Subset (ascending dense
/// indices into \p Adj) and appends every kept group to \p Out. The scratch
/// arrays are full-graph-sized (indexed by dense id) and must arrive
/// all-zero; they are returned all-zero, so one pair serves any number of
/// consecutive subsets. buildGroups passes every node as one subset;
/// buildGroupsParallel passes one connected component per call.
void runIncremental(const AdjacencySnapshot &Adj,
                    const std::vector<uint32_t> &Subset,
                    const GroupingOptions &Options, double MinWeight,
                    std::vector<uint64_t> &WeightToGroup,
                    std::vector<char> &Avail, std::vector<Group> &Out) {
  // One-time weight-sorted edge list over dense indices. Dense order equals
  // id order, so (Weight desc, U asc, V asc) reproduces the reference's
  // pick: maximum weight, first in (U, V) order among ties.
  struct SortedEdge {
    uint64_t Weight;
    uint32_t U, V; ///< Dense, U <= V; U == V encodes a loop.
  };
  std::vector<SortedEdge> EdgeList;
  for (uint32_t U : Subset) {
    if (Adj.loopWeight(U) > 0)
      EdgeList.push_back({Adj.loopWeight(U), U, U});
    Span<uint32_t> Row = Adj.neighbors(U);
    Span<uint64_t> RowWeights = Adj.neighborWeights(U);
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I] > U)
        EdgeList.push_back({RowWeights[I], U, Row[I]});
  }
  std::sort(EdgeList.begin(), EdgeList.end(),
            [](const SortedEdge &A, const SortedEdge &B) {
              if (A.Weight != B.Weight)
                return A.Weight > B.Weight;
              if (A.U != B.U)
                return A.U < B.U;
              return A.V < B.V;
            });

  // Ascending lists of loop-carrying dense nodes (candidate class (b)) and
  // loop-free nodes (the pool class (c) representatives come from). Both
  // are compacted lazily as members are consumed.
  std::vector<uint32_t> LoopNodes;
  std::vector<uint32_t> NoLoopNodes;
  for (uint32_t Dense : Subset)
    (Adj.loopWeight(Dense) > 0 ? LoopNodes : NoLoopNodes).push_back(Dense);

  for (uint32_t Dense : Subset)
    Avail[Dense] = 1;
  uint32_t AvailCount = static_cast<uint32_t>(Subset.size());
  size_t NoLoopCursor = 0; ///< Consumed prefix of NoLoopNodes; monotone.
  size_t Cursor = 0;       ///< Into EdgeList; only ever advances.

  // Per-group incremental state, reset via Touched after each group.
  std::vector<uint32_t> Touched;
  std::vector<uint32_t> Frontier;   ///< Avail nodes with WeightToGroup > 0.
  std::vector<uint32_t> Candidates; ///< Scratch, rebuilt per merge step.

  constexpr uint32_t NoMatch = AdjacencySnapshot::InvalidDense;

  while (AvailCount > 0) {
    while (Cursor < EdgeList.size() &&
           (!Avail[EdgeList[Cursor].U] || !Avail[EdgeList[Cursor].V]))
      ++Cursor;
    if (Cursor == EdgeList.size())
      break; // No edges left between available nodes.

    const SortedEdge &Best = EdgeList[Cursor];
    uint32_t Seed =
        Adj.accesses(Best.U) >= Adj.accesses(Best.V) ? Best.U : Best.V;

    std::vector<uint32_t> Members{Seed};
    Avail[Seed] = 0;
    --AvailCount;

    uint64_t WeightSum = Adj.loopWeight(Seed);
    uint64_t LoopCount = WeightSum > 0 ? 1 : 0;

    Touched.clear();
    Frontier.clear();
    auto absorbEdges = [&](uint32_t Member) {
      Span<uint32_t> Row = Adj.neighbors(Member);
      Span<uint64_t> RowWeights = Adj.neighborWeights(Member);
      for (size_t I = 0; I < Row.size(); ++I) {
        uint32_t Nb = Row[I];
        if (WeightToGroup[Nb] == 0) {
          Touched.push_back(Nb);
          if (Avail[Nb])
            Frontier.push_back(Nb);
        }
        WeightToGroup[Nb] += RowWeights[I];
      }
    };
    absorbEdges(Seed);

    while (Members.size() < Options.MaxGroupMembers && AvailCount > 0) {
      const uint64_t Size = Members.size();
      const double Sa = affinityScoreFrom(WeightSum, LoopCount, pairCount(Size));
      const uint64_t PairsUnion = pairCount(Size + 1);

      // Enumerate the candidates whose benefit can differ, ascending.
      Candidates.clear();
      for (uint32_t F : Frontier)
        if (Avail[F])
          Candidates.push_back(F);
      uint32_t DeadLoopNodes = 0;
      for (uint32_t L : LoopNodes) {
        if (!Avail[L]) {
          ++DeadLoopNodes;
          continue;
        }
        if (WeightToGroup[L] == 0)
          Candidates.push_back(L);
      }
      // Consumed loop nodes never come back; compact once they dominate.
      if (DeadLoopNodes * 2 > LoopNodes.size())
        LoopNodes.erase(std::remove_if(LoopNodes.begin(), LoopNodes.end(),
                                       [&](uint32_t L) { return !Avail[L]; }),
                        LoopNodes.end());
      // Class (c) representative: the lowest available loop-free node with
      // no edge into the group. Availability only shrinks, so the cursor
      // skips the consumed prefix permanently; past it, the only nodes
      // skipped without progress are current-group frontier members
      // (W2G > 0, group-local) and dead interior nodes, compacted once
      // they dominate the scan.
      while (NoLoopCursor < NoLoopNodes.size() &&
             !Avail[NoLoopNodes[NoLoopCursor]])
        ++NoLoopCursor;
      size_t DeadNoLoop = 0;
      for (size_t I = NoLoopCursor; I < NoLoopNodes.size(); ++I) {
        uint32_t Rep = NoLoopNodes[I];
        if (!Avail[Rep]) {
          ++DeadNoLoop;
          continue;
        }
        if (WeightToGroup[Rep] > 0)
          continue;
        Candidates.push_back(Rep);
        break;
      }
      if (DeadNoLoop * 2 > NoLoopNodes.size() - NoLoopCursor) {
        NoLoopNodes.erase(
            std::remove_if(NoLoopNodes.begin() + NoLoopCursor,
                           NoLoopNodes.end(),
                           [&](uint32_t Nd) { return !Avail[Nd]; }),
            NoLoopNodes.end());
      }
      std::sort(Candidates.begin(), Candidates.end());

      double BestScore = 0.0;
      uint32_t BestMatch = NoMatch;
      for (uint32_t Cand : Candidates) {
        uint64_t Loop = Adj.loopWeight(Cand);
        double Sb = Loop > 0 ? static_cast<double>(Loop) : 0.0;
        double Sc = affinityScoreFrom(WeightSum + WeightToGroup[Cand] + Loop,
                              LoopCount + (Loop > 0 ? 1 : 0), PairsUnion);
        double Benefit = benefitOf(Sc, Sa, Sb, Options.MergeTolerance);
        if (Benefit > BestScore) {
          BestScore = Benefit;
          BestMatch = Cand;
        }
      }
      if (BestMatch == NoMatch)
        break;

      Members.push_back(BestMatch);
      Avail[BestMatch] = 0;
      --AvailCount;
      WeightSum += WeightToGroup[BestMatch] + Adj.loopWeight(BestMatch);
      if (Adj.loopWeight(BestMatch) > 0)
        ++LoopCount;
      absorbEdges(BestMatch);
    }

    // WeightSum is exactly subgraphWeight(Members): every intra-group edge
    // entered once via WeightToGroup at merge time, plus member loops.
    if (static_cast<double>(WeightSum) >= MinWeight) {
      Group G;
      G.Weight = WeightSum;
      G.Members.reserve(Members.size());
      for (uint32_t Dense : Members) {
        G.Accesses += Adj.accesses(Dense);
        G.Members.push_back(Adj.nodeId(Dense));
      }
      std::sort(G.Members.begin(), G.Members.end());
      Out.push_back(std::move(G));
    }

    for (uint32_t T : Touched)
      WeightToGroup[T] = 0;
  }

  // Hand the scratch back all-zero for the next subset (nodes the edge
  // cursor never consumed are still flagged available).
  for (uint32_t Dense : Subset)
    Avail[Dense] = 0;
}

/// True when MergeTolerance is low enough that a candidate with no edge
/// into the group can never win a merge step, making grouping exactly
/// component-local (the condition buildGroupsParallel's sharding needs).
///
/// With the Figure 7 score W / (loops + pairs), a zero-connecting-weight
/// candidate's benefit exceeds 0 only when T > k / (L + 1 + p(k+1)) for
/// some reachable group state (k members, L <= k member loops, p(n) =
/// n(n-1)/2). The minimum over L is at L = k: f(k) = k / (k+1+k(k+1)/2),
/// non-increasing in k, so the binding case is the largest growable group,
/// k = MaxGroupMembers - 1 (f(15) ~ 0.1103 at the default 16 members,
/// above the paper's T = 0.05). The 0.999 margin keeps floating-point
/// rounding in the benefit comparison on the safe side of the bound.
bool parallelGroupingIsExact(const GroupingOptions &Options) {
  if (Options.MaxGroupMembers <= 1)
    return true; // Groups never grow past their seed.
  uint64_t K = Options.MaxGroupMembers - 1;
  double Bound =
      static_cast<double>(K) / static_cast<double>(K + 1 + K * (K + 1) / 2);
  return Options.MergeTolerance <= 0.999 * Bound;
}

} // namespace

std::vector<Group> halo::buildGroups(const AffinityGraph &Input,
                                     const GroupingOptions &Options) {
  AffinityGraph Graph = Input;
  Graph.removeLightEdges(Options.MinEdgeWeight);
  AdjacencySnapshot Adj = Graph.buildAdjacency();
  const uint32_t N = Adj.numNodes();
  if (N == 0)
    return {};

  std::vector<uint32_t> AllNodes(N);
  for (uint32_t Dense = 0; Dense < N; ++Dense)
    AllNodes[Dense] = Dense;
  std::vector<uint64_t> WeightToGroup(N, 0);
  std::vector<char> Avail(N, 0);
  std::vector<Group> Groups;
  runIncremental(Adj, AllNodes, Options,
                 Options.GroupWeightThreshold *
                     static_cast<double>(Graph.totalAccesses()),
                 WeightToGroup, Avail, Groups);
  return finalizeGroups(std::move(Groups), Options);
}

std::vector<Group> halo::buildGroupsParallel(const AffinityGraph &Input,
                                             const GroupingOptions &Options,
                                             Executor &Pool) {
  AffinityGraph Graph = Input;
  Graph.removeLightEdges(Options.MinEdgeWeight);
  AdjacencySnapshot Adj = Graph.buildAdjacency();
  const uint32_t N = Adj.numNodes();
  if (N == 0)
    return {};
  const double MinWeight = Options.GroupWeightThreshold *
                           static_cast<double>(Graph.totalAccesses());

  if (!parallelGroupingIsExact(Options)) {
    // Tolerance above the component-locality bound: groups could span
    // components, so shard-and-stitch would diverge. One serial task keeps
    // the output contract (bit-identical to buildGroups) at the cost of
    // the parallelism.
    std::vector<uint32_t> AllNodes(N);
    for (uint32_t Dense = 0; Dense < N; ++Dense)
      AllNodes[Dense] = Dense;
    std::vector<uint64_t> WeightToGroup(N, 0);
    std::vector<char> Avail(N, 0);
    std::vector<Group> Groups;
    runIncremental(Adj, AllNodes, Options, MinWeight, WeightToGroup, Avail,
                   Groups);
    return finalizeGroups(std::move(Groups), Options);
  }

  // Union-find over the snapshot (path halving, as buildComponentGroups).
  std::vector<uint32_t> Parent(N);
  for (uint32_t Dense = 0; Dense < N; ++Dense)
    Parent[Dense] = Dense;
  auto Find = [&](uint32_t Node) {
    while (Parent[Node] != Node) {
      Parent[Node] = Parent[Parent[Node]];
      Node = Parent[Node];
    }
    return Node;
  };
  for (uint32_t U = 0; U < N; ++U)
    for (uint32_t Nb : Adj.neighbors(U))
      Parent[Find(U)] = Find(Nb);

  // Components in first-appearance (ascending dense) order; their node
  // lists come out ascending for free. Isolated loop-free nodes can never
  // seed or join a group, so they are skipped outright. Singleton nodes
  // with a loop edge stay: the reference seeds a group from a loop edge.
  constexpr uint32_t NoComp = AdjacencySnapshot::InvalidDense;
  std::vector<uint32_t> CompOf(N, NoComp);
  std::vector<std::vector<uint32_t>> CompNodes;
  std::vector<uint64_t> CompMass; ///< Degree mass, for bucket balancing.
  for (uint32_t Dense = 0; Dense < N; ++Dense) {
    if (Adj.degree(Dense) == 0 && Adj.loopWeight(Dense) == 0)
      continue;
    uint32_t Root = Find(Dense);
    if (CompOf[Root] == NoComp) {
      CompOf[Root] = static_cast<uint32_t>(CompNodes.size());
      CompNodes.emplace_back();
      CompMass.push_back(0);
    }
    CompNodes[CompOf[Root]].push_back(Dense);
    CompMass[CompOf[Root]] += Adj.degree(Dense) + 1;
  }
  const size_t NumComps = CompNodes.size();
  if (NumComps == 0)
    return {};

  // Contiguous component ranges balanced by degree mass, one Executor task
  // each. Contiguity makes the merge a concatenation in component order;
  // the scratch arrays live inside the task so peak memory scales with the
  // workers actually running, not the bucket count.
  const size_t BucketGoal =
      std::min(NumComps, static_cast<size_t>(Pool.workers()) * 4);
  uint64_t TotalMass = 0;
  for (uint64_t Mass : CompMass)
    TotalMass += Mass;
  const uint64_t MassPerBucket =
      (TotalMass + BucketGoal - 1) / BucketGoal;
  std::vector<std::pair<size_t, size_t>> Buckets; ///< [begin, end) comps.
  for (size_t Begin = 0; Begin < NumComps;) {
    size_t End = Begin;
    uint64_t Mass = 0;
    while (End < NumComps && (End == Begin || Mass < MassPerBucket))
      Mass += CompMass[End++];
    Buckets.emplace_back(Begin, End);
    Begin = End;
  }

  std::vector<std::vector<Group>> BucketGroups(Buckets.size());
  Pool.parallelFor(Buckets.size(), [&](size_t B) {
    std::vector<uint64_t> WeightToGroup(N, 0);
    std::vector<char> Avail(N, 0);
    for (size_t C = Buckets[B].first; C < Buckets[B].second; ++C)
      runIncremental(Adj, CompNodes[C], Options, MinWeight, WeightToGroup,
                     Avail, BucketGroups[B]);
  });

  // Deterministic stitch: concatenate in component order. The pre-sort
  // order is immaterial to the output -- finalizeGroups' popularity sort
  // is a strict total order (member sets are disjoint) -- but a
  // deterministic merge keeps intermediate state reproducible too.
  std::vector<Group> Groups;
  for (std::vector<Group> &FromBucket : BucketGroups)
    for (Group &G : FromBucket)
      Groups.push_back(std::move(G));
  return finalizeGroups(std::move(Groups), Options);
}

std::vector<Group> halo::buildComponentGroups(const AffinityGraph &Input,
                                              const GroupingOptions &Options) {
  AffinityGraph Graph = Input;
  Graph.removeLightEdges(Options.MinEdgeWeight);

  // Union-find over the surviving edges.
  std::vector<GraphNodeId> Nodes = Graph.nodes();
  std::unordered_map<GraphNodeId, GraphNodeId> Parent;
  for (GraphNodeId N : Nodes)
    Parent[N] = N;
  auto Find = [&](GraphNodeId N) {
    while (Parent[N] != N) {
      Parent[N] = Parent[Parent[N]];
      N = Parent[N];
    }
    return N;
  };
  for (const AffinityGraph::Edge &E : Graph.edges())
    Parent[Find(E.U)] = Find(E.V);

  std::unordered_map<GraphNodeId, Group> ByRoot;
  for (GraphNodeId N : Nodes)
    ByRoot[Find(N)].Members.push_back(N);

  std::vector<Group> Groups;
  for (auto &[Root, G] : ByRoot) {
    if (G.Members.size() < 2)
      continue;
    std::sort(G.Members.begin(), G.Members.end());
    // Split oversized components mechanically.
    for (size_t Start = 0; Start < G.Members.size();
         Start += Options.MaxGroupMembers) {
      Group Part;
      size_t End =
          std::min(G.Members.size(), Start + Options.MaxGroupMembers);
      Part.Members.assign(G.Members.begin() + Start, G.Members.begin() + End);
      if (Part.Members.size() < 2)
        continue;
      Part.Weight = Graph.subgraphWeight(Part.Members);
      for (GraphNodeId Member : Part.Members)
        Part.Accesses += Graph.nodeAccesses(Member);
      Groups.push_back(std::move(Part));
    }
  }
  return finalizeGroups(std::move(Groups), Options);
}

void halo::saveGroups(const std::vector<Group> &Groups, BinaryWriter &W) {
  W.varint(Groups.size());
  for (const Group &G : Groups) {
    W.varint(G.Members.size());
    for (GraphNodeId Member : G.Members)
      W.varint(Member);
    W.varint(G.Weight);
    W.varint(G.Accesses);
  }
}

std::vector<Group> halo::loadGroups(BinaryReader &R) {
  std::vector<Group> Groups;
  uint64_t Count = R.varint();
  Groups.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I < Count; ++I) {
    Group G;
    uint64_t Members = R.varint();
    G.Members.reserve(static_cast<size_t>(Members));
    for (uint64_t J = 0; J < Members; ++J) {
      uint64_t Member = R.varint();
      if (Member > UINT32_MAX)
        throw SerializationError("groups: member id out of range");
      G.Members.push_back(static_cast<GraphNodeId>(Member));
    }
    G.Weight = R.varint();
    G.Accesses = R.varint();
    Groups.push_back(std::move(G));
  }
  return Groups;
}
