//===- group/Grouping.cpp - Context grouping (Fig. 6-8) --------------------===//

#include "group/Grouping.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace halo;

double halo::mergeBenefit(const AffinityGraph &Graph,
                          const std::vector<GraphNodeId> &Members,
                          GraphNodeId Candidate, double Tolerance) {
  // m(A, B) = Sc - (1 - T) * max(Sa, Sb)
  double Sa = Graph.score(Members);
  double Sb = Graph.score({Candidate});
  std::vector<GraphNodeId> Union = Members;
  Union.push_back(Candidate);
  double Sc = Graph.score(Union);
  return Sc - (1.0 - Tolerance) * std::max(Sa, Sb);
}

std::vector<Group> halo::buildGroups(const AffinityGraph &Input,
                                     const GroupingOptions &Options) {
  AffinityGraph Graph = Input;
  Graph.removeLightEdges(Options.MinEdgeWeight);

  std::unordered_set<GraphNodeId> Avail;
  for (GraphNodeId Node : Graph.nodes())
    Avail.insert(Node);

  std::vector<Group> Groups;
  while (!Avail.empty()) {
    // Form a group around the hottest node in the strongest available edge.
    bool Found = false;
    AffinityGraph::Edge Best{0, 0, 0};
    for (const AffinityGraph::Edge &E : Graph.edges()) {
      if (!Avail.count(E.U) || !Avail.count(E.V))
        continue;
      if (!Found || E.Weight > Best.Weight) {
        Best = E;
        Found = true;
      }
    }
    if (!Found)
      break; // No edges left between available nodes.

    GraphNodeId Seed =
        Graph.nodeAccesses(Best.U) >= Graph.nodeAccesses(Best.V) ? Best.U
                                                                 : Best.V;
    Group G;
    G.Members.push_back(Seed);
    Avail.erase(Seed);

    // Grow the group greedily by maximum merge benefit.
    constexpr GraphNodeId NoMatch = ~0u;
    while (G.Members.size() < Options.MaxGroupMembers) {
      double BestScore = 0.0;
      GraphNodeId BestMatch = NoMatch;
      // Deterministic iteration: visit candidates in ascending id order.
      std::vector<GraphNodeId> Candidates(Avail.begin(), Avail.end());
      std::sort(Candidates.begin(), Candidates.end());
      for (GraphNodeId Stranger : Candidates) {
        double Benefit =
            mergeBenefit(Graph, G.Members, Stranger, Options.MergeTolerance);
        if (Benefit > BestScore) {
          BestScore = Benefit;
          BestMatch = Stranger;
        }
      }
      if (BestMatch == NoMatch)
        break;
      G.Members.push_back(BestMatch);
      Avail.erase(BestMatch);
    }

    // Keep the group only if it exceeds the minimum group weight.
    G.Weight = Graph.subgraphWeight(G.Members);
    double MinWeight = Options.GroupWeightThreshold *
                       static_cast<double>(Graph.totalAccesses());
    if (static_cast<double>(G.Weight) >= MinWeight) {
      for (GraphNodeId Member : G.Members)
        G.Accesses += Graph.nodeAccesses(Member);
      std::sort(G.Members.begin(), G.Members.end());
      Groups.push_back(std::move(G));
    }
  }

  // Identification processes groups most-popular-first (Fig. 10).
  std::sort(Groups.begin(), Groups.end(), [](const Group &A, const Group &B) {
    if (A.Accesses != B.Accesses)
      return A.Accesses > B.Accesses;
    return A.Members < B.Members;
  });
  if (Options.MaxGroups && Groups.size() > Options.MaxGroups)
    Groups.resize(Options.MaxGroups);
  return Groups;
}

std::vector<Group> halo::buildComponentGroups(const AffinityGraph &Input,
                                              const GroupingOptions &Options) {
  AffinityGraph Graph = Input;
  Graph.removeLightEdges(Options.MinEdgeWeight);

  // Union-find over the surviving edges.
  std::vector<GraphNodeId> Nodes = Graph.nodes();
  std::unordered_map<GraphNodeId, GraphNodeId> Parent;
  for (GraphNodeId N : Nodes)
    Parent[N] = N;
  auto Find = [&](GraphNodeId N) {
    while (Parent[N] != N) {
      Parent[N] = Parent[Parent[N]];
      N = Parent[N];
    }
    return N;
  };
  for (const AffinityGraph::Edge &E : Graph.edges())
    Parent[Find(E.U)] = Find(E.V);

  std::unordered_map<GraphNodeId, Group> ByRoot;
  for (GraphNodeId N : Nodes)
    ByRoot[Find(N)].Members.push_back(N);

  std::vector<Group> Groups;
  for (auto &[Root, G] : ByRoot) {
    if (G.Members.size() < 2)
      continue;
    std::sort(G.Members.begin(), G.Members.end());
    // Split oversized components mechanically.
    for (size_t Start = 0; Start < G.Members.size();
         Start += Options.MaxGroupMembers) {
      Group Part;
      size_t End =
          std::min(G.Members.size(), Start + Options.MaxGroupMembers);
      Part.Members.assign(G.Members.begin() + Start, G.Members.begin() + End);
      if (Part.Members.size() < 2)
        continue;
      Part.Weight = Graph.subgraphWeight(Part.Members);
      for (GraphNodeId Member : Part.Members)
        Part.Accesses += Graph.nodeAccesses(Member);
      Groups.push_back(std::move(Part));
    }
  }
  std::sort(Groups.begin(), Groups.end(), [](const Group &A, const Group &B) {
    if (A.Accesses != B.Accesses)
      return A.Accesses > B.Accesses;
    return A.Members < B.Members;
  });
  if (Options.MaxGroups && Groups.size() > Options.MaxGroups)
    Groups.resize(Options.MaxGroups);
  return Groups;
}
