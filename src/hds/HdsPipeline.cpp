//===- hds/HdsPipeline.cpp - Hot-data-streams pipeline ----------------------===//

#include "hds/HdsPipeline.h"

#include "mem/SizeClassAllocator.h"
#include "trace/EventTrace.h"

using namespace halo;

HdsArtifacts
halo::optimizeBinaryHds(const Program &Prog, const EventTrace &Trace,
                        const HdsParameters &Params,
                        const MachineConfig &Machine) {
  return optimizeBinaryHds(
      Prog, [&](Runtime &RT) { RT.replay(Trace); }, Params, Machine);
}

HdsArtifacts
halo::optimizeBinaryHds(const Program &Prog,
                        const std::function<void(Runtime &)> &RunWorkload,
                        const HdsParameters &Params,
                        const MachineConfig &Machine) {
  HdsArtifacts Out;

  ProfileOptions ProfOpts = Params.Profile;
  ProfOpts.RecordReferenceTrace = true;

  SizeClassAllocator ProfileAlloc;
  Runtime RT(Prog, ProfileAlloc, Machine.Costs);
  HeapProfiler Profiler(Prog, ProfOpts);
  RT.addObserver(&Profiler);
  RunWorkload(RT);

  Out.Analysis = findHotStreams(Profiler.referenceTrace(), Params.Streams);
  std::vector<CoAllocationSet> Candidates = buildCoAllocationSets(
      Out.Analysis.Streams, Profiler.objects(), Params.CoAllocation);
  CoAllocationOptions Packing = Params.CoAllocation;
  Packing.MinBenefit = Packing.MinBenefitFraction *
                       static_cast<double>(Out.Analysis.TraceLength);
  Out.Groups = packCoAllocationSets(std::move(Candidates), Packing);
  Out.SiteToGroup = siteGroupMap(Out.Groups);
  return Out;
}
