//===- hds/HdsPipeline.cpp - Hot-data-streams pipeline ----------------------===//

#include "hds/HdsPipeline.h"

#include "mem/SizeClassAllocator.h"
#include "support/BinaryIO.h"
#include "trace/EventTrace.h"

using namespace halo;

HdsArtifacts
halo::optimizeBinaryHds(const Program &Prog, const EventTrace &Trace,
                        const HdsParameters &Params,
                        const MachineConfig &Machine) {
  return optimizeBinaryHds(
      Prog, [&](Runtime &RT) { RT.replay(Trace); }, Params, Machine);
}

HdsArtifacts
halo::optimizeBinaryHds(const Program &Prog,
                        const std::function<void(Runtime &)> &RunWorkload,
                        const HdsParameters &Params,
                        const MachineConfig &Machine) {
  HdsArtifacts Out;

  ProfileOptions ProfOpts = Params.Profile;
  ProfOpts.RecordReferenceTrace = true;

  SizeClassAllocator ProfileAlloc;
  Runtime RT(Prog, ProfileAlloc, Machine.Costs);
  HeapProfiler Profiler(Prog, ProfOpts);
  RT.addObserver(&Profiler);
  RunWorkload(RT);

  Out.Analysis = findHotStreams(Profiler.referenceTrace(), Params.Streams);
  std::vector<CoAllocationSet> Candidates = buildCoAllocationSets(
      Out.Analysis.Streams, Profiler.objects(), Params.CoAllocation);
  CoAllocationOptions Packing = Params.CoAllocation;
  Packing.MinBenefit = Packing.MinBenefitFraction *
                       static_cast<double>(Out.Analysis.TraceLength);
  Out.Groups = packCoAllocationSets(std::move(Candidates), Packing);
  Out.SiteToGroup = siteGroupMap(Out.Groups);
  return Out;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {
/// "HDSA": hot-data-streams artifact bundle.
constexpr uint32_t HdsArtifactMagic = 0x41534448;
constexpr uint32_t HdsArtifactVersion = 1;
} // namespace

void halo::saveHdsArtifacts(const HdsArtifacts &Art, BinaryWriter &W) {
  W.u32(HdsArtifactMagic);
  W.u32(HdsArtifactVersion);
  W.varint(Art.Analysis.Streams.size());
  for (const HotStream &Stream : Art.Analysis.Streams) {
    W.varint(Stream.Elements.size());
    for (uint32_t Element : Stream.Elements)
      W.varint(Element);
    W.varint(Stream.Frequency);
    W.varint(Stream.Heat);
  }
  W.varint(Art.Analysis.TraceLength);
  W.varint(Art.Analysis.GrammarRules);
  W.varint(Art.Analysis.CandidateStreams);
  W.varint(Art.Groups.size());
  for (const CoAllocationSet &Set : Art.Groups) {
    W.varint(Set.Sites.size());
    for (uint32_t Site : Set.Sites)
      W.varint(Site);
    W.f64(Set.Benefit);
  }
}

HdsArtifacts halo::loadHdsArtifacts(BinaryReader &R) {
  if (R.u32() != HdsArtifactMagic)
    throw SerializationError("hds artifacts: bad magic");
  uint32_t Version = R.u32();
  if (Version != HdsArtifactVersion)
    throw SerializationError("hds artifacts: unknown format version " +
                             std::to_string(Version));
  HdsArtifacts Art;
  uint64_t NumStreams = R.varint();
  Art.Analysis.Streams.reserve(static_cast<size_t>(NumStreams));
  for (uint64_t I = 0; I < NumStreams; ++I) {
    HotStream Stream;
    uint64_t NumElements = R.varint();
    Stream.Elements.reserve(static_cast<size_t>(NumElements));
    for (uint64_t J = 0; J < NumElements; ++J) {
      uint64_t Element = R.varint();
      if (Element > UINT32_MAX)
        throw SerializationError("hds artifacts: element id out of range");
      Stream.Elements.push_back(static_cast<uint32_t>(Element));
    }
    Stream.Frequency = R.varint();
    Stream.Heat = R.varint();
    Art.Analysis.Streams.push_back(std::move(Stream));
  }
  Art.Analysis.TraceLength = R.varint();
  Art.Analysis.GrammarRules = R.varint();
  Art.Analysis.CandidateStreams = R.varint();
  uint64_t NumGroups = R.varint();
  Art.Groups.reserve(static_cast<size_t>(NumGroups));
  for (uint64_t I = 0; I < NumGroups; ++I) {
    CoAllocationSet Set;
    uint64_t NumSites = R.varint();
    Set.Sites.reserve(static_cast<size_t>(NumSites));
    for (uint64_t J = 0; J < NumSites; ++J) {
      uint64_t Site = R.varint();
      if (Site > UINT32_MAX)
        throw SerializationError("hds artifacts: site id out of range");
      Set.Sites.push_back(static_cast<uint32_t>(Site));
    }
    Set.Benefit = R.f64();
    Art.Groups.push_back(std::move(Set));
  }
  // Derived exactly as optimizeBinaryHds derives it.
  Art.SiteToGroup = siteGroupMap(Art.Groups);
  return Art;
}
