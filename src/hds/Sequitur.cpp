//===- hds/Sequitur.cpp - SEQUITUR grammar inference ------------------------===//
//
// The implementation follows the canonical algorithm of Nevill-Manning &
// Witten: a start rule grows by appending terminals; whenever a digram
// (pair of adjacent symbols) occurs twice, the occurrences are replaced by
// a nonterminal (reusing an existing rule when the digram is exactly its
// body); whenever a rule's use count drops to one, the rule is inlined.
//
//===----------------------------------------------------------------------===//

#include "hds/Sequitur.h"

#include <algorithm>
#include <cassert>

using namespace halo;

/// Grammar symbol: a node of a doubly linked, guard-terminated ring.
struct Sequitur::Symbol {
  Symbol *Next = nullptr;
  Symbol *Prev = nullptr;
  Rule *Ref = nullptr;    ///< Non-null: nonterminal referencing Ref.
  Rule *Owner = nullptr;  ///< Non-null: this is the guard of Owner.
  uint32_t Terminal = 0;  ///< Valid for plain terminals.

  bool isGuard() const { return Owner != nullptr; }
  bool isNonTerminal() const { return Ref != nullptr; }
};

/// Grammar rule with an embedded guard node.
struct Sequitur::Rule {
  Symbol Guard;
  uint32_t Id = 0;
  uint32_t UseCount = 0;
  bool Dead = false;

  Symbol *first() const { return Guard.Next; }
  Symbol *last() const { return Guard.Prev; }
};

Sequitur::Sequitur() {
  Start = newRule();
}

Sequitur::~Sequitur() {
  // Free every symbol still linked into a live rule.
  for (const std::unique_ptr<Rule> &R : Rules) {
    if (R->Dead)
      continue;
    Symbol *Sym = R->first();
    while (!Sym->isGuard()) {
      Symbol *Next = Sym->Next;
      delete Sym;
      Sym = Next;
    }
  }
}

Sequitur::Rule *Sequitur::newRule() {
  auto R = std::make_unique<Rule>();
  R->Id = static_cast<uint32_t>(Rules.size());
  R->Guard.Owner = R.get();
  R->Guard.Next = &R->Guard;
  R->Guard.Prev = &R->Guard;
  Rules.push_back(std::move(R));
  return Rules.back().get();
}

Sequitur::Symbol *Sequitur::newTerminal(uint32_t Terminal) {
  Symbol *Sym = new Symbol();
  Sym->Terminal = Terminal;
  return Sym;
}

Sequitur::Symbol *Sequitur::newNonTerminal(Rule *R) {
  Symbol *Sym = new Symbol();
  Sym->Ref = R;
  ++R->UseCount;
  return Sym;
}

uint64_t Sequitur::encode(const Symbol *Sym) {
  assert(!Sym->isGuard() && "guards have no digram value");
  if (Sym->isNonTerminal())
    return (uint64_t(Sym->Ref->Id) << 1) | 1;
  return uint64_t(Sym->Terminal) << 1;
}

uint64_t Sequitur::digramKey(const Symbol *First) const {
  return (encode(First) << 32) ^ encode(First->Next);
}

void Sequitur::removeDigram(Symbol *First) {
  if (First->isGuard() || First->Next->isGuard())
    return;
  auto It = Digrams.find(digramKey(First));
  if (It != Digrams.end() && It->second == First)
    Digrams.erase(It);
}

void Sequitur::join(Symbol *Left, Symbol *Right) {
  if (Left->Next)
    removeDigram(Left);
  Left->Next = Right;
  Right->Prev = Left;
}

void Sequitur::insertAfter(Symbol *Pos, Symbol *Sym) {
  join(Sym, Pos->Next);
  join(Pos, Sym);
}

void Sequitur::deleteSymbol(Symbol *Sym) {
  assert(!Sym->isGuard() && "cannot delete a guard");
  join(Sym->Prev, Sym->Next);
  removeDigram(Sym);
  if (Sym->isNonTerminal()) {
    assert(Sym->Ref->UseCount > 0 && "use count underflow");
    --Sym->Ref->UseCount;
  }
  delete Sym;
}

void Sequitur::append(uint32_t Terminal) {
  Symbol *Sym = newTerminal(Terminal);
  insertAfter(Start->last(), Sym);
  if (Sym->Prev != &Start->Guard)
    check(Sym->Prev);
}

bool Sequitur::check(Symbol *First) {
  if (First->isGuard() || First->Next->isGuard())
    return false;
  uint64_t Key = digramKey(First);
  auto [It, Inserted] = Digrams.emplace(Key, First);
  if (Inserted)
    return false;
  Symbol *Found = It->second;
  if (Found->Next != First) // Non-overlapping occurrence: enforce uniqueness.
    match(First, Found);
  return true;
}

void Sequitur::match(Symbol *New, Symbol *Found) {
  Rule *R;
  if (Found->Prev->isGuard() && Found->Next->Next->isGuard()) {
    // The found occurrence is exactly an existing rule's body; reuse it.
    R = Found->Prev->Owner;
    substitute(New, R);
  } else {
    // Create a new rule for the repeated digram.
    R = newRule();
    Symbol *A = New->isNonTerminal() ? newNonTerminal(New->Ref)
                                     : newTerminal(New->Terminal);
    Symbol *B = New->Next->isNonTerminal() ? newNonTerminal(New->Next->Ref)
                                           : newTerminal(New->Next->Terminal);
    insertAfter(R->last(), A);
    insertAfter(R->last(), B);
    substitute(Found, R);
    substitute(New, R);
    Digrams[digramKey(R->first())] = R->first();
  }
  // Rule utility: if the rule's first symbol is a nonterminal whose rule is
  // now used only once, inline it.
  if (R->first()->isNonTerminal() && R->first()->Ref->UseCount == 1)
    expandSoleUse(R->first());
}

void Sequitur::substitute(Symbol *First, Rule *R) {
  Symbol *Prev = First->Prev;
  deleteSymbol(First->Next);
  deleteSymbol(First);
  Symbol *NonTerm = newNonTerminal(R);
  insertAfter(Prev, NonTerm);
  if (!check(Prev))
    check(NonTerm);
}

void Sequitur::expandSoleUse(Symbol *NonTerminal) {
  // Only ever called on the first symbol of a rule body (see match()), so
  // the left neighbour is that rule's guard and forms no digram.
  Rule *R = NonTerminal->Ref;
  assert(R->UseCount == 1 && "expanding a shared rule");
  Symbol *Left = NonTerminal->Prev;
  Symbol *Right = NonTerminal->Next;
  Symbol *First = R->first();
  Symbol *Last = R->last();
  assert(Left->isGuard() && "sole-use expansion away from a rule head");
  assert(!First->isGuard() && "expanding an empty rule");

  // Unlink the nonterminal without touching the rule's body.
  removeDigram(NonTerminal);
  --R->UseCount;
  delete NonTerminal;

  Left->Next = First;
  First->Prev = Left;
  Last->Next = Right;
  Right->Prev = Last;

  if (!Right->isGuard())
    Digrams[digramKey(Last)] = Last;

  R->Dead = true;
  R->Guard.Next = &R->Guard;
  R->Guard.Prev = &R->Guard;
}

uint32_t Sequitur::numRules() const {
  uint32_t Count = 0;
  for (const std::unique_ptr<Rule> &R : Rules)
    if (!R->Dead)
      ++Count;
  return Count;
}

std::vector<Sequitur::ExtractedRule> Sequitur::extractRules() const {
  // Compact live rules to dense indices; the start rule becomes index 0.
  std::vector<const Rule *> Live;
  std::vector<uint32_t> DenseIndex(Rules.size(), ~0u);
  for (const std::unique_ptr<Rule> &R : Rules) {
    if (R->Dead)
      continue;
    DenseIndex[R->Id] = static_cast<uint32_t>(Live.size());
    Live.push_back(R.get());
  }

  std::vector<ExtractedRule> Out(Live.size());
  for (size_t I = 0; I < Live.size(); ++I) {
    Out[I].Id = static_cast<uint32_t>(I);
    for (const Symbol *Sym = Live[I]->first(); !Sym->isGuard();
         Sym = Sym->Next) {
      if (Sym->isNonTerminal())
        Out[I].Body.push_back(BodySymbol{true, DenseIndex[Sym->Ref->Id]});
      else
        Out[I].Body.push_back(BodySymbol{false, Sym->Terminal});
    }
  }

  // Expansion lengths, children first (bodies only reference other live
  // rules; the reference graph is acyclic).
  std::vector<int> State(Out.size(), 0); // 0 new, 1 visiting, 2 done
  std::vector<uint32_t> Stack;
  for (uint32_t Root = 0; Root < Out.size(); ++Root) {
    if (State[Root] == 2)
      continue;
    Stack.push_back(Root);
    while (!Stack.empty()) {
      uint32_t R = Stack.back();
      if (State[R] == 2) {
        Stack.pop_back();
        continue;
      }
      if (State[R] == 0) {
        State[R] = 1;
        for (const BodySymbol &B : Out[R].Body)
          if (B.IsRule && State[B.Value] == 0)
            Stack.push_back(B.Value);
        continue;
      }
      // All children done: compute.
      uint64_t Len = 0;
      for (const BodySymbol &B : Out[R].Body)
        Len += B.IsRule ? Out[B.Value].ExpansionLength : 1;
      Out[R].ExpansionLength = Len;
      State[R] = 2;
      Stack.pop_back();
    }
  }

  // Frequencies, parents first: freq(start) = 1; every reference to a rule
  // contributes the parent's frequency.
  std::vector<uint32_t> Order; // reverse postorder from the start rule.
  {
    std::vector<int> Seen(Out.size(), 0);
    std::vector<std::pair<uint32_t, size_t>> Dfs{{0u, size_t(0)}};
    std::vector<uint32_t> Post;
    Seen[0] = 1;
    while (!Dfs.empty()) {
      auto &[R, Idx] = Dfs.back();
      if (Idx == Out[R].Body.size()) {
        Post.push_back(R);
        Dfs.pop_back();
        continue;
      }
      const BodySymbol &B = Out[R].Body[Idx++];
      if (B.IsRule && !Seen[B.Value]) {
        Seen[B.Value] = 1;
        Dfs.emplace_back(B.Value, 0);
      }
    }
    Order.assign(Post.rbegin(), Post.rend());
  }
  if (!Out.empty())
    Out[0].Frequency = 1;
  for (uint32_t R : Order)
    for (const BodySymbol &B : Out[R].Body)
      if (B.IsRule)
        Out[B.Value].Frequency += Out[R].Frequency;

  return Out;
}

std::vector<uint32_t>
Sequitur::expandRule(const std::vector<ExtractedRule> &Rules,
                     uint32_t RuleIndex, uint64_t MaxLen) {
  std::vector<uint32_t> Result;
  std::vector<std::pair<uint32_t, size_t>> Stack{{RuleIndex, size_t(0)}};
  while (!Stack.empty() && Result.size() < MaxLen) {
    auto &[R, Idx] = Stack.back();
    if (Idx == Rules[R].Body.size()) {
      Stack.pop_back();
      continue;
    }
    const BodySymbol &B = Rules[R].Body[Idx++];
    if (B.IsRule)
      Stack.emplace_back(B.Value, 0);
    else
      Result.push_back(B.Value);
  }
  return Result;
}
