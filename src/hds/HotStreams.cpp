//===- hds/HotStreams.cpp - Hot data stream extraction ----------------------===//

#include "hds/HotStreams.h"

#include <algorithm>

using namespace halo;

HotStreamAnalysis halo::findHotStreams(const std::vector<uint32_t> &Trace,
                                       const HotStreamOptions &Options) {
  HotStreamAnalysis Out;
  Out.TraceLength = Trace.size();
  if (Trace.empty())
    return Out;

  Sequitur Grammar;
  for (uint32_t Ref : Trace)
    Grammar.append(Ref);

  std::vector<Sequitur::ExtractedRule> Rules = Grammar.extractRules();
  Out.GrammarRules = Rules.size();

  // Candidate streams: every non-start rule whose expansion fits the length
  // band. Rules longer than MaxLength contribute their leading MaxLength
  // elements (the stream the grammar repeats verbatim begins there); their
  // sub-rules cover interior regularity.
  std::vector<HotStream> Candidates;
  for (uint32_t R = 1; R < Rules.size(); ++R) {
    const Sequitur::ExtractedRule &Rule = Rules[R];
    if (Rule.ExpansionLength < Options.MinLength || Rule.Frequency < 2)
      continue;
    HotStream Stream;
    Stream.Elements = Sequitur::expandRule(Rules, R, Options.MaxLength);
    if (Stream.Elements.size() < Options.MinLength)
      continue;
    Stream.Frequency = Rule.Frequency;
    Stream.Heat = Stream.Frequency * Stream.Elements.size();
    Candidates.push_back(std::move(Stream));
  }
  Out.CandidateStreams = Candidates.size();

  // Hottest-first; minimality is served by preferring shorter streams on
  // heat ties (a sub-stream explains the same accesses more tightly).
  std::sort(Candidates.begin(), Candidates.end(),
            [](const HotStream &A, const HotStream &B) {
              if (A.Heat != B.Heat)
                return A.Heat > B.Heat;
              if (A.Elements.size() != B.Elements.size())
                return A.Elements.size() < B.Elements.size();
              return A.Elements < B.Elements;
            });

  // Select until the chosen streams account for the coverage fraction of
  // the trace.
  uint64_t Target = static_cast<uint64_t>(
      Options.Coverage * static_cast<double>(Out.TraceLength));
  uint64_t Covered = 0;
  for (HotStream &Stream : Candidates) {
    if (Covered >= Target)
      break;
    Covered += Stream.Heat;
    Out.Streams.push_back(std::move(Stream));
  }
  return Out;
}
