//===- hds/CoAllocation.cpp - Co-allocation set selection -------------------===//

#include "hds/CoAllocation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

using namespace halo;

std::vector<CoAllocationSet>
halo::buildCoAllocationSets(const std::vector<HotStream> &Streams,
                            const LiveObjectMap &Objects,
                            const CoAllocationOptions &Options) {
  // Accumulate benefit per distinct site set (many streams can suggest the
  // same grouping).
  std::map<std::vector<uint32_t>, double> BySites;
  for (const HotStream &Stream : Streams) {
    std::vector<uint32_t> Sites;
    uint64_t TotalSize = 0;
    double LinesScattered = 0.0;
    std::unordered_set<uint32_t> SeenObjects;
    for (uint32_t Obj : Stream.Elements) {
      if (!SeenObjects.insert(Obj).second)
        continue;
      const ObjectRecord &Rec = Objects.record(Obj);
      Sites.push_back(Rec.ImmediateSite);
      TotalSize += Rec.Size;
      // A scattered object occupies whole lines of its own.
      LinesScattered += static_cast<double>(
          (Rec.Size + Options.CacheLineSize - 1) / Options.CacheLineSize);
    }
    std::sort(Sites.begin(), Sites.end());
    Sites.erase(std::unique(Sites.begin(), Sites.end()), Sites.end());
    if (Sites.empty())
      continue;

    // Projected per-occurrence miss saving: scattered objects each occupy
    // whole cache lines; packed contiguously the stream needs only its
    // total size worth of lines (fractional -- tails are shared with
    // neighbouring occurrences).
    double LinesPacked = static_cast<double>(TotalSize) /
                         static_cast<double>(Options.CacheLineSize);
    if (LinesPacked >= LinesScattered)
      continue; // No projected benefit.
    double Benefit = static_cast<double>(Stream.Frequency) *
                     (LinesScattered - LinesPacked);
    BySites[Sites] += Benefit;
  }

  std::vector<CoAllocationSet> Candidates;
  Candidates.reserve(BySites.size());
  for (auto &[Sites, Benefit] : BySites)
    Candidates.push_back(CoAllocationSet{Sites, Benefit});
  return Candidates;
}

std::vector<CoAllocationSet>
halo::packCoAllocationSets(std::vector<CoAllocationSet> Candidates,
                           const CoAllocationOptions &Options) {
  // Greedy approximation to weighted set packing: order by
  // Benefit / sqrt(|S|) and take sets disjoint from everything chosen.
  std::sort(Candidates.begin(), Candidates.end(),
            [](const CoAllocationSet &A, const CoAllocationSet &B) {
              double Ka = A.Benefit / std::sqrt(double(A.Sites.size()));
              double Kb = B.Benefit / std::sqrt(double(B.Sites.size()));
              if (Ka != Kb)
                return Ka > Kb;
              return A.Sites < B.Sites; // Deterministic tie-break.
            });

  std::vector<CoAllocationSet> Chosen;
  std::unordered_set<uint32_t> Used;
  for (CoAllocationSet &Candidate : Candidates) {
    if (Options.MaxGroups && Chosen.size() >= Options.MaxGroups)
      break;
    if (Candidate.Benefit < Options.MinBenefit)
      continue; // Not profitable enough to enact.
    bool Disjoint = true;
    for (uint32_t Site : Candidate.Sites)
      if (Used.count(Site)) {
        Disjoint = false;
        break;
      }
    if (!Disjoint)
      continue;
    for (uint32_t Site : Candidate.Sites)
      Used.insert(Site);
    Chosen.push_back(std::move(Candidate));
  }
  return Chosen;
}

std::unordered_map<uint32_t, uint32_t>
halo::siteGroupMap(const std::vector<CoAllocationSet> &Chosen) {
  std::unordered_map<uint32_t, uint32_t> Map;
  for (uint32_t G = 0; G < Chosen.size(); ++G)
    for (uint32_t Site : Chosen[G].Sites)
      Map.emplace(Site, G);
  return Map;
}
