//===- hds/HdsPipeline.h - Hot-data-streams pipeline ------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison technique of Section 5.1: hot-data-stream-based
/// co-allocation [11], replicated end to end. It shares HALO's profiler
/// (for the object-level reference trace) and specialised allocator, but
/// derives groups from SEQUITUR-compressed streams and identifies them at
/// runtime by the immediate call site of the allocation procedure -- the
/// fixed-size context that Section 5.2 shows failing on wrapper-function
/// and deep-abstraction programs.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_HDS_HDSPIPELINE_H
#define HALO_HDS_HDSPIPELINE_H

#include "core/GroupAllocator.h"
#include "hds/CoAllocation.h"
#include "hds/HotStreams.h"
#include "profile/HeapProfiler.h"
#include "runtime/Runtime.h"
#include "sim/Machine.h"

#include <functional>
#include <vector>

namespace halo {

class EventTrace;
class BinaryWriter;
class BinaryReader;

struct HdsParameters {
  ProfileOptions Profile; ///< RecordReferenceTrace is forced on.
  HotStreamOptions Streams;
  CoAllocationOptions CoAllocation;
  GroupAllocatorOptions Allocator;
};

struct HdsArtifacts {
  HotStreamAnalysis Analysis;
  std::vector<CoAllocationSet> Groups;
  std::unordered_map<uint32_t, uint32_t> SiteToGroup;
};

/// Profiles \p RunWorkload and derives the hot-data-streams placement
/// policy (groups of malloc call sites). \p Machine supplies the profiling
/// runtime's cost model; like HALO's pipeline, the artifacts depend only on
/// the event stream, never on the machine.
HdsArtifacts optimizeBinaryHds(const Program &Prog,
                               const std::function<void(Runtime &)> &RunWorkload,
                               const HdsParameters &Params = HdsParameters(),
                               const MachineConfig &Machine = defaultMachine());

/// Same pipeline, driven by a pre-recorded event trace (see the matching
/// optimizeBinary overload): HALO and HDS can share one recording, and
/// replay delivers the profiler's accesses through the batched observer
/// hook. Safe to run concurrently with the HALO pipeline on the same
/// trace (Evaluation::prepareAllArtifacts does exactly that).
HdsArtifacts optimizeBinaryHds(const Program &Prog, const EventTrace &Trace,
                               const HdsParameters &Params = HdsParameters(),
                               const MachineConfig &Machine = defaultMachine());

/// Serializes \p Art (stream analysis + chosen co-allocation sets) behind a
/// versioned header. SiteToGroup is not written: it is siteGroupMap(Groups)
/// by construction, and loadHdsArtifacts re-derives it.
void saveHdsArtifacts(const HdsArtifacts &Art, BinaryWriter &W);

/// Decodes a saveHdsArtifacts() stream; throws SerializationError on bad
/// magic/version or truncation.
HdsArtifacts loadHdsArtifacts(BinaryReader &R);

} // namespace halo

#endif // HALO_HDS_HDSPIPELINE_H
