//===- hds/CoAllocation.h - Co-allocation set selection ---------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The placement-policy selection of Chilimbi & Shaham [11]: each hot data
/// stream suggests a *co-allocation set* -- the set of allocation sites of
/// the objects it touches, valued by the stream's projected cache-miss
/// reduction. Since a site may appear in many streams but can only be bound
/// to one pool, a profitable pairwise-disjoint family is chosen with the
/// classic greedy w(S)/sqrt(|S|) approximation to weighted set packing
/// (Halldorsson [16]).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_HDS_COALLOCATION_H
#define HALO_HDS_COALLOCATION_H

#include "hds/HotStreams.h"
#include "profile/LiveObjectMap.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace halo {

/// A candidate co-allocation set: allocation sites to serve from one pool.
struct CoAllocationSet {
  std::vector<uint32_t> Sites; ///< Sorted, unique malloc call sites.
  double Benefit = 0.0;        ///< Projected cache-miss reduction.
};

struct CoAllocationOptions {
  uint32_t CacheLineSize = 64;
  /// Upper bound on chosen sets (the artefact's --max-groups); 0 = no cap.
  uint32_t MaxGroups = 0;
  /// Profitability floor: candidate sets whose projected benefit falls
  /// below this many saved lines are rejected ([11] only enacts placement
  /// policies its analysis projects to be profitable). The HDS pipeline
  /// derives this from MinBenefitFraction and the trace length.
  double MinBenefit = 0.0;
  /// Fraction of the trace length used to derive MinBenefit.
  double MinBenefitFraction = 0.0005;
};

/// Builds candidate co-allocation sets from \p Streams. Objects map to
/// their immediate allocation sites through \p Objects; the benefit of a
/// stream is its frequency times the projected per-occurrence line saving
/// (scattered objects touch one line each; co-allocated objects pack into
/// ceil(total size / line size) lines).
std::vector<CoAllocationSet>
buildCoAllocationSets(const std::vector<HotStream> &Streams,
                      const LiveObjectMap &Objects,
                      const CoAllocationOptions &Options);

/// Greedy weighted set packing: repeatedly picks the candidate maximising
/// Benefit / sqrt(|Sites|) among those disjoint from the already chosen.
std::vector<CoAllocationSet>
packCoAllocationSets(std::vector<CoAllocationSet> Candidates,
                     const CoAllocationOptions &Options);

/// Flattens chosen sets into the site -> group map the runtime policy uses.
std::unordered_map<uint32_t, uint32_t>
siteGroupMap(const std::vector<CoAllocationSet> &Chosen);

} // namespace halo

#endif // HALO_HDS_COALLOCATION_H
