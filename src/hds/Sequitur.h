//===- hds/Sequitur.h - SEQUITUR grammar inference --------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear-time incremental grammar inference (Nevill-Manning & Witten [25]),
/// used by the hot-data-streams comparison technique [11] to compress the
/// object-level data reference trace. The algorithm maintains two
/// invariants: *digram uniqueness* (no pair of adjacent symbols appears
/// more than once in the grammar) and *rule utility* (every rule is used at
/// least twice). Repeated access sequences therefore condense into rules,
/// whose expansions are the candidate hot data streams.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_HDS_SEQUITUR_H
#define HALO_HDS_SEQUITUR_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace halo {

/// Incremental SEQUITUR grammar over uint32_t terminals.
class Sequitur {
public:
  /// One extracted rule: symbols are terminals (Terminal >= 0 slot) or
  /// references to other rules.
  struct BodySymbol {
    bool IsRule;
    uint32_t Value; ///< Terminal value, or rule index.
  };
  struct ExtractedRule {
    uint32_t Id;
    std::vector<BodySymbol> Body;
    /// How often this rule's expansion occurs in the input sequence.
    uint64_t Frequency = 0;
    /// Total expansion length in terminals (saturating).
    uint64_t ExpansionLength = 0;
  };

  Sequitur();
  ~Sequitur();
  Sequitur(const Sequitur &) = delete;
  Sequitur &operator=(const Sequitur &) = delete;

  /// Appends one terminal to the input sequence.
  void append(uint32_t Terminal);

  /// Number of live rules, including the start rule.
  uint32_t numRules() const;

  /// Extracts all live rules. Index 0 is the start rule (Frequency 1);
  /// frequencies and expansion lengths are fully propagated. Rule indices
  /// inside bodies refer to positions in the returned vector.
  std::vector<ExtractedRule> extractRules() const;

  /// Expands rule \p RuleIndex (as returned by extractRules) to at most
  /// \p MaxLen terminals.
  static std::vector<uint32_t>
  expandRule(const std::vector<ExtractedRule> &Rules, uint32_t RuleIndex,
             uint64_t MaxLen);

private:
  struct Symbol;
  struct Rule;

  // Core algorithm steps (see Sequitur.cpp for the invariant machinery).
  void join(Symbol *Left, Symbol *Right);
  void insertAfter(Symbol *Pos, Symbol *Sym);
  void deleteSymbol(Symbol *Sym);
  void removeDigram(Symbol *First);
  bool check(Symbol *First);
  void match(Symbol *New, Symbol *Found);
  void substitute(Symbol *First, Rule *R);
  void expandSoleUse(Symbol *NonTerminal);

  static uint64_t encode(const Symbol *Sym);
  uint64_t digramKey(const Symbol *First) const;

  Symbol *newTerminal(uint32_t Terminal);
  Symbol *newNonTerminal(Rule *R);
  Rule *newRule();

  std::vector<std::unique_ptr<Rule>> Rules;
  std::unordered_map<uint64_t, Symbol *> Digrams;
  Rule *Start = nullptr;
};

} // namespace halo

#endif // HALO_HDS_SEQUITUR_H
