//===- hds/HotStreams.h - Hot data stream extraction ------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hot data streams (Chilimbi [8], as used by Chilimbi & Shaham [11]): a
/// data reference trace is compressed with SEQUITUR, and grammar rules
/// whose expansions recur frequently become *streams*. Following the
/// paper's replication setup (Section 5.1), minimal streams of 2..20
/// elements are detected with the stream threshold set so the selected hot
/// streams account for 90% of all heap accesses.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_HDS_HOTSTREAMS_H
#define HALO_HDS_HOTSTREAMS_H

#include "hds/Sequitur.h"

#include <cstdint>
#include <vector>

namespace halo {

/// One hot data stream: a recurring object access sequence.
struct HotStream {
  std::vector<uint32_t> Elements; ///< Object ids, in access order.
  uint64_t Frequency = 0;         ///< Occurrences in the trace.
  uint64_t Heat = 0;              ///< Frequency * Elements.size().
};

/// Extraction parameters (paper replication defaults).
struct HotStreamOptions {
  uint32_t MinLength = 2;
  uint32_t MaxLength = 20;
  /// Streams are selected hottest-first until they cover this fraction of
  /// the trace ("the stream threshold set to account for 90% of all heap
  /// accesses").
  double Coverage = 0.9;
};

/// Result of extraction, including diagnostics the evaluation reports
/// (Section 5.2 contrasts roms' >150,000 streams with HALO's 31 nodes).
struct HotStreamAnalysis {
  std::vector<HotStream> Streams; ///< Hot streams, hottest first.
  uint64_t TraceLength = 0;
  uint64_t GrammarRules = 0;
  uint64_t CandidateStreams = 0;
};

/// Compresses \p Trace with SEQUITUR and extracts hot data streams.
HotStreamAnalysis findHotStreams(const std::vector<uint32_t> &Trace,
                                 const HotStreamOptions &Options);

} // namespace halo

#endif // HALO_HDS_HOTSTREAMS_H
