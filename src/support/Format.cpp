//===- support/Format.cpp - Small formatting helpers ----------------------===//

#include "support/Format.h"

#include <cmath>
#include <cstdio>

using namespace halo;

std::string halo::formatDouble(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string halo::formatBytes(double Bytes) {
  static const char *Units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int Unit = 0;
  double Value = Bytes;
  while (std::fabs(Value) >= 1024.0 && Unit < 4) {
    Value /= 1024.0;
    ++Unit;
  }
  return formatDouble(Value, Unit == 0 ? 0 : 2) + Units[Unit];
}

std::string halo::formatPercent(double Value, int Decimals) {
  return formatDouble(Value, Decimals) + "%";
}

std::string halo::padLeft(const std::string &Text, size_t Width) {
  if (Text.size() >= Width)
    return Text.substr(0, Width);
  return std::string(Width - Text.size(), ' ') + Text;
}

std::string halo::padRight(const std::string &Text, size_t Width) {
  if (Text.size() >= Width)
    return Text.substr(0, Width);
  return Text + std::string(Width - Text.size(), ' ');
}
