//===- support/Dot.cpp - Graphviz DOT emission ----------------------------===//

#include "support/Dot.h"

using namespace halo;

DotWriter::DotWriter(std::string GraphName) : Name(std::move(GraphName)) {}

std::string DotWriter::escape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

void DotWriter::addNode(const std::string &Id, const std::string &Label,
                        const std::string &Color) {
  Nodes << "  \"" << escape(Id) << "\" [label=\"" << escape(Label) << "\"";
  if (!Color.empty())
    Nodes << ", style=filled, fillcolor=\"" << escape(Color) << "\"";
  Nodes << "];\n";
}

void DotWriter::addEdge(const std::string &From, const std::string &To,
                        double PenWidth, const std::string &Label) {
  Edges << "  \"" << escape(From) << "\" -- \"" << escape(To)
        << "\" [penwidth=" << PenWidth;
  if (!Label.empty())
    Edges << ", label=\"" << escape(Label) << "\"";
  Edges << "];\n";
}

std::string DotWriter::str() const {
  std::ostringstream Out;
  Out << "graph \"" << escape(Name) << "\" {\n";
  Out << "  node [shape=circle, fontsize=10];\n";
  Out << Nodes.str();
  Out << Edges.str();
  Out << "}\n";
  return Out.str();
}
