//===- support/Dot.h - Graphviz DOT emission -------------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny Graphviz DOT writer used to render affinity graphs in the style of
/// the paper's Figure 9 (nodes coloured by allocation group, edge thickness
/// proportional to affinity weight).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_DOT_H
#define HALO_SUPPORT_DOT_H

#include <map>
#include <sstream>
#include <string>

namespace halo {

/// Incrementally builds an undirected DOT graph.
class DotWriter {
public:
  explicit DotWriter(std::string GraphName = "G");

  /// Adds a node with optional display attributes. Node identifiers are
  /// arbitrary strings; they are quoted on output.
  void addNode(const std::string &Id, const std::string &Label,
               const std::string &Color = "");

  /// Adds an undirected edge with a pen width (used for affinity weight).
  void addEdge(const std::string &From, const std::string &To,
               double PenWidth = 1.0, const std::string &Label = "");

  /// Renders the accumulated graph as DOT source.
  std::string str() const;

  /// Escapes \p Text for use inside a quoted DOT string.
  static std::string escape(const std::string &Text);

private:
  std::string Name;
  std::ostringstream Nodes;
  std::ostringstream Edges;
};

} // namespace halo

#endif // HALO_SUPPORT_DOT_H
