//===- support/Lz.h - Byte-oriented block compression -----------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free LZ77 codec for on-disk trace blocks
/// (trace/TraceFile.h). Varint event streams are highly repetitive --
/// access runs repeat (op, object, offset-delta) shapes for thousands of
/// records -- so a byte-oriented match coder recovers most of the easy
/// redundancy at memcpy-like decode speed, which is what the streamed
/// replay path needs: decompression must not dominate the fused decode
/// loop it feeds.
///
/// The format is the classic token stream (LZ4-style): each sequence is a
/// token byte whose high nibble is the literal length and low nibble the
/// match length minus the 4-byte minimum (15 escapes to 255-run extension
/// bytes for both), the literals, then a 16-bit little-endian backward
/// offset (max 64 KiB window). The final sequence is literals-only. The
/// decoder is fully bounds-checked and must consume exactly the source
/// and produce exactly the announced destination size -- anything else
/// throws SerializationError, which the trace layer treats as corruption.
///
/// Compression is one-shot per block (~1 MiB), greedy, with a 14-bit
/// hash table of 4-byte prefixes; blocks are independent so corruption
/// and parallel decode stay block-granular.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_LZ_H
#define HALO_SUPPORT_LZ_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace halo {
namespace lz {

/// Compresses \p N bytes at \p Src. The output decodes back with
/// decompress(); it is never larger than maxCompressedSize(N). Callers
/// (the trace block writer) compare the result against N and keep the
/// raw bytes when compression does not pay.
std::vector<uint8_t> compress(const uint8_t *Src, size_t N);

/// Worst-case compressed size for \p N input bytes (incompressible data
/// costs the literal-run extension bytes on top of the payload).
size_t maxCompressedSize(size_t N);

/// Decodes exactly \p DstN bytes into \p Dst from the \p SrcN compressed
/// bytes at \p Src. Throws SerializationError (support/BinaryIO.h) unless
/// the stream is well-formed, in-bounds, and consumes/produces exactly
/// the announced sizes.
void decompress(const uint8_t *Src, size_t SrcN, uint8_t *Dst, size_t DstN);

} // namespace lz
} // namespace halo

#endif // HALO_SUPPORT_LZ_H
