//===- support/AddrMap.h - Open-addressed address-keyed map ----*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A linear-probing, power-of-two open-addressed hash map from (non-zero)
/// addresses to 32-bit values, with backward-shift deletion. The trace
/// recorder sits on the per-event hot path of every recording run; its
/// live-object base-address index through this map is several times
/// cheaper than the node-based std::unordered_map (one flat probe, no
/// allocation per insert, no bucket chains).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_ADDRMAP_H
#define HALO_SUPPORT_ADDRMAP_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace halo {

/// Hash map keyed by non-zero 64-bit addresses.
class AddrMap {
public:
  explicit AddrMap(uint32_t InitialCapacity = 1024) {
    uint32_t Cap = 16;
    while (Cap < InitialCapacity)
      Cap <<= 1;
    Keys.assign(Cap, 0);
    Values.resize(Cap);
    Mask = Cap - 1;
  }

  /// Inserts \p Addr -> \p Value. \p Addr must be non-zero and not present.
  void insert(uint64_t Addr, uint32_t Value) {
    assert(Addr != 0 && "address keys must be non-zero");
    if ((Count + 1) * 10 >= (Mask + 1) * 7) // Load factor 0.7.
      grow();
    uint32_t Slot = home(Addr);
    while (Keys[Slot] != 0) {
      assert(Keys[Slot] != Addr && "duplicate key");
      Slot = (Slot + 1) & Mask;
    }
    Keys[Slot] = Addr;
    Values[Slot] = Value;
    ++Count;
  }

  /// Returns the value mapped to \p Addr, or nullptr.
  const uint32_t *find(uint64_t Addr) const {
    uint32_t Slot = home(Addr);
    while (Keys[Slot] != 0) {
      if (Keys[Slot] == Addr)
        return &Values[Slot];
      Slot = (Slot + 1) & Mask;
    }
    return nullptr;
  }

  /// Removes \p Addr; returns true if it was present. Backward-shift
  /// deletion keeps probe chains intact without tombstones.
  bool erase(uint64_t Addr) {
    uint32_t Slot = home(Addr);
    while (Keys[Slot] != Addr) {
      if (Keys[Slot] == 0)
        return false;
      Slot = (Slot + 1) & Mask;
    }
    uint32_t Hole = Slot;
    for (uint32_t Probe = Slot;;) {
      Probe = (Probe + 1) & Mask;
      if (Keys[Probe] == 0)
        break;
      uint32_t Home = home(Keys[Probe]);
      // Move the probed entry into the hole unless its home lies in the
      // cyclic interval (Hole, Probe] (then it is still reachable).
      bool Reachable = Hole < Probe ? (Home > Hole && Home <= Probe)
                                    : (Home > Hole || Home <= Probe);
      if (!Reachable) {
        Keys[Hole] = Keys[Probe];
        Values[Hole] = Values[Probe];
        Hole = Probe;
      }
    }
    Keys[Hole] = 0;
    --Count;
    return true;
  }

  uint32_t size() const { return Count; }
  bool empty() const { return Count == 0; }

private:
  uint32_t home(uint64_t Addr) const {
    // Fibonacci hashing; addresses are at least 8-aligned, so mix before
    // masking.
    return static_cast<uint32_t>((Addr * 0x9E3779B97F4A7C15ull) >> 33) & Mask;
  }

  void grow() {
    std::vector<uint64_t> OldKeys = std::move(Keys);
    std::vector<uint32_t> OldValues = std::move(Values);
    uint32_t Cap = (Mask + 1) * 2;
    Keys.assign(Cap, 0);
    Values.resize(Cap);
    Mask = Cap - 1;
    Count = 0;
    for (uint32_t I = 0; I < OldKeys.size(); ++I)
      if (OldKeys[I] != 0)
        insert(OldKeys[I], OldValues[I]);
  }

  std::vector<uint64_t> Keys; ///< 0 = empty slot.
  std::vector<uint32_t> Values;
  uint32_t Mask = 0;
  uint32_t Count = 0;
};

} // namespace halo

#endif // HALO_SUPPORT_ADDRMAP_H
