//===- support/Rng.cpp - Deterministic pseudo-random numbers -------------===//

#include "support/Rng.h"

using namespace halo;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9E3779B97F4A7C15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

void Rng::reseed(uint64_t Seed) {
  for (uint64_t &Word : State)
    Word = splitMix64(Seed);
  // xoshiro must not start from the all-zero state; SplitMix64 cannot
  // produce four zero words from any seed, but be defensive anyway.
  if (!(State[0] | State[1] | State[2] | State[3]))
    State[0] = 1;
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "bound must be positive");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

uint64_t Rng::nextInRange(uint64_t Lo, uint64_t Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + nextBelow(Hi - Lo + 1);
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::nextBool(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

std::size_t Rng::pickWeighted(const std::vector<double> &Weights) {
  assert(!Weights.empty() && "no weights");
  double Total = 0.0;
  for (double W : Weights) {
    assert(W >= 0.0 && "negative weight");
    Total += W;
  }
  assert(Total > 0.0 && "weights sum to zero");
  double Target = nextDouble() * Total;
  double Acc = 0.0;
  for (size_t I = 0; I < Weights.size(); ++I) {
    Acc += Weights[I];
    if (Target < Acc)
      return I;
  }
  return Weights.size() - 1;
}
