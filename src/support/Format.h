//===- support/Format.h - Small formatting helpers -------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable formatting used by the benchmark harnesses when printing
/// the paper's tables (byte quantities, percentages, fixed-width columns).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_FORMAT_H
#define HALO_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>

namespace halo {

/// Formats \p Bytes as a human-readable quantity ("31.98KiB", "2.05MiB").
std::string formatBytes(double Bytes);

/// Formats \p Value as a percentage with \p Decimals decimal places.
std::string formatPercent(double Value, int Decimals = 2);

/// Formats \p Value with \p Decimals decimal places.
std::string formatDouble(double Value, int Decimals = 2);

/// Left-pads or truncates \p Text to exactly \p Width characters.
std::string padLeft(const std::string &Text, size_t Width);

/// Right-pads or truncates \p Text to exactly \p Width characters.
std::string padRight(const std::string &Text, size_t Width);

} // namespace halo

#endif // HALO_SUPPORT_FORMAT_H
