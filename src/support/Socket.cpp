//===- support/Socket.cpp - RAII Unix-domain sockets ------------------------===//

#include "support/Socket.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace halo;

namespace {

[[noreturn]] void fail(const std::string &What) {
  throw std::runtime_error(What + ": " + std::strerror(errno));
}

sockaddr_un addressFor(const std::string &Path) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    throw std::runtime_error("socket path '" + Path +
                             "' is empty or too long for a Unix socket");
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return Addr;
}

} // namespace

Socket &Socket::operator=(Socket &&Other) noexcept {
  if (this != &Other) {
    close();
    Fd = Other.Fd;
    Other.Fd = -1;
  }
  return *this;
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Socket Socket::listenUnix(const std::string &Path, int Backlog) {
  sockaddr_un Addr = addressFor(Path);
  Socket S(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!S.valid())
    fail("socket");
  if (::bind(S.fd(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    fail("bind " + Path);
  if (::listen(S.fd(), Backlog) != 0)
    fail("listen " + Path);
  return S;
}

Socket Socket::connectUnix(const std::string &Path) {
  sockaddr_un Addr = addressFor(Path);
  Socket S(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!S.valid())
    fail("socket");
  int Rc;
  do {
    Rc = ::connect(S.fd(), reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  } while (Rc != 0 && errno == EINTR);
  if (Rc != 0)
    fail("connect " + Path);
  return S;
}

std::optional<Socket> Socket::accept(int TimeoutMs) {
  pollfd Pfd;
  Pfd.fd = Fd;
  Pfd.events = POLLIN;
  Pfd.revents = 0;
  int Ready = ::poll(&Pfd, 1, TimeoutMs);
  if (Ready < 0) {
    if (errno == EINTR)
      return std::nullopt;
    fail("poll");
  }
  if (Ready == 0)
    return std::nullopt;
  int Conn;
  do {
    Conn = ::accept(Fd, nullptr, nullptr);
  } while (Conn < 0 && errno == EINTR);
  if (Conn < 0) {
    // The listener was shut down under us (daemon stop) or the peer gave
    // up between poll and accept; neither ends the accept loop's caller.
    if (errno == EINVAL || errno == ECONNABORTED || errno == EAGAIN)
      return std::nullopt;
    fail("accept");
  }
  return Socket(Conn);
}

void Socket::sendAll(const void *Data, size_t Size) {
  const char *P = static_cast<const char *>(Data);
  while (Size > 0) {
    ssize_t N = ::send(Fd, P, Size, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      fail("send");
    }
    P += N;
    Size -= static_cast<size_t>(N);
  }
}

size_t Socket::recvSome(void *Data, size_t Size) {
  for (;;) {
    ssize_t N = ::recv(Fd, Data, Size, 0);
    if (N >= 0)
      return static_cast<size_t>(N);
    if (errno != EINTR)
      fail("recv");
  }
}

size_t Socket::recvFully(void *Data, size_t Size) {
  char *P = static_cast<char *>(Data);
  size_t Got = 0;
  while (Got < Size) {
    size_t N = recvSome(P + Got, Size - Got);
    if (N == 0)
      break;
    Got += N;
  }
  return Got;
}

void Socket::shutdownBoth() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}
