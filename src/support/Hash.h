//===- support/Hash.h - Stable content hashing ------------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a content hashing for the artifact store (store/ArtifactStore.h).
/// Store entries are addressed by the hash of a *canonical key encoding*:
/// every key component is fed to a HashBuilder in a fixed order and a fixed
/// width, so two keys collide only if every component matches and any
/// component change -- benchmark, scale, seed, a pipeline option, the
/// schema version stamp -- yields a new address (cache invalidation is key
/// change, never mutation; the discipline of Nix's content-addressed
/// store). The same primitive checksums entry payloads on disk.
///
/// The hash must be stable across processes, platforms, and PRs: no
/// std::hash (implementation-defined), no pointer or iteration-order
/// inputs. FNV-1a over explicit little-endian bytes is exactly that.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_HASH_H
#define HALO_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace halo {

/// 64-bit FNV-1a over a byte range.
inline uint64_t fnv1a(const void *Data, size_t Size,
                      uint64_t Seed = 0xcbf29ce484222325ull) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Size; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

/// Incremental FNV-1a over a canonical key encoding. Every scalar is fed
/// as fixed-width little-endian bytes and every string is length-prefixed,
/// so component boundaries are unambiguous ("ab"+"c" never hashes like
/// "a"+"bc") and the result is identical on every host.
class HashBuilder {
public:
  HashBuilder &bytes(const void *Data, size_t Size) {
    H = fnv1a(Data, Size, H);
    return *this;
  }

  HashBuilder &u64(uint64_t V) {
    uint8_t B[8];
    for (int I = 0; I < 8; ++I)
      B[I] = static_cast<uint8_t>(V >> (8 * I));
    return bytes(B, sizeof(B));
  }

  HashBuilder &u32(uint32_t V) { return u64(V); }
  HashBuilder &boolean(bool V) { return u64(V ? 1 : 0); }

  /// Doubles hash by bit pattern: option structs carry exact configured
  /// values (0.05, 0.9, ...), and the bit pattern is the only encoding
  /// that never conflates two of them.
  HashBuilder &f64(double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V), "double is not 64-bit");
    std::memcpy(&Bits, &V, sizeof(Bits));
    return u64(Bits);
  }

  HashBuilder &str(const std::string &S) {
    u64(S.size());
    return bytes(S.data(), S.size());
  }

  uint64_t hash() const { return H; }

private:
  uint64_t H = 0xcbf29ce484222325ull; ///< FNV-1a offset basis.
};

/// \p Hash as 16 lowercase hex digits (store entry file-name prefix).
inline std::string hashHex(uint64_t Hash) {
  static const char Digits[] = "0123456789abcdef";
  std::string Text(16, '0');
  for (int I = 15; I >= 0; --I) {
    Text[static_cast<size_t>(I)] = Digits[Hash & 0xF];
    Hash >>= 4;
  }
  return Text;
}

} // namespace halo

#endif // HALO_SUPPORT_HASH_H
