//===- support/Stats.cpp - Summary statistics ----------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace halo;

double halo::quantile(std::vector<double> Values, double Q) {
  assert(!Values.empty() && "quantile of empty sample");
  assert(Q >= 0.0 && Q <= 1.0 && "quantile out of range");
  std::sort(Values.begin(), Values.end());
  if (Values.size() == 1)
    return Values.front();
  double Pos = Q * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(std::floor(Pos));
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

double halo::median(const std::vector<double> &Values) {
  return quantile(Values, 0.5);
}

double halo::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

TrialSummary halo::summarize(const std::vector<double> &Values) {
  assert(!Values.empty() && "summary of empty sample");
  TrialSummary S;
  S.Median = quantile(Values, 0.5);
  S.P25 = quantile(Values, 0.25);
  S.P75 = quantile(Values, 0.75);
  S.Min = *std::min_element(Values.begin(), Values.end());
  S.Max = *std::max_element(Values.begin(), Values.end());
  S.Count = Values.size();
  return S;
}

double halo::percentImprovement(double Baseline, double Optimised) {
  if (Baseline == 0.0)
    return 0.0;
  return (Baseline - Optimised) / Baseline * 100.0;
}
