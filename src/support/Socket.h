//===- support/Socket.h - RAII Unix-domain sockets --------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one socket wrapper in the tree: a move-only file-descriptor owner
/// with the loops every byte-stream user needs written exactly once --
/// EINTR-restarting full sends and receives, poll-based accept with a
/// timeout (so an accept loop can observe a stop flag), and SIGPIPE
/// suppressed on send (a peer hanging up must surface as an error return,
/// never a process-killing signal). serve/Protocol.h frames its messages
/// over this; nothing else in the tree opens sockets.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_SOCKET_H
#define HALO_SUPPORT_SOCKET_H

#include <cstddef>
#include <optional>
#include <string>

namespace halo {

/// A move-only owner of one socket file descriptor. All errors are
/// std::runtime_error with the failing call and errno text; end-of-stream
/// is a value, not an error (recvSome/recvFully return short).
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket() { close(); }

  Socket(Socket &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }
  Socket &operator=(Socket &&Other) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Binds and listens on a Unix-domain socket at \p Path. The path must
  /// not name an existing file (a live daemon owns it; stale files from a
  /// crashed one need an explicit unlink by the operator) and must fit
  /// sockaddr_un. Throws std::runtime_error on failure.
  static Socket listenUnix(const std::string &Path, int Backlog = 16);

  /// Connects to the Unix-domain socket at \p Path.
  static Socket connectUnix(const std::string &Path);

  /// Waits up to \p TimeoutMs for a connection and accepts it;
  /// std::nullopt on timeout (the accept loop's stop-flag poll point).
  std::optional<Socket> accept(int TimeoutMs);

  /// Sends all \p Size bytes, restarting on EINTR, SIGPIPE suppressed.
  /// Throws std::runtime_error if the peer is gone or the send fails.
  void sendAll(const void *Data, size_t Size);

  /// Receives at most \p Size bytes; 0 means the peer closed cleanly.
  size_t recvSome(void *Data, size_t Size);

  /// Receives exactly \p Size bytes unless the peer closes first; returns
  /// the count actually read (callers distinguish a clean close at a
  /// message boundary, 0, from a mid-message truncation, 0 < n < Size).
  size_t recvFully(void *Data, size_t Size);

  /// Shuts down both directions without closing the descriptor: a reader
  /// blocked in recv on another thread wakes with end-of-stream.
  void shutdownBoth();

  void close();

private:
  int Fd = -1;
};

} // namespace halo

#endif // HALO_SUPPORT_SOCKET_H
