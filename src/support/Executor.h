//===- support/Executor.h - Shared worker pool ------------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one thread-pool implementation in the tree. Every parallel stage of
/// the measurement stack -- trial fan-out, per-seed trace recording,
/// benchmark sharding, the cross-machine sweep, and HALO/HDS pipeline
/// materialisation -- routes through an Executor rather than hand-rolled
/// std::thread code, so the concurrency semantics (deterministic
/// task-to-slot ordering, exception propagation, a serial jobs=1 path)
/// are defined in exactly one place.
///
/// Determinism contract: parallelFor(Count, Fn) calls Fn(Index) exactly
/// once for every Index in [0, Count). Tasks are independent by
/// construction -- each writes only its own result slot -- so the filled
/// result vector is bit-identical to a serial loop no matter how many
/// workers ran or how the indices interleaved.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_EXECUTOR_H
#define HALO_SUPPORT_EXECUTOR_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace halo {

/// Resolves a user-facing --jobs value to a worker count: values > 0 are
/// taken as-is; 0 (the "pick for me" default everywhere, including the
/// CLI's --jobs flag) consults $HALO_JOBS -- strictly parsed, all digits,
/// its own 0 meaning hardware concurrency, anything non-numeric a
/// std::invalid_argument -- and falls back to the host's hardware
/// concurrency when it is unset. The result is never less than one. This
/// is the single point that decides what "default jobs" means, so the
/// daemon and the CLI size their pools identically without a flag.
unsigned resolveJobs(int Jobs);

/// A fixed pool of worker threads driving index-based parallel loops.
///
/// The pool holds workers() - 1 threads; the calling thread is the final
/// worker, so Executor(1) spawns no threads at all and parallelFor
/// degenerates to an inline serial loop (the deterministic reference the
/// parallel paths are tested against). One Executor may run any number of
/// parallelFor batches; workers persist across them.
class Executor {
public:
  /// \p Jobs as resolveJobs() interprets it.
  explicit Executor(int Jobs = 0);
  ~Executor();

  Executor(const Executor &) = delete;
  Executor &operator=(const Executor &) = delete;

  unsigned workers() const { return NumWorkers; }

  /// Runs Fn(Index) for every Index in [0, Count). Indices are claimed in
  /// ascending order off a shared counter and the call returns only after
  /// all of them finished. If any task throws, the remaining unclaimed
  /// indices are abandoned and the first captured exception is rethrown
  /// here after the batch drains (the pool stays usable). One batch runs
  /// at a time: a task that calls back into its own Executor gets an
  /// inline serial loop on its thread (the batch bookkeeping is a
  /// per-batch singleton, so nested dispatch cannot share the pool), which
  /// keeps composed parallel stages -- e.g. a sharded replay inside a plan
  /// task -- deadlock-free without a second scheduling policy.
  void parallelFor(size_t Count, const std::function<void(size_t)> &Fn);

private:
  void workerMain();
  /// Claims and runs tasks of the current batch until none remain.
  void drainTasks();

  unsigned NumWorkers = 1;
  std::vector<std::thread> Threads; ///< NumWorkers - 1 pool threads.

  std::mutex Mutex;
  std::condition_variable WorkReady; ///< Signals a new batch (or shutdown).
  std::condition_variable BatchDone; ///< Signals pool threads finished one.
  const std::function<void(size_t)> *Fn = nullptr;
  size_t Count = 0;
  size_t Next = 0;    ///< Next unclaimed index (guarded by Mutex).
  size_t Working = 0; ///< Pool threads still draining the current batch.
  uint64_t Generation = 0;
  std::exception_ptr FirstError;
  bool Stop = false;
};

} // namespace halo

#endif // HALO_SUPPORT_EXECUTOR_H
