//===- support/Stats.h - Summary statistics --------------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Median / percentile helpers matching the paper's measurement methodology
/// (Section 5.1: medians of repeated trials with 25th/75th percentile error
/// bars).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_STATS_H
#define HALO_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace halo {

/// Median / quartile summary of a set of trial measurements.
struct TrialSummary {
  double Median = 0.0;
  double P25 = 0.0;
  double P75 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  size_t Count = 0;
};

/// Returns the \p Q-th quantile (Q in [0, 1]) of \p Values using linear
/// interpolation between order statistics. \p Values need not be sorted.
double quantile(std::vector<double> Values, double Q);

/// Returns the median of \p Values.
double median(const std::vector<double> &Values);

/// Returns the arithmetic mean of \p Values (0 for an empty vector).
double mean(const std::vector<double> &Values);

/// Summarises \p Values into median / quartiles / extrema.
TrialSummary summarize(const std::vector<double> &Values);

/// Percentage by which \p Optimised improves on \p Baseline; positive means
/// the optimised value is smaller (e.g. fewer misses, less time).
double percentImprovement(double Baseline, double Optimised);

} // namespace halo

#endif // HALO_SUPPORT_STATS_H
