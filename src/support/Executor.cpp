//===- support/Executor.cpp - Shared worker pool ----------------------------===//

#include "support/Executor.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

using namespace halo;

namespace {

/// The Executor whose batch the current thread is draining, if any. The
/// batch bookkeeping (Fn/Count/Next/Working) is a per-batch singleton, so
/// a task calling back into its own Executor must not dispatch a second
/// batch; parallelFor consults this to run such nested loops inline.
thread_local const Executor *ActiveExecutor = nullptr;

} // namespace

unsigned halo::resolveJobs(int Jobs) {
  if (Jobs > 0)
    return static_cast<unsigned>(Jobs);
  // Explicit --jobs always wins; only the "pick for me" default consults
  // HALO_JOBS. The parse is strict -- all digits, in range -- because a
  // typo silently becoming "hardware concurrency" (or atoi's 0) would be
  // invisible until a daemon sized its one shared pool wrong.
  if (const char *Env = std::getenv("HALO_JOBS")) {
    const std::string Text(Env);
    bool AllDigits = !Text.empty();
    for (char C : Text)
      if (!std::isdigit(static_cast<unsigned char>(C)))
        AllDigits = false;
    unsigned long Parsed = AllDigits ? std::strtoul(Text.c_str(), nullptr, 10)
                                     : 0;
    if (!AllDigits || Parsed > static_cast<unsigned long>(1u << 20))
      throw std::invalid_argument(
          "HALO_JOBS must be a worker count (0 = hardware concurrency), "
          "got '" + Text + "'");
    if (Parsed > 0)
      return static_cast<unsigned>(Parsed);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

Executor::Executor(int Jobs) : NumWorkers(resolveJobs(Jobs)) {
  Threads.reserve(NumWorkers - 1);
  for (unsigned J = 1; J < NumWorkers; ++J)
    Threads.emplace_back([this] { workerMain(); });
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stop = true;
  }
  WorkReady.notify_all();
  for (std::thread &Worker : Threads)
    Worker.join();
}

void Executor::parallelFor(size_t TaskCount,
                           const std::function<void(size_t)> &TaskFn) {
  if (TaskCount == 0)
    return;
  if (ActiveExecutor == this) {
    // Re-entrant call from inside one of this pool's own tasks: run the
    // nested loop inline on this thread. Same ascending order, same
    // exception behaviour as the serial path.
    for (size_t I = 0; I < TaskCount; ++I)
      TaskFn(I);
    return;
  }
  if (Threads.empty()) {
    // Serial reference path: exceptions propagate straight to the caller.
    for (size_t I = 0; I < TaskCount; ++I)
      TaskFn(I);
    return;
  }

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Fn = &TaskFn;
    Count = TaskCount;
    Next = 0;
    Working = Threads.size();
    FirstError = nullptr;
    ++Generation;
  }
  WorkReady.notify_all();

  drainTasks();

  // The caller ran out of tasks; wait for every pool thread to finish the
  // batch (each must observe the generation once, even if it claimed no
  // index -- that is what makes the pool reusable for the next batch).
  std::unique_lock<std::mutex> Lock(Mutex);
  BatchDone.wait(Lock, [this] { return Working == 0; });
  Fn = nullptr;
  if (FirstError)
    std::rethrow_exception(std::exchange(FirstError, nullptr));
}

void Executor::drainTasks() {
  const Executor *Outer = ActiveExecutor;
  ActiveExecutor = this;
  for (;;) {
    size_t Index;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Next >= Count)
        break;
      Index = Next++;
    }
    try {
      (*Fn)(Index);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (!FirstError)
        FirstError = std::current_exception();
      Next = Count; // Abandon unclaimed indices; in-flight ones finish.
    }
  }
  ActiveExecutor = Outer;
}

void Executor::workerMain() {
  uint64_t SeenGeneration = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkReady.wait(Lock, [&] {
        return Stop || Generation != SeenGeneration;
      });
      if (Stop)
        return;
      SeenGeneration = Generation;
    }
    drainTasks();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Working > 0)
        continue;
    }
    BatchDone.notify_one();
  }
}
