//===- support/Rng.h - Deterministic pseudo-random numbers -----*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable random number generation used throughout the
/// simulator. Everything in this project draws randomness from an explicit
/// Rng instance so that every experiment is reproducible bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_RNG_H
#define HALO_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace halo {

/// A small, fast, deterministic generator (xoshiro256** seeded via
/// SplitMix64). Not cryptographic; statistical quality is more than
/// sufficient for workload synthesis.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull) { reseed(Seed); }

  /// Re-initialises the state from \p Seed via SplitMix64.
  void reseed(uint64_t Seed);

  /// Returns the next 64 uniformly random bits.
  uint64_t next();

  /// Returns a uniformly random integer in [0, Bound). \p Bound must be
  /// non-zero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniformly random integer in [Lo, Hi] inclusive.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi);

  /// Returns a uniformly random double in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P);

  /// Picks an index in [0, Weights.size()) with probability proportional to
  /// the weight. The weights must not all be zero.
  std::size_t pickWeighted(const std::vector<double> &Weights);

  /// Fisher-Yates shuffle of \p Values.
  template <typename T> void shuffle(std::vector<T> &Values) {
    if (Values.size() < 2)
      return;
    for (std::size_t I = Values.size() - 1; I > 0; --I)
      std::swap(Values[I], Values[nextBelow(I + 1)]);
  }

private:
  uint64_t State[4];
};

} // namespace halo

#endif // HALO_SUPPORT_RNG_H
