//===- support/Lz.cpp - Byte-oriented block compression -------------------===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//

#include "support/Lz.h"

#include "support/BinaryIO.h"

#include <cstring>

namespace halo {
namespace lz {

namespace {

constexpr size_t MinMatch = 4;
constexpr size_t MaxOffset = 0xffff;
constexpr unsigned HashBits = 14;

/// Fibonacci-style multiplicative hash of the 4-byte prefix at \p P.
inline uint32_t hash4(const uint8_t *P) {
  uint32_t V;
  std::memcpy(&V, P, sizeof(V));
  return (V * 2654435761u) >> (32 - HashBits);
}

inline void putRun(std::vector<uint8_t> &Out, size_t Len) {
  for (Len -= 15; Len >= 255; Len -= 255)
    Out.push_back(255);
  Out.push_back(static_cast<uint8_t>(Len));
}

/// Emits one sequence: token, literal run, literals, and (unless this is
/// the terminal literals-only sequence) the match offset.
void putSequence(std::vector<uint8_t> &Out, const uint8_t *Lit, size_t LitN,
                 size_t MatchN, size_t Offset) {
  uint8_t Token = 0;
  Token |= static_cast<uint8_t>((LitN < 15 ? LitN : 15) << 4);
  if (MatchN)
    Token |= static_cast<uint8_t>(MatchN - MinMatch < 15 ? MatchN - MinMatch
                                                         : 15);
  Out.push_back(Token);
  if (LitN >= 15)
    putRun(Out, LitN);
  Out.insert(Out.end(), Lit, Lit + LitN);
  if (!MatchN)
    return;
  Out.push_back(static_cast<uint8_t>(Offset));
  Out.push_back(static_cast<uint8_t>(Offset >> 8));
  if (MatchN - MinMatch >= 15)
    putRun(Out, MatchN - MinMatch);
}

[[noreturn]] void corrupt(const char *What) {
  throw SerializationError(std::string("lz: corrupt block: ") + What);
}

} // namespace

size_t maxCompressedSize(size_t N) {
  // One token + literal-run extensions (one byte per 255 literals) plus
  // the payload itself, with slack for the sub-255 remainder byte.
  return N + N / 255 + 16;
}

std::vector<uint8_t> compress(const uint8_t *Src, size_t N) {
  std::vector<uint8_t> Out;
  Out.reserve(N / 2 + 64);
  // Positions of recently seen 4-byte prefixes, by hash. Stale or
  // colliding entries are fine: candidates are always verified.
  std::vector<uint32_t> Table(size_t(1) << HashBits, 0);

  const uint8_t *Anchor = Src; // First unemitted literal.
  const uint8_t *P = Src;
  const uint8_t *End = Src + N;
  // Matches must end at least 5 bytes before the end (the LZ4 rule: the
  // terminal sequence is literals-only) and candidate reads touch up to
  // P + 12, so stop searching near the tail.
  const uint8_t *MatchLimit = N >= 5 ? End - 5 : Src;
  const uint8_t *SearchLimit = N >= 12 ? End - 12 : Src;

  while (P < SearchLimit) {
    uint32_t H = hash4(P);
    const uint8_t *Cand = Src + Table[H];
    Table[H] = static_cast<uint32_t>(P - Src);
    if (Cand >= P || static_cast<size_t>(P - Cand) > MaxOffset ||
        std::memcmp(Cand, P, MinMatch) != 0) {
      ++P;
      continue;
    }
    size_t Len = MinMatch;
    while (P + Len < MatchLimit && Cand[Len] == P[Len])
      ++Len;
    putSequence(Out, Anchor, static_cast<size_t>(P - Anchor), Len,
                static_cast<size_t>(P - Cand));
    P += Len;
    Anchor = P;
  }
  putSequence(Out, Anchor, static_cast<size_t>(End - Anchor), 0, 0);
  return Out;
}

void decompress(const uint8_t *Src, size_t SrcN, uint8_t *Dst, size_t DstN) {
  const uint8_t *S = Src, *SEnd = Src + SrcN;
  uint8_t *D = Dst, *DEnd = Dst + DstN;
  auto readRun = [&](size_t Base) {
    size_t Len = Base;
    uint8_t B;
    do {
      if (S == SEnd)
        corrupt("run extension past end");
      B = *S++;
      Len += B;
    } while (B == 255);
    return Len;
  };
  while (true) {
    if (S == SEnd)
      corrupt("missing terminal sequence");
    uint8_t Token = *S++;
    size_t LitN = Token >> 4;
    if (LitN == 15)
      LitN = readRun(15);
    if (LitN > static_cast<size_t>(SEnd - S) ||
        LitN > static_cast<size_t>(DEnd - D))
      corrupt("literal run out of bounds");
    std::memcpy(D, S, LitN);
    S += LitN;
    D += LitN;
    if (S == SEnd)
      break; // Terminal literals-only sequence.
    if (SEnd - S < 2)
      corrupt("truncated offset");
    size_t Offset = static_cast<size_t>(S[0]) |
                    (static_cast<size_t>(S[1]) << 8);
    S += 2;
    size_t MatchN = (Token & 0x0f) + MinMatch;
    if (MatchN == 15 + MinMatch)
      MatchN = readRun(MatchN);
    if (Offset == 0 || Offset > static_cast<size_t>(D - Dst))
      corrupt("match offset out of bounds");
    if (MatchN > static_cast<size_t>(DEnd - D))
      corrupt("match run past destination");
    // Overlapping copies are the point (offset < length replays a short
    // period), so copy byte-wise.
    const uint8_t *M = D - Offset;
    for (size_t I = 0; I < MatchN; ++I)
      D[I] = M[I];
    D += MatchN;
  }
  if (D != DEnd)
    corrupt("decoded size mismatch");
}

} // namespace lz
} // namespace halo
