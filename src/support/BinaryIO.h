//===- support/BinaryIO.h - Bounds-checked binary encode/decode -*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one binary wire format behind every serialized artifact (event
/// traces, HALO/HDS pipeline outputs, store entries): little-endian fixed
/// ints for headers, LEB128 varints for counts and ids, length-prefixed
/// strings, doubles by bit pattern. BinaryWriter builds a byte buffer;
/// BinaryReader decodes one with *every* read bounds-checked, throwing
/// SerializationError instead of reading past the end -- a truncated or
/// bit-flipped store entry must surface as a recoverable error the caller
/// can fall back from (re-record / re-materialise), never as UB.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_BINARYIO_H
#define HALO_SUPPORT_BINARYIO_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace halo {

/// Thrown by BinaryReader (and the typed load functions built on it) when
/// a buffer does not decode: truncation, bad magic, version or checksum
/// mismatch, or a value out of its domain.
class SerializationError : public std::runtime_error {
public:
  explicit SerializationError(const std::string &What)
      : std::runtime_error(What) {}
};

/// Appends primitives to a growing byte buffer.
class BinaryWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }

  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  /// LEB128: counts and ids are overwhelmingly small.
  void varint(uint64_t V) {
    while (V >= 0x80) {
      Buf.push_back(static_cast<uint8_t>(V) | 0x80);
      V >>= 7;
    }
    Buf.push_back(static_cast<uint8_t>(V));
  }

  /// Bit-pattern encoding: round-trips every double exactly.
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }

  void str(const std::string &S) {
    varint(S.size());
    bytes(S.data(), S.size());
  }

  void bytes(const void *Data, size_t Size) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    Buf.insert(Buf.end(), P, P + Size);
  }

  const std::vector<uint8_t> &buffer() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }
  size_t size() const { return Buf.size(); }

private:
  std::vector<uint8_t> Buf;
};

/// Decodes a byte buffer; every read is bounds-checked.
class BinaryReader {
public:
  BinaryReader(const uint8_t *Data, size_t Size) : P(Data), End(Data + Size) {}
  explicit BinaryReader(const std::vector<uint8_t> &Buf)
      : BinaryReader(Buf.data(), Buf.size()) {}

  uint8_t u8() {
    need(1);
    return *P++;
  }

  uint32_t u32() {
    need(4);
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(*P++) << (8 * I);
    return V;
  }

  uint64_t u64() {
    need(8);
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(*P++) << (8 * I);
    return V;
  }

  uint64_t varint() {
    uint64_t V = 0;
    for (uint32_t Shift = 0; Shift < 64; Shift += 7) {
      need(1);
      uint8_t B = *P++;
      V |= static_cast<uint64_t>(B & 0x7F) << Shift;
      if ((B & 0x80) == 0)
        return V;
    }
    throw SerializationError("varint longer than 64 bits");
  }

  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }

  std::string str() {
    uint64_t Size = varint();
    need(Size);
    std::string S(reinterpret_cast<const char *>(P),
                  static_cast<size_t>(Size));
    P += Size;
    return S;
  }

  void bytes(void *Out, size_t Size) {
    need(Size);
    std::memcpy(Out, P, Size);
    P += Size;
  }

  size_t remaining() const { return static_cast<size_t>(End - P); }
  bool atEnd() const { return P == End; }

  /// The current read position. Pairs with skip() for decoders that hand
  /// a sub-range to a nested parser (the block-trace footer walks its
  /// payload from both ends) and then advance past it.
  const uint8_t *cursor() const { return P; }

  void skip(uint64_t Size) {
    need(Size);
    P += Size;
  }

  /// Decoders call this after the last field: trailing bytes mean the
  /// buffer is not what the schema says it is.
  void expectEnd(const char *What) const {
    if (!atEnd())
      throw SerializationError(std::string(What) +
                               ": trailing bytes after payload");
  }

private:
  void need(uint64_t Size) const {
    if (Size > static_cast<uint64_t>(End - P))
      throw SerializationError("truncated buffer");
  }

  const uint8_t *P;
  const uint8_t *End;
};

} // namespace halo

#endif // HALO_SUPPORT_BINARYIO_H
