//===- support/Bits.h - Small bit-manipulation helpers ----------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit tricks shared by the allocators and the cache geometry checks.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_BITS_H
#define HALO_SUPPORT_BITS_H

#include <cstdint>

namespace halo {

inline constexpr bool isPowerOfTwo(uint64_t X) {
  return X != 0 && (X & (X - 1)) == 0;
}

} // namespace halo

#endif // HALO_SUPPORT_BITS_H
