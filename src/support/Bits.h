//===- support/Bits.h - Small bit-manipulation helpers ----------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit tricks shared by the allocators and the cache geometry checks.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_BITS_H
#define HALO_SUPPORT_BITS_H

#include <cstdint>

namespace halo {

inline constexpr bool isPowerOfTwo(uint64_t X) {
  return X != 0 && (X & (X - 1)) == 0;
}

/// Exact unsigned division by a fixed divisor via one high multiply
/// (Granlund & Montgomery's round-up method with s = 64): quotients are
/// bit-identical to the `/` operator for every dividend up to a bound
/// fixed at construction. Built for the simulator's set-index math, where
/// a non-power-of-two set count (the Xeon's 36864-set L3) would otherwise
/// put a hardware divide on every cache lookup.
class MagicDivider {
public:
  MagicDivider() = default;

  /// Prepares division by \p Divisor for dividends < \p MaxDividend.
  /// Falls back to plain division when the round-up bound cannot cover
  /// the requested range (exactness is never traded away).
  MagicDivider(uint64_t Divisor, uint64_t MaxDividend) : D(Divisor) {
    // M = floor(2^64 / D) + 1 overshoots the true reciprocal by
    // E = M * D - 2^64 parts in 2^64 (E = 0 when D divides 2^64, else
    // D - 2^64 mod D); floor(M * N / 2^64) equals N / D exactly while
    // E * N < 2^64.
    uint64_t Rem = (~0ull % D + 1) % D; // 2^64 mod D.
    uint64_t E = Rem == 0 ? 0 : D - Rem;
    if (E != 0 && MaxDividend > ~0ull / E)
      return; // Range not provably exact; keep the divide instruction.
    M = ~0ull / D + 1;
  }

  /// N / divisor (N must be within the constructed range).
  uint64_t divide(uint64_t N) const {
#ifdef __SIZEOF_INT128__
    if (M)
      return static_cast<uint64_t>(
          (static_cast<unsigned __int128>(N) * M) >> 64);
#endif
    return N / D;
  }

private:
  uint64_t D = 1;
  uint64_t M = 0; ///< 0 = fall back to hardware division.
};

} // namespace halo

#endif // HALO_SUPPORT_BITS_H
