//===- identify/Selector.cpp - Group selectors ------------------------------===//

#include "identify/Selector.h"

#include <algorithm>
#include <cassert>

using namespace halo;

bool Conjunction::matchesChain(const std::vector<CallSiteId> &Chain) const {
  for (CallSiteId Site : Sites)
    if (!std::binary_search(Chain.begin(), Chain.end(), Site))
      return false;
  return true;
}

bool Selector::matchesChain(const std::vector<CallSiteId> &Chain) const {
  for (const Conjunction &Term : Terms)
    if (Term.matchesChain(Chain))
      return true;
  return false;
}

std::vector<CallSiteId> Selector::referencedSites() const {
  std::vector<CallSiteId> Sites;
  for (const Conjunction &Term : Terms)
    Sites.insert(Sites.end(), Term.Sites.begin(), Term.Sites.end());
  std::sort(Sites.begin(), Sites.end());
  Sites.erase(std::unique(Sites.begin(), Sites.end()), Sites.end());
  return Sites;
}

std::string Selector::describe(const Program &Prog) const {
  std::string Text;
  for (size_t T = 0; T < Terms.size(); ++T) {
    if (T)
      Text += " | ";
    Text += "(";
    for (size_t S = 0; S < Terms[T].Sites.size(); ++S) {
      if (S)
        Text += " & ";
      Text += Prog.callSite(Terms[T].Sites[S]).Label;
    }
    Text += ")";
  }
  return Text.empty() ? "(false)" : Text;
}

CompiledSelector halo::compileSelector(const Selector &Sel,
                                       const InstrumentationPlan &Plan) {
  CompiledSelector Compiled;
  for (const Conjunction &Term : Sel.Terms) {
    std::vector<uint64_t> Mask((Plan.numBits() + 63) / 64, 0);
    for (CallSiteId Site : Term.Sites) {
      int32_t Bit = Plan.bitFor(Site);
      assert(Bit >= 0 && "selector site missing from instrumentation plan");
      Mask[Bit / 64] |= uint64_t(1) << (Bit % 64);
    }
    Compiled.Masks.push_back(std::move(Mask));
  }
  return Compiled;
}
