//===- identify/Selector.h - Group selectors ---------------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Selectors (Section 4.3): logical expressions in disjunctive normal form
/// that decide whether an allocation belongs to a group based on whether the
/// flow of control has passed through a certain set of call sites. At
/// runtime a selector is evaluated against the group state vector; for that
/// it is compiled into bit masks through the instrumentation plan.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_IDENTIFY_SELECTOR_H
#define HALO_IDENTIFY_SELECTOR_H

#include "prog/GroupStateVector.h"
#include "prog/Instrumentation.h"
#include "prog/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace halo {

/// One conjunctive term: "control has passed through every one of these
/// call sites". Sites are kept sorted and unique.
struct Conjunction {
  std::vector<CallSiteId> Sites;

  /// True if every site is present in \p Chain (a sorted site list).
  bool matchesChain(const std::vector<CallSiteId> &Chain) const;
};

/// A selector in disjunctive normal form: the allocation belongs to the
/// group if any conjunction holds.
struct Selector {
  std::vector<Conjunction> Terms;

  bool matchesChain(const std::vector<CallSiteId> &Chain) const;

  /// Every call site referenced by this selector (sorted, unique) -- the
  /// points of interest the BOLT pass must instrument.
  std::vector<CallSiteId> referencedSites() const;

  std::string describe(const Program &Prog) const;
};

/// A selector lowered to group-state bit masks for O(words) evaluation.
struct CompiledSelector {
  /// One mask per conjunction; the selector matches if any mask is fully
  /// contained in the state vector.
  std::vector<std::vector<uint64_t>> Masks;

  bool matches(const GroupStateVector &State) const {
    for (const std::vector<uint64_t> &Mask : Masks)
      if (State.containsAll(Mask))
        return true;
    return false;
  }
};

/// Lowers \p Sel against \p Plan; every referenced site must be in the plan.
CompiledSelector compileSelector(const Selector &Sel,
                                 const InstrumentationPlan &Plan);

} // namespace halo

#endif // HALO_IDENTIFY_SELECTOR_H
