//===- identify/Identify.h - Selector construction (Fig. 10) ----*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The greedy group-identification algorithm of Figure 10. For each group
/// (most popular first) it builds a DNF selector, one conjunction per
/// member: starting from the member's own call-site chain, it repeatedly
/// adds the chain site that minimises the number of *conflicting* contexts
/// (contexts outside all already-processed groups whose chains still match
/// the expression), stopping when conflicts reach zero or stop improving.
/// The union of sites used across all selectors is the set of points the
/// BOLT pass instruments -- "only a small handful of call sites".
///
//===----------------------------------------------------------------------===//

#ifndef HALO_IDENTIFY_IDENTIFY_H
#define HALO_IDENTIFY_IDENTIFY_H

#include "group/Grouping.h"
#include "identify/Selector.h"
#include "trace/Context.h"

#include <vector>

namespace halo {

/// Output of identification: one selector per group (same order as the
/// input groups) plus the union of referenced call sites in deterministic
/// first-use order (the instrumentation points).
struct IdentificationResult {
  std::vector<Selector> Selectors;
  std::vector<CallSiteId> Sites;
};

/// Runs Figure 10 over \p Groups (which must be sorted most popular first,
/// as buildGroups returns them). \p Contexts supplies every profiled
/// allocation context; node ids in the groups are ContextIds.
IdentificationResult identifyGroups(const std::vector<Group> &Groups,
                                    const ContextTable &Contexts);

/// Serializes selectors (per-group DNF terms) and the instrumentation site
/// list, both order-preserving: bit assignment in InstrumentationPlan
/// follows Sites order, so a round trip compiles to identical masks.
void saveIdentification(const IdentificationResult &Result, BinaryWriter &W);

/// Decodes a saveIdentification() stream; throws SerializationError on
/// truncation or out-of-range site ids.
IdentificationResult loadIdentification(BinaryReader &R);

} // namespace halo

#endif // HALO_IDENTIFY_IDENTIFY_H
