//===- identify/Identify.cpp - Selector construction (Fig. 10) --------------===//

#include "identify/Identify.h"

#include "support/BinaryIO.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace halo;

namespace {

/// Position (0 = outermost) of \p Site in \p Frames; chains retain only the
/// most recent instance of a pair, so the first hit is the position.
size_t stackPosition(const Context &Frames, CallSiteId Site) {
  for (size_t I = 0; I < Frames.size(); ++I)
    if (Frames[I].Site == Site)
      return I;
  return Frames.size();
}

} // namespace

IdentificationResult halo::identifyGroups(const std::vector<Group> &Groups,
                                          const ContextTable &Contexts) {
  // Map each context to its group index (or -1).
  std::vector<int32_t> GroupOf(Contexts.size(), -1);
  for (size_t G = 0; G < Groups.size(); ++G)
    for (GraphNodeId Member : Groups[G].Members) {
      assert(Member < Contexts.size() && "group member is not a context");
      GroupOf[Member] = static_cast<int32_t>(G);
    }

  IdentificationResult Result;
  std::vector<bool> Ignored(Groups.size() + 1, false);

  for (size_t G = 0; G < Groups.size(); ++G) {
    // ignore <- ignore + this group: members of the group under
    // construction (and of groups already identified) never conflict.
    Ignored[G] = true;

    Selector Sel;
    for (GraphNodeId Member : Groups[G].Members) {
      const ContextInfo &MemberInfo = Contexts.info(Member);

      Conjunction Expr;
      // Conflicting contexts: not in any ignored group, matching the (still
      // empty, hence universal) expression so far.
      std::vector<ContextId> Conflicting;
      for (ContextId C = 0; C < Contexts.size(); ++C) {
        int32_t CG = GroupOf[C];
        if (CG >= 0 && Ignored[CG])
          continue;
        Conflicting.push_back(C);
      }

      uint64_t Conflicts = std::numeric_limits<uint64_t>::max();
      while (Conflicts != 0) {
        // Count, for every site of the member's chain, how many conflicting
        // chains contain it.
        CallSiteId BestSite = InvalidId;
        uint64_t BestCount = std::numeric_limits<uint64_t>::max();
        size_t BestPos = 0;
        for (CallSiteId Site : MemberInfo.Chain) {
          if (std::find(Expr.Sites.begin(), Expr.Sites.end(), Site) !=
              Expr.Sites.end())
            continue;
          uint64_t Count = 0;
          for (ContextId C : Conflicting)
            if (Contexts.info(C).chainContains(Site))
              ++Count;
          size_t Pos = stackPosition(MemberInfo.Frames, Site);
          // argmin by count; ties prefer the site lower in the stack
          // (outermost), which is crossed least often at runtime.
          if (Count < BestCount || (Count == BestCount && Pos < BestPos)) {
            BestSite = Site;
            BestCount = Count;
            BestPos = Pos;
          }
        }
        if (BestSite == InvalidId)
          break; // Chain exhausted.
        // Add the new constraint only if it reduces conflicts.
        if (BestCount == Conflicts)
          break;
        Expr.Sites.push_back(BestSite);
        Conflicts = BestCount;
        // Narrow the conflict set to chains matching the new constraint.
        std::vector<ContextId> Narrowed;
        for (ContextId C : Conflicting)
          if (Contexts.info(C).chainContains(BestSite))
            Narrowed.push_back(C);
        Conflicting = std::move(Narrowed);
      }

      std::sort(Expr.Sites.begin(), Expr.Sites.end());
      Sel.Terms.push_back(std::move(Expr));
    }
    Result.Selectors.push_back(std::move(Sel));
  }

  // Union of sites, in deterministic first-use order across selectors.
  std::vector<bool> SeenSite;
  for (const Selector &Sel : Result.Selectors)
    for (const Conjunction &Term : Sel.Terms)
      for (CallSiteId Site : Term.Sites) {
        if (Site >= SeenSite.size())
          SeenSite.resize(Site + 1, false);
        if (!SeenSite[Site]) {
          SeenSite[Site] = true;
          Result.Sites.push_back(Site);
        }
      }
  return Result;
}

void halo::saveIdentification(const IdentificationResult &Result,
                              BinaryWriter &W) {
  W.varint(Result.Selectors.size());
  for (const Selector &Sel : Result.Selectors) {
    W.varint(Sel.Terms.size());
    for (const Conjunction &Term : Sel.Terms) {
      W.varint(Term.Sites.size());
      for (CallSiteId Site : Term.Sites)
        W.varint(Site);
    }
  }
  W.varint(Result.Sites.size());
  for (CallSiteId Site : Result.Sites)
    W.varint(Site);
}

namespace {

CallSiteId readSiteId(BinaryReader &R, const char *What) {
  uint64_t Site = R.varint();
  if (Site > UINT32_MAX)
    throw SerializationError(std::string(What) + ": site id out of range");
  return static_cast<CallSiteId>(Site);
}

} // namespace

IdentificationResult halo::loadIdentification(BinaryReader &R) {
  IdentificationResult Result;
  uint64_t NumSelectors = R.varint();
  Result.Selectors.reserve(static_cast<size_t>(NumSelectors));
  for (uint64_t I = 0; I < NumSelectors; ++I) {
    Selector Sel;
    uint64_t NumTerms = R.varint();
    Sel.Terms.reserve(static_cast<size_t>(NumTerms));
    for (uint64_t J = 0; J < NumTerms; ++J) {
      Conjunction Term;
      uint64_t NumSites = R.varint();
      Term.Sites.reserve(static_cast<size_t>(NumSites));
      for (uint64_t K = 0; K < NumSites; ++K)
        Term.Sites.push_back(readSiteId(R, "identification selector"));
      Sel.Terms.push_back(std::move(Term));
    }
    Result.Selectors.push_back(std::move(Sel));
  }
  uint64_t NumSites = R.varint();
  Result.Sites.reserve(static_cast<size_t>(NumSites));
  for (uint64_t I = 0; I < NumSites; ++I)
    Result.Sites.push_back(readSiteId(R, "identification sites"));
  return Result;
}
