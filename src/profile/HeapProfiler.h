//===- profile/HeapProfiler.h - Pin-tool equivalent -------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiling stage of Section 4.1, playing the role of the paper's
/// custom Pin tool. It observes the runtime's event stream, maintains the
/// shadow stack and live-object map, feeds heap accesses through the
/// affinity queue, and accumulates the pairwise affinity graph under the
/// four constraints (deduplication, no self-affinity, no double counting,
/// co-allocatability). After the run the graph's coldest nodes are filtered
/// so the surviving nodes cover 90% of observed accesses.
///
/// It can additionally record the object-level reference trace that the
/// hot-data-streams comparison technique (hds/) consumes.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_PROFILE_HEAPPROFILER_H
#define HALO_PROFILE_HEAPPROFILER_H

#include "graph/AffinityGraph.h"
#include "profile/AffinityQueue.h"
#include "profile/LiveObjectMap.h"
#include "runtime/Runtime.h"
#include "trace/Context.h"
#include "trace/ShadowStack.h"

#include <cstdint>
#include <vector>

namespace halo {

/// Profiling configuration (defaults follow Section 5.1).
struct ProfileOptions {
  /// Affinity distance A in bytes (the paper selects 128 from Fig. 12).
  uint64_t AffinityDistance = 128;
  /// Keep the hottest nodes covering this fraction of accesses.
  double NodeCoverage = 0.9;
  /// Maximum grouped-object size: accesses to larger objects do not enter
  /// the affinity analysis (4 KiB in the evaluation).
  uint64_t MaxObjectSize = 4096;
  /// Constraint toggles for bench/ablation_constraints.
  bool Dedup = true;
  bool NoDoubleCount = true;
  bool CoAllocatability = true;
  /// Record the object-level reference trace (needed by hds/).
  bool RecordReferenceTrace = false;
};

/// Builds the affinity graph (and optional reference trace) from a run.
class HeapProfiler final : public RuntimeObserver {
public:
  HeapProfiler(const Program &Prog, const ProfileOptions &Options);

  // RuntimeObserver interface.
  void onCall(CallSiteId Site) override;
  void onReturn(CallSiteId Site) override;
  void onAlloc(uint64_t Addr, uint64_t Size, CallSiteId MallocSite) override;
  void onFree(uint64_t Addr) override;
  void onAccess(uint64_t Addr, uint64_t Size, bool IsStore) override;
  /// Batched replay path: one virtual dispatch per run of consecutive
  /// accesses, then the non-virtual handler in a tight loop (this is how
  /// the profiling pipelines consume a recorded trace).
  void onAccessBatch(const MemAccess *Batch, size_t N) override;
  /// Devirtualized per-access fast path: profiling attaches exactly one
  /// observer, so the runtime calls the non-virtual handler directly
  /// (Section 4.1's 500x profiling slowdown lives on this edge).
  AccessHookFn accessHook() override;

  /// Finalises and returns the affinity graph: cold nodes filtered per
  /// NodeCoverage. Call once, after the profiled run.
  AffinityGraph takeGraph();

  /// The interned contexts (node ids in the graph are ContextIds here).
  const ContextTable &contexts() const { return Contexts; }
  ContextTable &contexts() { return Contexts; }

  /// All object metadata, indexed by ObjectId.
  const LiveObjectMap &objects() const { return Objects; }

  /// The object-level reference trace (consecutive duplicates merged);
  /// empty unless RecordReferenceTrace was set.
  const std::vector<ObjectId> &referenceTrace() const { return RefTrace; }

  /// Total macro-level heap accesses observed.
  uint64_t totalAccesses() const { return MacroAccesses; }

private:
  void handleAccess(uint64_t Addr, uint64_t Size, bool IsStore);
  bool coAllocatable(const AffinityQueue::Entry &New,
                     const AffinityQueue::Entry &Old, ContextId NewCtx) const;

  const Program &Prog;
  ProfileOptions Options;
  ShadowStack Shadow;
  ContextTable Contexts;
  LiveObjectMap Objects;
  AffinityQueue Queue;
  AffinityGraph Graph;
  /// Per-context allocation sequence numbers (sorted by construction), used
  /// for the co-allocatability test.
  std::vector<std::vector<uint64_t>> AllocSeqsByCtx;
  std::vector<ObjectId> RefTrace;
  uint64_t MacroAccesses = 0;
  bool Taken = false;
};

} // namespace halo

#endif // HALO_PROFILE_HEAPPROFILER_H
