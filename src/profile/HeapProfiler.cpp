//===- profile/HeapProfiler.cpp - Pin-tool equivalent ----------------------===//

#include "profile/HeapProfiler.h"

#include <algorithm>
#include <cassert>

using namespace halo;

HeapProfiler::HeapProfiler(const Program &Prog, const ProfileOptions &Options)
    : Prog(Prog), Options(Options), Shadow(Prog),
      Queue(Options.AffinityDistance, Options.Dedup, Options.NoDoubleCount) {}

void HeapProfiler::onCall(CallSiteId Site) { Shadow.onCall(Site); }

void HeapProfiler::onReturn(CallSiteId) { Shadow.onReturn(); }

void HeapProfiler::onAlloc(uint64_t Addr, uint64_t Size,
                           CallSiteId MallocSite) {
  ContextId Ctx = Contexts.intern(Shadow.allocationContext(MallocSite));
  ++Contexts.info(Ctx).Allocations;
  ObjectId Obj = Objects.insert(Addr, Size, Ctx, MallocSite);
  if (Ctx >= AllocSeqsByCtx.size())
    AllocSeqsByCtx.resize(Ctx + 1);
  AllocSeqsByCtx[Ctx].push_back(Objects.record(Obj).AllocSeq);
}

void HeapProfiler::onFree(uint64_t Addr) { Objects.erase(Addr); }

bool HeapProfiler::coAllocatable(const AffinityQueue::Entry &New,
                                 const AffinityQueue::Entry &Old,
                                 ContextId NewCtx) const {
  // Co-allocatability: no allocation made chronologically between u and v
  // may originate from either of their contexts; otherwise placing all
  // allocations of the two contexts contiguously in one pool could not
  // have put u and v next to each other.
  uint64_t Lo = std::min(New.AllocSeq, Old.AllocSeq);
  uint64_t Hi = std::max(New.AllocSeq, Old.AllocSeq);
  for (ContextId Ctx : {NewCtx, static_cast<ContextId>(Old.Node)}) {
    if (Ctx >= AllocSeqsByCtx.size())
      continue;
    const std::vector<uint64_t> &Seqs = AllocSeqsByCtx[Ctx];
    // Any sequence number strictly inside (Lo, Hi)?
    auto It = std::upper_bound(Seqs.begin(), Seqs.end(), Lo);
    if (It != Seqs.end() && *It < Hi)
      return false;
  }
  return true;
}

void HeapProfiler::onAccess(uint64_t Addr, uint64_t Size, bool IsStore) {
  handleAccess(Addr, Size, IsStore);
}

void HeapProfiler::onAccessBatch(const MemAccess *Batch, size_t N) {
  for (size_t I = 0; I < N; ++I)
    handleAccess(Batch[I].Addr, Batch[I].Size, Batch[I].IsStore);
}

RuntimeObserver::AccessHookFn HeapProfiler::accessHook() {
  return [](RuntimeObserver &Self, uint64_t Addr, uint64_t Size,
            bool IsStore) {
    static_cast<HeapProfiler &>(Self).handleAccess(Addr, Size, IsStore);
  };
}

void HeapProfiler::handleAccess(uint64_t Addr, uint64_t Size, bool) {
  ObjectId Obj = Objects.find(Addr);
  if (Obj == ~0u)
    return; // Not a (live) heap object: stack/global traffic.
  const ObjectRecord &Rec = Objects.record(Obj);

  if (Options.RecordReferenceTrace &&
      (RefTrace.empty() || RefTrace.back() != Obj))
    RefTrace.push_back(Obj);

  // The affinity analysis only considers groupable objects.
  if (Rec.Size > Options.MaxObjectSize)
    return;

  // Visit partners straight off the window (no candidate vector copy). A
  // merged (deduplicated) access extends the previous macro access and
  // contributes nothing further.
  AffinityQueue::Entry New{Obj, Rec.Ctx, Rec.AllocSeq, Size, 0};
  bool NewAccess = Queue.access(
      Obj, Rec.Ctx, Rec.AllocSeq, Size, [&](const AffinityQueue::Entry &Old) {
        if (Options.CoAllocatability && !coAllocatable(New, Old, Rec.Ctx))
          return;
        Graph.addEdgeWeight(Rec.Ctx, Old.Node);
      });
  if (!NewAccess)
    return;
  ++MacroAccesses;
  Graph.addAccesses(Rec.Ctx);
}

AffinityGraph HeapProfiler::takeGraph() {
  assert(!Taken && "takeGraph may only be called once");
  Taken = true;
  Graph.filterColdNodes(Options.NodeCoverage);
  return std::move(Graph);
}
