//===- profile/AffinityQueue.cpp - Recent-access window --------------------===//

#include "profile/AffinityQueue.h"

#include <algorithm>
#include <cassert>

using namespace halo;

AffinityQueue::AffinityQueue(uint64_t Distance, bool Dedup, bool NoDoubleCount)
    : Distance(Distance), Dedup(Dedup), NoDoubleCount(NoDoubleCount) {
  assert(Distance > 0 && "affinity distance must be positive");
}

const std::vector<AffinityQueue::Entry> &
AffinityQueue::push(uint32_t Object, uint32_t Node, uint64_t AllocSeq,
                    uint64_t Bytes) {
  Candidates.clear();
  if (Bytes == 0)
    Bytes = 1;

  // Deduplication: consecutive machine-level accesses to a single object
  // are part of the same macro-level access and do not re-trigger
  // traversal; the entry simply grows.
  if (Dedup && !Window.empty() && Window.back().Object == Object) {
    Window.back().Bytes += Bytes;
    NextCum += Bytes;
    LastMerged = true;
    return Candidates;
  }
  LastMerged = false;

  uint64_t NewStart = NextCum;
  uint64_t NewEnd = NewStart + Bytes;

  // The window covers the last A bytes worth of accesses, including the new
  // access itself; an entry is affinitive while any of its bytes overlap
  // that window. This reproduces Figure 5 exactly (ten 4-byte accesses,
  // A = 32: the newest element is affinitive to the seven to its left) and
  // accounts for merged macro accesses consuming window space.
  if (NewEnd >= Distance) {
    uint64_t Cutoff = NewEnd - Distance;
    while (!Window.empty() &&
           Window.front().CumStart + Window.front().Bytes <= Cutoff)
      Window.pop_front();
  }

  // Traverse the queue to find affinitive partners for the new access.
  SeenObjects.clear();
  for (auto It = Window.rbegin(); It != Window.rend(); ++It) {
    if (It->Object == Object)
      continue; // No self-affinity at the object level.
    if (NoDoubleCount) {
      if (std::find(SeenObjects.begin(), SeenObjects.end(), It->Object) !=
          SeenObjects.end())
        continue;
      SeenObjects.push_back(It->Object);
    }
    Candidates.push_back(*It);
  }

  Window.push_back(Entry{Object, Node, AllocSeq, Bytes, NewStart});
  NextCum = NewEnd;
  return Candidates;
}
