//===- profile/AffinityQueue.cpp - Recent-access window --------------------===//

#include "profile/AffinityQueue.h"

using namespace halo;

const std::vector<AffinityQueue::Entry> &
AffinityQueue::push(uint32_t Object, uint32_t Node, uint64_t AllocSeq,
                    uint64_t Bytes) {
  Candidates.clear();
  access(Object, Node, AllocSeq, Bytes,
         [this](const Entry &Partner) { Candidates.push_back(Partner); });
  return Candidates;
}
