//===- profile/LiveObjectMap.cpp - Live heap-object tracking ---------------===//

#include "profile/LiveObjectMap.h"

using namespace halo;

ObjectId LiveObjectMap::insert(uint64_t Addr, uint64_t Size, ContextId Ctx,
                               CallSiteId ImmediateSite) {
  ObjectId Id = static_cast<ObjectId>(Records.size());
  Records.push_back(ObjectRecord{Addr, Size ? Size : 1, Ctx, ImmediateSite,
                                 NextSeq++});
  [[maybe_unused]] auto [It, Inserted] = ByAddr.emplace(Addr, Id);
  assert(Inserted && "object overlaps a live allocation");
  return Id;
}

ObjectId LiveObjectMap::erase(uint64_t Addr) {
  auto It = ByAddr.find(Addr);
  assert(It != ByAddr.end() && "freeing unknown object");
  ObjectId Id = It->second;
  if (Id == LastFound)
    LastFound = ~0u;
  ByAddr.erase(It);
  return Id;
}

ObjectId LiveObjectMap::find(uint64_t Addr) const {
  if (LastFound != ~0u) {
    const ObjectRecord &Rec = Records[LastFound];
    if (Addr - Rec.Addr < Rec.Size) // Unsigned: also rejects Addr < Rec.Addr.
      return LastFound;
  }
  auto It = ByAddr.upper_bound(Addr);
  if (It == ByAddr.begin())
    return ~0u;
  --It;
  const ObjectRecord &Rec = Records[It->second];
  if (Addr < Rec.Addr + Rec.Size) {
    LastFound = It->second;
    return It->second;
  }
  return ~0u;
}
