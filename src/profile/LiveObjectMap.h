//===- profile/LiveObjectMap.h - Live heap-object tracking -----*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiler's view of the live heap: every allocation is tracked "at an
/// object-level granularity" (Section 4.1) so loads and stores can be
/// attributed to the object (and hence the allocation context) they touch.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_PROFILE_LIVEOBJECTMAP_H
#define HALO_PROFILE_LIVEOBJECTMAP_H

#include "trace/Context.h"

#include <cstdint>
#include <map>
#include <vector>

namespace halo {

using ObjectId = uint32_t;

/// Immutable per-object metadata, kept for the lifetime of the profile so
/// traces can refer to freed objects.
struct ObjectRecord {
  uint64_t Addr = 0;
  uint64_t Size = 0;
  ContextId Ctx = InvalidId;
  CallSiteId ImmediateSite = InvalidId; ///< malloc call site (for HDS).
  uint64_t AllocSeq = 0; ///< Global allocation sequence number.
};

/// Interval map from addresses to live heap objects.
class LiveObjectMap {
public:
  /// Registers a new live object; returns its id. \p Addr must not overlap
  /// any live object.
  ObjectId insert(uint64_t Addr, uint64_t Size, ContextId Ctx,
                  CallSiteId ImmediateSite);

  /// Removes the live object starting at \p Addr; returns its id.
  ObjectId erase(uint64_t Addr);

  /// Finds the live object containing \p Addr, or ~0u ("not a heap object").
  /// Consecutive accesses overwhelmingly hit the same object, so the last
  /// successful lookup is cached and re-checked in O(1) before the ordered
  /// map is consulted.
  ObjectId find(uint64_t Addr) const;

  /// Metadata of any ever-allocated object (live or freed).
  const ObjectRecord &record(ObjectId Id) const {
    assert(Id < Records.size() && "bad object id");
    return Records[Id];
  }

  uint64_t liveCount() const { return ByAddr.size(); }
  uint64_t totalAllocated() const { return Records.size(); }
  uint64_t nextSequence() const { return NextSeq; }

private:
  std::map<uint64_t, ObjectId> ByAddr; ///< start addr -> live object.
  std::vector<ObjectRecord> Records;   ///< by ObjectId, never shrinks.
  uint64_t NextSeq = 0;
  /// Last object find() returned; invalidated when that object is freed.
  /// Inserts never overlap live objects, so a cached hit stays valid.
  mutable ObjectId LastFound = ~0u;
};

} // namespace halo

#endif // HALO_PROFILE_LIVEOBJECTMAP_H
