//===- profile/AffinityQueue.h - Recent-access window -----------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The affinity queue of Section 4.1 / Figure 5: a window over the most
/// recently accessed heap objects, implicitly sized by the affinity
/// distance A. A pair of entries is affinitive when the sizes of the
/// entries between them sum to less than A bytes; operationally, an older
/// entry is affinitive to the newest while any of its bytes overlap the
/// window holding the last A bytes worth of accesses (which reproduces
/// Figure 5's seven-neighbour example exactly). The queue enforces two of
/// the paper's four constraints itself -- deduplication (consecutive
/// machine accesses to one object form a single macro access and do not
/// re-trigger traversal) and no double counting (each unique object is
/// reported at most once per traversal); no self-affinity and
/// co-allocatability are applied by the caller, which owns the metadata.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_PROFILE_AFFINITYQUEUE_H
#define HALO_PROFILE_AFFINITYQUEUE_H

#include <cstdint>
#include <deque>
#include <vector>

namespace halo {

/// Sliding window of recent macro-level accesses.
class AffinityQueue {
public:
  struct Entry {
    uint32_t Object;
    uint32_t Node;     ///< The object's allocation context.
    uint64_t AllocSeq; ///< The object's allocation sequence number.
    uint64_t Bytes;    ///< Macro-access size (merged machine accesses).
    uint64_t CumStart; ///< Byte position of this entry's start.
  };

  /// \p Distance is the affinity distance A. \p Dedup / \p NoDoubleCount
  /// allow the ablation benches to disable those constraints.
  explicit AffinityQueue(uint64_t Distance, bool Dedup = true,
                         bool NoDoubleCount = true);

  /// Records an access of \p Bytes to \p Object. Returns the affinitive
  /// candidates (older entries within the window, deduplicated, never the
  /// object itself), or an empty list when the access merged into the
  /// previous macro access. The returned reference is valid until the next
  /// push.
  const std::vector<Entry> &push(uint32_t Object, uint32_t Node,
                                 uint64_t AllocSeq, uint64_t Bytes);

  /// True if the most recent push merged into the previous macro access
  /// (and therefore was not a new access at all).
  bool lastPushMerged() const { return LastMerged; }

  uint64_t size() const { return Window.size(); }
  uint64_t distance() const { return Distance; }

private:
  uint64_t Distance;
  bool Dedup;
  bool NoDoubleCount;
  bool LastMerged = false;
  std::deque<Entry> Window;
  uint64_t NextCum = 0;
  std::vector<Entry> Candidates;
  std::vector<uint32_t> SeenObjects; ///< Scratch for per-traversal dedup.
};

} // namespace halo

#endif // HALO_PROFILE_AFFINITYQUEUE_H
