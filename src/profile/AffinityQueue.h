//===- profile/AffinityQueue.h - Recent-access window -----------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The affinity queue of Section 4.1 / Figure 5: a window over the most
/// recently accessed heap objects, implicitly sized by the affinity
/// distance A. A pair of entries is affinitive when the sizes of the
/// entries between them sum to less than A bytes; operationally, an older
/// entry is affinitive to the newest while any of its bytes overlap the
/// window holding the last A bytes worth of accesses (which reproduces
/// Figure 5's seven-neighbour example exactly). The queue enforces two of
/// the paper's four constraints itself -- deduplication (consecutive
/// machine accesses to one object form a single macro access and do not
/// re-trigger traversal) and no double counting (each unique object is
/// reported at most once per traversal); no self-affinity and
/// co-allocatability are applied by the caller, which owns the metadata.
///
/// This sits on the profiler's per-access fast path, so the traversal is
/// allocation-free: per-traversal object dedup uses an epoch-stamped dense
/// mark array (object ids are dense, LiveObjectMap hands them out
/// sequentially) instead of a scanned list, and access() visits partners
/// through a callback so hot callers never pay for the materialised
/// candidate vector that push() keeps for convenience.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_PROFILE_AFFINITYQUEUE_H
#define HALO_PROFILE_AFFINITYQUEUE_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

namespace halo {

/// Sliding window of recent macro-level accesses.
class AffinityQueue {
public:
  struct Entry {
    uint32_t Object;
    uint32_t Node;     ///< The object's allocation context.
    uint64_t AllocSeq; ///< The object's allocation sequence number.
    uint64_t Bytes;    ///< Macro-access size (merged machine accesses).
    uint64_t CumStart; ///< Byte position of this entry's start.
  };

  /// \p Distance is the affinity distance A. \p Dedup / \p NoDoubleCount
  /// allow the ablation benches to disable those constraints.
  explicit AffinityQueue(uint64_t Distance, bool Dedup = true,
                         bool NoDoubleCount = true)
      : Distance(Distance), Dedup(Dedup), NoDoubleCount(NoDoubleCount) {
    assert(Distance > 0 && "affinity distance must be positive");
  }

  /// Records an access of \p Bytes to \p Object and invokes
  /// \p Visit(const Entry &) for each affinitive partner (older entries
  /// within the window, deduplicated, never the object itself), newest
  /// first. Returns true for a new macro access, false when the access
  /// merged into the previous macro access (no traversal). This is the
  /// zero-copy fast path; push() wraps it when a materialised vector is
  /// more convenient.
  template <typename Callback>
  bool access(uint32_t Object, uint32_t Node, uint64_t AllocSeq,
              uint64_t Bytes, Callback &&Visit) {
    if (Bytes == 0)
      Bytes = 1;

    // Deduplication: consecutive machine-level accesses to a single object
    // are part of the same macro-level access and do not re-trigger
    // traversal; the entry simply grows.
    if (Dedup && !Window.empty() && Window.back().Object == Object) {
      Window.back().Bytes += Bytes;
      NextCum += Bytes;
      LastMerged = true;
      return false;
    }
    LastMerged = false;

    uint64_t NewStart = NextCum;
    uint64_t NewEnd = NewStart + Bytes;

    // The window covers the last A bytes worth of accesses, including the
    // new access itself; an entry is affinitive while any of its bytes
    // overlap that window. This reproduces Figure 5 exactly (ten 4-byte
    // accesses, A = 32: the newest element is affinitive to the seven to
    // its left) and accounts for merged macro accesses consuming window
    // space.
    if (NewEnd >= Distance) {
      uint64_t Cutoff = NewEnd - Distance;
      while (!Window.empty() &&
             Window.front().CumStart + Window.front().Bytes <= Cutoff)
        Window.pop_front();
    }

    // Traverse the window newest-first; each distinct object is reported at
    // most once per traversal. Ids below DenseMarkLimit (every id the
    // profiler hands out: LiveObjectMap ids are sequential) are stamped in
    // MarkEpoch with this traversal's epoch -- O(1) per entry, no clearing
    // between traversals, memory bounded by the limit. Rarer huge ids fall
    // back to a scan of the (tiny, per-traversal) LargeSeen list so a
    // single sparse id can never balloon the array.
    if (NoDoubleCount) {
      if (Object < DenseMarkLimit && Object >= MarkEpoch.size())
        MarkEpoch.resize(
            std::min<size_t>(DenseMarkLimit,
                             std::max<size_t>(static_cast<size_t>(Object) + 1,
                                              MarkEpoch.size() * 2)),
            0);
      LargeSeen.clear();
    }
    ++Epoch;
    for (auto It = Window.rbegin(); It != Window.rend(); ++It) {
      if (It->Object == Object)
        continue; // No self-affinity at the object level.
      if (NoDoubleCount) {
        if (It->Object < DenseMarkLimit) {
          if (MarkEpoch[It->Object] == Epoch)
            continue;
          MarkEpoch[It->Object] = Epoch;
        } else {
          if (std::find(LargeSeen.begin(), LargeSeen.end(), It->Object) !=
              LargeSeen.end())
            continue;
          LargeSeen.push_back(It->Object);
        }
      }
      Visit(*It);
    }

    Window.push_back(Entry{Object, Node, AllocSeq, Bytes, NewStart});
    NextCum = NewEnd;
    return true;
  }

  /// Records an access of \p Bytes to \p Object. Returns the affinitive
  /// candidates (older entries within the window, deduplicated, never the
  /// object itself), or an empty list when the access merged into the
  /// previous macro access. The returned reference is valid until the next
  /// push.
  const std::vector<Entry> &push(uint32_t Object, uint32_t Node,
                                 uint64_t AllocSeq, uint64_t Bytes);

  /// True if the most recent push merged into the previous macro access
  /// (and therefore was not a new access at all).
  bool lastPushMerged() const { return LastMerged; }

  uint64_t size() const { return Window.size(); }
  uint64_t distance() const { return Distance; }

private:
  /// Ids below this use the O(1) epoch-mark array (at most 8 MiB); ids at
  /// or above it dedup via the LargeSeen scan instead. The profiler's
  /// object ids are dense and sequential, so its hot path always takes the
  /// array.
  static constexpr uint32_t DenseMarkLimit = 1u << 20;

  uint64_t Distance;
  bool Dedup;
  bool NoDoubleCount;
  bool LastMerged = false;
  std::deque<Entry> Window;
  uint64_t NextCum = 0;
  std::vector<Entry> Candidates;
  /// Dense per-object traversal stamps: MarkEpoch[obj] == Epoch means obj
  /// was already reported during the current traversal. Window entries with
  /// id < DenseMarkLimit were all pushed before, so the array (grown on
  /// push) always covers them.
  std::vector<uint64_t> MarkEpoch;
  uint64_t Epoch = 0;
  /// Per-traversal dedup scratch for ids >= DenseMarkLimit (bounded by the
  /// window length, normally empty).
  std::vector<uint32_t> LargeSeen;
};

} // namespace halo

#endif // HALO_PROFILE_AFFINITYQUEUE_H
