//===- trace/EventTrace.h - Record-once/replay-many event traces -*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An allocator-independent recording of one workload run's event stream.
///
/// Every `Evaluation::measure` call used to re-execute the workload model
/// end to end, re-deriving the identical event stream for each allocator
/// kind x trial x scale. An EventTrace captures that stream once -- as a
/// flat, compact binary buffer of call/return/alloc/free/access/compute
/// records -- and `Runtime::replay` re-executes it under any allocator
/// configuration without the workload logic (the same separation of profile
/// collection from optimisation that BOLT applies to code layout).
///
/// Allocator independence is what makes the trace replayable: allocations
/// are recorded as (site, size) with an implicit sequential object id, and
/// heap accesses as (object id, offset) resolved through a recording-time
/// LiveObjectMap -- so replay reconstructs the exact addresses *its*
/// allocator assigns, not the recorder's. Accesses outside any live heap
/// object (stack/global traffic) keep their raw address. realloc is
/// recorded as a single composite record because its internal copy length
/// depends on the serving allocator's usableSize(); replay re-derives it.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_TRACE_EVENTTRACE_H
#define HALO_TRACE_EVENTTRACE_H

#include "profile/LiveObjectMap.h"
#include "runtime/Runtime.h"
#include "support/AddrMap.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace halo {

class BinaryWriter;
class BinaryReader;
class TraceFileWriter;

/// Tag byte of each trace record. Operands are LEB128 varints. Every
/// consumer dispatches on this with a fully-enumerated switch (no
/// default), so adding an op here makes -Wswitch flag each site that
/// needs updating.
enum class TraceOp : uint8_t {
  Call = 0,  ///< site
  Return,    ///< (no operands)
  Alloc,     ///< site, size; mints the next object id
  Free,      ///< object id
  Load,      ///< object id, offset, size
  Store,     ///< object id, offset, size
  LoadBase,  ///< object id, size (offset 0, the dominant access shape)
  StoreBase, ///< object id, size (offset 0)
  LoadRaw,   ///< address, size (non-heap traffic)
  StoreRaw,  ///< address, size (non-heap traffic)
  Compute,   ///< cycles
  Realloc,   ///< old object id, site, new size; mints the next object id
};

/// Operand count of \p Op (every operand is one varint). Shared by the
/// consumers that skip records without decoding them: the shard planner's
/// boundary scan and the save-time block cutter.
inline unsigned traceOperandCount(TraceOp Op) {
  switch (Op) {
  case TraceOp::Return:
    return 0;
  case TraceOp::Call:
  case TraceOp::Free:
  case TraceOp::Compute:
    return 1;
  case TraceOp::Alloc:
  case TraceOp::LoadBase:
  case TraceOp::StoreBase:
  case TraceOp::LoadRaw:
  case TraceOp::StoreRaw:
    return 2;
  case TraceOp::Load:
  case TraceOp::Store:
  case TraceOp::Realloc:
    return 3;
  }
  return 0;
}

/// One decoded trace record: the tag plus up to three operands in record
/// order (A holds the first operand, B the second, C the third; fields
/// beyond the record's operand count are left untouched). The fixed
/// stride is what the batch decoder fills and the replay loop consumes --
/// decode and execution each run over flat arrays instead of alternating
/// per event.
struct TraceEvent {
  TraceOp Op;
  uint64_t A;
  uint64_t B;
  uint64_t C;
};

/// Per-kind record totals of a trace.
struct TraceCounts {
  uint64_t Calls = 0;
  uint64_t Returns = 0;
  uint64_t Allocs = 0;
  uint64_t Frees = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t RawLoads = 0;
  uint64_t RawStores = 0;
  uint64_t Computes = 0;
  uint64_t Reallocs = 0;

  uint64_t total() const {
    return Calls + Returns + Allocs + Frees + Loads + Stores + RawLoads +
           RawStores + Computes + Reallocs;
  }
};

/// The flat binary event buffer: a tag byte per record followed by varint
/// operands. Object ids are implicit -- the Nth Alloc/Realloc record mints
/// id N -- which both shrinks the encoding and pins the replay-time
/// allocation order to the recording order.
class EventTrace {
public:
  /// Sequential decoder over the buffer (the replay hot loop).
  class Reader {
  public:
    Reader(const uint8_t *Begin, const uint8_t *End) : P(Begin), End(End) {}

    bool atEnd() const { return P == End; }

    TraceOp op() {
      assert(P < End && "decoding past the end of the trace");
      return static_cast<TraceOp>(*P++);
    }

    uint64_t varint() {
      uint64_t V = *P++;
      if ((V & 0x80) == 0) // One-byte values dominate real traces.
        return V;
      V &= 0x7F;
      for (uint32_t Shift = 7;; Shift += 7) {
        uint8_t B = *P++;
        V |= static_cast<uint64_t>(B & 0x7F) << Shift;
        if ((B & 0x80) == 0)
          return V;
      }
    }

  private:
    const uint8_t *P;
    const uint8_t *End;
  };

  Reader reader() const {
    assert(!Sink && "a streaming trace has no in-RAM buffer to read");
    return Reader(Buffer.data(), Buffer.data() + Buffer.size());
  }

  /// Decoder over the half-open byte range [\p Begin, \p End) of the
  /// buffer. Both bounds must fall on record boundaries -- sharded replay
  /// derives them from a record-skipping scan (see data()) and decodes
  /// each shard's range with an ordinary Reader.
  Reader reader(uint64_t Begin, uint64_t End) const {
    assert(Begin <= End && End <= Buffer.size() && "shard range out of trace");
    return Reader(Buffer.data() + Begin, Buffer.data() + End);
  }

  /// Raw encoded bytes (byteSize() of them): a tag byte per record followed
  /// by its varint operands. The shard-boundary scan walks this directly --
  /// skipping operands needs no operand decoding, just the varint
  /// continuation bit -- to cut the trace at record starts.
  const uint8_t *data() const { return Buffer.data(); }

  /// Chunked batch decoder: decodes up to N records per fill() into a
  /// flat fixed-stride TraceEvent buffer, so consumers iterate an array
  /// instead of alternating decode and execution per record. (The replay
  /// hot loop in Runtime.cpp goes one step further and fuses decoding
  /// with address resolution; this cursor is the general-purpose form for
  /// tools and tests.)
  class Cursor {
  public:
    explicit Cursor(const EventTrace &Trace) : R(Trace.reader()) {}

    bool atEnd() const { return R.atEnd(); }

    /// Decodes up to \p MaxN records into \p Out; returns how many were
    /// decoded (0 only at the end of the trace).
    size_t fill(TraceEvent *Out, size_t MaxN);

  private:
    Reader R;
  };

  Cursor cursor() const { return Cursor(*this); }

  // -- Recording ---------------------------------------------------------
  void recordCall(CallSiteId Site) {
    emit(TraceOp::Call, Site);
    ++Counts.Calls;
  }
  void recordReturn() {
    emit(TraceOp::Return);
    ++Counts.Returns;
  }
  /// Returns the object id the new allocation was minted.
  ObjectId recordAlloc(CallSiteId Site, uint64_t Size) {
    emit(TraceOp::Alloc, Site, Size);
    ++Counts.Allocs;
    return Objects++;
  }
  void recordFree(ObjectId Id) {
    emit(TraceOp::Free, Id);
    ++Counts.Frees;
  }
  void recordAccess(ObjectId Id, uint64_t Offset, uint64_t Size,
                    bool IsStore) {
    if (Offset == 0)
      emit(IsStore ? TraceOp::StoreBase : TraceOp::LoadBase, Id, Size);
    else
      emit(IsStore ? TraceOp::Store : TraceOp::Load, Id, Offset, Size);
    ++(IsStore ? Counts.Stores : Counts.Loads);
  }
  void recordRawAccess(uint64_t Addr, uint64_t Size, bool IsStore) {
    emit(IsStore ? TraceOp::StoreRaw : TraceOp::LoadRaw, Addr, Size);
    ++(IsStore ? Counts.RawStores : Counts.RawLoads);
  }
  void recordCompute(uint64_t Cycles) {
    emit(TraceOp::Compute, Cycles);
    ++Counts.Computes;
  }
  /// Returns the object id minted for the reallocated object.
  ObjectId recordRealloc(ObjectId Old, CallSiteId Site, uint64_t NewSize) {
    emit(TraceOp::Realloc, Old, Site, NewSize);
    ++Counts.Reallocs;
    return Objects++;
  }

  // -- Introspection -----------------------------------------------------
  const TraceCounts &counts() const { return Counts; }
  uint64_t numEvents() const { return Counts.total(); }
  /// Objects ever minted (Alloc + Realloc records).
  uint32_t numObjects() const { return Objects; }
  /// Encoded record bytes, including any already streamed to a sink.
  uint64_t byteSize() const { return StreamedBytes + Buffer.size(); }
  bool empty() const { return StreamedBytes == 0 && Buffer.empty(); }
  /// True between streamTo() and finishStream(): records are leaving RAM
  /// as they flush, so the trace is write-only (no reader()/save()).
  bool streaming() const { return Sink != nullptr; }

  // -- Streaming recording -----------------------------------------------
  /// Switches this (empty) trace into streaming mode: from now on, every
  /// time the buffer reaches \p BlockBytes whole records (0 = the default
  /// TraceBlockBytes), they flush to \p Sink as one compressed block and
  /// leave RAM. The trace becomes write-only -- reader()/save() are out,
  /// counts stay live -- and the block cut rule is the very one save()
  /// applies, so the streamed file is byte-identical to recording in RAM
  /// and saving afterwards (tests/trace_file_test.cpp pins this).
  void streamTo(TraceFileWriter &Sink, uint64_t BlockBytes = 0);

  /// Flushes the tail block and seals the sink's footer. Returns the
  /// sink's ok() (false = an I/O error was latched). The trace leaves
  /// streaming mode; its buffer is empty.
  bool finishStream();

  // -- Serialization -----------------------------------------------------
  /// Writes the trace to \p W in the on-disk block format
  /// (trace/TraceFile.h): header, independently compressed blocks of
  /// whole records cut at \p BlockBytes (0 = the default TraceBlockBytes),
  /// footer index, trailer. save/load round-trips the record bytes
  /// exactly -- a loaded trace replays bit-identically to the recording
  /// it came from -- and re-saving a loaded trace reproduces the stored
  /// bytes. The format version guards the *encoding*; the artifact store
  /// additionally stamps every entry with the store schema version
  /// (cache invalidation by key).
  void save(BinaryWriter &W, uint64_t BlockBytes = 0) const;

  /// Decodes a save()d trace, which must span the remainder of \p R.
  /// Throws SerializationError on bad magic, unknown version, truncation,
  /// a checksum mismatch, or an index inconsistent with the payload
  /// (callers fall back to re-recording).
  static EventTrace load(BinaryReader &R);

private:
  static size_t putVarint(uint8_t *Tmp, size_t N, uint64_t V) {
    while (V >= 0x80) {
      Tmp[N++] = static_cast<uint8_t>(V) | 0x80;
      V >>= 7;
    }
    Tmp[N++] = static_cast<uint8_t>(V);
    return N;
  }

  /// Encodes one record into a stack scratch and appends it with a single
  /// insert (one growth check per record, not per byte). In streaming
  /// mode the flush check runs *before* the append: record* methods count
  /// a record only after emitting it, so at this point the buffer holds
  /// exactly the whole records the counters describe -- the invariant
  /// that makes each flushed block a counted record prefix.
  template <typename... OperandTs> void emit(TraceOp Op, OperandTs... Ops) {
    if (Sink && Buffer.size() >= SinkBlockBytes)
      flushSinkBlock();
    uint8_t Tmp[1 + sizeof...(OperandTs) * 10];
    size_t N = 0;
    Tmp[N++] = static_cast<uint8_t>(Op);
    ((N = putVarint(Tmp, N, static_cast<uint64_t>(Ops))), ...);
    Buffer.insert(Buffer.end(), Tmp, Tmp + N);
  }

  /// Compresses the buffered records into one sink block and empties the
  /// buffer (out-of-line: needs TraceFileWriter's definition).
  void flushSinkBlock();

  std::vector<uint8_t> Buffer;
  TraceCounts Counts;
  ObjectId Objects = 0;
  /// Streaming mode (streamTo/finishStream); null when fully in RAM.
  TraceFileWriter *Sink = nullptr;
  uint64_t SinkBlockBytes = 0;
  /// Record bytes already flushed out of Buffer.
  uint64_t StreamedBytes = 0;
};

/// Decodes the operands of one record whose tag \p Op was already
/// consumed. Unused fields stay untouched (consumers read only the
/// operands the op defines). Shared by EventTrace::Cursor and the
/// block-streaming MappedTrace::Cursor.
inline void decodeTraceOperands(EventTrace::Reader &R, TraceOp Op,
                                TraceEvent &E) {
  switch (Op) {
  case TraceOp::Return:
    break;
  case TraceOp::Call:
  case TraceOp::Free:
  case TraceOp::Compute:
    E.A = R.varint();
    break;
  case TraceOp::Alloc:
  case TraceOp::LoadBase:
  case TraceOp::StoreBase:
  case TraceOp::LoadRaw:
  case TraceOp::StoreRaw:
    E.A = R.varint();
    E.B = R.varint();
    break;
  case TraceOp::Load:
  case TraceOp::Store:
  case TraceOp::Realloc:
    E.A = R.varint();
    E.B = R.varint();
    E.C = R.varint();
    break;
  }
}

/// The allocator recording runs are served by: object ids are encoded in
/// the returned addresses (Base + id * 2^32), so the recorder resolves
/// every access to (id, offset) with two arithmetic operations instead of
/// hash or interval lookups. Recording runs attach no memory hierarchy, so
/// the unrealistic address layout costs nothing -- addresses never enter
/// the trace.
class RecordingArena final : public Allocator {
public:
  static constexpr uint64_t ArenaBase = 0x500000000000ull;
  static constexpr uint32_t IdShift = 32;

  uint64_t allocate(const AllocRequest &Request) override {
    uint64_t Size = Request.Size ? Request.Size : 1;
    assert(Size < (1ull << IdShift) && "object exceeds the id encoding");
    uint32_t Id = static_cast<uint32_t>(Sizes.size());
    Sizes.push_back(Size);
    Freed.push_back(false);
    Live += Size;
    return ArenaBase + (static_cast<uint64_t>(Id) << IdShift);
  }
  void deallocate(uint64_t Addr) override {
    uint32_t Id = idOf(Addr);
    assert(Id != ~0u && !Freed[Id] && "bad free");
    Freed[Id] = true;
    Live -= Sizes[Id];
  }
  bool owns(uint64_t Addr) const override {
    uint32_t Id = idOf(Addr);
    return Id != ~0u && !Freed[Id];
  }
  uint64_t usableSize(uint64_t Addr) const override {
    uint32_t Id = idOf(Addr);
    assert(Id != ~0u && "usableSize of a foreign address");
    return Sizes[Id];
  }
  uint64_t liveBytes() const override { return Live; }
  uint64_t residentBytes() const override { return Live; }
  std::string name() const override { return "recording-arena"; }

  /// True while object \p Id has not been freed.
  bool liveId(uint32_t Id) const { return !Freed[Id]; }

  /// The object id \p Addr points into, or ~0u for foreign addresses.
  /// Interior pointers resolve to their object as long as the offset is
  /// within the requested size (the same containment rule the generic
  /// recording path applies).
  uint32_t idOf(uint64_t Addr) const {
    if (Addr < ArenaBase)
      return ~0u;
    uint64_t Id = (Addr - ArenaBase) >> IdShift;
    if (Id >= Sizes.size())
      return ~0u;
    uint64_t Offset = Addr & ((1ull << IdShift) - 1);
    return Offset < Sizes[static_cast<size_t>(Id)]
               ? static_cast<uint32_t>(Id)
               : ~0u;
  }

private:
  std::vector<uint64_t> Sizes; ///< By id; ids are never reused.
  std::vector<uint8_t> Freed;  ///< By id.
  uint64_t Live = 0;
};

/// Observer that records a run into an EventTrace. Attach to the recording
/// runtime (any allocator; addresses are translated to object-relative
/// form and never enter the trace, except for non-heap traffic). When the
/// recording runtime is served by a RecordingArena, pass it too: access
/// attribution then degenerates to arithmetic on the encoded addresses.
class TraceRecorder final : public RuntimeObserver {
public:
  explicit TraceRecorder(EventTrace &Trace) : Trace(Trace) {}
  TraceRecorder(EventTrace &Trace, const RecordingArena &Arena)
      : Trace(Trace), Arena(&Arena) {}

  void onCall(CallSiteId Site) override;
  void onReturn(CallSiteId Site) override;
  void onAlloc(uint64_t Addr, uint64_t Size, CallSiteId MallocSite) override;
  void onFree(uint64_t Addr) override;
  void onAccess(uint64_t Addr, uint64_t Size, bool IsStore) override;
  void onAccessBatch(const MemAccess *Batch, size_t N) override;
  void onCompute(uint64_t Cycles) override;
  void onReallocBegin(uint64_t OldAddr, uint64_t NewSize,
                      CallSiteId MallocSite) override;
  void onReallocEnd(uint64_t NewAddr) override;
  AccessHookFn accessHook() override;

private:
  void handleAccess(uint64_t Addr, uint64_t Size, bool IsStore);
  ObjectId findInterior(uint64_t Addr);

  /// Recording-time metadata of one minted object.
  struct ObjectSpan {
    uint64_t Addr = 0;
    uint64_t Size = 0;
  };
  /// Interval-map maintenance op, applied lazily (see Intervals).
  struct IntervalOp {
    uint64_t Addr = 0;
    ObjectId Id = 0; ///< ~0u encodes an erase.
  };

  EventTrace &Trace;
  /// Bound recording arena (arithmetic attribution), or null for the
  /// generic map-based attribution below.
  const RecordingArena *Arena = nullptr;
  std::vector<ObjectSpan> Spans; ///< By object id; survives frees.
  /// Exact-base fast path: workloads overwhelmingly access objects at
  /// their base address, which one flat-table probe resolves.
  AddrMap ByBase;
  /// Interior pointers fall back to an ordered start-address map. It is
  /// synchronised lazily from Pending: recordings without interior
  /// accesses never pay the ordered-map insert/erase per allocation, and
  /// each op is applied at most once, so the lazy path is never slower.
  std::map<uint64_t, ObjectId> Intervals;
  std::vector<IntervalOp> Pending;
  /// Inside a composite realloc: primitives are live-map-maintained but not
  /// recorded (replay re-derives them via the replay allocator).
  bool InRealloc = false;
};

} // namespace halo

#endif // HALO_TRACE_EVENTTRACE_H
