//===- trace/Context.h - Allocation contexts --------------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation contexts (Section 4.1): the reduced call-stack under which an
/// allocation was made. A context is a chain of (function, call site)
/// frames, outermost first, ending with the malloc call site itself. Stacks
/// containing recursive calls are transformed into a canonical *reduced*
/// form in which only the most recent instance of any (function, call site)
/// pair is retained -- avoiding overfitting without imposing fixed size
/// constraints. ContextTable interns reduced contexts into dense ids, which
/// the affinity graph, grouping, and identification stages all operate on.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_TRACE_CONTEXT_H
#define HALO_TRACE_CONTEXT_H

#include "prog/Program.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace halo {

class BinaryWriter;
class BinaryReader;

using ContextId = uint32_t;

/// One entry of a context: \c Function was entered through \c Site.
struct CallFrame {
  FunctionId Function = InvalidId;
  CallSiteId Site = InvalidId;

  friend bool operator==(const CallFrame &A, const CallFrame &B) {
    return A.Function == B.Function && A.Site == B.Site;
  }
};

/// A call chain, outermost frame first.
using Context = std::vector<CallFrame>;

/// Canonicalises \p Frames: of every (function, call site) pair only the
/// most recent (innermost) instance survives, preserving relative order.
Context reduceContext(const Context &Frames);

/// Interned context: frames plus the de-duplicated set of call sites making
/// up the chain (the identification algorithm works on this site set).
struct ContextInfo {
  Context Frames;
  std::vector<CallSiteId> Chain; ///< Sorted, unique call sites of Frames.
  uint64_t Allocations = 0;      ///< Allocations made from this context.

  bool chainContains(CallSiteId Site) const;
};

/// Dense interning table for reduced contexts.
class ContextTable {
public:
  /// Interns \p Reduced (which must already be in reduced form) and returns
  /// its id, allocating a new one on first sight.
  ContextId intern(const Context &Reduced);

  const ContextInfo &info(ContextId Id) const {
    assert(Id < Infos.size() && "bad context id");
    return Infos[Id];
  }
  ContextInfo &info(ContextId Id) {
    assert(Id < Infos.size() && "bad context id");
    return Infos[Id];
  }

  uint32_t size() const { return static_cast<uint32_t>(Infos.size()); }

  /// Renders a context as "f1>f2>f3@site" style text for reports.
  std::string describe(ContextId Id, const Program &Prog) const;

  /// Writes every interned context (frames + allocation counts) in id
  /// order. load() re-interns them, so ids, chains, and describe() output
  /// round-trip exactly (Chain is a pure function of the frames).
  void save(BinaryWriter &W) const;

  /// Decodes a save()d table; throws SerializationError on malformed
  /// input (ids out of order would mean a non-faithful re-interning).
  static ContextTable load(BinaryReader &R);

private:
  struct FrameHash {
    size_t operator()(const Context &C) const;
  };

  std::unordered_map<Context, ContextId, FrameHash> Ids;
  std::vector<ContextInfo> Infos;
};

} // namespace halo

#endif // HALO_TRACE_CONTEXT_H
