//===- trace/Context.cpp - Allocation contexts ------------------------------===//

#include "trace/Context.h"

#include "support/BinaryIO.h"

#include <algorithm>

using namespace halo;

Context halo::reduceContext(const Context &Frames) {
  // Walk from the innermost frame outwards keeping first occurrences, then
  // restore outermost-first order.
  Context Reduced;
  Reduced.reserve(Frames.size());
  for (auto It = Frames.rbegin(); It != Frames.rend(); ++It) {
    bool Seen = false;
    for (const CallFrame &Kept : Reduced)
      if (Kept == *It) {
        Seen = true;
        break;
      }
    if (!Seen)
      Reduced.push_back(*It);
  }
  std::reverse(Reduced.begin(), Reduced.end());
  return Reduced;
}

bool ContextInfo::chainContains(CallSiteId Site) const {
  return std::binary_search(Chain.begin(), Chain.end(), Site);
}

size_t ContextTable::FrameHash::operator()(const Context &C) const {
  // FNV-1a over the frame words.
  uint64_t Hash = 1469598103934665603ull;
  for (const CallFrame &F : C) {
    uint64_t Word = (uint64_t(F.Function) << 32) | F.Site;
    for (int Shift = 0; Shift < 64; Shift += 8) {
      Hash ^= (Word >> Shift) & 0xff;
      Hash *= 1099511628211ull;
    }
  }
  return static_cast<size_t>(Hash);
}

ContextId ContextTable::intern(const Context &Reduced) {
  auto [It, Inserted] =
      Ids.emplace(Reduced, static_cast<ContextId>(Infos.size()));
  if (Inserted) {
    ContextInfo Info;
    Info.Frames = Reduced;
    Info.Chain.reserve(Reduced.size());
    for (const CallFrame &F : Reduced)
      Info.Chain.push_back(F.Site);
    std::sort(Info.Chain.begin(), Info.Chain.end());
    Info.Chain.erase(std::unique(Info.Chain.begin(), Info.Chain.end()),
                     Info.Chain.end());
    Infos.push_back(std::move(Info));
  }
  return It->second;
}

void ContextTable::save(BinaryWriter &W) const {
  W.varint(Infos.size());
  for (const ContextInfo &Info : Infos) {
    W.varint(Info.Frames.size());
    for (const CallFrame &F : Info.Frames) {
      W.varint(F.Function);
      W.varint(F.Site);
    }
    W.varint(Info.Allocations);
  }
}

ContextTable ContextTable::load(BinaryReader &R) {
  ContextTable Table;
  uint64_t Count = R.varint();
  for (uint64_t I = 0; I < Count; ++I) {
    Context Frames;
    uint64_t NumFrames = R.varint();
    Frames.reserve(static_cast<size_t>(NumFrames));
    for (uint64_t J = 0; J < NumFrames; ++J) {
      CallFrame F;
      uint64_t Function = R.varint();
      uint64_t Site = R.varint();
      if (Function > UINT32_MAX || Site > UINT32_MAX)
        throw SerializationError("context table: frame id out of range");
      F.Function = static_cast<FunctionId>(Function);
      F.Site = static_cast<CallSiteId>(Site);
      Frames.push_back(F);
    }
    // Re-interning replays the original assignment order, so the id must
    // come back unchanged; a duplicate context would collapse onto an
    // earlier id and shift every later one.
    ContextId Id = Table.intern(Frames);
    if (Id != I)
      throw SerializationError("context table: duplicate context on load");
    Table.info(Id).Allocations = R.varint();
  }
  return Table;
}

std::string ContextTable::describe(ContextId Id, const Program &Prog) const {
  const ContextInfo &Info = info(Id);
  std::string Text;
  for (size_t I = 0; I < Info.Frames.size(); ++I) {
    if (I)
      Text += ">";
    Text += Prog.callSite(Info.Frames[I].Site).Label;
  }
  return Text;
}
