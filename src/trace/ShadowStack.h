//===- trace/ShadowStack.h - Profiling shadow stack -------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiler's shadow stack (Section 4.1), which differs from the true
/// call stack by design: a frame is recorded only if the call target is
/// statically linked into the main binary or is an externally traceable
/// routine; call sites located in external code are traced back to their
/// nearest point of origin in the main executable (so linker stubs and
/// library procedures never appear as contexts).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_TRACE_SHADOWSTACK_H
#define HALO_TRACE_SHADOWSTACK_H

#include "trace/Context.h"

namespace halo {

/// Shadow call stack fed by the runtime's call/return events.
class ShadowStack {
public:
  explicit ShadowStack(const Program &Prog) : Prog(Prog) {}

  /// Records a call through \p Site. Calls targeting untraceable external
  /// functions are remembered (so returns stay balanced) but add no frame.
  void onCall(CallSiteId Site);

  /// Records the matching return.
  void onReturn();

  /// The current shadow stack, outermost first.
  const Context &frames() const { return Frames; }

  /// Depth of the raw call stack (including skipped external calls).
  uint32_t rawDepth() const { return RawDepth; }

  /// Builds the reduced allocation context for a malloc made right now
  /// through \p MallocSite (appended as the innermost frame).
  Context allocationContext(CallSiteId MallocSite) const;

  /// The call site of \p Site traced back to the main executable: if the
  /// call site itself lies in external code, the nearest enclosing
  /// main-binary site is substituted.
  CallSiteId originSite(CallSiteId Site) const;

private:
  const Program &Prog;
  Context Frames;
  std::vector<bool> Pushed; ///< Per raw call: did it push a frame?
  uint32_t RawDepth = 0;
};

} // namespace halo

#endif // HALO_TRACE_SHADOWSTACK_H
