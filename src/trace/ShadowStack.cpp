//===- trace/ShadowStack.cpp - Profiling shadow stack ----------------------===//

#include "trace/ShadowStack.h"

using namespace halo;

CallSiteId ShadowStack::originSite(CallSiteId Site) const {
  const CallSiteInfo &Info = Prog.callSite(Site);
  if (!Prog.function(Info.Caller).IsExternal)
    return Site;
  // The call site lives in external code (e.g. a library callback or linker
  // stub); attribute it to the nearest main-binary site on the stack.
  if (!Frames.empty())
    return Frames.back().Site;
  return Site;
}

void ShadowStack::onCall(CallSiteId Site) {
  ++RawDepth;
  const CallSiteInfo &Info = Prog.callSite(Site);
  const FunctionInfo &Callee = Prog.function(Info.Callee);
  // Only record targets statically linked into the main binary, or the
  // handful of traceable external routines.
  bool Record = !Callee.IsExternal || Callee.IsTraceable;
  Pushed.push_back(Record);
  if (Record)
    Frames.push_back(CallFrame{Info.Callee, originSite(Site)});
}

void ShadowStack::onReturn() {
  assert(RawDepth > 0 && "return without call");
  --RawDepth;
  assert(!Pushed.empty() && "shadow stack out of sync");
  if (Pushed.back()) {
    assert(!Frames.empty() && "shadow stack out of sync");
    Frames.pop_back();
  }
  Pushed.pop_back();
}

Context ShadowStack::allocationContext(CallSiteId MallocSite) const {
  Context Full = Frames;
  Full.push_back(
      CallFrame{Prog.callSite(MallocSite).Callee, originSite(MallocSite)});
  return reduceContext(Full);
}
