//===- trace/EventTrace.cpp - Record-once/replay-many event traces ----------===//

#include "trace/EventTrace.h"

#include "support/BinaryIO.h"

#include <cassert>

using namespace halo;

namespace {

/// Decodes the operands of one record whose tag \p Op was already
/// consumed. Unused fields stay untouched (consumers read only the
/// operands the op defines).
inline void decodeOperands(EventTrace::Reader &R, TraceOp Op,
                           TraceEvent &E) {
  switch (Op) {
  case TraceOp::Return:
    break;
  case TraceOp::Call:
  case TraceOp::Free:
  case TraceOp::Compute:
    E.A = R.varint();
    break;
  case TraceOp::Alloc:
  case TraceOp::LoadBase:
  case TraceOp::StoreBase:
  case TraceOp::LoadRaw:
  case TraceOp::StoreRaw:
    E.A = R.varint();
    E.B = R.varint();
    break;
  case TraceOp::Load:
  case TraceOp::Store:
  case TraceOp::Realloc:
    E.A = R.varint();
    E.B = R.varint();
    E.C = R.varint();
    break;
  }
}

} // namespace

size_t EventTrace::Cursor::fill(TraceEvent *Out, size_t MaxN) {
  size_t N = 0;
  while (N < MaxN && !R.atEnd()) {
    TraceEvent &E = Out[N++];
    E.Op = R.op();
    decodeOperands(R, E.Op, E);
  }
  return N;
}

void TraceRecorder::onCall(CallSiteId Site) { Trace.recordCall(Site); }

void TraceRecorder::onReturn(CallSiteId) { Trace.recordReturn(); }

void TraceRecorder::onAlloc(uint64_t Addr, uint64_t Size,
                            CallSiteId MallocSite) {
  // Sequential id assignment and the trace's implicit minting advance in
  // lockstep: every allocation lands here, and every allocation is minted
  // either by recordAlloc below or by the enclosing composite's
  // recordRealloc.
  if (Arena) {
    assert(Arena->idOf(Addr) ==
               Trace.numObjects() - (InRealloc ? 1 : 0) &&
           "arena ids diverged from the trace's minting order");
    if (!InRealloc)
      Trace.recordAlloc(MallocSite, Size);
    return;
  }
  ObjectId Id = static_cast<ObjectId>(Spans.size());
  Spans.push_back(ObjectSpan{Addr, Size ? Size : 1});
  ByBase.insert(Addr, Id);
  Pending.push_back(IntervalOp{Addr, Id});
  if (InRealloc)
    return;
  [[maybe_unused]] ObjectId Minted = Trace.recordAlloc(MallocSite, Size);
  assert(Minted == Id && "trace object ids diverged from the recorder's");
}

void TraceRecorder::onFree(uint64_t Addr) {
  if (Arena) {
    // The runtime notifies before the arena retires the object, so the id
    // still resolves here.
    ObjectId Id = Arena->idOf(Addr);
    assert(Id != ~0u && Arena->liveId(Id) && "freeing a dead object");
    if (!InRealloc)
      Trace.recordFree(Id);
    return;
  }
  const uint32_t *Id = ByBase.find(Addr);
  assert(Id && "freeing an address no live object starts at");
  ObjectId Freed = *Id;
  ByBase.erase(Addr);
  Pending.push_back(IntervalOp{Addr, ~0u});
  if (!InRealloc)
    Trace.recordFree(Freed);
}

/// Slow path: resolve an interior pointer (or report a non-heap address)
/// through the ordered interval map, synchronising it first.
ObjectId TraceRecorder::findInterior(uint64_t Addr) {
  for (const IntervalOp &Op : Pending) {
    if (Op.Id == ~0u)
      Intervals.erase(Op.Addr);
    else
      Intervals[Op.Addr] = Op.Id;
  }
  Pending.clear();
  auto It = Intervals.upper_bound(Addr);
  if (It == Intervals.begin())
    return ~0u;
  --It;
  const ObjectSpan &Span = Spans[It->second];
  return Addr < Span.Addr + Span.Size ? It->second : ~0u;
}

void TraceRecorder::handleAccess(uint64_t Addr, uint64_t Size, bool IsStore) {
  if (InRealloc)
    return; // The copy loop's length is allocator-dependent; replay
            // re-derives it from the composite Realloc record.
  if (Arena) {
    ObjectId Id = Arena->idOf(Addr);
    if (Id != ~0u && Arena->liveId(Id))
      Trace.recordAccess(Id, Addr & ((1ull << RecordingArena::IdShift) - 1),
                         Size, IsStore);
    else
      Trace.recordRawAccess(Addr, Size, IsStore);
    return;
  }
  if (const uint32_t *Id = ByBase.find(Addr)) {
    Trace.recordAccess(*Id, 0, Size, IsStore);
    return;
  }
  ObjectId Id = findInterior(Addr);
  if (Id != ~0u)
    Trace.recordAccess(Id, Addr - Spans[Id].Addr, Size, IsStore);
  else
    Trace.recordRawAccess(Addr, Size, IsStore);
}

void TraceRecorder::onAccess(uint64_t Addr, uint64_t Size, bool IsStore) {
  handleAccess(Addr, Size, IsStore);
}

void TraceRecorder::onAccessBatch(const MemAccess *Batch, size_t N) {
  for (size_t I = 0; I < N; ++I)
    handleAccess(Batch[I].Addr, Batch[I].Size, Batch[I].IsStore);
}

RuntimeObserver::AccessHookFn TraceRecorder::accessHook() {
  return [](RuntimeObserver &Self, uint64_t Addr, uint64_t Size,
            bool IsStore) {
    static_cast<TraceRecorder &>(Self).handleAccess(Addr, Size, IsStore);
  };
}

void TraceRecorder::onCompute(uint64_t Cycles) { Trace.recordCompute(Cycles); }

void TraceRecorder::onReallocBegin(uint64_t OldAddr, uint64_t NewSize,
                                   CallSiteId MallocSite) {
  assert(!InRealloc && "realloc cannot nest");
  ObjectId OldId;
  if (Arena) {
    OldId = Arena->idOf(OldAddr);
  } else {
    const uint32_t *Found = ByBase.find(OldAddr);
    OldId = Found ? *Found : ~0u;
  }
  assert(OldId != ~0u && "realloc of an address no live object starts at");
  Trace.recordRealloc(OldId, MallocSite, NewSize);
  InRealloc = true;
}

void TraceRecorder::onReallocEnd(uint64_t) { InRealloc = false; }

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {
/// "HTRC": the on-disk event-trace format.
constexpr uint32_t TraceMagic = 0x43525448;
constexpr uint32_t TraceFormatVersion = 1;
} // namespace

void EventTrace::save(BinaryWriter &W) const {
  W.u32(TraceMagic);
  W.u32(TraceFormatVersion);
  W.varint(Counts.Calls);
  W.varint(Counts.Returns);
  W.varint(Counts.Allocs);
  W.varint(Counts.Frees);
  W.varint(Counts.Loads);
  W.varint(Counts.Stores);
  W.varint(Counts.RawLoads);
  W.varint(Counts.RawStores);
  W.varint(Counts.Computes);
  W.varint(Counts.Reallocs);
  W.varint(Objects);
  W.varint(Buffer.size());
  W.bytes(Buffer.data(), Buffer.size());
}

EventTrace EventTrace::load(BinaryReader &R) {
  if (R.u32() != TraceMagic)
    throw SerializationError("event trace: bad magic");
  uint32_t Version = R.u32();
  if (Version != TraceFormatVersion)
    throw SerializationError("event trace: unknown format version " +
                             std::to_string(Version));
  EventTrace Trace;
  Trace.Counts.Calls = R.varint();
  Trace.Counts.Returns = R.varint();
  Trace.Counts.Allocs = R.varint();
  Trace.Counts.Frees = R.varint();
  Trace.Counts.Loads = R.varint();
  Trace.Counts.Stores = R.varint();
  Trace.Counts.RawLoads = R.varint();
  Trace.Counts.RawStores = R.varint();
  Trace.Counts.Computes = R.varint();
  Trace.Counts.Reallocs = R.varint();
  uint64_t Objects = R.varint();
  // Object ids are minted by Alloc/Realloc records; a count disagreeing
  // with the header means the entry is not a faithful recording.
  if (Objects != Trace.Counts.Allocs + Trace.Counts.Reallocs ||
      Objects > UINT32_MAX)
    throw SerializationError("event trace: object count mismatch");
  Trace.Objects = static_cast<ObjectId>(Objects);
  uint64_t Size = R.varint();
  Trace.Buffer.resize(static_cast<size_t>(Size));
  R.bytes(Trace.Buffer.data(), Trace.Buffer.size());
  return Trace;
}
