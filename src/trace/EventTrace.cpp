//===- trace/EventTrace.cpp - Record-once/replay-many event traces ----------===//

#include "trace/EventTrace.h"

#include "support/BinaryIO.h"
#include "support/Hash.h"
#include "support/Lz.h"
#include "trace/TraceFile.h"

#include <cassert>
#include <cstring>

using namespace halo;

size_t EventTrace::Cursor::fill(TraceEvent *Out, size_t MaxN) {
  size_t N = 0;
  while (N < MaxN && !R.atEnd()) {
    TraceEvent &E = Out[N++];
    E.Op = R.op();
    decodeTraceOperands(R, E.Op, E);
  }
  return N;
}

void TraceRecorder::onCall(CallSiteId Site) { Trace.recordCall(Site); }

void TraceRecorder::onReturn(CallSiteId) { Trace.recordReturn(); }

void TraceRecorder::onAlloc(uint64_t Addr, uint64_t Size,
                            CallSiteId MallocSite) {
  // Sequential id assignment and the trace's implicit minting advance in
  // lockstep: every allocation lands here, and every allocation is minted
  // either by recordAlloc below or by the enclosing composite's
  // recordRealloc.
  if (Arena) {
    assert(Arena->idOf(Addr) ==
               Trace.numObjects() - (InRealloc ? 1 : 0) &&
           "arena ids diverged from the trace's minting order");
    if (!InRealloc)
      Trace.recordAlloc(MallocSite, Size);
    return;
  }
  ObjectId Id = static_cast<ObjectId>(Spans.size());
  Spans.push_back(ObjectSpan{Addr, Size ? Size : 1});
  ByBase.insert(Addr, Id);
  Pending.push_back(IntervalOp{Addr, Id});
  if (InRealloc)
    return;
  [[maybe_unused]] ObjectId Minted = Trace.recordAlloc(MallocSite, Size);
  assert(Minted == Id && "trace object ids diverged from the recorder's");
}

void TraceRecorder::onFree(uint64_t Addr) {
  if (Arena) {
    // The runtime notifies before the arena retires the object, so the id
    // still resolves here.
    ObjectId Id = Arena->idOf(Addr);
    assert(Id != ~0u && Arena->liveId(Id) && "freeing a dead object");
    if (!InRealloc)
      Trace.recordFree(Id);
    return;
  }
  const uint32_t *Id = ByBase.find(Addr);
  assert(Id && "freeing an address no live object starts at");
  ObjectId Freed = *Id;
  ByBase.erase(Addr);
  Pending.push_back(IntervalOp{Addr, ~0u});
  if (!InRealloc)
    Trace.recordFree(Freed);
}

/// Slow path: resolve an interior pointer (or report a non-heap address)
/// through the ordered interval map, synchronising it first.
ObjectId TraceRecorder::findInterior(uint64_t Addr) {
  for (const IntervalOp &Op : Pending) {
    if (Op.Id == ~0u)
      Intervals.erase(Op.Addr);
    else
      Intervals[Op.Addr] = Op.Id;
  }
  Pending.clear();
  auto It = Intervals.upper_bound(Addr);
  if (It == Intervals.begin())
    return ~0u;
  --It;
  const ObjectSpan &Span = Spans[It->second];
  return Addr < Span.Addr + Span.Size ? It->second : ~0u;
}

void TraceRecorder::handleAccess(uint64_t Addr, uint64_t Size, bool IsStore) {
  if (InRealloc)
    return; // The copy loop's length is allocator-dependent; replay
            // re-derives it from the composite Realloc record.
  if (Arena) {
    ObjectId Id = Arena->idOf(Addr);
    if (Id != ~0u && Arena->liveId(Id))
      Trace.recordAccess(Id, Addr & ((1ull << RecordingArena::IdShift) - 1),
                         Size, IsStore);
    else
      Trace.recordRawAccess(Addr, Size, IsStore);
    return;
  }
  if (const uint32_t *Id = ByBase.find(Addr)) {
    Trace.recordAccess(*Id, 0, Size, IsStore);
    return;
  }
  ObjectId Id = findInterior(Addr);
  if (Id != ~0u)
    Trace.recordAccess(Id, Addr - Spans[Id].Addr, Size, IsStore);
  else
    Trace.recordRawAccess(Addr, Size, IsStore);
}

void TraceRecorder::onAccess(uint64_t Addr, uint64_t Size, bool IsStore) {
  handleAccess(Addr, Size, IsStore);
}

void TraceRecorder::onAccessBatch(const MemAccess *Batch, size_t N) {
  for (size_t I = 0; I < N; ++I)
    handleAccess(Batch[I].Addr, Batch[I].Size, Batch[I].IsStore);
}

RuntimeObserver::AccessHookFn TraceRecorder::accessHook() {
  return [](RuntimeObserver &Self, uint64_t Addr, uint64_t Size,
            bool IsStore) {
    static_cast<TraceRecorder &>(Self).handleAccess(Addr, Size, IsStore);
  };
}

void TraceRecorder::onCompute(uint64_t Cycles) { Trace.recordCompute(Cycles); }

void TraceRecorder::onReallocBegin(uint64_t OldAddr, uint64_t NewSize,
                                   CallSiteId MallocSite) {
  assert(!InRealloc && "realloc cannot nest");
  ObjectId OldId;
  if (Arena) {
    OldId = Arena->idOf(OldAddr);
  } else {
    const uint32_t *Found = ByBase.find(OldAddr);
    OldId = Found ? *Found : ~0u;
  }
  assert(OldId != ~0u && "realloc of an address no live object starts at");
  Trace.recordRealloc(OldId, MallocSite, NewSize);
  InRealloc = true;
}

void TraceRecorder::onReallocEnd(uint64_t) { InRealloc = false; }

//===----------------------------------------------------------------------===//
// Streaming recording
//===----------------------------------------------------------------------===//

void EventTrace::streamTo(TraceFileWriter &NewSink, uint64_t BlockBytes) {
  assert(Buffer.empty() && Counts.total() == 0 &&
         "streaming must start from an empty trace");
  Sink = &NewSink;
  SinkBlockBytes = BlockBytes ? BlockBytes : TraceBlockBytes;
}

void EventTrace::flushSinkBlock() {
  // record* methods count a record only after emit() returns, and the
  // flush runs before emit() appends, so the buffer here is exactly the
  // whole records the counters describe.
  Sink->addBlock(Buffer.data(), Buffer.size(), Counts.total(), Objects,
                 Counts.Reallocs);
  StreamedBytes += Buffer.size();
  Buffer.clear();
}

bool EventTrace::finishStream() {
  assert(Sink && "finishStream without streamTo");
  if (!Buffer.empty())
    flushSinkBlock();
  TraceFileWriter *S = Sink;
  Sink = nullptr;
  SinkBlockBytes = 0;
  return S->finish(Counts, Objects);
}

//===----------------------------------------------------------------------===//
// Serialization (the block format of trace/TraceFile.h)
//===----------------------------------------------------------------------===//

void EventTrace::save(BinaryWriter &W, uint64_t BlockBytes) const {
  assert(!Sink && "a streaming trace has already left RAM");
  if (BlockBytes == 0)
    BlockBytes = TraceBlockBytes;
  TraceFileWriter FW(W);
  // Cut the buffer into blocks of whole records by the same rule the
  // streaming flush applies -- the shortest record prefix of at least
  // BlockBytes -- so saving after the fact reproduces a streamed file
  // byte for byte. Skipping a record needs no operand decoding, just
  // the varint continuation bit.
  const uint8_t *P = Buffer.data(), *End = P + Buffer.size();
  const uint8_t *BlockStart = P;
  uint64_t Events = 0, Minted = 0, Reallocs = 0;
  while (P != End) {
    TraceOp Op = static_cast<TraceOp>(*P++);
    for (unsigned K = traceOperandCount(Op); K; --K) {
      while (*P & 0x80)
        ++P;
      ++P;
    }
    ++Events;
    Minted += Op == TraceOp::Alloc || Op == TraceOp::Realloc;
    Reallocs += Op == TraceOp::Realloc;
    if (static_cast<uint64_t>(P - BlockStart) >= BlockBytes) {
      FW.addBlock(BlockStart, static_cast<size_t>(P - BlockStart), Events,
                  Minted, Reallocs);
      BlockStart = P;
    }
  }
  if (P != BlockStart)
    FW.addBlock(BlockStart, static_cast<size_t>(P - BlockStart), Events,
                Minted, Reallocs);
  FW.finish(Counts, Objects);
}

EventTrace EventTrace::load(BinaryReader &R) {
  // The trace image spans the remainder of the buffer (store entries end
  // with the trace payload; getTrace's expectEnd holds the contract).
  const uint8_t *Image = R.cursor();
  size_t Size = R.remaining();
  TraceIndex Idx = parseTraceIndex(Image, Size);
  EventTrace Trace;
  Trace.Counts = Idx.Counts;
  Trace.Objects = static_cast<ObjectId>(Idx.Objects);
  Trace.Buffer.resize(static_cast<size_t>(Idx.TotalRawBytes));
  const uint8_t *Blocks = Image + TraceHeaderBytes;
  for (const TraceBlockInfo &B : Idx.Blocks) {
    const uint8_t *Payload = Blocks + B.FileOffset;
    if (fnv1a(Payload, static_cast<size_t>(B.CompBytes)) != B.Checksum)
      throw SerializationError("trace file: block checksum mismatch");
    uint8_t *Dst = Trace.Buffer.data() + B.RawOffset;
    if (B.Method == 0)
      std::memcpy(Dst, Payload, static_cast<size_t>(B.CompBytes));
    else
      lz::decompress(Payload, static_cast<size_t>(B.CompBytes), Dst,
                     static_cast<size_t>(B.RawBytes));
  }
  R.skip(Size);
  return Trace;
}
