//===- trace/TraceFile.h - Out-of-core block-compressed traces --*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk EventTrace format (version 2) and the layer that streams it
/// out during recording and mmaps it back for replay. The in-RAM trace is
/// capped by memory and forces a re-record for anything big; this format
/// removes the ceiling the way data-center profile pipelines do -- the
/// profile becomes an indexed on-disk artifact that is *streamed*, never
/// loaded whole.
///
/// Layout (all multi-byte integers little-endian, varints LEB128):
///
///   header   u32 magic "HTRC"           u32 format version (2)
///   blocks   compressed block payloads, back to back, no inline headers
///   footer   varint numBlocks
///            varint x10 per-kind record counts   varint object count
///            varint total raw (pre-compression) bytes
///            per block: u8 method (0 raw, 1 lz)
///                       varint compressed bytes   varint raw bytes
///                       varint events
///                       varint objects minted before the block
///                       varint realloc records before the block
///                       u64 fnv1a of the compressed bytes
///   trailer  u64 fnv1a of the footer    u64 footer byte count
///            u32 end magic "CRTH"
///
/// Each block is a whole number of records, compressed independently
/// (support/Lz.h, with a raw fallback when compression does not pay), so
/// any block decodes without touching its predecessors; the footer entry
/// carries everything a decoder must seed -- the block's first event
/// ordinal, first object id, and first realloc ordinal -- which is what
/// lets shardedReplay cut shards at block boundaries with no serial
/// prepass scan. The footer lives at the end (located through the
/// fixed-size trailer, zip-style) because the writer streams blocks out
/// before it can know their count. Checksums make corruption detection
/// block-granular: the artifact store treats any validation failure as
/// absence and re-records.
///
/// Blocks are cut by one deterministic rule -- the shortest record prefix
/// of at least TraceBlockBytes encoded bytes -- applied identically by the
/// streaming recorder (flush inside EventTrace::emit) and by
/// EventTrace::save's scan over an in-RAM buffer, so recording straight to
/// disk and saving a recorded trace produce byte-identical files.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_TRACE_TRACEFILE_H
#define HALO_TRACE_TRACEFILE_H

#include "support/BinaryIO.h"
#include "trace/EventTrace.h"

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

namespace halo {

/// "HTRC" / "CRTH": the on-disk trace format's framing magics.
constexpr uint32_t TraceMagic = 0x43525448;
constexpr uint32_t TraceEndMagic = 0x48545243;
/// Version 2: the block-compressed format this file defines (version 1
/// was the flat single-buffer encoding; old entries read as absence).
constexpr uint32_t TraceFormatVersion = 2;
/// Default block cut threshold. 1 MiB raw keeps at most a couple of MiB
/// of decoded trace resident during streamed replay while amortising
/// per-block costs over ~200k records.
constexpr uint64_t TraceBlockBytes = 1ull << 20;
/// Fixed framing sizes: header (magic, version) and trailer (footer
/// checksum, footer size, end magic). The block region is everything in
/// between, minus the footer.
constexpr size_t TraceHeaderBytes = 4 + 4;
constexpr size_t TraceTrailerBytes = 8 + 8 + 4;

/// One footer entry, plus the offsets derived while parsing (each block's
/// position is the running sum of its predecessors' sizes).
struct TraceBlockInfo {
  uint8_t Method = 0;        ///< 0 = raw bytes, 1 = lz-compressed.
  uint64_t CompBytes = 0;    ///< On-disk payload size.
  uint64_t RawBytes = 0;     ///< Decoded (pre-compression) size.
  uint64_t Events = 0;       ///< Records in the block.
  uint64_t FirstObject = 0;  ///< Objects minted before the block.
  uint64_t FirstRealloc = 0; ///< Realloc records before the block.
  uint64_t Checksum = 0;     ///< fnv1a of the compressed bytes.
  // Derived at parse time:
  uint64_t FileOffset = 0;   ///< Payload offset from the region start.
  uint64_t FirstEvent = 0;   ///< Records before the block.
  uint64_t RawOffset = 0;    ///< Raw bytes before the block.
};

/// The decoded footer: whole-trace totals plus the block table.
struct TraceIndex {
  TraceCounts Counts;
  uint64_t Objects = 0;
  uint64_t TotalRawBytes = 0;
  std::vector<TraceBlockInfo> Blocks;
};

/// Parses and structurally validates the index of the \p Size-byte trace
/// image at \p Data: header and trailer magics, format version, footer
/// checksum, block sizes summing to the block region, totals consistent
/// with the per-block entries, monotone first-object/first-realloc
/// ordinals. Throws SerializationError on any mismatch. Per-block payload
/// checksums are NOT verified here (that needs a pass over the payload
/// bytes; MappedTrace::open does it once, streaming).
TraceIndex parseTraceIndex(const uint8_t *Data, size_t Size);

/// Streams a trace out block by block: header up front, each addBlock()
/// compresses and appends one payload immediately (nothing buffered but
/// the footer table), finish() seals footer and trailer. One writer
/// serves both sinks -- a growing BinaryWriter (EventTrace::save, store
/// publication) and a FILE* (recording straight to disk) -- which is what
/// makes the two paths byte-identical.
class TraceFileWriter {
public:
  /// Buffer sink: output accumulates in \p W.
  explicit TraceFileWriter(BinaryWriter &W);
  /// Stream sink: output is fwritten to \p F (caller owns the handle).
  /// I/O errors latch into ok() instead of throwing mid-record.
  explicit TraceFileWriter(std::FILE *F);

  TraceFileWriter(const TraceFileWriter &) = delete;
  TraceFileWriter &operator=(const TraceFileWriter &) = delete;

  /// Appends one block of \p RawN encoded record bytes. The totals are
  /// the trace's running counters *after* the block's records (the
  /// recorder's natural state at flush time); the writer diffs them
  /// against the previous block's to derive the footer entry.
  void addBlock(const uint8_t *Raw, size_t RawN, uint64_t EventsAfter,
                uint64_t ObjectsAfter, uint64_t ReallocsAfter);

  /// Seals the file: footer (block table + the final whole-trace totals)
  /// and trailer. Returns ok(). Must be called exactly once, last.
  bool finish(const TraceCounts &Counts, uint64_t Objects);

  /// False once any FILE* write failed (buffer sinks cannot fail).
  bool ok() const { return Ok; }

  uint64_t blocks() const { return Table.size(); }
  uint64_t rawBytes() const { return RawTotal; }
  uint64_t compressedBytes() const { return CompTotal; }

private:
  void sink(const void *Data, size_t Size);

  BinaryWriter *BufOut = nullptr;
  std::FILE *FileOut = nullptr;
  std::vector<TraceBlockInfo> Table;
  uint64_t PrevEvents = 0;
  uint64_t PrevObjects = 0;
  uint64_t PrevReallocs = 0;
  uint64_t RawTotal = 0;
  uint64_t CompTotal = 0;
  bool Ok = true;
  bool Finished = false;
};

/// A read-only trace mapped from disk. open() validates the image
/// completely -- index structure plus every block checksum, one streaming
/// pass -- so a MappedTrace in hand is known-good and the decode paths
/// can skip re-verification. Replay consumers decode one block at a time
/// into a reused scratch buffer and release the consumed file pages
/// (releaseBlock), keeping resident memory bounded by a couple of blocks
/// regardless of trace size.
class MappedTrace {
public:
  MappedTrace() = default;
  MappedTrace(MappedTrace &&Other) noexcept { *this = std::move(Other); }
  MappedTrace &operator=(MappedTrace &&Other) noexcept;
  MappedTrace(const MappedTrace &) = delete;
  MappedTrace &operator=(const MappedTrace &) = delete;
  ~MappedTrace();

  /// Maps and validates the whole file at \p Path as a trace image.
  /// Throws SerializationError on any validation failure and
  /// std::runtime_error when the file cannot be opened or mapped.
  static MappedTrace open(const std::string &Path);

  /// Maps the \p Length-byte trace image starting \p Offset bytes into
  /// \p Path -- the store-entry form, where the trace is an entry's
  /// payload and the entry header precedes it in the same file.
  static MappedTrace open(const std::string &Path, uint64_t Offset,
                          uint64_t Length);

  const TraceIndex &index() const { return Idx; }
  const TraceCounts &counts() const { return Idx.Counts; }
  uint64_t numEvents() const { return Idx.Counts.total(); }
  uint32_t numObjects() const { return static_cast<uint32_t>(Idx.Objects); }
  /// Total decoded (raw varint-record) bytes across all blocks.
  uint64_t rawBytes() const { return Idx.TotalRawBytes; }
  size_t numBlocks() const { return Idx.Blocks.size(); }
  bool empty() const { return Idx.Counts.total() == 0; }
  const TraceBlockInfo &block(size_t B) const { return Idx.Blocks[B]; }
  /// The mapped image size (header + blocks + footer + trailer).
  uint64_t fileBytes() const { return Size; }

  /// Decodes block \p B into \p Scratch (resized to the block's raw
  /// byte count). Blocks are independent: any block, any order, any
  /// thread (Scratch is the caller's).
  void decodeBlock(size_t B, std::vector<uint8_t> &Scratch) const;

  /// Tells the kernel block \p B's file pages are dead to this reader
  /// (sequential replay calls it as it leaves each block behind).
  void releaseBlock(size_t B) const;

  /// Block-streaming batch decoder, the MappedTrace counterpart of
  /// EventTrace::Cursor: fill() decodes records into a flat TraceEvent
  /// buffer, pulling blocks through one internal scratch as needed.
  class Cursor {
  public:
    explicit Cursor(const MappedTrace &Trace) : T(&Trace) {}

    bool atEnd() const { return R.atEnd() && NextBlock == T->numBlocks(); }

    /// Decodes up to \p MaxN records into \p Out; returns how many were
    /// decoded (0 only at the end of the trace).
    size_t fill(TraceEvent *Out, size_t MaxN);

  private:
    const MappedTrace *T;
    size_t NextBlock = 0;
    std::vector<uint8_t> Scratch;
    EventTrace::Reader R{nullptr, nullptr};
  };

  Cursor cursor() const { return Cursor(*this); }

private:
  void *Map = nullptr;        ///< mmap base (page aligned).
  size_t MapLen = 0;
  const uint8_t *Data = nullptr; ///< Trace image start within the map.
  size_t Size = 0;
  const uint8_t *Blocks = nullptr; ///< Block region start (Data + 8).
  TraceIndex Idx;
};

/// How measurement drivers hold traces. The in-memory path is the oracle
/// every other path is tested against ("mapped = in-RAM").
enum class TraceMode {
  Auto,   ///< Memory for cold recordings; large stored traces open mapped.
  Memory, ///< Everything in RAM (the historical behaviour).
  Mapped, ///< Record streaming to disk, replay mmap'd, block by block.
};

/// The stable spelling of \p M used in JSON output and CLI flags.
const char *traceModeName(TraceMode M);

/// Parses a traceModeName() spelling; std::nullopt for unknown names.
std::optional<TraceMode> parseTraceMode(const std::string &Name);

} // namespace halo

#endif // HALO_TRACE_TRACEFILE_H
