//===- trace/TraceFile.cpp - Out-of-core block-compressed traces ----------===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceFile.h"

#include "support/Hash.h"
#include "support/Lz.h"

#include <cassert>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace halo;

//===----------------------------------------------------------------------===//
// TraceFileWriter
//===----------------------------------------------------------------------===//

TraceFileWriter::TraceFileWriter(BinaryWriter &W) : BufOut(&W) {
  BinaryWriter H;
  H.u32(TraceMagic);
  H.u32(TraceFormatVersion);
  sink(H.buffer().data(), H.size());
}

TraceFileWriter::TraceFileWriter(std::FILE *F) : FileOut(F) {
  BinaryWriter H;
  H.u32(TraceMagic);
  H.u32(TraceFormatVersion);
  sink(H.buffer().data(), H.size());
}

void TraceFileWriter::sink(const void *Data, size_t Size) {
  if (BufOut) {
    BufOut->bytes(Data, Size);
    return;
  }
  if (Ok && std::fwrite(Data, 1, Size, FileOut) != Size)
    Ok = false;
}

void TraceFileWriter::addBlock(const uint8_t *Raw, size_t RawN,
                               uint64_t EventsAfter, uint64_t ObjectsAfter,
                               uint64_t ReallocsAfter) {
  assert(!Finished && "block after finish()");
  assert(RawN > 0 && "empty block");
  std::vector<uint8_t> Comp = lz::compress(Raw, RawN);
  const uint8_t *Payload = Comp.data();
  size_t PayloadN = Comp.size();
  TraceBlockInfo Info;
  Info.Method = 1;
  if (PayloadN >= RawN) { // Compression did not pay: store raw.
    Payload = Raw;
    PayloadN = RawN;
    Info.Method = 0;
  }
  Info.CompBytes = PayloadN;
  Info.RawBytes = RawN;
  Info.Events = EventsAfter - PrevEvents;
  Info.FirstObject = PrevObjects;
  Info.FirstRealloc = PrevReallocs;
  Info.Checksum = fnv1a(Payload, PayloadN);
  sink(Payload, PayloadN);
  Table.push_back(Info);
  PrevEvents = EventsAfter;
  PrevObjects = ObjectsAfter;
  PrevReallocs = ReallocsAfter;
  RawTotal += RawN;
  CompTotal += PayloadN;
}

bool TraceFileWriter::finish(const TraceCounts &Counts, uint64_t Objects) {
  assert(!Finished && "finish() twice");
  assert(Counts.total() == PrevEvents &&
         "unflushed records at finish (counts disagree with the blocks)");
  assert(Objects == PrevObjects && Counts.Reallocs == PrevReallocs &&
         "unflushed records at finish (counts disagree with the blocks)");
  Finished = true;
  BinaryWriter FW;
  FW.varint(Table.size());
  FW.varint(Counts.Calls);
  FW.varint(Counts.Returns);
  FW.varint(Counts.Allocs);
  FW.varint(Counts.Frees);
  FW.varint(Counts.Loads);
  FW.varint(Counts.Stores);
  FW.varint(Counts.RawLoads);
  FW.varint(Counts.RawStores);
  FW.varint(Counts.Computes);
  FW.varint(Counts.Reallocs);
  FW.varint(Objects);
  FW.varint(RawTotal);
  for (const TraceBlockInfo &B : Table) {
    FW.u8(B.Method);
    FW.varint(B.CompBytes);
    FW.varint(B.RawBytes);
    FW.varint(B.Events);
    FW.varint(B.FirstObject);
    FW.varint(B.FirstRealloc);
    FW.u64(B.Checksum);
  }
  sink(FW.buffer().data(), FW.size());
  BinaryWriter TW;
  TW.u64(fnv1a(FW.buffer().data(), FW.size()));
  TW.u64(FW.size());
  TW.u32(TraceEndMagic);
  sink(TW.buffer().data(), TW.size());
  return Ok;
}

//===----------------------------------------------------------------------===//
// Index parsing
//===----------------------------------------------------------------------===//

namespace {
[[noreturn]] void badTrace(const std::string &What) {
  throw SerializationError("trace file: " + What);
}
} // namespace

TraceIndex halo::parseTraceIndex(const uint8_t *Data, size_t Size) {
  if (Size < TraceHeaderBytes + TraceTrailerBytes)
    badTrace("image smaller than header + trailer");
  BinaryReader HR(Data, TraceHeaderBytes);
  if (HR.u32() != TraceMagic)
    badTrace("bad magic");
  uint32_t Version = HR.u32();
  if (Version != TraceFormatVersion)
    badTrace("unknown format version " + std::to_string(Version));

  BinaryReader TR(Data + Size - TraceTrailerBytes, TraceTrailerBytes);
  uint64_t FooterChecksum = TR.u64();
  uint64_t FooterBytes = TR.u64();
  if (TR.u32() != TraceEndMagic)
    badTrace("bad end magic (truncated?)");
  if (FooterBytes > Size - TraceHeaderBytes - TraceTrailerBytes)
    badTrace("footer larger than the image");
  const uint8_t *Footer = Data + Size - TraceTrailerBytes - FooterBytes;
  if (fnv1a(Footer, FooterBytes) != FooterChecksum)
    badTrace("footer checksum mismatch");

  BinaryReader FR(Footer, static_cast<size_t>(FooterBytes));
  TraceIndex Idx;
  uint64_t NumBlocks = FR.varint();
  Idx.Counts.Calls = FR.varint();
  Idx.Counts.Returns = FR.varint();
  Idx.Counts.Allocs = FR.varint();
  Idx.Counts.Frees = FR.varint();
  Idx.Counts.Loads = FR.varint();
  Idx.Counts.Stores = FR.varint();
  Idx.Counts.RawLoads = FR.varint();
  Idx.Counts.RawStores = FR.varint();
  Idx.Counts.Computes = FR.varint();
  Idx.Counts.Reallocs = FR.varint();
  Idx.Objects = FR.varint();
  Idx.TotalRawBytes = FR.varint();
  // Object ids are minted by Alloc/Realloc records; disagreement means
  // the footer is not a faithful index.
  if (Idx.Objects != Idx.Counts.Allocs + Idx.Counts.Reallocs ||
      Idx.Objects > UINT32_MAX)
    badTrace("object count mismatch");
  uint64_t BlockRegion = Size - TraceHeaderBytes - TraceTrailerBytes -
                         FooterBytes;
  if (NumBlocks > BlockRegion) // Every block holds at least one byte.
    badTrace("block count larger than the block region");
  Idx.Blocks.reserve(static_cast<size_t>(NumBlocks));
  uint64_t Offset = 0, Events = 0, RawOffset = 0;
  for (uint64_t I = 0; I < NumBlocks; ++I) {
    TraceBlockInfo B;
    B.Method = FR.u8();
    B.CompBytes = FR.varint();
    B.RawBytes = FR.varint();
    B.Events = FR.varint();
    B.FirstObject = FR.varint();
    B.FirstRealloc = FR.varint();
    B.Checksum = FR.u64();
    if (B.Method > 1)
      badTrace("unknown block compression method");
    if (B.CompBytes == 0 || B.RawBytes == 0 || B.Events == 0)
      badTrace("empty block entry");
    if (B.Method == 0 && B.CompBytes != B.RawBytes)
      badTrace("raw block sizes disagree");
    if (B.CompBytes > BlockRegion - Offset)
      badTrace("block overruns the block region");
    if (!Idx.Blocks.empty() &&
        (B.FirstObject < Idx.Blocks.back().FirstObject ||
         B.FirstRealloc < Idx.Blocks.back().FirstRealloc))
      badTrace("non-monotone block index");
    if (B.FirstObject > Idx.Objects || B.FirstRealloc > Idx.Counts.Reallocs)
      badTrace("block index exceeds the trace totals");
    B.FileOffset = Offset;
    B.FirstEvent = Events;
    B.RawOffset = RawOffset;
    Offset += B.CompBytes;
    Events += B.Events;
    RawOffset += B.RawBytes;
    Idx.Blocks.push_back(B);
  }
  FR.expectEnd("trace footer");
  if (Offset != BlockRegion)
    badTrace("block sizes do not cover the block region");
  if (Events != Idx.Counts.total())
    badTrace("block event counts disagree with the totals");
  if (RawOffset != Idx.TotalRawBytes)
    badTrace("block raw sizes disagree with the totals");
  if (!Idx.Blocks.empty() && (Idx.Blocks.front().FirstObject != 0 ||
                              Idx.Blocks.front().FirstRealloc != 0))
    badTrace("first block does not start at the trace origin");
  return Idx;
}

//===----------------------------------------------------------------------===//
// MappedTrace
//===----------------------------------------------------------------------===//

MappedTrace &MappedTrace::operator=(MappedTrace &&Other) noexcept {
  if (this != &Other) {
    if (Map)
      ::munmap(Map, MapLen);
    Map = Other.Map;
    MapLen = Other.MapLen;
    Data = Other.Data;
    Size = Other.Size;
    Blocks = Other.Blocks;
    Idx = std::move(Other.Idx);
    Other.Map = nullptr;
    Other.MapLen = 0;
    Other.Data = nullptr;
    Other.Size = 0;
    Other.Blocks = nullptr;
  }
  return *this;
}

MappedTrace::~MappedTrace() {
  if (Map)
    ::munmap(Map, MapLen);
}

MappedTrace MappedTrace::open(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
    throw std::runtime_error("trace file: cannot stat " + Path);
  return open(Path, 0, static_cast<uint64_t>(St.st_size));
}

MappedTrace MappedTrace::open(const std::string &Path, uint64_t Offset,
                              uint64_t Length) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    throw std::runtime_error("trace file: cannot open " + Path);
  // mmap offsets must be page-aligned; round down and keep the delta.
  uint64_t Page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  uint64_t MapOff = Offset & ~(Page - 1);
  uint64_t Delta = Offset - MapOff;
  size_t Len = static_cast<size_t>(Length + Delta);
  if (Len == 0) {
    ::close(Fd);
    throw SerializationError("trace file: empty image");
  }
  void *Base = ::mmap(nullptr, Len, PROT_READ, MAP_PRIVATE, Fd,
                      static_cast<off_t>(MapOff));
  ::close(Fd);
  if (Base == MAP_FAILED)
    throw std::runtime_error("trace file: mmap failed for " + Path + ": " +
                             std::strerror(errno));
  MappedTrace T;
  T.Map = Base;
  T.MapLen = Len;
  T.Data = static_cast<const uint8_t *>(Base) + Delta;
  T.Size = static_cast<size_t>(Length);
  ::madvise(Base, Len, MADV_SEQUENTIAL);
  // The destructor unmaps on any validation throw below.
  T.Idx = parseTraceIndex(T.Data, T.Size);
  T.Blocks = T.Data + TraceHeaderBytes;
  // One streaming pass verifies every payload byte against its block
  // checksum, so later decodes need no re-verification. Consumed pages
  // are dropped as the pass advances past each block (they re-fault from
  // the page cache if replay follows), keeping the pass itself bounded.
  for (const TraceBlockInfo &B : T.Idx.Blocks) {
    if (fnv1a(T.Blocks + B.FileOffset, static_cast<size_t>(B.CompBytes)) !=
        B.Checksum)
      badTrace("block checksum mismatch");
    if (T.Size >= (64u << 20))
      T.releaseBlock(static_cast<size_t>(&B - T.Idx.Blocks.data()));
  }
  return T;
}

void MappedTrace::decodeBlock(size_t B, std::vector<uint8_t> &Scratch) const {
  const TraceBlockInfo &Info = Idx.Blocks[B];
  Scratch.resize(static_cast<size_t>(Info.RawBytes));
  const uint8_t *Payload = Blocks + Info.FileOffset;
  if (Info.Method == 0)
    std::memcpy(Scratch.data(), Payload, static_cast<size_t>(Info.CompBytes));
  else
    lz::decompress(Payload, static_cast<size_t>(Info.CompBytes),
                   Scratch.data(), Scratch.size());
}

void MappedTrace::releaseBlock(size_t B) const {
  const TraceBlockInfo &Info = Idx.Blocks[B];
  uint64_t Page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  uintptr_t Begin = reinterpret_cast<uintptr_t>(Blocks + Info.FileOffset);
  uintptr_t End = Begin + static_cast<uintptr_t>(Info.CompBytes);
  // Only drop wholly-contained pages: the edges are shared with the
  // neighbouring blocks (or the header/footer).
  Begin = (Begin + Page - 1) & ~(Page - 1);
  End &= ~(Page - 1);
  if (Begin < End)
    ::madvise(reinterpret_cast<void *>(Begin), End - Begin, MADV_DONTNEED);
}

size_t MappedTrace::Cursor::fill(TraceEvent *Out, size_t MaxN) {
  size_t N = 0;
  while (N < MaxN) {
    if (R.atEnd()) {
      if (NextBlock > 0)
        T->releaseBlock(NextBlock - 1);
      if (NextBlock == T->numBlocks())
        break;
      T->decodeBlock(NextBlock++, Scratch);
      R = EventTrace::Reader(Scratch.data(), Scratch.data() + Scratch.size());
    }
    TraceEvent &E = Out[N++];
    E.Op = R.op();
    decodeTraceOperands(R, E.Op, E);
  }
  return N;
}

//===----------------------------------------------------------------------===//
// TraceMode
//===----------------------------------------------------------------------===//

const char *halo::traceModeName(TraceMode M) {
  switch (M) {
  case TraceMode::Auto:
    return "auto";
  case TraceMode::Memory:
    return "memory";
  case TraceMode::Mapped:
    return "mapped";
  }
  return "?";
}

std::optional<TraceMode> halo::parseTraceMode(const std::string &Name) {
  if (Name == "auto")
    return TraceMode::Auto;
  if (Name == "memory")
    return TraceMode::Memory;
  if (Name == "mapped")
    return TraceMode::Mapped;
  return std::nullopt;
}
