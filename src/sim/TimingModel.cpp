//===- sim/TimingModel.cpp - Execution time accounting ---------------------===//

#include "sim/TimingModel.h"

// TimingModel is header-only today; this file anchors the library.
