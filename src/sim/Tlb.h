//===- sim/Tlb.h - Data TLB model ------------------------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small set-associative data TLB. Size-segregated allocators can scatter
/// related objects across pages, generating TLB misses (Section 2.1 [35]);
/// HALO's grouped layout also condenses the page working set.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SIM_TLB_H
#define HALO_SIM_TLB_H

#include "sim/Cache.h"

namespace halo {

/// Data TLB modelled as a set-associative cache of page translations.
class Tlb {
public:
  /// Default geometry: 64 entries, 4-way, 4 KiB pages.
  explicit Tlb(uint32_t Entries = 64, uint32_t Ways = 4,
               uint32_t PageSize = 4096);

  /// Translates the page containing \p Addr; returns true on TLB hit.
  bool access(uint64_t Addr) { return Entries.access(Addr); }

  /// Most-recently-used-entry probe for the fused TLB+L1 fast path: commits
  /// the translation on hit, touches nothing on miss (finish with
  /// accessSlow()).
  bool mruHit(uint64_t Addr) { return Entries.mruHit(Addr); }

  /// Completes a translation whose mruHit() probe missed.
  bool accessSlow(uint64_t Addr) { return Entries.accessSlow(Addr); }

  uint64_t hits() const { return Entries.hits(); }
  uint64_t misses() const { return Entries.misses(); }
  void reset() { Entries.reset(); }

  /// Folds externally simulated translation outcomes into the counters
  /// without touching TLB content (see Cache::credit).
  void credit(uint64_t ExtraHits, uint64_t ExtraMisses) {
    Entries.credit(ExtraHits, ExtraMisses);
  }

  /// Geometry of the underlying translation cache (LineSize is the page
  /// size). Sharded replay mirrors this in its private per-shard TLB
  /// simulation so its translation decisions match this model's bit for
  /// bit.
  const CacheConfig &config() const { return Entries.config(); }
  uint32_t numSets() const { return Entries.numSets(); }

private:
  Cache Entries;
};

} // namespace halo

#endif // HALO_SIM_TLB_H
