//===- sim/MemoryHierarchy.cpp - L1D/L2/L3 + TLB stack ---------------------===//

#include "sim/MemoryHierarchy.h"

using namespace halo;

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &Config)
    : Config(Config), LineMask(uint64_t(Config.L1.LineSize) - 1),
      L1(Config.L1), L2(Config.L2), L3(Config.L3),
      Dtlb(Config.TlbEntries, Config.TlbWays) {}

uint64_t MemoryHierarchy::access(uint64_t Addr, uint64_t Size) {
  uint64_t First = Addr & ~LineMask;
  uint64_t Last = (Addr + (Size ? Size : 1) - 1) & ~LineMask;
  if (First == Last) // Overwhelmingly common: the access fits one line.
    return accessLine(First);
  return accessSpan(First, Last);
}

uint64_t MemoryHierarchy::accessLine(uint64_t LineAddr) {
  bool TlbHit = Dtlb.mruHit(LineAddr);
  if (TlbHit && L1.mruHit(LineAddr)) {
    Stalls += Config.Latency.L1Hit;
    return Config.Latency.L1Hit;
  }
  return accessLineSlow(LineAddr, TlbHit);
}

uint64_t MemoryHierarchy::accessBatch(const MemAccess *Batch, size_t N) {
  // The lookahead is what the batch form enables: the simulator's own
  // stalls come from its set metadata (megabytes of slot array for the
  // L3) missing the *host* caches, so each iteration prefetches the L3
  // set a few accesses ahead and the walks overlap. The smaller levels
  // stay host-resident on their own and a hint for them costs more than
  // it hides. Prefetching changes no simulated state: counters remain
  // bit-identical to per-access calls.
  constexpr size_t Lookahead = 8;
  uint64_t Cycles = 0;
  for (size_t I = 0; I < N; ++I) {
    if (I + Lookahead < N)
      L3.prefetchSet(Batch[I + Lookahead].Addr);
    // access() is defined above in this TU and inlines here: the batch
    // loop and the per-call path share one definition of an access.
    Cycles += access(Batch[I].Addr, Batch[I].Size);
  }
  return Cycles;
}

uint64_t MemoryHierarchy::accessSpan(uint64_t First, uint64_t Last) {
  uint64_t Line = Config.L1.LineSize;
  uint64_t Cycles = 0;
  for (uint64_t LineAddr = First;; LineAddr += Line) {
    Cycles += accessLine(LineAddr);
    if (LineAddr == Last)
      break;
  }
  return Cycles;
}

uint64_t MemoryHierarchy::accessLineSlow(uint64_t LineAddr, bool TlbDone) {
  const LatencyModel &Lat = Config.Latency;
  uint64_t Cycles = 0;
  bool L1Hit;
  if (TlbDone) {
    // The fused fast path already committed the TLB hit and found the L1
    // MRU way cold; finish the L1 access with the scan alone.
    L1Hit = L1.accessSlow(LineAddr);
  } else {
    if (!Dtlb.accessSlow(LineAddr))
      Cycles += Lat.TlbMiss;
    L1Hit = L1.access(LineAddr);
  }
  if (L1Hit)
    Cycles += Lat.L1Hit;
  else if (L2.access(LineAddr))
    Cycles += Lat.L2Hit;
  else if (L3.access(LineAddr))
    Cycles += Lat.L3Hit;
  else
    Cycles += Lat.Memory;
  Stalls += Cycles;
  return Cycles;
}

uint64_t MemoryHierarchy::accessBeyondL1(uint64_t LineAddr) {
  const LatencyModel &Lat = Config.Latency;
  if (L2.access(LineAddr))
    return Lat.L2Hit;
  if (L3.access(LineAddr))
    return Lat.L3Hit;
  return Lat.Memory;
}

MemoryCounters MemoryHierarchy::counters() const {
  MemoryCounters C;
  C.Accesses = L1.accesses();
  C.L1Misses = L1.misses();
  C.L2Misses = L2.misses();
  C.L3Misses = L3.misses();
  C.TlbMisses = Dtlb.misses();
  C.StallCycles = Stalls;
  return C;
}

void MemoryHierarchy::reset() {
  L1.reset();
  L2.reset();
  L3.reset();
  Dtlb.reset();
  Stalls = 0;
}
