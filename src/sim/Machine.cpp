//===- sim/Machine.cpp - First-class machine models -------------------------===//

#include "sim/Machine.h"

#include "support/Bits.h"

#include <cassert>
#include <cstdio>

using namespace halo;

namespace {

/// Validates one cache level against everything Cache's constructor and hot
/// path assume.
std::string checkLevel(const char *Level, const CacheConfig &C) {
  std::string Where(Level);
  if (C.LineSize == 0 || !isPowerOfTwo(C.LineSize))
    return Where + ": line size must be a non-zero power of two";
  if (C.Ways == 0)
    return Where + ": needs at least one way";
  if (C.Ways > 256)
    return Where + ": way count exceeds the 8-bit MRU hint";
  if (C.SizeBytes == 0 ||
      C.SizeBytes % (uint64_t(C.Ways) * C.LineSize) != 0)
    return Where + ": size must be a non-zero multiple of ways * line size";
  return "";
}

/// "32KiB", "1.25MiB" — presets use exact binary sizes, so %g is clean.
std::string fmtSize(uint64_t Bytes) {
  char Buf[32];
  if (Bytes >= 1024 * 1024)
    std::snprintf(Buf, sizeof(Buf), "%gMiB",
                  static_cast<double>(Bytes) / (1024.0 * 1024.0));
  else
    std::snprintf(Buf, sizeof(Buf), "%gKiB",
                  static_cast<double>(Bytes) / 1024.0);
  return Buf;
}

} // namespace

std::string MachineConfig::validate() const {
  if (Name.empty())
    return "machine needs a name";
  if (std::string Err = checkLevel("L1D", Hierarchy.L1); !Err.empty())
    return Err;
  if (std::string Err = checkLevel("L2", Hierarchy.L2); !Err.empty())
    return Err;
  if (std::string Err = checkLevel("L3", Hierarchy.L3); !Err.empty())
    return Err;
  // The hierarchy splits accesses at L1-line granularity and feeds the
  // resulting line addresses to every level; mixed line sizes would silently
  // alias lines in the outer levels.
  if (Hierarchy.L2.LineSize != Hierarchy.L1.LineSize ||
      Hierarchy.L3.LineSize != Hierarchy.L1.LineSize)
    return "all cache levels must share the L1 line size";
  if (Hierarchy.TlbWays == 0 || Hierarchy.TlbWays > 256)
    return "dTLB way count must be in [1, 256]";
  if (Hierarchy.TlbEntries == 0 ||
      Hierarchy.TlbEntries % Hierarchy.TlbWays != 0)
    return "dTLB entries must be a non-zero multiple of its ways";
  const LatencyModel &Lat = Hierarchy.Latency;
  if (Lat.L1Hit == 0 || Lat.L2Hit == 0 || Lat.L3Hit == 0 ||
      Lat.Memory == 0 || Lat.TlbMiss == 0)
    return "per-level latencies must be positive";
  if (!(Lat.L1Hit <= Lat.L2Hit && Lat.L2Hit <= Lat.L3Hit &&
        Lat.L3Hit <= Lat.Memory))
    return "latencies must not shrink outward (L1 <= L2 <= L3 <= memory)";
  if (Costs.CyclesPerSecond <= 0.0)
    return "clock frequency must be positive";
  return "";
}

std::string MachineConfig::summary() const {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "L1D %s/%uw, L2 %s/%uw, L3 %s/%uw, dTLB %ue/%uw, %gGHz",
                fmtSize(Hierarchy.L1.SizeBytes).c_str(), Hierarchy.L1.Ways,
                fmtSize(Hierarchy.L2.SizeBytes).c_str(), Hierarchy.L2.Ways,
                fmtSize(Hierarchy.L3.SizeBytes).c_str(), Hierarchy.L3.Ways,
                Hierarchy.TlbEntries, Hierarchy.TlbWays,
                Costs.CyclesPerSecond / 1e9);
  return Buf;
}

const std::vector<MachineConfig> &halo::machinePresets() {
  static const std::vector<MachineConfig> Presets = [] {
    std::vector<MachineConfig> M;

    {
      // The paper's Section 5 evaluation machine. Hierarchy and Costs stay
      // the struct defaults on purpose: this preset IS the default machine,
      // and code that never names a machine must keep producing bit-
      // identical results.
      MachineConfig C;
      C.Name = "xeon-w2195";
      C.Description = "Intel Xeon W-2195 (Skylake-SP workstation, the "
                      "paper's evaluation machine)";
      M.push_back(std::move(C));
    }

    {
      // Client Skylake: same L1, a quarter of the per-core L2, a shared
      // 8 MiB L3 that is both smaller and faster than the W-2195's mesh
      // L3, and a higher clock.
      MachineConfig C;
      C.Name = "skylake-desktop";
      C.Description = "Skylake desktop (i7-6700K class)";
      C.Hierarchy.L2 = CacheConfig{256 * 1024, 4, 64};
      C.Hierarchy.L3 = CacheConfig{8 * 1024 * 1024, 16, 64};
      C.Hierarchy.Latency = LatencyModel{4, 12, 42, 190, 22};
      C.Costs.CyclesPerSecond = 4.0e9;
      M.push_back(std::move(C));
    }

    {
      // Low-power mobile class: halved L1 associativity, 2 MiB last-level
      // cache, a 32-entry dTLB, short absolute latencies but a 2 GHz
      // clock. The small TLB is what punishes page-scattered layouts here.
      MachineConfig C;
      C.Name = "mobile";
      C.Description = "Low-power mobile SoC class";
      C.Hierarchy.L1 = CacheConfig{32 * 1024, 4, 64};
      C.Hierarchy.L2 = CacheConfig{512 * 1024, 8, 64};
      C.Hierarchy.L3 = CacheConfig{2 * 1024 * 1024, 8, 64};
      C.Hierarchy.TlbEntries = 32;
      C.Hierarchy.Latency = LatencyModel{3, 10, 28, 150, 20};
      C.Costs = CostModel{22, 1, 2.0e9};
      M.push_back(std::move(C));
    }

    {
      // Big-core server class (Ice-Lake-SP like): 48 KiB 12-way L1D,
      // 1.25 MiB L2, a 36 MiB L3 whose 49152 sets are not a power of two
      // (exercising the modulo set-index path, like the W-2195's L3), a
      // 128-entry dTLB, and slower far memory.
      MachineConfig C;
      C.Name = "server";
      C.Description = "Big-core server class (Ice-Lake-SP like)";
      C.Hierarchy.L1 = CacheConfig{48 * 1024, 12, 64};
      C.Hierarchy.L2 = CacheConfig{1280 * 1024, 20, 64};
      C.Hierarchy.L3 = CacheConfig{36 * 1024 * 1024, 12, 64};
      C.Hierarchy.TlbEntries = 128;
      C.Hierarchy.TlbWays = 8;
      C.Hierarchy.Latency = LatencyModel{5, 16, 80, 260, 30};
      C.Costs = CostModel{18, 1, 2.6e9};
      M.push_back(std::move(C));
    }

    for (const MachineConfig &C : M) {
      std::string Err = C.validate();
      (void)Err;
      assert(Err.empty() && "broken built-in machine preset");
    }
    return M;
  }();
  return Presets;
}

const std::vector<std::string> &halo::machineNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> N;
    for (const MachineConfig &C : machinePresets())
      N.push_back(C.Name);
    return N;
  }();
  return Names;
}

const MachineConfig *halo::findMachine(const std::string &Name) {
  for (const MachineConfig &C : machinePresets())
    if (C.Name == Name)
      return &C;
  return nullptr;
}

const MachineConfig &halo::defaultMachine() { return machinePresets().front(); }
