//===- sim/Cache.cpp - Set-associative cache model -------------------------===//

#include "sim/Cache.h"

#include "support/Bits.h"

#include <cassert>

using namespace halo;

Cache::Cache(const CacheConfig &Config) : Config(Config) {
  assert(isPowerOfTwo(Config.LineSize) && "line size must be a power of two");
  assert(Config.Ways > 0 && "cache needs at least one way");
  assert(Config.Ways <= 256 && "way index must fit the uint8_t MRU hint");
  assert(Config.SizeBytes % (uint64_t(Config.Ways) * Config.LineSize) == 0 &&
         "size must be divisible by way span");
  Sets = static_cast<uint32_t>(Config.SizeBytes /
                               (uint64_t(Config.Ways) * Config.LineSize));
  assert(Sets > 0 && "cache has no sets");
  while ((1u << LineShift) < Config.LineSize)
    ++LineShift;
  if (isPowerOfTwo(Sets)) {
    SetShift = 0;
    while ((1u << SetShift) < Sets)
      ++SetShift;
  } else {
    while (((Sets >> SetP2Shift) & 1) == 0)
      ++SetP2Shift;
    // Dividends are line numbers with the set count's power-of-two factor
    // already shifted out, so the reciprocal's exactness bound only has to
    // cover that reduced range.
    OddDiv = MagicDivider(Sets >> SetP2Shift,
                          (~0ull >> LineShift) >> SetP2Shift);
  }
  Slots.assign(uint64_t(Sets) * Config.Ways, Slot{InvalidTag, 0});
  initEmptyClocks();
  Mru.assign(Sets, 0);
  MruTag.assign(Sets, InvalidTag);
  Mru2.assign(Sets, 0);
  MruTag2.assign(Sets, InvalidTag);
}

void Cache::initEmptyClocks() {
  // Unique empty-slot clocks: way I of every set starts at use clock I and
  // the global clock starts at Ways, so every live clock exceeds every
  // empty one and the victim scan's strict < picks the same slot the old
  // all-zeros, first-wins scheme did (empties fill in index order).
  for (uint64_t I = 0; I < Slots.size(); ++I)
    Slots[I].Use = I % Config.Ways;
  Clock = Config.Ways;
}

bool Cache::contains(uint64_t Addr) const {
  auto [Set, Tag] = locate(Addr);
  const Slot *Begin = &Slots[uint64_t(Set) * Config.Ways];
  for (const Slot *S = Begin; S != Begin + Config.Ways; ++S)
    if (S->Tag == Tag)
      return true;
  return false;
}

void Cache::reset() {
  Slots.assign(Slots.size(), Slot{InvalidTag, 0});
  initEmptyClocks();
  Mru.assign(Sets, 0);
  MruTag.assign(Sets, InvalidTag);
  Mru2.assign(Sets, 0);
  MruTag2.assign(Sets, InvalidTag);
  Hits = Misses = 0;
}
