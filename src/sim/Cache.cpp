//===- sim/Cache.cpp - Set-associative cache model -------------------------===//

#include "sim/Cache.h"

#include "support/Bits.h"

#include <cassert>

using namespace halo;

Cache::Cache(const CacheConfig &Config) : Config(Config) {
  assert(isPowerOfTwo(Config.LineSize) && "line size must be a power of two");
  assert(Config.Ways > 0 && "cache needs at least one way");
  assert(Config.SizeBytes % (uint64_t(Config.Ways) * Config.LineSize) == 0 &&
         "size must be divisible by way span");
  Sets = static_cast<uint32_t>(Config.SizeBytes /
                               (uint64_t(Config.Ways) * Config.LineSize));
  assert(Sets > 0 && "cache has no sets");
  Ways.resize(uint64_t(Sets) * Config.Ways);
}

bool Cache::access(uint64_t Addr) {
  uint64_t Line = Addr / Config.LineSize;
  uint32_t Set = static_cast<uint32_t>(Line % Sets);
  uint64_t Tag = Line / Sets;
  Way *Begin = &Ways[uint64_t(Set) * Config.Ways];
  ++Clock;

  Way *Victim = Begin;
  for (Way *W = Begin; W != Begin + Config.Ways; ++W) {
    if (W->Valid && W->Tag == Tag) {
      W->LastUse = Clock;
      ++Hits;
      return true;
    }
    if (!W->Valid)
      Victim = W; // Prefer filling an invalid way.
    else if (Victim->Valid && W->LastUse < Victim->LastUse)
      Victim = W;
  }
  ++Misses;
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->LastUse = Clock;
  return false;
}

bool Cache::contains(uint64_t Addr) const {
  uint64_t Line = Addr / Config.LineSize;
  uint32_t Set = static_cast<uint32_t>(Line % Sets);
  uint64_t Tag = Line / Sets;
  const Way *Begin = &Ways[uint64_t(Set) * Config.Ways];
  for (const Way *W = Begin; W != Begin + Config.Ways; ++W)
    if (W->Valid && W->Tag == Tag)
      return true;
  return false;
}

void Cache::reset() {
  for (Way &W : Ways)
    W = Way();
  Clock = Hits = Misses = 0;
}
