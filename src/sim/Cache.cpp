//===- sim/Cache.cpp - Set-associative cache model -------------------------===//

#include "sim/Cache.h"

#include "support/Bits.h"

#include <cassert>

using namespace halo;

Cache::Cache(const CacheConfig &Config) : Config(Config) {
  assert(isPowerOfTwo(Config.LineSize) && "line size must be a power of two");
  assert(Config.Ways > 0 && "cache needs at least one way");
  assert(Config.SizeBytes % (uint64_t(Config.Ways) * Config.LineSize) == 0 &&
         "size must be divisible by way span");
  Sets = static_cast<uint32_t>(Config.SizeBytes /
                               (uint64_t(Config.Ways) * Config.LineSize));
  assert(Sets > 0 && "cache has no sets");
  while ((1u << LineShift) < Config.LineSize)
    ++LineShift;
  if (isPowerOfTwo(Sets)) {
    SetShift = 0;
    while ((1u << SetShift) < Sets)
      ++SetShift;
  }
  Ways.resize(uint64_t(Sets) * Config.Ways);
  Mru.assign(Sets, 0);
}

bool Cache::access(uint64_t Addr) {
  auto [Set, Tag] = locate(Addr);
  Way *Begin = &Ways[uint64_t(Set) * Config.Ways];
  ++Clock;

  // Repeat hits on the most-recently-hit way dominate; one compare settles
  // them without the scan.
  Way *Last = Begin + Mru[Set];
  if (Last->Valid && Last->Tag == Tag) {
    Last->LastUse = Clock;
    ++Hits;
    return true;
  }

  Way *Victim = Begin;
  for (Way *W = Begin; W != Begin + Config.Ways; ++W) {
    if (W->Valid && W->Tag == Tag) {
      W->LastUse = Clock;
      ++Hits;
      Mru[Set] = static_cast<uint8_t>(W - Begin);
      return true;
    }
    if (!W->Valid)
      Victim = W; // Prefer filling an invalid way.
    else if (Victim->Valid && W->LastUse < Victim->LastUse)
      Victim = W;
  }
  ++Misses;
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->LastUse = Clock;
  Mru[Set] = static_cast<uint8_t>(Victim - Begin);
  return false;
}

bool Cache::contains(uint64_t Addr) const {
  auto [Set, Tag] = locate(Addr);
  const Way *Begin = &Ways[uint64_t(Set) * Config.Ways];
  for (const Way *W = Begin; W != Begin + Config.Ways; ++W)
    if (W->Valid && W->Tag == Tag)
      return true;
  return false;
}

void Cache::reset() {
  for (Way &W : Ways)
    W = Way();
  Mru.assign(Sets, 0);
  Clock = Hits = Misses = 0;
}
