//===- sim/Cache.cpp - Set-associative cache model -------------------------===//

#include "sim/Cache.h"

#include "support/Bits.h"

#include <cassert>

using namespace halo;

Cache::Cache(const CacheConfig &Config) : Config(Config) {
  assert(isPowerOfTwo(Config.LineSize) && "line size must be a power of two");
  assert(Config.Ways > 0 && "cache needs at least one way");
  assert(Config.Ways <= 256 && "way index must fit the uint8_t MRU hint");
  assert(Config.SizeBytes % (uint64_t(Config.Ways) * Config.LineSize) == 0 &&
         "size must be divisible by way span");
  Sets = static_cast<uint32_t>(Config.SizeBytes /
                               (uint64_t(Config.Ways) * Config.LineSize));
  assert(Sets > 0 && "cache has no sets");
  while ((1u << LineShift) < Config.LineSize)
    ++LineShift;
  if (isPowerOfTwo(Sets)) {
    SetShift = 0;
    while ((1u << SetShift) < Sets)
      ++SetShift;
  }
  Slots.assign(uint64_t(Sets) * Config.Ways, Slot{InvalidTag, 0});
  Mru.assign(Sets, 0);
}

// Composing the two documented primitives keeps the fused MemoryHierarchy
// fast path and plain accesses on one code path; the repeated locate() on
// the miss side is noise next to the way scan that follows.
bool Cache::access(uint64_t Addr) { return mruHit(Addr) || accessSlow(Addr); }

bool Cache::scanInsert(uint32_t Set, uint64_t Tag) {
  assert(Tag != InvalidTag && "address saturates the tag space");
  const uint64_t Base = uint64_t(Set) * Config.Ways;
  ++Clock;

  // One pass finds both a hit and the LRU victim. Empty slots carry use
  // clock 0, below every live clock (clocks start at 1), so they fill
  // before any live way is evicted -- same outcomes as an explicit
  // valid-bit scan, without a third field.
  Slot *Begin = &Slots[Base];
  Slot *Victim = Begin;
  for (Slot *S = Begin; S != Begin + Config.Ways; ++S) {
    if (S->Tag == Tag) {
      S->Use = Clock;
      ++Hits;
      Mru[Set] = static_cast<uint8_t>(S - Begin);
      return true;
    }
    if (S->Use < Victim->Use)
      Victim = S;
  }
  ++Misses;
  Victim->Tag = Tag;
  Victim->Use = Clock;
  Mru[Set] = static_cast<uint8_t>(Victim - Begin);
  return false;
}

bool Cache::contains(uint64_t Addr) const {
  auto [Set, Tag] = locate(Addr);
  const Slot *Begin = &Slots[uint64_t(Set) * Config.Ways];
  for (const Slot *S = Begin; S != Begin + Config.Ways; ++S)
    if (S->Tag == Tag)
      return true;
  return false;
}

void Cache::reset() {
  Slots.assign(Slots.size(), Slot{InvalidTag, 0});
  Mru.assign(Sets, 0);
  Clock = Hits = Misses = 0;
}
