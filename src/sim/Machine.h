//===- sim/Machine.h - First-class machine models ---------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named, validated hardware models. A MachineConfig bundles everything the
/// simulator needs to impersonate one machine — cache/TLB geometry
/// (HierarchyConfig), per-level latencies (LatencyModel), and fixed event
/// costs plus clock (CostModel) — so the hardware stops being scattered
/// struct defaults and becomes a first-class, sweepable input: layout
/// decisions that only pay off on one cache geometry are exactly the kind
/// of overfitting a post-link optimiser deployed across a heterogeneous
/// fleet must avoid (cf. BOLT).
///
/// A small registry of presets covers the paper's evaluation machine
/// (`xeon-w2195`, the defaults everything else in the tree inherits — kept
/// bit-identical) plus desktop-, mobile-, and server-class geometries for
/// cross-machine sweeps (`halo_cli sweep`, BENCH_machines.json).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SIM_MACHINE_H
#define HALO_SIM_MACHINE_H

#include "sim/MemoryHierarchy.h"
#include "sim/TimingModel.h"

#include <string>
#include <vector>

namespace halo {

/// One complete hardware model: geometry + latencies + event costs.
struct MachineConfig {
  std::string Name;        ///< Registry key, e.g. "xeon-w2195".
  std::string Description; ///< Human-readable provenance.
  HierarchyConfig Hierarchy;
  CostModel Costs;

  /// Checks every invariant the simulator relies on (power-of-two line and
  /// page sizes, way spans dividing the level size, way counts fitting the
  /// MRU hint, a TLB whose entries split evenly into ways, positive
  /// latencies and clock). Returns an empty string when the config is sane,
  /// else a description of the first violation.
  std::string validate() const;

  /// One-line geometry summary, e.g.
  /// "L1D 32KiB/8w, L2 1MiB/16w, L3 24.75MiB/11w, dTLB 64e/4w, 3.3GHz".
  std::string summary() const;
};

/// All built-in presets, in listing order. The first entry is the default
/// machine (`xeon-w2195`); every preset validates cleanly.
const std::vector<MachineConfig> &machinePresets();

/// Names of the built-in presets, in listing order.
const std::vector<std::string> &machineNames();

/// Looks up a preset by name; returns nullptr for unknown names.
const MachineConfig *findMachine(const std::string &Name);

/// The paper's evaluation machine (Xeon W-2195). Its hierarchy and costs
/// are field-for-field the HierarchyConfig/CostModel defaults, so code that
/// never mentions a machine keeps measuring exactly what it always did.
const MachineConfig &defaultMachine();

} // namespace halo

#endif // HALO_SIM_MACHINE_H
