//===- sim/Cache.h - Set-associative cache model ---------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, LRU, write-allocate cache model. The evaluation's
/// memory hierarchy (sim/MemoryHierarchy.h) stacks three of these with the
/// geometry of the paper's Xeon W-2195 (32 KiB L1D, 1 MiB L2, 24.75 MiB L3).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SIM_CACHE_H
#define HALO_SIM_CACHE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace halo {

/// Geometry of one cache level.
struct CacheConfig {
  uint64_t SizeBytes = 32 * 1024;
  uint32_t Ways = 8;
  uint32_t LineSize = 64;
  std::string Name = "cache";
};

/// One level of set-associative cache with true-LRU replacement.
class Cache {
public:
  explicit Cache(const CacheConfig &Config);

  /// Looks up the line containing \p Addr, inserting it on a miss (evicting
  /// the LRU way). Returns true on hit.
  bool access(uint64_t Addr);

  /// Returns true if the line containing \p Addr is currently cached,
  /// without updating replacement state (for tests).
  bool contains(uint64_t Addr) const;

  /// Drops all cached lines and resets statistics.
  void reset();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t accesses() const { return Hits + Misses; }
  double missRate() const {
    return accesses() ? static_cast<double>(Misses) / accesses() : 0.0;
  }

  const CacheConfig &config() const { return Config; }
  uint32_t numSets() const { return Sets; }

private:
  struct Way {
    uint64_t Tag = ~0ull;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  /// Set index and tag of \p Addr. Divisions on the per-access path are
  /// precomputed into shifts where the geometry allows (the line size is
  /// always a power of two; set counts are except for the L3's 36864).
  std::pair<uint32_t, uint64_t> locate(uint64_t Addr) const {
    uint64_t Line = Addr >> LineShift;
    if (SetShift >= 0)
      return {static_cast<uint32_t>(Line & (Sets - 1)), Line >> SetShift};
    return {static_cast<uint32_t>(Line % Sets), Line / Sets};
  }

  CacheConfig Config;
  uint32_t Sets;
  uint32_t LineShift = 0; ///< log2(LineSize).
  int32_t SetShift = -1;  ///< log2(Sets), or -1 if Sets is not a power of 2.
  std::vector<Way> Ways;  ///< Sets * Config.Ways entries, set-major.
  /// Most-recently-hit way per set: a pure lookup hint (no effect on
  /// hit/miss/LRU outcomes) that turns the common repeat-hit into a single
  /// compare instead of a way scan.
  std::vector<uint8_t> Mru;
  uint64_t Clock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace halo

#endif // HALO_SIM_CACHE_H
