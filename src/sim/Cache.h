//===- sim/Cache.h - Set-associative cache model ---------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, LRU, write-allocate cache model. The evaluation's
/// memory hierarchy (sim/MemoryHierarchy.h) stacks three of these with the
/// geometry of a named machine preset (sim/Machine.h); the default is the
/// paper's Xeon W-2195 (32 KiB L1D, 1 MiB L2, 24.75 MiB L3).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SIM_CACHE_H
#define HALO_SIM_CACHE_H

#include "support/Bits.h"

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace halo {

/// Geometry of one cache level. A plain value type with nothing heap-owned
/// in it: Cache objects live on the simulator's hottest path, and level
/// names belong to the machine presets (sim/Machine.h), not in here.
struct CacheConfig {
  uint64_t SizeBytes = 32 * 1024;
  uint32_t Ways = 8;
  uint32_t LineSize = 64;
};

/// One level of set-associative cache with true-LRU replacement.
///
/// Per-way metadata is packed into one flat array of 16-byte slots sized
/// from the config (tag + LRU clock, no valid flag, no name), so a slot is
/// a power-of-two stride, an MRU hit touches a single host cache line, and
/// a set scan spans a third fewer lines than the old 24-byte Way struct.
class Cache {
public:
  explicit Cache(const CacheConfig &Config);

  /// Looks up the line containing \p Addr, inserting it on a miss (evicting
  /// the LRU way). Returns true on hit. Repeat hits on the most-recently-hit
  /// way dominate; one compare settles them without the scan.
  ///
  /// Defined inline (like the whole lookup path) so the simulator's per-
  /// access work fuses into MemoryHierarchy's loops: an out-of-line call
  /// per way scan measurably dominates the scan itself.
  bool access(uint64_t Addr) { return mruHit(Addr) || accessSlow(Addr); }

  /// Fast-path-only probe of the most-recently-hit way: commits the access
  /// (hit counter, LRU clock) when it matches and returns true; on mismatch
  /// touches nothing and returns false, in which case the caller must finish
  /// the access with accessSlow(). MemoryHierarchy fuses the TLB and L1
  /// probes on its single-line fast path through this.
  ///
  /// The probe compares against MruTag -- a compact per-set copy of the MRU
  /// way's tag -- rather than the slot itself: the hit/miss decision then
  /// hangs off one independent load instead of the Mru[Set] -> slot chain
  /// (two levels' probes can overlap), and a mismatch never touches the
  /// slot array at all. The slot is only written on the hit side, off the
  /// critical path.
  bool mruHit(uint64_t Addr) {
    auto [Set, Tag] = locate(Addr);
    if (MruTag[Set] == Tag) {
      Slots[uint64_t(Set) * Config.Ways + Mru[Set]].Use = ++Clock;
      ++Hits;
      return true;
    }
    return false;
  }

  /// Completes an access whose mruHit() probe returned false: the full way
  /// scan without re-probing the MRU hint. access(Addr) is equivalent to
  /// `mruHit(Addr) || accessSlow(Addr)`.
  bool accessSlow(uint64_t Addr) {
    auto [Set, Tag] = locate(Addr);
    return scanInsert(Set, Tag);
  }

  /// Two-deep variant of mruHit(): probes the most-recently-hit way and
  /// then the second-most-recently-hit way before giving up. A second-probe
  /// hit swaps the two hints (the touched way becomes most recent). Hit and
  /// miss outcomes are bit-identical to mruHit() + accessSlow() -- the
  /// hints only short-circuit the way scan -- so either probe depth may
  /// serve any access stream. Measured head-to-head in bench_replay's
  /// mru_probe microbench; see ROADMAP for the verdict on the default
  /// hierarchy path. Single-way caches never maintain the second hint and
  /// degenerate to mruHit().
  bool mruHit2(uint64_t Addr) {
    auto [Set, Tag] = locate(Addr);
    if (MruTag[Set] == Tag) {
      Slots[uint64_t(Set) * Config.Ways + Mru[Set]].Use = ++Clock;
      ++Hits;
      return true;
    }
    if (MruTag2[Set] == Tag) {
      Slots[uint64_t(Set) * Config.Ways + Mru2[Set]].Use = ++Clock;
      ++Hits;
      std::swap(Mru[Set], Mru2[Set]);
      std::swap(MruTag[Set], MruTag2[Set]);
      return true;
    }
    return false;
  }

  /// Hints the host CPU to pull the set metadata \p Addr maps to into its
  /// own caches. Semantics-free (no counter, clock, or content changes):
  /// purely a host-side latency hint, used by the batched access path to
  /// overlap upcoming set walks with current ones -- the large levels' slot
  /// arrays (megabytes for an L3) are what the simulator itself stalls on.
  void prefetchSet(uint64_t Addr) const {
#if defined(__GNUC__) || defined(__clang__)
    auto [Set, Tag] = locate(Addr);
    (void)Tag;
    const Slot *S = &Slots[uint64_t(Set) * Config.Ways];
    __builtin_prefetch(S);
    if (Config.Ways > 4) // A set spanning several host lines: pull two.
      __builtin_prefetch(reinterpret_cast<const char *>(S) + 64);
#else
    (void)Addr;
#endif
  }

  /// Folds externally simulated outcomes into this level's hit/miss
  /// counters without touching content or replacement state. Sharded trace
  /// replay simulates the L1 and TLB per shard on private state and credits
  /// the stitched totals here, so counters() reports exactly what a serial
  /// replay would have counted even though this level's content stayed cold.
  void credit(uint64_t ExtraHits, uint64_t ExtraMisses) {
    Hits += ExtraHits;
    Misses += ExtraMisses;
  }

  /// Returns true if the line containing \p Addr is currently cached,
  /// without updating replacement state (for tests).
  bool contains(uint64_t Addr) const;

  /// Drops all cached lines and resets statistics.
  void reset();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t accesses() const { return Hits + Misses; }
  double missRate() const {
    return accesses() ? static_cast<double>(Misses) / accesses() : 0.0;
  }

  const CacheConfig &config() const { return Config; }
  uint32_t numSets() const { return Sets; }

private:
  /// Seeds empty slots with their unique per-set clocks and floors the
  /// global clock above them (constructor and reset()).
  void initEmptyClocks();

  /// One way's packed metadata: a power-of-two stride (the old Way struct
  /// was 24 bytes with a padding-swollen valid flag).
  struct Slot {
    uint64_t Tag;
    uint64_t Use; ///< LRU clock. Empty slots hold their way index (unique,
                  ///< below every live clock: the global clock starts at
                  ///< Ways), so victim tracking never ties and empty sets
                  ///< still fill in index order -- decisions bit-identical
                  ///< to the old all-zeros scheme.
  };

  /// Empty-slot tag marker. No simulated address reaches it: a real tag of
  /// ~0 would need an address within a line span of 2^64.
  static constexpr uint64_t InvalidTag = ~0ull;

  /// Set index and tag of \p Addr. Divisions on the per-access path are
  /// precomputed away: power-of-two set counts reduce to shifts, and the
  /// rest (e.g. the W-2195 L3's 36864 = 2^12 * 9 sets) shift out their
  /// power-of-two factor and divide by the small odd cofactor through a
  /// reciprocal multiply -- quotients bit-identical to the hardware
  /// divide, at a fraction of its latency on a path L3 lookups hit twice.
  std::pair<uint32_t, uint64_t> locate(uint64_t Addr) const {
    uint64_t Line = Addr >> LineShift;
    if (SetShift >= 0)
      return {static_cast<uint32_t>(Line & (Sets - 1)), Line >> SetShift};
    uint64_t Tag = OddDiv.divide(Line >> SetP2Shift); // == Line / Sets.
    return {static_cast<uint32_t>(Line - Tag * Sets), Tag};
  }

  /// Full way scan after an MRU mismatch: hit anywhere in the set, or evict
  /// the LRU way (empty slots hold unique clocks below every live clock --
  /// see the constructor -- so they lose every LRU comparison and fill in
  /// index order). One pass finds both a hit and the LRU victim (a separate
  /// min-scan pass measured ~2x slower end to end). With all use clocks
  /// unique the min-tracking never ties, so the victim update is written as
  /// two selects (no branch to predict) instead of a compare-and-branch.
  bool scanInsert(uint32_t Set, uint64_t Tag) {
    assert(Tag != InvalidTag && "address saturates the tag space");
    ++Clock;
    // The scan always lands on a way other than the current MRU (the probe
    // already ruled its tag out), so the old MRU demotes to the second
    // hint. The MRU way holds the set's newest use clock, hence with two
    // or more ways it is never the eviction victim and the demoted hint
    // stays consistent with its slot; a single-way cache would demote its
    // own victim, so it keeps the second hint permanently invalid.
    if (Config.Ways > 1) {
      Mru2[Set] = Mru[Set];
      MruTag2[Set] = MruTag[Set];
    }
    Slot *Begin = &Slots[uint64_t(Set) * Config.Ways];
    Slot *const End = Begin + Config.Ways;
    Slot *Victim = Begin;
    uint64_t VictimUse = Begin->Use;
    for (Slot *S = Begin; S != End; ++S) {
      if (S->Tag == Tag) {
        S->Use = Clock;
        ++Hits;
        Mru[Set] = static_cast<uint8_t>(S - Begin);
        MruTag[Set] = Tag;
        return true;
      }
      uint64_t Use = S->Use;
      bool Older = Use < VictimUse;
      Victim = Older ? S : Victim;
      VictimUse = Older ? Use : VictimUse;
    }
    ++Misses;
    Victim->Tag = Tag;
    Victim->Use = Clock;
    Mru[Set] = static_cast<uint8_t>(Victim - Begin);
    MruTag[Set] = Tag;
    return false;
  }

  CacheConfig Config;
  uint32_t Sets;
  uint32_t LineShift = 0; ///< log2(LineSize).
  int32_t SetShift = -1;  ///< log2(Sets), or -1 if Sets is not a power of 2.
  uint32_t SetP2Shift = 0; ///< Trailing zero count of a non-p2 set count.
  MagicDivider OddDiv;     ///< Divides by Sets >> SetP2Shift (odd).
  std::vector<Slot> Slots; ///< Sets * Ways slots, set-major.
  /// Most-recently-hit way per set: a pure lookup hint (no effect on
  /// hit/miss/LRU outcomes) that turns the common repeat-hit into a single
  /// compare instead of a way scan.
  std::vector<uint8_t> Mru;
  /// The MRU way's tag, by set -- a sidecar of Slots kept in lockstep
  /// wherever Mru changes or the MRU way's tag does. Same hint, laid out
  /// so the probe's compare needs no dependent slot lookup.
  std::vector<uint64_t> MruTag;
  /// Second-most-recently-hit way and its tag, by set: the extra probe
  /// depth mruHit2() offers. Maintained by demotion in scanInsert() (two
  /// plain stores on the already-slow scan path), so the hint exists
  /// whether or not the caller ever probes it.
  std::vector<uint8_t> Mru2;
  std::vector<uint64_t> MruTag2;
  uint64_t Clock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace halo

#endif // HALO_SIM_CACHE_H
