//===- sim/Tlb.cpp - Data TLB model ----------------------------------------===//

#include "sim/Tlb.h"

using namespace halo;

Tlb::Tlb(uint32_t NumEntries, uint32_t Ways, uint32_t PageSize)
    : Entries(CacheConfig{uint64_t(NumEntries) * PageSize, Ways, PageSize}) {}
