//===- sim/TimingModel.h - Execution time accounting -----------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulates an execution-time estimate for a workload run: explicit
/// compute cycles (the part of the program that is not memory-bound),
/// memory access cycles from the cache hierarchy, small fixed costs for
/// allocator calls, and the cost of the set/unset instructions HALO's BOLT
/// pass inserts (so bench/ablation_instrumentation can measure their
/// overhead, which the paper finds to be below system noise).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SIM_TIMINGMODEL_H
#define HALO_SIM_TIMINGMODEL_H

#include <cstdint>

namespace halo {

/// Fixed per-event costs in cycles.
struct CostModel {
  uint32_t AllocCall = 20;      ///< malloc/free book-keeping cost.
  uint32_t InstrumentationOp = 1; ///< One inserted set/unset instruction.
  double CyclesPerSecond = 3.3e9; ///< W-2195 nominal clock.
};

/// Cycle accumulator for one simulated run.
class TimingModel {
public:
  explicit TimingModel(const CostModel &Costs = CostModel()) : Costs(Costs) {}

  void addCompute(uint64_t Cycles) { ComputeCycles += Cycles; }
  void addMemory(uint64_t Cycles) { MemoryCycles += Cycles; }
  void addAllocatorCall() { AllocatorCycles += Costs.AllocCall; }
  void addInstrumentationOp() {
    InstrumentationCycles += Costs.InstrumentationOp;
    ++InstrumentationOps;
  }

  uint64_t computeCycles() const { return ComputeCycles; }
  uint64_t memoryCycles() const { return MemoryCycles; }
  uint64_t allocatorCycles() const { return AllocatorCycles; }
  uint64_t instrumentationCycles() const { return InstrumentationCycles; }
  uint64_t instrumentationOps() const { return InstrumentationOps; }

  uint64_t totalCycles() const {
    return ComputeCycles + MemoryCycles + AllocatorCycles +
           InstrumentationCycles;
  }

  /// Estimated wall-clock seconds at the configured frequency.
  double seconds() const {
    return static_cast<double>(totalCycles()) / Costs.CyclesPerSecond;
  }

  void reset() {
    ComputeCycles = MemoryCycles = AllocatorCycles = InstrumentationCycles =
        InstrumentationOps = 0;
  }

private:
  CostModel Costs;
  uint64_t ComputeCycles = 0;
  uint64_t MemoryCycles = 0;
  uint64_t AllocatorCycles = 0;
  uint64_t InstrumentationCycles = 0;
  uint64_t InstrumentationOps = 0;
};

} // namespace halo

#endif // HALO_SIM_TIMINGMODEL_H
