//===- sim/MemoryHierarchy.h - L1D/L2/L3 + TLB stack -----------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three cache levels plus a data TLB with a simple latency model. The
/// geometry comes from a HierarchyConfig — usually one bundled in a machine
/// preset (sim/Machine.h); the default matches the paper's evaluation
/// machine (Intel Xeon W-2195): 32 KiB per-core L1D, 1024 KiB per-core L2,
/// 25344 KiB shared L3. Workloads are single-threaded, as in the paper, so
/// no coherence is modelled.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SIM_MEMORYHIERARCHY_H
#define HALO_SIM_MEMORYHIERARCHY_H

#include "sim/Cache.h"
#include "sim/Tlb.h"

#include <cstddef>
#include <cstdint>

namespace halo {

/// Cycle costs of each level. Default values approximate Skylake-SP.
struct LatencyModel {
  uint32_t L1Hit = 4;
  uint32_t L2Hit = 14;
  uint32_t L3Hit = 68;
  uint32_t Memory = 230;
  uint32_t TlbMiss = 26;
};

/// Geometry of the whole hierarchy.
struct HierarchyConfig {
  CacheConfig L1{32 * 1024, 8, 64};
  CacheConfig L2{1024 * 1024, 16, 64};
  CacheConfig L3{25344 * 1024, 11, 64};
  uint32_t TlbEntries = 64;
  uint32_t TlbWays = 4;
  LatencyModel Latency;
};

/// One decoded data access: the unit of the batch interfaces. Trace
/// replay resolves event records into runs of these and hands each run to
/// the hierarchy (and to observers) as a block, so the per-access fast
/// path executes in a tight loop instead of behind a call per event. The
/// 16-byte layout keeps a 512-entry batch inside 8 KiB of buffer; a
/// single access never spans 4 GiB, so 32 bits of size suffice.
struct MemAccess {
  uint64_t Addr;
  uint32_t Size;
  uint32_t IsStore; ///< Loads and stores cost alike in the hierarchy; the
                    ///< flag exists for observers and event counters.
};

/// Counter snapshot for reporting.
struct MemoryCounters {
  uint64_t Accesses = 0;
  uint64_t L1Misses = 0;
  uint64_t L2Misses = 0;
  uint64_t L3Misses = 0;
  uint64_t TlbMisses = 0;
  uint64_t StallCycles = 0;
};

/// An inclusive three-level data-cache hierarchy with a TLB.
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const HierarchyConfig &Config = HierarchyConfig());

  /// Performs a data access of \p Size bytes at \p Addr (loads and stores
  /// are treated alike: write-allocate, no write-back traffic modelled).
  /// Every cache line the access touches is looked up. Returns the cycles
  /// the access cost.
  uint64_t access(uint64_t Addr, uint64_t Size);

  /// Performs every access of \p Batch in order and returns the summed
  /// cycles -- bit-identical counters and cost to calling access() per
  /// element. The batch form exists so replay's dominant event runs drive
  /// the fused TLB+L1 fast path in a loop inside this TU (where
  /// accessLine inlines) rather than through one out-of-line call per
  /// event.
  uint64_t accessBatch(const MemAccess *Batch, size_t N);

  MemoryCounters counters() const;
  void reset();

  const HierarchyConfig &config() const { return Config; }

  /// Completes a line access that already missed the L1 (and was TLB-
  /// translated) somewhere else: looks the line up in the L2, then the L3,
  /// updating their content and counters exactly as the serial miss path
  /// does, and returns the beyond-L1 latency (L2Hit, L3Hit, or Memory).
  /// Neither the L1/TLB counters nor the stall total move -- the caller
  /// owns those via creditL1/creditTlb/addStallCycles. Sharded trace
  /// replay simulates the L1 and TLB per shard on private state and then
  /// stitches by driving every surviving L1 miss line through here in
  /// trace order, so the L2/L3 see the exact access sequence a serial
  /// replay would have sent them.
  uint64_t accessBeyondL1(uint64_t LineAddr);

  /// Counter credits for the stitch (see Cache::credit): the L1/TLB
  /// content stays cold, only the reported totals move.
  void creditL1(uint64_t ExtraHits, uint64_t ExtraMisses) {
    L1.credit(ExtraHits, ExtraMisses);
  }
  void creditTlb(uint64_t ExtraHits, uint64_t ExtraMisses) {
    Dtlb.credit(ExtraHits, ExtraMisses);
  }
  void addStallCycles(uint64_t Cycles) { Stalls += Cycles; }

  const Cache &l1() const { return L1; }
  const Cache &l2() const { return L2; }
  const Cache &l3() const { return L3; }
  const Tlb &tlb() const { return Dtlb; }

private:
  /// Fused TLB+L1 lookup: the dominant outcome — both the TLB's and the
  /// L1's most-recently-used entries hit — resolves with two inline tag
  /// compares and no further calls; everything else takes the out-of-line
  /// walk. Defined in the .cpp (callers all live there) so the fast path
  /// inlines into access() without bloating every load/store site.
  uint64_t accessLine(uint64_t LineAddr);

  /// Completes an access whose fused fast path missed. \p TlbDone tells
  /// whether the TLB already committed a hit on the fast path (it must be
  /// consulted exactly once per line).
  uint64_t accessLineSlow(uint64_t LineAddr, bool TlbDone);
  uint64_t accessSpan(uint64_t First, uint64_t Last);

  HierarchyConfig Config;
  uint64_t LineMask; ///< L1.LineSize - 1 (line size is a power of two).
  Cache L1, L2, L3;
  Tlb Dtlb;
  uint64_t Stalls = 0;
};

} // namespace halo

#endif // HALO_SIM_MEMORYHIERARCHY_H
