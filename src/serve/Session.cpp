//===- serve/Session.cpp - One daemon-side client connection ----------------===//

#include "serve/Session.h"

#include <stdexcept>

using namespace halo;

bool ServeSession::send(MsgType Type, const std::vector<uint8_t> &Payload) {
  std::lock_guard<std::mutex> Lock(WriteMutex);
  if (!Alive.load(std::memory_order_acquire))
    return false;
  try {
    writeFrame(Conn, Type, Payload);
    return true;
  } catch (const std::runtime_error &) {
    // The peer hung up mid-stream. Everything still queued for this
    // session -- later cells, the PlanDone -- drops silently from here on.
    Alive.store(false, std::memory_order_release);
    return false;
  }
}

bool ServeSession::sendError(uint64_t PlanId, const std::string &Message) {
  ErrorMsg M;
  M.PlanId = PlanId;
  M.Message = Message;
  return send(MsgType::Error, encodeError(M));
}
