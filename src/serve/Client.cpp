//===- serve/Client.cpp - Client side of halo serve -------------------------===//

#include "serve/Client.h"

#include "sim/Machine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

using namespace halo;

HaloClient::HaloClient(const std::string &SocketPath)
    : Conn(Socket::connectUnix(SocketPath)) {
  writeFrame(Conn, MsgType::Hello, encodeHello(ServeProtocolVersion));
  Frame F = readExpected();
  if (F.Type == MsgType::Error)
    throw std::runtime_error("serve: " + decodeError(F.Payload).Message);
  if (F.Type != MsgType::HelloAck)
    throw ProtocolError("serve: expected HelloAck");
  Ack = decodeHelloAck(F.Payload);
  if (Ack.Version != ServeProtocolVersion)
    throw std::runtime_error("serve: daemon speaks protocol v" +
                             std::to_string(Ack.Version) + ", this client v" +
                             std::to_string(ServeProtocolVersion));
}

Frame HaloClient::readExpected() {
  std::optional<Frame> F = readFrame(Conn);
  if (!F)
    throw std::runtime_error("serve: daemon closed the connection");
  return std::move(*F);
}

uint64_t HaloClient::submit(const PlanRequest &R) {
  writeFrame(Conn, MsgType::SubmitPlan, encodePlanRequest(R));
  // Results of earlier still-running plans may arrive between the
  // submit and its PlanQueued; buffer them for their own wait().
  for (;;) {
    Frame F = readExpected();
    switch (F.Type) {
    case MsgType::PlanQueued: {
      PlanQueuedMsg Q = decodePlanQueued(F.Payload);
      PromisedCells[Q.PlanId] = Q.NumCells;
      return Q.PlanId;
    }
    case MsgType::CellResult: {
      CellResultMsg M = decodeCellResult(F.Payload);
      PendingCells[M.PlanId].push_back(std::move(M));
      break;
    }
    case MsgType::PlanDone: {
      PlanDoneMsg D = decodePlanDone(F.Payload);
      PendingDone.emplace(D.PlanId, D);
      break;
    }
    case MsgType::Error:
      throw std::runtime_error("serve: " + decodeError(F.Payload).Message);
    default:
      throw ProtocolError("serve: unexpected frame during submit");
    }
  }
}

PlanOutcome HaloClient::wait(uint64_t PlanId, const CellFn &OnCell) {
  std::vector<CellResultMsg> Cells;

  // Anything that raced in during an earlier submit()/wait() first.
  auto Buffered = PendingCells.find(PlanId);
  if (Buffered != PendingCells.end()) {
    Cells = std::move(Buffered->second);
    PendingCells.erase(Buffered);
  }
  if (OnCell)
    for (const CellResultMsg &M : Cells)
      OnCell(M);

  std::optional<PlanDoneMsg> Done;
  auto BufferedDone = PendingDone.find(PlanId);
  if (BufferedDone != PendingDone.end()) {
    Done = BufferedDone->second;
    PendingDone.erase(BufferedDone);
  }

  while (!Done) {
    Frame F = readExpected();
    switch (F.Type) {
    case MsgType::CellResult: {
      CellResultMsg M = decodeCellResult(F.Payload);
      if (M.PlanId == PlanId) {
        if (OnCell)
          OnCell(M);
        Cells.push_back(std::move(M));
      } else {
        PendingCells[M.PlanId].push_back(std::move(M));
      }
      break;
    }
    case MsgType::PlanDone: {
      PlanDoneMsg D = decodePlanDone(F.Payload);
      if (D.PlanId == PlanId)
        Done = D;
      else
        PendingDone.emplace(D.PlanId, D);
      break;
    }
    case MsgType::Error: {
      ErrorMsg E = decodeError(F.Payload);
      throw std::runtime_error("serve: " + E.Message);
    }
    default:
      throw ProtocolError("serve: unexpected frame during wait");
    }
  }

  // Reassemble in the daemon's plan cell order: completed plans come back
  // byte-identical to a local runPlan of the same spec.
  std::sort(Cells.begin(), Cells.end(),
            [](const CellResultMsg &A, const CellResultMsg &B) {
              return A.CellIndex < B.CellIndex;
            });
  std::vector<ResultSet::Cell> Reassembled;
  Reassembled.reserve(Cells.size());
  for (CellResultMsg &M : Cells) {
    ResultSet::Cell C;
    C.Key = std::move(M.Key);
    C.Machine = findMachine(C.Key.Machine);
    C.Runs = std::move(M.Runs);
    Reassembled.push_back(std::move(C));
  }

  PlanOutcome Outcome;
  Outcome.Status = Done->Status;
  Outcome.Message = Done->Message;
  Outcome.CellsReceived = Cells.size();
  auto Promised = PromisedCells.find(PlanId);
  if (Promised != PromisedCells.end()) {
    Outcome.NumCells = Promised->second;
    PromisedCells.erase(Promised);
  }
  Outcome.Results = ResultSet::fromCells(std::move(Reassembled));
  return Outcome;
}

void HaloClient::cancel(uint64_t PlanId) {
  writeFrame(Conn, MsgType::Cancel, encodeCancel(PlanId));
}

DaemonStats HaloClient::stats() {
  writeFrame(Conn, MsgType::Stats, {});
  for (;;) {
    Frame F = readExpected();
    if (F.Type == MsgType::StatsReply)
      return decodeStatsReply(F.Payload);
    // Cells of still-running plans may interleave with the reply.
    if (F.Type == MsgType::CellResult) {
      CellResultMsg M = decodeCellResult(F.Payload);
      PendingCells[M.PlanId].push_back(std::move(M));
      continue;
    }
    if (F.Type == MsgType::PlanDone) {
      PlanDoneMsg D = decodePlanDone(F.Payload);
      PendingDone.emplace(D.PlanId, D);
      continue;
    }
    if (F.Type == MsgType::Error)
      throw std::runtime_error("serve: " + decodeError(F.Payload).Message);
    throw ProtocolError("serve: unexpected frame during stats");
  }
}

void HaloClient::shutdownServer() {
  writeFrame(Conn, MsgType::Shutdown, {});
  for (;;) {
    Frame F = readExpected();
    if (F.Type == MsgType::ShutdownAck)
      return;
    if (F.Type == MsgType::Error)
      throw std::runtime_error("serve: " + decodeError(F.Payload).Message);
    // Drain whatever was still streaming.
    if (F.Type == MsgType::CellResult || F.Type == MsgType::PlanDone)
      continue;
    throw ProtocolError("serve: unexpected frame during shutdown");
  }
}
