//===- serve/Server.cpp - The halo serve daemon -----------------------------===//

#include "serve/Server.h"

#include "sim/Machine.h"
#include "workloads/Workload.h"

#include <unistd.h>

#include <algorithm>
#include <stdexcept>
#include <utility>

using namespace halo;

HaloDaemon::HaloDaemon(DaemonConfig ConfigIn) : Config(std::move(ConfigIn)) {}

HaloDaemon::~HaloDaemon() {
  // serve() joins everything before returning; these guards only matter
  // if construction succeeded but serve() was never reached (or threw
  // before its own cleanup).
  requestShutdown();
  if (Scheduler.joinable())
    Scheduler.join();
  std::vector<std::shared_ptr<ServeSession>> Remaining;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Remaining.swap(Sessions);
  }
  for (const std::shared_ptr<ServeSession> &S : Remaining) {
    S->wakeReader();
    if (S->Reader.joinable())
      S->Reader.join();
  }
}

void HaloDaemon::requestShutdown() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  SchedulerCv.notify_all();
  QueueCv.notify_all();
}

DaemonStats HaloDaemon::currentStats() const {
  DaemonStats St;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (const std::shared_ptr<ServeSession> &S : Sessions)
      if (S->alive())
        ++St.ActiveSessions;
  }
  {
    std::lock_guard<std::mutex> Lock(EvalsMu);
    St.WarmBenchmarks = Evals.size();
  }
  St.SessionsServed = SessionsServed.load(std::memory_order_relaxed);
  St.PlansSubmitted = PlansSubmitted.load(std::memory_order_relaxed);
  St.PlansCompleted = PlansCompleted.load(std::memory_order_relaxed);
  St.PlansCancelled = PlansCancelled.load(std::memory_order_relaxed);
  St.PlansFailed = PlansFailed.load(std::memory_order_relaxed);
  St.CellsStreamed = CellsStreamed.load(std::memory_order_relaxed);
  St.TasksExecuted = TasksExecuted.load(std::memory_order_relaxed);
  St.Workers = Pool ? Pool->workers() : 0;
  St.HasStore = Store != nullptr;
  return St;
}

int HaloDaemon::serve() {
  Listener = Socket::listenUnix(Config.SocketPath);
  Pool = std::make_unique<Executor>(Config.Jobs);
  if (!Config.StoreDir.empty())
    Store = std::make_unique<ArtifactStore>(Config.StoreDir);
  Scheduler = std::thread([this] { schedulerMain(); });

  for (;;) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (ShuttingDown)
        break;
      // Reap sessions whose reader loop already returned, so a
      // long-lived daemon does not accumulate dead connections.
      for (size_t I = 0; I < Sessions.size();) {
        if (Sessions[I]->readerDone()) {
          if (Sessions[I]->Reader.joinable())
            Sessions[I]->Reader.join();
          Sessions.erase(Sessions.begin() + static_cast<ptrdiff_t>(I));
          if (RrCursor > I)
            --RrCursor;
        } else {
          ++I;
        }
      }
    }
    std::optional<Socket> Conn = Listener.accept(/*TimeoutMs=*/200);
    if (!Conn)
      continue;
    std::shared_ptr<ServeSession> S;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      S = std::make_shared<ServeSession>(NextSessionId++, std::move(*Conn));
      Sessions.push_back(S);
    }
    SessionsServed.fetch_add(1, std::memory_order_relaxed);
    S->Reader = std::thread([this, S] { readerMain(S); });
  }

  // Shutdown: the scheduler exits once every admitted plan has drained
  // (submissions are rejected from the moment ShuttingDown was set).
  SchedulerCv.notify_all();
  QueueCv.notify_all();
  Scheduler.join();

  std::vector<std::shared_ptr<ServeSession>> Remaining;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Remaining.swap(Sessions);
  }
  for (const std::shared_ptr<ServeSession> &S : Remaining)
    S->wakeReader();
  for (const std::shared_ptr<ServeSession> &S : Remaining)
    if (S->Reader.joinable())
      S->Reader.join();

  Listener.close();
  ::unlink(Config.SocketPath.c_str());
  return 0;
}

//===----------------------------------------------------------------------===//
// Per-session reader
//===----------------------------------------------------------------------===//

void HaloDaemon::readerMain(std::shared_ptr<ServeSession> S) {
  try {
    // Handshake: the first frame must be a Hello with our version --
    // anything else (including a future protocol talking to an old
    // daemon) gets one explanatory Error frame and a close.
    std::optional<Frame> First = readFrame(S->socket());
    if (!First) {
      S->markDead();
      S->markReaderDone();
      return;
    }
    if (First->Type != MsgType::Hello) {
      S->sendError(0, "expected Hello");
      S->markDead();
      S->markReaderDone();
      return;
    }
    uint32_t Version = decodeHello(First->Payload);
    if (Version != ServeProtocolVersion) {
      S->sendError(0, "protocol version mismatch: client speaks v" +
                          std::to_string(Version) + ", daemon speaks v" +
                          std::to_string(ServeProtocolVersion));
      S->markDead();
      S->markReaderDone();
      return;
    }
    HelloAckMsg Ack;
    Ack.Version = ServeProtocolVersion;
    Ack.Workers = Pool->workers();
    Ack.HasStore = Store != nullptr;
    S->send(MsgType::HelloAck, encodeHelloAck(Ack));

    while (std::optional<Frame> F = readFrame(S->socket())) {
      switch (F->Type) {
      case MsgType::SubmitPlan:
        handleSubmit(S, decodePlanRequest(F->Payload));
        break;
      case MsgType::Cancel:
        handleCancel(S, decodeCancel(F->Payload));
        break;
      case MsgType::Stats:
        S->send(MsgType::StatsReply, encodeStatsReply(currentStats()));
        break;
      case MsgType::Shutdown:
        S->send(MsgType::ShutdownAck, {});
        requestShutdown();
        break;
      default:
        // Server-to-client types arriving here are a confused client,
        // not a daemon problem.
        S->sendError(0, "unexpected message type " +
                            std::to_string(static_cast<unsigned>(F->Type)));
        break;
      }
    }
  } catch (const ProtocolError &E) {
    // Malformed traffic poisons only this conversation.
    S->sendError(0, std::string("protocol error: ") + E.what());
  } catch (const std::runtime_error &) {
    // Socket-level failure: the peer is simply gone.
  }

  // Reader is done (clean EOF or error): suppress further sends, abandon
  // whatever this client still had queued, and let the accept loop reap.
  S->markDead();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    cancelSessionPlansLocked(*S);
  }
  SchedulerCv.notify_all();
  S->markReaderDone();
}

void HaloDaemon::handleSubmit(const std::shared_ptr<ServeSession> &S,
                              const PlanRequest &R) {
  if (R.Benchmarks.empty()) {
    S->sendError(0, "submit: no benchmarks");
    return;
  }

  // Resolve machine preset names. The daemon measures under its own
  // presets -- the same table the client's local runPlan would use -- so
  // an unknown name is the client's error, reported before any work.
  std::vector<const MachineConfig *> Machines;
  for (const std::string &Name : R.Machines) {
    const MachineConfig *M = findMachine(Name);
    if (!M) {
      S->sendError(0, "submit: unknown machine '" + Name + "'");
      return;
    }
    Machines.push_back(M);
  }

  // Warm benchmark cache: reuse (or create) the daemon's Evaluation for
  // every requested benchmark and hand them to buildPlan as external
  // instances. This is the whole point of the daemon -- the second plan
  // naming a benchmark starts from its cached traces and artifacts.
  std::vector<Evaluation *> External;
  try {
    std::lock_guard<std::mutex> Lock(EvalsMu);
    for (const std::string &Name : R.Benchmarks) {
      auto It = Evals.find(Name);
      if (It == Evals.end()) {
        if (!createWorkload(Name))
          throw std::invalid_argument("unknown benchmark '" + Name + "'");
        It = Evals.emplace(Name, std::make_unique<Evaluation>(paperSetup(Name)))
                 .first;
      }
      External.push_back(It->second.get());
    }
  } catch (const std::exception &E) {
    S->sendError(0, std::string("submit: ") + E.what());
    return;
  }

  ExperimentSpec Spec;
  Spec.Benchmarks = R.Benchmarks;
  Spec.Machines = Machines;
  Spec.Kinds = R.Kinds;
  Spec.S = R.S;
  Spec.Trials = R.Trials;
  Spec.SeedBase = R.SeedBase;

  auto P = std::make_unique<PlanState>();
  P->Owner = S;
  try {
    P->Plan = buildPlan({Spec}, External, Store.get());
  } catch (const std::exception &E) {
    S->sendError(0, std::string("submit: ") + E.what());
    return;
  }

  // Admission control: this reader (and only this reader's client) blocks
  // until the daemon has room. Shutdown also wakes us, to reject.
  {
    std::unique_lock<std::mutex> Lock(Mu);
    QueueCv.wait(Lock, [&] {
      return ShuttingDown || Plans.size() < Config.MaxQueuedPlans;
    });
    if (ShuttingDown) {
      Lock.unlock();
      S->sendError(0, "daemon is shutting down");
      return;
    }
    P->Id = NextPlanId++;
  }

  // PlanQueued must precede the first CellResult, and constructing the
  // PlanExecution can stream immediately (degenerate zero-trial cells).
  PlanQueuedMsg Queued;
  Queued.PlanId = P->Id;
  Queued.NumCells = P->Plan.cells().size();
  Queued.NumReplays = P->Plan.numReplays();
  S->send(MsgType::PlanQueued, encodePlanQueued(Queued));
  PlansSubmitted.fetch_add(1, std::memory_order_relaxed);

  const uint64_t PlanId = P->Id;
  std::shared_ptr<ServeSession> Owner = S;
  P->Exec = std::make_unique<PlanExecution>(
      P->Plan, Config.Traces,
      [this, Owner, PlanId](size_t CellIndex, const ResultSet::Cell &Cell) {
        CellResultMsg M;
        M.PlanId = PlanId;
        M.CellIndex = CellIndex;
        M.Key = Cell.Key;
        M.Runs = Cell.Runs;
        if (Owner->send(MsgType::CellResult, encodeCellResult(M)))
          CellsStreamed.fetch_add(1, std::memory_order_relaxed);
      });

  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (ShuttingDown) {
      // The scheduler may already be gone; nothing will run this plan.
      PlanDoneMsg Done;
      Done.PlanId = PlanId;
      Done.Status = PlanStatus::Cancelled;
      S->send(MsgType::PlanDone, encodePlanDone(Done));
      PlansCancelled.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Plans.emplace(PlanId, std::move(P));
  }
  SchedulerCv.notify_all();
}

void HaloDaemon::handleCancel(const std::shared_ptr<ServeSession> &S,
                              uint64_t PlanId) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Plans.find(PlanId);
  // An id we no longer know lost the race against completion -- the
  // client's PlanDone is already in flight. Another session's plan is not
  // this client's to cancel.
  if (It == Plans.end() || It->second->Owner.get() != S.get())
    return;
  It->second->Exec->cancel();
}

void HaloDaemon::cancelSessionPlansLocked(const ServeSession &S) {
  for (auto &Entry : Plans)
    if (Entry.second->Owner.get() == &S)
      Entry.second->Exec->cancel();
}

//===----------------------------------------------------------------------===//
// Scheduler
//===----------------------------------------------------------------------===//

void HaloDaemon::finalizeFinishedLocked() {
  for (auto It = Plans.begin(); It != Plans.end();) {
    PlanState &P = *It->second;
    if (!P.Exec->finished()) {
      ++It;
      continue;
    }
    if (!P.DoneSent) {
      PlanDoneMsg Done;
      Done.PlanId = P.Id;
      if (P.Exec->failed()) {
        Done.Status = PlanStatus::Failed;
        Done.Message = P.Exec->failureMessage();
        PlansFailed.fetch_add(1, std::memory_order_relaxed);
      } else if (P.Exec->cancelled()) {
        Done.Status = PlanStatus::Cancelled;
        PlansCancelled.fetch_add(1, std::memory_order_relaxed);
      } else {
        Done.Status = PlanStatus::Ok;
        PlansCompleted.fetch_add(1, std::memory_order_relaxed);
      }
      P.Owner->send(MsgType::PlanDone, encodePlanDone(Done));
      P.DoneSent = true;
    }
    It = Plans.erase(It);
  }
  QueueCv.notify_all();
}

void HaloDaemon::schedulerMain() {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    SchedulerCv.wait(Lock, [&] { return ShuttingDown || !Plans.empty(); });
    if (Plans.empty()) {
      if (ShuttingDown)
        return;
      continue;
    }

    // Assemble one bounded batch, visiting sessions round-robin and
    // claiming at most one task per session per rotation -- fairness is
    // per client, not per plan, so one client's queue depth does not buy
    // it pool share. Within a session, plans run in submission order
    // (the map iterates by ascending id).
    const size_t Cap = Config.MaxBatchTasks
                           ? Config.MaxBatchTasks
                           : 2 * static_cast<size_t>(Pool->workers());
    std::vector<std::pair<PlanExecution *, size_t>> Batch;
    bool Progress = true;
    while (Progress && Batch.size() < Cap && !Sessions.empty()) {
      Progress = false;
      for (size_t K = 0; K < Sessions.size() && Batch.size() < Cap; ++K) {
        ServeSession *Sess =
            Sessions[(RrCursor + K) % Sessions.size()].get();
        for (auto &Entry : Plans) {
          if (Entry.second->Owner.get() != Sess)
            continue;
          if (std::optional<size_t> T = Entry.second->Exec->next()) {
            Batch.emplace_back(Entry.second->Exec.get(), *T);
            Progress = true;
            break;
          }
        }
      }
    }
    if (!Sessions.empty())
      RrCursor = (RrCursor + 1) % Sessions.size();

    if (Batch.empty()) {
      // Nothing claimable and nothing in flight: every remaining plan is
      // finished (completed, cancelled, or failed). Finalize; if plans
      // somehow remain, wait rather than spin.
      finalizeFinishedLocked();
      if (!Plans.empty())
        SchedulerCv.wait(Lock);
      continue;
    }

    // Run the batch off-lock. Tasks from different plans (and different
    // stages of different plans) interleave freely; determinism holds
    // because every task's output is a function of its key alone. A
    // throwing task already marked its plan failed inside run() -- the
    // catch keeps one plan's failure from abandoning the batch's other
    // plans (which Executor's own exception path would do).
    Lock.unlock();
    if (Batch.size() < static_cast<size_t>(Pool->workers())) {
      // Too few tasks to fill the pool: walk them here and hand the pool
      // to the work that can use it internally (artifact grouping, trace
      // sharding) -- the same axis choice runPlan makes.
      for (const std::pair<PlanExecution *, size_t> &T : Batch) {
        try {
          T.first->run(T.second, Pool.get());
        } catch (...) {
        }
      }
    } else {
      Pool->parallelFor(Batch.size(), [&](size_t I) {
        try {
          Batch[I].first->run(Batch[I].second, nullptr);
        } catch (...) {
        }
      });
    }
    TasksExecuted.fetch_add(Batch.size(), std::memory_order_relaxed);
    Lock.lock();

    finalizeFinishedLocked();
  }
}
