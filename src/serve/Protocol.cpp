//===- serve/Protocol.cpp - The halo serve wire protocol ---------------------===//

#include "serve/Protocol.h"

#include "support/Socket.h"

#include <cstring>

using namespace halo;

//===----------------------------------------------------------------------===//
// Frames
//===----------------------------------------------------------------------===//

namespace {

constexpr size_t FrameHeaderBytes = 4 + 1 + 4;

bool knownType(uint8_t Type) {
  return Type >= static_cast<uint8_t>(MsgType::Hello) &&
         Type <= static_cast<uint8_t>(MsgType::Error);
}

} // namespace

void halo::writeFrame(Socket &S, MsgType Type,
                      const std::vector<uint8_t> &Payload) {
  if (Payload.size() > MaxFramePayload)
    throw ProtocolError("frame payload too large to send");
  BinaryWriter W;
  W.u32(ServeFrameMagic);
  W.u8(static_cast<uint8_t>(Type));
  W.u32(static_cast<uint32_t>(Payload.size()));
  W.bytes(Payload.data(), Payload.size());
  // One send per frame: concurrent writers (result-streaming tasks and
  // the reader's replies share a session socket) interleave whole frames,
  // never bytes, as long as each holds the session's write lock.
  S.sendAll(W.buffer().data(), W.size());
}

std::optional<Frame> halo::readFrame(Socket &S) {
  uint8_t Header[FrameHeaderBytes];
  size_t Got = S.recvFully(Header, sizeof(Header));
  if (Got == 0)
    return std::nullopt; // Clean close at a frame boundary.
  if (Got < sizeof(Header))
    throw ProtocolError("truncated frame header");
  BinaryReader R(Header, sizeof(Header));
  if (R.u32() != ServeFrameMagic)
    throw ProtocolError("bad frame magic");
  uint8_t Type = R.u8();
  if (!knownType(Type))
    throw ProtocolError("unknown frame type " + std::to_string(Type));
  uint32_t Size = R.u32();
  if (Size > MaxFramePayload)
    throw ProtocolError("frame payload of " + std::to_string(Size) +
                        " bytes exceeds the protocol bound");
  Frame F;
  F.Type = static_cast<MsgType>(Type);
  F.Payload.resize(Size);
  if (Size && S.recvFully(F.Payload.data(), Size) < Size)
    throw ProtocolError("truncated frame payload");
  return F;
}

//===----------------------------------------------------------------------===//
// Payload helpers
//===----------------------------------------------------------------------===//

namespace {

/// Counts on the wire are bounded well above any real plan: a decoder
/// must never let a hostile length allocate unbounded memory.
constexpr uint64_t MaxWireCount = 1u << 16;

uint64_t boundedCount(BinaryReader &R, const char *What) {
  uint64_t N = R.varint();
  if (N > MaxWireCount)
    throw ProtocolError(std::string(What) + " count " + std::to_string(N) +
                        " exceeds the protocol bound");
  return N;
}

AllocatorKind kindFromWire(uint8_t V) {
  if (V > static_cast<uint8_t>(AllocatorKind::HaloInstrumentedOnly))
    throw ProtocolError("allocator kind " + std::to_string(V) +
                        " out of domain");
  return static_cast<AllocatorKind>(V);
}

Scale scaleFromWire(uint8_t V) {
  if (V > 1)
    throw ProtocolError("scale " + std::to_string(V) + " out of domain");
  return static_cast<Scale>(V);
}

void encodeMetrics(BinaryWriter &W, const RunMetrics &M) {
  W.f64(M.Seconds);
  W.u64(M.Cycles);
  W.u64(M.Mem.Accesses);
  W.u64(M.Mem.L1Misses);
  W.u64(M.Mem.L2Misses);
  W.u64(M.Mem.L3Misses);
  W.u64(M.Mem.TlbMisses);
  W.u64(M.Mem.StallCycles);
  W.u64(M.Events.Calls);
  W.u64(M.Events.Allocs);
  W.u64(M.Events.Frees);
  W.u64(M.Events.Loads);
  W.u64(M.Events.Stores);
  W.u64(M.InstrumentationOps);
  W.u64(M.Frag.PeakResident);
  W.u64(M.Frag.LiveAtPeak);
  W.u64(M.GroupedAllocs);
  W.u64(M.ForwardedAllocs);
}

RunMetrics decodeMetrics(BinaryReader &R) {
  RunMetrics M;
  M.Seconds = R.f64();
  M.Cycles = R.u64();
  M.Mem.Accesses = R.u64();
  M.Mem.L1Misses = R.u64();
  M.Mem.L2Misses = R.u64();
  M.Mem.L3Misses = R.u64();
  M.Mem.TlbMisses = R.u64();
  M.Mem.StallCycles = R.u64();
  M.Events.Calls = R.u64();
  M.Events.Allocs = R.u64();
  M.Events.Frees = R.u64();
  M.Events.Loads = R.u64();
  M.Events.Stores = R.u64();
  M.InstrumentationOps = R.u64();
  M.Frag.PeakResident = R.u64();
  M.Frag.LiveAtPeak = R.u64();
  M.GroupedAllocs = R.u64();
  M.ForwardedAllocs = R.u64();
  return M;
}

/// Decoders translate SerializationError (bounds-checked reads) into the
/// protocol's own error type so callers catch exactly one thing.
template <typename FnT> auto decoding(const char *What, FnT Fn) {
  try {
    return Fn();
  } catch (const SerializationError &E) {
    throw ProtocolError(std::string(What) + ": " + E.what());
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// PlanRequest
//===----------------------------------------------------------------------===//

std::vector<uint8_t> halo::encodePlanRequest(const PlanRequest &R) {
  BinaryWriter W;
  W.varint(R.Benchmarks.size());
  for (const std::string &Name : R.Benchmarks)
    W.str(Name);
  W.varint(R.Machines.size());
  for (const std::string &Name : R.Machines)
    W.str(Name);
  W.varint(R.Kinds.size());
  for (AllocatorKind Kind : R.Kinds)
    W.u8(static_cast<uint8_t>(Kind));
  W.u8(static_cast<uint8_t>(R.S));
  W.varint(static_cast<uint64_t>(R.Trials));
  W.u64(R.SeedBase);
  return W.take();
}

PlanRequest halo::decodePlanRequest(const std::vector<uint8_t> &Payload) {
  return decoding("SubmitPlan", [&] {
    BinaryReader R(Payload);
    PlanRequest Req;
    uint64_t N = boundedCount(R, "benchmark");
    Req.Benchmarks.reserve(N);
    for (uint64_t I = 0; I < N; ++I)
      Req.Benchmarks.push_back(R.str());
    N = boundedCount(R, "machine");
    Req.Machines.reserve(N);
    for (uint64_t I = 0; I < N; ++I)
      Req.Machines.push_back(R.str());
    N = boundedCount(R, "kind");
    Req.Kinds.clear();
    for (uint64_t I = 0; I < N; ++I)
      Req.Kinds.push_back(kindFromWire(R.u8()));
    Req.S = scaleFromWire(R.u8());
    uint64_t Trials = R.varint();
    if (Trials < 1 || Trials > MaxWireCount)
      throw ProtocolError("trials " + std::to_string(Trials) +
                          " out of domain");
    Req.Trials = static_cast<int>(Trials);
    Req.SeedBase = R.u64();
    R.expectEnd("SubmitPlan");
    return Req;
  });
}

//===----------------------------------------------------------------------===//
// CellResult
//===----------------------------------------------------------------------===//

std::vector<uint8_t> halo::encodeCellResult(const CellResultMsg &M) {
  BinaryWriter W;
  W.u64(M.PlanId);
  W.u64(M.CellIndex);
  W.str(M.Key.Benchmark);
  W.str(M.Key.Machine);
  W.u8(static_cast<uint8_t>(M.Key.Kind));
  W.u8(static_cast<uint8_t>(M.Key.S));
  W.u64(M.Key.SeedBase);
  W.varint(static_cast<uint64_t>(M.Key.Trials));
  W.varint(M.Runs.size());
  for (const RunMetrics &Run : M.Runs)
    encodeMetrics(W, Run);
  return W.take();
}

CellResultMsg halo::decodeCellResult(const std::vector<uint8_t> &Payload) {
  return decoding("CellResult", [&] {
    BinaryReader R(Payload);
    CellResultMsg M;
    M.PlanId = R.u64();
    M.CellIndex = R.u64();
    M.Key.Benchmark = R.str();
    M.Key.Machine = R.str();
    M.Key.Kind = kindFromWire(R.u8());
    M.Key.S = scaleFromWire(R.u8());
    M.Key.SeedBase = R.u64();
    uint64_t Trials = R.varint();
    if (Trials > MaxWireCount)
      throw ProtocolError("trials out of domain");
    M.Key.Trials = static_cast<int>(Trials);
    uint64_t N = boundedCount(R, "run");
    M.Runs.reserve(N);
    for (uint64_t I = 0; I < N; ++I)
      M.Runs.push_back(decodeMetrics(R));
    R.expectEnd("CellResult");
    return M;
  });
}

//===----------------------------------------------------------------------===//
// Stats and the small fixed payloads
//===----------------------------------------------------------------------===//

std::vector<uint8_t> halo::encodeStatsReply(const DaemonStats &S) {
  BinaryWriter W;
  W.u64(S.ActiveSessions);
  W.u64(S.SessionsServed);
  W.u64(S.PlansSubmitted);
  W.u64(S.PlansCompleted);
  W.u64(S.PlansCancelled);
  W.u64(S.PlansFailed);
  W.u64(S.CellsStreamed);
  W.u64(S.TasksExecuted);
  W.u64(S.Workers);
  W.u64(S.WarmBenchmarks);
  W.u8(S.HasStore ? 1 : 0);
  return W.take();
}

DaemonStats halo::decodeStatsReply(const std::vector<uint8_t> &Payload) {
  return decoding("StatsReply", [&] {
    BinaryReader R(Payload);
    DaemonStats S;
    S.ActiveSessions = R.u64();
    S.SessionsServed = R.u64();
    S.PlansSubmitted = R.u64();
    S.PlansCompleted = R.u64();
    S.PlansCancelled = R.u64();
    S.PlansFailed = R.u64();
    S.CellsStreamed = R.u64();
    S.TasksExecuted = R.u64();
    S.Workers = R.u64();
    S.WarmBenchmarks = R.u64();
    S.HasStore = R.u8() != 0;
    R.expectEnd("StatsReply");
    return S;
  });
}

std::vector<uint8_t> halo::encodeHello(uint32_t Version) {
  BinaryWriter W;
  W.u32(Version);
  return W.take();
}

uint32_t halo::decodeHello(const std::vector<uint8_t> &Payload) {
  return decoding("Hello", [&] {
    BinaryReader R(Payload);
    uint32_t Version = R.u32();
    R.expectEnd("Hello");
    return Version;
  });
}

std::vector<uint8_t> halo::encodeHelloAck(const HelloAckMsg &M) {
  BinaryWriter W;
  W.u32(M.Version);
  W.u64(M.Workers);
  W.u8(M.HasStore ? 1 : 0);
  return W.take();
}

HelloAckMsg halo::decodeHelloAck(const std::vector<uint8_t> &Payload) {
  return decoding("HelloAck", [&] {
    BinaryReader R(Payload);
    HelloAckMsg M;
    M.Version = R.u32();
    M.Workers = R.u64();
    M.HasStore = R.u8() != 0;
    R.expectEnd("HelloAck");
    return M;
  });
}

std::vector<uint8_t> halo::encodePlanQueued(const PlanQueuedMsg &M) {
  BinaryWriter W;
  W.u64(M.PlanId);
  W.varint(M.NumCells);
  W.varint(M.NumReplays);
  return W.take();
}

PlanQueuedMsg halo::decodePlanQueued(const std::vector<uint8_t> &Payload) {
  return decoding("PlanQueued", [&] {
    BinaryReader R(Payload);
    PlanQueuedMsg M;
    M.PlanId = R.u64();
    M.NumCells = R.varint();
    M.NumReplays = R.varint();
    R.expectEnd("PlanQueued");
    return M;
  });
}

std::vector<uint8_t> halo::encodePlanDone(const PlanDoneMsg &M) {
  BinaryWriter W;
  W.u64(M.PlanId);
  W.u8(static_cast<uint8_t>(M.Status));
  W.str(M.Message);
  return W.take();
}

PlanDoneMsg halo::decodePlanDone(const std::vector<uint8_t> &Payload) {
  return decoding("PlanDone", [&] {
    BinaryReader R(Payload);
    PlanDoneMsg M;
    M.PlanId = R.u64();
    uint8_t Status = R.u8();
    if (Status > static_cast<uint8_t>(PlanStatus::Failed))
      throw ProtocolError("plan status " + std::to_string(Status) +
                          " out of domain");
    M.Status = static_cast<PlanStatus>(Status);
    M.Message = R.str();
    R.expectEnd("PlanDone");
    return M;
  });
}

std::vector<uint8_t> halo::encodeCancel(uint64_t PlanId) {
  BinaryWriter W;
  W.u64(PlanId);
  return W.take();
}

uint64_t halo::decodeCancel(const std::vector<uint8_t> &Payload) {
  return decoding("Cancel", [&] {
    BinaryReader R(Payload);
    uint64_t PlanId = R.u64();
    R.expectEnd("Cancel");
    return PlanId;
  });
}

std::vector<uint8_t> halo::encodeError(const ErrorMsg &M) {
  BinaryWriter W;
  W.u64(M.PlanId);
  W.str(M.Message);
  return W.take();
}

ErrorMsg halo::decodeError(const std::vector<uint8_t> &Payload) {
  return decoding("Error", [&] {
    BinaryReader R(Payload);
    ErrorMsg M;
    M.PlanId = R.u64();
    M.Message = R.str();
    R.expectEnd("Error");
    return M;
  });
}
