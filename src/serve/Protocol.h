//===- serve/Protocol.h - The halo serve wire protocol ----------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned binary protocol between `halo_cli serve` (serve/Server.h)
/// and its clients (serve/Client.h), framed over a Unix-domain socket
/// (support/Socket.h) and encoded with the tree's one wire format
/// (support/BinaryIO.h).
///
/// Every message is one frame:
///
///     u32 magic 'HSRV' | u8 type | u32 payload bytes | payload
///
/// fixed ints little-endian like every other serialized artifact. The
/// reader validates magic, type, and length (bounded by MaxFramePayload)
/// before touching the payload, and every payload decoder is
/// bounds-checked end to end -- a malformed or truncated frame surfaces as
/// ProtocolError, never UB and never a daemon exit.
///
/// The conversation:
///
///     client                                server
///     ------                                ------
///     Hello {version}          ->
///                              <-  HelloAck {version, workers, store}
///     SubmitPlan {request}     ->
///                              <-  PlanQueued {plan, cells, replays}
///                              <-  CellResult {plan, cell, key, runs}
///                              <-  CellResult ...   (as replays finish)
///     Cancel {plan}            ->          (optional, any time)
///                              <-  PlanDone {plan, status, message}
///     Stats {}                 ->
///                              <-  StatsReply {counters}
///     Shutdown {}              ->
///                              <-  ShutdownAck {}
///                              <-  Error {plan | 0, message}  (any time)
///
/// A PlanRequest is the wire form of an ExperimentSpec: benchmark names,
/// machine *preset* names, kinds, scale, trials, seed base. Setups are
/// not transported -- the daemon measures every benchmark under
/// paperSetup(), which is exactly what makes "served = local" checkable:
/// the same names must produce byte-identical results either way.
/// RunMetrics cross the wire with every double as its bit pattern, so
/// streamed cells reassemble bit-identical to the daemon's ResultSet.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SERVE_PROTOCOL_H
#define HALO_SERVE_PROTOCOL_H

#include "eval/Experiment.h"
#include "support/BinaryIO.h"

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace halo {

class Socket;

/// Bumped on any frame or payload layout change; the handshake rejects a
/// mismatch before anything else is decoded.
constexpr uint32_t ServeProtocolVersion = 1;

/// 'HSRV' little-endian: the first four bytes of every frame.
constexpr uint32_t ServeFrameMagic = 0x56525348u;

/// Frames above this are rejected unread. Plans and cells are small
/// (names and per-trial metrics, never traces), so the bound is generous.
constexpr uint32_t MaxFramePayload = 16u << 20;

/// Thrown on any malformed frame or payload: bad magic, unknown type,
/// oversized or truncated frame, out-of-domain field. Both ends treat it
/// as "this conversation is broken", never as a reason to crash.
class ProtocolError : public std::runtime_error {
public:
  explicit ProtocolError(const std::string &What)
      : std::runtime_error(What) {}
};

enum class MsgType : uint8_t {
  Hello = 1,
  HelloAck = 2,
  SubmitPlan = 3,
  PlanQueued = 4,
  CellResult = 5,
  PlanDone = 6,
  Cancel = 7,
  Stats = 8,
  StatsReply = 9,
  Shutdown = 10,
  ShutdownAck = 11,
  Error = 12,
};

/// How a plan ended, in its PlanDone frame.
enum class PlanStatus : uint8_t {
  Ok = 0,        ///< Every cell ran and streamed.
  Cancelled = 1, ///< Cancel arrived first; cells already streamed stand.
  Failed = 2,    ///< A task threw; the message carries the first error.
};

/// One decoded frame.
struct Frame {
  MsgType Type = MsgType::Error;
  std::vector<uint8_t> Payload;
};

/// Sends one frame (header + payload, a single sendAll).
void writeFrame(Socket &S, MsgType Type, const std::vector<uint8_t> &Payload);

/// Reads one frame; std::nullopt if the peer closed cleanly at a frame
/// boundary. Throws ProtocolError on bad magic, unknown type, a length
/// above MaxFramePayload, or a mid-frame close.
std::optional<Frame> readFrame(Socket &S);

//===----------------------------------------------------------------------===//
// Payloads
//===----------------------------------------------------------------------===//

/// The wire form of an ExperimentSpec (see the file comment for why the
/// setup stays implicit). Decoding validates every field's domain.
struct PlanRequest {
  std::vector<std::string> Benchmarks;
  std::vector<std::string> Machines; ///< Preset names; empty = setup machine.
  std::vector<AllocatorKind> Kinds = {AllocatorKind::Jemalloc,
                                      AllocatorKind::Hds,
                                      AllocatorKind::Halo};
  Scale S = Scale::Ref;
  int Trials = 3;
  uint64_t SeedBase = 100;
};

std::vector<uint8_t> encodePlanRequest(const PlanRequest &R);
PlanRequest decodePlanRequest(const std::vector<uint8_t> &Payload);

/// One finished cell, streamed as its last trial completes.
struct CellResultMsg {
  uint64_t PlanId = 0;
  uint64_t CellIndex = 0; ///< Position in the plan's cell order.
  MeasurementKey Key;
  std::vector<RunMetrics> Runs;
};

std::vector<uint8_t> encodeCellResult(const CellResultMsg &M);
CellResultMsg decodeCellResult(const std::vector<uint8_t> &Payload);

/// The daemon's counters, for `halo_cli client stats`.
struct DaemonStats {
  uint64_t ActiveSessions = 0;
  uint64_t SessionsServed = 0;
  uint64_t PlansSubmitted = 0;
  uint64_t PlansCompleted = 0;
  uint64_t PlansCancelled = 0;
  uint64_t PlansFailed = 0;
  uint64_t CellsStreamed = 0;
  uint64_t TasksExecuted = 0;
  uint64_t Workers = 0;
  uint64_t WarmBenchmarks = 0; ///< Evaluations held warm across requests.
  bool HasStore = false;
};

std::vector<uint8_t> encodeStatsReply(const DaemonStats &S);
DaemonStats decodeStatsReply(const std::vector<uint8_t> &Payload);

// Small payloads, spelled out so both ends share one encoding.
std::vector<uint8_t> encodeHello(uint32_t Version);
uint32_t decodeHello(const std::vector<uint8_t> &Payload);

struct HelloAckMsg {
  uint32_t Version = ServeProtocolVersion;
  uint64_t Workers = 0;
  bool HasStore = false;
};
std::vector<uint8_t> encodeHelloAck(const HelloAckMsg &M);
HelloAckMsg decodeHelloAck(const std::vector<uint8_t> &Payload);

struct PlanQueuedMsg {
  uint64_t PlanId = 0;
  uint64_t NumCells = 0;
  uint64_t NumReplays = 0;
};
std::vector<uint8_t> encodePlanQueued(const PlanQueuedMsg &M);
PlanQueuedMsg decodePlanQueued(const std::vector<uint8_t> &Payload);

struct PlanDoneMsg {
  uint64_t PlanId = 0;
  PlanStatus Status = PlanStatus::Ok;
  std::string Message; ///< Failure text; empty for Ok/Cancelled.
};
std::vector<uint8_t> encodePlanDone(const PlanDoneMsg &M);
PlanDoneMsg decodePlanDone(const std::vector<uint8_t> &Payload);

std::vector<uint8_t> encodeCancel(uint64_t PlanId);
uint64_t decodeCancel(const std::vector<uint8_t> &Payload);

struct ErrorMsg {
  uint64_t PlanId = 0; ///< 0 = not about a specific plan.
  std::string Message;
};
std::vector<uint8_t> encodeError(const ErrorMsg &M);
ErrorMsg decodeError(const std::vector<uint8_t> &Payload);

} // namespace halo

#endif // HALO_SERVE_PROTOCOL_H
