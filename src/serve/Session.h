//===- serve/Session.h - One daemon-side client connection ------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One accepted connection as the daemon (serve/Server.h) sees it: the
/// socket, the single write path every daemon thread funnels through, and
/// the liveness flag that turns "peer went away" into silently dropped
/// frames instead of errors racing through the scheduler.
///
/// Exactly one thread reads from a session (its reader loop, owned by the
/// daemon); any thread may write -- the scheduler's workers stream
/// CellResult frames while the reader answers Stats -- so send() serialises
/// writers on a per-session mutex and writes each frame with one sendAll,
/// keeping frames from distinct threads whole on the wire.
///
/// Lock order: a sender may hold the daemon's state mutex when calling
/// send(); nothing here calls back into the daemon, so WriteMutex is
/// always innermost.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SERVE_SESSION_H
#define HALO_SERVE_SESSION_H

#include "serve/Protocol.h"
#include "support/Socket.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace halo {

/// Daemon-side state of one client connection. Owned by shared_ptr: the
/// accept loop, the reader thread, and every queued plan hold references,
/// and the last one out closes the socket.
class ServeSession {
public:
  ServeSession(uint64_t Id, Socket Conn) : Id(Id), Conn(std::move(Conn)) {}

  uint64_t id() const { return Id; }

  /// The reader loop's socket. Only the reader thread may read from it.
  Socket &socket() { return Conn; }

  /// Sends one frame, serialised against other senders. Returns false --
  /// and marks the session dead -- if the peer is gone; a result stream
  /// whose client vanished must not take the daemon down with it.
  bool send(MsgType Type, const std::vector<uint8_t> &Payload);

  /// Convenience for the protocol's error frame.
  bool sendError(uint64_t PlanId, const std::string &Message);

  /// True until the peer disconnects (or a send to it fails).
  bool alive() const { return Alive.load(std::memory_order_acquire); }

  /// Marks the session dead: subsequent send() calls drop their frames.
  void markDead() { Alive.store(false, std::memory_order_release); }

  /// Wakes a reader blocked in recv with end-of-stream (shutdown without
  /// close, so the reader thread still owns a valid descriptor).
  void wakeReader() { Conn.shutdownBoth(); }

  /// Set by the reader thread as it exits; the accept loop reaps (joins)
  /// sessions with this flag set.
  bool readerDone() const { return Done.load(std::memory_order_acquire); }
  void markReaderDone() { Done.store(true, std::memory_order_release); }

  /// The reader thread itself, owned here so the daemon can join it.
  std::thread Reader;

private:
  uint64_t Id = 0;
  Socket Conn;
  std::mutex WriteMutex;
  std::atomic<bool> Alive{true};
  std::atomic<bool> Done{false};
};

} // namespace halo

#endif // HALO_SERVE_SESSION_H
