//===- serve/Server.h - The halo serve daemon -------------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `halo_cli serve`: a daemon that keeps one Executor pool, one open
/// ArtifactStore, and every benchmark Evaluation it has ever measured warm
/// across requests, and serves ExperimentSpec-shaped plans to concurrent
/// clients over the serve/Protocol.h wire format on a Unix-domain socket.
///
/// A local `runPlan` pays the whole pipeline on every invocation: record
/// the profile trace, materialise artifacts, record the measurement
/// traces, replay. The daemon pays each of those once per benchmark and
/// then answers every later plan from its warm caches -- the process-level
/// analogue of what the artifact store does on disk -- while the
/// per-cell completion hook (CellCompletionFn) streams results back the
/// moment each cell's last trial lands.
///
/// Scheduling: one scheduler thread multiplexes every in-flight plan onto
/// the one pool. Each round it assembles a bounded batch by visiting
/// sessions round-robin -- one claimable task per session per rotation --
/// so a client submitting a 100-cell sweep cannot starve one running a
/// single cell; the batch cap keeps cancellation responsive (a Cancel
/// takes effect at the next batch boundary). Plan admission is bounded
/// too: past MaxQueuedPlans, submitting readers block (backpressure on
/// that client alone) until a plan retires.
///
/// Determinism ("served = local", README): a plan's results are a
/// function of its cell keys only -- every interleaving of PlanExecution
/// tasks yields bit-identical RunMetrics, and warm caches hold exactly
/// what a cold run would recompute -- so the cells streamed to a client
/// reassemble byte-identical to a local runPlan of the same spec,
/// regardless of what else the daemon is serving.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SERVE_SERVER_H
#define HALO_SERVE_SERVER_H

#include "eval/Experiment.h"
#include "serve/Protocol.h"
#include "serve/Session.h"
#include "store/ArtifactStore.h"
#include "support/Executor.h"
#include "support/Socket.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace halo {

/// Everything `halo_cli serve` configures.
struct DaemonConfig {
  std::string SocketPath;
  /// Pool size, as resolveJobs() interprets it (0 = HALO_JOBS / hardware).
  int Jobs = 0;
  /// Artifact store directory; empty = serve without a store.
  std::string StoreDir;
  /// Trace mode for every plan (clients do not choose; the daemon's
  /// memory budget is the daemon's to manage).
  TraceMode Traces = TraceMode::Auto;
  /// Plans admitted before submitting readers block (backpressure).
  size_t MaxQueuedPlans = 4;
  /// Tasks per scheduler batch; 0 = twice the pool's workers. Smaller
  /// batches react to Cancel faster, larger ones amortise scheduling.
  size_t MaxBatchTasks = 0;
};

/// The daemon. Construct, then serve() until a client sends Shutdown (or
/// requestShutdown() is called from another thread); serve() returns 0
/// after draining in-flight plans, joining every thread, and unlinking
/// the socket path.
///
/// Lock order (strict, outermost first): daemon Mu -> PlanExecution's
/// internal mutex -> ServeSession::WriteMutex. EvalsMu is leaf-only and
/// never held together with Mu.
class HaloDaemon {
public:
  explicit HaloDaemon(DaemonConfig Config);
  ~HaloDaemon();

  HaloDaemon(const HaloDaemon &) = delete;
  HaloDaemon &operator=(const HaloDaemon &) = delete;

  /// Binds the socket and serves until shutdown. Throws std::runtime_error
  /// if the socket cannot be bound (e.g. the path already exists).
  int serve();

  /// Asks a running serve() to wind down (idempotent, callable from any
  /// thread): stop accepting, reject new plans, drain in-flight ones.
  void requestShutdown();

  /// A snapshot of the counters behind `halo_cli client stats`.
  DaemonStats currentStats() const;

private:
  /// One admitted plan. Held by unique_ptr so Plan never moves after Exec
  /// binds to it (PlanExecution keeps references into the plan).
  struct PlanState {
    uint64_t Id = 0;
    std::shared_ptr<ServeSession> Owner;
    ExperimentPlan Plan;
    std::unique_ptr<PlanExecution> Exec;
    bool DoneSent = false;
  };

  void readerMain(std::shared_ptr<ServeSession> S);
  void handleSubmit(const std::shared_ptr<ServeSession> &S,
                    const PlanRequest &R);
  void handleCancel(const std::shared_ptr<ServeSession> &S, uint64_t PlanId);
  void schedulerMain();
  /// Sends PlanDone for and erases every finished plan. Caller holds Mu.
  void finalizeFinishedLocked();
  /// Cancels every plan owned by \p S (its peer is gone). Caller holds Mu.
  void cancelSessionPlansLocked(const ServeSession &S);

  DaemonConfig Config;
  std::unique_ptr<Executor> Pool;
  std::unique_ptr<ArtifactStore> Store;

  /// The warm benchmark cache: one Evaluation per benchmark name, created
  /// on first use, passed to every buildPlan as an external instance so
  /// its traces and artifacts persist across plans and clients. Guarded
  /// by EvalsMu (creation only; the Evaluations themselves synchronise
  /// their caches internally).
  mutable std::mutex EvalsMu;
  std::map<std::string, std::unique_ptr<Evaluation>> Evals;

  mutable std::mutex Mu;
  std::condition_variable SchedulerCv; ///< Plans queued, or shutting down.
  std::condition_variable QueueCv;     ///< A plan retired (backpressure).
  std::vector<std::shared_ptr<ServeSession>> Sessions;
  size_t RrCursor = 0; ///< Round-robin start position over Sessions.
  std::map<uint64_t, std::unique_ptr<PlanState>> Plans; ///< By plan id.
  uint64_t NextSessionId = 1;
  uint64_t NextPlanId = 1;
  bool ShuttingDown = false;

  Socket Listener;
  std::thread Scheduler;

  std::atomic<uint64_t> SessionsServed{0};
  std::atomic<uint64_t> PlansSubmitted{0};
  std::atomic<uint64_t> PlansCompleted{0};
  std::atomic<uint64_t> PlansCancelled{0};
  std::atomic<uint64_t> PlansFailed{0};
  std::atomic<uint64_t> CellsStreamed{0};
  std::atomic<uint64_t> TasksExecuted{0};
};

} // namespace halo

#endif // HALO_SERVE_SERVER_H
