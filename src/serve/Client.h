//===- serve/Client.h - Client side of halo serve ---------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synchronous client behind `halo_cli client ...`: connect and
/// handshake in the constructor, submit() a PlanRequest, then wait() for
/// its cells to stream in (invoking a callback per cell, for progressive
/// output) until the daemon's PlanDone. cancel() may be issued any time
/// -- including from inside the wait() callback, the socket is full
/// duplex -- and turns the eventual PlanDone into Cancelled.
///
/// wait() reassembles the streamed cells into a ResultSet ordered by the
/// daemon's plan cell order; for a completed plan that set is
/// byte-identical (through writeExperimentsJson) to a local runPlan of
/// the same spec -- the "served = local" contract tests/serve_test.cpp
/// holds.
///
/// One thread per client: the class is not thread-safe, and every call
/// runs on the caller's thread (no background reader).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SERVE_CLIENT_H
#define HALO_SERVE_CLIENT_H

#include "eval/Experiment.h"
#include "serve/Protocol.h"
#include "support/Socket.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace halo {

/// How one served plan ended, with everything that streamed back.
struct PlanOutcome {
  PlanStatus Status = PlanStatus::Ok;
  std::string Message; ///< Failure text from the daemon; else empty.
  /// The streamed cells, ordered by plan cell index. Complete for Ok;
  /// cancelled/failed plans keep whatever cells finished in time.
  /// Machine pointers are resolved against this process's presets and
  /// may be null for names it does not know.
  ResultSet Results;
  uint64_t CellsReceived = 0;
  uint64_t NumCells = 0; ///< What PlanQueued promised.
};

/// One connection to a halo serve daemon.
class HaloClient {
public:
  /// Connects to \p SocketPath and performs the version handshake.
  /// Throws std::runtime_error if the daemon is unreachable or answers
  /// with an Error (e.g. a version mismatch).
  explicit HaloClient(const std::string &SocketPath);

  /// The daemon's pool width and store presence, from the handshake.
  uint64_t serverWorkers() const { return Ack.Workers; }
  bool serverHasStore() const { return Ack.HasStore; }

  /// Submits \p R; returns the daemon-assigned plan id once PlanQueued
  /// arrives. Throws std::runtime_error if the daemon rejects the plan.
  uint64_t submit(const PlanRequest &R);

  /// Invoked by wait() as each cell arrives, before reassembly.
  using CellFn = std::function<void(const CellResultMsg &)>;

  /// Blocks until \p PlanId's PlanDone, collecting its cells (and
  /// invoking \p OnCell per arrival -- cancel() from inside the callback
  /// is allowed). Throws on protocol or connection errors.
  PlanOutcome wait(uint64_t PlanId, const CellFn &OnCell = nullptr);

  /// Asks the daemon to stop handing out further tasks of \p PlanId.
  /// Fire-and-forget: completion still arrives as PlanDone via wait().
  void cancel(uint64_t PlanId);

  /// Fetches the daemon's counters.
  DaemonStats stats();

  /// Asks the daemon to shut down; returns once ShutdownAck arrives.
  void shutdownServer();

private:
  /// Reads one frame; throws if the daemon hung up mid-conversation or
  /// sent a session-level Error.
  Frame readExpected();

  Socket Conn;
  HelloAckMsg Ack;
  /// NumCells per submitted plan, from PlanQueued, for PlanOutcome.
  std::map<uint64_t, uint64_t> PromisedCells;
  /// Frames for other plans that arrived while reading for one (several
  /// plans may be in flight on one connection).
  std::map<uint64_t, std::vector<CellResultMsg>> PendingCells;
  std::map<uint64_t, PlanDoneMsg> PendingDone;
};

} // namespace halo

#endif // HALO_SERVE_CLIENT_H
