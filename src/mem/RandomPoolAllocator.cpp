//===- mem/RandomPoolAllocator.cpp - Fig. 15 sensitivity probe ------------===//

#include "mem/RandomPoolAllocator.h"

#include <cassert>

using namespace halo;

RandomPoolAllocator::RandomPoolAllocator(Allocator &Backing, uint64_t Seed,
                                         uint64_t ArenaBase)
    : Backing(Backing), Arena(ArenaBase), Random(Seed) {}

uint64_t RandomPoolAllocator::allocate(const AllocRequest &Request) {
  uint64_t Size = Request.Size ? Request.Size : 1;
  if (Size >= VirtualArena::PageSize)
    return Backing.allocate(Request);

  Pool &P = Pools[Random.nextBelow(PoolCount)];
  uint64_t Aligned = (Size + MinAlign - 1) & ~(MinAlign - 1);
  if (P.Cursor + Aligned > P.End) {
    if (P.End != 0) {
      // Retire the old current chunk; free it if it already drained.
      auto It = Chunks.find(P.End - PoolChunkSize);
      assert(It != Chunks.end() && "pool chunk missing");
      It->second.Current = false;
      if (It->second.LiveRegions == 0) {
        Arena.release(It->first);
        Chunks.erase(It);
      }
    }
    P.Cursor = Arena.reserve(PoolChunkSize, PoolChunkSize);
    P.End = P.Cursor + PoolChunkSize;
    Chunks[P.Cursor] = ChunkState{0, true};
  }
  uint64_t Addr = P.Cursor;
  P.Cursor += Aligned;
  uint64_t ChunkBase = P.End - PoolChunkSize;
  ++Chunks[ChunkBase].LiveRegions;
  Arena.touch(Addr, Size);
  Regions.emplace(Addr, RegionInfo{Size, ChunkBase});
  Live += Size;
  return Addr;
}

void RandomPoolAllocator::deallocate(uint64_t Addr) {
  auto It = Regions.find(Addr);
  if (It == Regions.end()) {
    Backing.deallocate(Addr);
    return;
  }
  Live -= It->second.Size;
  auto Chunk = Chunks.find(It->second.ChunkBase);
  assert(Chunk != Chunks.end() && "region without chunk");
  assert(Chunk->second.LiveRegions > 0 && "double free in pool chunk");
  if (--Chunk->second.LiveRegions == 0 && !Chunk->second.Current) {
    Arena.release(Chunk->first);
    Chunks.erase(Chunk);
  }
  Regions.erase(It);
}

bool RandomPoolAllocator::owns(uint64_t Addr) const {
  return Regions.count(Addr) || Backing.owns(Addr);
}

uint64_t RandomPoolAllocator::usableSize(uint64_t Addr) const {
  auto It = Regions.find(Addr);
  if (It != Regions.end())
    return It->second.Size;
  return Backing.usableSize(Addr);
}

uint64_t RandomPoolAllocator::liveBytes() const {
  return Live + Backing.liveBytes();
}

uint64_t RandomPoolAllocator::residentBytes() const {
  return Arena.residentBytes() + Backing.residentBytes();
}
