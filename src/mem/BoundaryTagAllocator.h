//===- mem/BoundaryTagAllocator.h - ptmalloc-like baseline -----*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A boundary-tag allocator modelled on glibc's ptmalloc2: every chunk
/// carries a 16-byte inline header, freed chunks are recycled through
/// exact-size LIFO bins (fastbin-like) and a best-fit sorted bin with
/// splitting. The inline headers space payloads apart and splitting mixes
/// sizes in the address space, which is why the paper finds jemalloc a more
/// aggressive baseline ("reducing L1 data-cache misses by as much as 32%",
/// Section 5.1) -- bench/baseline_allocators reproduces that comparison.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_MEM_BOUNDARYTAGALLOCATOR_H
#define HALO_MEM_BOUNDARYTAGALLOCATOR_H

#include "mem/Allocator.h"
#include "mem/Arena.h"

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace halo {

/// ptmalloc2-like boundary-tag allocator over a simulated arena.
class BoundaryTagAllocator : public Allocator {
public:
  static constexpr uint64_t HeaderSize = 16;
  /// Chunks at most this large use exact-size LIFO bins.
  static constexpr uint64_t MaxFastChunk = 1040;

  explicit BoundaryTagAllocator(uint64_t ArenaBase = 0x20000000000ull);

  uint64_t allocate(const AllocRequest &Request) override;
  void deallocate(uint64_t Addr) override;
  bool owns(uint64_t Addr) const override;
  uint64_t usableSize(uint64_t Addr) const override;
  uint64_t liveBytes() const override { return Live; }
  uint64_t residentBytes() const override { return Arena.residentBytes(); }
  std::string name() const override { return "ptmalloc-sim"; }

  uint64_t liveCount() const { return LiveChunks.size(); }
  const VirtualArena &arena() const { return Arena; }

private:
  struct ChunkInfo {
    uint64_t ChunkSize; ///< Total size including the header.
    uint64_t Requested;
  };

  /// Rounds a request up to its chunk size (header + payload, 16-aligned).
  static uint64_t chunkSizeFor(uint64_t Size);
  /// Tries the bins; returns a chunk base (0 if none) and sets \p Granted to
  /// the actual chunk size handed out (>= Need when an unsplittable tail is
  /// absorbed).
  uint64_t takeFromBins(uint64_t Need, uint64_t &Granted);
  uint64_t extendHeap(uint64_t Need);
  void binChunk(uint64_t Base, uint64_t ChunkSize);

  VirtualArena Arena;
  uint64_t TopCursor = 0;
  uint64_t TopEnd = 0;
  /// Exact-size bins for small chunks, keyed by ChunkSize / 16.
  std::vector<std::vector<uint64_t>> FastBins;
  /// Best-fit sorted bin: chunk size -> bases.
  std::map<uint64_t, std::vector<uint64_t>> SortedBin;
  /// Live chunk bases (base = header address; payload = base + HeaderSize).
  std::unordered_map<uint64_t, ChunkInfo> LiveChunks;
  uint64_t Live = 0;
};

} // namespace halo

#endif // HALO_MEM_BOUNDARYTAGALLOCATOR_H
