//===- mem/Arena.cpp - Simulated demand-paged address space ---------------===//

#include "mem/Arena.h"

#include "support/Bits.h"

#include <cassert>

using namespace halo;

VirtualArena::VirtualArena(uint64_t Base) : Next(Base) {
  assert(Base % PageSize == 0 && "arena base must be page aligned");
}

uint64_t VirtualArena::reserve(uint64_t Size, uint64_t Align) {
  assert(Size > 0 && "cannot reserve zero bytes");
  assert(isPowerOfTwo(Align) && "alignment must be a power of two");
  if (Align < PageSize)
    Align = PageSize;
  // Round the cursor up to the requested alignment and the size up to whole
  // pages, mirroring mmap semantics.
  uint64_t Addr = (Next + Align - 1) & ~(Align - 1);
  uint64_t Span = (Size + PageSize - 1) & ~(PageSize - 1);
  Next = Addr + Span;
  Regions.emplace(Addr, Span);
  Reserved += Span;
  return Addr;
}

void VirtualArena::release(uint64_t Addr) {
  auto It = Regions.find(Addr);
  assert(It != Regions.end() && "releasing an unknown reservation");
  purge(It->first, It->second);
  Reserved -= It->second;
  Regions.erase(It);
}

void VirtualArena::touch(uint64_t Addr, uint64_t Size) {
  assert(covers(Addr, Size) && "touching unreserved memory");
  uint64_t First = Addr / PageSize;
  uint64_t Last = (Addr + (Size ? Size : 1) - 1) / PageSize;
  for (uint64_t Page = First; Page <= Last; ++Page)
    ResidentPages.insert(Page);
}

void VirtualArena::purge(uint64_t Addr, uint64_t Size) {
  if (Size == 0)
    return;
  // Only whole pages inside the range are dropped, like madvise(DONTNEED)
  // on a partially covering range.
  uint64_t First = (Addr + PageSize - 1) / PageSize;
  uint64_t End = (Addr + Size) / PageSize;
  for (uint64_t Page = First; Page < End; ++Page)
    ResidentPages.erase(Page);
}

bool VirtualArena::covers(uint64_t Addr, uint64_t Size) const {
  auto It = Regions.upper_bound(Addr);
  if (It == Regions.begin())
    return false;
  --It;
  return Addr >= It->first && Addr + Size <= It->first + It->second;
}
