//===- mem/SizeClassAllocator.h - jemalloc-like baseline -------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A size-segregated allocator modelled on jemalloc's small/large scheme.
/// Small requests are rounded up to one of a fixed set of size classes and
/// carved from per-class runs with a LIFO free list, so objects are
/// co-located based primarily on their size and the order in which they are
/// allocated -- exactly the behaviour the paper's Figure 1 illustrates and
/// that HALO sets out to specialise. This is the evaluation's default
/// allocator (jemalloc 5.1.0 in the paper).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_MEM_SIZECLASSALLOCATOR_H
#define HALO_MEM_SIZECLASSALLOCATOR_H

#include "mem/Allocator.h"
#include "mem/Arena.h"

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace halo {

/// jemalloc-like size-segregated allocator over a simulated arena.
class SizeClassAllocator : public Allocator {
public:
  /// Largest size handled by a size class; larger requests are page-rounded
  /// reservations of their own ("large" allocations).
  static constexpr uint64_t MaxSmall = 16384;

  explicit SizeClassAllocator(uint64_t ArenaBase = 0x10000000000ull);

  uint64_t allocate(const AllocRequest &Request) override;
  void deallocate(uint64_t Addr) override;
  bool owns(uint64_t Addr) const override;
  uint64_t usableSize(uint64_t Addr) const override;
  uint64_t liveBytes() const override { return Live; }
  uint64_t residentBytes() const override { return Arena.residentBytes(); }
  std::string name() const override { return "jemalloc-sim"; }

  /// Returns the size class (rounded-up size) a request of \p Size maps to.
  /// Exposed for tests and for the Fig. 1 example.
  uint64_t sizeClassFor(uint64_t Size) const;

  /// Number of live allocations (for tests).
  uint64_t liveCount() const { return Regions.size() + LargeRegions.size(); }

  const VirtualArena &arena() const { return Arena; }

private:
  struct ClassState {
    uint64_t RunCursor = 0; ///< Next unused byte in the current run.
    uint64_t RunEnd = 0;    ///< One past the end of the current run.
    std::vector<uint64_t> FreeList; ///< LIFO of freed object addresses.
  };

  struct RegionInfo {
    uint32_t ClassIndex;
    uint32_t Requested;
  };

  uint64_t allocateSmall(uint64_t Size);
  uint64_t allocateLarge(uint64_t Size);
  uint32_t classIndexFor(uint64_t Size) const;

  VirtualArena Arena;
  std::vector<uint64_t> ClassSizes;
  std::vector<uint8_t> SizeToClass; ///< (Size+7)/8 - 1 -> class index.
  std::vector<ClassState> Classes;
  std::unordered_map<uint64_t, RegionInfo> Regions;      ///< small objects.
  std::unordered_map<uint64_t, uint64_t> LargeRegions;   ///< addr -> size.
  uint64_t Live = 0;
};

} // namespace halo

#endif // HALO_MEM_SIZECLASSALLOCATOR_H
