//===- mem/Allocator.h - Heap allocator interface --------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocator interface shared by the baseline allocators (jemalloc-like
/// size-segregated, ptmalloc-like boundary-tag), the Fig. 15 random-pool
/// strawman, and HALO's specialised group allocator. Allocators operate on
/// the simulated address space (mem/Arena.h); the runtime routes every
/// malloc/calloc/realloc/free of a workload through one of these.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_MEM_ALLOCATOR_H
#define HALO_MEM_ALLOCATOR_H

#include <cstdint>
#include <string>

namespace halo {

/// Per-request information available to an allocator at allocation time.
///
/// \c ImmediateSite is the call-site identifier of the malloc call itself
/// (the paper's hot-data-streams comparison identifies groups from exactly
/// this). HALO's group allocator instead consults the group state vector it
/// was constructed with, mirroring the paper's design where identification
/// state lives outside the allocation interface.
struct AllocRequest {
  uint64_t Size = 0;
  uint32_t ImmediateSite = ~0u;
};

/// Minimum alignment for all allocations (Section 4.4 / SuperMalloc [20]).
inline constexpr uint64_t MinAlign = 8;

/// Abstract heap allocator over the simulated address space.
class Allocator {
public:
  virtual ~Allocator();

  /// Satisfies an allocation request; returns the (simulated) address.
  /// Requests of size zero are treated as size one, like malloc(0) returning
  /// a unique pointer.
  virtual uint64_t allocate(const AllocRequest &Request) = 0;

  /// Frees a previously allocated region. \p Addr must have been returned by
  /// this allocator (composite allocators route internally).
  virtual void deallocate(uint64_t Addr) = 0;

  /// Returns true if \p Addr was allocated (and is still live) here.
  virtual bool owns(uint64_t Addr) const = 0;

  /// Returns the usable size of the live region at \p Addr.
  virtual uint64_t usableSize(uint64_t Addr) const = 0;

  /// Bytes requested by live allocations.
  virtual uint64_t liveBytes() const = 0;

  /// Bytes of resident memory attributable to this allocator.
  virtual uint64_t residentBytes() const = 0;

  /// Human-readable allocator name for reports.
  virtual std::string name() const = 0;
};

} // namespace halo

#endif // HALO_MEM_ALLOCATOR_H
