//===- mem/Allocator.cpp - Heap allocator interface -----------------------===//

#include "mem/Allocator.h"

using namespace halo;

// Out-of-line virtual method anchor.
Allocator::~Allocator() = default;
