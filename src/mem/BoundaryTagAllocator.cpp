//===- mem/BoundaryTagAllocator.cpp - ptmalloc-like baseline --------------===//

#include "mem/BoundaryTagAllocator.h"

#include <cassert>

using namespace halo;

/// Heap extension granule, standing in for sbrk growth / per-arena mmap.
static constexpr uint64_t HeapSegment = 1 << 20;
/// Minimum chunk worth splitting off as a remainder.
static constexpr uint64_t MinChunk = 32;

BoundaryTagAllocator::BoundaryTagAllocator(uint64_t ArenaBase)
    : Arena(ArenaBase) {
  FastBins.resize(MaxFastChunk / 16 + 1);
}

uint64_t BoundaryTagAllocator::chunkSizeFor(uint64_t Size) {
  if (Size == 0)
    Size = 1;
  uint64_t Chunk = (Size + HeaderSize + 15) & ~uint64_t(15);
  return Chunk < MinChunk ? MinChunk : Chunk;
}

uint64_t BoundaryTagAllocator::allocate(const AllocRequest &Request) {
  uint64_t Size = Request.Size ? Request.Size : 1;
  uint64_t Need = chunkSizeFor(Size);

  uint64_t Granted = Need;
  uint64_t Base = takeFromBins(Need, Granted);
  if (!Base)
    Base = extendHeap(Need);

  Arena.touch(Base, Granted);
  LiveChunks.emplace(Base, ChunkInfo{Granted, Size});
  Live += Size;
  return Base + HeaderSize;
}

uint64_t BoundaryTagAllocator::takeFromBins(uint64_t Need,
                                            uint64_t &Granted) {
  Granted = Need;
  // Exact-size fast path.
  if (Need <= MaxFastChunk) {
    std::vector<uint64_t> &Bin = FastBins[Need / 16];
    if (!Bin.empty()) {
      uint64_t Base = Bin.back();
      Bin.pop_back();
      return Base;
    }
  }
  // Best fit from the sorted bin, splitting the remainder like ptmalloc.
  auto It = SortedBin.lower_bound(Need);
  if (It == SortedBin.end())
    return 0;
  uint64_t ChunkSize = It->first;
  uint64_t Base = It->second.back();
  It->second.pop_back();
  if (It->second.empty())
    SortedBin.erase(It);
  if (ChunkSize - Need >= MinChunk)
    binChunk(Base + Need, ChunkSize - Need);
  else
    Granted = ChunkSize; // Absorb the unsplittable tail.
  return Base;
}

uint64_t BoundaryTagAllocator::extendHeap(uint64_t Need) {
  if (TopCursor + Need > TopEnd) {
    // Bin whatever is left of the current segment, then grow.
    if (TopEnd > TopCursor && TopEnd - TopCursor >= MinChunk)
      binChunk(TopCursor, TopEnd - TopCursor);
    uint64_t Segment = Need > HeapSegment ? Need : HeapSegment;
    Segment =
        (Segment + VirtualArena::PageSize - 1) & ~(VirtualArena::PageSize - 1);
    TopCursor = Arena.reserve(Segment);
    TopEnd = TopCursor + Segment;
  }
  uint64_t Base = TopCursor;
  TopCursor += Need;
  return Base;
}

void BoundaryTagAllocator::binChunk(uint64_t Base, uint64_t ChunkSize) {
  assert(ChunkSize >= MinChunk && "binning an undersized chunk");
  if (ChunkSize <= MaxFastChunk && ChunkSize % 16 == 0)
    FastBins[ChunkSize / 16].push_back(Base);
  else
    SortedBin[ChunkSize].push_back(Base);
}

void BoundaryTagAllocator::deallocate(uint64_t Addr) {
  auto It = LiveChunks.find(Addr - HeaderSize);
  assert(It != LiveChunks.end() && "freeing unknown address");
  Live -= It->second.Requested;
  binChunk(It->first, It->second.ChunkSize);
  LiveChunks.erase(It);
}

bool BoundaryTagAllocator::owns(uint64_t Addr) const {
  return LiveChunks.count(Addr - HeaderSize) != 0;
}

uint64_t BoundaryTagAllocator::usableSize(uint64_t Addr) const {
  auto It = LiveChunks.find(Addr - HeaderSize);
  assert(It != LiveChunks.end() && "querying unknown address");
  return It->second.ChunkSize - HeaderSize;
}
