//===- mem/RandomPoolAllocator.h - Fig. 15 sensitivity probe ---*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 15 strawman: "an allocator that randomly assigns
/// small objects to one of four bump allocated pools", i.e. a variant of
/// HALO with an extremely poor grouping algorithm. Benchmarks whose
/// performance collapses under this allocator are the ones sensitive to
/// small-object placement -- the same ones HALO helps.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_MEM_RANDOMPOOLALLOCATOR_H
#define HALO_MEM_RANDOMPOOLALLOCATOR_H

#include "mem/Allocator.h"
#include "mem/Arena.h"
#include "support/Rng.h"

#include <map>
#include <unordered_map>

namespace halo {

/// Randomly scatters small objects over four bump pools; forwards objects of
/// at least a page to a backing allocator (matching the paper's "objects
/// smaller than the page size" rule).
class RandomPoolAllocator : public Allocator {
public:
  static constexpr unsigned PoolCount = 4;
  static constexpr uint64_t PoolChunkSize = 1 << 20;

  /// \p Backing receives requests of at least a page; it outlives this
  /// allocator.
  RandomPoolAllocator(Allocator &Backing, uint64_t Seed,
                      uint64_t ArenaBase = 0x30000000000ull);

  uint64_t allocate(const AllocRequest &Request) override;
  void deallocate(uint64_t Addr) override;
  bool owns(uint64_t Addr) const override;
  uint64_t usableSize(uint64_t Addr) const override;
  uint64_t liveBytes() const override;
  uint64_t residentBytes() const override;
  std::string name() const override { return "random-pools"; }

private:
  struct Pool {
    uint64_t Cursor = 0;
    uint64_t End = 0;
  };
  struct ChunkState {
    uint64_t LiveRegions = 0;
    bool Current = false;
  };
  struct RegionInfo {
    uint64_t Size;
    uint64_t ChunkBase;
  };

  Allocator &Backing;
  VirtualArena Arena;
  Rng Random;
  Pool Pools[PoolCount];
  std::map<uint64_t, ChunkState> Chunks; ///< chunk base -> state.
  std::unordered_map<uint64_t, RegionInfo> Regions;
  uint64_t Live = 0;
};

} // namespace halo

#endif // HALO_MEM_RANDOMPOOLALLOCATOR_H
