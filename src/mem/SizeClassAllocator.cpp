//===- mem/SizeClassAllocator.cpp - jemalloc-like baseline ----------------===//

#include "mem/SizeClassAllocator.h"

#include <cassert>

using namespace halo;

SizeClassAllocator::SizeClassAllocator(uint64_t ArenaBase) : Arena(ArenaBase) {
  // jemalloc-style class ladder: 8, 16, then 16-byte spacing up to 128,
  // then groups of four classes with doubling spacing up to MaxSmall.
  ClassSizes.push_back(8);
  ClassSizes.push_back(16);
  for (uint64_t Size = 32; Size <= 128; Size += 16)
    ClassSizes.push_back(Size);
  for (uint64_t Spacing = 32; ClassSizes.back() < MaxSmall; Spacing *= 2)
    for (int I = 0; I < 4 && ClassSizes.back() < MaxSmall; ++I)
      ClassSizes.push_back(ClassSizes.back() + Spacing);
  Classes.resize(ClassSizes.size());

  // Dense lookup table: quantum-spaced (8-byte) request size -> class index.
  SizeToClass.resize(MaxSmall / 8);
  uint32_t Class = 0;
  for (uint64_t Quantum = 0; Quantum < SizeToClass.size(); ++Quantum) {
    uint64_t Size = (Quantum + 1) * 8;
    while (ClassSizes[Class] < Size)
      ++Class;
    assert(Class < ClassSizes.size() && "size beyond class ladder");
    SizeToClass[Quantum] = static_cast<uint8_t>(Class);
  }
}

uint32_t SizeClassAllocator::classIndexFor(uint64_t Size) const {
  assert(Size > 0 && Size <= MaxSmall && "not a small size");
  return SizeToClass[(Size - 1) / 8];
}

uint64_t SizeClassAllocator::sizeClassFor(uint64_t Size) const {
  if (Size == 0)
    Size = 1;
  if (Size > MaxSmall)
    return (Size + VirtualArena::PageSize - 1) & ~(VirtualArena::PageSize - 1);
  return ClassSizes[classIndexFor(Size)];
}

uint64_t SizeClassAllocator::allocate(const AllocRequest &Request) {
  uint64_t Size = Request.Size ? Request.Size : 1;
  uint64_t Addr = Size > MaxSmall ? allocateLarge(Size) : allocateSmall(Size);
  Live += Size;
  return Addr;
}

uint64_t SizeClassAllocator::allocateSmall(uint64_t Size) {
  uint32_t Index = classIndexFor(Size);
  ClassState &State = Classes[Index];
  uint64_t ObjectSize = ClassSizes[Index];

  uint64_t Addr;
  if (!State.FreeList.empty()) {
    // Recently freed objects are reused first (LIFO), like real allocators.
    Addr = State.FreeList.back();
    State.FreeList.pop_back();
  } else {
    if (State.RunCursor + ObjectSize > State.RunEnd) {
      // Carve a fresh run for this class: at least a page, at least 64
      // objects, so same-class allocations land contiguously.
      uint64_t RunSize = ObjectSize * 64;
      if (RunSize < VirtualArena::PageSize)
        RunSize = VirtualArena::PageSize;
      State.RunCursor = Arena.reserve(RunSize);
      State.RunEnd = State.RunCursor + RunSize;
    }
    Addr = State.RunCursor;
    State.RunCursor += ObjectSize;
  }
  Arena.touch(Addr, ObjectSize);
  Regions.emplace(Addr, RegionInfo{Index, static_cast<uint32_t>(Size)});
  return Addr;
}

uint64_t SizeClassAllocator::allocateLarge(uint64_t Size) {
  uint64_t Addr = Arena.reserve(Size);
  Arena.touch(Addr, Size);
  LargeRegions.emplace(Addr, Size);
  return Addr;
}

void SizeClassAllocator::deallocate(uint64_t Addr) {
  auto Small = Regions.find(Addr);
  if (Small != Regions.end()) {
    Live -= Small->second.Requested;
    Classes[Small->second.ClassIndex].FreeList.push_back(Addr);
    Regions.erase(Small);
    return;
  }
  auto Large = LargeRegions.find(Addr);
  assert(Large != LargeRegions.end() && "freeing unknown address");
  Live -= Large->second;
  Arena.release(Addr);
  LargeRegions.erase(Large);
}

bool SizeClassAllocator::owns(uint64_t Addr) const {
  return Regions.count(Addr) || LargeRegions.count(Addr);
}

uint64_t SizeClassAllocator::usableSize(uint64_t Addr) const {
  auto Small = Regions.find(Addr);
  if (Small != Regions.end())
    return ClassSizes[Small->second.ClassIndex];
  auto Large = LargeRegions.find(Addr);
  assert(Large != LargeRegions.end() && "querying unknown address");
  return Large->second;
}
