//===- mem/Arena.h - Simulated demand-paged address space ------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulated 64-bit virtual address space standing in for mmap/munmap.
/// Allocators reserve address ranges from an arena; pages become resident
/// on first touch (demand paging) and can be purged (madvise(DONTNEED)).
/// Resident-page accounting feeds the fragmentation figures of Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_MEM_ARENA_H
#define HALO_MEM_ARENA_H

#include <cstdint>
#include <map>
#include <unordered_set>

namespace halo {

/// Simulated virtual address space with demand paging.
///
/// Reservations are handed out sequentially (never recycled at the address
/// level, like a simple mmap with MAP_NORESERVE), so every live allocation in
/// a run has a unique address. The paper's artefact notes that running
/// programs must be able to map at least 16 GiB of virtual memory; the
/// simulated space is far larger than that.
class VirtualArena {
public:
  static constexpr uint64_t PageSize = 4096;

  /// \p Base is the address of the first reservation; distinct arenas should
  /// use distinct bases so their addresses never collide.
  explicit VirtualArena(uint64_t Base = 0x10000000000ull);

  /// Reserves \p Size bytes aligned to \p Align (power of two, at least one
  /// page). Returns the base address of the reservation.
  uint64_t reserve(uint64_t Size, uint64_t Align = PageSize);

  /// Releases a previous reservation (munmap). The range must exactly match
  /// a prior reserve().
  void release(uint64_t Addr);

  /// Marks the pages overlapping [Addr, Addr+Size) resident (first write).
  void touch(uint64_t Addr, uint64_t Size);

  /// Drops the pages fully contained in [Addr, Addr+Size) from residency
  /// (madvise(DONTNEED)); the reservation itself remains valid.
  void purge(uint64_t Addr, uint64_t Size);

  /// Returns true if [Addr, Addr+Size) lies inside a live reservation.
  bool covers(uint64_t Addr, uint64_t Size) const;

  uint64_t reservedBytes() const { return Reserved; }
  uint64_t residentBytes() const { return ResidentPages.size() * PageSize; }
  uint64_t reservationCount() const { return Regions.size(); }

private:
  uint64_t Next;
  uint64_t Reserved = 0;
  std::map<uint64_t, uint64_t> Regions; ///< base -> size, live reservations.
  std::unordered_set<uint64_t> ResidentPages; ///< page indices.
};

} // namespace halo

#endif // HALO_MEM_ARENA_H
