//===- core/Pipeline.cpp - End-to-end HALO pipeline -------------------------===//

#include "core/Pipeline.h"

#include "mem/SizeClassAllocator.h"
#include "support/BinaryIO.h"
#include "trace/EventTrace.h"

using namespace halo;

HaloArtifacts
halo::optimizeBinary(const Program &Prog, const EventTrace &Trace,
                     const HaloParameters &Params,
                     const MachineConfig &Machine, Executor *Pool) {
  return optimizeBinary(
      Prog, [&](Runtime &RT) { RT.replay(Trace); }, Params, Machine, Pool);
}

HaloArtifacts
halo::optimizeBinary(const Program &Prog,
                     const std::function<void(Runtime &)> &RunWorkload,
                     const HaloParameters &Params,
                     const MachineConfig &Machine, Executor *Pool) {
  HaloArtifacts Out;

  // Stage 1: profiling (Section 4.1). The profiled binary runs under the
  // default allocator; only the event stream matters here.
  {
    SizeClassAllocator ProfileAlloc;
    Runtime RT(Prog, ProfileAlloc, Machine.Costs);
    HeapProfiler Profiler(Prog, Params.Profile);
    RT.addObserver(&Profiler);
    RunWorkload(RT);
    Out.Graph = Profiler.takeGraph();
    Out.Contexts = std::move(Profiler.contexts());
    Out.ProfiledAccesses = Profiler.totalAccesses();
  }

  // Stage 2: grouping (Section 4.2), sharded by connected component when a
  // pool is available -- bit-identical either way.
  Out.Groups = Pool ? buildGroupsParallel(Out.Graph, Params.Grouping, *Pool)
                    : buildGroups(Out.Graph, Params.Grouping);

  // Stage 3: identification (Section 4.3).
  Out.Identification = identifyGroups(Out.Groups, Out.Contexts);

  // Stage 4: BOLT rewriting -- instrument the union of selector sites.
  Out.Plan = InstrumentationPlan(Prog, Out.Identification.Sites);

  // Stage 5: allocator synthesis -- compile selectors to state masks.
  for (const Selector &Sel : Out.Identification.Selectors)
    Out.CompiledSelectors.push_back(compileSelector(Sel, Out.Plan));

  return Out;
}

std::string HaloArtifacts::groupsAsDot(const Program &Prog,
                                       uint64_t MinEdgeWeight) const {
  std::vector<std::string> Labels;
  std::vector<int> GroupOf;
  for (ContextId C = 0; C < Contexts.size(); ++C) {
    Labels.push_back(Contexts.describe(C, Prog));
    GroupOf.push_back(-1);
  }
  for (size_t G = 0; G < Groups.size(); ++G)
    for (GraphNodeId Member : Groups[G].Members)
      GroupOf[Member] = static_cast<int>(G);
  return Graph.toDot(Labels, GroupOf, MinEdgeWeight);
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {
/// "HART": HALO artifact bundle.
constexpr uint32_t HaloArtifactMagic = 0x54524148;
constexpr uint32_t HaloArtifactVersion = 1;
} // namespace

void halo::saveHaloArtifacts(const HaloArtifacts &Art, BinaryWriter &W) {
  W.u32(HaloArtifactMagic);
  W.u32(HaloArtifactVersion);
  Art.Contexts.save(W);
  Art.Graph.save(W);
  saveGroups(Art.Groups, W);
  saveIdentification(Art.Identification, W);
  W.varint(Art.ProfiledAccesses);
}

HaloArtifacts halo::loadHaloArtifacts(BinaryReader &R, const Program &Prog) {
  if (R.u32() != HaloArtifactMagic)
    throw SerializationError("halo artifacts: bad magic");
  uint32_t Version = R.u32();
  if (Version != HaloArtifactVersion)
    throw SerializationError("halo artifacts: unknown format version " +
                             std::to_string(Version));
  HaloArtifacts Art;
  Art.Contexts = ContextTable::load(R);
  Art.Graph = AffinityGraph::load(R);
  Art.Groups = loadGroups(R);
  Art.Identification = loadIdentification(R);
  Art.ProfiledAccesses = R.varint();
  // Rebuild the derived members exactly as optimizeBinary does: bit
  // assignment follows Sites order and mask compilation follows selector
  // order, so the rebuilt plan and masks are identical to the saved run's.
  Art.Plan = InstrumentationPlan(Prog, Art.Identification.Sites);
  Art.CompiledSelectors.reserve(Art.Identification.Selectors.size());
  for (const Selector &Sel : Art.Identification.Selectors)
    Art.CompiledSelectors.push_back(compileSelector(Sel, Art.Plan));
  return Art;
}
