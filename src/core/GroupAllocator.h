//===- core/GroupAllocator.h - HALO's specialised allocator ----*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The specialised group allocator of Section 4.4 / Figure 11. Memory is
/// reserved from the OS in large demand-paged slabs; group-specific chunks
/// are carved from slabs (always aligned to their size, so a region's chunk
/// header is found with bitwise operations); regions are bump-allocated
/// from each group's current chunk with no per-object headers, guaranteeing
/// contiguity between consecutive grouped allocations. Chunk headers count
/// live_regions; empty chunks are kept as spares, purged, or reused
/// according to the configured policy. Requests that are too large or match
/// no group selector forward to the default allocator (the paper forwards
/// through dlsym).
///
/// Group membership is decided by a pluggable GroupPolicy: HALO evaluates
/// compiled selectors against the group state vector; the hot-data-streams
/// comparison maps the immediate malloc call site to a group.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_CORE_GROUPALLOCATOR_H
#define HALO_CORE_GROUPALLOCATOR_H

#include "identify/Selector.h"
#include "mem/Allocator.h"
#include "mem/Arena.h"
#include "prog/GroupStateVector.h"

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace halo {

/// Decides which group (if any) an allocation request belongs to.
class GroupPolicy {
public:
  virtual ~GroupPolicy();
  /// Returns the group index or -1 for "ungrouped".
  virtual int32_t selectGroup(const AllocRequest &Request) const = 0;
  virtual uint32_t numGroups() const = 0;
};

/// HALO's policy: match compiled selectors (most popular group first)
/// against the shared group state vector.
class SelectorGroupPolicy : public GroupPolicy {
public:
  /// \p State is the runtime's group state vector; it must outlive this.
  SelectorGroupPolicy(const GroupStateVector &State,
                      std::vector<CompiledSelector> Selectors);

  int32_t selectGroup(const AllocRequest &Request) const override;
  uint32_t numGroups() const override {
    return static_cast<uint32_t>(Selectors.size());
  }

private:
  const GroupStateVector &State;
  std::vector<CompiledSelector> Selectors;
};

/// The comparison technique's policy: the immediate call site of the
/// allocation identifies the group (Section 5.1, "identified at runtime
/// using the immediate call site of the allocation procedure").
class SiteGroupPolicy : public GroupPolicy {
public:
  SiteGroupPolicy(std::unordered_map<uint32_t, uint32_t> SiteToGroup,
                  uint32_t NumGroups);

  int32_t selectGroup(const AllocRequest &Request) const override;
  uint32_t numGroups() const override { return Groups; }

private:
  std::unordered_map<uint32_t, uint32_t> SiteToGroup;
  uint32_t Groups;
};

/// Configuration of the specialised allocator (Section 5.1 defaults).
struct GroupAllocatorOptions {
  uint64_t ChunkSize = 1 << 20; ///< 1 MiB chunks (128 KiB for omnetpp).
  uint64_t SlabSize = 64 << 20; ///< Large demand-paged slabs.
  /// Only allocations smaller than the page size are grouped; the paper
  /// also profiles with a maximum grouped-object size of 4 KiB.
  uint64_t MaxGroupedSize = 4096;
  /// Empty chunks kept resident for reuse ("a single spare chunk for reuse
  /// when purging dirty pages, as early versions of jemalloc did").
  uint32_t MaxSpareChunks = 1;
  /// When false, empty chunks are always reused without purging their dirty
  /// pages (the omnetpp/xalanc configuration).
  bool PurgeEmptyChunks = true;
};

/// Fragmentation accounting for Table 1: live vs resident grouped data,
/// sampled at peak resident usage.
struct FragmentationStats {
  uint64_t PeakResident = 0;
  uint64_t LiveAtPeak = 0;

  uint64_t wastedBytes() const {
    return PeakResident > LiveAtPeak ? PeakResident - LiveAtPeak : 0;
  }
  double wastedPercent() const {
    return PeakResident
               ? 100.0 * static_cast<double>(wastedBytes()) /
                     static_cast<double>(PeakResident)
               : 0.0;
  }
};

/// The specialised group allocator.
class GroupAllocator : public Allocator {
public:
  /// Space reserved at the front of every chunk for its header (Figure 11);
  /// regions start after it, so chunkBase(region) != region.
  static constexpr uint64_t ChunkHeaderSize = 64;

  /// \p Backing serves forwarded requests; \p Policy decides membership.
  /// Both must outlive the allocator.
  GroupAllocator(Allocator &Backing, const GroupPolicy &Policy,
                 const GroupAllocatorOptions &Options = GroupAllocatorOptions(),
                 uint64_t ArenaBase = 0x40000000000ull);

  uint64_t allocate(const AllocRequest &Request) override;
  void deallocate(uint64_t Addr) override;
  bool owns(uint64_t Addr) const override;
  uint64_t usableSize(uint64_t Addr) const override;
  uint64_t liveBytes() const override;
  uint64_t residentBytes() const override;
  std::string name() const override { return "halo-group"; }

  /// Grouped-object fragmentation at peak usage (Table 1).
  const FragmentationStats &fragmentation() const { return Frag; }

  uint64_t groupedAllocations() const { return GroupedAllocs; }
  uint64_t forwardedAllocations() const { return ForwardedAllocs; }
  uint64_t groupedLiveBytes() const { return GroupedLive; }
  uint64_t chunkCount() const { return Chunks.size(); }
  uint64_t spareChunkCount() const { return SpareChunks.size(); }

private:
  struct ChunkHeader {
    uint64_t LiveRegions = 0; ///< Incremented per allocation, decremented
                              ///< per free; zero means reusable/freeable.
    uint64_t LiveBytes = 0;
    int32_t Group = -1;
    bool IsCurrent = false;
  };

  struct GroupCursor {
    uint64_t Cursor = 0;
    uint64_t End = 0; ///< Chunk end; 0 when the group has no chunk yet.
  };

  uint64_t groupMalloc(uint32_t Group, uint64_t Size);
  void groupFree(uint64_t Addr);
  uint64_t takeChunk(uint32_t Group);
  void retireChunk(uint64_t Base);
  uint64_t chunkBase(uint64_t Addr) const {
    return Addr & ~(Options.ChunkSize - 1);
  }
  void noteUsage();

  Allocator &Backing;
  const GroupPolicy &Policy;
  GroupAllocatorOptions Options;
  VirtualArena Arena;
  std::vector<GroupCursor> Cursors;
  std::unordered_map<uint64_t, ChunkHeader> Chunks; ///< chunk base -> header.
  std::deque<uint64_t> SpareChunks;  ///< Empty, still resident.
  std::deque<uint64_t> PurgedChunks; ///< Empty, pages dropped.
  std::unordered_map<uint64_t, uint64_t> Regions; ///< addr -> size.
  uint64_t SlabCursor = 0;
  uint64_t SlabEnd = 0;
  uint64_t GroupedLive = 0;
  uint64_t GroupedAllocs = 0;
  uint64_t ForwardedAllocs = 0;
  FragmentationStats Frag;
};

} // namespace halo

#endif // HALO_CORE_GROUPALLOCATOR_H
