//===- core/GroupAllocator.cpp - HALO's specialised allocator --------------===//

#include "core/GroupAllocator.h"

#include "support/Bits.h"

#include <cassert>

using namespace halo;

GroupPolicy::~GroupPolicy() = default;

SelectorGroupPolicy::SelectorGroupPolicy(const GroupStateVector &State,
                                         std::vector<CompiledSelector> Sels)
    : State(State), Selectors(std::move(Sels)) {}

int32_t SelectorGroupPolicy::selectGroup(const AllocRequest &) const {
  // Selectors are ordered most popular group first; first match wins.
  for (size_t G = 0; G < Selectors.size(); ++G)
    if (Selectors[G].matches(State))
      return static_cast<int32_t>(G);
  return -1;
}

SiteGroupPolicy::SiteGroupPolicy(
    std::unordered_map<uint32_t, uint32_t> SiteToGroup, uint32_t NumGroups)
    : SiteToGroup(std::move(SiteToGroup)), Groups(NumGroups) {}

int32_t SiteGroupPolicy::selectGroup(const AllocRequest &Request) const {
  auto It = SiteToGroup.find(Request.ImmediateSite);
  return It == SiteToGroup.end() ? -1 : static_cast<int32_t>(It->second);
}


GroupAllocator::GroupAllocator(Allocator &Backing, const GroupPolicy &Policy,
                               const GroupAllocatorOptions &Options,
                               uint64_t ArenaBase)
    : Backing(Backing), Policy(Policy), Options(Options), Arena(ArenaBase) {
  assert(isPowerOfTwo(Options.ChunkSize) && "chunk size must be 2^k");
  assert(Options.SlabSize % Options.ChunkSize == 0 &&
         "slab must hold whole chunks");
  Cursors.resize(Policy.numGroups());
}

void GroupAllocator::noteUsage() {
  uint64_t Resident = Arena.residentBytes();
  if (Resident > Frag.PeakResident) {
    Frag.PeakResident = Resident;
    Frag.LiveAtPeak = GroupedLive;
  }
}

uint64_t GroupAllocator::allocate(const AllocRequest &Request) {
  uint64_t Size = Request.Size ? Request.Size : 1;
  // Grouped treatment only for small requests whose state matches a group.
  if (Size < Options.MaxGroupedSize) {
    int32_t Group = Policy.selectGroup(Request);
    if (Group >= 0)
      return groupMalloc(static_cast<uint32_t>(Group), Size);
  }
  ++ForwardedAllocs;
  return Backing.allocate(Request);
}

uint64_t GroupAllocator::groupMalloc(uint32_t Group, uint64_t Size) {
  assert(Group < Cursors.size() && "bad group index");
  GroupCursor &Cur = Cursors[Group];
  uint64_t Aligned = (Size + MinAlign - 1) & ~(MinAlign - 1);

  if (Cur.End == 0 || Cur.Cursor + Aligned > Cur.End) {
    // Retire the group's previous current chunk (it may already be empty),
    // then install a fresh one.
    if (Cur.End != 0)
      retireChunk(Cur.End - Options.ChunkSize);
    uint64_t Base = takeChunk(Group);
    Cur.Cursor = Base + ChunkHeaderSize;
    Cur.End = Base + Options.ChunkSize;
  }

  uint64_t Addr = Cur.Cursor;
  Cur.Cursor += Aligned;

  ChunkHeader &Header = Chunks[chunkBase(Addr)];
  ++Header.LiveRegions;
  Header.LiveBytes += Size;

  Arena.touch(Addr, Size);
  Regions.emplace(Addr, Size);
  GroupedLive += Size;
  ++GroupedAllocs;
  noteUsage();
  return Addr;
}

uint64_t GroupAllocator::takeChunk(uint32_t Group) {
  uint64_t Base;
  if (!SpareChunks.empty()) {
    Base = SpareChunks.front();
    SpareChunks.pop_front();
  } else if (!PurgedChunks.empty()) {
    Base = PurgedChunks.front();
    PurgedChunks.pop_front();
  } else {
    if (SlabCursor + Options.ChunkSize > SlabEnd) {
      // Reserve a new demand-paged slab, chunk-aligned so headers can be
      // located with bitwise operations.
      SlabCursor = Arena.reserve(Options.SlabSize, Options.ChunkSize);
      SlabEnd = SlabCursor + Options.SlabSize;
    }
    Base = SlabCursor;
    SlabCursor += Options.ChunkSize;
  }
  ChunkHeader &Header = Chunks[Base];
  Header = ChunkHeader();
  Header.Group = static_cast<int32_t>(Group);
  Header.IsCurrent = true;
  return Base;
}

void GroupAllocator::retireChunk(uint64_t Base) {
  auto It = Chunks.find(Base);
  assert(It != Chunks.end() && "retiring unknown chunk");
  It->second.IsCurrent = false;
  if (It->second.LiveRegions != 0)
    return; // Still holds live data; its last free will recycle it.
  Chunks.erase(It);
  if (SpareChunks.size() < Options.MaxSpareChunks) {
    SpareChunks.push_back(Base);
  } else if (Options.PurgeEmptyChunks) {
    Arena.purge(Base, Options.ChunkSize);
    PurgedChunks.push_back(Base);
  } else {
    // Always-reuse configuration: keep the dirty pages.
    SpareChunks.push_back(Base);
  }
}

void GroupAllocator::groupFree(uint64_t Addr) {
  auto Region = Regions.find(Addr);
  assert(Region != Regions.end() && "group-freeing unknown region");
  uint64_t Size = Region->second;
  Regions.erase(Region);
  GroupedLive -= Size;

  // The chunk header is located from the region pointer by way of simple
  // bitwise operations (chunks are aligned to their size).
  auto It = Chunks.find(chunkBase(Addr));
  assert(It != Chunks.end() && "region without chunk header");
  ChunkHeader &Header = It->second;
  assert(Header.LiveRegions > 0 && "double free of grouped region");
  --Header.LiveRegions;
  Header.LiveBytes -= Size;
  if (Header.LiveRegions == 0 && !Header.IsCurrent) {
    uint64_t Base = It->first;
    Chunks.erase(It);
    if (SpareChunks.size() < Options.MaxSpareChunks) {
      SpareChunks.push_back(Base);
    } else if (Options.PurgeEmptyChunks) {
      Arena.purge(Base, Options.ChunkSize);
      PurgedChunks.push_back(Base);
    } else {
      SpareChunks.push_back(Base);
    }
  }
}

void GroupAllocator::deallocate(uint64_t Addr) {
  if (Regions.count(Addr)) {
    groupFree(Addr);
    return;
  }
  Backing.deallocate(Addr);
}

bool GroupAllocator::owns(uint64_t Addr) const {
  return Regions.count(Addr) || Backing.owns(Addr);
}

uint64_t GroupAllocator::usableSize(uint64_t Addr) const {
  auto It = Regions.find(Addr);
  if (It != Regions.end())
    return It->second;
  return Backing.usableSize(Addr);
}

uint64_t GroupAllocator::liveBytes() const {
  return GroupedLive + Backing.liveBytes();
}

uint64_t GroupAllocator::residentBytes() const {
  return Arena.residentBytes() + Backing.residentBytes();
}
