//===- core/Pipeline.h - End-to-end HALO pipeline ---------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full optimisation pipeline of Figure 4: Profiling -> Grouping ->
/// Identification -> BOLT rewriting -> specialised-allocator synthesis.
/// optimizeBinary() profiles a training run of the target program (the
/// paper profiles small test inputs), derives allocation groups and
/// selectors, and returns everything needed to execute the optimised
/// binary: the instrumentation plan and the compiled selectors that drive
/// a SelectorGroupPolicy + GroupAllocator at measurement time.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_CORE_PIPELINE_H
#define HALO_CORE_PIPELINE_H

#include "core/GroupAllocator.h"
#include "graph/AffinityGraph.h"
#include "group/Grouping.h"
#include "identify/Identify.h"
#include "profile/HeapProfiler.h"
#include "runtime/Runtime.h"
#include "sim/Machine.h"

#include <functional>
#include <string>
#include <vector>

namespace halo {

class EventTrace;

/// All tunables of the pipeline (defaults follow Section 5.1).
struct HaloParameters {
  ProfileOptions Profile;
  GroupingOptions Grouping;
  GroupAllocatorOptions Allocator;
};

/// Everything the pipeline produces for one target program.
struct HaloArtifacts {
  ContextTable Contexts;
  AffinityGraph Graph;
  std::vector<Group> Groups;
  IdentificationResult Identification;
  InstrumentationPlan Plan;
  std::vector<CompiledSelector> CompiledSelectors;
  uint64_t ProfiledAccesses = 0;

  /// Renders the grouped affinity graph as DOT (Figure 9 style).
  std::string groupsAsDot(const Program &Prog,
                          uint64_t MinEdgeWeight = 0) const;
};

class Executor;

/// Runs the whole pipeline. \p RunWorkload executes the target program's
/// profiling workload against the runtime it is handed (the paper uses the
/// small test inputs for this); the runtime is wired to a default allocator
/// and the heap profiler, standing in for the Pin tool. \p Machine supplies
/// the profiling runtime's cost model; the artifacts themselves depend only
/// on the event stream, never on the machine, so one pipeline run serves
/// measurements on every machine. \p Pool, when non-null, parallelizes the
/// grouping stage across connected components (buildGroupsParallel) --
/// bit-identical artifacts at every jobs count.
HaloArtifacts optimizeBinary(const Program &Prog,
                             const std::function<void(Runtime &)> &RunWorkload,
                             const HaloParameters &Params = HaloParameters(),
                             const MachineConfig &Machine = defaultMachine(),
                             Executor *Pool = nullptr);

/// Same pipeline, driven by a pre-recorded event trace instead of
/// re-executing the workload: the profiling stage replays \p Trace into the
/// heap profiler, producing artifacts bit-identical to profiling the
/// recorded run directly. Replay feeds the profiler through its batched
/// observer hook (RuntimeObserver::onAccessBatch) -- one dispatch per run
/// of consecutive accesses. This lets one recording feed both the HALO and
/// hot-data-streams pipelines (and any number of parameter or machine
/// sweeps); the two pipelines share no mutable state, so
/// Evaluation::prepareAllArtifacts materialises them as parallel executor
/// tasks.
HaloArtifacts optimizeBinary(const Program &Prog, const EventTrace &Trace,
                             const HaloParameters &Params = HaloParameters(),
                             const MachineConfig &Machine = defaultMachine(),
                             Executor *Pool = nullptr);

/// Serializes the machine-independent core of \p Art (contexts, graph,
/// groups, identification, profiled-access count) behind a versioned
/// header. The instrumentation plan and compiled selectors are *not*
/// written: both are deterministic functions of the identification result
/// and the program, and loadHaloArtifacts rebuilds them, so a loaded
/// artifact drives measurement bit-identically to a freshly derived one.
void saveHaloArtifacts(const HaloArtifacts &Art, BinaryWriter &W);

/// Decodes a saveHaloArtifacts() stream and rebuilds the derived members
/// against \p Prog. Throws SerializationError on bad magic/version,
/// truncation, or internal inconsistency.
HaloArtifacts loadHaloArtifacts(BinaryReader &R, const Program &Prog);

} // namespace halo

#endif // HALO_CORE_PIPELINE_H
