//===- workloads/Factories.h - Internal workload factories -----*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Private factory declarations wiring each benchmark model into the
/// registry in Workload.cpp. Not part of the public API.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_WORKLOADS_FACTORIES_H
#define HALO_WORKLOADS_FACTORIES_H

#include "workloads/Workload.h"

#include <memory>

namespace halo {

std::unique_ptr<Workload> createHealthWorkload();
std::unique_ptr<Workload> createFtWorkload();
std::unique_ptr<Workload> createAnalyzerWorkload();
std::unique_ptr<Workload> createAmmpWorkload();
std::unique_ptr<Workload> createArtWorkload();
std::unique_ptr<Workload> createEquakeWorkload();
std::unique_ptr<Workload> createPovrayWorkload();
std::unique_ptr<Workload> createOmnetppWorkload();
std::unique_ptr<Workload> createXalancWorkload();
std::unique_ptr<Workload> createLeelaWorkload();
std::unique_ptr<Workload> createRomsWorkload();

} // namespace halo

#endif // HALO_WORKLOADS_FACTORIES_H
