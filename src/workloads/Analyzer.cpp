//===- workloads/Analyzer.cpp - analyzer model (FreeBench) --------------------===//
//
// FreeBench's analyzer parses a trace of records into hash buckets and then
// repeatedly walks the bucket chains. Records and chain cells come from
// direct malloc call sites in domain code (prior-work shape: distinct,
// unwrapped locations), with cold token buffers interleaved in the same
// size class during parsing.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <vector>

using namespace halo;

namespace {

class AnalyzerWorkload : public Workload {
public:
  std::string name() const override { return "analyzer"; }

  void build(Program &P) override {
    FunctionId Main = P.addFunction("main");
    FParse = P.addFunction("parse_trace");
    FAnalyze = P.addFunction("analyze");
    SMainParse = P.addCallSite(Main, FParse, "main>parse_trace");
    SRecord = P.addMallocSite(FParse, "parse_trace>malloc_record");
    SCell = P.addMallocSite(FParse, "parse_trace>malloc_cell");
    SBuffer = P.addMallocSite(FParse, "parse_trace>malloc_buffer");
    SMainAnalyze = P.addCallSite(Main, FAnalyze, "main>analyze");
  }

  void run(Runtime &RT, Scale S, uint64_t Seed) override {
    const uint64_t Records = S == Scale::Test ? 4000 : 70000;
    const uint64_t Buckets = 512;
    const int Passes = S == Scale::Test ? 4 : 9;
    const uint64_t RecordSize = 32, CellSize = 32, BufferSize = 32;
    Rng Random(Seed ^ 0xA7A1ull);

    std::vector<std::vector<std::pair<uint64_t, uint64_t>>> Table(Buckets);
    std::vector<uint64_t> Buffers;

    {
      Runtime::Scope Parse(RT, SMainParse);
      for (uint64_t I = 0; I < Records; ++I) {
        // Cold token buffer for the line being parsed.
        if (Random.nextBool(0.7)) {
          uint64_t Buf = RT.malloc(BufferSize, SBuffer);
          RT.store(Buf, BufferSize);
          Buffers.push_back(Buf);
        }
        uint64_t Rec = RT.malloc(RecordSize, SRecord);
        RT.store(Rec, RecordSize);
        uint64_t Cell = RT.malloc(CellSize, SCell);
        RT.store(Cell, CellSize);
        Table[Random.nextBelow(Buckets)].emplace_back(Cell, Rec);
        RT.compute(20);
      }
    }

    {
      Runtime::Scope Analyze(RT, SMainAnalyze);
      for (int Pass = 0; Pass < Passes; ++Pass)
        for (auto &Chain : Table)
          for (auto [Cell, Rec] : Chain) {
            RT.load(Cell, CellSize);
            RT.load(Rec, RecordSize);
            RT.store(Rec + 16, 8); // Accumulate into the record.
            RT.compute(14);
          }
    }

    for (auto &Chain : Table)
      for (auto [Cell, Rec] : Chain) {
        RT.free(Cell);
        RT.free(Rec);
      }
    for (uint64_t Buf : Buffers)
      RT.free(Buf);
  }

private:
  FunctionId FParse = InvalidId, FAnalyze = InvalidId;
  CallSiteId SMainParse = InvalidId, SRecord = InvalidId, SCell = InvalidId,
             SBuffer = InvalidId, SMainAnalyze = InvalidId;
};

} // namespace

HALO_REGISTER_WORKLOAD("analyzer", 2, AnalyzerWorkload);
