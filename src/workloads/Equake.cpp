//===- workloads/Equake.cpp - equake model (SPEC CPU2000) ---------------------===//
//
// equake's sparse-matrix-vector kernel allocates one descriptor and one
// data block per matrix row (row-by-row mallocs) and sweeps them in row
// order every timestep. Mesh bookkeeping records interleave with the row
// descriptors in the same size class during assembly.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <vector>

using namespace halo;

namespace {

class EquakeWorkload : public Workload {
public:
  std::string name() const override { return "equake"; }

  void build(Program &P) override {
    FunctionId Main = P.addFunction("main");
    FAssemble = P.addFunction("assemble_matrix");
    FSmvp = P.addFunction("smvp");
    SMainAssemble = P.addCallSite(Main, FAssemble, "main>assemble_matrix");
    SRowDesc = P.addMallocSite(FAssemble, "assemble>malloc_rowdesc");
    SRowData = P.addMallocSite(FAssemble, "assemble>malloc_rowdata");
    SMeshRec = P.addMallocSite(FAssemble, "assemble>malloc_meshrec");
    SMainSmvp = P.addCallSite(Main, FSmvp, "main>smvp");
  }

  void run(Runtime &RT, Scale S, uint64_t Seed) override {
    const uint64_t Rows = S == Scale::Test ? 3000 : 40000;
    const int Timesteps = S == Scale::Test ? 5 : 12;
    const uint64_t DescSize = 32, DataSize = 96, MeshSize = 32;
    Rng Random(Seed ^ 0xE9A4Eull);

    struct Row {
      uint64_t Desc;
      uint64_t Data;
    };
    std::vector<Row> Matrix;
    std::vector<uint64_t> Mesh;

    {
      Runtime::Scope Assemble(RT, SMainAssemble);
      Matrix.reserve(Rows);
      for (uint64_t I = 0; I < Rows; ++I) {
        Row R;
        R.Desc = RT.malloc(DescSize, SRowDesc);
        RT.store(R.Desc, DescSize);
        R.Data = RT.malloc(DataSize, SRowData);
        RT.store(R.Data, DataSize);
        Matrix.push_back(R);
        if (Random.nextBool(0.6)) {
          uint64_t M = RT.malloc(MeshSize, SMeshRec);
          RT.store(M, 8);
          Mesh.push_back(M);
        }
      }
    }

    // The unstructured mesh dictates a fixed row visit order unrelated to
    // allocation order.
    std::vector<uint32_t> Order(Matrix.size());
    for (uint32_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    Random.shuffle(Order);
    {
      Runtime::Scope Smvp(RT, SMainSmvp);
      for (int T = 0; T < Timesteps; ++T)
        for (uint32_t Idx : Order) {
          Row &R = Matrix[Idx];
          RT.load(R.Desc, DescSize);  // Column indices / row length.
          RT.load(R.Data, DataSize);  // Non-zero values.
          RT.store(R.Desc + 16, 8);   // Result accumulation marker.
          RT.compute(30);
        }
    }

    for (Row &R : Matrix) {
      RT.free(R.Desc);
      RT.free(R.Data);
    }
    for (uint64_t M : Mesh)
      RT.free(M);
  }

private:
  FunctionId FAssemble = InvalidId, FSmvp = InvalidId;
  CallSiteId SMainAssemble = InvalidId, SRowDesc = InvalidId,
             SRowData = InvalidId, SMeshRec = InvalidId, SMainSmvp = InvalidId;
};

} // namespace

HALO_REGISTER_WORKLOAD("equake", 5, EquakeWorkload);
