//===- workloads/Leela.cpp - leela model (SPEC CPU2017) -----------------------===//
//
// leela "allocates memory exclusively through C++'s new operator"
// (Section 5.2): every MCTS tree node, transposition entry, and game-record
// object funnels through one FastAlloc wrapper, so the immediate malloc call
// site is useless for identification. Search iterations walk recently
// expanded regions of the tree (hot), expand a few frontier nodes
// (short-lived churn), consult large pattern tables (unaffected by
// small-object placement), and burn most of their cycles in playouts -- so
// HALO removes an appreciable share of L1D misses while execution time
// barely moves, exactly the paper's leela row. Game-record objects pollute
// the tree nodes' size class in the baseline; HALO's full-context grouping
// separates them. Between "moves" the tree is torn down, recycling the
// group allocator's chunks.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <vector>

using namespace halo;

namespace {

class LeelaWorkload : public Workload {
public:
  std::string name() const override { return "leela"; }

  void build(Program &P) override {
    FunctionId Main = P.addFunction("main");
    FSearch = P.addFunction("uct_search");
    FSelect = P.addFunction("select_path");
    FExpand = P.addFunction("expand_leaf");
    FRecord = P.addFunction("record_game");
    FTt = P.addFunction("tt_store");
    FFast = P.addFunction("fast_alloc"); // The operator-new wrapper.
    SMainSearch = P.addCallSite(Main, FSearch, "main>uct_search");
    SSearchSelect = P.addCallSite(FSearch, FSelect, "search>select_path");
    SSelectNew = P.addCallSite(FSelect, FFast, "select_path>fast_alloc");
    SSearchExpand = P.addCallSite(FSearch, FExpand, "search>expand_leaf");
    SExpandNew = P.addCallSite(FExpand, FFast, "expand_leaf>fast_alloc");
    SSearchRecord = P.addCallSite(FSearch, FRecord, "search>record_game");
    SRecordNew = P.addCallSite(FRecord, FFast, "record_game>fast_alloc");
    SSearchTt = P.addCallSite(FSearch, FTt, "search>tt_store");
    STtNew = P.addCallSite(FTt, FFast, "tt_store>fast_alloc");
    SNew = P.addMallocSite(FFast, "fast_alloc>malloc"); // Single site.
  }

  void run(Runtime &RT, Scale S, uint64_t Seed) override {
    const uint64_t Iterations = S == Scale::Test ? 4000 : 48000;
    const uint64_t MoveLength = S == Scale::Test ? 1500 : 12000;
    const uint64_t NodeSize = 48, RecordSize = 48, TtSize = 32;
    const uint64_t PatternBytes = 1 << 21; ///< Ungrouped pattern tables.
    const uint64_t WindowNodes = 12;
    Rng Random(Seed ^ 0x1EE1Aull);

    std::vector<uint64_t> Tree;     ///< Persistent within a move.
    std::vector<uint64_t> Records;  ///< Cold pollution, same class.
    std::vector<uint64_t> Frontier; ///< Short-lived churn.
    std::vector<uint64_t> TtEntries;
    std::vector<uint64_t> Patterns;

    Runtime::Scope Search(RT, SMainSearch);

    // Pattern tables: large, allocated once, sampled randomly forever.
    for (int I = 0; I < 4; ++I) {
      Runtime::Scope Tt(RT, SSearchTt);
      Runtime::Scope New(RT, STtNew);
      uint64_t T = RT.malloc(PatternBytes, SNew);
      RT.store(T, 4096);
      Patterns.push_back(T);
    }

    auto TearDownMove = [&] {
      for (uint64_t Node : Tree)
        RT.free(Node);
      Tree.clear();
      for (uint64_t Rec : Records)
        RT.free(Rec);
      Records.clear();
    };

    for (uint64_t Iter = 0; Iter < Iterations; ++Iter) {
      // A new move tears the search tree down and starts over.
      if (Iter % MoveLength == 0 && !Tree.empty())
        TearDownMove();

      // Grow the tree along the selected path; game records pollute the
      // same size class in the baseline allocator.
      {
        Runtime::Scope Select(RT, SSearchSelect);
        for (int G = 0; G < 2; ++G) {
          uint64_t Node;
          {
            Runtime::Scope New(RT, SSelectNew);
            Node = RT.malloc(NodeSize, SNew);
          }
          RT.store(Node, NodeSize);
          Tree.push_back(Node);
        }
      }
      if (Random.nextBool(0.7)) {
        Runtime::Scope Record(RT, SSearchRecord);
        Runtime::Scope New(RT, SRecordNew);
        uint64_t Rec = RT.malloc(RecordSize, SNew);
        RT.store(Rec, 8);
        Records.push_back(Rec);
      }

      // Descend: walk a recently expanded window of the tree.
      if (Tree.size() > WindowNodes) {
        uint64_t Start = Random.nextBelow(Tree.size() - WindowNodes);
        for (uint64_t I = Start; I < Start + WindowNodes; ++I) {
          RT.load(Tree[I], NodeSize);
          RT.store(Tree[I] + 16, 8); // Visit counts.
        }
      }

      // Frontier churn: short-lived candidate nodes.
      {
        Runtime::Scope Expand(RT, SSearchExpand);
        for (int I = 0; I < 4; ++I) {
          uint64_t Node;
          {
            Runtime::Scope New(RT, SExpandNew);
            Node = RT.malloc(NodeSize, SNew);
          }
          RT.store(Node, NodeSize);
          Frontier.push_back(Node);
        }
      }
      while (Frontier.size() > 16) {
        RT.load(Frontier.back(), NodeSize);
        RT.free(Frontier.back());
        Frontier.pop_back();
      }

      // Board evaluation samples the pattern tables (cold, unaffected).
      for (int I = 0; I < 12; ++I) {
        uint64_t T = Patterns[Random.nextBelow(Patterns.size())];
        RT.load(T + (Random.nextBelow(PatternBytes / 64)) * 64, 8);
      }

      // Playouts dominate: leela is compute-bound.
      RT.compute(20000);

      // Rare, never-freed transposition entry.
      if (Random.nextBool(0.001)) {
        Runtime::Scope Tt(RT, SSearchTt);
        Runtime::Scope New(RT, STtNew);
        uint64_t Entry = RT.malloc(TtSize, SNew);
        RT.store(Entry, TtSize);
        TtEntries.push_back(Entry);
      }
    }

    TearDownMove();
    for (uint64_t Node : Frontier)
      RT.free(Node);
    for (uint64_t Entry : TtEntries)
      RT.free(Entry);
    for (uint64_t T : Patterns)
      RT.free(T);
  }

private:
  FunctionId FSearch = InvalidId, FSelect = InvalidId, FExpand = InvalidId,
             FRecord = InvalidId, FTt = InvalidId, FFast = InvalidId;
  CallSiteId SMainSearch = InvalidId, SSearchSelect = InvalidId,
             SSelectNew = InvalidId, SSearchExpand = InvalidId,
             SExpandNew = InvalidId, SSearchRecord = InvalidId,
             SRecordNew = InvalidId, SSearchTt = InvalidId, STtNew = InvalidId,
             SNew = InvalidId;
};

} // namespace

HALO_REGISTER_WORKLOAD("leela", 9, LeelaWorkload);
