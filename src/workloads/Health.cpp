//===- workloads/Health.cpp - health model (Olden) ---------------------------===//
//
// Olden's hierarchical health-care simulation: a 4-ary tree of villages,
// each holding a linked list of waiting patients that is traversed every
// simulation step. Patients and their list cells are hot; treatment-history
// cells and per-step statistics records -- allocated interleaved with them
// and landing in the same size class -- are cold. List cells for both the
// hot waiting lists and the cold history lists come from a single malloc
// call site inside addList(), so call-site identification (the HDS
// comparison) must group hot and cold cells together, while HALO's
// full-context identification separates them; this is why the paper finds
// HALO extracting ~7 extra percentage points over HDS here, for a total
// speedup around 28% (Section 5.2).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <vector>

using namespace halo;

namespace {

struct Village {
  uint64_t Addr = 0;
  std::vector<std::pair<uint64_t, uint64_t>> Waiting; ///< (cell, patient).
  int Depth = 0;
};

class HealthWorkload : public Workload {
public:
  std::string name() const override { return "health"; }

  void build(Program &P) override {
    FunctionId Main = P.addFunction("main");
    FAllocTree = P.addFunction("alloc_tree");
    FSim = P.addFunction("sim");
    FGenPatients = P.addFunction("generate_patient");
    FPutInHosp = P.addFunction("put_in_hosp");
    FRecordHist = P.addFunction("record_history");
    FAddList = P.addFunction("addList");
    FStats = P.addFunction("update_stats");
    SMainTree = P.addCallSite(Main, FAllocTree, "main>alloc_tree");
    SVillage = P.addMallocSite(FAllocTree, "alloc_tree>malloc");
    SMainSim = P.addCallSite(Main, FSim, "main>sim");
    SSimGen = P.addCallSite(FSim, FGenPatients, "sim>generate_patient");
    SPatient = P.addMallocSite(FGenPatients, "generate_patient>malloc");
    SGenPut = P.addCallSite(FGenPatients, FPutInHosp,
                            "generate_patient>put_in_hosp");
    SPutAdd = P.addCallSite(FPutInHosp, FAddList, "put_in_hosp>addList");
    SSimHist = P.addCallSite(FSim, FRecordHist, "sim>record_history");
    SHistAdd = P.addCallSite(FRecordHist, FAddList, "record_history>addList");
    SCell = P.addMallocSite(FAddList, "addList>malloc");
    SSimStats = P.addCallSite(FSim, FStats, "sim>update_stats");
    SStatRec = P.addMallocSite(FStats, "update_stats>malloc");
  }

  void run(Runtime &RT, Scale S, uint64_t Seed) override {
    const int Levels = S == Scale::Test ? 3 : 4;
    const int Steps = S == Scale::Test ? 8 : 40;
    const int PatientsPerLeafStep = S == Scale::Test ? 6 : 15;
    const uint64_t CellSize = 32, PatientSize = 32, HistSize = 32,
                   StatSize = 32; // All share the 32B class.
    Rng Random(Seed ^ 0x4EA17Dull);

    std::vector<Village> Villages;
    std::vector<uint64_t> History, Stats;

    // Build the 4-ary village tree.
    {
      Runtime::Scope Tree(RT, SMainTree);
      int CountAtLevel = 1;
      for (int L = 0; L < Levels; ++L) {
        for (int I = 0; I < CountAtLevel; ++I) {
          Village V;
          V.Addr = RT.malloc(144, SVillage);
          RT.store(V.Addr, 144);
          V.Depth = L;
          Villages.push_back(V);
        }
        CountAtLevel *= 4;
      }
    }

    // Simulate.
    Runtime::Scope Sim(RT, SMainSim);
    for (int Step = 0; Step < Steps; ++Step) {
      // New patients arrive at leaf villages; their list cells come from
      // the same addList() malloc as the cold history cells.
      {
        Runtime::Scope Gen(RT, SSimGen);
        for (Village &V : Villages) {
          if (V.Depth != Levels - 1)
            continue;
          for (int I = 0; I < PatientsPerLeafStep; ++I) {
            uint64_t Patient = RT.malloc(PatientSize, SPatient);
            RT.store(Patient, PatientSize);
            uint64_t Cell;
            {
              Runtime::Scope Put(RT, SGenPut);
              Runtime::Scope Add(RT, SPutAdd);
              Cell = RT.malloc(CellSize, SCell);
            }
            RT.store(Cell, CellSize);
            V.Waiting.emplace_back(Cell, Patient);
            // Cold interleavers: history and statistics records.
            if (Random.nextBool(0.5)) {
              Runtime::Scope Hist(RT, SSimHist);
              Runtime::Scope Add(RT, SHistAdd);
              uint64_t H = RT.malloc(HistSize, SCell);
              RT.store(H, 8);
              History.push_back(H);
            }
            if (Random.nextBool(0.5)) {
              Runtime::Scope Stat(RT, SSimStats);
              uint64_t R = RT.malloc(StatSize, SStatRec);
              RT.store(R, 8);
              Stats.push_back(R);
            }
          }
        }
      }

      // Check every village's waiting list: the hot traversal.
      for (Village &V : Villages) {
        size_t Keep = 0;
        for (size_t I = 0; I < V.Waiting.size(); ++I) {
          auto [Cell, Patient] = V.Waiting[I];
          RT.load(Cell, CellSize);       // cell->next, cell->patient
          RT.load(Patient, PatientSize); // examine the patient
          RT.store(Patient + 8, 4);      // bump time-in-queue
          RT.compute(4);
          if (Random.nextBool(0.06)) {
            RT.free(Cell); // Patient treated: cell retired.
            RT.free(Patient);
          } else {
            V.Waiting[Keep++] = V.Waiting[I];
          }
        }
        V.Waiting.resize(Keep);
      }
    }

    // One cold pass over the history at the end.
    for (uint64_t H : History)
      RT.load(H, 8);

    for (Village &V : Villages) {
      for (auto [Cell, Patient] : V.Waiting) {
        RT.free(Cell);
        RT.free(Patient);
      }
      RT.free(V.Addr);
    }
    for (uint64_t H : History)
      RT.free(H);
    for (uint64_t R : Stats)
      RT.free(R);
  }

private:
  FunctionId FAllocTree = InvalidId, FSim = InvalidId, FGenPatients = InvalidId,
             FPutInHosp = InvalidId, FRecordHist = InvalidId,
             FAddList = InvalidId, FStats = InvalidId;
  CallSiteId SMainTree = InvalidId, SVillage = InvalidId, SMainSim = InvalidId,
             SSimGen = InvalidId, SPatient = InvalidId, SGenPut = InvalidId,
             SPutAdd = InvalidId, SSimHist = InvalidId, SHistAdd = InvalidId,
             SCell = InvalidId, SSimStats = InvalidId, SStatRec = InvalidId;
};

} // namespace

HALO_REGISTER_WORKLOAD("health", 0, HealthWorkload);
