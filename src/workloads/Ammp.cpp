//===- workloads/Ammp.cpp - ammp model (SPEC CPU2000) -------------------------===//
//
// ammp's molecular dynamics keeps atoms on linked lists and rebuilds
// neighbour lists as the simulation advances. Atom headers (list cells) and
// atom bodies are hot and touched pairwise by every force evaluation;
// bookkeeping allocations (residue labels, energy logs) interleave in the
// same size classes. Direct malloc call sites, prior-work shape.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <vector>

using namespace halo;

namespace {

class AmmpWorkload : public Workload {
public:
  std::string name() const override { return "ammp"; }

  void build(Program &P) override {
    FunctionId Main = P.addFunction("main");
    FRead = P.addFunction("read_atoms");
    FForce = P.addFunction("force_pass");
    FLogger = P.addFunction("log_energy");
    SMainRead = P.addCallSite(Main, FRead, "main>read_atoms");
    SAtomCell = P.addMallocSite(FRead, "read_atoms>malloc_cell");
    SAtomBody = P.addMallocSite(FRead, "read_atoms>malloc_atom");
    SLabel = P.addMallocSite(FRead, "read_atoms>malloc_label");
    SMainForce = P.addCallSite(Main, FForce, "main>force_pass");
    SForceLog = P.addCallSite(FForce, FLogger, "force_pass>log_energy");
    SLogRec = P.addMallocSite(FLogger, "log_energy>malloc");
  }

  void run(Runtime &RT, Scale S, uint64_t Seed) override {
    const uint64_t Atoms = S == Scale::Test ? 3000 : 52000;
    const int Steps = S == Scale::Test ? 5 : 11;
    const uint64_t CellSize = 32, AtomSize = 32, LabelSize = 32,
                   LogSize = 32; // Logs pollute the atoms' size class.
    Rng Random(Seed ^ 0xA33Bull);

    struct Atom {
      uint64_t Cell;
      uint64_t Body;
    };
    std::vector<Atom> Molecule;
    std::vector<uint64_t> Labels, Logs;

    {
      Runtime::Scope Read(RT, SMainRead);
      Molecule.reserve(Atoms);
      for (uint64_t I = 0; I < Atoms; ++I) {
        Atom A;
        A.Cell = RT.malloc(CellSize, SAtomCell);
        RT.store(A.Cell, CellSize);
        A.Body = RT.malloc(AtomSize, SAtomBody);
        RT.store(A.Body, AtomSize);
        Molecule.push_back(A);
        if (Random.nextBool(0.4)) {
          uint64_t L = RT.malloc(LabelSize, SLabel);
          RT.store(L, 8);
          Labels.push_back(L);
        }
      }
    }

    // The neighbour list dictates a fixed atom visit order unrelated to
    // allocation order.
    std::vector<uint32_t> Order(Molecule.size());
    for (uint32_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    Random.shuffle(Order);
    {
      Runtime::Scope Force(RT, SMainForce);
      for (int Step = 0; Step < Steps; ++Step) {
        for (uint32_t Idx : Order) {
          Atom &A = Molecule[Idx];
          RT.load(A.Cell, CellSize); // next pointer + flags
          RT.load(A.Body, AtomSize); // coordinates, charge
          RT.store(A.Body + 8, 16);  // force accumulation
          RT.compute(40);
        }
        // Energy log entry per step bucket: cold, same class as atoms.
        {
          Runtime::Scope Log(RT, SForceLog);
          for (int I = 0; I < 64; ++I) {
            uint64_t Rec = RT.malloc(LogSize, SLogRec);
            RT.store(Rec, 16);
            Logs.push_back(Rec);
          }
        }
      }
    }

    for (Atom &A : Molecule) {
      RT.free(A.Cell);
      RT.free(A.Body);
    }
    for (uint64_t L : Labels)
      RT.free(L);
    for (uint64_t R : Logs)
      RT.free(R);
  }

private:
  FunctionId FRead = InvalidId, FForce = InvalidId, FLogger = InvalidId;
  CallSiteId SMainRead = InvalidId, SAtomCell = InvalidId,
             SAtomBody = InvalidId, SLabel = InvalidId, SMainForce = InvalidId,
             SForceLog = InvalidId, SLogRec = InvalidId;
};

} // namespace

HALO_REGISTER_WORKLOAD("ammp", 3, AmmpWorkload);
