//===- workloads/Workload.h - Benchmark workload models ---------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark programs of Section 5.1, modelled as deterministic
/// allocation-and-access generators over the instrumented runtime. Each
/// model encodes the *character* the paper attributes to its benchmark --
/// wrapper-function opacity in povray, deep call chains in xalanc,
/// operator-new-only allocation in leela, direct mallocs in roms, and so
/// on -- because those characters are what drive the per-benchmark
/// outcomes in Figures 13-15. Every model supports the paper's two input
/// scales (profile on small *test* inputs, measure on larger *ref* inputs)
/// and a seed that varies inputs across trials.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_WORKLOADS_WORKLOAD_H
#define HALO_WORKLOADS_WORKLOAD_H

#include "prog/Program.h"
#include "runtime/Runtime.h"
#include "support/Rng.h"

#include <memory>
#include <string>
#include <vector>

namespace halo {

/// Input scale: the paper profiles on test and measures on ref.
enum class Scale { Test, Ref };

/// A benchmark program model.
class Workload {
public:
  virtual ~Workload();

  virtual std::string name() const = 0;

  /// Registers the model's functions and call sites with \p Prog. Called
  /// exactly once, before any run; ids are stored in the instance.
  virtual void build(Program &Prog) = 0;

  /// Executes the program on \p RT. Must be re-runnable: all mutable state
  /// lives on the stack of this call.
  virtual void run(Runtime &RT, Scale S, uint64_t Seed) = 0;
};

/// Names of all registered benchmark models, in registration order (the
/// paper's Figure 13 order for the built-in eleven). Do not call during
/// static initialisation: models register themselves via static
/// initialisers, and the list is only complete once those have all run.
const std::vector<std::string> &workloadNames();

/// Instantiates a workload by name; returns nullptr for unknown names.
std::unique_ptr<Workload> createWorkload(const std::string &Name);

/// Adds a factory to the workload registry at static-initialisation time.
/// Each model's translation unit registers itself (see
/// HALO_REGISTER_WORKLOAD); nothing else needs to know the model exists.
/// \p Order fixes the model's position in workloadNames() -- static
/// initialisation order across translation units is unspecified, so the
/// listing position is explicit rather than an accident of link order.
class WorkloadRegistrar {
public:
  WorkloadRegistrar(const char *Name, int Order,
                    std::unique_ptr<Workload> (*Factory)());
};

/// One line per model, at namespace scope in the model's .cpp:
///   HALO_REGISTER_WORKLOAD("health", 0, HealthWorkload);
/// The model type may live in an anonymous namespace; only the registrar
/// object (and through it the factory) escapes the translation unit.
#define HALO_REGISTER_WORKLOAD(NAME, ORDER, TYPE)                            \
  static const ::halo::WorkloadRegistrar RegisterWorkload_##TYPE(            \
      NAME, ORDER, []() -> std::unique_ptr<::halo::Workload> {               \
        return std::make_unique<TYPE>();                                     \
      })

} // namespace halo

#endif // HALO_WORKLOADS_WORKLOAD_H
