//===- workloads/Povray.cpp - povray model (SPEC CPU2017) -------------------===//
//
// The paper's motivating example (Section 3, Figures 2/3): a token-driven
// loop allocates three kinds of geometry objects; types A and B are later
// traversed while type C is left aside. Crucially, almost all heap data is
// allocated through a wrapper function (pov::pov_malloc), so the immediate
// call site of malloc is the same for every object and call-site-only
// identification (hot data streams, MO) cannot tell the types apart. HALO's
// full-context identification distinguishes them through the Copy_Plane /
// Copy_CSG / Create_Texture call sites. Rendering is compute-heavy, so the
// paper observes a 5-15% L1D miss reduction with little execution-time
// change (Section 5.2).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <vector>

using namespace halo;

namespace {

class PovrayWorkload : public Workload {
public:
  std::string name() const override { return "povray"; }

  void build(Program &P) override {
    FunctionId Main = P.addFunction("main");
    FParse = P.addFunction("Parse_Object");
    FCopyPlane = P.addFunction("Copy_Plane");
    FCopyCsg = P.addFunction("Copy_CSG");
    FCreateTexture = P.addFunction("Create_Texture");
    FPovMalloc = P.addFunction("pov_malloc");
    FRender = P.addFunction("Render");
    SMainParse = P.addCallSite(Main, FParse, "main>Parse_Object");
    SParsePlane = P.addCallSite(FParse, FCopyPlane, "Parse>Copy_Plane");
    SParseCsg = P.addCallSite(FParse, FCopyCsg, "Parse>Copy_CSG");
    SParseTexture =
        P.addCallSite(FParse, FCreateTexture, "Parse>Create_Texture");
    SPlanePov = P.addCallSite(FCopyPlane, FPovMalloc, "Copy_Plane>pov_malloc");
    SCsgPov = P.addCallSite(FCopyCsg, FPovMalloc, "Copy_CSG>pov_malloc");
    STexturePov =
        P.addCallSite(FCreateTexture, FPovMalloc, "Create_Texture>pov_malloc");
    SPovMalloc = P.addMallocSite(FPovMalloc, "pov_malloc>malloc");
    SMainRender = P.addCallSite(Main, FRender, "main>Render");
  }

  void run(Runtime &RT, Scale S, uint64_t Seed) override {
    const uint64_t Tokens = S == Scale::Test ? 6000 : 120000;
    const int Passes = S == Scale::Test ? 2 : 4;
    const uint64_t ObjSize = 32; // All three types share the 32B class.
    Rng Random(Seed * 0x9E37 + 7);

    std::vector<uint64_t> Scene; // Types A and B, linked in a list.
    std::vector<uint64_t> Textures;

    // Parse: allocate one object per token through the wrapper.
    {
      Runtime::Scope Parse(RT, SMainParse);
      for (uint64_t T = 0; T < Tokens; ++T) {
        double Kind = Random.nextDouble();
        uint64_t Obj;
        if (Kind < 0.28) {
          Runtime::Scope Create(RT, SParsePlane);
          Runtime::Scope Wrapper(RT, SPlanePov);
          Obj = RT.malloc(ObjSize, SPovMalloc);
          RT.store(Obj, ObjSize);
          Scene.push_back(Obj);
        } else if (Kind < 0.56) {
          Runtime::Scope Create(RT, SParseCsg);
          Runtime::Scope Wrapper(RT, SCsgPov);
          Obj = RT.malloc(ObjSize, SPovMalloc);
          RT.store(Obj, ObjSize);
          Scene.push_back(Obj);
        } else {
          Runtime::Scope Create(RT, SParseTexture);
          Runtime::Scope Wrapper(RT, STexturePov);
          Obj = RT.malloc(ObjSize, SPovMalloc);
          RT.store(Obj, ObjSize);
          Textures.push_back(Obj);
        }
        RT.compute(60); // Tokeniser work.
      }
    }

    // Render: repeatedly walk the scene list (types A and B only), doing
    // substantial per-object shading compute -- povray is compute-bound.
    {
      Runtime::Scope Render(RT, SMainRender);
      for (int Pass = 0; Pass < Passes; ++Pass) {
        for (uint64_t Obj : Scene) {
          RT.load(Obj, ObjSize);
          RT.compute(800);
        }
        // Textures are consulted rarely: once per pass, a small sample.
        for (size_t I = 0; I < Textures.size(); I += 4) {
          RT.load(Textures[I], 8);
          RT.compute(800);
        }
      }
    }

    for (uint64_t Obj : Scene)
      RT.free(Obj);
    for (uint64_t Obj : Textures)
      RT.free(Obj);
  }

private:
  FunctionId FParse = InvalidId, FCopyPlane = InvalidId, FCopyCsg = InvalidId,
             FCreateTexture = InvalidId, FPovMalloc = InvalidId,
             FRender = InvalidId;
  CallSiteId SMainParse = InvalidId, SParsePlane = InvalidId,
             SParseCsg = InvalidId, SParseTexture = InvalidId,
             SPlanePov = InvalidId, SCsgPov = InvalidId,
             STexturePov = InvalidId, SPovMalloc = InvalidId,
             SMainRender = InvalidId;
};

} // namespace

HALO_REGISTER_WORKLOAD("povray", 6, PovrayWorkload);
