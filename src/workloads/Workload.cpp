//===- workloads/Workload.cpp - Benchmark workload registry -----------------===//

#include "workloads/Workload.h"

#include <algorithm>
#include <cassert>

using namespace halo;

Workload::~Workload() = default;

namespace {

struct RegistryEntry {
  const char *Name;
  int Order;
  std::unique_ptr<Workload> (*Factory)();
};

/// Construct-on-first-use so registrars from any translation unit can run
/// in any static-initialisation order.
std::vector<RegistryEntry> &registry() {
  static std::vector<RegistryEntry> Entries;
  return Entries;
}

} // namespace

WorkloadRegistrar::WorkloadRegistrar(const char *Name, int Order,
                                     std::unique_ptr<Workload> (*Factory)()) {
  std::vector<RegistryEntry> &Entries = registry();
#ifndef NDEBUG
  for (const RegistryEntry &E : Entries)
    assert(std::string(E.Name) != Name && E.Order != Order &&
           "duplicate workload registration");
#endif
  // Keep the registry sorted by the explicit order so lookups and the
  // name listing never depend on which translation unit initialised
  // first.
  auto Pos = std::lower_bound(
      Entries.begin(), Entries.end(), Order,
      [](const RegistryEntry &E, int O) { return E.Order < O; });
  Entries.insert(Pos, RegistryEntry{Name, Order, Factory});
}

const std::vector<std::string> &halo::workloadNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> Sorted;
    for (const RegistryEntry &E : registry())
      Sorted.push_back(E.Name);
    return Sorted;
  }();
  return Names;
}

std::unique_ptr<Workload> halo::createWorkload(const std::string &Name) {
  for (const RegistryEntry &E : registry())
    if (Name == E.Name)
      return E.Factory();
  return nullptr;
}
