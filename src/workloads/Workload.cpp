//===- workloads/Workload.cpp - Benchmark workload registry -----------------===//

#include "workloads/Workload.h"

#include "workloads/Factories.h"

using namespace halo;

Workload::~Workload() = default;

const std::vector<std::string> &halo::workloadNames() {
  // Figure 13 order: prior-work benchmarks first, then SPECrate CPU2017.
  static const std::vector<std::string> Names = {
      "health", "ft",     "analyzer", "ammp",  "art",  "equake",
      "povray", "omnetpp", "xalanc",  "leela", "roms"};
  return Names;
}

std::unique_ptr<Workload> halo::createWorkload(const std::string &Name) {
  if (Name == "health")
    return createHealthWorkload();
  if (Name == "ft")
    return createFtWorkload();
  if (Name == "analyzer")
    return createAnalyzerWorkload();
  if (Name == "ammp")
    return createAmmpWorkload();
  if (Name == "art")
    return createArtWorkload();
  if (Name == "equake")
    return createEquakeWorkload();
  if (Name == "povray")
    return createPovrayWorkload();
  if (Name == "omnetpp")
    return createOmnetppWorkload();
  if (Name == "xalanc")
    return createXalancWorkload();
  if (Name == "leela")
    return createLeelaWorkload();
  if (Name == "roms")
    return createRomsWorkload();
  return nullptr;
}
