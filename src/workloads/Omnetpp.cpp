//===- workloads/Omnetpp.cpp - omnetpp model (SPEC CPU2017) -------------------===//
//
// omnetpp's discrete-event simulator allocates everything through C++
// operator new (modelled as the cMalloc wrapper: every allocation shares one
// immediate malloc call site, defeating call-site-only identification).
// Each delivered event touches its target module's gate and queue objects,
// which were allocated at network-setup time interleaved with cold
// configuration records in the same size class -- the regularity HALO's
// full-context grouping recovers. Events and messages churn through a
// future-event set whose pops cluster in the near future, so the
// specialised allocator's chunks recycle; the paper runs omnetpp with
// 128 KiB chunks and always-reused chunks (Appendix A.8) and reports a ~4%
// speedup (Section 5.2).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <algorithm>
#include <vector>

using namespace halo;

namespace {

class OmnetppWorkload : public Workload {
public:
  std::string name() const override { return "omnetpp"; }

  void build(Program &P) override {
    FunctionId Main = P.addFunction("main");
    FSetup = P.addFunction("build_network");
    FGate = P.addFunction("create_gate");
    FQueue = P.addFunction("create_queue");
    FConfig = P.addFunction("read_config");
    FSim = P.addFunction("sim_loop");
    FSched = P.addFunction("schedule_event");
    FCreateMsg = P.addFunction("create_message");
    FStats = P.addFunction("record_stats");
    FNew = P.addFunction("op_new"); // The operator-new wrapper.
    SMainSetup = P.addCallSite(Main, FSetup, "main>build_network");
    SSetupGate = P.addCallSite(FSetup, FGate, "setup>create_gate");
    SGateNew = P.addCallSite(FGate, FNew, "create_gate>op_new");
    SSetupQueue = P.addCallSite(FSetup, FQueue, "setup>create_queue");
    SQueueNew = P.addCallSite(FQueue, FNew, "create_queue>op_new");
    SSetupConfig = P.addCallSite(FSetup, FConfig, "setup>read_config");
    SConfigNew = P.addCallSite(FConfig, FNew, "read_config>op_new");
    SMainSim = P.addCallSite(Main, FSim, "main>sim_loop");
    SSimSched = P.addCallSite(FSim, FSched, "sim>schedule_event");
    SSchedNew = P.addCallSite(FSched, FNew, "schedule_event>op_new");
    SSimMsg = P.addCallSite(FSim, FCreateMsg, "sim>create_message");
    SMsgNew = P.addCallSite(FCreateMsg, FNew, "create_message>op_new");
    SSimStats = P.addCallSite(FSim, FStats, "sim>record_stats");
    SStatsNew = P.addCallSite(FStats, FNew, "record_stats>op_new");
    SNew = P.addMallocSite(FNew, "op_new>malloc"); // Single malloc site.
  }

  void run(Runtime &RT, Scale S, uint64_t Seed) override {
    const uint64_t Modules = S == Scale::Test ? 3000 : 22000;
    const uint64_t Warmup = S == Scale::Test ? 1000 : 4000;
    const uint64_t Iterations = S == Scale::Test ? 12000 : 130000;
    const uint64_t GateSize = 48, QueueSize = 48, ConfigSize = 48;
    const uint64_t EventSize = 16, MsgSize = 48, StatSize = 32;
    Rng Random(Seed ^ 0x03E7ull);

    struct Module {
      uint64_t Gate;
      uint64_t Queue;
    };
    std::vector<Module> Network;
    std::vector<uint64_t> Configs;
    std::vector<std::pair<uint64_t, uint64_t>> Fes; // (event, message).
    std::vector<uint64_t> Stats;

    // Network setup: per-module gate and queue objects, interleaved with
    // cold configuration records in the same size class.
    {
      Runtime::Scope Setup(RT, SMainSetup);
      Network.reserve(Modules);
      for (uint64_t I = 0; I < Modules; ++I) {
        Module M;
        {
          Runtime::Scope Gate(RT, SSetupGate);
          Runtime::Scope New(RT, SGateNew);
          M.Gate = RT.malloc(GateSize, SNew);
        }
        RT.store(M.Gate, GateSize);
        if (Random.nextBool(0.6)) {
          Runtime::Scope Config(RT, SSetupConfig);
          Runtime::Scope New(RT, SConfigNew);
          uint64_t C = RT.malloc(ConfigSize, SNew);
          RT.store(C, 8);
          Configs.push_back(C);
        }
        {
          Runtime::Scope Queue(RT, SSetupQueue);
          Runtime::Scope New(RT, SQueueNew);
          M.Queue = RT.malloc(QueueSize, SNew);
        }
        RT.store(M.Queue, QueueSize);
        Network.push_back(M);
      }
    }

    Runtime::Scope Sim(RT, SMainSim);
    auto Schedule = [&] {
      uint64_t Ev, Msg;
      {
        Runtime::Scope Sched(RT, SSimSched);
        Runtime::Scope New(RT, SSchedNew);
        Ev = RT.malloc(EventSize, SNew);
      }
      RT.store(Ev, EventSize);
      {
        Runtime::Scope Create(RT, SSimMsg);
        Runtime::Scope New(RT, SMsgNew);
        Msg = RT.malloc(MsgSize, SNew);
      }
      RT.store(Msg, MsgSize);
      Fes.emplace_back(Ev, Msg);
    };

    for (uint64_t I = 0; I < Warmup; ++I)
      Schedule();

    for (uint64_t I = 0; I < Iterations; ++I) {
      // Event timestamps cluster in the near future: pops draw from the
      // oldest few hundred events, so lifetimes are bounded and the group
      // allocator's chunks recycle promptly.
      uint64_t Window = std::min<uint64_t>(Fes.size(), 500);
      size_t Pick = Random.nextBelow(Window);
      auto [Ev, Msg] = Fes[Pick];
      Fes[Pick] = Fes.back();
      Fes.pop_back();
      RT.load(Ev, EventSize); // Event metadata.
      // Route from the source module's gate to the target module's queue.
      Module &Source = Network[Random.nextBelow(Network.size())];
      Module &Target = Network[Random.nextBelow(Network.size())];
      RT.load(Source.Gate, GateSize);
      RT.load(Source.Queue, QueueSize);
      RT.load(Target.Gate, GateSize);
      RT.load(Target.Queue, QueueSize);
      RT.load(Msg, MsgSize); // Deliver the message.
      RT.store(Target.Queue + 16, 8);
      RT.compute(150); // Module handler work.
      if (Random.nextBool(0.6)) {
        // Self-message: the event/message pair is rescheduled, not freed.
        Fes.emplace_back(Ev, Msg);
      } else {
        RT.free(Ev);
        RT.free(Msg);
        Schedule();
      }
      if (Random.nextBool(0.08)) {
        Runtime::Scope Stat(RT, SSimStats);
        Runtime::Scope New(RT, SStatsNew);
        uint64_t Rec = RT.malloc(StatSize, SNew);
        RT.store(Rec, 8);
        Stats.push_back(Rec);
      }
      // Output vectors flush periodically, releasing the record storage.
      if (I % 8192 == 8191) {
        for (uint64_t Rec : Stats)
          RT.free(Rec);
        Stats.clear();
      }
    }

    for (auto [Ev, Msg] : Fes) {
      RT.free(Ev);
      RT.free(Msg);
    }
    for (uint64_t Rec : Stats)
      RT.free(Rec);
    for (Module &M : Network) {
      RT.free(M.Gate);
      RT.free(M.Queue);
    }
    for (uint64_t C : Configs)
      RT.free(C);
  }

private:
  FunctionId FSetup = InvalidId, FGate = InvalidId, FQueue = InvalidId,
             FConfig = InvalidId, FSim = InvalidId, FSched = InvalidId,
             FCreateMsg = InvalidId, FStats = InvalidId, FNew = InvalidId;
  CallSiteId SMainSetup = InvalidId, SSetupGate = InvalidId,
             SGateNew = InvalidId, SSetupQueue = InvalidId,
             SQueueNew = InvalidId, SSetupConfig = InvalidId,
             SConfigNew = InvalidId, SMainSim = InvalidId,
             SSimSched = InvalidId, SSchedNew = InvalidId, SSimMsg = InvalidId,
             SMsgNew = InvalidId, SSimStats = InvalidId, SStatsNew = InvalidId,
             SNew = InvalidId;
};

} // namespace

HALO_REGISTER_WORKLOAD("omnetpp", 7, OmnetppWorkload);
