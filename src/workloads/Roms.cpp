//===- workloads/Roms.cpp - roms model (SPEC CPU2017) -------------------------===//
//
// roms "tends to call malloc directly" (Section 5.2) -- small field tiles
// come from a handful of plain call sites -- but most traffic streams over
// large ocean-state arrays whose placement HALO does not touch (they exceed
// the maximum grouped size). Two tile fields are allocated interleaved and
// usually accessed pairwise (slightly irregularly), with an additional
// perfectly regular per-field sweep. The regular sweep compresses into hot
// object-level streams that suggest separating the two fields, so the HDS
// comparison splits data the size-segregated baseline naturally co-located
// and *increases* misses; HALO's context graph stays tiny (tens of nodes
// versus >150,000 streams) and groups the two fields together, leaving the
// layout -- and performance -- essentially unchanged.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <vector>

using namespace halo;

namespace {

class RomsWorkload : public Workload {
public:
  std::string name() const override { return "roms"; }

  void build(Program &P) override {
    FunctionId Main = P.addFunction("main");
    FInit = P.addFunction("init_fields");
    FStep = P.addFunction("step");
    SMainInit = P.addCallSite(Main, FInit, "main>init_fields");
    SField1 = P.addMallocSite(FInit, "init>malloc_zeta");
    SField2 = P.addMallocSite(FInit, "init>malloc_ubar");
    SGrid = P.addMallocSite(FInit, "init>malloc_grid");
    SMainStep = P.addCallSite(Main, FStep, "main>step");
  }

  void run(Runtime &RT, Scale S, uint64_t Seed) override {
    const uint64_t Tiles = S == Scale::Test ? 2000 : 14000;
    const uint64_t GridArrays = S == Scale::Test ? 24 : 192;
    const uint64_t GridBytes = 16384; ///< Beyond MaxGroupedSize: forwarded.
    const int Steps = S == Scale::Test ? 3 : 6;
    const uint64_t TileSize = 32;
    Rng Random(Seed ^ 0x4035ull);

    std::vector<uint64_t> Zeta, Ubar, Grids;

    {
      Runtime::Scope Init(RT, SMainInit);
      for (uint64_t I = 0; I < Tiles; ++I) {
        uint64_t A = RT.malloc(TileSize, SField1);
        RT.store(A, TileSize);
        Zeta.push_back(A);
        uint64_t B = RT.malloc(TileSize, SField2);
        RT.store(B, TileSize);
        Ubar.push_back(B);
      }
      for (uint64_t I = 0; I < GridArrays; ++I) {
        uint64_t G = RT.malloc(GridBytes, SGrid);
        RT.store(G, GridBytes);
        Grids.push_back(G);
      }
    }

    Runtime::Scope Step(RT, SMainStep);
    for (int T = 0; T < Steps; ++T) {
      // Phase A: pairwise tile updates in data-driven (random) order, so
      // the object-level trace does not compress into repeated streams.
      // Each pair shares a cache line when the two fields stay interleaved
      // (as the size-segregated baseline naturally places them).
      for (uint64_t K = 0; K < Tiles; ++K) {
        uint64_t I = Random.nextBelow(Tiles);
        RT.load(Zeta[I], TileSize);
        RT.load(Ubar[I], TileSize);
        RT.store(Zeta[I], 8);
        RT.compute(10);
      }
      // Phase B: a perfectly regular per-field boundary sweep -- exactly
      // repeated across steps, so SEQUITUR condenses it into hot streams
      // whose co-allocation sets contain a single field each. Those
      // truncated sets are what mislead the HDS comparison into separating
      // the two fields.
      std::vector<uint64_t> &Swept = (T % 2 == 0) ? Zeta : Ubar;
      for (uint64_t I = 0; I < Tiles; ++I) {
        if (Random.nextBool(0.01))
          continue; // Wet/dry masking varies slightly between steps.
        RT.load(Swept[I], TileSize);
      }
      // Phase C: the large-array streaming that dominates roms' time and
      // that no small-object layout decision can affect.
      for (uint64_t G : Grids)
        for (uint64_t Off = 0; Off < GridBytes; Off += 64) {
          RT.load(G + Off, 64);
          RT.compute(6);
        }
    }

    for (uint64_t A : Zeta)
      RT.free(A);
    for (uint64_t B : Ubar)
      RT.free(B);
    for (uint64_t G : Grids)
      RT.free(G);
  }

private:
  FunctionId FInit = InvalidId, FStep = InvalidId;
  CallSiteId SMainInit = InvalidId, SField1 = InvalidId, SField2 = InvalidId,
             SGrid = InvalidId, SMainStep = InvalidId;
};

} // namespace

HALO_REGISTER_WORKLOAD("roms", 10, RomsWorkload);
