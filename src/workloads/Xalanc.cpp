//===- workloads/Xalanc.cpp - xalanc model (SPEC CPU2017) ---------------------===//
//
// xalancbmk "displays significant indirection in its call chains, requiring
// the traversal of tens of stack frames to properly appreciate the context
// in which allocations have been made" (Section 5.2). All DOM-node
// allocation funnels through an XMemory::operator new wrapper (one
// immediate malloc site, defeating the HDS comparison), reached through a
// deep chain of transformer layers; element and text nodes (hot, traversed
// together) differ from attribute metadata (cold) only far up the stack.
// Some strings come from an internal arena pool (4 KiB block allocations the
// profiler cannot see into) -- the custom-allocator obscuring the paper
// notes. HALO still achieves ~16% speedup.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <vector>

using namespace halo;

namespace {

constexpr int ChainDepth = 8;

class XalancWorkload : public Workload {
public:
  std::string name() const override { return "xalanc"; }

  void build(Program &P) override {
    FunctionId Main = P.addFunction("main");
    FParse = P.addFunction("parseSource");
    // The deep transformer chain.
    FunctionId Prev = FParse;
    for (int I = 0; I < ChainDepth; ++I) {
      FChain[I] = P.addFunction("XalanLayer" + std::to_string(I));
      SChain[I] = P.addCallSite(Prev, FChain[I],
                                "layer" + std::to_string(I) + ">next");
      Prev = FChain[I];
    }
    FElem = P.addFunction("createElement");
    FText = P.addFunction("createTextNode");
    FAttr = P.addFunction("createAttribute");
    FXMem = P.addFunction("XMemory_new");
    FPool = P.addFunction("XalanArenaPool");
    FTransform = P.addFunction("transform");
    SDeepElem = P.addCallSite(Prev, FElem, "deep>createElement");
    SDeepText = P.addCallSite(Prev, FText, "deep>createTextNode");
    SDeepAttr = P.addCallSite(Prev, FAttr, "deep>createAttribute");
    SElemNew = P.addCallSite(FElem, FXMem, "createElement>XMemory_new");
    STextNew = P.addCallSite(FText, FXMem, "createTextNode>XMemory_new");
    SAttrNew = P.addCallSite(FAttr, FXMem, "createAttribute>XMemory_new");
    SXMem = P.addMallocSite(FXMem, "XMemory_new>malloc"); // Single site.
    SParsePool = P.addCallSite(FParse, FPool, "parse>ArenaPool");
    SPoolBlock = P.addMallocSite(FPool, "ArenaPool>malloc_block");
    SMainParse = P.addCallSite(Main, FParse, "main>parseSource");
    SMainTransform = P.addCallSite(Main, FTransform, "main>transform");
  }

  void run(Runtime &RT, Scale S, uint64_t Seed) override {
    const uint64_t Nodes = S == Scale::Test ? 6000 : 90000;
    const int Passes = S == Scale::Test ? 4 : 12;
    const uint64_t NodeSize = 32, BlockSize = 4160, StringBytes = 32;
    Rng Random(Seed ^ 0xA1A2ull);

    struct DomPair {
      uint64_t Elem;
      uint64_t Text;
      uint64_t Str; ///< Slice of a pooled block.
    };
    std::vector<DomPair> Dom;
    std::vector<uint64_t> Attrs, Blocks;
    uint64_t PoolCursor = 0, PoolEnd = 0;

    {
      Runtime::Scope Parse(RT, SMainParse);
      // Enter the deep transformer chain once per document region.
      std::vector<std::unique_ptr<Runtime::Scope>> Chain;
      for (int I = 0; I < ChainDepth; ++I)
        Chain.push_back(std::make_unique<Runtime::Scope>(RT, SChain[I]));

      for (uint64_t I = 0; I < Nodes; ++I) {
        DomPair Pair;
        {
          Runtime::Scope Create(RT, SDeepElem);
          Runtime::Scope New(RT, SElemNew);
          Pair.Elem = RT.malloc(NodeSize, SXMem);
        }
        RT.store(Pair.Elem, NodeSize);
        {
          Runtime::Scope Create(RT, SDeepText);
          Runtime::Scope New(RT, STextNew);
          Pair.Text = RT.malloc(NodeSize, SXMem);
        }
        RT.store(Pair.Text, NodeSize);
        // Attribute metadata: cold, same wrapper, same size class.
        if (Random.nextBool(0.7)) {
          Runtime::Scope Create(RT, SDeepAttr);
          Runtime::Scope New(RT, SAttrNew);
          uint64_t Attr = RT.malloc(NodeSize, SXMem);
          RT.store(Attr, 8);
          Attrs.push_back(Attr);
        }
        // Strings come from the internal arena pool: the profiler only ever
        // sees whole-block allocations.
        if (PoolCursor + StringBytes > PoolEnd) {
          Runtime::Scope Pool(RT, SParsePool);
          PoolCursor = RT.malloc(BlockSize, SPoolBlock);
          PoolEnd = PoolCursor + BlockSize;
          Blocks.push_back(PoolCursor);
        }
        Pair.Str = PoolCursor;
        PoolCursor += StringBytes;
        RT.store(Pair.Str, StringBytes);
        Dom.push_back(Pair);
      }
    }

    {
      Runtime::Scope Transform(RT, SMainTransform);
      for (int Pass = 0; Pass < Passes; ++Pass)
        for (DomPair &Pair : Dom) {
          RT.load(Pair.Elem, NodeSize);
          RT.load(Pair.Text, NodeSize);
          RT.load(Pair.Str, StringBytes);
          RT.store(Pair.Elem + 16, 8);
          RT.compute(4); // Transformation is memory-bound.
        }
    }

    for (DomPair &Pair : Dom) {
      RT.free(Pair.Elem);
      RT.free(Pair.Text);
    }
    for (uint64_t Attr : Attrs)
      RT.free(Attr);
    for (uint64_t Block : Blocks)
      RT.free(Block);
  }

private:
  FunctionId FParse = InvalidId, FElem = InvalidId, FText = InvalidId,
             FAttr = InvalidId, FXMem = InvalidId, FPool = InvalidId,
             FTransform = InvalidId;
  FunctionId FChain[ChainDepth] = {};
  CallSiteId SChain[ChainDepth] = {};
  CallSiteId SDeepElem = InvalidId, SDeepText = InvalidId,
             SDeepAttr = InvalidId, SElemNew = InvalidId, STextNew = InvalidId,
             SAttrNew = InvalidId, SXMem = InvalidId, SParsePool = InvalidId,
             SPoolBlock = InvalidId, SMainParse = InvalidId,
             SMainTransform = InvalidId;
};

} // namespace

HALO_REGISTER_WORKLOAD("xalanc", 8, XalancWorkload);
