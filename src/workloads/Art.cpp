//===- workloads/Art.cpp - art model (SPEC CPU2000) ---------------------------===//
//
// art's adaptive-resonance network allocates, per F1-layer neuron, separate
// bottom-up and top-down weight vectors; training repeatedly scans both
// vectors of every neuron together. The two hot allocations per neuron come
// from two distinct direct call sites, interleaved with cold image-buffer
// book-keeping in the same size class -- a stand-out layout-improvement
// opportunity in prior work.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <vector>

using namespace halo;

namespace {

class ArtWorkload : public Workload {
public:
  std::string name() const override { return "art"; }

  void build(Program &P) override {
    FunctionId Main = P.addFunction("main");
    FInit = P.addFunction("init_net");
    FTrain = P.addFunction("train_match");
    SMainInit = P.addCallSite(Main, FInit, "main>init_net");
    SBottomUp = P.addMallocSite(FInit, "init_net>malloc_bu");
    STopDown = P.addMallocSite(FInit, "init_net>malloc_td");
    SImageBuf = P.addMallocSite(FInit, "init_net>malloc_buf");
    SMainTrain = P.addCallSite(Main, FTrain, "main>train_match");
  }

  void run(Runtime &RT, Scale S, uint64_t Seed) override {
    const uint64_t Neurons = S == Scale::Test ? 4000 : 60000;
    const int Epochs = S == Scale::Test ? 4 : 9;
    const uint64_t WeightBytes = 32, BufBytes = 32;
    Rng Random(Seed ^ 0xA87ull);

    struct Neuron {
      uint64_t BottomUp;
      uint64_t TopDown;
    };
    std::vector<Neuron> Net;
    std::vector<uint64_t> Buffers;

    {
      Runtime::Scope Init(RT, SMainInit);
      Net.reserve(Neurons);
      for (uint64_t I = 0; I < Neurons; ++I) {
        Neuron N;
        N.BottomUp = RT.malloc(WeightBytes, SBottomUp);
        RT.store(N.BottomUp, WeightBytes);
        N.TopDown = RT.malloc(WeightBytes, STopDown);
        RT.store(N.TopDown, WeightBytes);
        Net.push_back(N);
        if (Random.nextBool(0.8)) {
          uint64_t Buf = RT.malloc(BufBytes, SImageBuf);
          RT.store(Buf, 8);
          Buffers.push_back(Buf);
        }
      }
    }

    // Training visits neurons in match order -- a fixed permutation driven
    // by the input images, not by allocation order.
    std::vector<uint32_t> Order(Net.size());
    for (uint32_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    Random.shuffle(Order);
    {
      Runtime::Scope Train(RT, SMainTrain);
      for (int Epoch = 0; Epoch < Epochs; ++Epoch)
        for (uint32_t Idx : Order) {
          Neuron &N = Net[Idx];
          RT.load(N.BottomUp, WeightBytes);
          RT.load(N.TopDown, WeightBytes);
          RT.store(N.TopDown, 8); // Resonance update.
          RT.compute(18);
        }
    }

    for (Neuron &N : Net) {
      RT.free(N.BottomUp);
      RT.free(N.TopDown);
    }
    for (uint64_t Buf : Buffers)
      RT.free(Buf);
  }

private:
  FunctionId FInit = InvalidId, FTrain = InvalidId;
  CallSiteId SMainInit = InvalidId, SBottomUp = InvalidId,
             STopDown = InvalidId, SImageBuf = InvalidId,
             SMainTrain = InvalidId;
};

} // namespace

HALO_REGISTER_WORKLOAD("art", 4, ArtWorkload);
