//===- workloads/Ft.cpp - ft model (Ptrdist) ---------------------------------===//
//
// Ptrdist's ft computes a minimum spanning tree with a Fibonacci-heap-like
// structure. Vertices and edges are allocated directly from distinct,
// unwrapped malloc call sites as the graph is read -- exactly the "easy
// target" shape the paper says prior-work benchmarks have (Section 5.2) --
// interleaved with cold parser scratch records in the same size class. The
// MST phase repeatedly walks vertex/edge pairs, so co-locating the two hot
// contexts pays off for HALO and HDS alike.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <vector>

using namespace halo;

namespace {

class FtWorkload : public Workload {
public:
  std::string name() const override { return "ft"; }

  void build(Program &P) override {
    FunctionId Main = P.addFunction("main");
    FBuild = P.addFunction("build_graph");
    FMst = P.addFunction("mst");
    FLog = P.addFunction("log_token");
    SMainBuild = P.addCallSite(Main, FBuild, "main>build_graph");
    SVertex = P.addMallocSite(FBuild, "build_graph>malloc_vertex");
    SEdge = P.addMallocSite(FBuild, "build_graph>malloc_edge");
    SBuildLog = P.addCallSite(FBuild, FLog, "build_graph>log_token");
    SScratch = P.addMallocSite(FLog, "log_token>malloc");
    SMainMst = P.addCallSite(Main, FMst, "main>mst");
  }

  void run(Runtime &RT, Scale S, uint64_t Seed) override {
    const uint64_t Vertices = S == Scale::Test ? 2500 : 45000;
    const int EdgesPerVertex = 1;
    const int Rounds = S == Scale::Test ? 4 : 10;
    const uint64_t VertexSize = 32, EdgeSize = 32, ScratchSize = 32;
    Rng Random(Seed ^ 0xF7ull);

    struct Vertex {
      uint64_t Addr;
      uint64_t Edges[EdgesPerVertex];
    };
    std::vector<Vertex> Graph;
    std::vector<uint64_t> Scratch;

    {
      Runtime::Scope Build(RT, SMainBuild);
      Graph.reserve(Vertices);
      for (uint64_t I = 0; I < Vertices; ++I) {
        Vertex V;
        V.Addr = RT.malloc(VertexSize, SVertex);
        RT.store(V.Addr, VertexSize);
        for (int E = 0; E < EdgesPerVertex; ++E) {
          V.Edges[E] = RT.malloc(EdgeSize, SEdge);
          RT.store(V.Edges[E], EdgeSize);
        }
        // Parser scratch pollutes the same size class.
        if (Random.nextBool(0.6)) {
          Runtime::Scope Log(RT, SBuildLog);
          uint64_t Tok = RT.malloc(ScratchSize, SScratch);
          RT.store(Tok, 8);
          Scratch.push_back(Tok);
        }
        Graph.push_back(V);
      }
    }

    // MST rounds: relax every vertex through its edges (decrease-key).
    // Vertices are visited in heap order -- a fixed permutation decided by
    // the input graph, not by allocation order.
    std::vector<uint32_t> Order(Graph.size());
    for (uint32_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    Random.shuffle(Order);
    {
      Runtime::Scope Mst(RT, SMainMst);
      for (int R = 0; R < Rounds; ++R) {
        for (uint32_t Idx : Order) {
          Vertex &V = Graph[Idx];
          RT.load(V.Addr, VertexSize);
          for (int E = 0; E < EdgesPerVertex; ++E)
            RT.load(V.Edges[E], EdgeSize);
          RT.store(V.Addr + 8, 8); // Update the key.
          RT.compute(16);
        }
      }
    }
    (void)0;

    for (Vertex &V : Graph) {
      RT.free(V.Addr);
      for (int E = 0; E < EdgesPerVertex; ++E)
        RT.free(V.Edges[E]);
    }
    for (uint64_t Tok : Scratch)
      RT.free(Tok);
  }

private:
  FunctionId FBuild = InvalidId, FMst = InvalidId, FLog = InvalidId;
  CallSiteId SMainBuild = InvalidId, SVertex = InvalidId, SEdge = InvalidId,
             SBuildLog = InvalidId, SScratch = InvalidId, SMainMst = InvalidId;
};

} // namespace

HALO_REGISTER_WORKLOAD("ft", 1, FtWorkload);
