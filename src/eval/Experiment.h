//===- eval/Experiment.h - Declarative experiment plans ---------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The declarative measurement API behind every table and figure: the
/// paper's evaluation is a matrix -- benchmarks x allocator kinds x
/// machines x trials -- and an ExperimentSpec names a block of that matrix
/// directly instead of going through a bespoke driver per figure.
///
/// buildPlan() expands specs into a deduplicated task DAG over one
/// Evaluation per benchmark: each (benchmark, scale, seed) workload run is
/// recorded once, each benchmark's HALO/HDS pipeline artifacts materialise
/// once, and every requested cell then replays the shared recordings.
/// runPlan() executes that DAG on a single support/Executor pool in four
/// deterministic stages (profile recordings, artifacts, measurement
/// recordings, replays) whose task lists span *all* benchmarks and
/// machines -- so a mixed sweep keeps every worker busy instead of
/// sharding along only one axis -- and lands the results in a ResultSet
/// keyed by the full measurement key. Every value is a deterministic
/// function of its key, so runPlan's output is bit-identical no matter how
/// many workers ran (tests/experiment_test.cpp holds the invariant).
///
/// sweepMachines, compareTechniques, and compareAcrossBenchmarks
/// (eval/Evaluation.h) are thin wrappers over plans; the JSON and table
/// emitters here are the single output path shared by halo_cli's run,
/// sweep, and experiments subcommands.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_EVAL_EXPERIMENT_H
#define HALO_EVAL_EXPERIMENT_H

#include "eval/Evaluation.h"
#include "eval/Report.h"
#include "runtime/ShardedReplay.h"

#include <cstdio>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace halo {

class ArtifactStore;

/// The stable spelling of \p Kind used in JSON output and CLI flags.
const char *allocatorKindName(AllocatorKind Kind);

/// Parses an allocatorKindName() spelling; std::nullopt for unknown names.
std::optional<AllocatorKind> parseAllocatorKind(const std::string &Name);

/// All kinds, in declaration order, for CLI listings.
const std::vector<AllocatorKind> &allAllocatorKinds();

/// The stable spelling of \p S ("test" / "ref").
const char *scaleName(Scale S);

/// Parses a scaleName() spelling; std::nullopt for unknown names.
std::optional<Scale> parseScale(const std::string &Name);

/// One axis-product block of the evaluation matrix: every benchmark in
/// \p Benchmarks measured under every machine in \p Machines with every
/// allocator kind in \p Kinds, \p Trials trials each. Specs are purely
/// declarative -- nothing records or replays until runPlan().
struct ExperimentSpec {
  std::vector<std::string> Benchmarks;
  /// Machines to measure under. Empty means "the benchmark setup's own
  /// machine" (the default preset unless MakeSetup says otherwise).
  std::vector<const MachineConfig *> Machines;
  std::vector<AllocatorKind> Kinds = {AllocatorKind::Jemalloc,
                                      AllocatorKind::Hds,
                                      AllocatorKind::Halo};
  Scale S = Scale::Ref;
  int Trials = 3;
  uint64_t SeedBase = 100;
  /// Per-benchmark configuration; null means paperSetup(). The first spec
  /// to name a benchmark decides its setup (benchmarks deduplicate by
  /// name across specs).
  std::function<BenchmarkSetup(const std::string &)> MakeSetup;
};

/// The full key of one measured cell: what was measured, on what, how.
struct MeasurementKey {
  std::string Benchmark;
  std::string Machine; ///< MachineConfig::Name the cell replayed under.
  AllocatorKind Kind = AllocatorKind::Jemalloc;
  Scale S = Scale::Ref;
  uint64_t SeedBase = 100;
  int Trials = 0;
};

/// Where every plan's measurements land: one entry per cell, in plan
/// order, each holding the per-trial RunMetrics (Runs[T] is seed
/// SeedBase + T). The emitters below are the one output path for every
/// measurement scenario.
class ResultSet {
public:
  struct Cell {
    MeasurementKey Key;
    /// The resolved machine, never null. For cells measured on "the
    /// benchmark setup's machine" this points into the plan's Evaluation
    /// -- keep the plan alive while dereferencing it (the Key strings
    /// are copies and outlive the plan).
    const MachineConfig *Machine = nullptr;
    std::vector<RunMetrics> Runs;
  };

  const std::vector<Cell> &cells() const { return Cells; }
  bool empty() const { return Cells.empty(); }
  size_t size() const { return Cells.size(); }

  /// The first cell matching (\p Benchmark, \p Machine, \p Kind, \p S)
  /// and, when given, \p SeedBase / \p Trials (plans can hold several
  /// seed/trial blocks of the same coordinate); null if the plan never
  /// measured it.
  const Cell *find(const std::string &Benchmark, const std::string &Machine,
                   AllocatorKind Kind, Scale S,
                   std::optional<uint64_t> SeedBase = std::nullopt,
                   std::optional<int> Trials = std::nullopt) const;

  /// Reassembles a ResultSet from externally produced cells, in the order
  /// given -- the serve client's path: cells streamed through the daemon
  /// come back byte-identical to a local runPlan once ordered by their
  /// plan cell index. Unlike plan-produced sets, Machine pointers here
  /// are whatever the caller resolved (findMachine on the key's name) and
  /// may be null for machines this process has no config for; the
  /// emitters only read the Key.
  static ResultSet fromCells(std::vector<Cell> Cells);

private:
  friend class PlanExecution;
  std::vector<Cell> Cells;
};

/// A deduplicated, executable expansion of one or more specs. Introspect
/// it to see what runPlan() will do; the counts are what the dedup saved.
class ExperimentPlan {
public:
  /// One benchmark's shared state: the Evaluation every cell of that
  /// benchmark measures through (owned by the plan, or borrowed from the
  /// caller), plus the work the cells imply.
  struct Benchmark {
    std::string Name;
    Evaluation *Eval = nullptr;
    bool NeedsHalo = false; ///< Some cell needs the HALO artifacts.
    bool NeedsHds = false;  ///< Some cell needs the HDS artifacts.
    /// Store hits resolved at buildPlan time (always false without a
    /// store). A stored trace/artifact becomes a load task instead of a
    /// record/materialise task, pruning that work from the DAG; runPlan
    /// still self-heals if an entry disappears or decodes corrupt by
    /// recomputing (and re-publishing) inline.
    bool HaloStored = false;
    bool HdsStored = false;
    bool ProfileStored = false; ///< The profile-scale trace is stored.
    /// Deduplicated (scale, seed) measurement recordings the plan must
    /// *record*, sorted. Store hits live in StoredRecordings instead.
    std::vector<std::pair<Scale, uint64_t>> Recordings;
    /// Measurement recordings resolved from the store (load, not record).
    std::vector<std::pair<Scale, uint64_t>> StoredRecordings;
  };

  /// One cell: a (benchmark, machine, kind) coordinate plus its trial
  /// block. Machine == nullptr means the benchmark setup's machine.
  struct Cell {
    size_t Bench = 0; ///< Index into benchmarks().
    const MachineConfig *Machine = nullptr;
    AllocatorKind Kind = AllocatorKind::Jemalloc;
    Scale S = Scale::Ref;
    int Trials = 0;
    uint64_t SeedBase = 100;
  };

  const std::vector<Benchmark> &benchmarks() const { return Benchmarks; }
  const std::vector<Cell> &cells() const { return Cells; }

  /// Total deduplicated measurement recordings the plan will *record*
  /// (store hits are not counted: they are loads, not recordings).
  size_t numRecordings() const;
  /// HALO/HDS pipeline materialisations the plan will run (store hits
  /// excluded for the same reason).
  size_t numArtifactTasks() const;
  /// Total replay tasks (cells x their trials).
  size_t numReplays() const;
  /// Profile-scale recordings the plan will capture: benchmarks with at
  /// least one cold pipeline whose profile trace is not stored.
  size_t numProfileRecordings() const;
  /// Measurement recordings resolved from the artifact store.
  size_t numStoredRecordings() const;
  /// Pipeline artifact bundles resolved from the artifact store.
  size_t numStoredArtifacts() const;
  /// The store consulted at build time and published to at run time.
  ArtifactStore *store() const { return Store; }

private:
  friend ExperimentPlan buildPlan(const std::vector<ExperimentSpec> &Specs,
                                  const std::vector<Evaluation *> &External,
                                  ArtifactStore *Store);
  friend class PlanExecution;
  std::vector<Benchmark> Benchmarks;
  std::vector<Cell> Cells;
  std::vector<std::unique_ptr<Evaluation>> Owned;
  ArtifactStore *Store = nullptr;
};

/// Expands \p Specs into a plan. Benchmarks deduplicate by name across
/// specs (one Evaluation each); identical cells deduplicate entirely;
/// each cell's seeds join its benchmark's recording set once. A benchmark
/// named by an Evaluation in \p External is measured through that caller
/// instance (its cached traces and artifacts are reused) instead of a
/// plan-owned one. Throws std::invalid_argument for unknown benchmarks.
///
/// With \p Store, every recording and artifact key is first looked up in
/// the content-addressed store: hits turn into load tasks (pruning the
/// record/materialise work from the DAG -- a fully warm plan schedules
/// zero of either), misses run cold and publish their results for the
/// next plan. Results are bit-identical either way: loaded traces replay
/// exactly as recorded ones and loaded artifacts rebuild their derived
/// state deterministically.
ExperimentPlan buildPlan(const std::vector<ExperimentSpec> &Specs,
                         const std::vector<Evaluation *> &External = {},
                         ArtifactStore *Store = nullptr);

/// Invoked as soon as every trial of one cell has been measured (from
/// whichever worker thread finished the cell's last replay): the index is
/// the cell's position in ExperimentPlan::cells() order, the reference is
/// into the eventual ResultSet and stays valid until take()/return. This
/// is how serve streams per-cell results while the plan is still running,
/// on the same execution path a local runPlan takes. Callbacks must be
/// thread-safe; a throwing callback fails its cell's task.
using CellCompletionFn =
    std::function<void(size_t CellIndex, const ResultSet::Cell &Cell)>;

/// One plan's work flattened into claimable tasks with stage barriers:
/// the execution engine under runPlan, and the unit the serve daemon's
/// scheduler multiplexes -- many PlanExecutions, one shared pool, tasks
/// interleaved fairly across clients. Scheduling *policy* stays with the
/// callers; this class owns only what a task does and when it is legal
/// to start (ROADMAP: no bespoke scheduling semantics outside the plan
/// scheduler).
///
/// The tasks are the same four stages runPlan always ran -- profile
/// recordings, pipeline artifacts, measurement recordings, replays --
/// and next() enforces the stage barrier: a task of stage k becomes
/// claimable only once every task of stages < k retired. Distinct tasks
/// of one stage are safe to run from concurrent threads (the trace and
/// artifact caches synchronise; each replay writes only its own slot),
/// and every interleaving yields bit-identical results because every
/// value is a deterministic function of its task's key.
class PlanExecution {
public:
  /// Binds to \p Plan, which must outlive this object and not move (and
  /// must not back a second concurrent PlanExecution: claim state lives
  /// here but results accumulate per plan). Sets every benchmark's trace
  /// mode to \p Traces. \p OnCell fires immediately (on this thread) for
  /// degenerate zero-trial cells.
  explicit PlanExecution(ExperimentPlan &Plan,
                         TraceMode Traces = TraceMode::Auto,
                         CellCompletionFn OnCell = nullptr);

  size_t numTasks() const { return Tasks.size(); }

  /// The stage of task \p Task: 0 profile recordings, 1 pipeline
  /// artifacts, 2 measurement recordings, 3 replays.
  unsigned stage(size_t Task) const { return Tasks[Task].Stage; }

  /// Claims the next runnable task id, in deterministic ascending order;
  /// std::nullopt when nothing is runnable *right now* -- the plan
  /// finished, was cancelled or failed, or the current stage's remaining
  /// tasks are all claimed elsewhere (in which case more may become
  /// runnable once they retire). Thread-safe.
  std::optional<size_t> next();

  /// Runs one claimed task. \p NestedPool, when non-null, is handed to
  /// the work that can use a pool internally -- the artifact stage's
  /// grouping (haloArtifacts' GroupPool) and the replay stage's sharding
  /// (measure's ShardPool) -- for drivers that walk tasks serially and
  /// parallelise within them instead. A throwing task marks the whole
  /// plan failed (remaining tasks are abandoned) and rethrows; claimed
  /// tasks always retire, success or not.
  void run(size_t Task, Executor *NestedPool = nullptr);

  /// Stops handing out tasks; claimed ones finish normally. Idempotent.
  void cancel();

  bool cancelled() const;
  bool failed() const;
  /// The first task failure's text ("" while !failed()).
  std::string failureMessage() const;

  /// True once no task will ever run again: everything retired, or the
  /// plan was cancelled/failed and every claimed task has retired.
  bool finished() const;

  /// Moves the results out (call once, after finished()). Cells whose
  /// replays never ran -- cancelled or failed plans -- keep
  /// default-constructed RunMetrics in their slots.
  ResultSet take() { return std::move(Results); }

private:
  struct TaskData {
    unsigned Stage = 0;
    const ExperimentPlan::Benchmark *B = nullptr; ///< Stages 0-2.
    bool Halo = false;                            ///< Stage 1.
    bool Stored = false;                          ///< Stages 0-2.
    Scale S = Scale::Ref;                         ///< Stage 2.
    uint64_t Seed = 0;                            ///< Stage 2.
    size_t Cell = 0;                              ///< Stage 3.
    int Trial = 0;                                ///< Stage 3.
  };

  void execute(const TaskData &T, Executor *NestedPool);
  void obtainTrace(const ExperimentPlan::Benchmark &B, Scale S,
                   uint64_t Seed, bool Stored, bool Profile);
  void runArtifact(const TaskData &T, Executor *GroupPool);
  void runReplay(const TaskData &T, Executor *ShardPool);

  ExperimentPlan &Plan;
  TraceMode Traces;
  CellCompletionFn OnCell;
  ResultSet Results;
  std::vector<TaskData> Tasks;
  size_t StageEnd[4] = {0, 0, 0, 0}; ///< Cumulative task counts.
  /// Trials still unmeasured per cell; the task that takes a cell's count
  /// to zero fires OnCell.
  std::vector<int> CellsRemaining;

  mutable std::mutex Mu;
  size_t NextTask = 0; ///< Tasks claimed so far (claims are a prefix).
  size_t Retired = 0;  ///< Claimed tasks that finished, success or not.
  bool CancelFlag = false;
  bool FailFlag = false;
  std::exception_ptr FirstError;
};

/// Executes \p Plan on one Executor pool (\p Jobs as resolveJobs()
/// interprets it) in four stages -- profile recordings, pipeline
/// artifacts, measurement recordings, cell replays -- each a flat task
/// list spanning every benchmark and machine in the plan. Results are
/// bit-identical to a serial run regardless of Jobs and of \p Mode.
///
/// \p Mode decides where the replay stage's parallelism lives. The pool
/// runs one parallelFor batch at a time, so the stage must pick an axis:
/// fan the (cell, trial) tasks out with each replaying serially, or walk
/// them serially with each replay sharding its trace across the whole
/// pool (Evaluation::measure's ShardPool overload). Auto shards within
/// traces exactly when the task list alone cannot fill the pool -- the
/// 1x1x1 plans behind halo_cli run/baseline/hds being the motivating
/// case: task-level fan-out gives them nothing, intra-trace sharding
/// scales them with --jobs.
///
/// \p Traces decides how measurement recordings are held (profiling
/// always replays the in-RAM trace). Memory is the historical in-RAM
/// path. Mapped records cold traces streaming to disk (into the store
/// when one is attached, so the bytes exist exactly once) and replays
/// every measurement mmap'd block by block in bounded memory. Auto stays
/// in RAM except for stored traces whose decoded size is large enough
/// that loading them whole would dominate the run's footprint -- those
/// open mapped straight off their store entry, zero-copy. Results are
/// bit-identical under every mode ("mapped = in-RAM", README).
///
/// \p OnCell, when given, fires as each cell's last trial lands (see
/// CellCompletionFn) -- the serve daemon's streaming hook; the returned
/// ResultSet is unchanged by it.
ResultSet runPlan(ExperimentPlan &Plan, int Jobs = 0,
                  ReplayMode Mode = ReplayMode::Auto,
                  TraceMode Traces = TraceMode::Auto,
                  CellCompletionFn OnCell = nullptr);

//===----------------------------------------------------------------------===//
// Shared emitters: the one JSON / table output path.
//===----------------------------------------------------------------------===//

/// The `halo_cli run` JSON document: per-run metrics plus medians for one
/// cell's trial block (byte-stable; pinned by the golden_run_json check).
void writeRunsJson(FILE *Out, const std::string &Benchmark,
                   const std::string &Config,
                   const std::vector<RunMetrics> &Runs);

/// One BENCH_machines.json row: a (benchmark, machine, allocator kind)
/// cell of a cross-machine sweep, reduced to medians.
struct SweepRow {
  std::string Bench;
  std::string Machine;
  std::string Kind;
  double WallMs = 0.0; ///< Median simulated run time, in ms.
  int Trials = 0;
  double L1dMisses = 0.0; ///< Median per-run L1D misses.
  double TlbMisses = 0.0; ///< Median per-run dTLB misses.
  double SpeedupPercent = 0.0; ///< vs jemalloc on the same machine.
};

/// Reduces \p Results to sweep rows in cell order. speedup_percent
/// compares each cell against the jemalloc cell sharing its (benchmark,
/// machine, scale, seed block); jemalloc rows read 0, and a non-jemalloc
/// cell without a baseline throws std::logic_error rather than reading
/// as a genuine "no improvement".
std::vector<SweepRow> sweepRows(const ResultSet &Results);

/// The BENCH_machines.json document (byte-stable).
void writeSweepJson(FILE *Out, const std::vector<SweepRow> &Rows);

/// The `halo_cli sweep` table.
Report sweepReport(const std::vector<SweepRow> &Rows);

/// The unified experiments JSON: one object per cell, keyed by the full
/// measurement key, with medians and the per-run metrics.
void writeExperimentsJson(FILE *Out, const ResultSet &Results);

/// The `halo_cli experiments` table: one row per cell, medians only.
Report experimentsReport(const ResultSet &Results);

} // namespace halo

#endif // HALO_EVAL_EXPERIMENT_H
