//===- eval/Report.cpp - Table rendering for bench output -------------------===//

#include "eval/Report.h"

#include "support/Format.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace halo;

Report::Report(std::string Title) : Title(std::move(Title)) {}

void Report::setColumns(std::vector<std::string> NewHeaders) {
  Headers = std::move(NewHeaders);
}

void Report::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

void Report::addNote(std::string Note) { Notes.push_back(std::move(Note)); }

std::string Report::str() const {
  // Column widths: max of header and cells, plus padding.
  std::vector<size_t> Widths(Headers.size(), 0);
  for (size_t C = 0; C < Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size() && C < Widths.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  std::ostringstream Out;
  Out << "== " << Title << " ==\n";
  auto EmitRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C < Widths.size(); ++C) {
      std::string Cell = C < Cells.size() ? Cells[C] : "";
      // First column left-aligned (names), the rest right-aligned.
      Out << (C == 0 ? padRight(Cell, Widths[C]) : padLeft(Cell, Widths[C]));
      if (C + 1 < Widths.size())
        Out << "  ";
    }
    Out << "\n";
  };
  if (!Headers.empty()) {
    EmitRow(Headers);
    size_t Total = 0;
    for (size_t W : Widths)
      Total += W;
    Out << std::string(Total + 2 * (Widths.size() - 1), '-') << "\n";
  }
  for (const auto &Row : Rows)
    EmitRow(Row);
  for (const std::string &Note : Notes)
    Out << "note: " << Note << "\n";
  return Out.str();
}

void Report::print() const {
  std::string Text = str();
  std::fwrite(Text.data(), 1, Text.size(), stdout);
  std::fflush(stdout);
}
