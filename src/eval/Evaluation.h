//===- eval/Evaluation.h - Experiment harness --------------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement harness behind every table and figure of Section 5.
/// An Evaluation wires one benchmark model to a program, runs the HALO and
/// hot-data-streams pipelines on the small *test* inputs, and measures any
/// allocator configuration on the larger *ref* inputs under the simulated
/// Xeon W-2195 memory hierarchy -- mirroring the paper's methodology
/// (repeated trials, medians, jemalloc default allocator everywhere).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_EVAL_EVALUATION_H
#define HALO_EVAL_EVALUATION_H

#include "core/Pipeline.h"
#include "hds/HdsPipeline.h"
#include "workloads/Workload.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace halo {

/// The allocator configurations the evaluation compares.
enum class AllocatorKind {
  Jemalloc,    ///< Size-segregated baseline (the paper's default).
  Ptmalloc,    ///< Boundary-tag baseline (Section 5.1's glibc comparison).
  Halo,        ///< Rewritten binary + HALO's specialised group allocator.
  Hds,         ///< Hot-data-streams groups, immediate-call-site identified.
  RandomPools, ///< Figure 15's random four-pool strawman.
  HaloInstrumentedOnly, ///< Rewritten binary, default allocator (overhead
                        ///< probe; Section 5.2 finds it below noise).
};

/// Everything measured in one run.
struct RunMetrics {
  double Seconds = 0.0;
  uint64_t Cycles = 0;
  MemoryCounters Mem;
  RuntimeStats Events;
  uint64_t InstrumentationOps = 0;
  FragmentationStats Frag; ///< Grouped-object fragmentation (HALO/HDS only).
  uint64_t GroupedAllocs = 0;
  uint64_t ForwardedAllocs = 0;
};

/// Per-benchmark configuration: paper defaults plus the Appendix A.8 flags.
struct BenchmarkSetup {
  std::string Name;
  HaloParameters Halo;
  HdsParameters Hds;
  Scale ProfileScale = Scale::Test; ///< "Workloads are profiled on small
                                    ///< test inputs" (Section 5.1).
  uint64_t ProfileSeed = 1;
};

/// Returns the paper's configuration for \p Benchmark: affinity distance
/// 128, merge tolerance 5%, 1 MiB chunks, 4 KiB max grouped size, plus the
/// artefact's per-benchmark flags (omnetpp: 128 KiB chunks + always-reuse;
/// xalanc: always-reuse; roms: at most 4 groups).
BenchmarkSetup paperSetup(const std::string &Benchmark);

/// One benchmark wired up for measurement.
class Evaluation {
public:
  explicit Evaluation(BenchmarkSetup Setup);

  /// The HALO pipeline output (profiled lazily, once).
  const HaloArtifacts &haloArtifacts();
  /// The hot-data-streams pipeline output (profiled lazily, once).
  const HdsArtifacts &hdsArtifacts();

  /// Measures one configuration on one input.
  RunMetrics measure(AllocatorKind Kind, Scale S, uint64_t Seed);

  /// Measures \p Trials runs with distinct seeds (the paper uses 11 trials
  /// and reports medians; seeds stand in for run-to-run variation).
  std::vector<RunMetrics> measureTrials(AllocatorKind Kind, Scale S,
                                        int Trials, uint64_t SeedBase = 100);

  /// Median seconds / L1D misses over a set of runs.
  static double medianSeconds(const std::vector<RunMetrics> &Runs);
  static double medianL1Misses(const std::vector<RunMetrics> &Runs);

  const Program &program() const { return Prog; }
  const BenchmarkSetup &setup() const { return Setup; }
  Workload &workload() { return *W; }

private:
  BenchmarkSetup Setup;
  std::unique_ptr<Workload> W;
  Program Prog;
  std::optional<HaloArtifacts> HaloArt;
  std::optional<HdsArtifacts> HdsArt;
};

/// The data behind one bar pair of Figures 13/14.
struct ComparisonRow {
  std::string Benchmark;
  double HdsMissReduction = 0.0;  ///< % L1D misses removed vs jemalloc.
  double HaloMissReduction = 0.0;
  double HdsSpeedup = 0.0;        ///< % execution time removed vs jemalloc.
  double HaloSpeedup = 0.0;
};

/// Runs baseline, HDS, and HALO trials for \p Benchmark and reduces them to
/// the paper's two headline percentages.
ComparisonRow compareTechniques(const std::string &Benchmark, int Trials,
                                Scale S = Scale::Ref);

} // namespace halo

#endif // HALO_EVAL_EVALUATION_H
