//===- eval/Evaluation.h - Experiment harness --------------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement harness behind every table and figure of Section 5.
/// An Evaluation wires one benchmark model to a program, runs the HALO and
/// hot-data-streams pipelines on the small *test* inputs, and measures any
/// allocator configuration on the larger *ref* inputs under a simulated
/// machine model (sim/Machine.h; the default preset is the paper's Xeon
/// W-2195) -- mirroring the paper's methodology (repeated trials, medians,
/// jemalloc default allocator everywhere), with the machine a first-class,
/// sweepable part of the measurement key.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_EVAL_EVALUATION_H
#define HALO_EVAL_EVALUATION_H

#include "core/Pipeline.h"
#include "hds/HdsPipeline.h"
#include "sim/Machine.h"
#include "trace/EventTrace.h"
#include "trace/TraceFile.h"
#include "workloads/Workload.h"

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace halo {

/// The allocator configurations the evaluation compares.
enum class AllocatorKind {
  Jemalloc,    ///< Size-segregated baseline (the paper's default).
  Ptmalloc,    ///< Boundary-tag baseline (Section 5.1's glibc comparison).
  Halo,        ///< Rewritten binary + HALO's specialised group allocator.
  Hds,         ///< Hot-data-streams groups, immediate-call-site identified.
  RandomPools, ///< Figure 15's random four-pool strawman.
  HaloInstrumentedOnly, ///< Rewritten binary, default allocator (overhead
                        ///< probe; Section 5.2 finds it below noise).
};

/// Everything measured in one run.
struct RunMetrics {
  double Seconds = 0.0;
  uint64_t Cycles = 0;
  MemoryCounters Mem;
  RuntimeStats Events;
  uint64_t InstrumentationOps = 0;
  FragmentationStats Frag; ///< Grouped-object fragmentation (HALO/HDS only).
  uint64_t GroupedAllocs = 0;
  uint64_t ForwardedAllocs = 0;
};

/// Per-benchmark configuration: paper defaults plus the Appendix A.8 flags.
struct BenchmarkSetup {
  std::string Name;
  HaloParameters Halo;
  HdsParameters Hds;
  /// The simulated hardware measurements run on. Part of the measurement
  /// key: the same benchmark measured under two machines is two different
  /// experiments. Cached traces and pipeline artifacts are machine-
  /// independent, so the explicit-machine measure() overloads can sweep
  /// machines against one Evaluation without re-recording or re-profiling.
  MachineConfig Machine = defaultMachine();
  Scale ProfileScale = Scale::Test; ///< "Workloads are profiled on small
                                    ///< test inputs" (Section 5.1).
  uint64_t ProfileSeed = 1;
};

/// Returns the paper's configuration for \p Benchmark: affinity distance
/// 128, merge tolerance 5%, 1 MiB chunks, 4 KiB max grouped size, plus the
/// artefact's per-benchmark flags (omnetpp: 128 KiB chunks + always-reuse;
/// xalanc: always-reuse; roms: at most 4 groups).
BenchmarkSetup paperSetup(const std::string &Benchmark);

/// One benchmark wired up for measurement.
///
/// Workload runs are recorded once per (scale, seed) into an event trace
/// and every allocator configuration is measured by replaying that trace
/// (bit-identical to direct execution; tests/trace_replay_test.cpp holds
/// the invariant). Trials are independent and deterministic, so
/// measureTrials can fan them out across worker threads.
class Evaluation {
public:
  explicit Evaluation(BenchmarkSetup Setup);

  /// The HALO pipeline output (profiled lazily, once, by replaying the
  /// profile-scale trace). \p GroupPool, when non-null, parallelizes the
  /// grouping stage across connected components (buildGroupsParallel) --
  /// artifacts bit-identical at every jobs count. runPlan passes its pool
  /// through when the artifact stage runs serially (fewer tasks than
  /// workers), so single-benchmark plans scale their grouping too.
  const HaloArtifacts &haloArtifacts(Executor *GroupPool = nullptr);

  /// The hot-data-streams pipeline output (profiled lazily, once, from the
  /// same recording the HALO pipeline uses).
  const HdsArtifacts &hdsArtifacts();

  /// Records (once) and returns the event trace of the workload run for
  /// (\p S, \p Seed). Thread-safe; recordings of distinct keys proceed in
  /// parallel.
  const EventTrace &trace(Scale S, uint64_t Seed);

  /// True if the trace for (\p S, \p Seed) is already cached. Thread-safe.
  bool hasTrace(Scale S, uint64_t Seed);

  /// Seeds the trace cache with an externally obtained recording (the
  /// artifact store's warm path: a loaded trace replays bit-identically
  /// to one recorded here). First writer wins, exactly like trace();
  /// returns the cached instance. Thread-safe.
  const EventTrace &addTrace(Scale S, uint64_t Seed, EventTrace Trace);

  /// How this evaluation holds and replays measurement traces. Memory (the
  /// default) keeps every recording in RAM -- the oracle path. Mapped
  /// records each measurement trace streaming to a temp file and replays
  /// it mmap'd block by block, keeping resident memory bounded however
  /// large the run; metrics are bit-identical ("mapped = in-RAM",
  /// tests/trace_file_test.cpp). Auto replays mapped exactly for keys with
  /// a mapped trace cached (the store's warm path seeds those for large
  /// entries) and in RAM otherwise. Profiling always uses the in-RAM
  /// trace: profile inputs are test-scale and the pipelines replay them
  /// through observers.
  /// The mode is atomic so concurrent plans sharing this Evaluation (the
  /// serve daemon's steady state) read it safely; plans that disagree on
  /// the mode race benignly (every mode measures bit-identically) but
  /// the daemon pins one mode for all requests anyway.
  void setTraceMode(TraceMode M) { Mode.store(M, std::memory_order_relaxed); }
  TraceMode traceMode() const {
    return Mode.load(std::memory_order_relaxed);
  }

  /// Records (once) the workload run for (\p S, \p Seed) streaming to a
  /// private temp file and returns it mapped. The file is unlinked as soon
  /// as it is mapped, so nothing leaks even on a crash. Thread-safe, same
  /// contract as trace(). Throws std::runtime_error on I/O failure.
  const MappedTrace &mappedTrace(Scale S, uint64_t Seed);

  /// True if a mapped trace for (\p S, \p Seed) is cached. Thread-safe.
  bool hasMappedTrace(Scale S, uint64_t Seed);

  /// Seeds the mapped-trace cache (the store's warm path: an entry opened
  /// with openMappedTrace replays bit-identically to a fresh recording).
  /// First writer wins; returns the cached instance. Thread-safe.
  const MappedTrace &addMappedTrace(Scale S, uint64_t Seed,
                                    MappedTrace Trace);

  /// Records the workload run for (\p S, \p Seed) streaming into the trace
  /// file at \p Path (the on-disk format of trace/TraceFile.h), never
  /// holding more than a block in memory. The store's cold mapped path
  /// records through this and publishes the file with putTraceFile.
  /// Throws std::runtime_error on I/O failure (removing the partial file).
  void recordTraceFile(Scale S, uint64_t Seed, const std::string &Path);

  /// Whether the pipeline artifacts are already materialised (loaded or
  /// profiled). Thread-safe: each artifact kind is guarded by its own
  /// mutex, so concurrent plans sharing this Evaluation (the serve
  /// daemon's steady state) materialise once and the losers wait.
  bool hasHaloArtifacts() const {
    std::lock_guard<std::mutex> Lock(HaloArtMutex);
    return HaloArt.has_value();
  }
  bool hasHdsArtifacts() const {
    std::lock_guard<std::mutex> Lock(HdsArtMutex);
    return HdsArt.has_value();
  }

  /// Installs externally obtained pipeline artifacts (the store's warm
  /// path); no-op if already materialised. Thread-safe, first writer
  /// wins, exactly like addTrace().
  void setHaloArtifacts(HaloArtifacts Art);
  void setHdsArtifacts(HdsArtifacts Art);

  /// Records the traces for \p Trials consecutive seeds starting at
  /// \p SeedBase, fanned out across \p Jobs workers (0 = hardware
  /// concurrency). Recording is the expensive half of a measurement
  /// sweep; this is the explicit parallel warm-up measureTrials performs
  /// before its (cheaper) replay fan-out. Already-cached keys cost one
  /// map lookup.
  void recordTraces(Scale S, int Trials, uint64_t SeedBase = 100,
                    int Jobs = 0);

  /// Materialises the HALO and HDS pipeline artifacts, profiling the two
  /// pipelines as parallel executor tasks over the shared profile-scale
  /// recording (they are independent and the trace cache is
  /// thread-safe). After this, measure() is safe to call concurrently
  /// for every allocator kind.
  void prepareAllArtifacts(int Jobs = 0);

  /// Measures one configuration on one input by replaying the cached
  /// trace, on the setup's machine. Safe to call concurrently once the
  /// pipeline artifacts the kind needs exist (measureTrials materialises
  /// them before fanning out).
  RunMetrics measure(AllocatorKind Kind, Scale S, uint64_t Seed);

  /// Same, on an explicit machine: the recorded trace is machine-
  /// independent and replays under \p Machine's hierarchy and costs. This
  /// is the cross-machine sweep primitive (halo_cli sweep).
  RunMetrics measure(const MachineConfig &Machine, AllocatorKind Kind,
                     Scale S, uint64_t Seed);

  /// Same, replaying through shardedReplay on \p ShardPool (null degrades
  /// to the serial overload): the trace's memory simulation fans out
  /// across the pool's workers while the metrics stay bit-identical (the
  /// "sharded = serial" contract; see runtime/ShardedReplay.h). This is
  /// how a plan with fewer replay tasks than workers -- a single
  /// run/baseline/hds cell, say -- still scales with --jobs. Call it from
  /// one thread at a time per pool: the pool is the parallelism.
  RunMetrics measure(const MachineConfig &Machine, AllocatorKind Kind,
                     Scale S, uint64_t Seed, Executor *ShardPool);

  /// Reference path: measures by executing the workload model directly,
  /// without any trace. Kept as the oracle replay is tested against.
  RunMetrics measureDirect(AllocatorKind Kind, Scale S, uint64_t Seed);

  /// Reference path on an explicit machine.
  RunMetrics measureDirect(const MachineConfig &Machine, AllocatorKind Kind,
                           Scale S, uint64_t Seed);

  /// Measures \p Trials runs with distinct seeds (the paper uses 11 trials
  /// and reports medians; seeds stand in for run-to-run variation).
  /// \p Jobs worker threads share the trials (0 = hardware concurrency);
  /// results are bit-identical to the serial order regardless.
  std::vector<RunMetrics> measureTrials(AllocatorKind Kind, Scale S,
                                        int Trials, uint64_t SeedBase = 100,
                                        int Jobs = 0);

  /// Trial fan-out on an explicit machine.
  std::vector<RunMetrics> measureTrials(const MachineConfig &Machine,
                                        AllocatorKind Kind, Scale S,
                                        int Trials, uint64_t SeedBase = 100,
                                        int Jobs = 0);

  /// Median seconds / L1D misses / dTLB misses over a set of runs.
  static double medianSeconds(const std::vector<RunMetrics> &Runs);
  static double medianL1Misses(const std::vector<RunMetrics> &Runs);
  static double medianTlbMisses(const std::vector<RunMetrics> &Runs);

  const Program &program() const { return Prog; }
  const BenchmarkSetup &setup() const { return Setup; }
  Workload &workload() { return *W; }

private:
  RunMetrics measureWith(const MachineConfig &Machine, AllocatorKind Kind,
                         uint64_t Seed,
                         const std::function<void(Runtime &)> &Drive);
  /// Materialises the artifacts \p Kind's measurement consults, so worker
  /// threads only ever read them.
  void prepareArtifacts(AllocatorKind Kind);
  /// Whether measure() replays (\p S, \p Seed) through the mapped path
  /// under the current trace mode.
  bool usesMappedReplay(Scale S, uint64_t Seed);
  /// Caches and returns the recording for (\p S, \p Seed) in whichever
  /// form the current mode measures it (measureTrials' warm-up stage).
  void obtainTrace(Scale S, uint64_t Seed);

  BenchmarkSetup Setup;
  std::unique_ptr<Workload> W;
  Program Prog;
  std::optional<HaloArtifacts> HaloArt;
  std::optional<HdsArtifacts> HdsArt;
  /// One mutex per artifact kind, so the two pipelines still profile in
  /// parallel. Lock order: artifact mutex before TraceMutex (the lazy
  /// materialisation replays the profile trace); never the reverse.
  mutable std::mutex HaloArtMutex;
  mutable std::mutex HdsArtMutex;
  std::atomic<TraceMode> Mode{TraceMode::Memory};
  /// (scale, seed) -> recorded trace. std::map for reference stability.
  std::map<std::pair<int, uint64_t>, EventTrace> Traces;
  /// (scale, seed) -> mapped on-disk trace, same keying and stability.
  std::map<std::pair<int, uint64_t>, MappedTrace> MappedTraces;
  std::mutex TraceMutex;
};

/// One (machine, allocator kind) cell of a cross-machine sweep: all trial
/// runs of one benchmark measured on one simulated machine.
struct SweepCell {
  const MachineConfig *Machine = nullptr;
  AllocatorKind Kind = AllocatorKind::Jemalloc;
  std::vector<RunMetrics> Runs;
};

/// Measures jemalloc / HDS / HALO trials for every machine in \p Machines
/// against one Evaluation (halo_cli sweep's backing store). A thin
/// wrapper over buildPlan/runPlan (eval/Experiment.h): the profile trace
/// records once, the two pipelines materialise as parallel tasks,
/// per-seed measurement traces record once across the pool, and the
/// machine x kind cells replay at trial granularity over one executor.
/// Cells come back machine-major in \p Machines order (kinds in
/// jemalloc/hds/halo order), bit-identical to a serial sweep.
std::vector<SweepCell>
sweepMachines(Evaluation &Eval,
              const std::vector<const MachineConfig *> &Machines, int Trials,
              Scale S = Scale::Ref, uint64_t SeedBase = 100, int Jobs = 0);

/// The data behind one bar pair of Figures 13/14.
struct ComparisonRow {
  std::string Benchmark;
  double HdsMissReduction = 0.0;  ///< % L1D misses removed vs jemalloc.
  double HaloMissReduction = 0.0;
  double HdsSpeedup = 0.0;        ///< % execution time removed vs jemalloc.
  double HaloSpeedup = 0.0;
};

/// Runs baseline, HDS, and HALO trials for \p Benchmark and reduces them to
/// the paper's two headline percentages, measured on \p Machine. A thin
/// wrapper over buildPlan/runPlan (eval/Experiment.h): every configuration
/// replays the same once-recorded per-seed traces; \p Jobs fans the cells'
/// trials out across worker threads (0 = hardware concurrency).
ComparisonRow compareTechniques(const std::string &Benchmark, int Trials,
                                Scale S = Scale::Ref, int Jobs = 0,
                                const MachineConfig &Machine =
                                    defaultMachine());

/// compareTechniques over a benchmark list — halo_cli plot's backing
/// store, a thin wrapper over one buildPlan/runPlan call whose replay
/// stage spans benchmark x kind x trial tasks (finer than the old
/// per-benchmark sharding, so short lists still fill the pool). Row order
/// follows \p Benchmarks and every row is bit-identical to a serial run.
std::vector<ComparisonRow>
compareAcrossBenchmarks(const std::vector<std::string> &Benchmarks,
                        int Trials, Scale S = Scale::Ref, int Jobs = 0,
                        const MachineConfig &Machine = defaultMachine());

} // namespace halo

#endif // HALO_EVAL_EVALUATION_H
