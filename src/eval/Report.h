//===- eval/Report.h - Table rendering for bench output ---------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain-text table rendering used by the bench binaries to print the
/// paper's tables and figure series.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_EVAL_REPORT_H
#define HALO_EVAL_REPORT_H

#include <string>
#include <vector>

namespace halo {

/// Fixed-width text table with a title, header row, and data rows.
class Report {
public:
  explicit Report(std::string Title);

  void setColumns(std::vector<std::string> Headers);
  void addRow(std::vector<std::string> Cells);
  /// A free-form footnote printed under the table.
  void addNote(std::string Note);

  /// Renders the table.
  std::string str() const;
  /// Renders and writes to stdout.
  void print() const;

private:
  std::string Title;
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
  std::vector<std::string> Notes;
};

} // namespace halo

#endif // HALO_EVAL_REPORT_H
