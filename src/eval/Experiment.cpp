//===- eval/Experiment.cpp - Declarative experiment plans --------------------===//

#include "eval/Experiment.h"

#include "store/ArtifactStore.h"
#include "support/Executor.h"
#include "support/Format.h"
#include "support/Hash.h"
#include "support/Stats.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <tuple>

#include <unistd.h>

using namespace halo;

/// TraceMode::Auto's threshold: a stored trace whose decoded size reaches
/// this opens mapped off its store entry instead of loading whole -- the
/// point where the in-RAM copy would dominate the run's footprint.
static constexpr uint64_t AutoMappedTraceBytes = 256ull << 20;

//===----------------------------------------------------------------------===//
// Names
//===----------------------------------------------------------------------===//

const char *halo::allocatorKindName(AllocatorKind Kind) {
  switch (Kind) {
  case AllocatorKind::Jemalloc:
    return "jemalloc";
  case AllocatorKind::Ptmalloc:
    return "ptmalloc";
  case AllocatorKind::Halo:
    return "halo";
  case AllocatorKind::Hds:
    return "hds";
  case AllocatorKind::RandomPools:
    return "random-pools";
  case AllocatorKind::HaloInstrumentedOnly:
    return "halo-instrumented";
  }
  return "?";
}

const std::vector<AllocatorKind> &halo::allAllocatorKinds() {
  static const std::vector<AllocatorKind> Kinds = {
      AllocatorKind::Jemalloc,    AllocatorKind::Ptmalloc,
      AllocatorKind::Halo,        AllocatorKind::Hds,
      AllocatorKind::RandomPools, AllocatorKind::HaloInstrumentedOnly};
  return Kinds;
}

std::optional<AllocatorKind> halo::parseAllocatorKind(const std::string &Name) {
  for (AllocatorKind Kind : allAllocatorKinds())
    if (Name == allocatorKindName(Kind))
      return Kind;
  return std::nullopt;
}

const char *halo::scaleName(Scale S) {
  return S == Scale::Test ? "test" : "ref";
}

std::optional<Scale> halo::parseScale(const std::string &Name) {
  if (Name == "test")
    return Scale::Test;
  if (Name == "ref")
    return Scale::Ref;
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// ResultSet
//===----------------------------------------------------------------------===//

const ResultSet::Cell *ResultSet::find(const std::string &Benchmark,
                                       const std::string &Machine,
                                       AllocatorKind Kind, Scale S,
                                       std::optional<uint64_t> SeedBase,
                                       std::optional<int> Trials) const {
  for (const Cell &C : Cells)
    if (C.Key.Kind == Kind && C.Key.S == S && C.Key.Benchmark == Benchmark &&
        C.Key.Machine == Machine &&
        (!SeedBase || C.Key.SeedBase == *SeedBase) &&
        (!Trials || C.Key.Trials == *Trials))
      return &C;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// buildPlan
//===----------------------------------------------------------------------===//

size_t ExperimentPlan::numRecordings() const {
  size_t N = 0;
  for (const Benchmark &B : Benchmarks)
    N += B.Recordings.size();
  return N;
}

size_t ExperimentPlan::numArtifactTasks() const {
  size_t N = 0;
  for (const Benchmark &B : Benchmarks)
    N += ((B.NeedsHalo && !B.HaloStored) ? 1 : 0) +
         ((B.NeedsHds && !B.HdsStored) ? 1 : 0);
  return N;
}

size_t ExperimentPlan::numProfileRecordings() const {
  size_t N = 0;
  for (const Benchmark &B : Benchmarks)
    if (((B.NeedsHalo && !B.HaloStored) || (B.NeedsHds && !B.HdsStored)) &&
        !B.ProfileStored)
      ++N;
  return N;
}

size_t ExperimentPlan::numStoredRecordings() const {
  size_t N = 0;
  for (const Benchmark &B : Benchmarks)
    N += B.StoredRecordings.size();
  return N;
}

size_t ExperimentPlan::numStoredArtifacts() const {
  size_t N = 0;
  for (const Benchmark &B : Benchmarks)
    N += ((B.NeedsHalo && B.HaloStored) ? 1 : 0) +
         ((B.NeedsHds && B.HdsStored) ? 1 : 0);
  return N;
}

size_t ExperimentPlan::numReplays() const {
  size_t N = 0;
  for (const Cell &C : Cells)
    N += static_cast<size_t>(std::max(C.Trials, 0));
  return N;
}

ExperimentPlan halo::buildPlan(const std::vector<ExperimentSpec> &Specs,
                               const std::vector<Evaluation *> &External,
                               ArtifactStore *Store) {
  ExperimentPlan Plan;
  Plan.Store = Store;
  // Per-benchmark seed sets, kept outside the plan until sorted.
  std::vector<std::set<std::pair<Scale, uint64_t>>> Seeds;

  auto FindBenchmark = [&](const std::string &Name,
                           const ExperimentSpec &Spec) -> size_t {
    for (size_t B = 0; B < Plan.Benchmarks.size(); ++B)
      if (Plan.Benchmarks[B].Name == Name)
        return B;
    if (!createWorkload(Name))
      throw std::invalid_argument("buildPlan: unknown benchmark '" + Name +
                                  "'");
    ExperimentPlan::Benchmark B;
    B.Name = Name;
    for (Evaluation *E : External)
      if (E && E->setup().Name == Name)
        B.Eval = E;
    if (!B.Eval) {
      Plan.Owned.push_back(std::make_unique<Evaluation>(
          Spec.MakeSetup ? Spec.MakeSetup(Name) : paperSetup(Name)));
      B.Eval = Plan.Owned.back().get();
    }
    Plan.Benchmarks.push_back(std::move(B));
    Seeds.emplace_back();
    return Plan.Benchmarks.size() - 1;
  };

  for (const ExperimentSpec &Spec : Specs) {
    // Empty machine list = one cell on the benchmark setup's own machine.
    std::vector<const MachineConfig *> Machines =
        Spec.Machines.empty()
            ? std::vector<const MachineConfig *>{nullptr}
            : Spec.Machines;
    const int Trials = std::max(Spec.Trials, 0);
    for (const std::string &Name : Spec.Benchmarks) {
      size_t BI = FindBenchmark(Name, Spec);
      ExperimentPlan::Benchmark &B = Plan.Benchmarks[BI];
      for (const MachineConfig *M : Machines) {
        for (AllocatorKind Kind : Spec.Kinds) {
          // Identical cells collapse: the matrix is a set, not a list.
          bool Duplicate = false;
          for (const ExperimentPlan::Cell &C : Plan.Cells)
            if (C.Bench == BI && C.Machine == M && C.Kind == Kind &&
                C.S == Spec.S && C.Trials == Trials &&
                C.SeedBase == Spec.SeedBase) {
              Duplicate = true;
              break;
            }
          if (Duplicate)
            continue;
          ExperimentPlan::Cell C;
          C.Bench = BI;
          C.Machine = M;
          C.Kind = Kind;
          C.S = Spec.S;
          C.Trials = Trials;
          C.SeedBase = Spec.SeedBase;
          Plan.Cells.push_back(C);
          if (Kind == AllocatorKind::Halo ||
              Kind == AllocatorKind::HaloInstrumentedOnly)
            B.NeedsHalo = true;
          else if (Kind == AllocatorKind::Hds)
            B.NeedsHds = true;
          for (int T = 0; T < Trials; ++T)
            Seeds[BI].emplace(Spec.S, Spec.SeedBase + T);
        }
      }
    }
  }

  for (size_t B = 0; B < Plan.Benchmarks.size(); ++B)
    Plan.Benchmarks[B].Recordings.assign(Seeds[B].begin(), Seeds[B].end());

  // Consult the store last, once the needs are final: every hit prunes a
  // record/materialise task from the DAG before runPlan ever schedules
  // it. contains() fully validates entries, so a truncated or bit-flipped
  // file plans as a miss (cold path re-records and re-publishes it).
  if (Store) {
    for (ExperimentPlan::Benchmark &B : Plan.Benchmarks) {
      const BenchmarkSetup &Setup = B.Eval->setup();
      if (B.NeedsHalo)
        B.HaloStored = Store->contains(haloStoreKey(
            B.Name, Setup.ProfileScale, Setup.ProfileSeed, Setup.Halo));
      if (B.NeedsHds)
        B.HdsStored = Store->contains(hdsStoreKey(
            B.Name, Setup.ProfileScale, Setup.ProfileSeed, Setup.Hds));
      if (B.NeedsHalo || B.NeedsHds)
        B.ProfileStored = Store->contains(
            traceStoreKey(B.Name, Setup.ProfileScale, Setup.ProfileSeed));
      std::vector<std::pair<Scale, uint64_t>> Cold;
      for (const std::pair<Scale, uint64_t> &R : B.Recordings)
        if (Store->contains(traceStoreKey(B.Name, R.first, R.second)))
          B.StoredRecordings.push_back(R);
        else
          Cold.push_back(R);
      B.Recordings = std::move(Cold);
    }
  }
  return Plan;
}

//===----------------------------------------------------------------------===//
// PlanExecution
//===----------------------------------------------------------------------===//

ResultSet ResultSet::fromCells(std::vector<Cell> CellsIn) {
  ResultSet Results;
  Results.Cells = std::move(CellsIn);
  return Results;
}

PlanExecution::PlanExecution(ExperimentPlan &PlanIn, TraceMode TracesIn,
                             CellCompletionFn OnCellIn)
    : Plan(PlanIn), Traces(TracesIn), OnCell(std::move(OnCellIn)) {
  // Every benchmark's Evaluation measures under the plan's trace mode
  // (Auto resolves per key: mapped exactly where a mapped trace was
  // seeded by the recording tasks).
  for (const ExperimentPlan::Benchmark &B : Plan.Benchmarks)
    B.Eval->setTraceMode(Traces);

  Results.Cells.resize(Plan.Cells.size());
  CellsRemaining.resize(Plan.Cells.size(), 0);
  for (size_t C = 0; C < Plan.Cells.size(); ++C) {
    const ExperimentPlan::Cell &PC = Plan.Cells[C];
    const ExperimentPlan::Benchmark &B = Plan.Benchmarks[PC.Bench];
    ResultSet::Cell &RC = Results.Cells[C];
    RC.Machine = PC.Machine ? PC.Machine : &B.Eval->setup().Machine;
    RC.Key.Benchmark = B.Name;
    RC.Key.Machine = RC.Machine->Name;
    RC.Key.Kind = PC.Kind;
    RC.Key.S = PC.S;
    RC.Key.SeedBase = PC.SeedBase;
    RC.Key.Trials = PC.Trials;
    RC.Runs.resize(static_cast<size_t>(PC.Trials));
    CellsRemaining[C] = PC.Trials;
  }

  // Stage 0: profile recordings (the input both pipelines profile). A
  // benchmark whose needed artifact bundles are all stored skips its
  // profile trace entirely -- the warm path never replays it.
  for (const ExperimentPlan::Benchmark &B : Plan.Benchmarks)
    if ((B.NeedsHalo && !B.HaloStored) || (B.NeedsHds && !B.HdsStored)) {
      TaskData T;
      T.Stage = 0;
      T.B = &B;
      T.Stored = B.ProfileStored;
      Tasks.push_back(T);
    }
  StageEnd[0] = Tasks.size();

  // Stage 1: pipeline artifacts, two independent tasks per benchmark --
  // each either a store load or a cold materialise-and-publish. A corrupt
  // stored bundle falls back to materialising, which (via Evaluation's
  // lazy trace()) records the profile trace inline if stage 0 skipped it.
  for (const ExperimentPlan::Benchmark &B : Plan.Benchmarks) {
    if (B.NeedsHalo) {
      TaskData T;
      T.Stage = 1;
      T.B = &B;
      T.Halo = true;
      T.Stored = B.HaloStored;
      Tasks.push_back(T);
    }
    if (B.NeedsHds) {
      TaskData T;
      T.Stage = 1;
      T.B = &B;
      T.Halo = false;
      T.Stored = B.HdsStored;
      Tasks.push_back(T);
    }
  }
  StageEnd[1] = Tasks.size();

  // Stage 2: measurement recordings -- the expensive half of a sweep --
  // deduplicated per benchmark, flat across all benchmarks at once.
  // Store hits load instead of recording.
  for (const ExperimentPlan::Benchmark &B : Plan.Benchmarks) {
    for (const std::pair<Scale, uint64_t> &R : B.Recordings) {
      TaskData T;
      T.Stage = 2;
      T.B = &B;
      T.S = R.first;
      T.Seed = R.second;
      T.Stored = false;
      Tasks.push_back(T);
    }
    for (const std::pair<Scale, uint64_t> &R : B.StoredRecordings) {
      TaskData T;
      T.Stage = 2;
      T.B = &B;
      T.S = R.first;
      T.Seed = R.second;
      T.Stored = true;
      Tasks.push_back(T);
    }
  }
  StageEnd[2] = Tasks.size();

  // Stage 3: replays, one task per (cell, trial). Every trace and
  // artifact is cached by then, so tasks only read shared state; slot
  // (C, T) always holds seed SeedBase + T, making the ResultSet
  // bit-identical to a serial run no matter the interleaving.
  for (size_t C = 0; C < Plan.Cells.size(); ++C)
    for (int Trial = 0; Trial < Plan.Cells[C].Trials; ++Trial) {
      TaskData T;
      T.Stage = 3;
      T.Cell = C;
      T.Trial = Trial;
      Tasks.push_back(T);
    }
  StageEnd[3] = Tasks.size();

  // Zero-trial cells have no replay task to complete them; they are
  // complete (empty) from the start.
  if (OnCell)
    for (size_t C = 0; C < CellsRemaining.size(); ++C)
      if (CellsRemaining[C] == 0)
        OnCell(C, Results.Cells[C]);
}

std::optional<size_t> PlanExecution::next() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (CancelFlag || FailFlag)
    return std::nullopt;
  // The current stage is the first whose tasks have not all retired; its
  // unclaimed tasks are runnable, later stages wait behind the barrier.
  unsigned Stage = 0;
  while (Stage < 4 && Retired >= StageEnd[Stage])
    ++Stage;
  if (Stage == 4 || NextTask >= StageEnd[Stage])
    return std::nullopt;
  return NextTask++;
}

void PlanExecution::obtainTrace(const ExperimentPlan::Benchmark &B, Scale S,
                                uint64_t Seed, bool Stored, bool Profile) {
  // Loads a stored trace into the cache, or records it cold (publishing
  // to the store when one is attached). A stored entry that vanished or
  // decodes corrupt between buildPlan and here demotes to the cold path
  // inline -- re-record, re-publish -- so the run self-heals instead of
  // failing. Either way the cached trace is byte-identical to a fresh
  // recording, keeping warm results bit-identical to cold ones.
  //
  // Profile recordings always take the in-RAM path: the pipelines replay
  // them through observers, and profile inputs are test-scale.
  // Measurement recordings follow the plan's trace mode.
  ArtifactStore *Store = Plan.Store;
  Evaluation &E = *B.Eval;
  TraceMode M = Profile ? TraceMode::Memory : Traces;
  StoreKey Key;
  if (Store)
    Key = traceStoreKey(B.Name, S, Seed);

  if (M == TraceMode::Mapped) {
    if (E.hasMappedTrace(S, Seed))
      return;
    if (Store && Stored) {
      if (std::optional<MappedTrace> Mapped = openMappedTrace(*Store, Key)) {
        E.addMappedTrace(S, Seed, std::move(*Mapped));
        return;
      }
    }
    if (Store) {
      // Cold with a store: record streaming into the store directory,
      // publish atomically, then map the published entry zero-copy --
      // the trace's bytes exist on disk exactly once. The "tmp." name
      // keeps a crashed recorder's leftovers visible to `store gc`.
      std::string Temp = Store->dir() + "/tmp.rec." + hashHex(Key.Hash) +
                         "." + std::to_string(::getpid());
      E.recordTraceFile(S, Seed, Temp);
      bool Published = putTraceFile(*Store, Key, Temp);
      ::unlink(Temp.c_str());
      if (Published) {
        if (std::optional<MappedTrace> Mapped =
                openMappedTrace(*Store, Key)) {
          E.addMappedTrace(S, Seed, std::move(*Mapped));
          return;
        }
      }
    }
    // No store (or the publish failed): the Evaluation's self-contained
    // temp-file recording.
    E.mappedTrace(S, Seed);
    return;
  }

  if (Store && Stored && !E.hasTrace(S, Seed) && !E.hasMappedTrace(S, Seed)) {
    if (M == TraceMode::Auto) {
      // A stored trace big enough that loading it whole would dominate
      // the run's footprint opens mapped off its entry instead.
      if (std::optional<MappedTrace> Mapped = openMappedTrace(*Store, Key))
        if (Mapped->rawBytes() >= AutoMappedTraceBytes) {
          E.addMappedTrace(S, Seed, std::move(*Mapped));
          return;
        }
    }
    if (std::optional<EventTrace> Loaded = getTrace(*Store, Key)) {
      E.addTrace(S, Seed, std::move(*Loaded));
      return;
    }
  }
  const EventTrace &Trace = E.trace(S, Seed);
  if (Store)
    putTrace(*Store, Key, Trace);
}

void PlanExecution::runArtifact(const TaskData &Task, Executor *GroupPool) {
  ArtifactStore *Store = Plan.Store;
  Evaluation &E = *Task.B->Eval;
  const BenchmarkSetup &Setup = E.setup();
  if (Task.Halo) {
    StoreKey Key;
    if (Store)
      Key = haloStoreKey(Task.B->Name, Setup.ProfileScale, Setup.ProfileSeed,
                         Setup.Halo);
    if (Store && Task.Stored && !E.hasHaloArtifacts()) {
      if (std::optional<HaloArtifacts> Art =
              getHaloArtifacts(*Store, Key, E.program())) {
        E.setHaloArtifacts(std::move(*Art));
        return;
      }
    }
    const HaloArtifacts &Art = E.haloArtifacts(GroupPool);
    if (Store)
      putHaloArtifacts(*Store, Key, Art);
  } else {
    StoreKey Key;
    if (Store)
      Key = hdsStoreKey(Task.B->Name, Setup.ProfileScale, Setup.ProfileSeed,
                        Setup.Hds);
    if (Store && Task.Stored && !E.hasHdsArtifacts()) {
      if (std::optional<HdsArtifacts> Art = getHdsArtifacts(*Store, Key)) {
        E.setHdsArtifacts(std::move(*Art));
        return;
      }
    }
    const HdsArtifacts &Art = E.hdsArtifacts();
    if (Store)
      putHdsArtifacts(*Store, Key, Art);
  }
}

void PlanExecution::runReplay(const TaskData &Task, Executor *ShardPool) {
  const ExperimentPlan::Cell &PC = Plan.Cells[Task.Cell];
  Evaluation &E = *Plan.Benchmarks[PC.Bench].Eval;
  uint64_t Seed = PC.SeedBase + static_cast<uint64_t>(Task.Trial);
  const MachineConfig &M = PC.Machine ? *PC.Machine : E.setup().Machine;
  Results.Cells[Task.Cell].Runs[static_cast<size_t>(Task.Trial)] =
      E.measure(M, PC.Kind, PC.S, Seed, ShardPool);
}

void PlanExecution::execute(const TaskData &T, Executor *NestedPool) {
  switch (T.Stage) {
  case 0: {
    const BenchmarkSetup &Setup = T.B->Eval->setup();
    obtainTrace(*T.B, Setup.ProfileScale, Setup.ProfileSeed, T.Stored,
                /*Profile=*/true);
    break;
  }
  case 1:
    runArtifact(T, NestedPool);
    break;
  case 2:
    obtainTrace(*T.B, T.S, T.Seed, T.Stored, /*Profile=*/false);
    break;
  default:
    runReplay(T, NestedPool);
    break;
  }
}

void PlanExecution::run(size_t Task, Executor *NestedPool) {
  const TaskData &T = Tasks[Task];
  try {
    execute(T, NestedPool);
    if (T.Stage == 3) {
      bool CellDone;
      {
        std::lock_guard<std::mutex> Lock(Mu);
        CellDone = --CellsRemaining[T.Cell] == 0;
      }
      // Fired from the finishing worker, outside the claim lock; the
      // cell's slots are all written, so the reference is stable. A
      // throwing callback fails this task like any other error.
      if (CellDone && OnCell)
        OnCell(T.Cell, Results.Cells[T.Cell]);
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      FailFlag = true;
      if (!FirstError)
        FirstError = std::current_exception();
      ++Retired;
    }
    throw;
  }
  std::lock_guard<std::mutex> Lock(Mu);
  ++Retired;
}

void PlanExecution::cancel() {
  std::lock_guard<std::mutex> Lock(Mu);
  CancelFlag = true;
}

bool PlanExecution::cancelled() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return CancelFlag;
}

bool PlanExecution::failed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return FailFlag;
}

std::string PlanExecution::failureMessage() const {
  std::exception_ptr Error;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Error = FirstError;
  }
  if (!Error)
    return "";
  try {
    std::rethrow_exception(Error);
  } catch (const std::exception &E) {
    return E.what();
  } catch (...) {
    return "unknown error";
  }
}

bool PlanExecution::finished() const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Retired == Tasks.size())
    return true;
  // Cancelled or failed: done once the already-claimed tasks drain.
  return (CancelFlag || FailFlag) && Retired == NextTask;
}

//===----------------------------------------------------------------------===//
// runPlan
//===----------------------------------------------------------------------===//

ResultSet halo::runPlan(ExperimentPlan &Plan, int Jobs, ReplayMode Mode,
                        TraceMode Traces, CellCompletionFn OnCell) {
  PlanExecution Exec(Plan, Traces, std::move(OnCell));
  // One pool drives all four stages; the stage task lists are flat across
  // every benchmark and machine, so a mixed sweep fills the pool at cell
  // granularity instead of sharding along a single axis.
  Executor Pool(Jobs);
  for (;;) {
    // Nothing is in flight between batches, so next() drains exactly one
    // whole stage per iteration (the barrier admits no more).
    std::vector<size_t> Batch;
    while (std::optional<size_t> T = Exec.next())
      Batch.push_back(*T);
    if (Batch.empty())
      break;
    unsigned Stage = Exec.stage(Batch.front());

    // The pool runs one batch at a time (a nested parallelFor inlines
    // serially), so each stage commits to one parallel axis: across its
    // tasks, or within each task with the list walked serially here.
    // The artifact stage hands the pool to the HALO pipeline's grouping
    // (buildGroupsParallel) when its tasks alone cannot fill it; the
    // replay stage shards within each trace under ReplayMode::Sharded,
    // or in Auto exactly when the task list would leave workers idle --
    // the 1x1x1 plans behind halo_cli run/baseline/hds being the
    // motivating case. Either axis yields bit-identical results.
    bool WalkSerially = false;
    if (Stage == 1)
      WalkSerially = Batch.size() < static_cast<size_t>(Pool.workers());
    else if (Stage == 3)
      WalkSerially =
          Mode == ReplayMode::Sharded ||
          (Mode == ReplayMode::Auto &&
           Batch.size() < static_cast<size_t>(Pool.workers()));
    if (WalkSerially) {
      for (size_t T : Batch)
        Exec.run(T, &Pool);
    } else {
      Pool.parallelFor(Batch.size(),
                       [&](size_t I) { Exec.run(Batch[I], nullptr); });
    }
  }
  return Exec.take();
}

//===----------------------------------------------------------------------===//
// Wrappers: the pre-plan entry points, now thin spec builders.
//===----------------------------------------------------------------------===//

std::vector<SweepCell>
halo::sweepMachines(Evaluation &Eval,
                    const std::vector<const MachineConfig *> &Machines,
                    int Trials, Scale S, uint64_t SeedBase, int Jobs) {
  static const AllocatorKind Kinds[] = {
      AllocatorKind::Jemalloc, AllocatorKind::Hds, AllocatorKind::Halo};
  constexpr size_t NumKinds = 3;
  std::vector<SweepCell> Cells(Machines.size() * NumKinds);
  if (Machines.empty())
    return Cells;
  // A null entry would mean "the setup's machine" to the plan and then
  // never match the pointer resolution below; fail at the fault site.
  for (const MachineConfig *M : Machines)
    if (!M)
      throw std::invalid_argument("sweepMachines: null machine entry");

  ExperimentSpec Spec;
  Spec.Benchmarks = {Eval.setup().Name};
  Spec.Machines = Machines;
  Spec.Kinds.assign(Kinds, Kinds + NumKinds);
  Spec.S = S;
  Spec.Trials = Trials;
  Spec.SeedBase = SeedBase;
  // The caller's Evaluation backs the plan, so its cached traces and
  // artifacts are shared and stay warm for later calls.
  ExperimentPlan Plan = buildPlan({Spec}, {&Eval});
  ResultSet Results = runPlan(Plan, Jobs);

  // Resolve by machine POINTER, not name: distinct caller-owned configs
  // may share a (possibly empty) Name, but each is its own plan cell.
  for (size_t M = 0; M < Machines.size(); ++M)
    for (size_t K = 0; K < NumKinds; ++K) {
      SweepCell &Cell = Cells[M * NumKinds + K];
      Cell.Machine = Machines[M];
      Cell.Kind = Kinds[K];
      for (const ResultSet::Cell &Found : Results.cells())
        if (Found.Machine == Machines[M] && Found.Key.Kind == Kinds[K]) {
          Cell.Runs = Found.Runs;
          break;
        }
    }
  return Cells;
}

/// Reduces one benchmark's three cells to the paper's headline row.
static ComparisonRow rowFromResults(const ResultSet &Results,
                                    const std::string &Benchmark,
                                    const std::string &Machine, Scale S) {
  const ResultSet::Cell *Base =
      Results.find(Benchmark, Machine, AllocatorKind::Jemalloc, S);
  const ResultSet::Cell *Hds =
      Results.find(Benchmark, Machine, AllocatorKind::Hds, S);
  const ResultSet::Cell *Halo =
      Results.find(Benchmark, Machine, AllocatorKind::Halo, S);

  ComparisonRow Row;
  Row.Benchmark = Benchmark;
  // A missing cell is a plan/lookup logic error; an all-zero row would
  // read as a genuine "no improvement" measurement.
  if (!Base || !Hds || !Halo)
    throw std::logic_error("comparison plan missing a cell for " +
                           Benchmark + " on " + Machine);
  Row.HdsMissReduction =
      percentImprovement(Evaluation::medianL1Misses(Base->Runs),
                         Evaluation::medianL1Misses(Hds->Runs));
  Row.HaloMissReduction =
      percentImprovement(Evaluation::medianL1Misses(Base->Runs),
                         Evaluation::medianL1Misses(Halo->Runs));
  Row.HdsSpeedup = percentImprovement(Evaluation::medianSeconds(Base->Runs),
                                      Evaluation::medianSeconds(Hds->Runs));
  Row.HaloSpeedup = percentImprovement(Evaluation::medianSeconds(Base->Runs),
                                       Evaluation::medianSeconds(Halo->Runs));
  return Row;
}

/// The one spec both comparison entry points expand to.
static ExperimentSpec comparisonSpec(std::vector<std::string> Benchmarks,
                                     int Trials, Scale S,
                                     const MachineConfig &Machine) {
  ExperimentSpec Spec;
  Spec.Benchmarks = std::move(Benchmarks);
  Spec.Machines = {&Machine};
  Spec.Kinds = {AllocatorKind::Jemalloc, AllocatorKind::Hds,
                AllocatorKind::Halo};
  Spec.S = S;
  Spec.Trials = Trials;
  // Pre-plan behaviour: the comparison's machine was the setup machine,
  // so the pipelines materialised under it. Keep that exact wiring.
  Spec.MakeSetup = [&Machine](const std::string &Name) {
    BenchmarkSetup Setup = paperSetup(Name);
    Setup.Machine = Machine;
    return Setup;
  };
  return Spec;
}

ComparisonRow halo::compareTechniques(const std::string &Benchmark,
                                      int Trials, Scale S, int Jobs,
                                      const MachineConfig &Machine) {
  ExperimentPlan Plan =
      buildPlan({comparisonSpec({Benchmark}, Trials, S, Machine)});
  ResultSet Results = runPlan(Plan, Jobs);
  return rowFromResults(Results, Benchmark, Machine.Name, S);
}

std::vector<ComparisonRow>
halo::compareAcrossBenchmarks(const std::vector<std::string> &Benchmarks,
                              int Trials, Scale S, int Jobs,
                              const MachineConfig &Machine) {
  ExperimentPlan Plan =
      buildPlan({comparisonSpec(Benchmarks, Trials, S, Machine)});
  ResultSet Results = runPlan(Plan, Jobs);
  std::vector<ComparisonRow> Rows;
  Rows.reserve(Benchmarks.size());
  // Row order follows the request; duplicate names share one cell block.
  for (const std::string &Benchmark : Benchmarks)
    Rows.push_back(rowFromResults(Results, Benchmark, Machine.Name, S));
  return Rows;
}

//===----------------------------------------------------------------------===//
// Emitters
//===----------------------------------------------------------------------===//

/// The per-run JSON object shared by the run document and the unified
/// experiments document (field set and formatting are byte-pinned by the
/// golden_run_json check).
static void writeRunObject(FILE *Out, const RunMetrics &M) {
  std::fprintf(Out,
               "{\"seconds\": %.9f, \"cycles\": %llu, "
               "\"l1d_accesses\": %llu, \"l1d_misses\": %llu, "
               "\"l2_misses\": %llu, \"l3_misses\": %llu, "
               "\"tlb_misses\": %llu, \"grouped_allocs\": %llu, "
               "\"forwarded_allocs\": %llu, \"frag_percent\": %.4f, "
               "\"frag_bytes\": %llu}",
               M.Seconds, (unsigned long long)M.Cycles,
               (unsigned long long)M.Mem.Accesses,
               (unsigned long long)M.Mem.L1Misses,
               (unsigned long long)M.Mem.L2Misses,
               (unsigned long long)M.Mem.L3Misses,
               (unsigned long long)M.Mem.TlbMisses,
               (unsigned long long)M.GroupedAllocs,
               (unsigned long long)M.ForwardedAllocs, M.Frag.wastedPercent(),
               (unsigned long long)M.Frag.wastedBytes());
}

void halo::writeRunsJson(FILE *Out, const std::string &Benchmark,
                         const std::string &Config,
                         const std::vector<RunMetrics> &Runs) {
  std::fprintf(Out,
               "{\n  \"benchmark\": \"%s\",\n  \"configuration\": \"%s\",\n"
               "  \"runs\": [\n",
               Benchmark.c_str(), Config.c_str());
  for (size_t I = 0; I < Runs.size(); ++I) {
    std::fputs("    ", Out);
    writeRunObject(Out, Runs[I]);
    std::fprintf(Out, "%s\n", I + 1 < Runs.size() ? "," : "");
  }
  std::fprintf(Out,
               "  ],\n  \"median_seconds\": %.9f,\n"
               "  \"median_l1d_misses\": %.0f\n}\n",
               Evaluation::medianSeconds(Runs),
               Evaluation::medianL1Misses(Runs));
}

std::vector<SweepRow> halo::sweepRows(const ResultSet &Results) {
  // speedup% compares each cell against the jemalloc cell sharing every
  // non-kind key dimension (benchmark, machine, scale, seed block);
  // keyed by content, not position, so the cell layout is free to change
  // without mislabelling rows, and mixed-scale result sets never borrow
  // a baseline from the wrong scale. The machine is the resolved POINTER
  // (distinct caller-owned configs may share a name but are distinct
  // cells), matching how the plan itself keys cells.
  using BaselineKey =
      std::tuple<std::string, const MachineConfig *, int, uint64_t, int>;
  auto KeyOf = [](const ResultSet::Cell &Cell) {
    return BaselineKey{Cell.Key.Benchmark, Cell.Machine,
                       static_cast<int>(Cell.Key.S), Cell.Key.SeedBase,
                       Cell.Key.Trials};
  };
  std::map<BaselineKey, double> BaselineSeconds;
  for (const ResultSet::Cell &Cell : Results.cells())
    if (Cell.Key.Kind == AllocatorKind::Jemalloc)
      BaselineSeconds[KeyOf(Cell)] = Evaluation::medianSeconds(Cell.Runs);

  std::vector<SweepRow> Rows;
  Rows.reserve(Results.size());
  for (const ResultSet::Cell &Cell : Results.cells()) {
    double Seconds = Evaluation::medianSeconds(Cell.Runs);
    SweepRow Row;
    Row.Bench = Cell.Key.Benchmark;
    Row.Machine = Cell.Key.Machine;
    Row.Kind = allocatorKindName(Cell.Key.Kind);
    Row.WallMs = Seconds * 1e3;
    Row.Trials = Cell.Key.Trials;
    Row.L1dMisses = Evaluation::medianL1Misses(Cell.Runs);
    Row.TlbMisses = Evaluation::medianTlbMisses(Cell.Runs);
    if (Cell.Key.Kind == AllocatorKind::Jemalloc) {
      Row.SpeedupPercent = 0.0;
    } else {
      auto Baseline = BaselineSeconds.find(KeyOf(Cell));
      // A missing baseline must fail loudly: a silent 0.0 would read as
      // a genuine "no improvement" measurement.
      if (Baseline == BaselineSeconds.end())
        throw std::logic_error(
            "sweepRows: no jemalloc baseline cell for " +
            Cell.Key.Benchmark + " on " + Cell.Key.Machine);
      Row.SpeedupPercent = percentImprovement(Baseline->second, Seconds);
    }
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

void halo::writeSweepJson(FILE *Out, const std::vector<SweepRow> &Rows) {
  std::fputs("[\n", Out);
  for (size_t I = 0; I < Rows.size(); ++I) {
    const SweepRow &R = Rows[I];
    std::fprintf(Out,
                 "  {\"bench\": \"%s\", \"machine\": \"%s\", "
                 "\"kind\": \"%s\", \"wall_ms\": %.6f, \"trials\": %d, "
                 "\"l1d_misses\": %.0f, \"tlb_misses\": %.0f, "
                 "\"speedup_percent\": %.4f}%s\n",
                 R.Bench.c_str(), R.Machine.c_str(), R.Kind.c_str(),
                 R.WallMs, R.Trials, R.L1dMisses, R.TlbMisses,
                 R.SpeedupPercent, I + 1 < Rows.size() ? "," : "");
  }
  std::fputs("]\n", Out);
}

Report halo::sweepReport(const std::vector<SweepRow> &Rows) {
  Report Table("Cross-machine sweep: median run time / misses per machine");
  Table.setColumns({"bench", "machine", "kind", "wall_ms", "l1d_misses",
                    "tlb_misses", "speedup%"});
  for (const SweepRow &R : Rows)
    Table.addRow({R.Bench, R.Machine, R.Kind, formatDouble(R.WallMs, 3),
                  formatDouble(R.L1dMisses, 0), formatDouble(R.TlbMisses, 0),
                  formatDouble(R.SpeedupPercent, 2)});
  Table.addNote("wall_ms: median simulated run time on that machine; "
                "speedup%: vs jemalloc on the same machine");
  return Table;
}

void halo::writeExperimentsJson(FILE *Out, const ResultSet &Results) {
  std::fputs("[\n", Out);
  const std::vector<ResultSet::Cell> &Cells = Results.cells();
  for (size_t C = 0; C < Cells.size(); ++C) {
    const ResultSet::Cell &Cell = Cells[C];
    std::fprintf(Out,
                 "  {\"bench\": \"%s\", \"machine\": \"%s\", "
                 "\"kind\": \"%s\", \"scale\": \"%s\", \"trials\": %d, "
                 "\"seed_base\": %llu,\n"
                 "   \"median_seconds\": %.9f, \"median_l1d_misses\": %.0f, "
                 "\"median_tlb_misses\": %.0f,\n"
                 "   \"runs\": [\n",
                 Cell.Key.Benchmark.c_str(), Cell.Key.Machine.c_str(),
                 allocatorKindName(Cell.Key.Kind), scaleName(Cell.Key.S),
                 Cell.Key.Trials, (unsigned long long)Cell.Key.SeedBase,
                 Evaluation::medianSeconds(Cell.Runs),
                 Evaluation::medianL1Misses(Cell.Runs),
                 Evaluation::medianTlbMisses(Cell.Runs));
    for (size_t R = 0; R < Cell.Runs.size(); ++R) {
      std::fputs("     ", Out);
      writeRunObject(Out, Cell.Runs[R]);
      std::fprintf(Out, "%s\n", R + 1 < Cell.Runs.size() ? "," : "");
    }
    std::fprintf(Out, "   ]}%s\n", C + 1 < Cells.size() ? "," : "");
  }
  std::fputs("]\n", Out);
}

Report halo::experimentsReport(const ResultSet &Results) {
  Report Table("Experiment matrix: one row per (benchmark, machine, kind) "
               "cell");
  Table.setColumns({"bench", "machine", "kind", "scale", "trials", "wall_ms",
                    "l1d_misses", "tlb_misses"});
  for (const ResultSet::Cell &Cell : Results.cells())
    Table.addRow({Cell.Key.Benchmark, Cell.Key.Machine,
                  allocatorKindName(Cell.Key.Kind), scaleName(Cell.Key.S),
                  std::to_string(Cell.Key.Trials),
                  formatDouble(Evaluation::medianSeconds(Cell.Runs) * 1e3, 3),
                  formatDouble(Evaluation::medianL1Misses(Cell.Runs), 0),
                  formatDouble(Evaluation::medianTlbMisses(Cell.Runs), 0)});
  Table.addNote("wall_ms: median simulated run time; every cell is keyed by "
                "the full measurement key");
  return Table;
}
