//===- eval/Evaluation.cpp - Experiment harness ------------------------------===//

#include "eval/Evaluation.h"

#include "mem/BoundaryTagAllocator.h"
#include "mem/RandomPoolAllocator.h"
#include "mem/SizeClassAllocator.h"
#include "runtime/ShardedReplay.h"
#include "support/Executor.h"
#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include <unistd.h>

using namespace halo;

BenchmarkSetup halo::paperSetup(const std::string &Benchmark) {
  BenchmarkSetup Setup;
  Setup.Name = Benchmark;
  // Global defaults are encoded in the option structs themselves: affinity
  // distance 128 (Fig. 12), merge tolerance 5%, 1 MiB chunks, one spare
  // chunk, maximum grouped object size 4 KiB (Section 5.1).
  if (Benchmark == "omnetpp") {
    Setup.Halo.Allocator.ChunkSize = 128 * 1024;
    Setup.Halo.Allocator.MaxSpareChunks = 0;
    Setup.Halo.Allocator.PurgeEmptyChunks = false; // Always reuse chunks.
  } else if (Benchmark == "xalanc") {
    Setup.Halo.Allocator.MaxSpareChunks = 0;
    Setup.Halo.Allocator.PurgeEmptyChunks = false; // Always reuse chunks.
  } else if (Benchmark == "roms") {
    Setup.Halo.Grouping.MaxGroups = 4; // Artefact: --max-groups 4.
  }
  // The comparison technique shares the specialised allocator and its
  // per-benchmark settings (Section 5.1).
  Setup.Hds.Allocator = Setup.Halo.Allocator;
  return Setup;
}

Evaluation::Evaluation(BenchmarkSetup SetupIn) : Setup(std::move(SetupIn)) {
  W = createWorkload(Setup.Name);
  assert(W && "unknown benchmark");
  W->build(Prog);
}

const HaloArtifacts &Evaluation::haloArtifacts(Executor *GroupPool) {
  // One mutex per artifact kind: concurrent plans sharing this Evaluation
  // (the serve daemon's steady state) materialise once and the losers
  // wait, while the HALO and HDS pipelines still profile in parallel
  // (prepareAllArtifacts runs them as two tasks). Lock order is artifact
  // mutex before TraceMutex (via trace()), nowhere the reverse.
  std::lock_guard<std::mutex> Lock(HaloArtMutex);
  if (!HaloArt)
    HaloArt = optimizeBinary(Prog,
                             trace(Setup.ProfileScale, Setup.ProfileSeed),
                             Setup.Halo, Setup.Machine, GroupPool);
  return *HaloArt;
}

const HdsArtifacts &Evaluation::hdsArtifacts() {
  std::lock_guard<std::mutex> Lock(HdsArtMutex);
  if (!HdsArt)
    HdsArt = optimizeBinaryHds(Prog,
                               trace(Setup.ProfileScale, Setup.ProfileSeed),
                               Setup.Hds, Setup.Machine);
  return *HdsArt;
}

const EventTrace &Evaluation::trace(Scale S, uint64_t Seed) {
  auto Key = std::make_pair(static_cast<int>(S), Seed);
  {
    std::lock_guard<std::mutex> Lock(TraceMutex);
    auto It = Traces.find(Key);
    if (It != Traces.end())
      return It->second;
  }
  // Record outside the lock so distinct seeds record in parallel. The
  // recording allocator's addresses never reach the trace (accesses are
  // object-relative), so the id-encoding arena serves the run and the
  // recorder attributes accesses arithmetically; no memory hierarchy or
  // instrumentation is needed to capture the event stream.
  EventTrace Recorded;
  {
    RecordingArena RecordAlloc;
    Runtime RT(Prog, RecordAlloc);
    TraceRecorder Recorder(Recorded, RecordAlloc);
    RT.addObserver(&Recorder);
    W->run(RT, S, Seed);
  }
  std::lock_guard<std::mutex> Lock(TraceMutex);
  // If another thread recorded the same key first, its copy wins (the
  // recordings are identical anyway).
  return Traces.emplace(Key, std::move(Recorded)).first->second;
}

bool Evaluation::hasTrace(Scale S, uint64_t Seed) {
  std::lock_guard<std::mutex> Lock(TraceMutex);
  return Traces.count(std::make_pair(static_cast<int>(S), Seed)) != 0;
}

const EventTrace &Evaluation::addTrace(Scale S, uint64_t Seed,
                                       EventTrace Trace) {
  std::lock_guard<std::mutex> Lock(TraceMutex);
  return Traces
      .emplace(std::make_pair(static_cast<int>(S), Seed), std::move(Trace))
      .first->second;
}

void Evaluation::recordTraceFile(Scale S, uint64_t Seed,
                                 const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    throw std::runtime_error("recordTraceFile: cannot open '" + Path + "'");
  bool Ok;
  {
    // Same recording configuration as trace(), but the recorder's buffer
    // flushes each finished block through the writer as it fills: the
    // trace is never resident in full.
    TraceFileWriter FW(F);
    EventTrace Recorded;
    Recorded.streamTo(FW);
    RecordingArena RecordAlloc;
    Runtime RT(Prog, RecordAlloc);
    TraceRecorder Recorder(Recorded, RecordAlloc);
    RT.addObserver(&Recorder);
    W->run(RT, S, Seed);
    Ok = Recorded.finishStream();
  }
  if (std::fclose(F) != 0)
    Ok = false;
  if (!Ok) {
    ::unlink(Path.c_str());
    throw std::runtime_error("recordTraceFile: I/O error writing '" + Path +
                             "'");
  }
}

const MappedTrace &Evaluation::mappedTrace(Scale S, uint64_t Seed) {
  auto Key = std::make_pair(static_cast<int>(S), Seed);
  {
    std::lock_guard<std::mutex> Lock(TraceMutex);
    auto It = MappedTraces.find(Key);
    if (It != MappedTraces.end())
      return It->second;
  }
  // Record outside the lock, like trace(): distinct seeds stream in
  // parallel, each to its own temp file.
  const char *Tmp = std::getenv("TMPDIR");
  std::string Path =
      std::string(Tmp && *Tmp ? Tmp : "/tmp") + "/halo-trace-XXXXXX";
  int Fd = ::mkstemp(&Path[0]);
  if (Fd < 0)
    throw std::runtime_error("mappedTrace: cannot create a temp file near '" +
                             Path + "'");
  ::close(Fd);
  recordTraceFile(S, Seed, Path);
  MappedTrace Mapped = MappedTrace::open(Path);
  // The mapping pins the inode, so unlink now: the bytes vanish with the
  // last munmap no matter how this process exits.
  ::unlink(Path.c_str());
  std::lock_guard<std::mutex> Lock(TraceMutex);
  // A racing recorder of the same key wins by arriving first; our copy
  // unmaps (and thus frees) on return.
  return MappedTraces.emplace(Key, std::move(Mapped)).first->second;
}

bool Evaluation::hasMappedTrace(Scale S, uint64_t Seed) {
  std::lock_guard<std::mutex> Lock(TraceMutex);
  return MappedTraces.count(std::make_pair(static_cast<int>(S), Seed)) != 0;
}

const MappedTrace &Evaluation::addMappedTrace(Scale S, uint64_t Seed,
                                              MappedTrace Trace) {
  std::lock_guard<std::mutex> Lock(TraceMutex);
  return MappedTraces
      .emplace(std::make_pair(static_cast<int>(S), Seed), std::move(Trace))
      .first->second;
}

bool Evaluation::usesMappedReplay(Scale S, uint64_t Seed) {
  switch (Mode.load(std::memory_order_relaxed)) {
  case TraceMode::Memory:
    return false;
  case TraceMode::Mapped:
    return true;
  case TraceMode::Auto:
    // Auto replays mapped exactly for keys someone (the store's warm
    // path) already seeded mapped; everything else stays on the oracle
    // in-RAM path.
    return hasMappedTrace(S, Seed);
  }
  return false;
}

void Evaluation::obtainTrace(Scale S, uint64_t Seed) {
  if (usesMappedReplay(S, Seed))
    mappedTrace(S, Seed);
  else
    trace(S, Seed);
}

void Evaluation::setHaloArtifacts(HaloArtifacts Art) {
  std::lock_guard<std::mutex> Lock(HaloArtMutex);
  if (!HaloArt)
    HaloArt = std::move(Art);
}

void Evaluation::setHdsArtifacts(HdsArtifacts Art) {
  std::lock_guard<std::mutex> Lock(HdsArtMutex);
  if (!HdsArt)
    HdsArt = std::move(Art);
}

RunMetrics Evaluation::measure(AllocatorKind Kind, Scale S, uint64_t Seed) {
  return measure(Setup.Machine, Kind, S, Seed);
}

RunMetrics Evaluation::measure(const MachineConfig &Machine,
                               AllocatorKind Kind, Scale S, uint64_t Seed) {
  if (usesMappedReplay(S, Seed)) {
    const MappedTrace &Trace = mappedTrace(S, Seed);
    return measureWith(Machine, Kind, Seed,
                       [&](Runtime &RT) { RT.replay(Trace); });
  }
  const EventTrace &Trace = trace(S, Seed);
  return measureWith(Machine, Kind, Seed,
                     [&](Runtime &RT) { RT.replay(Trace); });
}

RunMetrics Evaluation::measure(const MachineConfig &Machine,
                               AllocatorKind Kind, Scale S, uint64_t Seed,
                               Executor *ShardPool) {
  if (!ShardPool)
    return measure(Machine, Kind, S, Seed);
  if (usesMappedReplay(S, Seed)) {
    const MappedTrace &Trace = mappedTrace(S, Seed);
    return measureWith(Machine, Kind, Seed, [&](Runtime &RT) {
      shardedReplay(RT, Trace, *ShardPool);
    });
  }
  const EventTrace &Trace = trace(S, Seed);
  return measureWith(Machine, Kind, Seed, [&](Runtime &RT) {
    shardedReplay(RT, Trace, *ShardPool);
  });
}

RunMetrics Evaluation::measureDirect(AllocatorKind Kind, Scale S,
                                     uint64_t Seed) {
  return measureDirect(Setup.Machine, Kind, S, Seed);
}

RunMetrics Evaluation::measureDirect(const MachineConfig &Machine,
                                     AllocatorKind Kind, Scale S,
                                     uint64_t Seed) {
  return measureWith(Machine, Kind, Seed,
                     [&](Runtime &RT) { W->run(RT, S, Seed); });
}

RunMetrics
Evaluation::measureWith(const MachineConfig &Machine, AllocatorKind Kind,
                        uint64_t Seed,
                        const std::function<void(Runtime &)> &Drive) {
  MemoryHierarchy Memory(Machine.Hierarchy);
  SizeClassAllocator Jemalloc;
  BoundaryTagAllocator Ptmalloc;

  RunMetrics Out;

  auto Finish = [&](Runtime &RT, const GroupAllocator *GA) {
    Out.Seconds = RT.timing().seconds();
    Out.Cycles = RT.timing().totalCycles();
    Out.Mem = Memory.counters();
    Out.Events = RT.stats();
    Out.InstrumentationOps = RT.timing().instrumentationOps();
    if (GA) {
      Out.Frag = GA->fragmentation();
      Out.GroupedAllocs = GA->groupedAllocations();
      Out.ForwardedAllocs = GA->forwardedAllocations();
    }
  };

  switch (Kind) {
  case AllocatorKind::Jemalloc: {
    Runtime RT(Prog, Jemalloc, Machine.Costs);
    RT.setMemory(&Memory);
    Drive(RT);
    Finish(RT, nullptr);
    break;
  }
  case AllocatorKind::Ptmalloc: {
    Runtime RT(Prog, Ptmalloc, Machine.Costs);
    RT.setMemory(&Memory);
    Drive(RT);
    Finish(RT, nullptr);
    break;
  }
  case AllocatorKind::RandomPools: {
    RandomPoolAllocator Pools(Jemalloc, /*Seed=*/Seed * 11 + 3);
    Runtime RT(Prog, Pools, Machine.Costs);
    RT.setMemory(&Memory);
    Drive(RT);
    Finish(RT, nullptr);
    break;
  }
  case AllocatorKind::Halo: {
    const HaloArtifacts &Art = haloArtifacts();
    Runtime RT(Prog, Jemalloc, Machine.Costs);
    RT.setInstrumentation(&Art.Plan);
    SelectorGroupPolicy Policy(RT.groupState(), Art.CompiledSelectors);
    GroupAllocator Halo(Jemalloc, Policy, Setup.Halo.Allocator);
    RT.setAllocator(Halo);
    RT.setMemory(&Memory);
    Drive(RT);
    Finish(RT, &Halo);
    break;
  }
  case AllocatorKind::Hds: {
    const HdsArtifacts &Art = hdsArtifacts();
    SiteGroupPolicy Policy(Art.SiteToGroup,
                           static_cast<uint32_t>(Art.Groups.size()));
    GroupAllocator Hds(Jemalloc, Policy, Setup.Hds.Allocator);
    Runtime RT(Prog, Hds, Machine.Costs);
    RT.setMemory(&Memory);
    Drive(RT);
    Finish(RT, &Hds);
    break;
  }
  case AllocatorKind::HaloInstrumentedOnly: {
    const HaloArtifacts &Art = haloArtifacts();
    Runtime RT(Prog, Jemalloc, Machine.Costs);
    RT.setInstrumentation(&Art.Plan);
    RT.setMemory(&Memory);
    Drive(RT);
    Finish(RT, nullptr);
    break;
  }
  }
  return Out;
}

void Evaluation::prepareArtifacts(AllocatorKind Kind) {
  if (Kind == AllocatorKind::Halo ||
      Kind == AllocatorKind::HaloInstrumentedOnly)
    haloArtifacts();
  else if (Kind == AllocatorKind::Hds)
    hdsArtifacts();
}

std::vector<RunMetrics> Evaluation::measureTrials(AllocatorKind Kind, Scale S,
                                                  int Trials,
                                                  uint64_t SeedBase,
                                                  int Jobs) {
  return measureTrials(Setup.Machine, Kind, S, Trials, SeedBase, Jobs);
}

void Evaluation::recordTraces(Scale S, int Trials, uint64_t SeedBase,
                              int Jobs) {
  if (Trials <= 0)
    return;
  Executor Pool(static_cast<int>(std::min<uint64_t>(
      resolveJobs(Jobs), static_cast<uint64_t>(Trials))));
  Pool.parallelFor(static_cast<size_t>(Trials),
                   [&](size_t T) { obtainTrace(S, SeedBase + T); });
}

void Evaluation::prepareAllArtifacts(int Jobs) {
  // Pre-record the shared profile trace so the two pipeline tasks replay
  // it instead of racing to record it twice.
  trace(Setup.ProfileScale, Setup.ProfileSeed);
  Executor Pool(static_cast<int>(std::min(resolveJobs(Jobs), 2u)));
  Pool.parallelFor(2, [&](size_t I) {
    if (I == 0)
      haloArtifacts();
    else
      hdsArtifacts();
  });
}

std::vector<RunMetrics> Evaluation::measureTrials(const MachineConfig &Machine,
                                                  AllocatorKind Kind, Scale S,
                                                  int Trials,
                                                  uint64_t SeedBase,
                                                  int Jobs) {
  prepareArtifacts(Kind);

  std::vector<RunMetrics> Runs(std::max(Trials, 0));
  if (Trials <= 0)
    return Runs;

  // Every trial is independent and deterministic, so the pool can claim
  // them in any interleaving; slot T always holds seed SeedBase + T, and
  // the result vector is bit-identical to the serial one. Recording (the
  // expensive half) fans out first; the replay pass then finds every
  // trace cached.
  Executor Pool(static_cast<int>(std::min<uint64_t>(
      resolveJobs(Jobs), static_cast<uint64_t>(Trials))));
  Pool.parallelFor(static_cast<size_t>(Trials),
                   [&](size_t T) { obtainTrace(S, SeedBase + T); });
  Pool.parallelFor(static_cast<size_t>(Trials), [&](size_t T) {
    Runs[T] = measure(Machine, Kind, S, SeedBase + T);
  });
  return Runs;
}

double Evaluation::medianSeconds(const std::vector<RunMetrics> &Runs) {
  std::vector<double> Values;
  for (const RunMetrics &R : Runs)
    Values.push_back(R.Seconds);
  return median(Values);
}

double Evaluation::medianL1Misses(const std::vector<RunMetrics> &Runs) {
  std::vector<double> Values;
  for (const RunMetrics &R : Runs)
    Values.push_back(static_cast<double>(R.Mem.L1Misses));
  return median(Values);
}

double Evaluation::medianTlbMisses(const std::vector<RunMetrics> &Runs) {
  std::vector<double> Values;
  for (const RunMetrics &R : Runs)
    Values.push_back(static_cast<double>(R.Mem.TlbMisses));
  return median(Values);
}

// sweepMachines, compareTechniques, and compareAcrossBenchmarks live in
// eval/Experiment.cpp: they are thin wrappers that expand to an
// ExperimentSpec and run through buildPlan/runPlan.
