//===- eval/Evaluation.cpp - Experiment harness ------------------------------===//

#include "eval/Evaluation.h"

#include "mem/BoundaryTagAllocator.h"
#include "mem/RandomPoolAllocator.h"
#include "mem/SizeClassAllocator.h"
#include "support/Stats.h"

#include <cassert>

using namespace halo;

BenchmarkSetup halo::paperSetup(const std::string &Benchmark) {
  BenchmarkSetup Setup;
  Setup.Name = Benchmark;
  // Global defaults are encoded in the option structs themselves: affinity
  // distance 128 (Fig. 12), merge tolerance 5%, 1 MiB chunks, one spare
  // chunk, maximum grouped object size 4 KiB (Section 5.1).
  if (Benchmark == "omnetpp") {
    Setup.Halo.Allocator.ChunkSize = 128 * 1024;
    Setup.Halo.Allocator.MaxSpareChunks = 0;
    Setup.Halo.Allocator.PurgeEmptyChunks = false; // Always reuse chunks.
  } else if (Benchmark == "xalanc") {
    Setup.Halo.Allocator.MaxSpareChunks = 0;
    Setup.Halo.Allocator.PurgeEmptyChunks = false; // Always reuse chunks.
  } else if (Benchmark == "roms") {
    Setup.Halo.Grouping.MaxGroups = 4; // Artefact: --max-groups 4.
  }
  // The comparison technique shares the specialised allocator and its
  // per-benchmark settings (Section 5.1).
  Setup.Hds.Allocator = Setup.Halo.Allocator;
  return Setup;
}

Evaluation::Evaluation(BenchmarkSetup SetupIn) : Setup(std::move(SetupIn)) {
  W = createWorkload(Setup.Name);
  assert(W && "unknown benchmark");
  W->build(Prog);
}

const HaloArtifacts &Evaluation::haloArtifacts() {
  if (!HaloArt) {
    HaloArt = optimizeBinary(
        Prog,
        [&](Runtime &RT) {
          W->run(RT, Setup.ProfileScale, Setup.ProfileSeed);
        },
        Setup.Halo);
  }
  return *HaloArt;
}

const HdsArtifacts &Evaluation::hdsArtifacts() {
  if (!HdsArt) {
    HdsArt = optimizeBinaryHds(
        Prog,
        [&](Runtime &RT) {
          W->run(RT, Setup.ProfileScale, Setup.ProfileSeed);
        },
        Setup.Hds);
  }
  return *HdsArt;
}

RunMetrics Evaluation::measure(AllocatorKind Kind, Scale S, uint64_t Seed) {
  MemoryHierarchy Memory;
  SizeClassAllocator Jemalloc;
  BoundaryTagAllocator Ptmalloc;

  RunMetrics Out;

  auto Finish = [&](Runtime &RT, const GroupAllocator *GA) {
    Out.Seconds = RT.timing().seconds();
    Out.Cycles = RT.timing().totalCycles();
    Out.Mem = Memory.counters();
    Out.Events = RT.stats();
    Out.InstrumentationOps = RT.timing().instrumentationOps();
    if (GA) {
      Out.Frag = GA->fragmentation();
      Out.GroupedAllocs = GA->groupedAllocations();
      Out.ForwardedAllocs = GA->forwardedAllocations();
    }
  };

  switch (Kind) {
  case AllocatorKind::Jemalloc: {
    Runtime RT(Prog, Jemalloc);
    RT.setMemory(&Memory);
    W->run(RT, S, Seed);
    Finish(RT, nullptr);
    break;
  }
  case AllocatorKind::Ptmalloc: {
    Runtime RT(Prog, Ptmalloc);
    RT.setMemory(&Memory);
    W->run(RT, S, Seed);
    Finish(RT, nullptr);
    break;
  }
  case AllocatorKind::RandomPools: {
    RandomPoolAllocator Pools(Jemalloc, /*Seed=*/Seed * 11 + 3);
    Runtime RT(Prog, Pools);
    RT.setMemory(&Memory);
    W->run(RT, S, Seed);
    Finish(RT, nullptr);
    break;
  }
  case AllocatorKind::Halo: {
    const HaloArtifacts &Art = haloArtifacts();
    Runtime RT(Prog, Jemalloc);
    RT.setInstrumentation(&Art.Plan);
    SelectorGroupPolicy Policy(RT.groupState(), Art.CompiledSelectors);
    GroupAllocator Halo(Jemalloc, Policy, Setup.Halo.Allocator);
    RT.setAllocator(Halo);
    RT.setMemory(&Memory);
    W->run(RT, S, Seed);
    Finish(RT, &Halo);
    break;
  }
  case AllocatorKind::Hds: {
    const HdsArtifacts &Art = hdsArtifacts();
    SiteGroupPolicy Policy(Art.SiteToGroup,
                           static_cast<uint32_t>(Art.Groups.size()));
    GroupAllocator Hds(Jemalloc, Policy, Setup.Hds.Allocator);
    Runtime RT(Prog, Hds);
    RT.setMemory(&Memory);
    W->run(RT, S, Seed);
    Finish(RT, &Hds);
    break;
  }
  case AllocatorKind::HaloInstrumentedOnly: {
    const HaloArtifacts &Art = haloArtifacts();
    Runtime RT(Prog, Jemalloc);
    RT.setInstrumentation(&Art.Plan);
    RT.setMemory(&Memory);
    W->run(RT, S, Seed);
    Finish(RT, nullptr);
    break;
  }
  }
  return Out;
}

std::vector<RunMetrics> Evaluation::measureTrials(AllocatorKind Kind, Scale S,
                                                  int Trials,
                                                  uint64_t SeedBase) {
  std::vector<RunMetrics> Runs;
  Runs.reserve(Trials);
  for (int T = 0; T < Trials; ++T)
    Runs.push_back(measure(Kind, S, SeedBase + T));
  return Runs;
}

double Evaluation::medianSeconds(const std::vector<RunMetrics> &Runs) {
  std::vector<double> Values;
  for (const RunMetrics &R : Runs)
    Values.push_back(R.Seconds);
  return median(Values);
}

double Evaluation::medianL1Misses(const std::vector<RunMetrics> &Runs) {
  std::vector<double> Values;
  for (const RunMetrics &R : Runs)
    Values.push_back(static_cast<double>(R.Mem.L1Misses));
  return median(Values);
}

ComparisonRow halo::compareTechniques(const std::string &Benchmark,
                                      int Trials, Scale S) {
  Evaluation Eval(paperSetup(Benchmark));
  auto Base = Eval.measureTrials(AllocatorKind::Jemalloc, S, Trials);
  auto Hds = Eval.measureTrials(AllocatorKind::Hds, S, Trials);
  auto Halo = Eval.measureTrials(AllocatorKind::Halo, S, Trials);

  ComparisonRow Row;
  Row.Benchmark = Benchmark;
  Row.HdsMissReduction = percentImprovement(Evaluation::medianL1Misses(Base),
                                            Evaluation::medianL1Misses(Hds));
  Row.HaloMissReduction = percentImprovement(Evaluation::medianL1Misses(Base),
                                             Evaluation::medianL1Misses(Halo));
  Row.HdsSpeedup = percentImprovement(Evaluation::medianSeconds(Base),
                                      Evaluation::medianSeconds(Hds));
  Row.HaloSpeedup = percentImprovement(Evaluation::medianSeconds(Base),
                                       Evaluation::medianSeconds(Halo));
  return Row;
}
