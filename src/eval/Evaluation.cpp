//===- eval/Evaluation.cpp - Experiment harness ------------------------------===//

#include "eval/Evaluation.h"

#include "mem/BoundaryTagAllocator.h"
#include "mem/RandomPoolAllocator.h"
#include "mem/SizeClassAllocator.h"
#include "support/Stats.h"

#include <atomic>
#include <cassert>
#include <thread>

using namespace halo;

BenchmarkSetup halo::paperSetup(const std::string &Benchmark) {
  BenchmarkSetup Setup;
  Setup.Name = Benchmark;
  // Global defaults are encoded in the option structs themselves: affinity
  // distance 128 (Fig. 12), merge tolerance 5%, 1 MiB chunks, one spare
  // chunk, maximum grouped object size 4 KiB (Section 5.1).
  if (Benchmark == "omnetpp") {
    Setup.Halo.Allocator.ChunkSize = 128 * 1024;
    Setup.Halo.Allocator.MaxSpareChunks = 0;
    Setup.Halo.Allocator.PurgeEmptyChunks = false; // Always reuse chunks.
  } else if (Benchmark == "xalanc") {
    Setup.Halo.Allocator.MaxSpareChunks = 0;
    Setup.Halo.Allocator.PurgeEmptyChunks = false; // Always reuse chunks.
  } else if (Benchmark == "roms") {
    Setup.Halo.Grouping.MaxGroups = 4; // Artefact: --max-groups 4.
  }
  // The comparison technique shares the specialised allocator and its
  // per-benchmark settings (Section 5.1).
  Setup.Hds.Allocator = Setup.Halo.Allocator;
  return Setup;
}

Evaluation::Evaluation(BenchmarkSetup SetupIn) : Setup(std::move(SetupIn)) {
  W = createWorkload(Setup.Name);
  assert(W && "unknown benchmark");
  W->build(Prog);
}

const HaloArtifacts &Evaluation::haloArtifacts() {
  if (!HaloArt)
    HaloArt = optimizeBinary(Prog,
                             trace(Setup.ProfileScale, Setup.ProfileSeed),
                             Setup.Halo, Setup.Machine);
  return *HaloArt;
}

const HdsArtifacts &Evaluation::hdsArtifacts() {
  if (!HdsArt)
    HdsArt = optimizeBinaryHds(Prog,
                               trace(Setup.ProfileScale, Setup.ProfileSeed),
                               Setup.Hds, Setup.Machine);
  return *HdsArt;
}

const EventTrace &Evaluation::trace(Scale S, uint64_t Seed) {
  auto Key = std::make_pair(static_cast<int>(S), Seed);
  {
    std::lock_guard<std::mutex> Lock(TraceMutex);
    auto It = Traces.find(Key);
    if (It != Traces.end())
      return It->second;
  }
  // Record outside the lock so distinct seeds record in parallel. The
  // recording allocator's addresses never reach the trace (accesses are
  // object-relative), so the id-encoding arena serves the run and the
  // recorder attributes accesses arithmetically; no memory hierarchy or
  // instrumentation is needed to capture the event stream.
  EventTrace Recorded;
  {
    RecordingArena RecordAlloc;
    Runtime RT(Prog, RecordAlloc);
    TraceRecorder Recorder(Recorded, RecordAlloc);
    RT.addObserver(&Recorder);
    W->run(RT, S, Seed);
  }
  std::lock_guard<std::mutex> Lock(TraceMutex);
  // If another thread recorded the same key first, its copy wins (the
  // recordings are identical anyway).
  return Traces.emplace(Key, std::move(Recorded)).first->second;
}

RunMetrics Evaluation::measure(AllocatorKind Kind, Scale S, uint64_t Seed) {
  return measure(Setup.Machine, Kind, S, Seed);
}

RunMetrics Evaluation::measure(const MachineConfig &Machine,
                               AllocatorKind Kind, Scale S, uint64_t Seed) {
  const EventTrace &Trace = trace(S, Seed);
  return measureWith(Machine, Kind, Seed,
                     [&](Runtime &RT) { RT.replay(Trace); });
}

RunMetrics Evaluation::measureDirect(AllocatorKind Kind, Scale S,
                                     uint64_t Seed) {
  return measureDirect(Setup.Machine, Kind, S, Seed);
}

RunMetrics Evaluation::measureDirect(const MachineConfig &Machine,
                                     AllocatorKind Kind, Scale S,
                                     uint64_t Seed) {
  return measureWith(Machine, Kind, Seed,
                     [&](Runtime &RT) { W->run(RT, S, Seed); });
}

RunMetrics
Evaluation::measureWith(const MachineConfig &Machine, AllocatorKind Kind,
                        uint64_t Seed,
                        const std::function<void(Runtime &)> &Drive) {
  MemoryHierarchy Memory(Machine.Hierarchy);
  SizeClassAllocator Jemalloc;
  BoundaryTagAllocator Ptmalloc;

  RunMetrics Out;

  auto Finish = [&](Runtime &RT, const GroupAllocator *GA) {
    Out.Seconds = RT.timing().seconds();
    Out.Cycles = RT.timing().totalCycles();
    Out.Mem = Memory.counters();
    Out.Events = RT.stats();
    Out.InstrumentationOps = RT.timing().instrumentationOps();
    if (GA) {
      Out.Frag = GA->fragmentation();
      Out.GroupedAllocs = GA->groupedAllocations();
      Out.ForwardedAllocs = GA->forwardedAllocations();
    }
  };

  switch (Kind) {
  case AllocatorKind::Jemalloc: {
    Runtime RT(Prog, Jemalloc, Machine.Costs);
    RT.setMemory(&Memory);
    Drive(RT);
    Finish(RT, nullptr);
    break;
  }
  case AllocatorKind::Ptmalloc: {
    Runtime RT(Prog, Ptmalloc, Machine.Costs);
    RT.setMemory(&Memory);
    Drive(RT);
    Finish(RT, nullptr);
    break;
  }
  case AllocatorKind::RandomPools: {
    RandomPoolAllocator Pools(Jemalloc, /*Seed=*/Seed * 11 + 3);
    Runtime RT(Prog, Pools, Machine.Costs);
    RT.setMemory(&Memory);
    Drive(RT);
    Finish(RT, nullptr);
    break;
  }
  case AllocatorKind::Halo: {
    const HaloArtifacts &Art = haloArtifacts();
    Runtime RT(Prog, Jemalloc, Machine.Costs);
    RT.setInstrumentation(&Art.Plan);
    SelectorGroupPolicy Policy(RT.groupState(), Art.CompiledSelectors);
    GroupAllocator Halo(Jemalloc, Policy, Setup.Halo.Allocator);
    RT.setAllocator(Halo);
    RT.setMemory(&Memory);
    Drive(RT);
    Finish(RT, &Halo);
    break;
  }
  case AllocatorKind::Hds: {
    const HdsArtifacts &Art = hdsArtifacts();
    SiteGroupPolicy Policy(Art.SiteToGroup,
                           static_cast<uint32_t>(Art.Groups.size()));
    GroupAllocator Hds(Jemalloc, Policy, Setup.Hds.Allocator);
    Runtime RT(Prog, Hds, Machine.Costs);
    RT.setMemory(&Memory);
    Drive(RT);
    Finish(RT, &Hds);
    break;
  }
  case AllocatorKind::HaloInstrumentedOnly: {
    const HaloArtifacts &Art = haloArtifacts();
    Runtime RT(Prog, Jemalloc, Machine.Costs);
    RT.setInstrumentation(&Art.Plan);
    RT.setMemory(&Memory);
    Drive(RT);
    Finish(RT, nullptr);
    break;
  }
  }
  return Out;
}

void Evaluation::prepareArtifacts(AllocatorKind Kind) {
  if (Kind == AllocatorKind::Halo ||
      Kind == AllocatorKind::HaloInstrumentedOnly)
    haloArtifacts();
  else if (Kind == AllocatorKind::Hds)
    hdsArtifacts();
}

std::vector<RunMetrics> Evaluation::measureTrials(AllocatorKind Kind, Scale S,
                                                  int Trials,
                                                  uint64_t SeedBase,
                                                  int Jobs) {
  return measureTrials(Setup.Machine, Kind, S, Trials, SeedBase, Jobs);
}

std::vector<RunMetrics> Evaluation::measureTrials(const MachineConfig &Machine,
                                                  AllocatorKind Kind, Scale S,
                                                  int Trials,
                                                  uint64_t SeedBase,
                                                  int Jobs) {
  prepareArtifacts(Kind);

  unsigned Workers = Jobs > 0
                         ? static_cast<unsigned>(Jobs)
                         : std::max(1u, std::thread::hardware_concurrency());
  if (Trials > 0 && Workers > static_cast<unsigned>(Trials))
    Workers = static_cast<unsigned>(Trials);

  std::vector<RunMetrics> Runs(std::max(Trials, 0));
  if (Workers <= 1) {
    for (int T = 0; T < Trials; ++T)
      Runs[T] = measure(Machine, Kind, S, SeedBase + T);
    return Runs;
  }

  // Every trial is independent and deterministic, so workers can claim
  // them off a shared counter; slot T always holds seed SeedBase + T, and
  // the result vector is bit-identical to the serial one.
  std::atomic<int> Next{0};
  std::vector<std::thread> Pool;
  Pool.reserve(Workers);
  for (unsigned J = 0; J < Workers; ++J)
    Pool.emplace_back([&] {
      for (int T; (T = Next.fetch_add(1)) < Trials;)
        Runs[T] = measure(Machine, Kind, S, SeedBase + T);
    });
  for (std::thread &Worker : Pool)
    Worker.join();
  return Runs;
}

double Evaluation::medianSeconds(const std::vector<RunMetrics> &Runs) {
  std::vector<double> Values;
  for (const RunMetrics &R : Runs)
    Values.push_back(R.Seconds);
  return median(Values);
}

double Evaluation::medianL1Misses(const std::vector<RunMetrics> &Runs) {
  std::vector<double> Values;
  for (const RunMetrics &R : Runs)
    Values.push_back(static_cast<double>(R.Mem.L1Misses));
  return median(Values);
}

double Evaluation::medianTlbMisses(const std::vector<RunMetrics> &Runs) {
  std::vector<double> Values;
  for (const RunMetrics &R : Runs)
    Values.push_back(static_cast<double>(R.Mem.TlbMisses));
  return median(Values);
}

ComparisonRow halo::compareTechniques(const std::string &Benchmark,
                                      int Trials, Scale S, int Jobs,
                                      const MachineConfig &Machine) {
  BenchmarkSetup Setup = paperSetup(Benchmark);
  Setup.Machine = Machine;
  Evaluation Eval(std::move(Setup));
  // The first configuration's trials record the per-seed traces (in
  // parallel); the other two replay them.
  auto Base = Eval.measureTrials(AllocatorKind::Jemalloc, S, Trials, 100,
                                 Jobs);
  auto Hds = Eval.measureTrials(AllocatorKind::Hds, S, Trials, 100, Jobs);
  auto Halo = Eval.measureTrials(AllocatorKind::Halo, S, Trials, 100, Jobs);

  ComparisonRow Row;
  Row.Benchmark = Benchmark;
  Row.HdsMissReduction = percentImprovement(Evaluation::medianL1Misses(Base),
                                            Evaluation::medianL1Misses(Hds));
  Row.HaloMissReduction = percentImprovement(Evaluation::medianL1Misses(Base),
                                             Evaluation::medianL1Misses(Halo));
  Row.HdsSpeedup = percentImprovement(Evaluation::medianSeconds(Base),
                                      Evaluation::medianSeconds(Hds));
  Row.HaloSpeedup = percentImprovement(Evaluation::medianSeconds(Base),
                                       Evaluation::medianSeconds(Halo));
  return Row;
}

std::vector<ComparisonRow>
halo::compareAcrossBenchmarks(const std::vector<std::string> &Benchmarks,
                              int Trials, Scale S, int Jobs,
                              const MachineConfig &Machine) {
  std::vector<ComparisonRow> Rows(Benchmarks.size());
  // One benchmark cannot be sharded any coarser, so spend the workers on
  // its trials instead.
  if (Benchmarks.size() == 1) {
    Rows[0] = compareTechniques(Benchmarks[0], Trials, S, Jobs, Machine);
    return Rows;
  }

  unsigned Workers = Jobs > 0
                         ? static_cast<unsigned>(Jobs)
                         : std::max(1u, std::thread::hardware_concurrency());
  unsigned Shards = Workers;
  if (Shards > Benchmarks.size())
    Shards = static_cast<unsigned>(Benchmarks.size());
  // Surplus workers beyond the shard count go to trial-level fan-out
  // inside each shard, so short benchmark lists still use the whole pool;
  // trials are deterministic, so any split is bit-identical to serial.
  const int InnerJobs = std::max(1u, Workers / std::max(Shards, 1u));
  if (Shards <= 1) {
    for (size_t B = 0; B < Benchmarks.size(); ++B)
      Rows[B] = compareTechniques(Benchmarks[B], Trials, S, InnerJobs,
                                  Machine);
    return Rows;
  }

  // Benchmarks are independent Evaluations, so workers claim whole
  // benchmarks off a shared counter; Shards * InnerJobs bounds total
  // concurrency. Slot B always holds Benchmarks[B], and every row is
  // bit-identical to the serial order.
  std::atomic<size_t> Next{0};
  std::vector<std::thread> Pool;
  Pool.reserve(Shards);
  for (unsigned J = 0; J < Shards; ++J)
    Pool.emplace_back([&] {
      for (size_t B; (B = Next.fetch_add(1)) < Benchmarks.size();)
        Rows[B] = compareTechniques(Benchmarks[B], Trials, S, InnerJobs,
                                    Machine);
    });
  for (std::thread &Worker : Pool)
    Worker.join();
  return Rows;
}
