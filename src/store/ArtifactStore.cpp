//===- store/ArtifactStore.cpp - Content-addressed artifact store -----------===//

#include "store/ArtifactStore.h"

#include "support/BinaryIO.h"
#include "support/Hash.h"
#include "trace/EventTrace.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace halo;

//===----------------------------------------------------------------------===//
// Keys
//===----------------------------------------------------------------------===//

const char *halo::artifactTypeName(ArtifactType Type) {
  switch (Type) {
  case ArtifactType::Trace:
    return "trace";
  case ArtifactType::Halo:
    return "halo";
  case ArtifactType::Hds:
    return "hds";
  }
  return "?";
}

namespace {

/// Feeds the sub-option structs shared by both pipeline keys. Every field
/// participates: any knob change must re-key the artifact.
void hashProfile(HashBuilder &H, const ProfileOptions &P) {
  H.u64(P.AffinityDistance)
      .f64(P.NodeCoverage)
      .u64(P.MaxObjectSize)
      .boolean(P.Dedup)
      .boolean(P.NoDoubleCount)
      .boolean(P.CoAllocatability)
      .boolean(P.RecordReferenceTrace);
}

void hashAllocator(HashBuilder &H, const GroupAllocatorOptions &A) {
  H.u64(A.ChunkSize)
      .u64(A.SlabSize)
      .u64(A.MaxGroupedSize)
      .u32(A.MaxSpareChunks)
      .boolean(A.PurgeEmptyChunks);
}

/// The common key prefix: domain tag, schema stamp, benchmark, and the
/// (scale, seed) of the run the entry derives from.
HashBuilder keyPrefix(const char *Tag, uint32_t Schema,
                      const std::string &Benchmark, Scale S, uint64_t Seed) {
  HashBuilder H;
  H.str(Tag).u32(Schema).str(Benchmark).u32(static_cast<uint32_t>(S)).u64(
      Seed);
  return H;
}

std::string scaleLabel(Scale S) { return S == Scale::Test ? "test" : "ref"; }

} // namespace

StoreKey halo::traceStoreKey(const std::string &Benchmark, Scale S,
                             uint64_t Seed, uint32_t Schema) {
  StoreKey Key;
  Key.Type = ArtifactType::Trace;
  Key.Hash = keyPrefix("halo.store.trace", Schema, Benchmark, S, Seed).hash();
  Key.Label = "trace/" + Benchmark + "/" + scaleLabel(S) + "/s" +
              std::to_string(Seed);
  return Key;
}

StoreKey halo::haloStoreKey(const std::string &Benchmark, Scale ProfileScale,
                            uint64_t ProfileSeed, const HaloParameters &Params,
                            uint32_t Schema) {
  StoreKey Key;
  Key.Type = ArtifactType::Halo;
  HashBuilder H =
      keyPrefix("halo.store.halo", Schema, Benchmark, ProfileScale,
                ProfileSeed);
  hashProfile(H, Params.Profile);
  H.u64(Params.Grouping.MinEdgeWeight)
      .f64(Params.Grouping.MergeTolerance)
      .f64(Params.Grouping.GroupWeightThreshold)
      .u32(Params.Grouping.MaxGroupMembers)
      .u32(Params.Grouping.MaxGroups);
  hashAllocator(H, Params.Allocator);
  Key.Hash = H.hash();
  Key.Label = "halo/" + Benchmark + "/" + scaleLabel(ProfileScale) + "/s" +
              std::to_string(ProfileSeed);
  return Key;
}

StoreKey halo::hdsStoreKey(const std::string &Benchmark, Scale ProfileScale,
                           uint64_t ProfileSeed, const HdsParameters &Params,
                           uint32_t Schema) {
  StoreKey Key;
  Key.Type = ArtifactType::Hds;
  HashBuilder H =
      keyPrefix("halo.store.hds", Schema, Benchmark, ProfileScale,
                ProfileSeed);
  hashProfile(H, Params.Profile);
  H.u32(Params.Streams.MinLength)
      .u32(Params.Streams.MaxLength)
      .f64(Params.Streams.Coverage);
  H.u32(Params.CoAllocation.CacheLineSize)
      .u32(Params.CoAllocation.MaxGroups)
      .f64(Params.CoAllocation.MinBenefit)
      .f64(Params.CoAllocation.MinBenefitFraction);
  hashAllocator(H, Params.Allocator);
  Key.Hash = H.hash();
  Key.Label = "hds/" + Benchmark + "/" + scaleLabel(ProfileScale) + "/s" +
              std::to_string(ProfileSeed);
  return Key;
}

//===----------------------------------------------------------------------===//
// Entry file format
//===----------------------------------------------------------------------===//

namespace {

/// "HSTE": one store entry file.
constexpr uint32_t EntryMagic = 0x45545348;

/// Serial for temp-file names: threads of one process must not share a
/// temp path even when racing the same key.
std::atomic<uint64_t> TempSerial{0};

std::string entryFileName(const StoreKey &Key) {
  return hashHex(Key.Hash) + "." + artifactTypeName(Key.Type);
}

bool writeWholeFile(const std::string &Path,
                    const std::vector<uint8_t> &Data) {
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;
  size_t Done = 0;
  while (Done < Data.size()) {
    ssize_t N = ::write(Fd, Data.data() + Done, Data.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      ::unlink(Path.c_str());
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return ::close(Fd) == 0;
}

bool readWholeFile(const std::string &Path, std::vector<uint8_t> &Out) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return false;
  struct stat St;
  if (::fstat(Fd, &St) != 0 || !S_ISREG(St.st_mode)) {
    ::close(Fd);
    return false;
  }
  Out.resize(static_cast<size_t>(St.st_size));
  size_t Done = 0;
  while (Done < Out.size()) {
    ssize_t N = ::read(Fd, Out.data() + Done, Out.size() - Done);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0) {
      ::close(Fd);
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  ::close(Fd);
  return true;
}

/// Decodes one entry file into (header fields, payload). Throws
/// SerializationError on any inconsistency; callers translate that into
/// "absent" (get/contains) or a verify diagnostic (entries).
std::vector<uint8_t> decodeEntry(const std::vector<uint8_t> &Raw,
                                 ArtifactStore::Entry &Header) {
  BinaryReader R(Raw);
  if (R.u32() != EntryMagic)
    throw SerializationError("store entry: bad magic");
  uint32_t Schema = R.u32();
  if (Schema != StoreSchemaVersion)
    throw SerializationError("store entry: schema version " +
                             std::to_string(Schema) + " != " +
                             std::to_string(StoreSchemaVersion));
  uint8_t Type = R.u8();
  if (Type > static_cast<uint8_t>(ArtifactType::Hds))
    throw SerializationError("store entry: unknown artifact type");
  Header.Type = static_cast<ArtifactType>(Type);
  Header.Hash = R.u64();
  Header.Label = R.str();
  uint64_t Size = R.varint();
  uint64_t Checksum = R.u64();
  if (Size != R.remaining())
    throw SerializationError("store entry: truncated payload");
  std::vector<uint8_t> Payload(static_cast<size_t>(Size));
  R.bytes(Payload.data(), Payload.size());
  R.expectEnd("store entry");
  if (fnv1a(Payload.data(), Payload.size()) != Checksum)
    throw SerializationError("store entry: payload checksum mismatch");
  Header.PayloadSize = Size;
  return Payload;
}

} // namespace

//===----------------------------------------------------------------------===//
// ArtifactStore
//===----------------------------------------------------------------------===//

ArtifactStore::ArtifactStore(std::string DirIn) : Dir(std::move(DirIn)) {
  if (Dir.empty())
    throw std::runtime_error("artifact store: empty directory path");
  while (Dir.size() > 1 && Dir.back() == '/')
    Dir.pop_back();
  if (::mkdir(Dir.c_str(), 0755) != 0 && errno != EEXIST)
    throw std::runtime_error("artifact store: cannot create '" + Dir +
                             "': " + std::strerror(errno));
  // Fail on a path that exists but is not a usable directory: a store
  // that drops every put would silently turn all warm runs cold.
  struct stat St;
  if (::stat(Dir.c_str(), &St) != 0 || !S_ISDIR(St.st_mode))
    throw std::runtime_error("artifact store: '" + Dir +
                             "' is not a directory");
  if (::access(Dir.c_str(), W_OK | X_OK) != 0)
    throw std::runtime_error("artifact store: '" + Dir + "' is not writable");
}

std::string ArtifactStore::pathFor(const StoreKey &Key) const {
  return Dir + "/" + entryFileName(Key);
}

bool ArtifactStore::put(const StoreKey &Key,
                        const std::vector<uint8_t> &Payload) {
  BinaryWriter W;
  W.u32(EntryMagic);
  W.u32(StoreSchemaVersion);
  W.u8(static_cast<uint8_t>(Key.Type));
  W.u64(Key.Hash);
  W.str(Key.Label);
  W.varint(Payload.size());
  W.u64(fnv1a(Payload.data(), Payload.size()));
  W.bytes(Payload.data(), Payload.size());

  // Unique temp path per writer, then one atomic rename: readers never see
  // a partial entry, and two writers racing one key both succeed with
  // identical content (every store value is a deterministic function of
  // its key).
  std::string Temp = Dir + "/tmp." + hashHex(Key.Hash) + "." +
                     std::to_string(::getpid()) + "." +
                     std::to_string(TempSerial.fetch_add(1));
  if (!writeWholeFile(Temp, W.buffer()))
    return false;
  if (::rename(Temp.c_str(), pathFor(Key).c_str()) != 0) {
    ::unlink(Temp.c_str());
    return false;
  }
  return true;
}

std::optional<std::vector<uint8_t>>
ArtifactStore::get(const StoreKey &Key) const {
  std::vector<uint8_t> Raw;
  if (!readWholeFile(pathFor(Key), Raw))
    return std::nullopt;
  try {
    Entry Header;
    std::vector<uint8_t> Payload = decodeEntry(Raw, Header);
    // The name already encodes hash and type; re-checking the header binds
    // the content to the key even if a file was renamed into place.
    if (Header.Hash != Key.Hash || Header.Type != Key.Type)
      return std::nullopt;
    return Payload;
  } catch (const SerializationError &) {
    return std::nullopt;
  }
}

bool ArtifactStore::contains(const StoreKey &Key) const {
  return get(Key).has_value();
}

std::vector<ArtifactStore::Entry> ArtifactStore::entries() const {
  std::vector<Entry> Result;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Result;
  while (struct dirent *Ent = ::readdir(D)) {
    std::string Name = Ent->d_name;
    if (Name == "." || Name == ".." ||
        Name.compare(0, 4, "tmp.") == 0)
      continue;
    Entry E;
    E.File = Name;
    std::vector<uint8_t> Raw;
    if (!readWholeFile(Dir + "/" + Name, Raw)) {
      E.Problem = "unreadable";
    } else {
      try {
        decodeEntry(Raw, E);
        // The file name must agree with the header it carries.
        if (Name != hashHex(E.Hash) + "." + artifactTypeName(E.Type))
          E.Problem = "file name does not match entry key";
        else
          E.Valid = true;
      } catch (const SerializationError &Err) {
        E.Problem = Err.what();
      }
    }
    Result.push_back(std::move(E));
  }
  ::closedir(D);
  std::sort(Result.begin(), Result.end(),
            [](const Entry &A, const Entry &B) { return A.File < B.File; });
  return Result;
}

size_t ArtifactStore::gc() {
  size_t Removed = 0;
  // Abandoned temp files first (a crashed writer's leftovers). gc assumes
  // no writer is concurrently publishing into this store.
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Removed;
  std::vector<std::string> Temps;
  while (struct dirent *Ent = ::readdir(D)) {
    std::string Name = Ent->d_name;
    if (Name.compare(0, 4, "tmp.") == 0)
      Temps.push_back(std::move(Name));
  }
  ::closedir(D);
  for (const std::string &Name : Temps)
    if (::unlink((Dir + "/" + Name).c_str()) == 0)
      ++Removed;
  for (const Entry &E : entries())
    if (!E.Valid && ::unlink((Dir + "/" + E.File).c_str()) == 0)
      ++Removed;
  return Removed;
}

//===----------------------------------------------------------------------===//
// Typed helpers
//===----------------------------------------------------------------------===//

bool halo::putTrace(ArtifactStore &Store, const StoreKey &Key,
                    const EventTrace &Trace) {
  BinaryWriter W;
  Trace.save(W);
  return Store.put(Key, W.buffer());
}

std::optional<EventTrace> halo::getTrace(const ArtifactStore &Store,
                                         const StoreKey &Key) {
  std::optional<std::vector<uint8_t>> Payload = Store.get(Key);
  if (!Payload)
    return std::nullopt;
  try {
    BinaryReader R(*Payload);
    EventTrace Trace = EventTrace::load(R);
    R.expectEnd("event trace");
    return Trace;
  } catch (const SerializationError &) {
    return std::nullopt;
  }
}

bool halo::putHaloArtifacts(ArtifactStore &Store, const StoreKey &Key,
                            const HaloArtifacts &Art) {
  BinaryWriter W;
  saveHaloArtifacts(Art, W);
  return Store.put(Key, W.buffer());
}

std::optional<HaloArtifacts> halo::getHaloArtifacts(const ArtifactStore &Store,
                                                    const StoreKey &Key,
                                                    const Program &Prog) {
  std::optional<std::vector<uint8_t>> Payload = Store.get(Key);
  if (!Payload)
    return std::nullopt;
  try {
    BinaryReader R(*Payload);
    HaloArtifacts Art = loadHaloArtifacts(R, Prog);
    R.expectEnd("halo artifacts");
    return Art;
  } catch (const SerializationError &) {
    return std::nullopt;
  }
}

bool halo::putHdsArtifacts(ArtifactStore &Store, const StoreKey &Key,
                           const HdsArtifacts &Art) {
  BinaryWriter W;
  saveHdsArtifacts(Art, W);
  return Store.put(Key, W.buffer());
}

std::optional<HdsArtifacts> halo::getHdsArtifacts(const ArtifactStore &Store,
                                                  const StoreKey &Key) {
  std::optional<std::vector<uint8_t>> Payload = Store.get(Key);
  if (!Payload)
    return std::nullopt;
  try {
    BinaryReader R(*Payload);
    HdsArtifacts Art = loadHdsArtifacts(R);
    R.expectEnd("hds artifacts");
    return Art;
  } catch (const SerializationError &) {
    return std::nullopt;
  }
}
