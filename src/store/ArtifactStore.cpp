//===- store/ArtifactStore.cpp - Content-addressed artifact store -----------===//

#include "store/ArtifactStore.h"

#include "support/BinaryIO.h"
#include "support/Hash.h"
#include "trace/EventTrace.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace halo;

//===----------------------------------------------------------------------===//
// Keys
//===----------------------------------------------------------------------===//

const char *halo::artifactTypeName(ArtifactType Type) {
  switch (Type) {
  case ArtifactType::Trace:
    return "trace";
  case ArtifactType::Halo:
    return "halo";
  case ArtifactType::Hds:
    return "hds";
  }
  return "?";
}

namespace {

/// Feeds the sub-option structs shared by both pipeline keys. Every field
/// participates: any knob change must re-key the artifact.
void hashProfile(HashBuilder &H, const ProfileOptions &P) {
  H.u64(P.AffinityDistance)
      .f64(P.NodeCoverage)
      .u64(P.MaxObjectSize)
      .boolean(P.Dedup)
      .boolean(P.NoDoubleCount)
      .boolean(P.CoAllocatability)
      .boolean(P.RecordReferenceTrace);
}

void hashAllocator(HashBuilder &H, const GroupAllocatorOptions &A) {
  H.u64(A.ChunkSize)
      .u64(A.SlabSize)
      .u64(A.MaxGroupedSize)
      .u32(A.MaxSpareChunks)
      .boolean(A.PurgeEmptyChunks);
}

/// The common key prefix: domain tag, schema stamp, benchmark, and the
/// (scale, seed) of the run the entry derives from.
HashBuilder keyPrefix(const char *Tag, uint32_t Schema,
                      const std::string &Benchmark, Scale S, uint64_t Seed) {
  HashBuilder H;
  H.str(Tag).u32(Schema).str(Benchmark).u32(static_cast<uint32_t>(S)).u64(
      Seed);
  return H;
}

std::string scaleLabel(Scale S) { return S == Scale::Test ? "test" : "ref"; }

} // namespace

StoreKey halo::traceStoreKey(const std::string &Benchmark, Scale S,
                             uint64_t Seed, uint32_t Schema) {
  StoreKey Key;
  Key.Type = ArtifactType::Trace;
  Key.Hash = keyPrefix("halo.store.trace", Schema, Benchmark, S, Seed).hash();
  Key.Label = "trace/" + Benchmark + "/" + scaleLabel(S) + "/s" +
              std::to_string(Seed);
  return Key;
}

StoreKey halo::haloStoreKey(const std::string &Benchmark, Scale ProfileScale,
                            uint64_t ProfileSeed, const HaloParameters &Params,
                            uint32_t Schema) {
  StoreKey Key;
  Key.Type = ArtifactType::Halo;
  HashBuilder H =
      keyPrefix("halo.store.halo", Schema, Benchmark, ProfileScale,
                ProfileSeed);
  hashProfile(H, Params.Profile);
  H.u64(Params.Grouping.MinEdgeWeight)
      .f64(Params.Grouping.MergeTolerance)
      .f64(Params.Grouping.GroupWeightThreshold)
      .u32(Params.Grouping.MaxGroupMembers)
      .u32(Params.Grouping.MaxGroups);
  hashAllocator(H, Params.Allocator);
  Key.Hash = H.hash();
  Key.Label = "halo/" + Benchmark + "/" + scaleLabel(ProfileScale) + "/s" +
              std::to_string(ProfileSeed);
  return Key;
}

StoreKey halo::hdsStoreKey(const std::string &Benchmark, Scale ProfileScale,
                           uint64_t ProfileSeed, const HdsParameters &Params,
                           uint32_t Schema) {
  StoreKey Key;
  Key.Type = ArtifactType::Hds;
  HashBuilder H =
      keyPrefix("halo.store.hds", Schema, Benchmark, ProfileScale,
                ProfileSeed);
  hashProfile(H, Params.Profile);
  H.u32(Params.Streams.MinLength)
      .u32(Params.Streams.MaxLength)
      .f64(Params.Streams.Coverage);
  H.u32(Params.CoAllocation.CacheLineSize)
      .u32(Params.CoAllocation.MaxGroups)
      .f64(Params.CoAllocation.MinBenefit)
      .f64(Params.CoAllocation.MinBenefitFraction);
  hashAllocator(H, Params.Allocator);
  Key.Hash = H.hash();
  Key.Label = "hds/" + Benchmark + "/" + scaleLabel(ProfileScale) + "/s" +
              std::to_string(ProfileSeed);
  return Key;
}

//===----------------------------------------------------------------------===//
// Entry file format
//===----------------------------------------------------------------------===//

namespace {

/// "HSTE": one store entry file.
constexpr uint32_t EntryMagic = 0x45545348;

/// Serial for temp-file names: threads of one process must not share a
/// temp path even when racing the same key.
std::atomic<uint64_t> TempSerial{0};

std::string entryFileName(const StoreKey &Key) {
  return hashHex(Key.Hash) + "." + artifactTypeName(Key.Type);
}

bool writeWholeFile(const std::string &Path,
                    const std::vector<uint8_t> &Data) {
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;
  size_t Done = 0;
  while (Done < Data.size()) {
    ssize_t N = ::write(Fd, Data.data() + Done, Data.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      ::unlink(Path.c_str());
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return ::close(Fd) == 0;
}

bool readWholeFile(const std::string &Path, std::vector<uint8_t> &Out) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return false;
  struct stat St;
  if (::fstat(Fd, &St) != 0 || !S_ISREG(St.st_mode)) {
    ::close(Fd);
    return false;
  }
  Out.resize(static_cast<size_t>(St.st_size));
  size_t Done = 0;
  while (Done < Out.size()) {
    ssize_t N = ::read(Fd, Out.data() + Done, Out.size() - Done);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0) {
      ::close(Fd);
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  ::close(Fd);
  return true;
}

/// Reads at most \p MaxN bytes from the front of \p Path (less if the file
/// is shorter) and reports the full file size. Enough to parse an entry
/// header without pulling a multi-gigabyte payload into memory.
bool readFilePrefix(const std::string &Path, size_t MaxN,
                    std::vector<uint8_t> &Out, uint64_t &FileSize) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return false;
  struct stat St;
  if (::fstat(Fd, &St) != 0 || !S_ISREG(St.st_mode)) {
    ::close(Fd);
    return false;
  }
  FileSize = static_cast<uint64_t>(St.st_size);
  Out.resize(static_cast<size_t>(std::min<uint64_t>(FileSize, MaxN)));
  size_t Done = 0;
  while (Done < Out.size()) {
    ssize_t N = ::read(Fd, Out.data() + Done, Out.size() - Done);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0) {
      ::close(Fd);
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  ::close(Fd);
  return true;
}

/// Parses one entry header (magic through payload checksum) from the
/// first \p N bytes of an entry file, filling \p Header (Type, Hash,
/// Label, PayloadSize) and \p Checksum. Returns the header's byte count;
/// the payload follows immediately. Throws SerializationError on any
/// inconsistency.
size_t decodeEntryHeader(const uint8_t *Data, size_t N,
                         ArtifactStore::Entry &Header, uint64_t &Checksum) {
  BinaryReader R(Data, N);
  if (R.u32() != EntryMagic)
    throw SerializationError("store entry: bad magic");
  uint32_t Schema = R.u32();
  if (Schema != StoreSchemaVersion)
    throw SerializationError("store entry: schema version " +
                             std::to_string(Schema) + " != " +
                             std::to_string(StoreSchemaVersion));
  uint8_t Type = R.u8();
  if (Type > static_cast<uint8_t>(ArtifactType::Hds))
    throw SerializationError("store entry: unknown artifact type");
  Header.Type = static_cast<ArtifactType>(Type);
  Header.Hash = R.u64();
  Header.Label = R.str();
  Header.PayloadSize = R.varint();
  Checksum = R.u64();
  return N - R.remaining();
}

/// Decodes one entry file into (header fields, payload). Throws
/// SerializationError on any inconsistency; callers translate that into
/// "absent" (get/contains) or a verify diagnostic (entries).
std::vector<uint8_t> decodeEntry(const std::vector<uint8_t> &Raw,
                                 ArtifactStore::Entry &Header) {
  uint64_t Checksum = 0;
  size_t HeaderBytes =
      decodeEntryHeader(Raw.data(), Raw.size(), Header, Checksum);
  if (Header.PayloadSize != Raw.size() - HeaderBytes)
    throw SerializationError("store entry: truncated payload");
  std::vector<uint8_t> Payload(Raw.begin() + static_cast<long>(HeaderBytes),
                               Raw.end());
  if (fnv1a(Payload.data(), Payload.size()) != Checksum)
    throw SerializationError("store entry: payload checksum mismatch");
  return Payload;
}

} // namespace

//===----------------------------------------------------------------------===//
// ArtifactStore
//===----------------------------------------------------------------------===//

ArtifactStore::ArtifactStore(std::string DirIn) : Dir(std::move(DirIn)) {
  if (Dir.empty())
    throw std::runtime_error("artifact store: empty directory path");
  while (Dir.size() > 1 && Dir.back() == '/')
    Dir.pop_back();
  if (::mkdir(Dir.c_str(), 0755) != 0 && errno != EEXIST)
    throw std::runtime_error("artifact store: cannot create '" + Dir +
                             "': " + std::strerror(errno));
  // Fail on a path that exists but is not a usable directory: a store
  // that drops every put would silently turn all warm runs cold.
  struct stat St;
  if (::stat(Dir.c_str(), &St) != 0 || !S_ISDIR(St.st_mode))
    throw std::runtime_error("artifact store: '" + Dir +
                             "' is not a directory");
  if (::access(Dir.c_str(), W_OK | X_OK) != 0)
    throw std::runtime_error("artifact store: '" + Dir + "' is not writable");
}

std::string ArtifactStore::pathFor(const StoreKey &Key) const {
  return Dir + "/" + entryFileName(Key);
}

bool ArtifactStore::put(const StoreKey &Key,
                        const std::vector<uint8_t> &Payload) {
  BinaryWriter W;
  W.u32(EntryMagic);
  W.u32(StoreSchemaVersion);
  W.u8(static_cast<uint8_t>(Key.Type));
  W.u64(Key.Hash);
  W.str(Key.Label);
  W.varint(Payload.size());
  W.u64(fnv1a(Payload.data(), Payload.size()));
  W.bytes(Payload.data(), Payload.size());

  // Unique temp path per writer, then one atomic rename: readers never see
  // a partial entry, and two writers racing one key both succeed with
  // identical content (every store value is a deterministic function of
  // its key).
  std::string Temp = Dir + "/tmp." + hashHex(Key.Hash) + "." +
                     std::to_string(::getpid()) + "." +
                     std::to_string(TempSerial.fetch_add(1));
  if (!writeWholeFile(Temp, W.buffer()))
    return false;
  if (::rename(Temp.c_str(), pathFor(Key).c_str()) != 0) {
    ::unlink(Temp.c_str());
    return false;
  }
  return true;
}

std::optional<std::vector<uint8_t>>
ArtifactStore::get(const StoreKey &Key) const {
  std::vector<uint8_t> Raw;
  if (!readWholeFile(pathFor(Key), Raw))
    return std::nullopt;
  try {
    Entry Header;
    std::vector<uint8_t> Payload = decodeEntry(Raw, Header);
    // The name already encodes hash and type; re-checking the header binds
    // the content to the key even if a file was renamed into place.
    if (Header.Hash != Key.Hash || Header.Type != Key.Type)
      return std::nullopt;
    return Payload;
  } catch (const SerializationError &) {
    return std::nullopt;
  }
}

bool ArtifactStore::contains(const StoreKey &Key) const {
  return get(Key).has_value();
}

std::vector<ArtifactStore::Entry> ArtifactStore::entries(bool Validate) const {
  std::vector<Entry> Result;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Result;
  while (struct dirent *Ent = ::readdir(D)) {
    std::string Name = Ent->d_name;
    if (Name == "." || Name == ".." ||
        Name.compare(0, 4, "tmp.") == 0)
      continue;
    Entry E;
    E.File = Name;
    try {
      if (Validate) {
        std::vector<uint8_t> Raw;
        if (!readWholeFile(Dir + "/" + Name, Raw))
          throw SerializationError("unreadable");
        decodeEntry(Raw, E);
      } else {
        // Listing mode: parse the header and check the payload extent
        // against the file size, but skip the whole-payload checksum pass
        // -- sizes stay reported even for entries gigabytes long.
        std::vector<uint8_t> Prefix;
        uint64_t FileSize = 0;
        if (!readFilePrefix(Dir + "/" + Name, 4096, Prefix, FileSize))
          throw SerializationError("unreadable");
        uint64_t Checksum = 0;
        size_t HeaderBytes =
            decodeEntryHeader(Prefix.data(), Prefix.size(), E, Checksum);
        if (HeaderBytes + E.PayloadSize != FileSize)
          throw SerializationError("store entry: truncated payload");
      }
      // The file name must agree with the header it carries.
      if (Name != hashHex(E.Hash) + "." + artifactTypeName(E.Type))
        E.Problem = "file name does not match entry key";
      else
        E.Valid = true;
    } catch (const SerializationError &Err) {
      E.Problem = Err.what();
    }
    Result.push_back(std::move(E));
  }
  ::closedir(D);
  std::sort(Result.begin(), Result.end(),
            [](const Entry &A, const Entry &B) { return A.File < B.File; });
  return Result;
}

size_t ArtifactStore::gc() {
  size_t Removed = 0;
  // Abandoned temp files first (a crashed writer's leftovers). gc assumes
  // no writer is concurrently publishing into this store.
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Removed;
  std::vector<std::string> Temps;
  while (struct dirent *Ent = ::readdir(D)) {
    std::string Name = Ent->d_name;
    if (Name.compare(0, 4, "tmp.") == 0)
      Temps.push_back(std::move(Name));
  }
  ::closedir(D);
  for (const std::string &Name : Temps)
    if (::unlink((Dir + "/" + Name).c_str()) == 0)
      ++Removed;
  for (const Entry &E : entries())
    if (!E.Valid && ::unlink((Dir + "/" + E.File).c_str()) == 0)
      ++Removed;
  return Removed;
}

//===----------------------------------------------------------------------===//
// Typed helpers
//===----------------------------------------------------------------------===//

bool halo::putTrace(ArtifactStore &Store, const StoreKey &Key,
                    const EventTrace &Trace) {
  BinaryWriter W;
  Trace.save(W);
  return Store.put(Key, W.buffer());
}

namespace {

bool writeAll(int Fd, const void *Data, size_t Size) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::write(Fd, P + Done, Size - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

/// Opens the trace entry file at \p Path as a zero-copy MappedTrace over
/// its payload region. \p Key, when given, must match the entry header.
std::optional<MappedTrace> openEntryTrace(const std::string &Path,
                                          const StoreKey *Key) {
  std::vector<uint8_t> Prefix;
  uint64_t FileSize = 0;
  if (!readFilePrefix(Path, 4096, Prefix, FileSize))
    return std::nullopt;
  try {
    ArtifactStore::Entry Header;
    uint64_t Checksum = 0;
    size_t HeaderBytes =
        decodeEntryHeader(Prefix.data(), Prefix.size(), Header, Checksum);
    if (Header.Type != ArtifactType::Trace)
      return std::nullopt;
    if (Key && (Header.Hash != Key->Hash || Header.Type != Key->Type))
      return std::nullopt;
    if (HeaderBytes + Header.PayloadSize != FileSize)
      return std::nullopt;
    // The entry-level payload checksum is deliberately not recomputed:
    // MappedTrace::open verifies the footer checksum and every per-block
    // checksum over the very same bytes, so a second whole-file pass here
    // would only duplicate that coverage.
    return MappedTrace::open(Path, HeaderBytes, Header.PayloadSize);
  } catch (const std::runtime_error &) {
    // SerializationError (corrupt) or I/O failure: absence either way.
    return std::nullopt;
  }
}

} // namespace

bool halo::putTraceFile(ArtifactStore &Store, const StoreKey &Key,
                        const std::string &Path) {
  int In = ::open(Path.c_str(), O_RDONLY);
  if (In < 0)
    return false;
  struct stat St;
  if (::fstat(In, &St) != 0 || !S_ISREG(St.st_mode)) {
    ::close(In);
    return false;
  }
  uint64_t PayloadSize = static_cast<uint64_t>(St.st_size);

  // Pass 1: stream the payload checksum. The file is the recorder's own
  // finished output, so its size is stable across the two passes.
  std::vector<uint8_t> Buf(1 << 20);
  uint64_t Checksum = 0xcbf29ce484222325ull; // FNV-1a offset basis.
  uint64_t Seen = 0;
  for (;;) {
    ssize_t N = ::read(In, Buf.data(), Buf.size());
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(In);
      return false;
    }
    if (N == 0)
      break;
    Checksum = fnv1a(Buf.data(), static_cast<size_t>(N), Checksum);
    Seen += static_cast<uint64_t>(N);
  }
  if (Seen != PayloadSize || ::lseek(In, 0, SEEK_SET) != 0) {
    ::close(In);
    return false;
  }

  BinaryWriter W;
  W.u32(EntryMagic);
  W.u32(StoreSchemaVersion);
  W.u8(static_cast<uint8_t>(Key.Type));
  W.u64(Key.Hash);
  W.str(Key.Label);
  W.varint(PayloadSize);
  W.u64(Checksum);

  std::string Temp = Store.dir() + "/tmp." + hashHex(Key.Hash) + "." +
                     std::to_string(::getpid()) + "." +
                     std::to_string(TempSerial.fetch_add(1));
  int Out = ::open(Temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Out < 0) {
    ::close(In);
    return false;
  }
  // Pass 2: header, then the payload bytes, never all in memory at once.
  bool Good = writeAll(Out, W.buffer().data(), W.buffer().size());
  while (Good) {
    ssize_t N = ::read(In, Buf.data(), Buf.size());
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Good = false;
      break;
    }
    if (N == 0)
      break;
    Good = writeAll(Out, Buf.data(), static_cast<size_t>(N));
  }
  ::close(In);
  if (::close(Out) != 0)
    Good = false;
  if (!Good) {
    ::unlink(Temp.c_str());
    return false;
  }
  std::string Final = Store.dir() + "/" + entryFileName(Key);
  if (::rename(Temp.c_str(), Final.c_str()) != 0) {
    ::unlink(Temp.c_str());
    return false;
  }
  return true;
}

std::optional<MappedTrace> halo::openMappedTrace(const ArtifactStore &Store,
                                                 const StoreKey &Key) {
  return openEntryTrace(Store.dir() + "/" + entryFileName(Key), &Key);
}

std::optional<MappedTrace> halo::openTraceEntryFile(const std::string &Path) {
  return openEntryTrace(Path, nullptr);
}

std::optional<EventTrace> halo::getTrace(const ArtifactStore &Store,
                                         const StoreKey &Key) {
  std::optional<std::vector<uint8_t>> Payload = Store.get(Key);
  if (!Payload)
    return std::nullopt;
  try {
    BinaryReader R(*Payload);
    EventTrace Trace = EventTrace::load(R);
    R.expectEnd("event trace");
    return Trace;
  } catch (const SerializationError &) {
    return std::nullopt;
  }
}

bool halo::putHaloArtifacts(ArtifactStore &Store, const StoreKey &Key,
                            const HaloArtifacts &Art) {
  BinaryWriter W;
  saveHaloArtifacts(Art, W);
  return Store.put(Key, W.buffer());
}

std::optional<HaloArtifacts> halo::getHaloArtifacts(const ArtifactStore &Store,
                                                    const StoreKey &Key,
                                                    const Program &Prog) {
  std::optional<std::vector<uint8_t>> Payload = Store.get(Key);
  if (!Payload)
    return std::nullopt;
  try {
    BinaryReader R(*Payload);
    HaloArtifacts Art = loadHaloArtifacts(R, Prog);
    R.expectEnd("halo artifacts");
    return Art;
  } catch (const SerializationError &) {
    return std::nullopt;
  }
}

bool halo::putHdsArtifacts(ArtifactStore &Store, const StoreKey &Key,
                           const HdsArtifacts &Art) {
  BinaryWriter W;
  saveHdsArtifacts(Art, W);
  return Store.put(Key, W.buffer());
}

std::optional<HdsArtifacts> halo::getHdsArtifacts(const ArtifactStore &Store,
                                                  const StoreKey &Key) {
  std::optional<std::vector<uint8_t>> Payload = Store.get(Key);
  if (!Payload)
    return std::nullopt;
  try {
    BinaryReader R(*Payload);
    HdsArtifacts Art = loadHdsArtifacts(R);
    R.expectEnd("hds artifacts");
    return Art;
  } catch (const SerializationError &) {
    return std::nullopt;
  }
}
