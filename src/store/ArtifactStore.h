//===- store/ArtifactStore.h - Content-addressed artifact store -*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed on-disk store for the expensive, machine-independent
/// halves of an experiment plan: recorded event traces and HALO/HDS
/// pipeline artifacts. The design follows Nix's libstore discipline:
///
///  * Entries are addressed by a stable content hash of their *inputs* --
///    (domain tag, schema version, benchmark, scale, seed, every
///    machine-independent pipeline option) -- never by mtime or file name
///    conventions. The machine config is deliberately absent: recordings
///    and artifacts are machine-independent (eval/Evaluation.h), so one
///    entry serves sweeps over every machine.
///  * Writes go to a temp file in the store directory and are published
///    with a single atomic rename(); readers never observe partial
///    entries, and concurrent writers racing one key both succeed (last
///    rename wins; the payloads are identical by construction).
///  * Entries are never mutated. Invalidation is a key change: bumping
///    StoreSchemaVersion (or any key component changing) produces a new
///    hash, and stale entries are simply never addressed again until
///    `halo_cli store gc` removes them.
///  * Every read validates the entry header and a payload checksum;
///    truncated or bit-flipped entries read as "absent" so callers fall
///    back to re-recording instead of crashing or silently replaying
///    garbage.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_STORE_ARTIFACTSTORE_H
#define HALO_STORE_ARTIFACTSTORE_H

#include "core/Pipeline.h"
#include "hds/HdsPipeline.h"
#include "trace/TraceFile.h"
#include "workloads/Workload.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace halo {

class EventTrace;

/// Version stamp of every serialized format and key encoding reaching the
/// store. Bump it whenever any save/load pair or key component changes
/// meaning: old entries then miss (their hashes differ) instead of
/// decoding under wrong assumptions.
///
/// v2: traces use the block-compressed on-disk format (trace/TraceFile.h).
constexpr uint32_t StoreSchemaVersion = 2;

/// What an entry holds; part of the key, so the same (benchmark, scale,
/// seed) coordinate never collides across domains.
enum class ArtifactType : uint8_t { Trace = 0, Halo = 1, Hds = 2 };

/// Stable spelling of \p Type ("trace" / "halo" / "hds"), used in file
/// names and `store ls` output.
const char *artifactTypeName(ArtifactType Type);

/// A fully resolved store address: the content hash of the canonical key
/// encoding plus a human-readable label for listings.
struct StoreKey {
  uint64_t Hash = 0;
  ArtifactType Type = ArtifactType::Trace;
  std::string Label;
};

/// Key of a recorded event trace: (trace tag, schema, benchmark, scale,
/// seed). \p Schema is a parameter (defaulting to the live version) so
/// tests can prove that a schema bump invalidates every entry.
StoreKey traceStoreKey(const std::string &Benchmark, Scale S, uint64_t Seed,
                       uint32_t Schema = StoreSchemaVersion);

/// Key of a HALO pipeline artifact bundle: (halo tag, schema, benchmark,
/// profile scale/seed, every HaloParameters field). Any tuning knob change
/// re-keys the entry.
StoreKey haloStoreKey(const std::string &Benchmark, Scale ProfileScale,
                      uint64_t ProfileSeed, const HaloParameters &Params,
                      uint32_t Schema = StoreSchemaVersion);

/// Key of an HDS pipeline artifact bundle (same shape, HdsParameters).
StoreKey hdsStoreKey(const std::string &Benchmark, Scale ProfileScale,
                     uint64_t ProfileSeed, const HdsParameters &Params,
                     uint32_t Schema = StoreSchemaVersion);

/// The on-disk store: one flat directory of immutable entries named by
/// their key hash. All operations are safe to call from concurrent
/// threads and processes sharing the directory: the store itself holds
/// no open descriptors or caches (only the directory path), every
/// publish is temp-file + atomic rename, and entries are content-keyed,
/// so a same-key republish writes identical bytes. A long-lived owner
/// -- the serve daemon keeps one store open for its whole lifetime,
/// serving every plan from it -- needs no refresh or reopen; and because
/// rename replaces the directory entry but not the inode, MappedTrace
/// mappings opened off an entry stay valid even across a concurrent
/// republish of the same key.
class ArtifactStore {
public:
  /// One entry as `store ls` / `store verify` see it.
  struct Entry {
    std::string File; ///< File name within the store directory.
    uint64_t Hash = 0;
    ArtifactType Type = ArtifactType::Trace;
    std::string Label;
    uint64_t PayloadSize = 0;
    bool Valid = false;
    std::string Problem; ///< Why Valid is false; empty otherwise.
  };

  /// Opens (creating if needed) the store at \p Dir. Throws
  /// std::runtime_error if the directory cannot be created or is not
  /// writable -- a store that silently drops every put would turn every
  /// warm run cold without anyone noticing.
  explicit ArtifactStore(std::string Dir);

  const std::string &dir() const { return Dir; }

  /// Publishes \p Payload under \p Key: temp file + atomic rename.
  /// Returns false (without throwing) if the write fails; the caller's
  /// result is already computed, so a failed publish only loses caching.
  bool put(const StoreKey &Key, const std::vector<uint8_t> &Payload);

  /// Reads and validates the entry for \p Key. Missing, truncated,
  /// corrupt, or mismatched entries all return nullopt -- the caller
  /// falls back to recomputing.
  std::optional<std::vector<uint8_t>> get(const StoreKey &Key) const;

  /// True if a fully valid entry for \p Key exists right now (reads and
  /// checksums it; plan building uses this to prune tasks).
  bool contains(const StoreKey &Key) const;

  /// Every entry file in the store, sorted by file name. With \p Validate
  /// the whole payload is read and checksummed (`store verify` / gc); without
  /// it only the header is parsed and PayloadSize comes from the header, so
  /// listing a store of multi-gigabyte traces stays cheap and `store ls`
  /// can always report per-entry sizes.
  std::vector<Entry> entries(bool Validate = true) const;

  /// Removes invalid entries and abandoned temp files; returns how many
  /// files were deleted. Valid entries are never touched.
  size_t gc();

private:
  std::string pathFor(const StoreKey &Key) const;

  std::string Dir;
};

//===----------------------------------------------------------------------===//
// Typed helpers: serialize/deserialize + store in one call.
//===----------------------------------------------------------------------===//

/// Publishes \p Trace under \p Key (Key.Type must be Trace).
bool putTrace(ArtifactStore &Store, const StoreKey &Key,
              const EventTrace &Trace);

/// Loads and decodes a trace; nullopt on miss or any decode failure.
std::optional<EventTrace> getTrace(const ArtifactStore &Store,
                                   const StoreKey &Key);

/// Publishes the trace file at \p Path (written by a streaming
/// TraceFileWriter) under \p Key without ever materialising the payload in
/// memory: one streaming pass computes the entry checksum, a second copies
/// the bytes behind the entry header into a temp file, then the usual
/// atomic rename. Returns false on any I/O failure.
bool putTraceFile(ArtifactStore &Store, const StoreKey &Key,
                  const std::string &Path);

/// Opens the trace entry for \p Key as a zero-copy MappedTrace over the
/// entry file's payload region. The entry header is validated but the
/// entry-level payload checksum is *not* recomputed -- in the v2 trace
/// format every payload byte is already covered by a per-block or footer
/// checksum that MappedTrace::open verifies, so a second whole-file pass
/// would only repeat that work. Missing, corrupt, or mismatched entries
/// return nullopt (corruption is absence, as everywhere in the store).
std::optional<MappedTrace> openMappedTrace(const ArtifactStore &Store,
                                           const StoreKey &Key);

/// Same, by entry file path instead of key: lets `halo_cli trace info`
/// inspect a trace entry inside a store directory without knowing how its
/// key was derived. The file must be a valid trace-type entry.
std::optional<MappedTrace> openTraceEntryFile(const std::string &Path);

/// Publishes \p Art under \p Key (Key.Type must be Halo).
bool putHaloArtifacts(ArtifactStore &Store, const StoreKey &Key,
                      const HaloArtifacts &Art);

/// Loads and decodes a HALO bundle, rebuilding the derived members
/// against \p Prog; nullopt on miss or any decode failure.
std::optional<HaloArtifacts> getHaloArtifacts(const ArtifactStore &Store,
                                              const StoreKey &Key,
                                              const Program &Prog);

/// Publishes \p Art under \p Key (Key.Type must be Hds).
bool putHdsArtifacts(ArtifactStore &Store, const StoreKey &Key,
                     const HdsArtifacts &Art);

/// Loads and decodes an HDS bundle; nullopt on miss or any decode failure.
std::optional<HdsArtifacts> getHdsArtifacts(const ArtifactStore &Store,
                                            const StoreKey &Key);

} // namespace halo

#endif // HALO_STORE_ARTIFACTSTORE_H
