//===- prog/Program.h - Synthetic binary model ------------------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An explicit model of the target "binary": its functions and call sites.
/// This stands in for the x86-64 executables the paper instruments with Pin
/// and rewrites with BOLT. Functions are flagged as part of the main binary
/// or external (library code); external functions can additionally be
/// *traceable* (the paper's "handful of externally traceable routines like
/// malloc or free"). The shadow stack (trace/ShadowStack.h) consumes these
/// flags to decide which frames to record, and the BOLT-style rewriter
/// (prog/Instrumentation.h) targets call sites in the main binary.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_PROG_PROGRAM_H
#define HALO_PROG_PROGRAM_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace halo {

using FunctionId = uint32_t;
using CallSiteId = uint32_t;
inline constexpr uint32_t InvalidId = ~0u;

/// One function of the modelled binary.
struct FunctionInfo {
  std::string Name;
  bool IsExternal = false;  ///< Lives outside the main binary.
  bool IsTraceable = false; ///< External but traceable (malloc family).
};

/// One static call site: an instruction in \c Caller that calls \c Callee.
struct CallSiteInfo {
  std::string Label;
  FunctionId Caller = InvalidId;
  FunctionId Callee = InvalidId;
};

/// The modelled target binary.
class Program {
public:
  Program();

  /// Adds a function. \p IsTraceable may only be set for external functions.
  FunctionId addFunction(std::string Name, bool IsExternal = false,
                         bool IsTraceable = false);

  /// Adds a call site in \p Caller invoking \p Callee.
  CallSiteId addCallSite(FunctionId Caller, FunctionId Callee,
                         std::string Label);

  /// Convenience: adds a call site invoking the built-in malloc function;
  /// workloads create one of these per distinct allocation location.
  CallSiteId addMallocSite(FunctionId Caller, std::string Label);

  const FunctionInfo &function(FunctionId Id) const {
    assert(Id < Functions.size() && "bad function id");
    return Functions[Id];
  }
  const CallSiteInfo &callSite(CallSiteId Id) const {
    assert(Id < CallSites.size() && "bad call site id");
    return CallSites[Id];
  }

  uint32_t numFunctions() const { return Functions.size(); }
  uint32_t numCallSites() const { return CallSites.size(); }

  /// The built-in external, traceable allocation routine every malloc call
  /// site targets.
  FunctionId mallocFunction() const { return MallocFunction; }

  /// True if \p Site calls the built-in malloc function.
  bool isMallocSite(CallSiteId Site) const {
    return callSite(Site).Callee == MallocFunction;
  }

private:
  std::vector<FunctionInfo> Functions;
  std::vector<CallSiteInfo> CallSites;
  FunctionId MallocFunction;
};

} // namespace halo

#endif // HALO_PROG_PROGRAM_H
