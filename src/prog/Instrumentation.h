//===- prog/Instrumentation.h - BOLT-style rewriting pass ------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The post-link rewriting step of Section 4.3. The paper implements a
/// custom BOLT pass that inserts set/unset instructions around every call
/// site of interest; here the "rewritten binary" is an InstrumentationPlan
/// mapping each selected call site to its bit in the group state vector.
/// The runtime consults the plan on every call/return, performing exactly
/// the state updates the inserted instructions would.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_PROG_INSTRUMENTATION_H
#define HALO_PROG_INSTRUMENTATION_H

#include "prog/Program.h"

#include <cstdint>
#include <vector>

namespace halo {

/// Maps instrumented call sites to group-state bits.
class InstrumentationPlan {
public:
  InstrumentationPlan() = default;

  /// Builds a plan over \p Prog instrumenting exactly \p Sites, assigning
  /// bits in the order given. Duplicate sites share a bit. This is the
  /// moral equivalent of running the custom BOLT heap-layout pass.
  InstrumentationPlan(const Program &Prog,
                      const std::vector<CallSiteId> &Sites);

  /// Returns the bit index for \p Site, or -1 if it is not instrumented.
  int32_t bitFor(CallSiteId Site) const {
    if (Site >= BitBySite.size())
      return -1;
    return BitBySite[Site];
  }

  uint32_t numBits() const { return NumBits; }
  uint32_t numInstrumentedSites() const { return NumSites; }

  /// The instrumented sites in bit order (for reports and tests).
  const std::vector<CallSiteId> &sites() const { return Sites; }

private:
  std::vector<int32_t> BitBySite; ///< site -> bit or -1.
  std::vector<CallSiteId> Sites;
  uint32_t NumBits = 0;
  uint32_t NumSites = 0;
};

} // namespace halo

#endif // HALO_PROG_INSTRUMENTATION_H
