//===- prog/GroupStateVector.cpp - Shared identification bits --------------===//

#include "prog/GroupStateVector.h"

// Header-only today; this file anchors the library.
