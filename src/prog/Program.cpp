//===- prog/Program.cpp - Synthetic binary model ---------------------------===//

#include "prog/Program.h"

using namespace halo;

Program::Program() {
  MallocFunction = addFunction("malloc", /*IsExternal=*/true,
                               /*IsTraceable=*/true);
}

FunctionId Program::addFunction(std::string Name, bool IsExternal,
                                bool IsTraceable) {
  assert((!IsTraceable || IsExternal) &&
         "only external functions can be traceable");
  Functions.push_back(FunctionInfo{std::move(Name), IsExternal, IsTraceable});
  return static_cast<FunctionId>(Functions.size() - 1);
}

CallSiteId Program::addCallSite(FunctionId Caller, FunctionId Callee,
                                std::string Label) {
  assert(Caller < Functions.size() && "bad caller");
  assert(Callee < Functions.size() && "bad callee");
  CallSites.push_back(CallSiteInfo{std::move(Label), Caller, Callee});
  return static_cast<CallSiteId>(CallSites.size() - 1);
}

CallSiteId Program::addMallocSite(FunctionId Caller, std::string Label) {
  return addCallSite(Caller, MallocFunction, std::move(Label));
}
