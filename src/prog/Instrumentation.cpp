//===- prog/Instrumentation.cpp - BOLT-style rewriting pass ----------------===//

#include "prog/Instrumentation.h"

using namespace halo;

InstrumentationPlan::InstrumentationPlan(const Program &Prog,
                                         const std::vector<CallSiteId> &Sites) {
  BitBySite.assign(Prog.numCallSites(), -1);
  for (CallSiteId Site : Sites) {
    assert(Site < Prog.numCallSites() && "instrumenting unknown call site");
    if (BitBySite[Site] != -1)
      continue;
    BitBySite[Site] = static_cast<int32_t>(NumBits++);
    this->Sites.push_back(Site);
    ++NumSites;
  }
}
