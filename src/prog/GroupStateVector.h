//===- prog/GroupStateVector.h - Shared identification bits -----*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared "group state" bit vector of Section 4.3: the BOLT pass inserts
/// instructions around every call site of interest that set and then unset a
/// single bit, indicating whether the flow of control is currently beneath
/// that site. The specialised allocator matches group selectors against
/// these bits on every allocation.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_PROG_GROUPSTATEVECTOR_H
#define HALO_PROG_GROUPSTATEVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace halo {

/// A plain bit vector with mask matching. Set/unset are deliberately naive
/// (no nesting counters): the inserted code is a straight-line bit set before
/// the call and a bit clear after it, so recursive calls through one site
/// clear the bit on the innermost return -- faithfully reproducing the
/// prototype's behaviour.
class GroupStateVector {
public:
  GroupStateVector() = default;
  explicit GroupStateVector(uint32_t Bits) { resize(Bits); }

  void resize(uint32_t Bits) {
    NumBits = Bits;
    Words.assign((Bits + 63) / 64, 0);
  }

  uint32_t numBits() const { return NumBits; }

  void set(uint32_t Bit) {
    assert(Bit < NumBits && "bit out of range");
    Words[Bit / 64] |= uint64_t(1) << (Bit % 64);
  }

  void unset(uint32_t Bit) {
    assert(Bit < NumBits && "bit out of range");
    Words[Bit / 64] &= ~(uint64_t(1) << (Bit % 64));
  }

  bool test(uint32_t Bit) const {
    assert(Bit < NumBits && "bit out of range");
    return (Words[Bit / 64] >> (Bit % 64)) & 1;
  }

  /// True if every bit of \p Mask is set here. \p Mask must have been built
  /// against the same bit width (shorter masks are allowed and treated as
  /// zero-extended).
  bool containsAll(const std::vector<uint64_t> &Mask) const {
    assert(Mask.size() <= Words.size() && "mask wider than state");
    for (std::size_t I = 0; I < Mask.size(); ++I)
      if ((Words[I] & Mask[I]) != Mask[I])
        return false;
    return true;
  }

  void clear() { Words.assign(Words.size(), 0); }

  const std::vector<uint64_t> &words() const { return Words; }

private:
  uint32_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace halo

#endif // HALO_PROG_GROUPSTATEVECTOR_H
