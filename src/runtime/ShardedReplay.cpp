//===- runtime/ShardedReplay.cpp - Within-trace parallel replay ------------===//

#include "runtime/ShardedReplay.h"

#include "runtime/Runtime.h"
#include "support/Executor.h"
#include "trace/EventTrace.h"
#include "trace/TraceFile.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

using namespace halo;

const char *halo::replayModeName(ReplayMode Mode) {
  switch (Mode) {
  case ReplayMode::Auto:
    return "auto";
  case ReplayMode::Serial:
    return "serial";
  case ReplayMode::Sharded:
    return "sharded";
  }
  return "auto";
}

bool halo::parseReplayMode(const std::string &Text, ReplayMode &Out) {
  if (Text == "auto")
    Out = ReplayMode::Auto;
  else if (Text == "serial")
    Out = ReplayMode::Serial;
  else if (Text == "sharded")
    Out = ReplayMode::Sharded;
  else
    return false;
  return true;
}

namespace {

/// Prepass observer: captures what the shard phase cannot re-derive
/// locally -- the address every minted object got from *this* run's
/// allocator (in mint order, so shard decoding indexes it by object id)
/// and each composite realloc's copy length, which depends on the serving
/// allocator's usableSize() of the old block *before* the internal
/// allocation replaces it (onReallocBegin fires exactly there).
class PrepassCapture final : public RuntimeObserver {
public:
  explicit PrepassCapture(Allocator &Alloc) : Alloc(&Alloc) {}

  void onAlloc(uint64_t Addr, uint64_t, CallSiteId) override {
    ObjAddr.push_back(Addr);
  }
  void onReallocBegin(uint64_t OldAddr, uint64_t NewSize,
                      CallSiteId) override {
    CopyBytes.push_back(std::min(Alloc->usableSize(OldAddr), NewSize));
  }

  std::vector<uint64_t> ObjAddr;   ///< By object id (mint order).
  std::vector<uint64_t> CopyBytes; ///< By realloc record ordinal.

private:
  Allocator *Alloc;
};

/// One shard: a record-aligned byte range of the trace plus the decode
/// state at its start (next object id to mint, next realloc ordinal).
struct ShardDesc {
  uint64_t Begin = 0;
  uint64_t End = 0;
  uint32_t FirstObject = 0;
  uint64_t FirstRealloc = 0;
};

/// Cuts the trace into up to \p Shards record-aligned byte ranges of
/// roughly equal size. Traces with fewer records than shards simply yield
/// fewer shards (never an empty range). One linear tag-and-skip scan; no
/// operand values are decoded except implicitly through the varint
/// continuation bit.
std::vector<ShardDesc> planShards(const EventTrace &Trace, size_t Shards) {
  const uint8_t *Data = Trace.data();
  const uint64_t Total = Trace.byteSize();
  std::vector<ShardDesc> Plan;
  ShardDesc Cur;
  uint64_t Pos = 0;
  uint32_t Minted = 0;
  uint64_t Reallocs = 0;
  size_t CutIdx = 1;
  while (Pos < Total) {
    if (Pos > Cur.Begin && CutIdx < Shards && Pos >= Total * CutIdx / Shards) {
      Cur.End = Pos;
      Plan.push_back(Cur);
      Cur = ShardDesc{Pos, 0, Minted, Reallocs};
      while (CutIdx < Shards && Total * CutIdx / Shards <= Pos)
        ++CutIdx;
    }
    TraceOp Op = static_cast<TraceOp>(Data[Pos++]);
    if (Op == TraceOp::Alloc || Op == TraceOp::Realloc)
      ++Minted;
    if (Op == TraceOp::Realloc)
      ++Reallocs;
    for (size_t N = traceOperandCount(Op); N; --N) {
      while (Data[Pos] & 0x80)
        ++Pos;
      ++Pos;
    }
  }
  Cur.End = Total;
  Plan.push_back(Cur);
  return Plan;
}

/// A first-touch miss the shard could not judge alone: fewer than Ways
/// distinct tags preceded it in its set, so the incoming recency state
/// decides whether the serial replay would have hit.
struct Residual {
  uint32_t Set;
  uint32_t Rank;      ///< Distinct tags touched in the set before it.
  uint64_t Tag;
  uint64_t MissIndex; ///< Index into the shard's miss-line list (L1 only).
};

/// Private per-shard simulation of one true-LRU level (the L1 or the
/// TLB). A set's state is its move-to-front list of line tags truncated
/// at Ways -- exactly the content and replacement order of Cache's
/// unique-clock LRU -- so hit/miss verdicts match Cache::access bit for
/// bit on every line whose tag was already touched in the shard. Set
/// index and tag use the plain remainder/quotient, which Cache::locate's
/// shift and reciprocal-multiply paths are both exact forms of.
class ShardLevelSim {
public:
  ShardLevelSim(uint32_t NumSets, uint32_t NumWays, uint32_t Shift)
      : Sets(NumSets), Ways(NumWays), LineShift(Shift),
        Tags(uint64_t(NumSets) * NumWays, 0), Count(NumSets, 0),
        Distinct(NumSets, 0) {}

  struct Outcome {
    bool Hit;
    bool IsResidual;
    uint32_t Set;
    uint32_t Rank;
    uint64_t Tag;
  };

  Outcome access(uint64_t LineAddr) {
    uint64_t Line = LineAddr >> LineShift;
    uint32_t Set = static_cast<uint32_t>(Line % Sets);
    uint64_t Tag = Line / Sets;
    uint64_t *List = &Tags[uint64_t(Set) * Ways];
    uint32_t N = Count[Set];
    for (uint32_t I = 0; I < N; ++I) {
      if (List[I] == Tag) { // Re-touch: exact verdict, move to front.
        for (uint32_t J = I; J > 0; --J)
          List[J] = List[J - 1];
        List[0] = Tag;
        ++Hits;
        return {true, false, Set, 0, Tag};
      }
    }
    ++Misses;
    // While fewer than Ways distinct tags have been touched, nothing has
    // been evicted, so an absent tag is a genuine first touch and its
    // serial verdict depends on the incoming state: a residual. Once the
    // distinct count reaches Ways, any absent tag -- first touch or
    // re-touch after eviction -- is a definite miss in the serial replay
    // too (at least Ways distinct tags intervened).
    bool IsResidual = Distinct[Set] < Ways;
    uint32_t Rank = Distinct[Set];
    ++Distinct[Set];
    uint32_t NewN = N < Ways ? N + 1 : Ways;
    for (uint32_t J = NewN - 1; J > 0; --J)
      List[J] = List[J - 1];
    List[0] = Tag;
    Count[Set] = NewN;
    return {false, IsResidual, Set, Rank, Tag};
  }

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint32_t numSets() const { return Sets; }

  /// Final recency content of \p Set, most-recent-first (the shard's
  /// export for the stitch's state merge).
  const uint64_t *exportList(uint32_t Set) const {
    return &Tags[uint64_t(Set) * Ways];
  }
  uint32_t exportCount(uint32_t Set) const { return Count[Set]; }

private:
  uint32_t Sets, Ways, LineShift;
  std::vector<uint64_t> Tags;     ///< Sets * Ways, move-to-front per set.
  std::vector<uint32_t> Count;    ///< Live entries per set.
  std::vector<uint32_t> Distinct; ///< Distinct tags touched per set.
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Everything one shard hands to the stitch.
struct ShardResult {
  ShardResult(uint32_t L1Sets, uint32_t L1Ways, uint32_t L1Shift,
              uint32_t TlbSets, uint32_t TlbWays, uint32_t TlbShift)
      : L1(L1Sets, L1Ways, L1Shift), Dtlb(TlbSets, TlbWays, TlbShift) {}

  ShardLevelSim L1, Dtlb;
  std::vector<uint64_t> MissLines; ///< L1 miss lines in shard order.
  std::vector<Residual> L1Residuals;
  std::vector<Residual> TlbResiduals;
};

/// Re-judges a shard's residuals of one level against the merged incoming
/// recency state and returns how many flip from miss to hit. A residual
/// of rank i (tag T, set s) was, at its moment in the serial replay,
/// preceded in its set by the i distinct shard tags touched before it and
/// then by the incoming tags not among them -- so T was resident exactly
/// when i plus the incoming tags ahead of T that the shard had not
/// re-touched leaves T within the first Ways positions. Earlier residuals
/// of the set are exactly those i shard tags (every first touch below
/// rank Ways is recorded as a residual), so the walk only needs each
/// set's already-seen residual tags. \p Dead, when given, marks flipped
/// misses' lines so the stitch does not send them to the L2.
uint64_t judgeResiduals(const std::vector<Residual> &Residuals,
                        const std::vector<std::vector<uint64_t>> &State,
                        uint32_t Ways, std::vector<char> *Dead) {
  uint64_t Flips = 0;
  std::vector<std::vector<uint64_t>> Prior(State.size());
  for (const Residual &R : Residuals) {
    const std::vector<uint64_t> &In = State[R.Set];
    std::vector<uint64_t> &P = Prior[R.Set];
    size_t Pos = In.size();
    for (size_t I = 0; I < In.size(); ++I)
      if (In[I] == R.Tag) {
        Pos = I;
        break;
      }
    if (Pos != In.size()) {
      uint64_t Extra = 0;
      for (size_t I = 0; I < Pos; ++I)
        if (std::find(P.begin(), P.end(), In[I]) == P.end())
          ++Extra;
      if (R.Rank + Extra < Ways) {
        ++Flips;
        if (Dead)
          (*Dead)[R.MissIndex] = 1;
      }
    }
    P.push_back(R.Tag);
  }
  return Flips;
}

/// Folds a finished shard's recency exports into the carried state:
/// shard-touched tags first (in their export order), then the surviving
/// incoming tags, truncated at Ways. Exact: an export shorter than Ways
/// means the set never evicted, so it lists *every* tag the shard
/// touched and the survivors are precisely the incoming tags not among
/// them; a full export fills all Ways positions by itself.
void mergeState(std::vector<std::vector<uint64_t>> &State,
                const ShardLevelSim &Sim, uint32_t Ways) {
  for (uint32_t S = 0; S < Sim.numSets(); ++S) {
    uint32_t N = Sim.exportCount(S);
    if (N == 0) // Untouched set: incoming state stands.
      continue;
    const uint64_t *Exp = Sim.exportList(S);
    std::vector<uint64_t> Out(Exp, Exp + N);
    for (uint64_t X : State[S]) {
      if (Out.size() >= Ways)
        break;
      if (std::find(Exp, Exp + N, X) == Exp + N)
        Out.push_back(X);
    }
    State[S] = std::move(Out);
  }
}

uint32_t log2Exact(uint32_t PowerOfTwo) {
  uint32_t Shift = 0;
  while ((1u << Shift) < PowerOfTwo)
    ++Shift;
  return Shift;
}

/// The geometry the shard phase and stitch share, pulled once from the
/// attached hierarchy.
struct ShardGeometry {
  uint64_t LineSize, LineMask;
  uint32_t L1Sets, L1Ways, L1Shift;
  uint32_t TlbSets, TlbWays, TlbShift;

  explicit ShardGeometry(MemoryHierarchy &Mem) {
    const HierarchyConfig &HC = Mem.config();
    const CacheConfig &TlbGeom = Mem.tlb().config();
    LineSize = HC.L1.LineSize;
    LineMask = LineSize - 1;
    L1Sets = Mem.l1().numSets();
    L1Ways = HC.L1.Ways;
    L1Shift = log2Exact(HC.L1.LineSize);
    TlbSets = Mem.tlb().numSets();
    TlbWays = TlbGeom.Ways;
    TlbShift = log2Exact(TlbGeom.LineSize);
  }
};

/// One shard task's decode loop over a record-aligned range: resolves
/// accesses through the captured address table and simulates the L1 and
/// TLB on the shard's private state. \p Mint and \p ReallocOrd carry the
/// decode state across calls -- a mapped shard feeds its blocks through
/// one after another. Line expansion mirrors MemoryHierarchy::access;
/// realloc copy traffic mirrors Runtime::realloc's 64-byte strides.
void simulateShardRange(EventTrace::Reader Rd, uint32_t &Mint,
                        uint64_t &ReallocOrd,
                        const std::vector<uint64_t> &ObjAddr,
                        const std::vector<uint64_t> &CopyBytes,
                        const ShardGeometry &G, ShardResult &R) {
  auto AccessLine = [&](uint64_t LineAddr) {
    ShardLevelSim::Outcome T = R.Dtlb.access(LineAddr);
    if (T.IsResidual)
      R.TlbResiduals.push_back(Residual{T.Set, T.Rank, T.Tag, 0});
    ShardLevelSim::Outcome L = R.L1.access(LineAddr);
    if (!L.Hit) {
      if (L.IsResidual)
        R.L1Residuals.push_back(
            Residual{L.Set, L.Rank, L.Tag, R.MissLines.size()});
      R.MissLines.push_back(LineAddr);
    }
  };
  auto AccessSpan = [&](uint64_t Addr, uint64_t Size) {
    uint64_t First = Addr & ~G.LineMask;
    uint64_t Last = (Addr + (Size ? Size : 1) - 1) & ~G.LineMask;
    for (uint64_t Line = First;; Line += G.LineSize) {
      AccessLine(Line);
      if (Line == Last)
        break;
    }
  };

  while (!Rd.atEnd()) {
    switch (Rd.op()) {
    case TraceOp::Call:
    case TraceOp::Free:
    case TraceOp::Compute:
      Rd.varint();
      break;
    case TraceOp::Return:
      break;
    case TraceOp::Alloc:
      Rd.varint();
      Rd.varint();
      ++Mint;
      break;
    case TraceOp::Load:
    case TraceOp::Store: {
      uint64_t Id = Rd.varint();
      uint64_t Offset = Rd.varint();
      AccessSpan(ObjAddr[Id] + Offset, Rd.varint());
      break;
    }
    case TraceOp::LoadBase:
    case TraceOp::StoreBase: {
      uint64_t Id = Rd.varint();
      AccessSpan(ObjAddr[Id], Rd.varint());
      break;
    }
    case TraceOp::LoadRaw:
    case TraceOp::StoreRaw: {
      uint64_t Addr = Rd.varint();
      AccessSpan(Addr, Rd.varint());
      break;
    }
    case TraceOp::Realloc: {
      uint64_t Old = Rd.varint();
      Rd.varint(); // Site: allocation itself happened in the prepass.
      Rd.varint(); // New size: the captured copy length already caps it.
      uint64_t OldAddr = ObjAddr[Old];
      uint64_t NewAddr = ObjAddr[Mint++];
      uint64_t Copy = CopyBytes[ReallocOrd++];
      for (uint64_t Off = 0; Off < Copy; Off += 64) {
        uint64_t Span = std::min<uint64_t>(64, Copy - Off);
        AccessSpan(OldAddr + Off, Span);
        AccessSpan(NewAddr + Off, Span);
      }
      break;
    }
    }
  }
}

/// The serial stitch in trace order (step 3 of the decomposition): judge
/// residuals against the carried recency state, drive the surviving L1
/// misses through the real L2/L3 (their content and counters then evolve
/// exactly as under a serial replay), merge each shard's recency exports,
/// and credit the totals to the hierarchy and the timing model.
void stitchShards(Runtime &RT, MemoryHierarchy *Mem,
                  std::vector<ShardResult> &Results, const ShardGeometry &G) {
  std::vector<std::vector<uint64_t>> L1State(G.L1Sets), TlbState(G.TlbSets);
  uint64_t L1Hits = 0, L1Misses = 0, TlbHits = 0, TlbMisses = 0;
  uint64_t BeyondCycles = 0;
  for (ShardResult &R : Results) {
    std::vector<char> Dead(R.MissLines.size(), 0);
    uint64_t L1Flips =
        judgeResiduals(R.L1Residuals, L1State, G.L1Ways, &Dead);
    uint64_t TlbFlips =
        judgeResiduals(R.TlbResiduals, TlbState, G.TlbWays, nullptr);
    L1Hits += R.L1.hits() + L1Flips;
    L1Misses += R.L1.misses() - L1Flips;
    TlbHits += R.Dtlb.hits() + TlbFlips;
    TlbMisses += R.Dtlb.misses() - TlbFlips;
    for (size_t I = 0; I < R.MissLines.size(); ++I)
      if (!Dead[I])
        BeyondCycles += Mem->accessBeyondL1(R.MissLines[I]);
    mergeState(L1State, R.L1, G.L1Ways);
    mergeState(TlbState, R.Dtlb, G.TlbWays);
  }

  assert(L1Hits + L1Misses == TlbHits + TlbMisses &&
         "every line costs one TLB and one L1 lookup");

  // Serial cost decomposition, regrouped: each line pays its TLB-miss
  // penalty plus exactly one of the level latencies, so the stall total
  // (and the one timing credit replay would have accumulated) is a sum of
  // the final counts.
  const LatencyModel &Lat = Mem->config().Latency;
  uint64_t Total = uint64_t(Lat.L1Hit) * L1Hits +
                   uint64_t(Lat.TlbMiss) * TlbMisses + BeyondCycles;
  Mem->creditL1(L1Hits, L1Misses);
  Mem->creditTlb(TlbHits, TlbMisses);
  Mem->addStallCycles(Total);
  RT.timing().addMemory(Total);
}

/// True when the sharded decomposition's prerequisites hold (see the
/// header comment); otherwise the caller must replay serially.
bool canShard(Runtime &RT, size_t Shards, bool Empty) {
  MemoryHierarchy *Mem = RT.memory();
  // The stitch's incoming state starts cold, so a hierarchy that has
  // already served accesses (and may hold content) must take the serial
  // path; measurements always attach a fresh one.
  bool ColdHierarchy = Mem && Mem->l1().accesses() == 0 &&
                       Mem->tlb().hits() + Mem->tlb().misses() == 0;
  return Mem && ColdHierarchy && !RT.hasObservers() && Shards > 1 && !Empty;
}

} // namespace

void halo::shardedReplay(Runtime &RT, const EventTrace &Trace, Executor &Pool,
                         size_t NumShards) {
  MemoryHierarchy *Mem = RT.memory();
  size_t Shards = NumShards ? NumShards : Pool.workers();
  if (!canShard(RT, Shards, Trace.empty())) {
    RT.replay(Trace);
    return;
  }

  std::vector<ShardDesc> Plan = planShards(Trace, Shards);
  if (Plan.size() <= 1) {
    RT.replay(Trace);
    return;
  }

  // Serial prepass: the whole replay minus the memory simulation. Stats,
  // allocator state, instrumentation, group state, and compute cycles
  // evolve exactly as a serial replay's would (Runtime guards every
  // hierarchy touch behind the Memory pointer), and the capture observer
  // records the address table and realloc copy lengths the shards need.
  PrepassCapture Capture(RT.allocator());
  Capture.ObjAddr.reserve(Trace.numObjects());
  RT.setMemory(nullptr);
  RT.addObserver(&Capture);
  RT.replay(Trace);
  RT.removeObserver(&Capture);
  RT.setMemory(Mem);

  ShardGeometry G(*Mem);
  std::vector<ShardResult> Results;
  Results.reserve(Plan.size());
  for (size_t S = 0; S < Plan.size(); ++S)
    Results.emplace_back(G.L1Sets, G.L1Ways, G.L1Shift, G.TlbSets, G.TlbWays,
                         G.TlbShift);

  // Shard phase: each task decodes its byte range on private state.
  Pool.parallelFor(Plan.size(), [&](size_t S) {
    const ShardDesc &D = Plan[S];
    uint32_t Mint = D.FirstObject;
    uint64_t ReallocOrd = D.FirstRealloc;
    simulateShardRange(Trace.reader(D.Begin, D.End), Mint, ReallocOrd,
                       Capture.ObjAddr, Capture.CopyBytes, G, Results[S]);
  });

  stitchShards(RT, Mem, Results, G);
}

void halo::shardedReplay(Runtime &RT, const MappedTrace &Trace,
                         Executor &Pool, size_t NumShards) {
  MemoryHierarchy *Mem = RT.memory();
  size_t Shards = NumShards ? NumShards : Pool.workers();
  // Serial fallbacks stream block by block too (Runtime's mapped replay).
  if (!canShard(RT, Shards, Trace.empty()) || Trace.numBlocks() < 2) {
    RT.replay(Trace);
    return;
  }

  // Shards are runs of whole blocks balanced by decoded size; the block
  // index already carries each block's starting object id and realloc
  // ordinal, so no scan over earlier blocks is needed (the whole point
  // of cutting at block boundaries).
  struct BlockRange {
    size_t Begin, End;
  };
  std::vector<BlockRange> Plan;
  const size_t NumBlocks = Trace.numBlocks();
  const uint64_t TotalRaw = Trace.rawBytes();
  size_t RangeBegin = 0, CutIdx = 1;
  uint64_t Pos = 0;
  for (size_t B = 0; B < NumBlocks; ++B) {
    Pos += Trace.block(B).RawBytes;
    if (B + 1 < NumBlocks && CutIdx < Shards &&
        Pos >= TotalRaw * CutIdx / Shards) {
      Plan.push_back(BlockRange{RangeBegin, B + 1});
      RangeBegin = B + 1;
      while (CutIdx < Shards && TotalRaw * CutIdx / Shards <= Pos)
        ++CutIdx;
    }
  }
  Plan.push_back(BlockRange{RangeBegin, NumBlocks});
  if (Plan.size() <= 1) {
    RT.replay(Trace);
    return;
  }

  // Serial prepass, streaming: same decomposition as the in-RAM driver,
  // with the hierarchy detached and block-bounded residency.
  PrepassCapture Capture(RT.allocator());
  Capture.ObjAddr.reserve(Trace.numObjects());
  RT.setMemory(nullptr);
  RT.addObserver(&Capture);
  RT.replay(Trace);
  RT.removeObserver(&Capture);
  RT.setMemory(Mem);

  ShardGeometry G(*Mem);
  std::vector<ShardResult> Results;
  Results.reserve(Plan.size());
  for (size_t S = 0; S < Plan.size(); ++S)
    Results.emplace_back(G.L1Sets, G.L1Ways, G.L1Shift, G.TlbSets, G.TlbWays,
                         G.TlbShift);

  // Shard phase: each task decompresses only its own blocks, one at a
  // time, into a private scratch -- per-worker memory stays bounded by a
  // block regardless of trace size.
  Pool.parallelFor(Plan.size(), [&](size_t S) {
    const BlockRange &D = Plan[S];
    const TraceBlockInfo &First = Trace.block(D.Begin);
    uint32_t Mint = static_cast<uint32_t>(First.FirstObject);
    uint64_t ReallocOrd = First.FirstRealloc;
    std::vector<uint8_t> Scratch;
    for (size_t B = D.Begin; B < D.End; ++B) {
      Trace.decodeBlock(B, Scratch);
      simulateShardRange(
          EventTrace::Reader(Scratch.data(), Scratch.data() + Scratch.size()),
          Mint, ReallocOrd, Capture.ObjAddr, Capture.CopyBytes, G,
          Results[S]);
      Trace.releaseBlock(B);
    }
  });

  stitchShards(RT, Mem, Results, G);
}
