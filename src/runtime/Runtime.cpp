//===- runtime/Runtime.cpp - Instrumented execution environment ------------===//

#include "runtime/Runtime.h"

#include "trace/EventTrace.h"
#include "trace/TraceFile.h"

#include <algorithm>
#include <cassert>
#include <climits>

using namespace halo;

RuntimeObserver::~RuntimeObserver() = default;
void RuntimeObserver::onCall(CallSiteId) {}
void RuntimeObserver::onReturn(CallSiteId) {}
void RuntimeObserver::onAlloc(uint64_t, uint64_t, CallSiteId) {}
void RuntimeObserver::onFree(uint64_t) {}
void RuntimeObserver::onAccess(uint64_t, uint64_t, bool) {}
void RuntimeObserver::onCompute(uint64_t) {}
void RuntimeObserver::onReallocBegin(uint64_t, uint64_t, CallSiteId) {}
void RuntimeObserver::onReallocEnd(uint64_t) {}

void RuntimeObserver::onAccessBatch(const MemAccess *Batch, size_t N) {
  for (size_t I = 0; I < N; ++I)
    onAccess(Batch[I].Addr, Batch[I].Size, Batch[I].IsStore);
}

RuntimeObserver::AccessHookFn RuntimeObserver::accessHook() {
  return [](RuntimeObserver &Self, uint64_t Addr, uint64_t Size,
            bool IsStore) { Self.onAccess(Addr, Size, IsStore); };
}

Runtime::Runtime(const Program &Prog, Allocator &Alloc)
    : Prog(Prog), Alloc(&Alloc) {}

Runtime::Runtime(const Program &Prog, Allocator &Alloc, const CostModel &Costs)
    : Prog(Prog), Alloc(&Alloc), Timing(Costs) {}

void Runtime::setInstrumentation(const InstrumentationPlan *NewPlan) {
  assert(Stack.empty() && "cannot swap binaries mid-run");
  Plan = NewPlan;
  State.resize(Plan ? Plan->numBits() : 0);
}

void Runtime::addObserver(RuntimeObserver *Observer) {
  assert(Observer && "null observer");
  Observers.push_back(Observer);
  SoleAccessHook = Observers.size() == 1 ? Observer->accessHook() : nullptr;
}

void Runtime::removeObserver(RuntimeObserver *Observer) {
  Observers.erase(std::remove(Observers.begin(), Observers.end(), Observer),
                  Observers.end());
  SoleAccessHook =
      Observers.size() == 1 ? Observers.front()->accessHook() : nullptr;
}

void Runtime::notifyAccess(uint64_t Addr, uint64_t Size, bool IsStore) {
  if (SoleAccessHook) {
    SoleAccessHook(*Observers.front(), Addr, Size, IsStore);
    return;
  }
  for (RuntimeObserver *Obs : Observers)
    Obs->onAccess(Addr, Size, IsStore);
}

void Runtime::enter(CallSiteId Site) {
  assert(Site < Prog.numCallSites() && "unknown call site");
  ++Stats.Calls;
  int32_t Bit = Plan ? Plan->bitFor(Site) : -1;
  if (Bit >= 0) {
    State.set(static_cast<uint32_t>(Bit));
    Timing.addInstrumentationOp();
  }
  Stack.push_back(FrameRecord{Site, Bit});
  for (RuntimeObserver *Obs : Observers)
    Obs->onCall(Site);
}

void Runtime::leave() {
  assert(!Stack.empty() && "leave without enter");
  FrameRecord Frame = Stack.back();
  Stack.pop_back();
  if (Frame.Bit >= 0) {
    // Naive straight-line unset, exactly as the inserted code behaves: a
    // recursive inner return clears the bit even if an outer activation of
    // the same site is still live.
    State.unset(static_cast<uint32_t>(Frame.Bit));
    Timing.addInstrumentationOp();
  }
  for (RuntimeObserver *Obs : Observers)
    Obs->onReturn(Frame.Site);
}

uint64_t Runtime::malloc(uint64_t Size, CallSiteId MallocSite) {
  assert(Prog.isMallocSite(MallocSite) &&
         "allocation must go through a malloc call site");
  // The BOLT pass may instrument the malloc call site itself; the inserted
  // code sets the bit before the call, so the allocator observes it set.
  int32_t Bit = Plan ? Plan->bitFor(MallocSite) : -1;
  if (Bit >= 0) {
    State.set(static_cast<uint32_t>(Bit));
    Timing.addInstrumentationOp();
  }
  uint64_t Addr = Alloc->allocate(AllocRequest{Size, MallocSite});
  if (Bit >= 0) {
    State.unset(static_cast<uint32_t>(Bit));
    Timing.addInstrumentationOp();
  }
  Timing.addAllocatorCall();
  ++Stats.Allocs;
  for (RuntimeObserver *Obs : Observers)
    Obs->onAlloc(Addr, Size, MallocSite);
  return Addr;
}

uint64_t Runtime::calloc(uint64_t Count, uint64_t Size,
                         CallSiteId MallocSite) {
  uint64_t Total = Count * Size;
  uint64_t Addr = malloc(Total, MallocSite);
  if (Total > 0 && Total < 4096)
    store(Addr, Total);
  return Addr;
}

uint64_t Runtime::realloc(uint64_t Addr, uint64_t NewSize,
                          CallSiteId MallocSite) {
  if (Addr == 0)
    return malloc(NewSize, MallocSite);
  for (RuntimeObserver *Obs : Observers)
    Obs->onReallocBegin(Addr, NewSize, MallocSite);
  uint64_t CopyBytes = std::min(Alloc->usableSize(Addr), NewSize);
  uint64_t NewAddr = malloc(NewSize, MallocSite);
  for (uint64_t Off = 0; Off < CopyBytes; Off += 64) {
    uint64_t Span = std::min<uint64_t>(64, CopyBytes - Off);
    load(Addr + Off, Span);
    store(NewAddr + Off, Span);
  }
  free(Addr);
  for (RuntimeObserver *Obs : Observers)
    Obs->onReallocEnd(NewAddr);
  return NewAddr;
}

void Runtime::free(uint64_t Addr) {
  if (Addr == 0)
    return;
  for (RuntimeObserver *Obs : Observers)
    Obs->onFree(Addr);
  Alloc->deallocate(Addr);
  Timing.addAllocatorCall();
  ++Stats.Frees;
}

/// Narrows a decoded access size into the batch encoding. No modelled
/// access approaches 4 GiB (workload accesses are object-sized; realloc
/// copy spans are 64 bytes), and a wrap here would silently break replay
/// bit-identity, so debug builds assert; Release builds trade the
/// per-event check away, relying on tests/trace_replay_test.cpp's
/// replay-vs-direct sweeps to catch any workload that ever violates it.
static uint32_t batchSize(uint64_t Size) {
  assert(Size <= UINT32_MAX && "access size exceeds the batch encoding");
  return static_cast<uint32_t>(Size);
}

void Runtime::replayAccessRun(const MemAccess *Batch, size_t N,
                              uint64_t Stores) {
  Stats.Loads += N - Stores;
  Stats.Stores += Stores;
  if (Memory)
    Timing.addMemory(Memory->accessBatch(Batch, N));
  for (RuntimeObserver *Obs : Observers)
    Obs->onAccessBatch(Batch, N);
}

/// Replay state shared across decoded ranges (see Runtime.h). A mapped
/// replay feeds many ranges -- one per block -- through one state, so the
/// pending batch rides across block boundaries untouched and the counters
/// come out bit-identical to the single-range in-RAM replay.
struct Runtime::ReplayState {
  static constexpr size_t BatchCap = 512;

  explicit ReplayState(uint32_t NumObjects, bool Strict) : Strict(Strict) {
    // Replay-time object table: the Nth minted object's address under
    // *this* runtime's allocator. Frees leave entries stale, exactly like
    // a freed pointer; the recorder never emits accesses through them.
    ObjAddr.reserve(NumObjects);
    Batch.resize(BatchCap);
  }

  std::vector<uint64_t> ObjAddr;
  std::vector<MemAccess> Batch;
  size_t Run = 0;
  uint64_t RunStores = 0;
  const bool Strict;
};

void Runtime::replayRange(ReplayState &St, const uint8_t *Begin,
                          const uint8_t *End) {
  // Batch loop: decoding resolves every data access (the dominant event
  // shape) straight into a flat MemAccess batch -- ids become final
  // addresses at decode time -- and each batch is consumed whole by the
  // memory hierarchy and the observers, so the TLB/L1 fast path spins in
  // a tight loop with no call per event.
  //
  // How long a batch may grow is the crux. With observers attached
  // (profiling replay), every observable event must be delivered in
  // recording order, so any non-access record flushes the pending batch
  // first. Unobserved (the measurement configuration), the only true
  // ordering dependency is the hierarchy's own access sequence: calls,
  // allocations, frees, and computes never touch the hierarchy, and their
  // effects -- stack/group-state updates, allocator bookkeeping, counter
  // and cycle sums -- neither read the pending accesses nor are read by
  // them (addresses are already resolved). They therefore execute inline
  // while the batch keeps filling. The one exception is Realloc, whose
  // composite copy traffic drives the hierarchy through load()/store()
  // and so must see the batch drained first. Either way every counter is
  // bit-identical to per-event replay: batching only regroups commutative
  // additions around events it never reorders against their dependencies.
  constexpr size_t BatchCap = ReplayState::BatchCap;
  std::vector<uint64_t> &ObjAddr = St.ObjAddr;
  std::vector<MemAccess> &Batch = St.Batch;
  size_t Run = St.Run;
  uint64_t RunStores = St.RunStores;
  const bool Strict = St.Strict;

  auto Flush = [&] {
    if (Run) {
      replayAccessRun(Batch.data(), Run, RunStores);
      Run = 0;
      RunStores = 0;
    }
  };

  EventTrace::Reader R(Begin, End);
  while (!R.atEnd()) {
    switch (R.op()) {
    case TraceOp::Call: {
      CallSiteId Site = static_cast<CallSiteId>(R.varint());
      if (Strict)
        Flush();
      enter(Site);
      break;
    }
    case TraceOp::Return:
      if (Strict)
        Flush();
      leave();
      break;
    case TraceOp::Alloc: {
      CallSiteId Site = static_cast<CallSiteId>(R.varint());
      uint64_t Size = R.varint();
      if (Strict)
        Flush();
      ObjAddr.push_back(malloc(Size, Site));
      break;
    }
    case TraceOp::Free: {
      uint64_t Id = R.varint();
      if (Strict)
        Flush();
      free(ObjAddr[Id]);
      break;
    }
    case TraceOp::Load: {
      uint64_t Id = R.varint();
      uint64_t Offset = R.varint();
      Batch[Run++] =
          MemAccess{ObjAddr[Id] + Offset,
                    batchSize(R.varint()), 0};
      if (Run == BatchCap)
        Flush();
      break;
    }
    case TraceOp::Store: {
      uint64_t Id = R.varint();
      uint64_t Offset = R.varint();
      Batch[Run++] =
          MemAccess{ObjAddr[Id] + Offset,
                    batchSize(R.varint()), 1};
      ++RunStores;
      if (Run == BatchCap)
        Flush();
      break;
    }
    case TraceOp::LoadBase: {
      uint64_t Addr = ObjAddr[R.varint()];
      Batch[Run++] =
          MemAccess{Addr, batchSize(R.varint()), 0};
      if (Run == BatchCap)
        Flush();
      break;
    }
    case TraceOp::StoreBase: {
      uint64_t Addr = ObjAddr[R.varint()];
      Batch[Run++] =
          MemAccess{Addr, batchSize(R.varint()), 1};
      ++RunStores;
      if (Run == BatchCap)
        Flush();
      break;
    }
    case TraceOp::LoadRaw: {
      uint64_t Addr = R.varint();
      Batch[Run++] =
          MemAccess{Addr, batchSize(R.varint()), 0};
      if (Run == BatchCap)
        Flush();
      break;
    }
    case TraceOp::StoreRaw: {
      uint64_t Addr = R.varint();
      Batch[Run++] =
          MemAccess{Addr, batchSize(R.varint()), 1};
      ++RunStores;
      if (Run == BatchCap)
        Flush();
      break;
    }
    case TraceOp::Compute: {
      uint64_t Cycles = R.varint();
      if (Strict) {
        Flush();
        compute(Cycles);
      } else {
        // compute() without observers is just the cycle add.
        Timing.addCompute(Cycles);
      }
      break;
    }
    case TraceOp::Realloc: { // old object id, site, new size.
      uint64_t Old = R.varint();
      CallSiteId Site = static_cast<CallSiteId>(R.varint());
      uint64_t NewSize = R.varint();
      Flush(); // The composite's copy traffic drives the hierarchy.
      ObjAddr.push_back(realloc(ObjAddr[Old], NewSize, Site));
      break;
    }
    }
  }
  St.Run = Run;
  St.RunStores = RunStores;
}

void Runtime::replay(const EventTrace &Trace) {
  assert(!Trace.streaming() && "a streaming trace has left RAM; replay it "
                               "through its MappedTrace");
  ReplayState St(Trace.numObjects(), !Observers.empty());
  replayRange(St, Trace.data(), Trace.data() + Trace.byteSize());
  if (St.Run)
    replayAccessRun(St.Batch.data(), St.Run, St.RunStores);
}

void Runtime::replay(const MappedTrace &Trace) {
  ReplayState St(Trace.numObjects(), !Observers.empty());
  // One decoded block resident at a time; the pending batch carries
  // across block boundaries (blocks are whole records, and batch growth
  // only regroups commutative additions), so the counters match the
  // in-RAM replay bit for bit.
  std::vector<uint8_t> Scratch;
  for (size_t B = 0, N = Trace.numBlocks(); B < N; ++B) {
    Trace.decodeBlock(B, Scratch);
    replayRange(St, Scratch.data(), Scratch.data() + Scratch.size());
    Trace.releaseBlock(B);
  }
  if (St.Run)
    replayAccessRun(St.Batch.data(), St.Run, St.RunStores);
}
