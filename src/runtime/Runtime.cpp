//===- runtime/Runtime.cpp - Instrumented execution environment ------------===//

#include "runtime/Runtime.h"

#include "trace/EventTrace.h"

#include <algorithm>
#include <cassert>

using namespace halo;

RuntimeObserver::~RuntimeObserver() = default;
void RuntimeObserver::onCall(CallSiteId) {}
void RuntimeObserver::onReturn(CallSiteId) {}
void RuntimeObserver::onAlloc(uint64_t, uint64_t, CallSiteId) {}
void RuntimeObserver::onFree(uint64_t) {}
void RuntimeObserver::onAccess(uint64_t, uint64_t, bool) {}
void RuntimeObserver::onCompute(uint64_t) {}
void RuntimeObserver::onReallocBegin(uint64_t, uint64_t, CallSiteId) {}
void RuntimeObserver::onReallocEnd(uint64_t) {}

RuntimeObserver::AccessHookFn RuntimeObserver::accessHook() {
  return [](RuntimeObserver &Self, uint64_t Addr, uint64_t Size,
            bool IsStore) { Self.onAccess(Addr, Size, IsStore); };
}

Runtime::Runtime(const Program &Prog, Allocator &Alloc)
    : Prog(Prog), Alloc(&Alloc) {}

Runtime::Runtime(const Program &Prog, Allocator &Alloc, const CostModel &Costs)
    : Prog(Prog), Alloc(&Alloc), Timing(Costs) {}

void Runtime::setInstrumentation(const InstrumentationPlan *NewPlan) {
  assert(Stack.empty() && "cannot swap binaries mid-run");
  Plan = NewPlan;
  State.resize(Plan ? Plan->numBits() : 0);
}

void Runtime::addObserver(RuntimeObserver *Observer) {
  assert(Observer && "null observer");
  Observers.push_back(Observer);
  SoleAccessHook = Observers.size() == 1 ? Observer->accessHook() : nullptr;
}

void Runtime::notifyAccess(uint64_t Addr, uint64_t Size, bool IsStore) {
  if (SoleAccessHook) {
    SoleAccessHook(*Observers.front(), Addr, Size, IsStore);
    return;
  }
  for (RuntimeObserver *Obs : Observers)
    Obs->onAccess(Addr, Size, IsStore);
}

void Runtime::enter(CallSiteId Site) {
  assert(Site < Prog.numCallSites() && "unknown call site");
  ++Stats.Calls;
  int32_t Bit = Plan ? Plan->bitFor(Site) : -1;
  if (Bit >= 0) {
    State.set(static_cast<uint32_t>(Bit));
    Timing.addInstrumentationOp();
  }
  Stack.push_back(FrameRecord{Site, Bit});
  for (RuntimeObserver *Obs : Observers)
    Obs->onCall(Site);
}

void Runtime::leave() {
  assert(!Stack.empty() && "leave without enter");
  FrameRecord Frame = Stack.back();
  Stack.pop_back();
  if (Frame.Bit >= 0) {
    // Naive straight-line unset, exactly as the inserted code behaves: a
    // recursive inner return clears the bit even if an outer activation of
    // the same site is still live.
    State.unset(static_cast<uint32_t>(Frame.Bit));
    Timing.addInstrumentationOp();
  }
  for (RuntimeObserver *Obs : Observers)
    Obs->onReturn(Frame.Site);
}

uint64_t Runtime::malloc(uint64_t Size, CallSiteId MallocSite) {
  assert(Prog.isMallocSite(MallocSite) &&
         "allocation must go through a malloc call site");
  // The BOLT pass may instrument the malloc call site itself; the inserted
  // code sets the bit before the call, so the allocator observes it set.
  int32_t Bit = Plan ? Plan->bitFor(MallocSite) : -1;
  if (Bit >= 0) {
    State.set(static_cast<uint32_t>(Bit));
    Timing.addInstrumentationOp();
  }
  uint64_t Addr = Alloc->allocate(AllocRequest{Size, MallocSite});
  if (Bit >= 0) {
    State.unset(static_cast<uint32_t>(Bit));
    Timing.addInstrumentationOp();
  }
  Timing.addAllocatorCall();
  ++Stats.Allocs;
  for (RuntimeObserver *Obs : Observers)
    Obs->onAlloc(Addr, Size, MallocSite);
  return Addr;
}

uint64_t Runtime::calloc(uint64_t Count, uint64_t Size,
                         CallSiteId MallocSite) {
  uint64_t Total = Count * Size;
  uint64_t Addr = malloc(Total, MallocSite);
  if (Total > 0 && Total < 4096)
    store(Addr, Total);
  return Addr;
}

uint64_t Runtime::realloc(uint64_t Addr, uint64_t NewSize,
                          CallSiteId MallocSite) {
  if (Addr == 0)
    return malloc(NewSize, MallocSite);
  for (RuntimeObserver *Obs : Observers)
    Obs->onReallocBegin(Addr, NewSize, MallocSite);
  uint64_t CopyBytes = std::min(Alloc->usableSize(Addr), NewSize);
  uint64_t NewAddr = malloc(NewSize, MallocSite);
  for (uint64_t Off = 0; Off < CopyBytes; Off += 64) {
    uint64_t Span = std::min<uint64_t>(64, CopyBytes - Off);
    load(Addr + Off, Span);
    store(NewAddr + Off, Span);
  }
  free(Addr);
  for (RuntimeObserver *Obs : Observers)
    Obs->onReallocEnd(NewAddr);
  return NewAddr;
}

void Runtime::free(uint64_t Addr) {
  if (Addr == 0)
    return;
  for (RuntimeObserver *Obs : Observers)
    Obs->onFree(Addr);
  Alloc->deallocate(Addr);
  Timing.addAllocatorCall();
  ++Stats.Frees;
}

void Runtime::replay(const EventTrace &Trace) {
  // Replay-time object table: the Nth minted object's address under *this*
  // runtime's allocator. Frees leave entries stale, exactly like a freed
  // pointer; the recorder never emits accesses through them.
  std::vector<uint64_t> ObjAddr;
  ObjAddr.reserve(Trace.numObjects());

  EventTrace::Reader R = Trace.reader();
  while (!R.atEnd()) {
    switch (R.op()) {
    case TraceOp::Call:
      enter(static_cast<CallSiteId>(R.varint()));
      break;
    case TraceOp::Return:
      leave();
      break;
    case TraceOp::Alloc: {
      CallSiteId Site = static_cast<CallSiteId>(R.varint());
      uint64_t Size = R.varint();
      ObjAddr.push_back(malloc(Size, Site));
      break;
    }
    case TraceOp::Free:
      free(ObjAddr[R.varint()]);
      break;
    case TraceOp::Load: {
      uint64_t Id = R.varint();
      uint64_t Offset = R.varint();
      uint64_t Size = R.varint();
      load(ObjAddr[Id] + Offset, Size);
      break;
    }
    case TraceOp::Store: {
      uint64_t Id = R.varint();
      uint64_t Offset = R.varint();
      uint64_t Size = R.varint();
      store(ObjAddr[Id] + Offset, Size);
      break;
    }
    case TraceOp::LoadBase: {
      uint64_t Id = R.varint();
      uint64_t Size = R.varint();
      load(ObjAddr[Id], Size);
      break;
    }
    case TraceOp::StoreBase: {
      uint64_t Id = R.varint();
      uint64_t Size = R.varint();
      store(ObjAddr[Id], Size);
      break;
    }
    case TraceOp::LoadRaw: {
      uint64_t Addr = R.varint();
      uint64_t Size = R.varint();
      load(Addr, Size);
      break;
    }
    case TraceOp::StoreRaw: {
      uint64_t Addr = R.varint();
      uint64_t Size = R.varint();
      store(Addr, Size);
      break;
    }
    case TraceOp::Compute:
      compute(R.varint());
      break;
    case TraceOp::Realloc: {
      uint64_t Old = R.varint();
      CallSiteId Site = static_cast<CallSiteId>(R.varint());
      uint64_t NewSize = R.varint();
      ObjAddr.push_back(realloc(ObjAddr[Old], NewSize, Site));
      break;
    }
    }
  }
}
