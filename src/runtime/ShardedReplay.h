//===- runtime/ShardedReplay.h - Within-trace parallel replay ---*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel replay of a single event trace: the memory-hierarchy
/// simulation -- the dominant cost of a measurement -- is sharded across an
/// Executor while everything order-dependent stays serial. The result is
/// bit-identical to Runtime::replay on one thread; no approximation mode is
/// needed.
///
/// The decomposition exploits how the serial replay actually spends its
/// work:
///
///   1. A serial *prepass* replays the trace with the hierarchy detached:
///      allocator, instrumentation, group state, event counters, and
///      compute cycles evolve exactly as in a serial replay (they are
///      cheap), and a capture observer records each minted object's address
///      and each composite realloc's allocator-dependent copy length.
///   2. The trace is cut at record boundaries into byte-range *shards*.
///      Each shard resolves its accesses through the captured address
///      table and simulates the L1 and TLB on private per-shard state --
///      true-LRU caches are move-to-front lists, so a shard's verdicts are
///      exact for every line re-touched within the shard, and the only
///      unknowns are first touches that missed with fewer than Ways
///      distinct predecessors in their set ("residuals").
///   3. A serial *stitch* walks the shards in trace order carrying the
///      merged recency state: each residual is re-judged against the state
///      the serial replay would have had (flipping it to a hit exactly
///      when the line would still have been resident), the surviving L1
///      miss lines drive the real L2/L3 in trace order, and the final
///      hit/miss/stall totals are credited to the real hierarchy and the
///      timing model.
///
/// See README.md ("sharded = serial") for the equivalence contract and
/// tests/trace_shard_test.cpp for the enforcement.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_RUNTIME_SHARDEDREPLAY_H
#define HALO_RUNTIME_SHARDEDREPLAY_H

#include <cstddef>
#include <string>

namespace halo {

class EventTrace;
class Executor;
class MappedTrace;
class Runtime;

/// How a measurement replays its trace. Counters are bit-identical under
/// every mode; the choice only moves work between threads.
enum class ReplayMode {
  /// Shard within each trace when the plan's replay tasks alone cannot
  /// keep the pool busy; otherwise replay serially per task. The default.
  Auto,
  /// Always Runtime::replay on the calling thread.
  Serial,
  /// Always shardedReplay (which still degenerates to a serial replay for
  /// traces too small to cut, observed runtimes, or a one-worker pool).
  Sharded,
};

/// Stable lower-case name ("auto", "serial", "sharded") for JSON and CLI
/// output.
const char *replayModeName(ReplayMode Mode);

/// Parses a replayModeName() string; returns false on anything else.
bool parseReplayMode(const std::string &Text, ReplayMode &Out);

/// Replays \p Trace on \p RT, sharding the memory simulation across
/// \p Pool. \p NumShards of 0 means one shard per pool worker. Stats,
/// timing, and hierarchy counters end up bit-identical to
/// RT.replay(Trace); the final *content* of the L1/TLB differs (they stay
/// cold -- per-shard state is private), which no consumer reads: every
/// measurement runs on a fresh hierarchy and reports counters only.
///
/// Falls back to a plain serial replay when sharding cannot help or the
/// prerequisites fail: no attached hierarchy, attached observers (event
/// delivery is order-strict), a hierarchy that has already served
/// accesses (the stitch assumes a cold L1/TLB), a single-worker pool, or
/// a trace with too few records to cut.
void shardedReplay(Runtime &RT, const EventTrace &Trace, Executor &Pool,
                   size_t NumShards = 0);

/// Same, over an on-disk mapped trace (trace/TraceFile.h). Shards are
/// runs of whole compressed blocks balanced by decoded size: the block
/// footer already records each block's first object id and realloc
/// ordinal, so shard decode state is seeded straight from the index --
/// no scan over earlier blocks -- and each shard task decompresses only
/// its own blocks into a private scratch (bounded memory per worker).
/// Counters are bit-identical to the serial mapped replay, which is
/// itself bit-identical to the in-RAM oracle.
void shardedReplay(Runtime &RT, const MappedTrace &Trace, Executor &Pool,
                   size_t NumShards = 0);

} // namespace halo

#endif // HALO_RUNTIME_SHARDEDREPLAY_H
