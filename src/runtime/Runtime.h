//===- runtime/Runtime.h - Instrumented execution environment --*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumented virtual runtime workloads execute against. It plays two
/// roles from the paper at once, selected by how it is wired up:
///
///   * During *profiling* it is the Pin tool's event source: every call,
///     return, allocation and memory access is reported to the attached
///     observers (profile/HeapProfiler.h builds the affinity graph from
///     them). Section 4.1 notes this can slow execution by up to 500x on
///     real hardware; here it is just another observer.
///   * During *measurement* it executes the BOLT-rewritten binary: if an
///     InstrumentationPlan is attached, calls through instrumented sites
///     set/unset group-state bits (costed by the timing model), and loads/
///     stores drive the cache hierarchy to produce miss counts and cycles.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_RUNTIME_RUNTIME_H
#define HALO_RUNTIME_RUNTIME_H

#include "mem/Allocator.h"
#include "prog/GroupStateVector.h"
#include "prog/Instrumentation.h"
#include "prog/Program.h"
#include "sim/MemoryHierarchy.h"
#include "sim/TimingModel.h"

#include <cstdint>
#include <vector>

namespace halo {

class EventTrace;
class MappedTrace;

/// Receives the raw event stream of a run (the Pin-tool role).
class RuntimeObserver {
public:
  virtual ~RuntimeObserver();
  virtual void onCall(CallSiteId Site);
  virtual void onReturn(CallSiteId Site);
  virtual void onAlloc(uint64_t Addr, uint64_t Size, CallSiteId MallocSite);
  virtual void onFree(uint64_t Addr);
  virtual void onAccess(uint64_t Addr, uint64_t Size, bool IsStore);
  /// Pure-compute cycles reported through Runtime::compute (needed by trace
  /// recording; cycle totals are part of a run's metrics).
  virtual void onCompute(uint64_t Cycles);
  /// Batched form of onAccess: trace replay hands observers whole runs of
  /// consecutive data accesses in one call. The default forwards
  /// element-wise to onAccess, so observers that only implement the
  /// per-event hook keep working; hot observers (HeapProfiler,
  /// TraceRecorder) override it to loop their non-virtual handler -- one
  /// dispatch per run instead of per event.
  virtual void onAccessBatch(const MemAccess *Batch, size_t N);
  /// Brackets a composite realloc (Addr != 0): the primitive alloc, copy
  /// accesses, and free in between belong to the realloc. Observers that
  /// only care about primitives (the profiler) ignore these.
  virtual void onReallocBegin(uint64_t OldAddr, uint64_t NewSize,
                              CallSiteId MallocSite);
  virtual void onReallocEnd(uint64_t NewAddr);

  /// Signature of the devirtualized per-access fast path.
  using AccessHookFn = void (*)(RuntimeObserver &Self, uint64_t Addr,
                                uint64_t Size, bool IsStore);
  /// Hook the runtime calls for every access when this is the *only*
  /// attached observer (the profiling configuration). Concrete observers
  /// return a thunk onto their non-virtual handler so the hot access path
  /// pays one direct call instead of a virtual dispatch; the default
  /// forwards to the virtual onAccess.
  virtual AccessHookFn accessHook();
};

/// Aggregate event counters for a run.
struct RuntimeStats {
  uint64_t Calls = 0;
  uint64_t Allocs = 0;
  uint64_t Frees = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
};

/// The virtual machine a workload runs on.
class Runtime {
public:
  /// \p Alloc serves every allocation of the run; both outlive the runtime.
  /// Timing uses the default machine's cost model (sim/Machine.h).
  Runtime(const Program &Prog, Allocator &Alloc);

  /// Same, but timing runs under \p Costs — the machine model's per-event
  /// costs and clock (allocator calls, instrumentation ops, seconds()).
  Runtime(const Program &Prog, Allocator &Alloc, const CostModel &Costs);

  /// Swaps the serving allocator before a run. This mirrors the paper's
  /// deployment, where the specialised allocator is linked in *after* the
  /// rewritten binary exists: the group allocator needs the runtime's group
  /// state vector, which only exists once the runtime does.
  void setAllocator(Allocator &NewAlloc) { Alloc = &NewAlloc; }

  /// Attaches the BOLT-rewritten binary's instrumentation (may be null to
  /// run the original binary). Resizes the group state vector.
  void setInstrumentation(const InstrumentationPlan *Plan);

  /// Attaches the cache hierarchy that loads/stores should exercise (null
  /// for profiling runs where only the event stream matters).
  void setMemory(MemoryHierarchy *Hierarchy) { Memory = Hierarchy; }

  /// The attached hierarchy, or null. The sharded replay driver detaches it
  /// for its serial prepass and credits it during the stitch.
  MemoryHierarchy *memory() const { return Memory; }

  void addObserver(RuntimeObserver *Observer);

  /// Detaches a previously added observer (most-recently-added or not);
  /// re-derives the devirtualized sole-observer hook. No-op if \p Observer
  /// was never attached.
  void removeObserver(RuntimeObserver *Observer);

  bool hasObservers() const { return !Observers.empty(); }

  // -- Control flow ------------------------------------------------------
  /// Simulates a call through \p Site; pair with leave().
  void enter(CallSiteId Site);
  void leave();

  /// RAII call scope.
  class Scope {
  public:
    Scope(Runtime &RT, CallSiteId Site) : RT(RT) { RT.enter(Site); }
    ~Scope() { RT.leave(); }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    Runtime &RT;
  };

  // -- Memory management -------------------------------------------------
  /// malloc(Size) called from \p MallocSite (a call site targeting the
  /// built-in malloc function).
  uint64_t malloc(uint64_t Size, CallSiteId MallocSite);
  /// calloc: allocate and zero (zeroing of sub-page requests is modelled as
  /// stores; page-scale requests arrive as fresh zero pages).
  uint64_t calloc(uint64_t Count, uint64_t Size, CallSiteId MallocSite);
  /// realloc: allocate, copy (modelled as 64-byte strided loads/stores),
  /// free. Addr == 0 degenerates to malloc.
  uint64_t realloc(uint64_t Addr, uint64_t NewSize, CallSiteId MallocSite);
  void free(uint64_t Addr);

  // -- Data accesses and compute -----------------------------------------
  /// load/store are the hottest events of a run; they are inline with a
  /// branch-free-when-unobserved fast path so measurement runs (which
  /// attach no observers) pay nothing for the observer mechanism.
  void load(uint64_t Addr, uint64_t Size) {
    ++Stats.Loads;
    if (Memory)
      Timing.addMemory(Memory->access(Addr, Size));
    if (!Observers.empty())
      notifyAccess(Addr, Size, /*IsStore=*/false);
  }
  void store(uint64_t Addr, uint64_t Size) {
    ++Stats.Stores;
    if (Memory)
      Timing.addMemory(Memory->access(Addr, Size));
    if (!Observers.empty())
      notifyAccess(Addr, Size, /*IsStore=*/true);
  }
  /// Accounts \p Cycles of pure compute (the non-memory-bound part of the
  /// workload; this is what makes povray/leela compute-bound in the model).
  void compute(uint64_t Cycles) {
    Timing.addCompute(Cycles);
    for (RuntimeObserver *Obs : Observers)
      Obs->onCompute(Cycles);
  }

  // -- Replay ------------------------------------------------------------
  /// Re-executes a recorded event trace on this runtime exactly as the
  /// recorded workload run would have: calls/returns drive instrumentation
  /// and the group state vector, allocations go to the serving allocator
  /// (addresses are re-derived, so any allocator works), accesses drive the
  /// attached memory hierarchy, and composite reallocs re-derive their
  /// allocator-dependent copy traffic. On a fresh runtime the resulting
  /// stats, timing, and memory counters are bit-identical to direct
  /// execution of the recorded workload under the same configuration.
  ///
  /// Execution is batched: decoding (inline over EventTrace::Reader,
  /// fused with object-id-to-address resolution) accumulates runs of
  /// data accesses -- the dominant event shape -- into flat MemAccess
  /// blocks handed to MemoryHierarchy::accessBatch and
  /// RuntimeObserver::onAccessBatch in one call each, so the simulator's
  /// TLB/L1 fast path spins in a tight loop with no dispatch per event.
  /// Counters stay bit-identical to per-event execution: batch
  /// boundaries only regroup commutative additions, never reorder
  /// events against their dependencies (see the comment in replay()).
  void replay(const EventTrace &Trace);

  /// Same, over an on-disk mapped trace (trace/TraceFile.h), decoding one
  /// compressed block at a time into a reused scratch buffer and dropping
  /// each block's file pages as it passes -- resident memory stays bounded
  /// by a couple of blocks however large the trace. Blocks hold whole
  /// records and the batch state carries straight across block boundaries
  /// (no flush: batching only regroups commutative additions), so the
  /// result is bit-identical to in-RAM replay of the same recording --
  /// the "mapped = in-RAM" contract (tests/trace_file_test.cpp).
  void replay(const MappedTrace &Trace);

  // -- State -------------------------------------------------------------
  const Program &program() const { return Prog; }
  Allocator &allocator() { return *Alloc; }
  GroupStateVector &groupState() { return State; }
  const GroupStateVector &groupState() const { return State; }
  TimingModel &timing() { return Timing; }
  const TimingModel &timing() const { return Timing; }
  const RuntimeStats &stats() const { return Stats; }

  /// The call site at the top of the current (raw) call stack, or InvalidId
  /// at top level. Used by the hot-data-streams allocator, which identifies
  /// allocations by the immediate call site of the allocation procedure.
  CallSiteId currentSite() const {
    return Stack.empty() ? InvalidId : Stack.back().Site;
  }

  uint32_t callDepth() const { return static_cast<uint32_t>(Stack.size()); }

private:
  struct FrameRecord {
    CallSiteId Site;
    int32_t Bit; ///< Group-state bit set on entry, or -1.
  };

  /// Out-of-line observer dispatch for accesses: a single observer goes
  /// through its devirtualized hook, multiple observers through the
  /// virtual interface.
  void notifyAccess(uint64_t Addr, uint64_t Size, bool IsStore);

  /// Executes one run of consecutive replayed data accesses (of which
  /// \p Stores are stores): event counters, the memory hierarchy (whole
  /// batch), then observers (whole batch).
  void replayAccessRun(const MemAccess *Batch, size_t N, uint64_t Stores);

  /// Replay state that survives across decoded ranges: the object table,
  /// the pending access batch, and the strictness policy. Both replay
  /// overloads drive the same fused decode loop, replayRange, over it --
  /// one range for an in-RAM trace, one per decoded block for a mapped
  /// one (defined in Runtime.cpp).
  struct ReplayState;
  void replayRange(ReplayState &St, const uint8_t *Begin, const uint8_t *End);

  const Program &Prog;
  Allocator *Alloc;
  const InstrumentationPlan *Plan = nullptr;
  MemoryHierarchy *Memory = nullptr;
  GroupStateVector State;
  TimingModel Timing;
  RuntimeStats Stats;
  std::vector<FrameRecord> Stack;
  std::vector<RuntimeObserver *> Observers;
  /// Cached devirtualized access hook; non-null iff exactly one observer
  /// is attached.
  RuntimeObserver::AccessHookFn SoleAccessHook = nullptr;
};

} // namespace halo

#endif // HALO_RUNTIME_RUNTIME_H
