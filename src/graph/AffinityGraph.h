//===- graph/AffinityGraph.h - Pairwise context affinity --------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pairwise affinity graph of Section 4.1: nodes are reduced allocation
/// contexts weighted by access count, edges are weighted by the number of
/// contemporaneous accesses observed within the affinity distance. Includes
/// the loop-aware weighted-density score of Figure 7, the post-profiling
/// cold-node filter (90% access coverage), and DOT export in the style of
/// Figure 9.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_GRAPH_AFFINITYGRAPH_H
#define HALO_GRAPH_AFFINITYGRAPH_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace halo {

class AdjacencySnapshot;
class BinaryWriter;
class BinaryReader;

/// Nodes are identified by dense context ids (trace/Context.h assigns them);
/// the graph itself only needs their numeric identity.
using GraphNodeId = uint32_t;

/// The Figure 7 score from a subgraph's aggregates:
///   s(G) = WeightSum / (Loops + Pairs)
/// with 0 for an empty denominator. The single definition is shared by
/// AffinityGraph::score, AdjacencySnapshot::score, and both grouping
/// implementations: the incremental buildGroups' bit-identical-output
/// contract with buildGroupsReference depends on every path computing this
/// division identically.
inline double affinityScoreFrom(uint64_t WeightSum, uint64_t Loops,
                                uint64_t Pairs) {
  uint64_t Denominator = Loops + Pairs;
  if (Denominator == 0)
    return 0.0;
  return static_cast<double>(WeightSum) / static_cast<double>(Denominator);
}

/// Pairwise affinity between allocation contexts. Undirected; loop edges
/// (u == u) are allowed and arise when two distinct objects from the same
/// context are accessed contemporaneously.
class AffinityGraph {
public:
  struct Edge {
    GraphNodeId U;
    GraphNodeId V;
    uint64_t Weight;
  };

  /// Accumulates \p Count accesses onto \p Node, creating it if new.
  void addAccesses(GraphNodeId Node, uint64_t Count = 1);

  /// Accumulates \p Weight onto the undirected edge (U, V).
  void addEdgeWeight(GraphNodeId U, GraphNodeId V, uint64_t Weight = 1);

  uint64_t edgeWeight(GraphNodeId U, GraphNodeId V) const;
  uint64_t nodeAccesses(GraphNodeId Node) const;
  bool hasNode(GraphNodeId Node) const { return Accesses.count(Node) != 0; }

  /// Total accesses across surviving nodes ("graph.accesses" in Fig. 6).
  uint64_t totalAccesses() const { return TotalAccesses; }

  /// All surviving nodes, in ascending id order (deterministic).
  std::vector<GraphNodeId> nodes() const;

  /// All edges between surviving nodes, in deterministic order.
  std::vector<Edge> edges() const;

  uint32_t numNodes() const { return static_cast<uint32_t>(Accesses.size()); }
  uint64_t numEdges() const { return Edges.size(); }

  /// Removes all edges lighter than \p MinWeight (Fig. 6 edge thresholding).
  void removeLightEdges(uint64_t MinWeight);

  /// Iterates nodes from most to least accessed, keeping them until
  /// \p Coverage of all observed accesses is accounted for, then discards
  /// the remainder and their edges (Section 4.1's 90% noise filter).
  void filterColdNodes(double Coverage);

  /// The Figure 7 score of the subgraph induced by \p Nodes:
  ///   s(G) = sum(w) / (|L| + |V| * (|V| - 1) / 2)
  /// where L is the set of present loop edges. A single node with no loop
  /// edge has score 0 by convention (empty denominator).
  double score(const std::vector<GraphNodeId> &Nodes) const;

  /// Sum of edge weights within the subgraph induced by \p Nodes (the group
  /// weight test in Fig. 6).
  uint64_t subgraphWeight(const std::vector<GraphNodeId> &Nodes) const;

  /// Freezes the current graph into a CSR adjacency snapshot (see
  /// graph/Adjacency.h): per-node neighbour/weight spans, loop weights, and
  /// a degree-ordered permutation. The snapshot is an independent copy; it
  /// is not invalidated by later mutation of this graph (but does not see
  /// it either).
  AdjacencySnapshot buildAdjacency() const;

  /// Renders the graph as DOT (Figure 9 style). \p LabelOf supplies node
  /// labels, \p GroupOf a group number per node (-1 = ungrouped, drawn
  /// grey), and edges lighter than \p MinEdgeWeight are hidden "to reduce
  /// visual noise".
  std::string toDot(const std::vector<std::string> &LabelOf,
                    const std::vector<int> &GroupOf,
                    uint64_t MinEdgeWeight = 0) const;

  /// Writes nodes and edges in their deterministic orders plus the total
  /// access count; the byte stream is identical for equal graphs no matter
  /// what insertion order built them.
  void save(BinaryWriter &W) const;

  /// Decodes a save()d graph; throws SerializationError if the recorded
  /// total disagrees with the node sum (corruption).
  static AffinityGraph load(BinaryReader &R);

private:
  static uint64_t edgeKey(GraphNodeId U, GraphNodeId V);

  std::unordered_map<GraphNodeId, uint64_t> Accesses;
  std::unordered_map<uint64_t, uint64_t> Edges;
  uint64_t TotalAccesses = 0;
};

} // namespace halo

#endif // HALO_GRAPH_AFFINITYGRAPH_H
