//===- graph/Adjacency.h - Frozen CSR adjacency snapshot --------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A frozen compressed-sparse-row view of an AffinityGraph, built once via
/// AffinityGraph::buildAdjacency() and then read-only. Nodes are renumbered
/// into dense indices [0, N) in ascending id order so grouping and scoring
/// can use flat arrays instead of probing the packed-key hash map: each
/// node's non-loop neighbours and edge weights are contiguous spans, loop
/// weights live in a parallel array, and a degree-descending permutation is
/// precomputed for hub-first iteration. Dense indices compare the same way
/// as the original node ids, so ordering-sensitive algorithms (tie-breaks
/// in the Figure 6 grouping) behave identically on either numbering.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_GRAPH_ADJACENCY_H
#define HALO_GRAPH_ADJACENCY_H

#include "graph/AffinityGraph.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace halo {

/// Minimal contiguous view (the project targets C++17, so no std::span).
template <typename T> class Span {
public:
  Span() = default;
  Span(const T *Begin, const T *End) : Begin(Begin), End_(End) {}
  const T *begin() const { return Begin; }
  const T *end() const { return End_; }
  size_t size() const { return static_cast<size_t>(End_ - Begin); }
  bool empty() const { return Begin == End_; }
  const T &operator[](size_t I) const { return Begin[I]; }

private:
  const T *Begin = nullptr;
  const T *End_ = nullptr;
};

/// Immutable CSR snapshot of an affinity graph. Indices into every accessor
/// are dense node indices; nodeId()/denseOf() translate to and from the
/// original GraphNodeIds.
class AdjacencySnapshot {
public:
  static constexpr uint32_t InvalidDense = ~0u;

  uint32_t numNodes() const { return static_cast<uint32_t>(Ids.size()); }
  /// Distinct undirected edges, loops included.
  uint64_t numEdges() const { return EdgeCount; }
  uint64_t totalAccesses() const { return Total; }

  /// The original node id of dense index \p Dense.
  GraphNodeId nodeId(uint32_t Dense) const {
    assert(Dense < Ids.size() && "bad dense index");
    return Ids[Dense];
  }

  /// The dense index of \p Node, or InvalidDense if the node is absent.
  uint32_t denseOf(GraphNodeId Node) const;

  uint64_t accesses(uint32_t Dense) const { return NodeAccesses[Dense]; }
  uint64_t loopWeight(uint32_t Dense) const { return LoopWeights[Dense]; }
  uint32_t degree(uint32_t Dense) const {
    return RowStart[Dense + 1] - RowStart[Dense];
  }

  /// Non-loop neighbours of \p Dense as dense indices, ascending.
  Span<uint32_t> neighbors(uint32_t Dense) const {
    return {NeighborDense.data() + RowStart[Dense],
            NeighborDense.data() + RowStart[Dense + 1]};
  }

  /// Edge weights parallel to neighbors(Dense).
  Span<uint64_t> neighborWeights(uint32_t Dense) const {
    return {NeighborWeights.data() + RowStart[Dense],
            NeighborWeights.data() + RowStart[Dense + 1]};
  }

  /// Dense indices ordered by degree (descending, ties by index) for
  /// hub-first traversals.
  Span<uint32_t> nodesByDegree() const {
    return {DegreeOrder.data(), DegreeOrder.data() + DegreeOrder.size()};
  }

  /// The Figure 7 score of the subgraph induced by \p Nodes (original ids,
  /// assumed distinct); identical to AffinityGraph::score but O(sum of
  /// member degrees) instead of O(|Nodes|^2) hash probes.
  double score(const std::vector<GraphNodeId> &Nodes) const;

  /// Sum of edge weights (loops included) within the subgraph induced by
  /// \p Nodes (original ids, assumed distinct); identical to
  /// AffinityGraph::subgraphWeight.
  uint64_t subgraphWeight(const std::vector<GraphNodeId> &Nodes) const;

private:
  friend class AffinityGraph;

  /// Marks \p Nodes in the scratch epoch array; returns how many were
  /// present in the snapshot.
  uint32_t markMembers(const std::vector<GraphNodeId> &Nodes) const;

  std::vector<GraphNodeId> Ids;          ///< Dense -> original id, ascending.
  std::vector<uint64_t> NodeAccesses;    ///< Per dense node.
  std::vector<uint64_t> LoopWeights;     ///< Per dense node (0 = no loop).
  std::vector<uint32_t> RowStart;        ///< CSR row offsets, size N + 1.
  std::vector<uint32_t> NeighborDense;   ///< Concatenated neighbour rows.
  std::vector<uint64_t> NeighborWeights; ///< Parallel to NeighborDense.
  std::vector<uint32_t> DegreeOrder;     ///< Degree-descending permutation.
  uint64_t Total = 0;
  uint64_t EdgeCount = 0;

  /// Scratch for score/subgraphWeight subset marking: MemberEpoch[d] ==
  /// Epoch means dense node d is in the subset of the current query.
  mutable std::vector<uint64_t> MemberEpoch;
  mutable uint64_t Epoch = 0;
};

} // namespace halo

#endif // HALO_GRAPH_ADJACENCY_H
