//===- graph/Adjacency.cpp - Frozen CSR adjacency snapshot -----------------===//

#include "graph/Adjacency.h"

#include <algorithm>

using namespace halo;

uint32_t AdjacencySnapshot::denseOf(GraphNodeId Node) const {
  auto It = std::lower_bound(Ids.begin(), Ids.end(), Node);
  if (It == Ids.end() || *It != Node)
    return InvalidDense;
  return static_cast<uint32_t>(It - Ids.begin());
}

uint32_t
AdjacencySnapshot::markMembers(const std::vector<GraphNodeId> &Nodes) const {
  if (MemberEpoch.size() < Ids.size())
    MemberEpoch.assign(Ids.size(), 0);
  ++Epoch;
  uint32_t Present = 0;
  for (GraphNodeId Node : Nodes) {
    uint32_t Dense = denseOf(Node);
    if (Dense == InvalidDense)
      continue;
    MemberEpoch[Dense] = Epoch;
    ++Present;
  }
  return Present;
}

uint64_t AdjacencySnapshot::subgraphWeight(
    const std::vector<GraphNodeId> &Nodes) const {
  markMembers(Nodes);
  uint64_t Weight = 0;
  for (GraphNodeId Node : Nodes) {
    uint32_t Dense = denseOf(Node);
    if (Dense == InvalidDense)
      continue;
    Weight += LoopWeights[Dense];
    Span<uint32_t> Row = neighbors(Dense);
    Span<uint64_t> RowWeights = neighborWeights(Dense);
    for (size_t I = 0; I < Row.size(); ++I)
      // Count each undirected member-member edge from its lower endpoint.
      if (Row[I] > Dense && MemberEpoch[Row[I]] == Epoch)
        Weight += RowWeights[I];
  }
  return Weight;
}

double AdjacencySnapshot::score(const std::vector<GraphNodeId> &Nodes) const {
  markMembers(Nodes);
  uint64_t WeightSum = 0;
  uint64_t Loops = 0;
  for (GraphNodeId Node : Nodes) {
    uint32_t Dense = denseOf(Node);
    if (Dense == InvalidDense)
      continue;
    uint64_t Loop = LoopWeights[Dense];
    WeightSum += Loop;
    if (Loop > 0)
      ++Loops;
    Span<uint32_t> Row = neighbors(Dense);
    Span<uint64_t> RowWeights = neighborWeights(Dense);
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I] > Dense && MemberEpoch[Row[I]] == Epoch)
        WeightSum += RowWeights[I];
  }
  // Like AffinityGraph::score, the pair denominator counts the requested
  // node list (absent nodes contribute pairs of weight zero).
  uint64_t Pairs = Nodes.size() * (Nodes.size() - 1) / 2;
  return affinityScoreFrom(WeightSum, Loops, Pairs);
}

AdjacencySnapshot AffinityGraph::buildAdjacency() const {
  AdjacencySnapshot Snap;
  Snap.Total = TotalAccesses;

  Snap.Ids.reserve(Accesses.size());
  for (const auto &[Node, Count] : Accesses)
    Snap.Ids.push_back(Node);
  std::sort(Snap.Ids.begin(), Snap.Ids.end());

  const uint32_t N = static_cast<uint32_t>(Snap.Ids.size());
  Snap.NodeAccesses.resize(N);
  Snap.LoopWeights.assign(N, 0);
  for (uint32_t Dense = 0; Dense < N; ++Dense)
    Snap.NodeAccesses[Dense] = Accesses.at(Snap.Ids[Dense]);

  // First pass: loop weights and per-node non-loop degrees.
  std::vector<uint32_t> Degree(N, 0);
  Snap.EdgeCount = Edges.size();
  for (const auto &[Key, Weight] : Edges) {
    (void)Weight;
    uint32_t U = Snap.denseOf(static_cast<GraphNodeId>(Key >> 32));
    uint32_t V = Snap.denseOf(static_cast<GraphNodeId>(Key & 0xffffffff));
    assert(U != AdjacencySnapshot::InvalidDense &&
           V != AdjacencySnapshot::InvalidDense &&
           "edge endpoint missing from node table");
    if (U == V)
      continue;
    ++Degree[U];
    ++Degree[V];
  }

  Snap.RowStart.resize(N + 1);
  Snap.RowStart[0] = 0;
  for (uint32_t Dense = 0; Dense < N; ++Dense)
    Snap.RowStart[Dense + 1] = Snap.RowStart[Dense] + Degree[Dense];
  Snap.NeighborDense.resize(Snap.RowStart[N]);
  Snap.NeighborWeights.resize(Snap.RowStart[N]);

  // Second pass: fill rows in ascending (U, V) edge order so each row ends
  // up sorted by dense neighbour index without a per-row sort.
  std::vector<AffinityGraph::Edge> Sorted = edges();
  std::vector<uint32_t> Fill(Snap.RowStart.begin(), Snap.RowStart.end() - 1);
  for (const AffinityGraph::Edge &E : Sorted) {
    uint32_t U = Snap.denseOf(E.U);
    uint32_t V = Snap.denseOf(E.V);
    if (U == V) {
      Snap.LoopWeights[U] = E.Weight;
      continue;
    }
    Snap.NeighborDense[Fill[U]] = V;
    Snap.NeighborWeights[Fill[U]++] = E.Weight;
    Snap.NeighborDense[Fill[V]] = U;
    Snap.NeighborWeights[Fill[V]++] = E.Weight;
  }

  Snap.DegreeOrder.resize(N);
  for (uint32_t Dense = 0; Dense < N; ++Dense)
    Snap.DegreeOrder[Dense] = Dense;
  std::sort(Snap.DegreeOrder.begin(), Snap.DegreeOrder.end(),
            [&](uint32_t A, uint32_t B) {
              if (Degree[A] != Degree[B])
                return Degree[A] > Degree[B];
              return A < B;
            });
  return Snap;
}
