//===- graph/AffinityGraph.cpp - Pairwise context affinity -----------------===//

#include "graph/AffinityGraph.h"

#include "support/BinaryIO.h"
#include "support/Dot.h"

#include <algorithm>
#include <cassert>
#include <iterator>

using namespace halo;

uint64_t AffinityGraph::edgeKey(GraphNodeId U, GraphNodeId V) {
  if (U > V)
    std::swap(U, V);
  return (uint64_t(U) << 32) | V;
}

void AffinityGraph::addAccesses(GraphNodeId Node, uint64_t Count) {
  Accesses[Node] += Count;
  TotalAccesses += Count;
}

void AffinityGraph::addEdgeWeight(GraphNodeId U, GraphNodeId V,
                                  uint64_t Weight) {
  // Edges may be recorded before their nodes accumulate accesses; create
  // the endpoints so the graph stays consistent.
  Accesses.try_emplace(U, 0);
  Accesses.try_emplace(V, 0);
  Edges[edgeKey(U, V)] += Weight;
}

uint64_t AffinityGraph::edgeWeight(GraphNodeId U, GraphNodeId V) const {
  auto It = Edges.find(edgeKey(U, V));
  return It == Edges.end() ? 0 : It->second;
}

uint64_t AffinityGraph::nodeAccesses(GraphNodeId Node) const {
  auto It = Accesses.find(Node);
  return It == Accesses.end() ? 0 : It->second;
}

std::vector<GraphNodeId> AffinityGraph::nodes() const {
  std::vector<GraphNodeId> Result;
  Result.reserve(Accesses.size());
  for (const auto &[Node, Count] : Accesses)
    Result.push_back(Node);
  std::sort(Result.begin(), Result.end());
  return Result;
}

std::vector<AffinityGraph::Edge> AffinityGraph::edges() const {
  std::vector<Edge> Result;
  Result.reserve(Edges.size());
  for (const auto &[Key, Weight] : Edges)
    Result.push_back(Edge{static_cast<GraphNodeId>(Key >> 32),
                          static_cast<GraphNodeId>(Key & 0xffffffff), Weight});
  std::sort(Result.begin(), Result.end(), [](const Edge &A, const Edge &B) {
    if (A.U != B.U)
      return A.U < B.U;
    return A.V < B.V;
  });
  return Result;
}

void AffinityGraph::removeLightEdges(uint64_t MinWeight) {
  for (auto It = Edges.begin(); It != Edges.end();) {
    if (It->second < MinWeight)
      It = Edges.erase(It);
    else
      ++It;
  }
}

void AffinityGraph::filterColdNodes(double Coverage) {
  assert(Coverage >= 0.0 && Coverage <= 1.0 && "coverage is a fraction");
  // Sort nodes hottest-first (ties broken by id for determinism).
  std::vector<std::pair<GraphNodeId, uint64_t>> Sorted(Accesses.begin(),
                                                       Accesses.end());
  std::sort(Sorted.begin(), Sorted.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });

  uint64_t Threshold =
      static_cast<uint64_t>(Coverage * static_cast<double>(TotalAccesses));
  uint64_t Running = 0;
  size_t Keep = 0;
  while (Keep < Sorted.size() && Running < Threshold)
    Running += Sorted[Keep++].second;

  std::unordered_map<GraphNodeId, uint64_t> Kept;
  uint64_t KeptTotal = 0;
  for (size_t I = 0; I < Keep; ++I) {
    Kept.insert(Sorted[I]);
    KeptTotal += Sorted[I].second;
  }
  Accesses = std::move(Kept);
  TotalAccesses = KeptTotal;

  for (auto It = Edges.begin(); It != Edges.end();) {
    GraphNodeId U = static_cast<GraphNodeId>(It->first >> 32);
    GraphNodeId V = static_cast<GraphNodeId>(It->first & 0xffffffff);
    if (!Accesses.count(U) || !Accesses.count(V))
      It = Edges.erase(It);
    else
      ++It;
  }
}

uint64_t AffinityGraph::subgraphWeight(
    const std::vector<GraphNodeId> &Nodes) const {
  uint64_t Weight = 0;
  for (size_t I = 0; I < Nodes.size(); ++I)
    for (size_t J = I; J < Nodes.size(); ++J)
      Weight += edgeWeight(Nodes[I], Nodes[J]);
  return Weight;
}

double AffinityGraph::score(const std::vector<GraphNodeId> &Nodes) const {
  // s(G) = sum(w) / (|L| + |V|(|V|-1)/2), L = loops present with w > 0.
  uint64_t WeightSum = 0;
  uint64_t Loops = 0;
  for (size_t I = 0; I < Nodes.size(); ++I) {
    uint64_t Loop = edgeWeight(Nodes[I], Nodes[I]);
    WeightSum += Loop;
    if (Loop > 0)
      ++Loops;
    for (size_t J = I + 1; J < Nodes.size(); ++J)
      WeightSum += edgeWeight(Nodes[I], Nodes[J]);
  }
  uint64_t Pairs = Nodes.size() * (Nodes.size() - 1) / 2;
  return affinityScoreFrom(WeightSum, Loops, Pairs);
}

std::string AffinityGraph::toDot(const std::vector<std::string> &LabelOf,
                                 const std::vector<int> &GroupOf,
                                 uint64_t MinEdgeWeight) const {
  // A qualitative palette akin to the paper's figure.
  static const char *Palette[] = {"#66c2a5", "#fc8d62", "#8da0cb", "#e78ac3",
                                  "#a6d854", "#ffd92f", "#e5c494", "#b3b3b3"};
  DotWriter Writer("affinity");
  uint64_t MaxWeight = 1;
  for (const auto &[Key, Weight] : Edges)
    MaxWeight = std::max(MaxWeight, Weight);

  for (GraphNodeId Node : nodes()) {
    std::string Label = Node < LabelOf.size() ? LabelOf[Node]
                                              : "ctx" + std::to_string(Node);
    int Group = Node < GroupOf.size() ? GroupOf[Node] : -1;
    std::string Color =
        Group < 0 ? "#d9d9d9" : Palette[Group % std::size(Palette)];
    Writer.addNode(std::to_string(Node), Label, Color);
  }
  for (const Edge &E : edges()) {
    if (E.Weight < MinEdgeWeight)
      continue;
    double Pen =
        1.0 + 5.0 * static_cast<double>(E.Weight) / static_cast<double>(MaxWeight);
    Writer.addEdge(std::to_string(E.U), std::to_string(E.V), Pen);
  }
  return Writer.str();
}

void AffinityGraph::save(BinaryWriter &W) const {
  std::vector<GraphNodeId> Ordered = nodes();
  W.varint(Ordered.size());
  for (GraphNodeId Node : Ordered) {
    W.varint(Node);
    W.varint(nodeAccesses(Node));
  }
  std::vector<Edge> OrderedEdges = edges();
  W.varint(OrderedEdges.size());
  for (const Edge &E : OrderedEdges) {
    W.varint(E.U);
    W.varint(E.V);
    W.varint(E.Weight);
  }
  W.varint(TotalAccesses);
}

AffinityGraph AffinityGraph::load(BinaryReader &R) {
  AffinityGraph Graph;
  uint64_t NumNodes = R.varint();
  for (uint64_t I = 0; I < NumNodes; ++I) {
    uint64_t Node = R.varint();
    if (Node > UINT32_MAX)
      throw SerializationError("affinity graph: node id out of range");
    uint64_t Count = R.varint();
    Graph.Accesses[static_cast<GraphNodeId>(Node)] = Count;
    Graph.TotalAccesses += Count;
  }
  uint64_t NumEdges = R.varint();
  for (uint64_t I = 0; I < NumEdges; ++I) {
    uint64_t U = R.varint();
    uint64_t V = R.varint();
    if (U > UINT32_MAX || V > UINT32_MAX)
      throw SerializationError("affinity graph: edge endpoint out of range");
    uint64_t Weight = R.varint();
    Graph.Edges[edgeKey(static_cast<GraphNodeId>(U),
                        static_cast<GraphNodeId>(V))] = Weight;
  }
  // The total is redundant with the node sum by construction; a mismatch
  // means the entry was not produced by save().
  if (R.varint() != Graph.TotalAccesses)
    throw SerializationError("affinity graph: total access count mismatch");
  return Graph;
}
