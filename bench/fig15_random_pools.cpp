//===- bench/fig15_random_pools.cpp - Figure 15 -------------------------------===//
//
// Regenerates Figure 15: execution-time change under "an allocator that
// randomly assigns small objects to one of four bump allocated pools" --
// a variant of HALO with an extremely poor grouping algorithm. Benchmarks
// hurt by it are exactly the placement-sensitive ones HALO helps.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace halo;

int main() {
  Report R("Figure 15: speedup under the random four-pool allocator "
           "(median of " +
           std::to_string(bench::trials()) + " trials)");
  R.setColumns({"benchmark", "speedup", "sensitive?"});
  for (const std::string &Name : workloadNames()) {
    Evaluation Eval(paperSetup(Name));
    auto Base = Eval.measureTrials(AllocatorKind::Jemalloc, Scale::Ref,
                                   bench::trials());
    auto Random = Eval.measureTrials(AllocatorKind::RandomPools, Scale::Ref,
                                     bench::trials());
    double Speedup = percentImprovement(Evaluation::medianSeconds(Base),
                                        Evaluation::medianSeconds(Random));
    R.addRow({Name, formatPercent(Speedup),
              Speedup < -3.0 ? "yes" : "no"});
  }
  R.addNote("the paper reports slowdowns of up to ~60% for the placement-"
            "sensitive benchmarks and no change for the insensitive ones "
            "(roms et al.), aligning with where HALO helps");
  R.print();
  return 0;
}
