//===- bench/roms_streams_vs_nodes.cpp - Section 5.2 representation claim -----===//
//
// Reproduces the Section 5.2 analysis of roms: "While HALO's affinity graph
// can represent over 90% of all salient accesses in this program using only
// 31 nodes, the hot-data-stream-based approach requires over 150,000
// streams" -- object-level streams scatter context-level regularity, a
// fundamental representation problem of [11].
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace halo;

int main() {
  Report R("Section 5.2: representation sizes on roms (test input)");
  R.setColumns({"representation", "size", "covers"});

  Evaluation Eval(paperSetup("roms"));
  const HaloArtifacts &Halo = Eval.haloArtifacts();
  const HdsArtifacts &Hds = Eval.hdsArtifacts();

  R.addRow({"HALO affinity graph nodes",
            std::to_string(Halo.Graph.numNodes()),
            "90% of salient accesses"});
  R.addRow({"HDS grammar rules",
            std::to_string(Hds.Analysis.GrammarRules), "whole trace"});
  R.addRow({"HDS candidate streams",
            std::to_string(Hds.Analysis.CandidateStreams), "-"});
  R.addRow({"HDS hot streams selected",
            std::to_string(Hds.Analysis.Streams.size()),
            "90% coverage target"});
  R.addRow({"HDS trace length", std::to_string(Hds.Analysis.TraceLength),
            "-"});
  R.addNote("paper: 31 graph nodes vs >150,000 streams; the orders of "
            "magnitude (tens vs many thousands) are the reproduced claim");
  R.print();

  // The same contrast on a prior-work benchmark, where both stay small.
  Evaluation Health(paperSetup("health"));
  Report R2("Same comparison on health (regular, HDS-friendly)");
  R2.setColumns({"representation", "size"});
  R2.addRow({"HALO affinity graph nodes",
             std::to_string(Health.haloArtifacts().Graph.numNodes())});
  R2.addRow({"HDS hot streams selected",
             std::to_string(Health.hdsArtifacts().Analysis.Streams.size())});
  R2.print();
  return 0;
}
