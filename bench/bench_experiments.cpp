//===- bench/bench_experiments.cpp - Plan scheduler vs sequential sweeps -----===//
//
// The cross-dimension scheduling bench: a mixed evaluation matrix
// (2 benchmarks x 2 machines x 3 allocator kinds) run two ways --
//
//   plan:       one buildPlan/runPlan call whose record and replay stages
//               span every benchmark and machine at once, and
//   sequential: the pre-plan shape, one sweepMachines call per benchmark
//               back to back (each parallel internally, but the pool
//               drains and refills at every benchmark boundary).
//
// Both produce bit-identical cells (asserted); the rows record the
// wall-clock of each scheduling shape. On a single-core host the two
// collapse to the same work and the rows document parity; the win needs
// cores, where the plan keeps all workers busy across the whole matrix.
//
// A second pair of rows benches the content-addressed artifact store
// (store/ArtifactStore.h): the same plan runs twice against a fresh temp
// store -- "store_cold" records and publishes, "store_warm" re-plans
// against the populated store, must schedule zero record/materialise
// tasks (asserted), and replays bit-identically (asserted). The warm
// row's speedup_percent is its improvement over the cold row: the
// record/profile work the store deleted from the DAG.
//
// Rows append to BENCH_machines.json ({"bench", "machine", "kind",
// "wall_ms", "trials", ...}): bench "experiments_mixed", machine the
// matrix shape, kind "plan" / "sequential" / "store_cold" /
// "store_warm"; the plan row's speedup_percent is its improvement over
// the sequential row.
//
//   bench_experiments [--append] [BENCH_machines.json]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "eval/Experiment.h"
#include "store/ArtifactStore.h"
#include "support/Executor.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <dirent.h>
#include <unistd.h>

using namespace halo;

namespace {

double nowMs() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             Clock::now().time_since_epoch())
      .count();
}

const char *const Benchmarks[] = {"health", "ft"};
const char *const Machines[] = {"xeon-w2195", "mobile"};

struct OutRow {
  std::string Kind;
  double WallMs = 0.0;
  int Trials = 0;
  double SpeedupPercent = 0.0;
};

/// Renders the rows in BENCH_machines.json's schema and merges them into
/// the file via the shared bench::writeJsonRows (the sweep owns the
/// file's fresh write, we append).
void writeJson(const std::string &Path, const std::vector<OutRow> &Rows,
               bool Append) {
  std::string MatrixName = std::string(Benchmarks[0]) + "+" + Benchmarks[1] +
                           "/" + Machines[0] + "+" + Machines[1];
  std::vector<std::string> Lines;
  Lines.reserve(Rows.size());
  for (const OutRow &R : Rows) {
    char Line[256];
    int N = std::snprintf(
        Line, sizeof(Line),
        "  {\"bench\": \"experiments_mixed\", \"machine\": \"%s\", "
        "\"kind\": \"%s\", \"wall_ms\": %.6f, \"trials\": %d, "
        "\"l1d_misses\": 0, \"tlb_misses\": 0, "
        "\"speedup_percent\": %.4f}",
        MatrixName.c_str(), R.Kind.c_str(), R.WallMs, R.Trials,
        R.SpeedupPercent);
    if (N < 0 || N >= static_cast<int>(sizeof(Line))) {
      // A truncated fragment would merge into the trajectory file as
      // malformed JSON with no error.
      std::fprintf(stderr, "bench_experiments: row too long\n");
      std::exit(1);
    }
    Lines.push_back(Line);
  }
  bench::writeJsonRows(Path, Lines, Append);
}

void expectIdentical(const RunMetrics &A, const RunMetrics &B,
                     const char *Where) {
  if (A.Cycles != B.Cycles || A.Mem.L1Misses != B.Mem.L1Misses ||
      A.Mem.TlbMisses != B.Mem.TlbMisses) {
    std::fprintf(stderr,
                 "bench_experiments: plan and sequential sweeps diverged "
                 "(%s)\n",
                 Where);
    std::exit(1);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  bool Append = false;
  std::string OutPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--append") == 0)
      Append = true;
    else
      OutPath = Argv[I];
  }

  const int Trials = bench::trials();
  std::vector<const MachineConfig *> MachinePtrs;
  for (const char *Name : Machines) {
    const MachineConfig *M = findMachine(Name);
    if (!M) {
      // A null entry would silently mean "the setup's machine" to the
      // plan; a renamed preset must fail loudly instead.
      std::fprintf(stderr, "bench_experiments: unknown machine preset %s\n",
                   Name);
      return 1;
    }
    MachinePtrs.push_back(M);
  }

  // Plan shape: the whole matrix in one spec; record and replay tasks
  // span both benchmarks and both machines.
  double PlanStart = nowMs();
  ExperimentSpec Spec;
  Spec.Benchmarks.assign(std::begin(Benchmarks), std::end(Benchmarks));
  Spec.Machines = MachinePtrs;
  Spec.S = Scale::Ref;
  Spec.Trials = Trials;
  ExperimentPlan Plan = buildPlan({Spec});
  ResultSet Results = runPlan(Plan, /*Jobs=*/0);
  double PlanMs = nowMs() - PlanStart;

  // Sequential shape: one sweepMachines call per benchmark, back to back.
  double SeqStart = nowMs();
  std::vector<std::vector<SweepCell>> Sequential;
  for (const char *Name : Benchmarks) {
    Evaluation Eval(paperSetup(Name));
    Sequential.push_back(sweepMachines(Eval, MachinePtrs, Trials, Scale::Ref,
                                       /*SeedBase=*/100, /*Jobs=*/0));
  }
  double SeqMs = nowMs() - SeqStart;

  // Scheduling must never change the numbers: every sequential cell has a
  // bit-identical twin in the plan's ResultSet.
  static const AllocatorKind Kinds[] = {
      AllocatorKind::Jemalloc, AllocatorKind::Hds, AllocatorKind::Halo};
  for (size_t B = 0; B < Sequential.size(); ++B)
    for (size_t M = 0; M < MachinePtrs.size(); ++M)
      for (size_t K = 0; K < 3; ++K) {
        const SweepCell &Cell = Sequential[B][M * 3 + K];
        const ResultSet::Cell *Twin = Results.find(
            Benchmarks[B], MachinePtrs[M]->Name, Kinds[K], Scale::Ref);
        if (!Twin || Twin->Runs.size() != Cell.Runs.size()) {
          std::fprintf(stderr, "bench_experiments: missing plan cell\n");
          return 1;
        }
        for (size_t T = 0; T < Cell.Runs.size(); ++T)
          expectIdentical(Cell.Runs[T], Twin->Runs[T], Benchmarks[B]);
      }

  // Store shape: the same plan twice against a fresh temp store -- the
  // first run records cold and publishes, the second must schedule zero
  // record/materialise tasks and replay bit-identically from the store.
  char StoreTemplate[] = "/tmp/halo_bench_store.XXXXXX";
  const char *StoreDir = mkdtemp(StoreTemplate);
  if (!StoreDir) {
    std::fprintf(stderr, "bench_experiments: mkdtemp failed\n");
    return 1;
  }
  double ColdMs, WarmMs;
  {
    ArtifactStore Store((std::string(StoreDir)));
    double ColdStart = nowMs();
    ExperimentPlan ColdPlan = buildPlan({Spec}, {}, &Store);
    ResultSet ColdResults = runPlan(ColdPlan, /*Jobs=*/0);
    ColdMs = nowMs() - ColdStart;

    double WarmStart = nowMs();
    ExperimentPlan WarmPlan = buildPlan({Spec}, {}, &Store);
    if (WarmPlan.numRecordings() != 0 || WarmPlan.numArtifactTasks() != 0 ||
        WarmPlan.numProfileRecordings() != 0) {
      // A warm plan that still records would silently bench the cold path
      // twice and report a fake parity.
      std::fprintf(stderr,
                   "bench_experiments: warm plan still schedules %zu "
                   "recording(s), %zu artifact task(s), %zu profile(s)\n",
                   WarmPlan.numRecordings(), WarmPlan.numArtifactTasks(),
                   WarmPlan.numProfileRecordings());
      return 1;
    }
    ResultSet WarmResults = runPlan(WarmPlan, /*Jobs=*/0);
    WarmMs = nowMs() - WarmStart;

    if (WarmResults.size() != ColdResults.size() ||
        WarmResults.size() != Results.size()) {
      std::fprintf(stderr, "bench_experiments: store runs lost cells\n");
      return 1;
    }
    for (size_t C = 0; C < ColdResults.size(); ++C) {
      for (size_t T = 0; T < ColdResults.cells()[C].Runs.size(); ++T) {
        expectIdentical(ColdResults.cells()[C].Runs[T],
                        WarmResults.cells()[C].Runs[T], "store warm");
        // And the store changed nothing vs the storeless plan above.
        expectIdentical(Results.cells()[C].Runs[T],
                        ColdResults.cells()[C].Runs[T], "store cold");
      }
    }
  }
  // Remove the temp store; the rows, not the entries, are the artifact.
  if (DIR *D = opendir(StoreDir)) {
    while (struct dirent *E = readdir(D)) {
      std::string Name = E->d_name;
      if (Name != "." && Name != "..")
        unlink((std::string(StoreDir) + "/" + Name).c_str());
    }
    closedir(D);
  }
  rmdir(StoreDir);

  std::vector<OutRow> Rows(4);
  Rows[0] = {"plan", PlanMs, Trials,
             percentImprovement(SeqMs, PlanMs)};
  Rows[1] = {"sequential", SeqMs, Trials, 0.0};
  Rows[2] = {"store_cold", ColdMs, Trials, 0.0};
  Rows[3] = {"store_warm", WarmMs, Trials,
             percentImprovement(ColdMs, WarmMs)};

  Report Table("Mixed sweep scheduling: one plan vs back-to-back sweeps");
  Table.setColumns({"shape", "wall_ms", "trials", "vs sequential"});
  for (const OutRow &R : Rows)
    Table.addRow({R.Kind, formatDouble(R.WallMs, 3),
                  std::to_string(R.Trials),
                  formatPercent(R.SpeedupPercent, 2)});
  Table.addNote("2 benchmarks x 2 machines x 3 kinds, jobs=0 (hardware "
                "concurrency), bit-identical cells asserted; the plan's "
                "cross-dimension stages need cores to pull ahead");
  Table.addNote("store_cold populates a fresh artifact store; store_warm "
                "re-plans against it, schedules zero record/materialise "
                "tasks (asserted), and replays bit-identically");
  Table.print();

  if (!OutPath.empty()) {
    writeJson(OutPath, Rows, Append);
    std::printf("\n%s %s (%zu rows)\n", Append ? "appended to" : "wrote",
                OutPath.c_str(), Rows.size());
  }
  return 0;
}
