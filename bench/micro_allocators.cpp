//===- bench/micro_allocators.cpp - Allocator micro-costs ---------------------===//
//
// google-benchmark microbenchmarks of the allocator implementations
// themselves (host-time costs of the simulator's data structures, not
// simulated cycles): size-class baseline, boundary-tag baseline, and
// HALO's group allocator fast path.
//
//===----------------------------------------------------------------------===//

#include "core/GroupAllocator.h"
#include "mem/BoundaryTagAllocator.h"
#include "mem/SizeClassAllocator.h"

#include <benchmark/benchmark.h>

#include <vector>

using namespace halo;

namespace {

void sizeClassAllocFree(benchmark::State &State) {
  SizeClassAllocator A;
  std::vector<uint64_t> Addrs;
  Addrs.reserve(1024);
  for (auto _ : State) {
    for (int I = 0; I < 1024; ++I)
      Addrs.push_back(A.allocate(AllocRequest{32, 0}));
    for (uint64_t Addr : Addrs)
      A.deallocate(Addr);
    Addrs.clear();
  }
  State.SetItemsProcessed(State.iterations() * 2048);
}
BENCHMARK(sizeClassAllocFree);

void boundaryTagAllocFree(benchmark::State &State) {
  BoundaryTagAllocator A;
  std::vector<uint64_t> Addrs;
  Addrs.reserve(1024);
  for (auto _ : State) {
    for (int I = 0; I < 1024; ++I)
      Addrs.push_back(A.allocate(AllocRequest{32, 0}));
    for (uint64_t Addr : Addrs)
      A.deallocate(Addr);
    Addrs.clear();
  }
  State.SetItemsProcessed(State.iterations() * 2048);
}
BENCHMARK(boundaryTagAllocFree);

struct OneGroupPolicy : GroupPolicy {
  int32_t selectGroup(const AllocRequest &) const override { return 0; }
  uint32_t numGroups() const override { return 1; }
};

void groupAllocatorBumpPath(benchmark::State &State) {
  SizeClassAllocator Backing;
  OneGroupPolicy Policy;
  GroupAllocator GA(Backing, Policy);
  std::vector<uint64_t> Addrs;
  Addrs.reserve(1024);
  for (auto _ : State) {
    for (int I = 0; I < 1024; ++I)
      Addrs.push_back(GA.allocate(AllocRequest{32, 0}));
    for (uint64_t Addr : Addrs)
      GA.deallocate(Addr);
    Addrs.clear();
  }
  State.SetItemsProcessed(State.iterations() * 2048);
}
BENCHMARK(groupAllocatorBumpPath);

void selectorMatching(benchmark::State &State) {
  GroupStateVector Vec(64);
  Vec.set(3);
  Vec.set(17);
  CompiledSelector Sel;
  Sel.Masks.push_back({(uint64_t(1) << 3) | (uint64_t(1) << 17)});
  for (auto _ : State) {
    benchmark::DoNotOptimize(Sel.matches(Vec));
  }
}
BENCHMARK(selectorMatching);

} // namespace

BENCHMARK_MAIN();
