//===- bench/table1_fragmentation.cpp - Table 1 -------------------------------===//
//
// Regenerates Table 1: "Fragmentation behaviour of grouped objects at peak
// memory usage" -- the relationship between live and resident data in the
// specialised allocator, per benchmark.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace halo;

int main() {
  Report R("Table 1: fragmentation of grouped objects at peak usage");
  R.setColumns({"benchmark", "frag (%)", "frag (bytes)", "paper (%)",
                "paper (bytes)"});
  // The paper lists the nine benchmarks "where it could be easily
  // examined", sorted by fragmentation percentage; we print the same set
  // in the same order, with measured values alongside.
  for (const bench::PaperFragRow &Paper : bench::paperTable1()) {
    Evaluation Eval(paperSetup(Paper.Benchmark));
    RunMetrics M = Eval.measure(AllocatorKind::Halo, Scale::Ref, 100);
    R.addRow({Paper.Benchmark, formatPercent(M.Frag.wastedPercent()),
              formatBytes(static_cast<double>(M.Frag.wastedBytes())),
              formatPercent(Paper.Percent), Paper.Bytes});
  }
  R.addNote("percentages can be large while absolute waste stays small: "
            "grouped objects are a small fraction of all allocations");
  R.print();
  return 0;
}
