//===- bench/ablation_constraints.cpp - Section 4.1 design choices ------------===//
//
// Ablates the affinity-queue constraints of Section 4.1 (deduplication,
// no double counting, co-allocatability) on the health and povray models:
// with a constraint disabled, how do the groups -- and the resulting
// performance -- change? The co-allocatability constraint is the paper's
// guard against groups that cannot actually be co-located at runtime.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace halo;

namespace {

double haloSpeedup(const std::string &Name, bool Dedup, bool NoDouble,
                   bool CoAlloc, uint64_t &GroupCount) {
  BenchmarkSetup Setup = paperSetup(Name);
  Setup.Halo.Profile.Dedup = Dedup;
  Setup.Halo.Profile.NoDoubleCount = NoDouble;
  Setup.Halo.Profile.CoAllocatability = CoAlloc;
  Evaluation Eval(Setup);
  GroupCount = Eval.haloArtifacts().Groups.size();
  RunMetrics Base = Eval.measure(AllocatorKind::Jemalloc, Scale::Ref, 100);
  RunMetrics Halo = Eval.measure(AllocatorKind::Halo, Scale::Ref, 100);
  return percentImprovement(Base.Seconds, Halo.Seconds);
}

} // namespace

int main() {
  for (const std::string &Name : {std::string("health"), std::string("omnetpp"),
                                  std::string("roms")}) {
    Report R("Affinity constraint ablation: " + Name);
    R.setColumns({"configuration", "groups", "HALO speedup"});
    struct Config {
      const char *Label;
      bool Dedup, NoDouble, CoAlloc;
    };
    const Config Configs[] = {
        {"all constraints (paper)", true, true, true},
        {"no deduplication", false, true, true},
        {"no double-count guard", true, false, true},
        {"no co-allocatability", true, true, false},
    };
    for (const Config &C : Configs) {
      uint64_t Groups = 0;
      double Speedup = haloSpeedup(Name, C.Dedup, C.NoDouble, C.CoAlloc,
                                   Groups);
      R.addRow({C.Label, std::to_string(Groups), formatPercent(Speedup)});
    }
    R.addNote("dropping co-allocatability admits groups whose members "
              "cannot actually be placed together (e.g. randomly-accessed "
              "persistent pools), diluting or reversing gains");
    R.print();
    std::printf("\n");
  }
  return 0;
}
