#!/usr/bin/env bash
# Runs the machine-readable benches and rewrites the perf trajectory files
# at the repo root:
#   BENCH_pipeline.json  {"bench", "nodes", "edges", "wall_ms", "trials"}
#     bench_grouping_scale writes it fresh; bench_replay appends its
#     record/replay rows: replay_record_* / replay_direct_* /
#     replay_replay_* (a per-event replay loop kept in the bench as the
#     baseline) / replay_batched_* (the in-tree batched Runtime::replay --
#     the row set that tracks the batching win per PR) plus the
#     out-of-core trace_stream_* rows (record-to-disk, mapped vs in-RAM
#     replay, sharded-from-blocks; each carries an "rss_kb" peak-RSS
#     column, and HALO_BENCH_TRACE_EVENTS sizes the synthetic trace).
#   BENCH_machines.json  {"bench", "machine", "kind", "wall_ms", "trials"}
#     (+ l1d_misses / tlb_misses / speedup_percent detail fields), the
#     halo_cli cross-machine sweep: jemalloc/hds/halo medians on every
#     machine preset. bench_experiments appends its experiments_mixed
#     rows: the same mixed matrix scheduled as one experiment plan vs
#     back-to-back sweepMachines calls (plan / sequential kinds).
#     bench_serve appends its serve rows: the matrix run locally vs
#     streamed through an in-process halo serve daemon, cold and warm
#     (serve_local / serve_daemon / serve_daemon_warm kinds), all three
#     bit-identical by assertion.
# so successive PRs can track the perf trajectory.
#
# Usage: bench/run_benches.sh [build-dir]   (default: build)
# HALO_BENCH_TRIALS overrides the per-config trial count.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${BUILD_DIR:-build}}"
case "$BUILD" in
  /*) ;;                 # Absolute build dir: use as-is.
  *) BUILD="$ROOT/$BUILD" ;;
esac

for Bench in bench/bench_grouping_scale bench/bench_replay \
             bench/bench_experiments bench/bench_serve examples/halo_cli; do
  if [[ ! -x "$BUILD/$Bench" ]]; then
    echo "error: $BUILD/$Bench not built; run: cmake -B $BUILD -S $ROOT && cmake --build $BUILD -j" >&2
    exit 1
  fi
done

TRIALS="${HALO_BENCH_TRIALS:-3}"

"$BUILD/bench/bench_grouping_scale" "$ROOT/BENCH_pipeline.json"
"$BUILD/bench/bench_replay" --append "$ROOT/BENCH_pipeline.json"
echo "BENCH_pipeline.json updated:"
cat "$ROOT/BENCH_pipeline.json"

# Cross-machine sweep on two contrasting benchmarks (health: TLB-bound
# pointer chasing; xalanc: deep call chains). One experiment plan:
# traces record once per benchmark and replay on every machine preset.
"$BUILD/examples/halo_cli" sweep health xalanc --trials "$TRIALS" \
    --out "$ROOT/BENCH_machines.json"

# Mixed-matrix scheduling row: the plan scheduler vs back-to-back
# per-benchmark sweeps (bit-identical cells; the win needs cores).
"$BUILD/bench/bench_experiments" --append "$ROOT/BENCH_machines.json"

# Daemon overhead rows: the same matrix served through halo serve, cold
# and warm, vs a local runPlan ("served = local" asserted bit-exact).
"$BUILD/bench/bench_serve" --append "$ROOT/BENCH_machines.json"
echo "BENCH_machines.json updated:"
cat "$ROOT/BENCH_machines.json"
