#!/usr/bin/env bash
# Runs the machine-readable benches and rewrites BENCH_pipeline.json at the
# repo root in the stable schema
#   {"bench", "nodes", "edges", "wall_ms", "trials"}
# so successive PRs can track the perf trajectory. bench_grouping_scale
# writes the file fresh; bench_replay appends its record/replay rows.
#
# Usage: bench/run_benches.sh [build-dir]   (default: build)
# HALO_BENCH_TRIALS overrides the per-config trial count.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${BUILD_DIR:-build}}"
case "$BUILD" in
  /*) ;;                 # Absolute build dir: use as-is.
  *) BUILD="$ROOT/$BUILD" ;;
esac

for Bench in bench_grouping_scale bench_replay; do
  if [[ ! -x "$BUILD/bench/$Bench" ]]; then
    echo "error: $BUILD/bench/$Bench not built; run: cmake -B $BUILD -S $ROOT && cmake --build $BUILD -j" >&2
    exit 1
  fi
done

"$BUILD/bench/bench_grouping_scale" "$ROOT/BENCH_pipeline.json"
"$BUILD/bench/bench_replay" --append "$ROOT/BENCH_pipeline.json"
echo "BENCH_pipeline.json updated:"
cat "$ROOT/BENCH_pipeline.json"
