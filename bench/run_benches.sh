#!/usr/bin/env bash
# Runs the pipeline scale bench (and any future machine-readable benches)
# and writes BENCH_pipeline.json at the repo root in the stable schema
#   {"bench", "nodes", "edges", "wall_ms", "trials"}
# so successive PRs can track the perf trajectory.
#
# Usage: bench/run_benches.sh [build-dir]   (default: build)
# HALO_BENCH_TRIALS overrides the per-config trial count.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${BUILD_DIR:-build}}"
case "$BUILD" in
  /*) ;;                 # Absolute build dir: use as-is.
  *) BUILD="$ROOT/$BUILD" ;;
esac
BIN="$BUILD/bench/bench_grouping_scale"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built; run: cmake -B $BUILD -S $ROOT && cmake --build $BUILD -j" >&2
  exit 1
fi

"$BIN" "$ROOT/BENCH_pipeline.json"
echo "BENCH_pipeline.json updated:"
cat "$ROOT/BENCH_pipeline.json"
