//===- bench/baseline_allocators.cpp - Section 5.1 baseline claim -------------===//
//
// Reproduces the Section 5.1 methodology claim: "Initial experiments show
// that [jemalloc] universally outperforms ptmalloc2 from glibc 2.27,
// reducing L1 data-cache misses by as much as 32%, and thus provides a
// more aggressive baseline against which to measure the benefits of
// cache-conscious heap-data placement."
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace halo;

int main() {
  Report R("Section 5.1: jemalloc vs ptmalloc2 baselines (median of " +
           std::to_string(bench::trials()) + " trials)");
  R.setColumns({"benchmark", "L1D miss reduction", "time improvement"});
  double MaxMiss = 0.0;
  int Wins = 0, Total = 0;
  for (const std::string &Name : workloadNames()) {
    Evaluation Eval(paperSetup(Name));
    auto Pt = Eval.measureTrials(AllocatorKind::Ptmalloc, Scale::Ref,
                                 bench::trials());
    auto Je = Eval.measureTrials(AllocatorKind::Jemalloc, Scale::Ref,
                                 bench::trials());
    double Miss = percentImprovement(Evaluation::medianL1Misses(Pt),
                                     Evaluation::medianL1Misses(Je));
    double Time = percentImprovement(Evaluation::medianSeconds(Pt),
                                     Evaluation::medianSeconds(Je));
    MaxMiss = std::max(MaxMiss, Miss);
    ++Total;
    Wins += Miss >= 0.0;
    R.addRow({Name, formatPercent(Miss), formatPercent(Time)});
  }
  R.addNote("jemalloc reduces L1D misses on " + std::to_string(Wins) + "/" +
            std::to_string(Total) + " benchmarks, by up to " +
            formatPercent(MaxMiss) + " (paper: up to 32%)");
  R.print();
  return 0;
}
