//===- bench/bench_grouping_scale.cpp - Pipeline scale bench -------------------===//
//
// Measures the profile->graph->group pipeline on synthetic affinity graphs
// far larger than the paper's workloads produce (10k-100k nodes, power-law
// degree and weight distributions), comparing the incremental buildGroups
// against the Figure 6 reference transliteration and timing the supporting
// hot paths (CSR snapshot construction, affinity-queue pushes, live-object
// lookups).
//
// Emits a machine-readable trajectory file (default: BENCH_pipeline.json,
// override with argv[1]) as a JSON array of rows
//   {"bench": ..., "nodes": ..., "edges": ..., "wall_ms": ..., "trials": ...}
// so subsequent PRs can track the perf trend. wall_ms is the median across
// trials (HALO_BENCH_TRIALS overrides the trial count).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "graph/Adjacency.h"
#include "group/Grouping.h"
#include "profile/AffinityQueue.h"
#include "profile/LiveObjectMap.h"
#include "support/Executor.h"
#include "support/Rng.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace halo;

namespace {

struct BenchRow {
  std::string Bench;
  uint64_t Nodes;
  uint64_t Edges;
  double WallMs;
  int Trials;
};

int trials() {
  if (const char *Env = std::getenv("HALO_BENCH_TRIALS"))
    return std::max(1, std::atoi(Env));
  return 3;
}

double nowMs() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             Clock::now().time_since_epoch())
      .count();
}

/// Runs \p Fn \p Trials times and returns the median wall-clock ms.
template <typename Fn> double medianMs(int Trials, Fn &&Run) {
  std::vector<double> Times;
  Times.reserve(Trials);
  for (int T = 0; T < Trials; ++T) {
    double Start = nowMs();
    Run();
    Times.push_back(nowMs() - Start);
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

/// A synthetic affinity graph with power-law structure: hub nodes attract
/// most edges (preferential attachment to low ids), access counts and edge
/// weights follow heavy-tailed distributions, and a small fraction of nodes
/// carry loop edges (two objects of one context accessed contemporaneously).
AffinityGraph powerLawGraph(uint32_t Nodes, uint64_t Seed) {
  Rng Random(Seed);
  AffinityGraph G;
  for (uint32_t Node = 0; Node < Nodes; ++Node) {
    uint64_t Accesses =
        1 + static_cast<uint64_t>(std::pow(Random.nextDouble() + 1e-9, -0.7));
    G.addAccesses(Node, std::min<uint64_t>(Accesses, 100000));

    uint32_t Degree =
        1 + static_cast<uint32_t>(std::pow(Random.nextDouble() + 1e-9, -0.6));
    Degree = std::min(Degree, 40u);
    for (uint32_t E = 0; E < Degree; ++E) {
      // Preferential attachment: quadratic bias toward low (hub) ids.
      double R = Random.nextDouble();
      uint32_t Target = static_cast<uint32_t>(R * R * Nodes);
      if (Target >= Nodes)
        Target = Nodes - 1;
      if (Target == Node)
        continue;
      uint64_t Weight = 2 + Random.nextBelow(64);
      G.addEdgeWeight(Node, Target, Weight);
    }
    // Loop edges concentrate on a bounded set of hot contexts rather than
    // growing with graph size.
    if (Random.nextBool(std::min(0.02, 200.0 / Nodes)))
      G.addEdgeWeight(Node, Node, 2 + Random.nextBelow(32));
  }
  return G;
}

bool sameGroups(const std::vector<Group> &A, const std::vector<Group> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I].Members != B[I].Members || A[I].Weight != B[I].Weight ||
        A[I].Accesses != B[I].Accesses)
      return false;
  return true;
}

/// Renders the rows and hands them to the shared writer (fresh write: this
/// bench owns BENCH_pipeline.json's array; bench_replay appends after).
void writeJson(const std::string &Path, const std::vector<BenchRow> &Rows) {
  std::vector<std::string> Lines;
  Lines.reserve(Rows.size());
  for (const BenchRow &R : Rows) {
    char Line[256];
    int N = std::snprintf(
        Line, sizeof(Line),
        "  {\"bench\": \"%s\", \"nodes\": %llu, \"edges\": %llu, "
        "\"wall_ms\": %.3f, \"trials\": %d}",
        R.Bench.c_str(), static_cast<unsigned long long>(R.Nodes),
        static_cast<unsigned long long>(R.Edges), R.WallMs, R.Trials);
    if (N < 0 || N >= static_cast<int>(sizeof(Line))) {
      std::fprintf(stderr, "bench row for %s too long\n", R.Bench.c_str());
      std::exit(1);
    }
    Lines.push_back(Line);
  }
  bench::writeJsonRows(Path, Lines, /*Append=*/false);
}

} // namespace

int main(int Argc, char **Argv) {
  const std::string OutPath = Argc > 1 ? Argv[1] : "BENCH_pipeline.json";
  // Fail on an unwritable output path now, not after minutes of benching.
  if (FILE *Probe = std::fopen(OutPath.c_str(), "a"))
    std::fclose(Probe);
  else {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  const int Trials = trials();
  std::vector<BenchRow> Rows;

  GroupingOptions Options;
  Options.MinEdgeWeight = 4;
  Options.GroupWeightThreshold = 0.0005;
  Options.MaxGroupMembers = 8;

  std::printf("pipeline scale bench (trials=%d)\n\n", Trials);

  //===--------------------------------------------------------------------===//
  // Grouping: reference vs incremental on the 10k-node graph, incremental
  // alone on larger graphs (the reference is too slow beyond 10k).
  //===--------------------------------------------------------------------===//

  {
    const uint32_t N = 10000;
    AffinityGraph G = powerLawGraph(N, 42);
    std::vector<Group> Ref, Opt;
    double RefMs =
        medianMs(1, [&] { Ref = buildGroupsReference(G, Options); });
    double OptMs = medianMs(Trials, [&] { Opt = buildGroups(G, Options); });
    if (!sameGroups(Ref, Opt)) {
      std::fprintf(stderr,
                   "FATAL: optimized grouping diverged from reference\n");
      return 1;
    }
    Rows.push_back({"grouping_reference", N, G.numEdges(), RefMs, 1});
    Rows.push_back({"grouping_optimized", N, G.numEdges(), OptMs, Trials});
    std::printf("grouping %6u nodes %7llu edges: reference %10.1f ms, "
                "optimized %8.2f ms  (%.0fx, %zu groups, outputs identical)\n",
                N, static_cast<unsigned long long>(G.numEdges()), RefMs, OptMs,
                RefMs / std::max(OptMs, 1e-6), Opt.size());
  }

  for (uint32_t N : {30000u, 100000u}) {
    AffinityGraph G = powerLawGraph(N, 42 + N);
    // The absolute weight threshold scales with total accesses; zero it so
    // the larger graphs still exercise the group-keeping path.
    GroupingOptions ScaleOptions = Options;
    ScaleOptions.GroupWeightThreshold = 0.0;
    std::vector<Group> Opt;
    double OptMs =
        medianMs(Trials, [&] { Opt = buildGroups(G, ScaleOptions); });
    Rows.push_back({"grouping_optimized", N, G.numEdges(), OptMs, Trials});
    std::printf("grouping %6u nodes %7llu edges: optimized %8.2f ms "
                "(%zu groups)\n",
                N, static_cast<unsigned long long>(G.numEdges()), OptMs,
                Opt.size());
  }

  //===--------------------------------------------------------------------===//
  // Sharded grouping: a many-component graph (disjoint power-law islands,
  // the shape component partitioning exploits) grouped serially and via
  // buildGroupsParallel at several worker counts. Output identity against
  // the serial path is asserted in-bench -- a divergence is fatal, not a
  // slower row.
  //===--------------------------------------------------------------------===//

  {
    const uint32_t Components = 512, NodesPer = 64;
    const uint32_t N = Components * NodesPer;
    Rng Random(4242);
    AffinityGraph G;
    for (uint32_t C = 0; C < Components; ++C) {
      const uint32_t Base = C * NodesPer;
      for (uint32_t Node = 0; Node < NodesPer; ++Node) {
        G.addAccesses(Base + Node, 1 + Random.nextBelow(1000));
        uint32_t Degree = 1 + static_cast<uint32_t>(Random.nextBelow(6));
        for (uint32_t E = 0; E < Degree; ++E) {
          // Hub bias within the island; never an edge across islands.
          double R = Random.nextDouble();
          uint32_t Target = static_cast<uint32_t>(R * R * NodesPer);
          if (Target >= NodesPer || Target == Node)
            continue;
          G.addEdgeWeight(Base + Node, Base + Target,
                          2 + Random.nextBelow(64));
        }
      }
    }
    GroupingOptions ParOptions = Options;
    ParOptions.GroupWeightThreshold = 0.0;

    std::vector<Group> Serial;
    double SerialMs =
        medianMs(Trials, [&] { Serial = buildGroups(G, ParOptions); });
    Rows.push_back({"grouping_parallel_serial", N, G.numEdges(), SerialMs,
                    Trials});

    std::vector<int> JobCounts = {1, 2, 4};
    int Hw = resolveJobs(0);
    if (std::find(JobCounts.begin(), JobCounts.end(), Hw) == JobCounts.end())
      JobCounts.push_back(Hw);
    std::printf("grouping %6u nodes %7llu edges across %u components: "
                "serial %8.2f ms (%zu groups)\n",
                N, static_cast<unsigned long long>(G.numEdges()), Components,
                SerialMs, Serial.size());
    for (int Jobs : JobCounts) {
      Executor Pool(Jobs);
      std::vector<Group> Par = buildGroupsParallel(G, ParOptions, Pool);
      if (!sameGroups(Serial, Par)) {
        std::fprintf(stderr,
                     "FATAL: parallel grouping (jobs=%d) diverged from "
                     "serial output\n",
                     Jobs);
        return 1;
      }
      double ParMs = medianMs(Trials, [&] {
        Par = buildGroupsParallel(G, ParOptions, Pool);
      });
      Rows.push_back({"grouping_parallel_j" + std::to_string(Jobs), N,
                      G.numEdges(), ParMs, Trials});
      std::printf("  parallel jobs=%-2d %8.2f ms  (%.2fx vs serial, outputs "
                  "identical)\n",
                  Jobs, ParMs, SerialMs / std::max(ParMs, 1e-6));
    }
  }

  //===--------------------------------------------------------------------===//
  // Graph layer: CSR snapshot construction at 100k nodes.
  //===--------------------------------------------------------------------===//

  {
    const uint32_t N = 100000;
    AffinityGraph G = powerLawGraph(N, 7);
    uint64_t Neighbors = 0;
    double Ms = medianMs(Trials, [&] {
      AdjacencySnapshot Adj = G.buildAdjacency();
      Neighbors += Adj.numNodes(); // Defeat dead-code elimination.
    });
    Rows.push_back({"graph_build_adjacency", N, G.numEdges(), Ms, Trials});
    std::printf("buildAdjacency %u nodes %llu edges: %.2f ms\n", N,
                static_cast<unsigned long long>(G.numEdges()), Ms);
    if (Neighbors == 0)
      return 1;
  }

  //===--------------------------------------------------------------------===//
  // Profiler layer: affinity-queue pushes (the per-access hot path) and
  // live-object lookups.
  //===--------------------------------------------------------------------===//

  {
    const uint32_t Objects = 4096;
    const uint64_t Accesses = 2000000;
    Rng Random(1234);
    std::vector<uint32_t> Stream(Accesses);
    for (uint64_t I = 0; I < Accesses; ++I)
      Stream[I] = static_cast<uint32_t>(Random.nextBelow(Objects));
    uint64_t Partners = 0;
    double Ms = medianMs(Trials, [&] {
      AffinityQueue Queue(128);
      for (uint64_t I = 0; I < Accesses; ++I)
        Queue.access(Stream[I], Stream[I] & 63, I, 8,
                     [&](const AffinityQueue::Entry &) { ++Partners; });
    });
    Rows.push_back({"affinity_queue_access", Objects, Accesses, Ms, Trials});
    std::printf("affinity queue: %llu accesses over %u objects: %.2f ms "
                "(%.1f M access/s)\n",
                static_cast<unsigned long long>(Accesses), Objects, Ms,
                static_cast<double>(Accesses) / Ms / 1e3);
    if (Partners == 0)
      return 1;
  }

  {
    const uint32_t Objects = 100000;
    const uint64_t Lookups = 2000000;
    LiveObjectMap Map;
    for (uint32_t I = 0; I < Objects; ++I)
      Map.insert(4096 + uint64_t(I) * 64, 48, I & 255, 0);
    Rng Random(99);
    std::vector<uint64_t> Addrs(Lookups);
    for (uint64_t I = 0; I < Lookups;) {
      // Bursts of hits on one object model real access locality (the same
      // locality the affinity queue's dedup constraint exists for).
      uint64_t Base = 4096 + Random.nextBelow(Objects) * 64;
      uint64_t Burst = 1 + Random.nextBelow(16);
      for (uint64_t B = 0; B < Burst && I < Lookups; ++B, ++I)
        Addrs[I] = Base + Random.nextBelow(48);
    }
    uint64_t Hits = 0;
    double Ms = medianMs(Trials, [&] {
      for (uint64_t I = 0; I < Lookups; ++I)
        Hits += Map.find(Addrs[I]) != ~0u;
    });
    Rows.push_back({"live_object_find", Objects, Lookups, Ms, Trials});
    std::printf("live-object map: %llu lookups over %u objects: %.2f ms\n",
                static_cast<unsigned long long>(Lookups), Objects, Ms);
    if (Hits == 0)
      return 1;
  }

  writeJson(OutPath, Rows);
  std::printf("\nwrote %s (%zu rows)\n", OutPath.c_str(), Rows.size());
  return 0;
}
