//===- bench/fig14_speedup.cpp - Figure 14 ------------------------------------===//
//
// Regenerates Figure 14: "The percentage by which both HALO and hot-data-
// stream-based co-allocation [11] improve execution time across a range of
// 11 programs." Medians over repeated trials, jemalloc baseline.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace halo;

int main() {
  Report R("Figure 14: execution time improvement vs jemalloc (median of " +
           std::to_string(bench::trials()) + " trials)");
  R.setColumns({"benchmark", "Chilimbi et al.", "HALO", "paper HDS~",
                "paper HALO~"});
  for (const std::string &Name : workloadNames()) {
    ComparisonRow Row = compareTechniques(Name, bench::trials());
    bench::PaperRow Paper = bench::paperFigures(Name);
    R.addRow({Name, formatPercent(Row.HdsSpeedup),
              formatPercent(Row.HaloSpeedup), formatPercent(Paper.HdsSpeed, 0),
              formatPercent(Paper.HaloSpeed, 0)});
  }
  R.addNote("paper columns are approximate bar heights from Figure 14");
  R.addNote("povray and leela are compute-bound: their miss reductions do "
            "not move execution time (Section 5.2)");
  R.print();
  return 0;
}
