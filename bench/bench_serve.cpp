//===- bench/bench_serve.cpp - Daemon overhead vs local runPlan --------------===//
//
// What does serving cost? The same mixed matrix (2 benchmarks x 2
// machines x 3 allocator kinds) runs three ways --
//
//   serve_local:       one buildPlan/runPlan call in this process, the
//                      baseline every daemon number is measured against,
//   serve_daemon:      submitted cold to an in-process HaloDaemon over
//                      its Unix socket (records, profiles, and populates
//                      a fresh artifact store), results streamed back
//                      cell by cell, and
//   serve_daemon_warm: the same request again on the warm daemon, whose
//                      held Evaluations and store reduce the plan to
//                      pure replays.
//
// All three result sets must be bit-identical (asserted -- this is the
// README's "served = local" contract on the bench path); the rows record
// wall-clock only, so serve_daemon vs serve_local is the full
// protocol + scheduler overhead and serve_daemon_warm shows what a
// long-lived daemon amortises away.
//
// Rows append to BENCH_machines.json ({"bench": "serve", "machine":
// matrix shape, "kind": row name, "wall_ms", "trials",
// "speedup_percent" vs serve_local}).
//
//   bench_serve [--append] [BENCH_machines.json]
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "eval/Experiment.h"
#include "serve/Client.h"
#include "serve/Server.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <unistd.h>

using namespace halo;

namespace {

double nowMs() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             Clock::now().time_since_epoch())
      .count();
}

const char *const Benchmarks[] = {"health", "ft"};
const char *const Machines[] = {"xeon-w2195", "mobile"};

struct OutRow {
  std::string Kind;
  double WallMs = 0.0;
  int Trials = 0;
  double SpeedupPercent = 0.0;
};

void writeJson(const std::string &Path, const std::vector<OutRow> &Rows,
               bool Append) {
  std::string MatrixName = std::string(Benchmarks[0]) + "+" + Benchmarks[1] +
                           "/" + Machines[0] + "+" + Machines[1];
  std::vector<std::string> Lines;
  Lines.reserve(Rows.size());
  for (const OutRow &R : Rows) {
    char Line[256];
    int N = std::snprintf(
        Line, sizeof(Line),
        "  {\"bench\": \"serve\", \"machine\": \"%s\", "
        "\"kind\": \"%s\", \"wall_ms\": %.6f, \"trials\": %d, "
        "\"l1d_misses\": 0, \"tlb_misses\": 0, "
        "\"speedup_percent\": %.4f}",
        MatrixName.c_str(), R.Kind.c_str(), R.WallMs, R.Trials,
        R.SpeedupPercent);
    if (N < 0 || N >= static_cast<int>(sizeof(Line))) {
      // A truncated fragment would merge into the trajectory file as
      // malformed JSON with no error.
      std::fprintf(stderr, "bench_serve: row too long\n");
      std::exit(1);
    }
    Lines.push_back(Line);
  }
  bench::writeJsonRows(Path, Lines, Append);
}

/// Fatal unless \p A and \p B hold bit-identical cells in the same order:
/// a served result that drifts from local is a broken daemon, and the
/// rows must never paper over it.
void expectIdenticalSets(const ResultSet &A, const ResultSet &B,
                         const char *Where) {
  bool Same = A.size() == B.size();
  for (size_t C = 0; Same && C < A.size(); ++C) {
    const ResultSet::Cell &CA = A.cells()[C];
    const ResultSet::Cell &CB = B.cells()[C];
    Same = CA.Key.Benchmark == CB.Key.Benchmark &&
           CA.Key.Machine == CB.Key.Machine && CA.Key.Kind == CB.Key.Kind &&
           CA.Runs.size() == CB.Runs.size();
    for (size_t T = 0; Same && T < CA.Runs.size(); ++T)
      Same = CA.Runs[T].Cycles == CB.Runs[T].Cycles &&
             CA.Runs[T].Mem.L1Misses == CB.Runs[T].Mem.L1Misses &&
             CA.Runs[T].Mem.TlbMisses == CB.Runs[T].Mem.TlbMisses &&
             CA.Runs[T].GroupedAllocs == CB.Runs[T].GroupedAllocs;
  }
  if (!Same) {
    std::fprintf(stderr, "bench_serve: FATAL: served diverged from local "
                         "(%s)\n",
                 Where);
    std::exit(1);
  }
}

void removeTree(const std::string &Dir) {
  if (DIR *D = opendir(Dir.c_str())) {
    while (struct dirent *E = readdir(D)) {
      std::string Name = E->d_name;
      if (Name != "." && Name != "..")
        unlink((Dir + "/" + Name).c_str());
    }
    closedir(D);
  }
  rmdir(Dir.c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  bool Append = false;
  std::string OutPath;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--append") == 0)
      Append = true;
    else
      OutPath = Argv[I];
  }

  const int Trials = bench::trials();
  PlanRequest Request;
  Request.Benchmarks.assign(std::begin(Benchmarks), std::end(Benchmarks));
  Request.Machines.assign(std::begin(Machines), std::end(Machines));
  Request.S = Scale::Ref;
  Request.Trials = Trials;

  // Baseline: the whole matrix locally, one runPlan, hardware jobs.
  double LocalStart = nowMs();
  ExperimentSpec Spec;
  Spec.Benchmarks = Request.Benchmarks;
  for (const char *Name : Machines) {
    const MachineConfig *M = findMachine(Name);
    if (!M) {
      std::fprintf(stderr, "bench_serve: unknown machine preset %s\n", Name);
      return 1;
    }
    Spec.Machines.push_back(M);
  }
  Spec.S = Request.S;
  Spec.Trials = Trials;
  ExperimentPlan Plan = buildPlan({Spec});
  ResultSet Local = runPlan(Plan, /*Jobs=*/0);
  double LocalMs = nowMs() - LocalStart;

  // The daemon, in-process, on a temp socket with a fresh temp store.
  char DirTemplate[] = "/tmp/halo_bench_serve.XXXXXX";
  const char *Dir = mkdtemp(DirTemplate);
  if (!Dir) {
    std::fprintf(stderr, "bench_serve: mkdtemp failed\n");
    return 1;
  }
  DaemonConfig Config;
  Config.SocketPath = std::string(Dir) + "/halo.sock";
  Config.StoreDir = std::string(Dir) + "/store";
  HaloDaemon Daemon(Config);
  int DaemonExit = -1;
  std::thread Server([&] { DaemonExit = Daemon.serve(); });
  for (int I = 0; I < 500 && access(Config.SocketPath.c_str(), F_OK) != 0;
       ++I)
    usleep(10000);

  auto Submit = [&](HaloClient &Client) {
    PlanOutcome Outcome = Client.wait(Client.submit(Request));
    if (Outcome.Status != PlanStatus::Ok) {
      std::fprintf(stderr, "bench_serve: daemon plan did not complete: %s\n",
                   Outcome.Message.c_str());
      std::exit(1);
    }
    return std::move(Outcome.Results);
  };

  double ColdMs, WarmMs;
  {
    HaloClient Client(Config.SocketPath);
    double ColdStart = nowMs();
    ResultSet Cold = Submit(Client);
    ColdMs = nowMs() - ColdStart;
    expectIdenticalSets(Local, Cold, "cold daemon");

    double WarmStart = nowMs();
    ResultSet Warm = Submit(Client);
    WarmMs = nowMs() - WarmStart;
    expectIdenticalSets(Local, Warm, "warm daemon");

    Client.shutdownServer();
  }
  Server.join();
  if (DaemonExit != 0) {
    std::fprintf(stderr, "bench_serve: daemon exited %d\n", DaemonExit);
    return 1;
  }
  removeTree(Config.StoreDir);
  removeTree(Dir);

  std::vector<OutRow> Rows(3);
  Rows[0] = {"serve_local", LocalMs, Trials, 0.0};
  Rows[1] = {"serve_daemon", ColdMs, Trials,
             percentImprovement(LocalMs, ColdMs)};
  Rows[2] = {"serve_daemon_warm", WarmMs, Trials,
             percentImprovement(LocalMs, WarmMs)};

  Report Table("halo serve: daemon overhead vs local runPlan");
  Table.setColumns({"shape", "wall_ms", "trials", "vs local"});
  for (const OutRow &R : Rows)
    Table.addRow({R.Kind, formatDouble(R.WallMs, 3),
                  std::to_string(R.Trials),
                  formatPercent(R.SpeedupPercent, 2)});
  Table.addNote("2 benchmarks x 2 machines x 3 kinds streamed through an "
                "in-process daemon on a Unix socket; all three result sets "
                "bit-identical (asserted)");
  Table.addNote("serve_daemon is a cold submit (records + populates the "
                "store); serve_daemon_warm reuses the daemon's held "
                "Evaluations and store, so it is pure replay");
  Table.print();

  if (!OutPath.empty()) {
    writeJson(OutPath, Rows, Append);
    std::printf("\n%s %s (%zu rows)\n", Append ? "appended to" : "wrote",
                OutPath.c_str(), Rows.size());
  }
  return 0;
}
