//===- bench/fig13_miss_reduction.cpp - Figure 13 -----------------------------===//
//
// Regenerates Figure 13: "The percentage by which both HALO and hot-data-
// stream-based co-allocation [11] reduce L1 data-cache misses across a
// range of 11 programs." Medians over repeated trials, jemalloc baseline.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace halo;

int main() {
  Report R("Figure 13: L1D cache miss reduction vs jemalloc (median of " +
           std::to_string(bench::trials()) + " trials)");
  R.setColumns({"benchmark", "Chilimbi et al.", "HALO", "paper HDS~",
                "paper HALO~"});
  for (const std::string &Name : workloadNames()) {
    ComparisonRow Row = compareTechniques(Name, bench::trials());
    bench::PaperRow Paper = bench::paperFigures(Name);
    R.addRow({Name, formatPercent(Row.HdsMissReduction),
              formatPercent(Row.HaloMissReduction),
              formatPercent(Paper.HdsMiss, 0), formatPercent(Paper.HaloMiss, 0)});
  }
  R.addNote("paper columns are approximate bar heights from Figure 13");
  R.addNote("expected shape: HALO wins everywhere; HDS matches on the six "
            "prior-work benchmarks, fails on povray/omnetpp/xalanc/leela, "
            "degrades roms/omnetpp");
  R.print();
  return 0;
}
