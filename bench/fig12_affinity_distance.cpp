//===- bench/fig12_affinity_distance.cpp - Figure 12 --------------------------===//
//
// Regenerates Figure 12: "Time taken by omnetpp at various affinity
// distances", with the unmodified-jemalloc median as the dashed baseline.
// The paper selects A = 128 from this sweep as a good trade-off between
// gains and profiling overhead.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace halo;

int main() {
  Report R("Figure 12: omnetpp execution time vs affinity distance");
  R.setColumns({"affinity distance", "median time (sim s)", "vs baseline"});

  BenchmarkSetup Base = paperSetup("omnetpp");
  Evaluation BaseEval(Base);
  auto BaseRuns = BaseEval.measureTrials(AllocatorKind::Jemalloc, Scale::Ref,
                                         bench::trials());
  double BaseTime = Evaluation::medianSeconds(BaseRuns);

  for (int Power = 3; Power <= 17; Power += 2) {
    BenchmarkSetup Setup = paperSetup("omnetpp");
    Setup.Halo.Profile.AffinityDistance = uint64_t(1) << Power;
    Evaluation Eval(Setup);
    auto Runs =
        Eval.measureTrials(AllocatorKind::Halo, Scale::Ref, bench::trials());
    double Time = Evaluation::medianSeconds(Runs);
    R.addRow({"2^" + std::to_string(Power), formatDouble(Time, 4),
              formatPercent(percentImprovement(BaseTime, Time))});
  }
  R.addRow({"baseline (jemalloc)", formatDouble(BaseTime, 4), "-"});
  R.addNote("the paper picks A = 128 (2^7): good gains at low profiling "
            "overhead; distances sweep 2^3..2^17 as in Figure 12");
  R.print();
  return 0;
}
