//===- bench/bench_replay.cpp - Record/replay throughput bench -----------------===//
//
// Measures the record-once/replay-many machinery: per-event throughput of
// direct workload execution vs trace replay under the measurement
// configuration (jemalloc model + full memory hierarchy), the cost of
// recording, and the end-to-end effect on a compareTechniques-style sweep
// (every allocator kind x several trials) run the pre-trace way (direct,
// serial) vs the trace way (shared per-seed recordings + parallel trials).
//
// Emits rows in the repo's stable trajectory schema
//   {"bench", "nodes", "edges", "wall_ms", "trials"}
// where nodes = trace events and edges = trace bytes for the throughput
// rows, and nodes = measured runs, edges = allocator kinds for the sweep
// rows. The out-of-core rows (trace_stream_*) additionally carry a
// "rss_kb" column: the process peak RSS sampled after each phase, which
// is why that section runs first -- ru_maxrss is a monotone high-water
// mark, so the streamed phases must set their marks before the in-RAM
// ones raise the floor. With --append the rows are merged into an
// existing BENCH_pipeline.json (bench/run_benches.sh runs the grouping
// bench first, then this one in append mode).
//
//   bench_replay [--append] [output.json]
//
// HALO_BENCH_TRACE_EVENTS scales the synthetic out-of-core trace (default
// 8M events; 100M+ demonstrates bounded-RSS streaming of a trace far
// larger than any in-RAM buffer this bench otherwise allocates).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "eval/Evaluation.h"
#include "mem/SizeClassAllocator.h"
#include "runtime/ShardedReplay.h"
#include "sim/Cache.h"
#include "support/Executor.h"
#include "support/Rng.h"
#include "trace/EventTrace.h"
#include "trace/TraceFile.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iterator>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include <sys/resource.h>
#include <unistd.h>

using namespace halo;

namespace {

struct BenchRow {
  std::string Bench;
  uint64_t Nodes;
  uint64_t Edges;
  double WallMs;
  int Trials;
};

int trials() {
  if (const char *Env = std::getenv("HALO_BENCH_TRIALS"))
    return std::max(1, std::atoi(Env));
  return 3;
}

double nowMs() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             Clock::now().time_since_epoch())
      .count();
}

/// Runs \p Fn \p Trials times and returns the median wall-clock ms.
template <typename Fn> double medianMs(int Trials, Fn &&Run) {
  std::vector<double> Times;
  Times.reserve(Trials);
  for (int T = 0; T < Trials; ++T) {
    double Start = nowMs();
    Run();
    Times.push_back(nowMs() - Start);
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

/// The process's peak resident set so far, in KiB (Linux ru_maxrss).
uint64_t peakRssKb() {
  struct rusage Usage;
  getrusage(RUSAGE_SELF, &Usage);
  return static_cast<uint64_t>(Usage.ru_maxrss);
}

/// Writes \p Rows as a JSON array to \p Path, with \p ExtraRows
/// (pre-rendered row strings carrying non-schema columns) appended; with
/// \p Append, merges them into the existing array instead (the grouping
/// bench owns the file's fresh write). The merge itself is the shared
/// bench::writeJsonRows.
void writeJson(const std::string &Path, const std::vector<BenchRow> &Rows,
               const std::vector<std::string> &ExtraRows, bool Append) {
  std::vector<std::string> Lines;
  Lines.reserve(Rows.size() + ExtraRows.size());
  Lines.insert(Lines.end(), ExtraRows.begin(), ExtraRows.end());
  for (const BenchRow &R : Rows) {
    char Line[256];
    int N = std::snprintf(
        Line, sizeof(Line),
        "  {\"bench\": \"%s\", \"nodes\": %llu, \"edges\": %llu, "
        "\"wall_ms\": %.3f, \"trials\": %d}",
        R.Bench.c_str(), static_cast<unsigned long long>(R.Nodes),
        static_cast<unsigned long long>(R.Edges), R.WallMs, R.Trials);
    if (N < 0 || N >= static_cast<int>(sizeof(Line))) {
      // A truncated fragment would merge into the trajectory file as
      // malformed JSON with no error.
      std::fprintf(stderr, "bench row for %s too long\n", R.Bench.c_str());
      std::exit(1);
    }
    Lines.push_back(Line);
  }
  bench::writeJsonRows(Path, Lines, Append);
}

const AllocatorKind SweepKinds[] = {
    AllocatorKind::Jemalloc,     AllocatorKind::Ptmalloc,
    AllocatorKind::Hds,          AllocatorKind::Halo,
    AllocatorKind::RandomPools,  AllocatorKind::HaloInstrumentedOnly,
};

/// The pre-batching replay loop -- one decode + dispatch per event through
/// the runtime's public API -- kept here as the baseline the batched
/// Runtime::replay (the replay_batched_* rows) is measured against. Both
/// produce bit-identical counters; only the wall clock differs.
void replayPerEvent(Runtime &RT, const EventTrace &Trace,
                    std::vector<uint64_t> &ObjAddr) {
  ObjAddr.clear();
  ObjAddr.reserve(Trace.numObjects());
  EventTrace::Reader R = Trace.reader();
  while (!R.atEnd()) {
    switch (R.op()) {
    case TraceOp::Call:
      RT.enter(static_cast<CallSiteId>(R.varint()));
      break;
    case TraceOp::Return:
      RT.leave();
      break;
    case TraceOp::Alloc: {
      CallSiteId Site = static_cast<CallSiteId>(R.varint());
      uint64_t Size = R.varint();
      ObjAddr.push_back(RT.malloc(Size, Site));
      break;
    }
    case TraceOp::Free:
      RT.free(ObjAddr[R.varint()]);
      break;
    case TraceOp::Load: {
      uint64_t Id = R.varint();
      uint64_t Offset = R.varint();
      uint64_t Size = R.varint();
      RT.load(ObjAddr[Id] + Offset, Size);
      break;
    }
    case TraceOp::Store: {
      uint64_t Id = R.varint();
      uint64_t Offset = R.varint();
      uint64_t Size = R.varint();
      RT.store(ObjAddr[Id] + Offset, Size);
      break;
    }
    case TraceOp::LoadBase: {
      uint64_t Id = R.varint();
      uint64_t Size = R.varint();
      RT.load(ObjAddr[Id], Size);
      break;
    }
    case TraceOp::StoreBase: {
      uint64_t Id = R.varint();
      uint64_t Size = R.varint();
      RT.store(ObjAddr[Id], Size);
      break;
    }
    case TraceOp::LoadRaw: {
      uint64_t Addr = R.varint();
      uint64_t Size = R.varint();
      RT.load(Addr, Size);
      break;
    }
    case TraceOp::StoreRaw: {
      uint64_t Addr = R.varint();
      uint64_t Size = R.varint();
      RT.store(Addr, Size);
      break;
    }
    case TraceOp::Compute:
      RT.compute(R.varint());
      break;
    case TraceOp::Realloc: {
      uint64_t Old = R.varint();
      CallSiteId Site = static_cast<CallSiteId>(R.varint());
      uint64_t NewSize = R.varint();
      ObjAddr.push_back(RT.realloc(ObjAddr[Old], NewSize, Site));
      break;
    }
    }
  }
}

} // namespace

int main(int Argc, char **Argv) {
  bool Append = false;
  std::string OutPath = "BENCH_pipeline.json";
  for (int I = 1; I < Argc; ++I) {
    if (std::string(Argv[I]) == "--append")
      Append = true;
    else
      OutPath = Argv[I];
  }
  const int Trials = trials();
  std::vector<BenchRow> Rows;
  std::vector<std::string> ExtraRows;

  std::printf("record/replay bench (trials=%d)\n\n", Trials);

  //===--------------------------------------------------------------------===//
  // Out-of-core traces: a synthetic recording streamed straight to disk,
  // then replayed mmap'd -- serially and sharded -- against the in-RAM
  // oracle. Bit-identity of every counter is asserted (a divergence is a
  // fatal bench failure); the rows measure record-to-disk throughput,
  // mapped vs in-RAM replay wall time, and the peak-RSS mark after each
  // phase. This section runs before anything else allocates big buffers,
  // so the streamed phases' rss_kb marks genuinely bound the out-of-core
  // path's footprint.
  //===--------------------------------------------------------------------===//

  {
    uint64_t TargetEvents = 8'000'000;
    if (const char *Env = std::getenv("HALO_BENCH_TRACE_EVENTS"))
      TargetEvents = std::max(1L, std::atol(Env));

    Program P;
    FunctionId Main = P.addFunction("synthetic");
    CallSiteId Site = P.addMallocSite(Main, "synthetic>malloc");

    // Deterministic allocate/access/free churn over a bounded ring of
    // live objects: ~6 events per steady-state iteration (alloc, two
    // stores, two loads, one eviction free, amortized computes), with
    // trace-shaped operand distributions (small sizes, short offsets).
    auto Drive = [&](Runtime &RT) {
      Rng Random(7);
      std::vector<uint64_t> Ring;
      const size_t RingCap = 4096;
      size_t Next = 0;
      const uint64_t Iterations = TargetEvents / 6;
      for (uint64_t I = 0; I < Iterations; ++I) {
        uint64_t Size = 16 + Random.nextBelow(240);
        uint64_t Addr = RT.malloc(Size, Site);
        RT.store(Addr, 8);
        RT.store(Addr + (Size & ~7ull) / 2, 8);
        if (!Ring.empty()) {
          uint64_t Victim = Ring[Random.nextBelow(Ring.size())];
          RT.load(Victim, 8);
          RT.load(Victim + 8, 4);
        }
        if (Ring.size() < RingCap) {
          Ring.push_back(Addr);
        } else {
          RT.free(Ring[Next]);
          Ring[Next] = Addr;
          Next = (Next + 1) % RingCap;
        }
        if ((I & 63) == 0)
          RT.compute(100 + Random.nextBelow(400));
      }
      for (uint64_t Addr : Ring)
        RT.free(Addr);
    };

    // Phase 1: record streaming to disk -- the trace is never resident.
    char TracePath[] = "/tmp/halo_bench_trace.XXXXXX";
    int TraceFd = mkstemp(TracePath);
    if (TraceFd < 0)
      return 1;
    close(TraceFd);
    uint64_t Events = 0, RawBytes = 0;
    double RecordMs = medianMs(1, [&] {
      FILE *F = std::fopen(TracePath, "wb");
      if (!F)
        std::exit(1);
      TraceFileWriter FW(F);
      EventTrace Trace;
      Trace.streamTo(FW);
      RecordingArena RecordAlloc;
      Runtime RT(P, RecordAlloc);
      TraceRecorder Recorder(Trace, RecordAlloc);
      RT.addObserver(&Recorder);
      Drive(RT);
      if (!Trace.finishStream())
        std::exit(1);
      std::fclose(F);
      Events = Trace.numEvents();
      RawBytes = Trace.byteSize();
    });
    uint64_t RecordRss = peakRssKb();

    // Phase 2: mapped replay, serial and sharded, pages released as each
    // block is left behind.
    MappedTrace Mapped = MappedTrace::open(TracePath);
    unlink(TracePath); // The mapping pins the bytes; nothing leaks.
    uint64_t FileBytes = Mapped.fileBytes();
    uint64_t Guard = 0;
    double MappedMs = medianMs(Trials, [&] {
      MemoryHierarchy Memory;
      SizeClassAllocator Jemalloc;
      Runtime RT(P, Jemalloc);
      RT.setMemory(&Memory);
      RT.replay(Mapped);
      Guard += RT.timing().totalCycles();
    });
    int Hw = resolveJobs(0);
    Executor Pool(Hw);
    double ShardedMs = medianMs(Trials, [&] {
      MemoryHierarchy Memory;
      SizeClassAllocator Jemalloc;
      Runtime RT(P, Jemalloc);
      RT.setMemory(&Memory);
      shardedReplay(RT, Mapped, Pool);
      Guard += RT.timing().totalCycles();
    });
    uint64_t MappedRss = peakRssKb();

    // Phase 3: the same recording held and replayed in RAM -- the oracle,
    // and the footprint the mapped path exists to avoid.
    EventTrace InRam;
    {
      RecordingArena RecordAlloc;
      Runtime RT(P, RecordAlloc);
      TraceRecorder Recorder(InRam, RecordAlloc);
      RT.addObserver(&Recorder);
      Drive(RT);
    }
    double RamMs = medianMs(Trials, [&] {
      MemoryHierarchy Memory;
      SizeClassAllocator Jemalloc;
      Runtime RT(P, Jemalloc);
      RT.setMemory(&Memory);
      RT.replay(InRam);
      Guard += RT.timing().totalCycles();
    });
    uint64_t RamRss = peakRssKb();
    if (Guard == 0)
      return 1;

    // Bit-identity: mapped serial, mapped sharded (one worker and all of
    // them), and the in-RAM oracle must agree on every counter.
    auto Counters = [&](auto Replay) {
      MemoryHierarchy Memory;
      SizeClassAllocator Jemalloc;
      Runtime RT(P, Jemalloc);
      RT.setMemory(&Memory);
      Replay(RT);
      const MemoryCounters C = Memory.counters();
      return std::make_tuple(RT.timing().totalCycles(), C.Accesses,
                             C.L1Misses, C.L2Misses, C.L3Misses, C.TlbMisses,
                             C.StallCycles);
    };
    auto Oracle = Counters([&](Runtime &RT) { RT.replay(InRam); });
    if (Counters([&](Runtime &RT) { RT.replay(Mapped); }) != Oracle) {
      std::fprintf(stderr, "FATAL: mapped replay diverged from in-RAM\n");
      return 1;
    }
    for (int Jobs : {1, Hw}) {
      Executor ShardPool(Jobs);
      if (Counters([&](Runtime &RT) {
            shardedReplay(RT, Mapped, ShardPool);
          }) != Oracle) {
        std::fprintf(stderr,
                     "FATAL: sharded mapped replay (jobs=%d) diverged from "
                     "in-RAM\n",
                     Jobs);
        return 1;
      }
    }

    auto Push = [&](const std::string &Bench, double WallMs, int RowTrials,
                    uint64_t RssKb) {
      char Line[256];
      int N = std::snprintf(
          Line, sizeof(Line),
          "  {\"bench\": \"%s\", \"nodes\": %llu, \"edges\": %llu, "
          "\"wall_ms\": %.3f, \"trials\": %d, \"rss_kb\": %llu}",
          Bench.c_str(), static_cast<unsigned long long>(Events),
          static_cast<unsigned long long>(FileBytes), WallMs, RowTrials,
          static_cast<unsigned long long>(RssKb));
      if (N < 0 || N >= static_cast<int>(sizeof(Line))) {
        std::fprintf(stderr, "bench row for %s too long\n", Bench.c_str());
        std::exit(1);
      }
      ExtraRows.push_back(Line);
    };
    Push("trace_stream_record", RecordMs, 1, RecordRss);
    Push("trace_stream_replay_mapped", MappedMs, Trials, MappedRss);
    Push("trace_stream_sharded_j" + std::to_string(Hw), ShardedMs, Trials,
         MappedRss);
    Push("trace_stream_replay_ram", RamMs, Trials, RamRss);

    std::printf(
        "out-of-core (%llu events, %llu raw -> %llu disk bytes, %zu "
        "blocks):\n"
        "         record-to-disk %8.2f ms (%5.1f M ev/s), peak rss %llu KiB\n"
        "         mapped replay  %8.2f ms (%5.1f M ev/s), sharded jobs=%-2d "
        "%8.2f ms, peak rss %llu KiB\n"
        "         in-RAM replay  %8.2f ms (%5.1f M ev/s), peak rss %llu "
        "KiB\n\n",
        static_cast<unsigned long long>(Events),
        static_cast<unsigned long long>(RawBytes),
        static_cast<unsigned long long>(FileBytes), Mapped.numBlocks(),
        RecordMs, static_cast<double>(Events) / RecordMs / 1e3,
        static_cast<unsigned long long>(RecordRss), MappedMs,
        static_cast<double>(Events) / MappedMs / 1e3, Hw, ShardedMs,
        static_cast<unsigned long long>(MappedRss), RamMs,
        static_cast<double>(Events) / RamMs / 1e3,
        static_cast<unsigned long long>(RamRss));
  }

  //===--------------------------------------------------------------------===//
  // Per-event throughput: record cost, then one measured run (jemalloc +
  // memory hierarchy) direct vs replayed, per workload.
  //===--------------------------------------------------------------------===//

  for (const std::string &Name : {std::string("health"),
                                  std::string("xalanc")}) {
    auto W = createWorkload(Name);
    Program P;
    W->build(P);

    EventTrace Trace;
    double RecordMs = medianMs(1, [&] {
      RecordingArena RecordAlloc;
      Runtime RT(P, RecordAlloc);
      TraceRecorder Recorder(Trace, RecordAlloc);
      RT.addObserver(&Recorder);
      W->run(RT, Scale::Ref, 100);
    });
    const uint64_t Events = Trace.numEvents();
    const uint64_t Bytes = Trace.byteSize();

    // The three measured loops interleave round-robin across trials so the
    // host's warm-up and frequency drift land evenly on all of them (this
    // box is noisy; back-to-back blocks systematically favour whichever
    // runs later).
    uint64_t Guard = 0;
    std::vector<double> DirectTimes, PerEventTimes, BatchedTimes;
    std::vector<uint64_t> ObjAddr;
    for (int T = 0; T < Trials; ++T) {
      double Start = nowMs();
      {
        MemoryHierarchy Memory;
        SizeClassAllocator Jemalloc;
        Runtime RT(P, Jemalloc);
        RT.setMemory(&Memory);
        W->run(RT, Scale::Ref, 100);
        Guard += RT.timing().totalCycles();
      }
      DirectTimes.push_back(nowMs() - Start);
      Start = nowMs();
      {
        MemoryHierarchy Memory;
        SizeClassAllocator Jemalloc;
        Runtime RT(P, Jemalloc);
        RT.setMemory(&Memory);
        replayPerEvent(RT, Trace, ObjAddr);
        Guard += RT.timing().totalCycles();
      }
      PerEventTimes.push_back(nowMs() - Start);
      Start = nowMs();
      {
        MemoryHierarchy Memory;
        SizeClassAllocator Jemalloc;
        Runtime RT(P, Jemalloc);
        RT.setMemory(&Memory);
        RT.replay(Trace);
        Guard += RT.timing().totalCycles();
      }
      BatchedTimes.push_back(nowMs() - Start);
    }
    if (Guard == 0)
      return 1; // Defeat dead-code elimination.
    auto Median = [](std::vector<double> &Times) {
      std::sort(Times.begin(), Times.end());
      return Times[Times.size() / 2];
    };
    double DirectMs = Median(DirectTimes);
    double PerEventMs = Median(PerEventTimes);
    double BatchedMs = Median(BatchedTimes);

    Rows.push_back({"replay_record_" + Name, Events, Bytes, RecordMs, 1});
    Rows.push_back({"replay_direct_" + Name, Events, Bytes, DirectMs, Trials});
    Rows.push_back({"replay_replay_" + Name, Events, Bytes, PerEventMs,
                    Trials});
    Rows.push_back({"replay_batched_" + Name, Events, Bytes, BatchedMs,
                    Trials});
    std::printf("%-8s %9llu events %9llu bytes: record %8.2f ms, "
                "direct %8.2f ms (%5.1f M ev/s),\n         per-event replay "
                "%8.2f ms (%5.1f M ev/s), batched replay %8.2f ms "
                "(%5.1f M ev/s, %.2fx vs per-event)\n",
                Name.c_str(), static_cast<unsigned long long>(Events),
                static_cast<unsigned long long>(Bytes), RecordMs, DirectMs,
                static_cast<double>(Events) / DirectMs / 1e3, PerEventMs,
                static_cast<double>(Events) / PerEventMs / 1e3, BatchedMs,
                static_cast<double>(Events) / BatchedMs / 1e3,
                PerEventMs / std::max(BatchedMs, 1e-6));

    //===------------------------------------------------------------------===//
    // Within-trace sharded replay at several worker counts, with the
    // serial batched replay as the identity oracle: any counter or cycle
    // divergence is a fatal bench failure ("sharded = serial" is a
    // correctness contract, not a tolerance).
    //===------------------------------------------------------------------===//

    auto ReplayCounters = [&](Executor *Pool) {
      MemoryHierarchy Memory;
      SizeClassAllocator Jemalloc;
      Runtime RT(P, Jemalloc);
      RT.setMemory(&Memory);
      if (Pool)
        shardedReplay(RT, Trace, *Pool);
      else
        RT.replay(Trace);
      const MemoryCounters C = Memory.counters();
      return std::make_tuple(RT.timing().totalCycles(), C.Accesses,
                             C.L1Misses, C.L2Misses, C.L3Misses, C.TlbMisses,
                             C.StallCycles);
    };
    auto SerialCounters = ReplayCounters(nullptr);

    std::vector<int> JobCounts = {1, 2, 4};
    int Hw = resolveJobs(0);
    if (std::find(JobCounts.begin(), JobCounts.end(), Hw) == JobCounts.end())
      JobCounts.push_back(Hw);
    for (int Jobs : JobCounts) {
      Executor Pool(Jobs);
      if (ReplayCounters(&Pool) != SerialCounters) {
        std::fprintf(stderr,
                     "FATAL: sharded replay (%s, jobs=%d) diverged from "
                     "serial counters\n",
                     Name.c_str(), Jobs);
        return 1;
      }
      double ShardedMs = medianMs(Trials, [&] {
        MemoryHierarchy Memory;
        SizeClassAllocator Jemalloc;
        Runtime RT(P, Jemalloc);
        RT.setMemory(&Memory);
        shardedReplay(RT, Trace, Pool);
        Guard += RT.timing().totalCycles();
      });
      Rows.push_back({"replay_sharded_" + Name + "_j" + std::to_string(Jobs),
                      Events, Bytes, ShardedMs, Trials});
      std::printf("         sharded replay jobs=%-2d %8.2f ms (%5.1f M ev/s, "
                  "%.2fx vs serial batched)\n",
                  Jobs, ShardedMs,
                  static_cast<double>(Events) / ShardedMs / 1e3,
                  BatchedMs / std::max(ShardedMs, 1e-6));
    }
  }

  //===--------------------------------------------------------------------===//
  // End-to-end sweep: every allocator kind x Trials trials on one
  // benchmark, the pre-trace way (direct execution, serial) vs the trace
  // way (per-seed recordings shared by all kinds + parallel trials).
  // Pipeline artifacts are materialised up front on both sides so the
  // rows compare pure measurement.
  //===--------------------------------------------------------------------===//

  {
    const std::string Name = "health";
    const int Kinds = static_cast<int>(std::size(SweepKinds));

    Evaluation DirectEval(paperSetup(Name));
    DirectEval.haloArtifacts();
    DirectEval.hdsArtifacts();
    uint64_t Guard = 0;
    double DirectStart = nowMs();
    for (AllocatorKind Kind : SweepKinds)
      for (int T = 0; T < Trials; ++T)
        Guard += DirectEval.measureDirect(Kind, Scale::Ref, 100 + T).Cycles;
    double DirectMs = nowMs() - DirectStart;

    Evaluation TraceEval(paperSetup(Name));
    TraceEval.haloArtifacts();
    TraceEval.hdsArtifacts();
    double TraceStart = nowMs();
    for (AllocatorKind Kind : SweepKinds) {
      auto Runs = TraceEval.measureTrials(Kind, Scale::Ref, Trials, 100,
                                          /*Jobs=*/0);
      for (const RunMetrics &M : Runs)
        Guard += M.Cycles;
    }
    double TraceMs = nowMs() - TraceStart;
    if (Guard == 0)
      return 1;

    uint64_t SweepRuns = static_cast<uint64_t>(Kinds) * Trials;
    Rows.push_back({"sweep_direct_serial", SweepRuns,
                    static_cast<uint64_t>(Kinds), DirectMs, Trials});
    Rows.push_back({"sweep_trace_parallel", SweepRuns,
                    static_cast<uint64_t>(Kinds), TraceMs, Trials});
    std::printf("\nsweep (%s, %d kinds x %d trials): direct serial "
                "%8.2f ms, shared-trace parallel %8.2f ms  (%.2fx)\n",
                Name.c_str(), Kinds, Trials, DirectMs, TraceMs,
                DirectMs / std::max(TraceMs, 1e-6));
  }

  //===--------------------------------------------------------------------===//
  // MRU probe depth microbench: the fused TLB+L1 fast path's single-hint
  // probe (Cache::mruHit) vs the two-deep variant (Cache::mruHit2), driven
  // over one shared address stream with the trials interleaved A/B (same
  // reason as above: warm-up and frequency drift land evenly on both).
  // Decisions are bit-identical by construction; the bench asserts it and
  // measures only the wall clock. The verdict -- whether the hierarchy's
  // default path should adopt the second hint -- is recorded in ROADMAP.
  //===--------------------------------------------------------------------===//

  {
    CacheConfig Cfg; // The default L1 geometry (32 KiB, 8-way, 64 B lines).
    const size_t StreamLen = 1u << 21;
    std::vector<uint64_t> Stream;
    Stream.reserve(StreamLen);
    Rng Random(42);
    uint64_t Addr = 0;
    for (size_t I = 0; I < StreamLen; ++I) {
      // Mostly short strides (MRU/second-MRU territory) over a working set
      // a few times the cache, with occasional far jumps forcing misses.
      if (Random.nextBool(0.8))
        Addr += Random.nextBelow(3) * 64;
      else
        Addr = Random.nextBelow(1u << 22);
      Stream.push_back(Addr);
    }

    Cache One(Cfg), Two(Cfg);
    uint64_t Guard = 0;
    std::vector<double> OneTimes, TwoTimes;
    for (int T = 0; T < Trials; ++T) {
      One.reset();
      Two.reset();
      double Start = nowMs();
      for (uint64_t A : Stream)
        if (!One.mruHit(A))
          One.accessSlow(A);
      Guard += One.hits();
      OneTimes.push_back(nowMs() - Start);
      Start = nowMs();
      for (uint64_t A : Stream)
        if (!Two.mruHit2(A))
          Two.accessSlow(A);
      Guard += Two.hits();
      TwoTimes.push_back(nowMs() - Start);
      if (One.hits() != Two.hits() || One.misses() != Two.misses()) {
        std::fprintf(stderr,
                     "FATAL: mruHit2 decisions diverged from mruHit "
                     "(hits %llu vs %llu, misses %llu vs %llu)\n",
                     (unsigned long long)One.hits(),
                     (unsigned long long)Two.hits(),
                     (unsigned long long)One.misses(),
                     (unsigned long long)Two.misses());
        return 1;
      }
    }
    if (Guard == 0)
      return 1;
    auto Median = [](std::vector<double> &Times) {
      std::sort(Times.begin(), Times.end());
      return Times[Times.size() / 2];
    };
    double OneMs = Median(OneTimes);
    double TwoMs = Median(TwoTimes);
    Rows.push_back({"mru_probe_single", StreamLen, One.misses(), OneMs,
                    Trials});
    Rows.push_back({"mru_probe_double", StreamLen, Two.misses(), TwoMs,
                    Trials});
    std::printf("\nmru probe (%zu accesses, %.1f%% miss): single-hint "
                "%8.2f ms, two-deep %8.2f ms  (%.3fx)\n",
                StreamLen,
                100.0 * static_cast<double>(One.misses()) /
                    static_cast<double>(StreamLen),
                OneMs, TwoMs, OneMs / std::max(TwoMs, 1e-6));
  }

  writeJson(OutPath, Rows, ExtraRows, Append);
  std::printf("\n%s %s (%zu rows)\n", Append ? "appended to" : "wrote",
              OutPath.c_str(), Rows.size() + ExtraRows.size());
  return 0;
}
