//===- bench/ablation_instrumentation.cpp - Section 5.2 overhead probe --------===//
//
// Reproduces the Section 5.2 control experiment: "In examining the
// performance of a configuration in which each BOLT-instrumented binary is
// run without its specialised allocator, we find that noise from the
// surrounding system is far greater than the effects of HALO's
// instrumentation" -- i.e. the set/unset instructions are not what makes
// or breaks the optimisation.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace halo;

int main() {
  Report R("Instrumented binary without the specialised allocator");
  R.setColumns({"benchmark", "instr ops", "time overhead", "L1D misses"});
  for (const std::string &Name : workloadNames()) {
    Evaluation Eval(paperSetup(Name));
    RunMetrics Base = Eval.measure(AllocatorKind::Jemalloc, Scale::Ref, 100);
    RunMetrics Instr =
        Eval.measure(AllocatorKind::HaloInstrumentedOnly, Scale::Ref, 100);
    double Overhead = -percentImprovement(Base.Seconds, Instr.Seconds);
    R.addRow({Name, std::to_string(Instr.InstrumentationOps),
              formatPercent(Overhead, 4),
              Instr.Mem.L1Misses == Base.Mem.L1Misses ? "unchanged"
                                                      : "CHANGED"});
  }
  R.addNote("instrumentation adds set/unset bit operations only; memory "
            "behaviour is identical and the cycle overhead is far below "
            "the paper's system noise floor");
  R.print();
  return 0;
}
