//===- bench/BenchCommon.h - Shared bench harness helpers ------*- C++ -*-===//
//
// Part of the HALO reproduction. Distributed under the BSD 3-clause licence.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure/table bench binaries: trial counts, the
/// paper's approximate reference values (read off its figures) for
/// side-by-side printing, and small formatting utilities.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_BENCH_BENCHCOMMON_H
#define HALO_BENCH_BENCHCOMMON_H

#include "eval/Evaluation.h"
#include "eval/Report.h"
#include "support/Format.h"
#include "support/Stats.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace halo {
namespace bench {

/// Writes pre-rendered JSON object rows (each "  {...}", no trailing
/// comma or newline) as an array to \p Path; with \p Append, merges them
/// into the file's existing array instead (whichever bench owns the
/// file's fresh write runs first; appenders follow).
inline void writeJsonRows(const std::string &Path,
                          const std::vector<std::string> &Rows,
                          bool Append) {
  std::string Prefix = "[\n";
  if (Append) {
    if (FILE *In = std::fopen(Path.c_str(), "r")) {
      std::string Existing;
      char Buf[4096];
      size_t N;
      while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
        Existing.append(Buf, N);
      std::fclose(In);
      size_t Close = Existing.find_last_of(']');
      if (Close != std::string::npos) {
        Prefix = Existing.substr(0, Close);
        while (!Prefix.empty() &&
               (Prefix.back() == '\n' || Prefix.back() == ' '))
          Prefix.pop_back();
        // An empty existing array must not gain a leading comma (and a
        // degenerate file still needs its opening bracket).
        if (Prefix.empty())
          Prefix = "[\n";
        else
          Prefix += Prefix.back() == '[' ? "\n" : ",\n";
      }
    }
  }
  FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    std::exit(1);
  }
  std::fputs(Prefix.c_str(), Out);
  for (size_t I = 0; I < Rows.size(); ++I)
    std::fprintf(Out, "%s%s\n", Rows[I].c_str(),
                 I + 1 < Rows.size() ? "," : "");
  std::fputs("]\n", Out);
  std::fclose(Out);
}

/// Trials per configuration. The paper runs 11 and reports medians; the
/// simulator is deterministic per seed, so a handful of seeds suffices.
/// Override with HALO_BENCH_TRIALS.
inline int trials() {
  if (const char *Env = std::getenv("HALO_BENCH_TRIALS"))
    return std::max(1, std::atoi(Env));
  return 3;
}

/// Paper reference values, read off Figures 13/14 (approximate, in
/// percent). Order matches workloadNames().
struct PaperRow {
  double HdsMiss, HaloMiss, HdsSpeed, HaloSpeed;
};

inline PaperRow paperFigures(const std::string &Benchmark) {
  if (Benchmark == "health")
    return {17, 20, 21, 28};
  if (Benchmark == "ft")
    return {12, 14, 8, 10};
  if (Benchmark == "analyzer")
    return {9, 10, 6, 7};
  if (Benchmark == "ammp")
    return {10, 12, 8, 10};
  if (Benchmark == "art")
    return {15, 18, 10, 13};
  if (Benchmark == "equake")
    return {8, 10, 6, 8};
  if (Benchmark == "povray")
    return {2, 10, 0, 1};
  if (Benchmark == "omnetpp")
    return {0, 8, 0, 4};
  if (Benchmark == "xalanc")
    return {1, 18, 0, 16};
  if (Benchmark == "leela")
    return {2, 10, 0, 1};
  if (Benchmark == "roms")
    return {-3, 0, -1, 0};
  return {0, 0, 0, 0};
}

/// Table 1 of the paper (exact values).
struct PaperFragRow {
  const char *Benchmark;
  double Percent;
  const char *Bytes;
};

inline const std::vector<PaperFragRow> &paperTable1() {
  static const std::vector<PaperFragRow> Rows = {
      {"health", 0.01, "31.98KiB"}, {"equake", 0.05, "12.08KiB"},
      {"analyzer", 0.13, "4.31KiB"}, {"ammp", 0.20, "40.97KiB"},
      {"art", 0.62, "11.70KiB"},     {"ft", 2.06, "4.05KiB"},
      {"povray", 26.47, "37.06KiB"}, {"roms", 93.60, "29.95KiB"},
      {"leela", 99.99, "2.05MiB"}};
  return Rows;
}

} // namespace bench
} // namespace halo

#endif // HALO_BENCH_BENCHCOMMON_H
