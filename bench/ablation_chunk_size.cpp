//===- bench/ablation_chunk_size.cpp - Appendix A.8 flags ---------------------===//
//
// Sweeps the specialised allocator's chunk size and spare-chunk policy on
// omnetpp, the benchmark whose artefact configuration deviates from the
// defaults (--chunk-size 131072 --max-spare-chunks 0, always-reused
// chunks). Shows the trade-off the flags resolve: big chunks fragment
// under churn, purging costs re-touch traffic.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace halo;

int main() {
  Report R("Chunk-size / spare-chunk sweep on omnetpp (HALO vs jemalloc)");
  R.setColumns({"chunk size", "spares", "purge", "speedup", "frag %",
                "frag bytes"});
  struct Config {
    uint64_t Chunk;
    uint32_t Spares;
    bool Purge;
  };
  const Config Configs[] = {
      {64 * 1024, 0, false},  {128 * 1024, 0, false}, // Paper's omnetpp flags.
      {128 * 1024, 1, true},  {512 * 1024, 0, false},
      {1024 * 1024, 0, false}, {1024 * 1024, 1, true}, // Global defaults.
  };
  for (const Config &C : Configs) {
    BenchmarkSetup Setup = paperSetup("omnetpp");
    Setup.Halo.Allocator.ChunkSize = C.Chunk;
    Setup.Halo.Allocator.MaxSpareChunks = C.Spares;
    Setup.Halo.Allocator.PurgeEmptyChunks = C.Purge;
    Evaluation Eval(Setup);
    RunMetrics Base = Eval.measure(AllocatorKind::Jemalloc, Scale::Ref, 100);
    RunMetrics Halo = Eval.measure(AllocatorKind::Halo, Scale::Ref, 100);
    R.addRow({formatBytes(double(C.Chunk)), std::to_string(C.Spares),
              C.Purge ? "yes" : "no",
              formatPercent(percentImprovement(Base.Seconds, Halo.Seconds)),
              formatPercent(Halo.Frag.wastedPercent()),
              formatBytes(double(Halo.Frag.wastedBytes()))});
  }
  R.addNote("smaller chunks recycle faster under omnetpp's event churn; "
            "always-reuse avoids repeatedly faulting purged pages back in "
            "(the artefact's omnetpp/xalanc quirk)");
  R.print();
  return 0;
}
