//===- bench/ablation_grouping.cpp - Section 4.2 design choice ----------------===//
//
// Compares the paper's density-guided greedy grouping (Figures 6-8)
// against a naive connectivity-based clusterer (connected components of
// the thresholded graph, mechanically split), standing in for the
// "standard modularity, HCS, or cut-based clustering techniques" the
// paper found less amenable to region-based co-allocation.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "mem/SizeClassAllocator.h"

using namespace halo;

namespace {

/// Measures HALO with an externally chosen set of groups.
double speedupWithGroups(Evaluation &Eval, const std::vector<Group> &Groups) {
  const HaloArtifacts &Base = Eval.haloArtifacts();
  IdentificationResult Ident = identifyGroups(Groups, Base.Contexts);
  InstrumentationPlan Plan(Eval.program(), Ident.Sites);
  std::vector<CompiledSelector> Compiled;
  for (const Selector &Sel : Ident.Selectors)
    Compiled.push_back(compileSelector(Sel, Plan));

  MemoryHierarchy Mem;
  SizeClassAllocator Backing;
  Runtime RT(Eval.program(), Backing);
  RT.setInstrumentation(&Plan);
  SelectorGroupPolicy Policy(RT.groupState(), Compiled);
  GroupAllocator GA(Backing, Policy, Eval.setup().Halo.Allocator);
  RT.setAllocator(GA);
  RT.setMemory(&Mem);
  Eval.workload().run(RT, Scale::Ref, 100);
  double HaloSeconds = RT.timing().seconds();

  RunMetrics BaseRun = Eval.measure(AllocatorKind::Jemalloc, Scale::Ref, 100);
  return percentImprovement(BaseRun.Seconds, HaloSeconds);
}

} // namespace

int main() {
  Report R("Grouping algorithm ablation (HALO speedup vs jemalloc)");
  R.setColumns({"benchmark", "density greedy (paper)", "groups",
                "connected components", "groups"});
  for (const std::string &Name :
       {std::string("health"), std::string("povray"), std::string("xalanc"),
        std::string("omnetpp")}) {
    Evaluation Eval(paperSetup(Name));
    const HaloArtifacts &Art = Eval.haloArtifacts();
    double Paper = speedupWithGroups(Eval, Art.Groups);
    std::vector<Group> Naive =
        buildComponentGroups(Art.Graph, Eval.setup().Halo.Grouping);
    double Components = speedupWithGroups(Eval, Naive);
    R.addRow({Name, formatPercent(Paper), std::to_string(Art.Groups.size()),
              formatPercent(Components), std::to_string(Naive.size())});
  }
  R.addNote("connected components lump weakly related contexts together, "
            "so pools mix hot and lukewarm data; the paper's density "
            "objective builds tighter groups");
  R.print();
  return 0;
}
