# Golden byte-identity check for `halo_cli run` (ctest: golden_run_json).
#
# The simulator is deterministic, so the full run JSON on the default
# machine is a fixed byte string; tests/golden/run_health.json pins it.
# Any refactor that claims "no behaviour change" must keep both the
# machine-less invocation and the explicit --machine xeon-w2195 spelling
# byte-identical to the committed golden.
#
# Invoked as:
#   cmake -DHALO_CLI=<path> -DGOLDEN=<path> -DWORK_DIR=<dir> -P this_file

foreach(Var HALO_CLI GOLDEN WORK_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "check_run_golden.cmake needs -D${Var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})

foreach(Spelling "default" "named")
  if(Spelling STREQUAL "default")
    set(Args run health --trials 2)
  else()
    set(Args run health --trials 2 --machine xeon-w2195)
  endif()
  set(Out ${WORK_DIR}/run_health_${Spelling}.json)
  execute_process(COMMAND ${HALO_CLI} ${Args}
                  OUTPUT_FILE ${Out}
                  RESULT_VARIABLE Rc)
  if(NOT Rc EQUAL 0)
    message(FATAL_ERROR "halo_cli ${Args} failed (exit ${Rc})")
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${Out} ${GOLDEN}
                  RESULT_VARIABLE Diff)
  if(NOT Diff EQUAL 0)
    message(FATAL_ERROR
            "halo_cli ${Args} JSON differs from ${GOLDEN}; the default "
            "machine's output must stay byte-identical (see "
            ".claude/skills/verify/SKILL.md for the golden recipe)")
  endif()
endforeach()

message(STATUS "halo_cli run JSON matches the committed golden")
