//===- tests/hds_test.cpp - Hot data streams / co-allocation ------------------===//

#include "hds/CoAllocation.h"
#include "hds/HdsPipeline.h"
#include "hds/HotStreams.h"

#include <gtest/gtest.h>

using namespace halo;

namespace {

std::vector<uint32_t> repeatPattern(std::vector<uint32_t> Pattern,
                                    int Times) {
  std::vector<uint32_t> Trace;
  for (int I = 0; I < Times; ++I)
    Trace.insert(Trace.end(), Pattern.begin(), Pattern.end());
  return Trace;
}

} // namespace

TEST(HotStreams, FindsRepeatedPattern) {
  HotStreamOptions Opts;
  HotStreamAnalysis A =
      findHotStreams(repeatPattern({1, 2, 3}, 100), Opts);
  ASSERT_FALSE(A.Streams.empty());
  // The hottest stream covers the repeating pattern (some rotation of it).
  const HotStream &Top = A.Streams.front();
  EXPECT_GE(Top.Frequency, 25u);
  EXPECT_GE(Top.Elements.size(), 2u);
  EXPECT_EQ(A.TraceLength, 300u);
}

TEST(HotStreams, EmptyTrace) {
  HotStreamAnalysis A = findHotStreams({}, HotStreamOptions());
  EXPECT_TRUE(A.Streams.empty());
  EXPECT_EQ(A.TraceLength, 0u);
}

TEST(HotStreams, RespectsLengthBand) {
  HotStreamOptions Opts;
  Opts.MinLength = 2;
  Opts.MaxLength = 5;
  // A long repeating pattern: streams are clipped to <= 5 elements.
  HotStreamAnalysis A = findHotStreams(
      repeatPattern({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 50), Opts);
  for (const HotStream &S : A.Streams) {
    EXPECT_GE(S.Elements.size(), 2u);
    EXPECT_LE(S.Elements.size(), 5u);
  }
}

TEST(HotStreams, IrregularTraceYieldsManyWeakStreams) {
  // Pseudo-random object ids barely repeat: candidate streams are rare and
  // cover little of the trace (the roms failure mode at object level).
  std::vector<uint32_t> Trace;
  uint64_t X = 99;
  for (int I = 0; I < 4000; ++I) {
    X = X * 6364136223846793005ull + 1442695040888963407ull;
    Trace.push_back((X >> 40) % 1000);
  }
  HotStreamAnalysis A = findHotStreams(Trace, HotStreamOptions());
  uint64_t Covered = 0;
  for (const HotStream &S : A.Streams)
    Covered += S.Heat;
  EXPECT_LT(double(Covered), 0.9 * double(Trace.size()));
}

TEST(CoAllocation, BuildsSetsFromStreamSites) {
  LiveObjectMap Objects;
  // Objects 0,1 from sites 10,11; both 16 bytes: packing saves a line.
  Objects.insert(1000, 16, 0, 10);
  Objects.insert(2000, 16, 1, 11);
  HotStream S;
  S.Elements = {0, 1};
  S.Frequency = 50;
  S.Heat = 100;
  CoAllocationOptions Opts;
  std::vector<CoAllocationSet> Sets =
      buildCoAllocationSets({S}, Objects, Opts);
  ASSERT_EQ(Sets.size(), 1u);
  EXPECT_EQ(Sets[0].Sites, (std::vector<uint32_t>{10, 11}));
  EXPECT_GT(Sets[0].Benefit, 0.0);
}

TEST(CoAllocation, NoBenefitNoSet) {
  LiveObjectMap Objects;
  // A single large object: packing cannot reduce lines.
  Objects.insert(1000, 256, 0, 10);
  HotStream S;
  S.Elements = {0};
  S.Frequency = 50;
  S.Heat = 50;
  EXPECT_TRUE(
      buildCoAllocationSets({S}, Objects, CoAllocationOptions()).empty());
}

TEST(CoAllocation, DuplicateSetsMergeBenefit) {
  LiveObjectMap Objects;
  Objects.insert(1000, 16, 0, 10);
  Objects.insert(2000, 16, 1, 11);
  HotStream S1, S2;
  S1.Elements = {0, 1};
  S1.Frequency = 10;
  S2.Elements = {1, 0};
  S2.Frequency = 20;
  std::vector<CoAllocationSet> Sets =
      buildCoAllocationSets({S1, S2}, Objects, CoAllocationOptions());
  ASSERT_EQ(Sets.size(), 1u);
  // 1.5 lines saved per occurrence (2 scattered lines vs 32/64 packed),
  // over 10 + 20 occurrences.
  EXPECT_DOUBLE_EQ(Sets[0].Benefit, 45.0);
}

TEST(CoAllocation, PackingKeepsDisjointSets) {
  CoAllocationOptions Opts;
  std::vector<CoAllocationSet> Candidates = {
      {{1, 2}, 100.0}, // Strongest.
      {{2, 3}, 90.0},  // Overlaps the first: rejected.
      {{4, 5}, 50.0},  // Disjoint: chosen.
  };
  std::vector<CoAllocationSet> Chosen =
      packCoAllocationSets(Candidates, Opts);
  ASSERT_EQ(Chosen.size(), 2u);
  EXPECT_EQ(Chosen[0].Sites, (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(Chosen[1].Sites, (std::vector<uint32_t>{4, 5}));
}

TEST(CoAllocation, PackingWeighsBenefitAgainstSize) {
  // w/sqrt(|S|): a huge set with mild benefit loses to a tight pair.
  CoAllocationOptions Opts;
  std::vector<CoAllocationSet> Candidates = {
      {{1, 2, 3, 4, 5, 6, 7, 8, 9}, 120.0}, // 120/3 = 40.
      {{1, 2}, 70.0},                       // 70/1.41 ~ 49.5: wins.
  };
  std::vector<CoAllocationSet> Chosen =
      packCoAllocationSets(Candidates, Opts);
  ASSERT_EQ(Chosen.size(), 1u);
  EXPECT_EQ(Chosen[0].Sites.size(), 2u);
}

TEST(CoAllocation, MaxGroupsCap) {
  CoAllocationOptions Opts;
  Opts.MaxGroups = 1;
  std::vector<CoAllocationSet> Candidates = {{{1}, 10.0}, {{2}, 5.0}};
  EXPECT_EQ(packCoAllocationSets(Candidates, Opts).size(), 1u);
}

TEST(CoAllocation, SiteGroupMapFlattens) {
  std::unordered_map<uint32_t, uint32_t> Map =
      siteGroupMap({{{1, 2}, 10.0}, {{5}, 5.0}});
  EXPECT_EQ(Map.at(1), 0u);
  EXPECT_EQ(Map.at(2), 0u);
  EXPECT_EQ(Map.at(5), 1u);
  EXPECT_EQ(Map.count(9), 0u);
}

TEST(HdsPipeline, EndToEndOnPairedAccesses) {
  // Two sites allocate pairwise-accessed objects: HDS groups both sites.
  Program P;
  FunctionId Main = P.addFunction("main");
  CallSiteId SiteA = P.addMallocSite(Main, "main>a");
  CallSiteId SiteB = P.addMallocSite(Main, "main>b");

  HdsParameters Params;
  HdsArtifacts Art = optimizeBinaryHds(
      P,
      [&](Runtime &RT) {
        std::vector<std::pair<uint64_t, uint64_t>> Pairs;
        for (int I = 0; I < 60; ++I)
          Pairs.emplace_back(RT.malloc(16, SiteA), RT.malloc(16, SiteB));
        for (int Pass = 0; Pass < 10; ++Pass)
          for (auto [A, B] : Pairs) {
            RT.load(A, 16);
            RT.load(B, 16);
          }
      },
      Params);

  EXPECT_GT(Art.Analysis.TraceLength, 0u);
  ASSERT_FALSE(Art.SiteToGroup.empty());
  ASSERT_TRUE(Art.SiteToGroup.count(SiteA));
  ASSERT_TRUE(Art.SiteToGroup.count(SiteB));
  EXPECT_EQ(Art.SiteToGroup.at(SiteA), Art.SiteToGroup.at(SiteB));
}

TEST(HdsPipeline, WrapperSiteCannotDiscriminate) {
  // All allocations share one malloc site (povray shape): at most one
  // group exists and it contains just that site.
  Program P;
  FunctionId Main = P.addFunction("main");
  FunctionId Wrap = P.addFunction("wrap");
  CallSiteId SWrap = P.addCallSite(Main, Wrap, "main>wrap");
  CallSiteId SMalloc = P.addMallocSite(Wrap, "wrap>malloc");

  HdsArtifacts Art = optimizeBinaryHds(
      P,
      [&](Runtime &RT) {
        std::vector<uint64_t> Hot, Cold;
        for (int I = 0; I < 60; ++I) {
          Runtime::Scope W(RT, SWrap);
          Hot.push_back(RT.malloc(16, SMalloc));
          Cold.push_back(RT.malloc(16, SMalloc));
        }
        for (int Pass = 0; Pass < 10; ++Pass)
          for (uint64_t H : Hot)
            RT.load(H, 16);
      },
      HdsParameters());

  for (const CoAllocationSet &G : Art.Groups)
    EXPECT_EQ(G.Sites, (std::vector<uint32_t>{SMalloc}));
}
