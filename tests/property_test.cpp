//===- tests/property_test.cpp - Parameterised invariant sweeps ----------------===//
//
// Property-style tests: each sweeps a component across seeds or geometry
// parameters and checks invariants rather than specific values.
//
//===----------------------------------------------------------------------===//

#include "core/GroupAllocator.h"
#include "group/Grouping.h"
#include "hds/Sequitur.h"
#include "identify/Identify.h"
#include "mem/BoundaryTagAllocator.h"
#include "mem/SizeClassAllocator.h"
#include "profile/AffinityQueue.h"
#include "sim/MemoryHierarchy.h"
#include "support/Rng.h"
#include "trace/Context.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

using namespace halo;

//===----------------------------------------------------------------------===//
// Affinity queue invariants across distances.
//===----------------------------------------------------------------------===//

class AffinityDistanceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AffinityDistanceSweep, WindowInvariants) {
  const uint64_t Distance = GetParam();
  AffinityQueue Queue(Distance);
  Rng Random(Distance * 7919 + 1);
  for (int I = 0; I < 5000; ++I) {
    uint32_t Object = static_cast<uint32_t>(Random.nextBelow(64));
    uint64_t Bytes = 1 + Random.nextBelow(32);
    const auto &Partners = Queue.push(Object, Object % 8, I, Bytes);
    // Never a self-partner; never a duplicate partner.
    std::set<uint32_t> Seen;
    for (const AffinityQueue::Entry &E : Partners) {
      EXPECT_NE(E.Object, Object);
      EXPECT_TRUE(Seen.insert(E.Object).second);
    }
    // The window can never hold more entries than fit in the distance
    // (minimum entry size is one byte) plus the new entry.
    EXPECT_LE(Queue.size(), Distance + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, AffinityDistanceSweep,
                         ::testing::Values(8, 16, 32, 64, 128, 512, 4096));

//===----------------------------------------------------------------------===//
// Cache invariants across geometries.
//===----------------------------------------------------------------------===//

struct CacheGeometry {
  uint64_t Size;
  uint32_t Ways;
};

class CacheGeometrySweep : public ::testing::TestWithParam<CacheGeometry> {};

TEST_P(CacheGeometrySweep, HitRateInvariants) {
  Cache C(CacheConfig{GetParam().Size, GetParam().Ways, 64});
  Rng Random(GetParam().Size ^ GetParam().Ways);
  uint64_t Accesses = 4000;
  for (uint64_t I = 0; I < Accesses; ++I)
    C.access(Random.nextBelow(GetParam().Size * 4));
  EXPECT_EQ(C.hits() + C.misses(), Accesses);
  // A working set fitting the cache must eventually hit every time.
  C.reset();
  for (int Round = 0; Round < 3; ++Round)
    for (uint64_t Addr = 0; Addr < GetParam().Size / 2; Addr += 64)
      C.access(Addr);
  uint64_t Lines = GetParam().Size / 2 / 64;
  EXPECT_EQ(C.misses(), Lines);
  EXPECT_EQ(C.hits(), 2 * Lines);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometrySweep,
                         ::testing::Values(CacheGeometry{4096, 1},
                                           CacheGeometry{8192, 2},
                                           CacheGeometry{32768, 8},
                                           CacheGeometry{65536, 16}));

//===----------------------------------------------------------------------===//
// Allocator invariants under random operation sequences.
//===----------------------------------------------------------------------===//

class AllocatorFuzzSweep : public ::testing::TestWithParam<uint64_t> {};

namespace {

/// Runs a random alloc/free sequence and checks the live set stays
/// disjoint and accounted.
template <typename AllocT> void fuzzAllocator(AllocT &A, uint64_t Seed) {
  Rng Random(Seed);
  std::map<uint64_t, uint64_t> Live; // addr -> size
  uint64_t LiveBytes = 0;
  for (int I = 0; I < 4000; ++I) {
    if (Live.empty() || Random.nextBool(0.6)) {
      uint64_t Size = 1 + Random.nextBelow(300);
      uint64_t Addr = A.allocate(AllocRequest{Size, 0});
      // No overlap with any live region.
      auto Next = Live.lower_bound(Addr);
      if (Next != Live.end()) {
        EXPECT_LE(Addr + Size, Next->first);
      }
      if (Next != Live.begin()) {
        auto Prev = std::prev(Next);
        EXPECT_LE(Prev->first + Prev->second, Addr);
      }
      EXPECT_TRUE(A.owns(Addr));
      EXPECT_GE(A.usableSize(Addr), Size);
      Live.emplace(Addr, Size);
      LiveBytes += Size;
    } else {
      auto It = Live.begin();
      std::advance(It, Random.nextBelow(Live.size()));
      A.deallocate(It->first);
      EXPECT_FALSE(A.owns(It->first));
      LiveBytes -= It->second;
      Live.erase(It);
    }
    EXPECT_EQ(A.liveBytes(), LiveBytes);
  }
  for (auto &[Addr, Size] : Live)
    A.deallocate(Addr);
  EXPECT_EQ(A.liveBytes(), 0u);
}

} // namespace

TEST_P(AllocatorFuzzSweep, SizeClassAllocator) {
  SizeClassAllocator A;
  fuzzAllocator(A, GetParam());
}

TEST_P(AllocatorFuzzSweep, BoundaryTagAllocator) {
  BoundaryTagAllocator A;
  fuzzAllocator(A, GetParam());
}

TEST_P(AllocatorFuzzSweep, GroupAllocatorMixedTraffic) {
  struct EvenOddPolicy : GroupPolicy {
    int32_t selectGroup(const AllocRequest &R) const override {
      return R.ImmediateSite % 3 == 2 ? -1 : int32_t(R.ImmediateSite % 3);
    }
    uint32_t numGroups() const override { return 2; }
  };
  SizeClassAllocator Backing(0x7800000000ull);
  EvenOddPolicy Policy;
  GroupAllocatorOptions Options;
  Options.ChunkSize = 1 << 16;
  Options.SlabSize = 1 << 20;
  GroupAllocator GA(Backing, Policy, Options);

  Rng Random(GetParam() * 31 + 5);
  std::map<uint64_t, uint64_t> Live;
  uint64_t GroupedLive = 0;
  for (int I = 0; I < 4000; ++I) {
    if (Live.empty() || Random.nextBool(0.6)) {
      uint64_t Size = 1 + Random.nextBelow(200);
      uint32_t Site = static_cast<uint32_t>(Random.nextBelow(3));
      uint64_t Addr = GA.allocate(AllocRequest{Size, Site});
      EXPECT_TRUE(GA.owns(Addr));
      auto Next = Live.lower_bound(Addr);
      if (Next != Live.end()) {
        EXPECT_LE(Addr + Size, Next->first);
      }
      Live.emplace(Addr, Size);
      if (Site != 2)
        GroupedLive += Size;
    } else {
      auto It = Live.begin();
      std::advance(It, Random.nextBelow(Live.size()));
      GA.deallocate(It->first);
      Live.erase(It);
    }
    EXPECT_LE(GA.groupedLiveBytes(), GroupedLive);
  }
  for (auto &[Addr, Size] : Live)
    GA.deallocate(Addr);
  EXPECT_EQ(GA.liveBytes(), 0u);
  EXPECT_EQ(GA.groupedLiveBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorFuzzSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

//===----------------------------------------------------------------------===//
// SEQUITUR round-trips across alphabets and lengths.
//===----------------------------------------------------------------------===//

struct SequiturCase {
  uint32_t Alphabet;
  int Length;
};

class SequiturSweep : public ::testing::TestWithParam<SequiturCase> {};

TEST_P(SequiturSweep, RoundTripAndUtility) {
  Rng Random(GetParam().Alphabet * 1009 + GetParam().Length);
  std::vector<uint32_t> Input;
  for (int I = 0; I < GetParam().Length; ++I)
    Input.push_back(static_cast<uint32_t>(
        Random.nextBelow(GetParam().Alphabet)));

  Sequitur S;
  for (uint32_t T : Input)
    S.append(T);
  auto Rules = S.extractRules();
  EXPECT_EQ(Sequitur::expandRule(Rules, 0, Input.size() * 2), Input);

  // Rule utility: every non-start rule is referenced at least twice.
  std::unordered_map<uint32_t, int> Uses;
  for (const auto &R : Rules)
    for (const auto &B : R.Body)
      if (B.IsRule)
        ++Uses[B.Value];
  for (uint32_t R = 1; R < Rules.size(); ++R)
    EXPECT_GE(Uses[R], 2) << "rule " << R;

  // Frequencies weighted by expansion length recompose the input length.
  uint64_t Terminals = 0;
  for (const auto &R : Rules)
    for (const auto &B : R.Body)
      if (!B.IsRule)
        Terminals += Rules[R.Id].Frequency;
  EXPECT_EQ(Terminals, Input.size());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SequiturSweep,
    ::testing::Values(SequiturCase{2, 64}, SequiturCase{2, 2000},
                      SequiturCase{3, 1000}, SequiturCase{5, 3000},
                      SequiturCase{16, 3000}, SequiturCase{100, 1000}));

//===----------------------------------------------------------------------===//
// Grouping invariants on random graphs.
//===----------------------------------------------------------------------===//

class GroupingFuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupingFuzzSweep, GroupsAreDisjointBoundedAndDeterministic) {
  Rng Random(GetParam() * 131 + 7);
  AffinityGraph G;
  uint32_t Nodes = 5 + static_cast<uint32_t>(Random.nextBelow(30));
  for (GraphNodeId N = 0; N < Nodes; ++N)
    G.addAccesses(N, 1 + Random.nextBelow(1000));
  for (GraphNodeId U = 0; U < Nodes; ++U)
    for (GraphNodeId V = U; V < Nodes; ++V)
      if (Random.nextBool(0.2))
        G.addEdgeWeight(U, V, 1 + Random.nextBelow(100));

  GroupingOptions Options;
  Options.MinEdgeWeight = 5;
  Options.GroupWeightThreshold = 0.0;
  Options.MaxGroupMembers = 4;

  std::vector<Group> Groups = buildGroups(G, Options);
  std::set<GraphNodeId> Used;
  for (const Group &Grp : Groups) {
    EXPECT_GE(Grp.Members.size(), 1u);
    EXPECT_LE(Grp.Members.size(), 4u);
    for (GraphNodeId M : Grp.Members) {
      EXPECT_TRUE(G.hasNode(M));
      EXPECT_TRUE(Used.insert(M).second) << "node in two groups";
    }
    EXPECT_EQ(Grp.Weight, G.subgraphWeight(Grp.Members));
  }
  // Popularity ordering.
  for (size_t I = 1; I < Groups.size(); ++I)
    EXPECT_GE(Groups[I - 1].Accesses, Groups[I].Accesses);
  // Determinism.
  std::vector<Group> Again = buildGroups(G, Options);
  ASSERT_EQ(Groups.size(), Again.size());
  for (size_t I = 0; I < Groups.size(); ++I)
    EXPECT_EQ(Groups[I].Members, Again[I].Members);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupingFuzzSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

//===----------------------------------------------------------------------===//
// Identification invariants on random context populations.
//===----------------------------------------------------------------------===//

class IdentifyFuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IdentifyFuzzSweep, MembersAlwaysMatchTheirSelector) {
  Rng Random(GetParam() * 977 + 3);
  ContextTable T;
  std::vector<ContextId> All;
  for (int C = 0; C < 24; ++C) {
    Context Frames;
    uint32_t Depth = 1 + Random.nextBelow(6);
    for (uint32_t D = 0; D < Depth; ++D) {
      CallSiteId Site = static_cast<CallSiteId>(Random.nextBelow(12));
      Frames.push_back(CallFrame{Site, Site});
    }
    All.push_back(T.intern(reduceContext(Frames)));
  }
  std::sort(All.begin(), All.end());
  All.erase(std::unique(All.begin(), All.end()), All.end());

  // Random disjoint groups over the first contexts.
  std::vector<Group> Groups;
  size_t Taken = 0;
  while (Taken + 2 <= All.size() && Groups.size() < 3) {
    Group G;
    size_t Size = 1 + Random.nextBelow(2);
    for (size_t I = 0; I < Size && Taken < All.size(); ++I)
      G.Members.push_back(All[Taken++]);
    G.Accesses = 1000 - Taken;
    Groups.push_back(G);
  }

  IdentificationResult R = identifyGroups(Groups, T);
  ASSERT_EQ(R.Selectors.size(), Groups.size());
  // Every member's chain matches its own group's selector (the
  // conjunction only ever uses sites from the member's chain).
  for (size_t G = 0; G < Groups.size(); ++G)
    for (GraphNodeId M : Groups[G].Members)
      EXPECT_TRUE(R.Selectors[G].matchesChain(T.info(M).Chain));
  // Every selector site really is instrumentable (exists in the union).
  std::set<CallSiteId> SiteSet(R.Sites.begin(), R.Sites.end());
  for (const Selector &Sel : R.Selectors)
    for (CallSiteId Site : Sel.referencedSites())
      EXPECT_TRUE(SiteSet.count(Site));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdentifyFuzzSweep,
                         ::testing::Values(7, 14, 21, 28, 35));

//===----------------------------------------------------------------------===//
// Context reduction is idempotent and order-preserving.
//===----------------------------------------------------------------------===//

class ReduceFuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReduceFuzzSweep, IdempotentAndDuplicateFree) {
  Rng Random(GetParam());
  for (int Trial = 0; Trial < 200; ++Trial) {
    Context C;
    uint32_t Depth = Random.nextBelow(12);
    for (uint32_t D = 0; D < Depth; ++D) {
      uint32_t Pair = static_cast<uint32_t>(Random.nextBelow(5));
      C.push_back(CallFrame{Pair, Pair + 100});
    }
    Context R1 = reduceContext(C);
    EXPECT_EQ(reduceContext(R1), R1); // Idempotent.
    // No duplicate (function, site) pairs survive.
    std::set<std::pair<FunctionId, CallSiteId>> Seen;
    for (const CallFrame &F : R1)
      EXPECT_TRUE(Seen.insert({F.Function, F.Site}).second);
    // Reduction never invents frames.
    for (const CallFrame &F : R1)
      EXPECT_NE(std::find(C.begin(), C.end(), F), C.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReduceFuzzSweep, ::testing::Values(1, 2, 3));

//===----------------------------------------------------------------------===//
// Memory hierarchy: miss monotonicity along the levels.
//===----------------------------------------------------------------------===//

TEST(HierarchyProperty, MissCountsMonotonicAcrossLevels) {
  MemoryHierarchy M;
  Rng Random(42);
  for (int I = 0; I < 20000; ++I)
    M.access(Random.nextBelow(64 * 1024 * 1024), 8);
  MemoryCounters C = M.counters();
  EXPECT_LE(C.L2Misses, C.L1Misses);
  EXPECT_LE(C.L3Misses, C.L2Misses);
  EXPECT_LE(C.L1Misses, C.Accesses);
}
