//===- tests/machine_test.cpp - Machine model / preset tests -----------------===//
//
// The MachineConfig contract: every preset validates, round-trips through
// the registry, and drives Tlb/Cache/TimingModel soundly; the default
// preset is field-for-field the struct defaults (so machine-less code keeps
// measuring exactly what it always did); distinct presets produce distinct
// measurements from one machine-independent trace; and benchmark-sharded
// comparisons are bit-identical to serial ones.
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluation.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

#include <set>

using namespace halo;

namespace {

class MachinePresetTest : public ::testing::TestWithParam<std::string> {
protected:
  const MachineConfig &machine() const { return *findMachine(GetParam()); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(MachineRegistry, HasTheFourBuiltinPresets) {
  const std::vector<std::string> &Names = machineNames();
  ASSERT_GE(Names.size(), 4u);
  for (const char *Expected :
       {"xeon-w2195", "skylake-desktop", "mobile", "server"})
    EXPECT_NE(std::find(Names.begin(), Names.end(), Expected), Names.end())
        << "missing preset " << Expected;
  // Names are unique (the registry is keyed by them).
  EXPECT_EQ(std::set<std::string>(Names.begin(), Names.end()).size(),
            Names.size());
}

TEST(MachineRegistry, RoundTripsEveryPresetByName) {
  for (const MachineConfig &M : machinePresets()) {
    const MachineConfig *Found = findMachine(M.Name);
    ASSERT_NE(Found, nullptr) << M.Name;
    EXPECT_EQ(Found, &M); // Same registry object, not a copy.
    EXPECT_EQ(Found->Name, M.Name);
  }
}

TEST(MachineRegistry, UnknownNamesReturnNull) {
  EXPECT_EQ(findMachine(""), nullptr);
  EXPECT_EQ(findMachine("xeon"), nullptr);
  EXPECT_EQ(findMachine("XEON-W2195"), nullptr); // Names are exact.
}

TEST(MachineRegistry, DefaultMachineIsTheStructDefaults) {
  const MachineConfig &M = defaultMachine();
  EXPECT_EQ(M.Name, "xeon-w2195");

  // Field-for-field identity with the default-constructed structs: this is
  // what keeps machine-less code (and the pre-machine golden JSON)
  // bit-identical.
  HierarchyConfig Default;
  EXPECT_EQ(M.Hierarchy.L1.SizeBytes, Default.L1.SizeBytes);
  EXPECT_EQ(M.Hierarchy.L1.Ways, Default.L1.Ways);
  EXPECT_EQ(M.Hierarchy.L1.LineSize, Default.L1.LineSize);
  EXPECT_EQ(M.Hierarchy.L2.SizeBytes, Default.L2.SizeBytes);
  EXPECT_EQ(M.Hierarchy.L2.Ways, Default.L2.Ways);
  EXPECT_EQ(M.Hierarchy.L3.SizeBytes, Default.L3.SizeBytes);
  EXPECT_EQ(M.Hierarchy.L3.Ways, Default.L3.Ways);
  EXPECT_EQ(M.Hierarchy.TlbEntries, Default.TlbEntries);
  EXPECT_EQ(M.Hierarchy.TlbWays, Default.TlbWays);
  EXPECT_EQ(M.Hierarchy.Latency.L1Hit, Default.Latency.L1Hit);
  EXPECT_EQ(M.Hierarchy.Latency.L2Hit, Default.Latency.L2Hit);
  EXPECT_EQ(M.Hierarchy.Latency.L3Hit, Default.Latency.L3Hit);
  EXPECT_EQ(M.Hierarchy.Latency.Memory, Default.Latency.Memory);
  EXPECT_EQ(M.Hierarchy.Latency.TlbMiss, Default.Latency.TlbMiss);

  CostModel DefaultCosts;
  EXPECT_EQ(M.Costs.AllocCall, DefaultCosts.AllocCall);
  EXPECT_EQ(M.Costs.InstrumentationOp, DefaultCosts.InstrumentationOp);
  EXPECT_DOUBLE_EQ(M.Costs.CyclesPerSecond, DefaultCosts.CyclesPerSecond);
}

TEST(MachineRegistry, PresetGeometriesAreDistinct) {
  std::set<std::string> Summaries;
  for (const MachineConfig &M : machinePresets())
    Summaries.insert(M.summary());
  EXPECT_EQ(Summaries.size(), machinePresets().size());
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

TEST(MachineValidation, RejectsBrokenGeometries) {
  MachineConfig M = defaultMachine();
  EXPECT_EQ(M.validate(), "");

  MachineConfig NoName = M;
  NoName.Name.clear();
  EXPECT_NE(NoName.validate(), "");

  MachineConfig OddLine = M;
  OddLine.Hierarchy.L1.LineSize = 48; // Not a power of two.
  EXPECT_NE(OddLine.validate(), "");

  MachineConfig ZeroWays = M;
  ZeroWays.Hierarchy.L2.Ways = 0;
  EXPECT_NE(ZeroWays.validate(), "");

  MachineConfig TooManyWays = M;
  TooManyWays.Hierarchy.L3.Ways = 512; // Exceeds the uint8_t MRU hint.
  TooManyWays.Hierarchy.L3.SizeBytes = 512 * 64 * 8;
  EXPECT_NE(TooManyWays.validate(), "");

  MachineConfig RaggedSize = M;
  RaggedSize.Hierarchy.L1.SizeBytes = 1000; // Not a way-span multiple.
  EXPECT_NE(RaggedSize.validate(), "");

  MachineConfig MixedLines = M;
  MixedLines.Hierarchy.L2.LineSize = 128;
  MixedLines.Hierarchy.L2.SizeBytes = 1024 * 1024;
  EXPECT_NE(MixedLines.validate(), "");

  MachineConfig RaggedTlb = M;
  RaggedTlb.Hierarchy.TlbEntries = 63; // Not divisible by 4 ways.
  EXPECT_NE(RaggedTlb.validate(), "");

  MachineConfig InvertedLat = M;
  InvertedLat.Hierarchy.Latency.L2Hit = 2; // Faster than L1.
  EXPECT_NE(InvertedLat.validate(), "");

  MachineConfig NoClock = M;
  NoClock.Costs.CyclesPerSecond = 0.0;
  EXPECT_NE(NoClock.validate(), "");
}

//===----------------------------------------------------------------------===//
// Per-preset hardware invariants (Tlb / Cache / TimingModel)
//===----------------------------------------------------------------------===//

TEST_P(MachinePresetTest, ValidatesCleanlyAndSummarises) {
  const MachineConfig &M = machine();
  EXPECT_EQ(M.validate(), "");
  EXPECT_FALSE(M.Description.empty());
  EXPECT_NE(M.summary().find("L1D"), std::string::npos);
}

TEST_P(MachinePresetTest, CacheLevelsHavePowerOfTwoLinesAndExactSets) {
  const MachineConfig &M = machine();
  for (const CacheConfig *Level :
       {&M.Hierarchy.L1, &M.Hierarchy.L2, &M.Hierarchy.L3}) {
    Cache C(*Level);
    // Line size is a power of two.
    EXPECT_EQ(Level->LineSize & (Level->LineSize - 1), 0u);
    // The geometry divides exactly into sets.
    EXPECT_EQ(uint64_t(C.numSets()) * Level->Ways * Level->LineSize,
              Level->SizeBytes);
    EXPECT_GT(C.numSets(), 0u);
  }
}

TEST_P(MachinePresetTest, CacheCountersAreSane) {
  const MachineConfig &M = machine();
  Cache C(M.Hierarchy.L1);
  EXPECT_FALSE(C.access(0));   // Cold miss.
  EXPECT_TRUE(C.access(0));    // Repeat hit (MRU path).
  EXPECT_TRUE(C.contains(0));
  EXPECT_EQ(C.hits(), 1u);
  EXPECT_EQ(C.misses(), 1u);
  EXPECT_EQ(C.accesses(), 2u);
  C.reset();
  EXPECT_EQ(C.accesses(), 0u);
  EXPECT_FALSE(C.contains(0));
}

TEST_P(MachinePresetTest, TlbEvictsAtItsConfiguredCapacity) {
  const MachineConfig &M = machine();
  const uint32_t Entries = M.Hierarchy.TlbEntries;
  Tlb T(Entries, M.Hierarchy.TlbWays);
  // Touch pages that all land in TLB set 0 until the set overflows: way
  // count + 1 distinct pages must evict the first one.
  const uint32_t Sets = Entries / M.Hierarchy.TlbWays;
  for (uint64_t P = 0; P <= M.Hierarchy.TlbWays; ++P)
    T.access(P * Sets * 4096);
  EXPECT_FALSE(T.access(0)); // Evicted.
  EXPECT_GT(T.misses(), uint64_t(M.Hierarchy.TlbWays));
}

TEST_P(MachinePresetTest, TimingModelUsesThePresetCosts) {
  const MachineConfig &M = machine();
  TimingModel T(M.Costs);
  T.addCompute(100);
  T.addAllocatorCall();
  T.addInstrumentationOp();
  EXPECT_EQ(T.totalCycles(),
            100 + M.Costs.AllocCall + M.Costs.InstrumentationOp);
  EXPECT_DOUBLE_EQ(T.seconds(), static_cast<double>(T.totalCycles()) /
                                    M.Costs.CyclesPerSecond);
}

TEST_P(MachinePresetTest, HierarchyChargesThePresetLatencies) {
  const MachineConfig &M = machine();
  MemoryHierarchy Mem(M.Hierarchy);
  const LatencyModel &Lat = M.Hierarchy.Latency;
  // Cold access: TLB miss + memory fill; hot repeat: L1 hit.
  EXPECT_EQ(Mem.access(0, 8), Lat.TlbMiss + Lat.Memory);
  EXPECT_EQ(Mem.access(0, 8), Lat.L1Hit);
  MemoryCounters C = Mem.counters();
  EXPECT_EQ(C.Accesses, 2u);
  EXPECT_EQ(C.L1Misses, 1u);
  EXPECT_EQ(C.TlbMisses, 1u);
  EXPECT_EQ(C.StallCycles, Lat.TlbMiss + Lat.Memory + Lat.L1Hit);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, MachinePresetTest,
                         ::testing::ValuesIn(machineNames()),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

//===----------------------------------------------------------------------===//
// Cross-machine measurement
//===----------------------------------------------------------------------===//

TEST(MachineMeasurement, OneTraceReplaysUnderEveryMachine) {
  Evaluation Eval(paperSetup("health"));
  const EventTrace &Recorded = Eval.trace(Scale::Test, 7);

  std::set<uint64_t> StallCycles;
  for (const MachineConfig &M : machinePresets()) {
    RunMetrics R = Eval.measure(M, AllocatorKind::Jemalloc, Scale::Test, 7);
    // The trace is machine-independent: one recording, no re-recording.
    EXPECT_EQ(&Eval.trace(Scale::Test, 7), &Recorded);
    // The event stream is identical on every machine...
    RunMetrics Default = Eval.measure(AllocatorKind::Jemalloc, Scale::Test, 7);
    EXPECT_EQ(R.Events.Allocs, Default.Events.Allocs) << M.Name;
    EXPECT_EQ(R.Events.Loads, Default.Events.Loads) << M.Name;
    EXPECT_EQ(R.Events.Stores, Default.Events.Stores) << M.Name;
    EXPECT_EQ(R.Mem.Accesses, Default.Mem.Accesses) << M.Name;
    // ...and the counters are sane.
    EXPECT_GT(R.Mem.L1Misses, 0u) << M.Name;
    EXPECT_LE(R.Mem.L2Misses, R.Mem.L1Misses) << M.Name;
    EXPECT_LE(R.Mem.L3Misses, R.Mem.L2Misses) << M.Name;
    EXPECT_GT(R.Cycles, 0u) << M.Name;
    StallCycles.insert(R.Mem.StallCycles);
  }
  // ...but the machines themselves are distinguishable: no two presets
  // charge the same stall total for this workload.
  EXPECT_EQ(StallCycles.size(), machinePresets().size());
}

TEST(MachineMeasurement, SetupMachineIsTheMeasurementKey) {
  BenchmarkSetup Setup = paperSetup("ft");
  Setup.Machine = *findMachine("mobile");
  Evaluation Mobile(std::move(Setup));
  Evaluation Default(paperSetup("ft"));

  RunMetrics OnMobile = Mobile.measure(AllocatorKind::Jemalloc, Scale::Test, 5);
  RunMetrics OnDefault =
      Default.measure(AllocatorKind::Jemalloc, Scale::Test, 5);
  // The implicit-machine overload must route through Setup.Machine: the
  // same measurement via the explicit overload is bit-identical.
  RunMetrics Explicit =
      Mobile.measure(*findMachine("mobile"), AllocatorKind::Jemalloc,
                     Scale::Test, 5);
  EXPECT_EQ(OnMobile.Cycles, Explicit.Cycles);
  EXPECT_EQ(OnMobile.Mem.StallCycles, Explicit.Mem.StallCycles);
  // And a different machine is a different experiment.
  EXPECT_NE(OnMobile.Mem.StallCycles, OnDefault.Mem.StallCycles);
}

TEST(MachineMeasurement, TrialsFanOutPerMachineBitIdentically) {
  Evaluation Eval(paperSetup("ft"));
  const MachineConfig &Server = *findMachine("server");
  auto Serial = Eval.measureTrials(Server, AllocatorKind::Jemalloc,
                                   Scale::Test, 4, 100, /*Jobs=*/1);
  auto Parallel = Eval.measureTrials(Server, AllocatorKind::Jemalloc,
                                     Scale::Test, 4, 100, /*Jobs=*/3);
  ASSERT_EQ(Serial.size(), Parallel.size());
  for (size_t T = 0; T < Serial.size(); ++T) {
    EXPECT_EQ(Serial[T].Cycles, Parallel[T].Cycles) << "trial " << T;
    EXPECT_EQ(Serial[T].Mem.L1Misses, Parallel[T].Mem.L1Misses)
        << "trial " << T;
  }
}

TEST(MachineMeasurement, SweepMachinesParallelMatchesSerial) {
  // The cross-machine sweep (halo_cli sweep's backing store) fans the
  // per-machine loop over the executor; every cell must be bit-identical
  // to the serial sweep, machine-major in request order.
  std::vector<const MachineConfig *> Machines = {findMachine("xeon-w2195"),
                                                 findMachine("mobile"),
                                                 findMachine("server")};
  Evaluation SerialEval(paperSetup("health"));
  auto Serial = sweepMachines(SerialEval, Machines, /*Trials=*/2,
                              Scale::Test, /*SeedBase=*/100, /*Jobs=*/1);
  Evaluation ParallelEval(paperSetup("health"));
  auto Parallel = sweepMachines(ParallelEval, Machines, /*Trials=*/2,
                                Scale::Test, /*SeedBase=*/100, /*Jobs=*/4);

  ASSERT_EQ(Serial.size(), Machines.size() * 3);
  ASSERT_EQ(Parallel.size(), Serial.size());
  const AllocatorKind KindOrder[] = {AllocatorKind::Jemalloc,
                                     AllocatorKind::Hds, AllocatorKind::Halo};
  for (size_t C = 0; C < Serial.size(); ++C) {
    SCOPED_TRACE("cell " + std::to_string(C));
    EXPECT_EQ(Serial[C].Machine, Machines[C / 3]);
    EXPECT_EQ(Parallel[C].Machine, Machines[C / 3]);
    EXPECT_EQ(Serial[C].Kind, KindOrder[C % 3]);
    ASSERT_EQ(Serial[C].Runs.size(), 2u);
    ASSERT_EQ(Parallel[C].Runs.size(), 2u);
    for (size_t T = 0; T < Serial[C].Runs.size(); ++T) {
      EXPECT_EQ(Serial[C].Runs[T].Cycles, Parallel[C].Runs[T].Cycles);
      EXPECT_EQ(Serial[C].Runs[T].Mem.L1Misses,
                Parallel[C].Runs[T].Mem.L1Misses);
      EXPECT_EQ(Serial[C].Runs[T].Mem.TlbMisses,
                Parallel[C].Runs[T].Mem.TlbMisses);
      EXPECT_DOUBLE_EQ(Serial[C].Runs[T].Seconds,
                       Parallel[C].Runs[T].Seconds);
    }
  }
}

//===----------------------------------------------------------------------===//
// Benchmark-sharded comparisons (halo_cli plot's backing store)
//===----------------------------------------------------------------------===//

TEST(CompareAcrossBenchmarks, ShardedRowsMatchSerialRows) {
  const std::vector<std::string> Names = {"ft", "health"};
  auto Serial =
      compareAcrossBenchmarks(Names, /*Trials=*/2, Scale::Test, /*Jobs=*/1);
  auto Sharded =
      compareAcrossBenchmarks(Names, /*Trials=*/2, Scale::Test, /*Jobs=*/2);
  ASSERT_EQ(Serial.size(), Names.size());
  ASSERT_EQ(Sharded.size(), Names.size());
  for (size_t B = 0; B < Names.size(); ++B) {
    EXPECT_EQ(Serial[B].Benchmark, Names[B]);
    EXPECT_EQ(Sharded[B].Benchmark, Names[B]);
    EXPECT_DOUBLE_EQ(Serial[B].HaloMissReduction,
                     Sharded[B].HaloMissReduction);
    EXPECT_DOUBLE_EQ(Serial[B].HdsMissReduction,
                     Sharded[B].HdsMissReduction);
    EXPECT_DOUBLE_EQ(Serial[B].HaloSpeedup, Sharded[B].HaloSpeedup);
    EXPECT_DOUBLE_EQ(Serial[B].HdsSpeedup, Sharded[B].HdsSpeedup);
  }
}

TEST(CompareAcrossBenchmarks, HonoursTheMachineArgument) {
  auto OnMobile = compareAcrossBenchmarks({"health"}, /*Trials=*/2,
                                          Scale::Test, /*Jobs=*/1,
                                          *findMachine("mobile"));
  auto OnDefault =
      compareAcrossBenchmarks({"health"}, /*Trials=*/2, Scale::Test,
                              /*Jobs=*/1);
  ASSERT_EQ(OnMobile.size(), 1u);
  ASSERT_EQ(OnDefault.size(), 1u);
  // Different hardware, different headline numbers (the whole point of
  // cross-machine sweeps).
  EXPECT_NE(OnMobile[0].HaloSpeedup, OnDefault[0].HaloSpeedup);
}
