//===- tests/workloads_test.cpp - Benchmark model sanity ----------------------===//

#include "mem/SizeClassAllocator.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace halo;

namespace {

/// Parameterised over all eleven benchmark models.
class WorkloadTest : public ::testing::TestWithParam<std::string> {};

} // namespace

TEST_P(WorkloadTest, BuildsAndRunsAtTestScale) {
  auto W = createWorkload(GetParam());
  ASSERT_NE(W, nullptr);
  EXPECT_EQ(W->name(), GetParam());
  Program P;
  W->build(P);
  EXPECT_GT(P.numCallSites(), 0u);
  SizeClassAllocator Alloc;
  Runtime RT(P, Alloc);
  W->run(RT, Scale::Test, 1);
  EXPECT_GT(RT.stats().Allocs, 100u);
  EXPECT_GT(RT.stats().Loads, 1000u);
}

TEST_P(WorkloadTest, FreesEverythingItAllocates) {
  auto W = createWorkload(GetParam());
  Program P;
  W->build(P);
  SizeClassAllocator Alloc;
  Runtime RT(P, Alloc);
  W->run(RT, Scale::Test, 1);
  EXPECT_EQ(RT.stats().Allocs, RT.stats().Frees);
  EXPECT_EQ(Alloc.liveBytes(), 0u);
}

TEST_P(WorkloadTest, BalancedCallStack) {
  auto W = createWorkload(GetParam());
  Program P;
  W->build(P);
  SizeClassAllocator Alloc;
  Runtime RT(P, Alloc);
  W->run(RT, Scale::Test, 1);
  EXPECT_EQ(RT.callDepth(), 0u);
}

TEST_P(WorkloadTest, DeterministicForSeed) {
  auto W = createWorkload(GetParam());
  Program P;
  W->build(P);
  RuntimeStats First;
  {
    SizeClassAllocator Alloc;
    Runtime RT(P, Alloc);
    W->run(RT, Scale::Test, 7);
    First = RT.stats();
  }
  SizeClassAllocator Alloc;
  Runtime RT(P, Alloc);
  W->run(RT, Scale::Test, 7);
  EXPECT_EQ(RT.stats().Allocs, First.Allocs);
  EXPECT_EQ(RT.stats().Loads, First.Loads);
  EXPECT_EQ(RT.stats().Stores, First.Stores);
}

TEST_P(WorkloadTest, SeedVariesBehaviour) {
  auto W = createWorkload(GetParam());
  Program P;
  W->build(P);
  RuntimeStats First;
  {
    SizeClassAllocator Alloc;
    Runtime RT(P, Alloc);
    W->run(RT, Scale::Test, 1);
    First = RT.stats();
  }
  SizeClassAllocator Alloc;
  Runtime RT(P, Alloc);
  W->run(RT, Scale::Test, 2);
  // Different seeds shift at least some event counts for every model that
  // uses randomness; allow equality of any single counter but not all.
  bool AllEqual = RT.stats().Allocs == First.Allocs &&
                  RT.stats().Loads == First.Loads &&
                  RT.stats().Stores == First.Stores;
  // leela's structure is seed-independent except for rare TT entries; give
  // a pass to exact matches there.
  if (GetParam() != "leela") {
    EXPECT_FALSE(AllEqual);
  }
}

TEST_P(WorkloadTest, RefScaleIsBigger) {
  auto W = createWorkload(GetParam());
  Program P;
  W->build(P);
  uint64_t TestAllocs;
  {
    SizeClassAllocator Alloc;
    Runtime RT(P, Alloc);
    W->run(RT, Scale::Test, 1);
    TestAllocs = RT.stats().Allocs;
  }
  SizeClassAllocator Alloc;
  Runtime RT(P, Alloc);
  W->run(RT, Scale::Ref, 1);
  EXPECT_GT(RT.stats().Allocs, 2 * TestAllocs);
}

TEST_P(WorkloadTest, RerunnableOnOneInstance) {
  auto W = createWorkload(GetParam());
  Program P;
  W->build(P);
  SizeClassAllocator A1, A2(0x7500000000ull);
  Runtime R1(P, A1), R2(P, A2);
  W->run(R1, Scale::Test, 3);
  W->run(R2, Scale::Test, 3);
  EXPECT_EQ(R1.stats().Allocs, R2.stats().Allocs);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &Info) { return Info.param; });

TEST(WorkloadRegistry, ElevenBenchmarks) {
  EXPECT_EQ(workloadNames().size(), 11u);
}

TEST(WorkloadRegistry, UnknownNameReturnsNull) {
  EXPECT_EQ(createWorkload("nosuch"), nullptr);
}
