//===- tests/eval_test.cpp - Evaluation harness ------------------------------===//

#include "core/GroupAllocator.h"
#include "eval/Evaluation.h"
#include "eval/Report.h"
#include "mem/SizeClassAllocator.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

using namespace halo;

TEST(PaperSetup, OmnetppFlags) {
  BenchmarkSetup S = paperSetup("omnetpp");
  EXPECT_EQ(S.Halo.Allocator.ChunkSize, 128u * 1024u);
  EXPECT_EQ(S.Halo.Allocator.MaxSpareChunks, 0u);
  EXPECT_FALSE(S.Halo.Allocator.PurgeEmptyChunks);
  EXPECT_EQ(S.Hds.Allocator.ChunkSize, 128u * 1024u);
}

TEST(PaperSetup, XalancFlags) {
  BenchmarkSetup S = paperSetup("xalanc");
  EXPECT_FALSE(S.Halo.Allocator.PurgeEmptyChunks);
  EXPECT_EQ(S.Halo.Allocator.ChunkSize, 1u << 20);
}

TEST(PaperSetup, RomsFlags) {
  BenchmarkSetup S = paperSetup("roms");
  EXPECT_EQ(S.Halo.Grouping.MaxGroups, 4u);
}

TEST(PaperSetup, DefaultsMatchSection51) {
  BenchmarkSetup S = paperSetup("health");
  EXPECT_EQ(S.Halo.Profile.AffinityDistance, 128u);
  EXPECT_DOUBLE_EQ(S.Halo.Grouping.MergeTolerance, 0.05);
  EXPECT_EQ(S.Halo.Allocator.ChunkSize, 1u << 20);
  EXPECT_EQ(S.Halo.Allocator.MaxGroupedSize, 4096u);
  EXPECT_EQ(S.Halo.Allocator.MaxSpareChunks, 1u);
  EXPECT_EQ(S.ProfileScale, Scale::Test);
}

TEST(PaperSetup, MaxGroupsCapBindsInTheHaloArtifacts) {
  // Appendix A.8: roms runs with --max-groups 4. Its own profile never
  // grows that many groups (the artefact flag is a safety cap), so hold
  // the roms invariant and additionally prove the plumbing binds by
  // tightening the same knob below health's natural group count.
  Evaluation Roms(paperSetup("roms"));
  EXPECT_LE(Roms.haloArtifacts().Groups.size(), 4u);
  EXPECT_GT(Roms.haloArtifacts().Groups.size(), 0u);

  Evaluation Natural(paperSetup("health"));
  ASSERT_GT(Natural.haloArtifacts().Groups.size(), 1u);
  BenchmarkSetup Tight = paperSetup("health");
  Tight.Halo.Grouping.MaxGroups = 1;
  Evaluation Capped(std::move(Tight));
  EXPECT_EQ(Capped.haloArtifacts().Groups.size(), 1u);
}

TEST(PaperSetup, OmnetppChunkConfigurationChangesTheMeasurement) {
  // Appendix A.8: omnetpp uses 128 KiB chunks and always-reuse. Reverting
  // to the global allocator defaults must change what a ref-scale HALO
  // run measures -- chunk granularity is the allocator's resident unit.
  Evaluation Paper(paperSetup("omnetpp"));
  BenchmarkSetup Reverted = paperSetup("omnetpp");
  Reverted.Halo.Allocator = GroupAllocatorOptions();
  Reverted.Hds.Allocator = Reverted.Halo.Allocator;
  Evaluation Defaults(std::move(Reverted));

  RunMetrics A = Paper.measure(AllocatorKind::Halo, Scale::Ref, 1);
  RunMetrics B = Defaults.measure(AllocatorKind::Halo, Scale::Ref, 1);
  // Same allocation stream either way...
  EXPECT_EQ(A.Events.Allocs, B.Events.Allocs);
  EXPECT_EQ(A.GroupedAllocs, B.GroupedAllocs);
  // ...but 128 KiB chunks bound the grouped heap's resident footprint
  // well below 1 MiB chunks, and the layout shift moves the caches.
  EXPECT_LT(A.Frag.PeakResident, B.Frag.PeakResident);
  EXPECT_NE(A.Mem.L1Misses, B.Mem.L1Misses);
}

namespace {

/// Everything small lands in one group: the simplest policy that drives
/// chunks through the fill -> empty -> retire cycle.
struct SingleGroupPolicy : GroupPolicy {
  int32_t selectGroup(const AllocRequest &) const override { return 0; }
  uint32_t numGroups() const override { return 1; }
};

/// Fills three chunks' worth of grouped regions, frees them all, and
/// reports what the allocator kept: (spare chunks, resident bytes).
std::pair<uint64_t, uint64_t>
churnChunks(const GroupAllocatorOptions &Options) {
  SizeClassAllocator Backing(0x7000000000ull);
  SingleGroupPolicy Policy;
  GroupAllocator GA(Backing, Policy, Options);
  const uint64_t RegionSize = 256;
  const uint64_t PerChunk =
      (Options.ChunkSize - GroupAllocator::ChunkHeaderSize) / RegionSize;
  std::vector<uint64_t> Regions;
  for (uint64_t I = 0; I < 3 * PerChunk; ++I)
    Regions.push_back(GA.allocate(AllocRequest{RegionSize, 1}));
  for (uint64_t Addr : Regions)
    GA.deallocate(Addr);
  return {GA.spareChunkCount(), GA.residentBytes()};
}

} // namespace

TEST(PaperSetup, XalancAlwaysReuseKeepsDirtyChunksResident) {
  // Appendix A.8: xalanc always reuses empty chunks instead of purging
  // them. Drive the group allocator with xalanc's exact configuration
  // (MaxSpareChunks 0, PurgeEmptyChunks off): every emptied chunk must
  // stay resident as a dirty spare, while the global defaults keep one
  // spare and purge the rest.
  auto [PaperSpares, PaperResident] =
      churnChunks(paperSetup("xalanc").Halo.Allocator);
  auto [DefaultSpares, DefaultResident] =
      churnChunks(GroupAllocatorOptions());
  EXPECT_GT(PaperSpares, DefaultSpares);
  EXPECT_GT(PaperResident, DefaultResident);
}

TEST(Evaluation, RecordTracesParallelMatchesLazyRecording) {
  // Pre-recording across the pool must yield byte-identical traces (and
  // therefore bit-identical measurements) to the serial lazy path.
  Evaluation Warm(paperSetup("ft"));
  Warm.recordTraces(Scale::Test, /*Trials=*/4, /*SeedBase=*/100, /*Jobs=*/4);
  Evaluation Lazy(paperSetup("ft"));
  for (uint64_t Seed = 100; Seed < 104; ++Seed) {
    const EventTrace &Pre = Warm.trace(Scale::Test, Seed);
    const EventTrace &Direct = Lazy.trace(Scale::Test, Seed);
    EXPECT_EQ(Pre.byteSize(), Direct.byteSize()) << "seed " << Seed;
    EXPECT_EQ(Pre.numEvents(), Direct.numEvents()) << "seed " << Seed;
    EXPECT_EQ(Pre.numObjects(), Direct.numObjects()) << "seed " << Seed;
    RunMetrics A = Warm.measure(AllocatorKind::Jemalloc, Scale::Test, Seed);
    RunMetrics B = Lazy.measure(AllocatorKind::Jemalloc, Scale::Test, Seed);
    EXPECT_EQ(A.Cycles, B.Cycles) << "seed " << Seed;
    EXPECT_EQ(A.Mem.L1Misses, B.Mem.L1Misses) << "seed " << Seed;
  }
  // Re-recording is a no-op: the cached buffer is returned by reference.
  const EventTrace &First = Warm.trace(Scale::Test, 100);
  Warm.recordTraces(Scale::Test, /*Trials=*/4, /*SeedBase=*/100, /*Jobs=*/4);
  EXPECT_EQ(&Warm.trace(Scale::Test, 100), &First);
}

TEST(Evaluation, PrepareAllArtifactsMatchesLazyMaterialisation) {
  Evaluation Parallel(paperSetup("health"));
  Parallel.prepareAllArtifacts(/*Jobs=*/2);
  Evaluation Serial(paperSetup("health"));
  // Lazy order: HALO first, then HDS (shared recording either way).
  const HaloArtifacts &A = Serial.haloArtifacts();
  const HdsArtifacts &H = Serial.hdsArtifacts();
  EXPECT_EQ(Parallel.haloArtifacts().ProfiledAccesses, A.ProfiledAccesses);
  EXPECT_EQ(Parallel.haloArtifacts().Plan.sites(), A.Plan.sites());
  ASSERT_EQ(Parallel.haloArtifacts().Groups.size(), A.Groups.size());
  for (size_t G = 0; G < A.Groups.size(); ++G)
    EXPECT_EQ(Parallel.haloArtifacts().Groups[G].Members, A.Groups[G].Members);
  EXPECT_EQ(Parallel.hdsArtifacts().SiteToGroup, H.SiteToGroup);
  EXPECT_EQ(Parallel.hdsArtifacts().Groups.size(), H.Groups.size());
}

TEST(Evaluation, BaselineMetricsPopulated) {
  Evaluation E(paperSetup("ft"));
  RunMetrics M = E.measure(AllocatorKind::Jemalloc, Scale::Test, 1);
  EXPECT_GT(M.Seconds, 0.0);
  EXPECT_GT(M.Cycles, 0u);
  EXPECT_GT(M.Mem.Accesses, 0u);
  EXPECT_GT(M.Mem.L1Misses, 0u);
  EXPECT_GT(M.Events.Allocs, 0u);
  EXPECT_EQ(M.InstrumentationOps, 0u);
}

TEST(Evaluation, HaloRunGroupsAllocations) {
  Evaluation E(paperSetup("health"));
  RunMetrics M = E.measure(AllocatorKind::Halo, Scale::Test, 1);
  EXPECT_GT(M.GroupedAllocs, 0u);
  EXPECT_GT(M.ForwardedAllocs, 0u);
  EXPECT_GT(M.InstrumentationOps, 0u);
  EXPECT_GT(M.Frag.PeakResident, 0u);
}

TEST(Evaluation, HaloBeatsBaselineOnHealth) {
  // The paper's headline case, at test scale: HALO must reduce L1D misses.
  Evaluation E(paperSetup("health"));
  RunMetrics Base = E.measure(AllocatorKind::Jemalloc, Scale::Test, 1);
  RunMetrics Halo = E.measure(AllocatorKind::Halo, Scale::Test, 1);
  EXPECT_LT(Halo.Mem.L1Misses, Base.Mem.L1Misses);
}

TEST(Evaluation, InstrumentedOnlyRunCostsAlmostNothing) {
  Evaluation E(paperSetup("ft"));
  RunMetrics Base = E.measure(AllocatorKind::Jemalloc, Scale::Test, 1);
  RunMetrics Instr =
      E.measure(AllocatorKind::HaloInstrumentedOnly, Scale::Test, 1);
  EXPECT_GT(Instr.InstrumentationOps, 0u);
  // Identical memory behaviour, tiny cycle delta (Section 5.2: noise
  // dwarfs instrumentation overhead).
  EXPECT_EQ(Instr.Mem.L1Misses, Base.Mem.L1Misses);
  EXPECT_LT(Instr.Seconds, Base.Seconds * 1.01);
}

TEST(Evaluation, TrialsVaryBySeed) {
  Evaluation E(paperSetup("ft"));
  auto Runs = E.measureTrials(AllocatorKind::Jemalloc, Scale::Test, 3);
  ASSERT_EQ(Runs.size(), 3u);
  EXPECT_GT(Evaluation::medianSeconds(Runs), 0.0);
  EXPECT_GT(Evaluation::medianL1Misses(Runs), 0.0);
}

TEST(Evaluation, RandomPoolsMeasurable) {
  Evaluation E(paperSetup("art"));
  RunMetrics M = E.measure(AllocatorKind::RandomPools, Scale::Test, 1);
  EXPECT_GT(M.Mem.L1Misses, 0u);
}

TEST(Evaluation, PtmallocWorseThanJemallocOnListWorkloads) {
  // Section 5.1: jemalloc universally outperforms ptmalloc2 as a baseline.
  Evaluation E(paperSetup("health"));
  RunMetrics Je = E.measure(AllocatorKind::Jemalloc, Scale::Test, 1);
  RunMetrics Pt = E.measure(AllocatorKind::Ptmalloc, Scale::Test, 1);
  EXPECT_GT(Pt.Mem.L1Misses, Je.Mem.L1Misses);
}

TEST(Report, RendersAlignedTable) {
  Report R("demo");
  R.setColumns({"bench", "value"});
  R.addRow({"health", "28.0%"});
  R.addRow({"ft", "9.5%"});
  R.addNote("a note");
  std::string Text = R.str();
  EXPECT_NE(Text.find("== demo =="), std::string::npos);
  EXPECT_NE(Text.find("bench"), std::string::npos);
  EXPECT_NE(Text.find("health  28.0%"), std::string::npos);
  EXPECT_NE(Text.find("note: a note"), std::string::npos);
}
