//===- tests/eval_test.cpp - Evaluation harness ------------------------------===//

#include "eval/Evaluation.h"
#include "eval/Report.h"

#include <gtest/gtest.h>

using namespace halo;

TEST(PaperSetup, OmnetppFlags) {
  BenchmarkSetup S = paperSetup("omnetpp");
  EXPECT_EQ(S.Halo.Allocator.ChunkSize, 128u * 1024u);
  EXPECT_EQ(S.Halo.Allocator.MaxSpareChunks, 0u);
  EXPECT_FALSE(S.Halo.Allocator.PurgeEmptyChunks);
  EXPECT_EQ(S.Hds.Allocator.ChunkSize, 128u * 1024u);
}

TEST(PaperSetup, XalancFlags) {
  BenchmarkSetup S = paperSetup("xalanc");
  EXPECT_FALSE(S.Halo.Allocator.PurgeEmptyChunks);
  EXPECT_EQ(S.Halo.Allocator.ChunkSize, 1u << 20);
}

TEST(PaperSetup, RomsFlags) {
  BenchmarkSetup S = paperSetup("roms");
  EXPECT_EQ(S.Halo.Grouping.MaxGroups, 4u);
}

TEST(PaperSetup, DefaultsMatchSection51) {
  BenchmarkSetup S = paperSetup("health");
  EXPECT_EQ(S.Halo.Profile.AffinityDistance, 128u);
  EXPECT_DOUBLE_EQ(S.Halo.Grouping.MergeTolerance, 0.05);
  EXPECT_EQ(S.Halo.Allocator.ChunkSize, 1u << 20);
  EXPECT_EQ(S.Halo.Allocator.MaxGroupedSize, 4096u);
  EXPECT_EQ(S.Halo.Allocator.MaxSpareChunks, 1u);
  EXPECT_EQ(S.ProfileScale, Scale::Test);
}

TEST(Evaluation, BaselineMetricsPopulated) {
  Evaluation E(paperSetup("ft"));
  RunMetrics M = E.measure(AllocatorKind::Jemalloc, Scale::Test, 1);
  EXPECT_GT(M.Seconds, 0.0);
  EXPECT_GT(M.Cycles, 0u);
  EXPECT_GT(M.Mem.Accesses, 0u);
  EXPECT_GT(M.Mem.L1Misses, 0u);
  EXPECT_GT(M.Events.Allocs, 0u);
  EXPECT_EQ(M.InstrumentationOps, 0u);
}

TEST(Evaluation, HaloRunGroupsAllocations) {
  Evaluation E(paperSetup("health"));
  RunMetrics M = E.measure(AllocatorKind::Halo, Scale::Test, 1);
  EXPECT_GT(M.GroupedAllocs, 0u);
  EXPECT_GT(M.ForwardedAllocs, 0u);
  EXPECT_GT(M.InstrumentationOps, 0u);
  EXPECT_GT(M.Frag.PeakResident, 0u);
}

TEST(Evaluation, HaloBeatsBaselineOnHealth) {
  // The paper's headline case, at test scale: HALO must reduce L1D misses.
  Evaluation E(paperSetup("health"));
  RunMetrics Base = E.measure(AllocatorKind::Jemalloc, Scale::Test, 1);
  RunMetrics Halo = E.measure(AllocatorKind::Halo, Scale::Test, 1);
  EXPECT_LT(Halo.Mem.L1Misses, Base.Mem.L1Misses);
}

TEST(Evaluation, InstrumentedOnlyRunCostsAlmostNothing) {
  Evaluation E(paperSetup("ft"));
  RunMetrics Base = E.measure(AllocatorKind::Jemalloc, Scale::Test, 1);
  RunMetrics Instr =
      E.measure(AllocatorKind::HaloInstrumentedOnly, Scale::Test, 1);
  EXPECT_GT(Instr.InstrumentationOps, 0u);
  // Identical memory behaviour, tiny cycle delta (Section 5.2: noise
  // dwarfs instrumentation overhead).
  EXPECT_EQ(Instr.Mem.L1Misses, Base.Mem.L1Misses);
  EXPECT_LT(Instr.Seconds, Base.Seconds * 1.01);
}

TEST(Evaluation, TrialsVaryBySeed) {
  Evaluation E(paperSetup("ft"));
  auto Runs = E.measureTrials(AllocatorKind::Jemalloc, Scale::Test, 3);
  ASSERT_EQ(Runs.size(), 3u);
  EXPECT_GT(Evaluation::medianSeconds(Runs), 0.0);
  EXPECT_GT(Evaluation::medianL1Misses(Runs), 0.0);
}

TEST(Evaluation, RandomPoolsMeasurable) {
  Evaluation E(paperSetup("art"));
  RunMetrics M = E.measure(AllocatorKind::RandomPools, Scale::Test, 1);
  EXPECT_GT(M.Mem.L1Misses, 0u);
}

TEST(Evaluation, PtmallocWorseThanJemallocOnListWorkloads) {
  // Section 5.1: jemalloc universally outperforms ptmalloc2 as a baseline.
  Evaluation E(paperSetup("health"));
  RunMetrics Je = E.measure(AllocatorKind::Jemalloc, Scale::Test, 1);
  RunMetrics Pt = E.measure(AllocatorKind::Ptmalloc, Scale::Test, 1);
  EXPECT_GT(Pt.Mem.L1Misses, Je.Mem.L1Misses);
}

TEST(Report, RendersAlignedTable) {
  Report R("demo");
  R.setColumns({"bench", "value"});
  R.addRow({"health", "28.0%"});
  R.addRow({"ft", "9.5%"});
  R.addNote("a note");
  std::string Text = R.str();
  EXPECT_NE(Text.find("== demo =="), std::string::npos);
  EXPECT_NE(Text.find("bench"), std::string::npos);
  EXPECT_NE(Text.find("health  28.0%"), std::string::npos);
  EXPECT_NE(Text.find("note: a note"), std::string::npos);
}
