//===- tests/experiment_test.cpp - Declarative experiment plans --------------===//
//
// The plan contract: buildPlan expands specs into a deduplicated matrix
// (benchmarks by name, cells by full key, recordings by (scale, seed)),
// runPlan executes it bit-identically no matter how many workers ran, and
// every cell equals what the pre-plan measureTrials path produces for the
// same key -- which is what makes sweepMachines / compareTechniques /
// compareAcrossBenchmarks safe as thin wrappers.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiment.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>

using namespace halo;

namespace {

/// findMachine, hard-asserted: a null entry in ExperimentSpec::Machines
/// would silently mean "the setup's machine", not the named preset.
const MachineConfig *preset(const char *Name) {
  const MachineConfig *M = findMachine(Name);
  EXPECT_NE(M, nullptr) << Name;
  return M;
}

/// Two-benchmark, two-machine, two-kind mixed matrix at test scale: the
/// shape the plan scheduler exists for.
ExperimentSpec mixedSpec() {
  ExperimentSpec Spec;
  Spec.Benchmarks = {"ft", "health"};
  Spec.Machines = {preset("xeon-w2195"), preset("mobile")};
  Spec.Kinds = {AllocatorKind::Jemalloc, AllocatorKind::Halo};
  Spec.S = Scale::Test;
  Spec.Trials = 2;
  return Spec;
}

void expectSameRuns(const std::vector<RunMetrics> &A,
                    const std::vector<RunMetrics> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t T = 0; T < A.size(); ++T) {
    SCOPED_TRACE("trial " + std::to_string(T));
    EXPECT_EQ(A[T].Cycles, B[T].Cycles);
    EXPECT_DOUBLE_EQ(A[T].Seconds, B[T].Seconds);
    EXPECT_EQ(A[T].Mem.L1Misses, B[T].Mem.L1Misses);
    EXPECT_EQ(A[T].Mem.TlbMisses, B[T].Mem.TlbMisses);
    EXPECT_EQ(A[T].GroupedAllocs, B[T].GroupedAllocs);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Names
//===----------------------------------------------------------------------===//

TEST(ExperimentNames, KindsRoundTrip) {
  for (AllocatorKind Kind : allAllocatorKinds()) {
    std::optional<AllocatorKind> Parsed =
        parseAllocatorKind(allocatorKindName(Kind));
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_EQ(*Parsed, Kind);
  }
  EXPECT_FALSE(parseAllocatorKind("tcmalloc").has_value());
  EXPECT_FALSE(parseAllocatorKind("").has_value());
}

TEST(ExperimentNames, ScalesRoundTrip) {
  EXPECT_EQ(parseScale(scaleName(Scale::Test)), Scale::Test);
  EXPECT_EQ(parseScale(scaleName(Scale::Ref)), Scale::Ref);
  EXPECT_FALSE(parseScale("train").has_value());
}

//===----------------------------------------------------------------------===//
// buildPlan
//===----------------------------------------------------------------------===//

TEST(BuildPlan, DeduplicatesBenchmarksCellsAndRecordings) {
  ExperimentSpec First;
  First.Benchmarks = {"health"};
  First.Machines = {findMachine("xeon-w2195"), findMachine("mobile")};
  First.Kinds = {AllocatorKind::Jemalloc, AllocatorKind::Halo};
  First.S = Scale::Test;
  First.Trials = 2;

  // Overlaps First in one cell (jemalloc on the default machine) and in
  // every seed; adds only the HDS cell.
  ExperimentSpec Second = First;
  Second.Machines = {findMachine("xeon-w2195")};
  Second.Kinds = {AllocatorKind::Jemalloc, AllocatorKind::Hds};

  ExperimentPlan Plan = buildPlan({First, Second});
  ASSERT_EQ(Plan.benchmarks().size(), 1u);
  EXPECT_EQ(Plan.benchmarks()[0].Name, "health");
  EXPECT_TRUE(Plan.benchmarks()[0].NeedsHalo);
  EXPECT_TRUE(Plan.benchmarks()[0].NeedsHds);
  // 4 cells from First, 1 new from Second (its jemalloc cell collapses).
  EXPECT_EQ(Plan.cells().size(), 5u);
  // Seeds 100 and 101 record once, not once per cell.
  EXPECT_EQ(Plan.numRecordings(), 2u);
  EXPECT_EQ(Plan.numArtifactTasks(), 2u);
  EXPECT_EQ(Plan.numReplays(), 10u);
}

TEST(BuildPlan, DistinctSeedBlocksStayDistinct) {
  ExperimentSpec Spec;
  Spec.Benchmarks = {"ft"};
  Spec.Kinds = {AllocatorKind::Jemalloc};
  Spec.S = Scale::Test;
  Spec.Trials = 2;
  ExperimentSpec Shifted = Spec;
  Shifted.SeedBase = 101; // Overlaps seed 101, adds seed 102.

  ExperimentPlan Plan = buildPlan({Spec, Shifted});
  EXPECT_EQ(Plan.cells().size(), 2u);
  EXPECT_EQ(Plan.numRecordings(), 3u); // 100, 101, 102.
  EXPECT_EQ(Plan.numArtifactTasks(), 0u); // jemalloc needs no pipelines.

  // find() disambiguates same-coordinate cells by seed block.
  ResultSet Results = runPlan(Plan, /*Jobs=*/1);
  const ResultSet::Cell *First =
      Results.find("ft", defaultMachine().Name, AllocatorKind::Jemalloc,
                   Scale::Test, /*SeedBase=*/100);
  const ResultSet::Cell *Second =
      Results.find("ft", defaultMachine().Name, AllocatorKind::Jemalloc,
                   Scale::Test, /*SeedBase=*/101);
  ASSERT_NE(First, nullptr);
  ASSERT_NE(Second, nullptr);
  EXPECT_NE(First, Second);
  EXPECT_EQ(First->Key.SeedBase, 100u);
  EXPECT_EQ(Second->Key.SeedBase, 101u);
  // Seed 101 is shared by both blocks: First's trial 1 is Second's 0.
  EXPECT_EQ(First->Runs[1].Cycles, Second->Runs[0].Cycles);
}

TEST(BuildPlan, RejectsUnknownBenchmarks) {
  ExperimentSpec Spec;
  Spec.Benchmarks = {"health", "gcc"};
  EXPECT_THROW(buildPlan({Spec}), std::invalid_argument);
}

//===----------------------------------------------------------------------===//
// runPlan
//===----------------------------------------------------------------------===//

TEST(RunPlan, SerialMatchesParallelBitIdentically) {
  ExperimentPlan SerialPlan = buildPlan({mixedSpec()});
  ResultSet Serial = runPlan(SerialPlan, /*Jobs=*/1);
  ExperimentPlan ParallelPlan = buildPlan({mixedSpec()});
  ResultSet Parallel = runPlan(ParallelPlan, /*Jobs=*/4);

  ASSERT_EQ(Serial.size(), 8u); // 2 benchmarks x 2 machines x 2 kinds.
  ASSERT_EQ(Parallel.size(), Serial.size());
  for (size_t C = 0; C < Serial.size(); ++C) {
    SCOPED_TRACE("cell " + std::to_string(C));
    EXPECT_EQ(Serial.cells()[C].Key.Benchmark,
              Parallel.cells()[C].Key.Benchmark);
    EXPECT_EQ(Serial.cells()[C].Key.Machine,
              Parallel.cells()[C].Key.Machine);
    EXPECT_EQ(Serial.cells()[C].Key.Kind, Parallel.cells()[C].Key.Kind);
    expectSameRuns(Serial.cells()[C].Runs, Parallel.cells()[C].Runs);
  }
}

TEST(RunPlan, EveryCellMatchesTheMeasureTrialsOracle) {
  // The plan must measure exactly what the per-benchmark measureTrials
  // path measures for the same key: this is what makes the wrapper
  // conversions bit-identical to the pre-plan API.
  ExperimentPlan Plan = buildPlan({mixedSpec()});
  ResultSet Results = runPlan(Plan, /*Jobs=*/2);

  for (const std::string &Name : {"ft", "health"}) {
    Evaluation Oracle(paperSetup(Name));
    for (const char *MachineName : {"xeon-w2195", "mobile"})
      for (AllocatorKind Kind :
           {AllocatorKind::Jemalloc, AllocatorKind::Halo}) {
        SCOPED_TRACE(Name + std::string(" on ") + MachineName);
        const ResultSet::Cell *Cell =
            Results.find(Name, MachineName, Kind, Scale::Test);
        ASSERT_NE(Cell, nullptr);
        expectSameRuns(Cell->Runs,
                       Oracle.measureTrials(*findMachine(MachineName), Kind,
                                            Scale::Test, 2));
      }
  }
}

TEST(RunPlan, EmptyMachineListUsesTheSetupMachine) {
  ExperimentSpec Spec;
  Spec.Benchmarks = {"ft"};
  Spec.Kinds = {AllocatorKind::Jemalloc};
  Spec.S = Scale::Test;
  Spec.Trials = 2;
  ExperimentPlan Plan = buildPlan({Spec});
  ResultSet Results = runPlan(Plan, /*Jobs=*/1);

  ASSERT_EQ(Results.size(), 1u);
  EXPECT_EQ(Results.cells()[0].Key.Machine, defaultMachine().Name);
  Evaluation Oracle(paperSetup("ft"));
  expectSameRuns(Results.cells()[0].Runs,
                 Oracle.measureTrials(AllocatorKind::Jemalloc, Scale::Test,
                                      2));
}

TEST(RunPlan, ExternalEvaluationBacksItsBenchmark) {
  Evaluation Eval(paperSetup("health"));
  ExperimentSpec Spec;
  Spec.Benchmarks = {"health"};
  Spec.Kinds = {AllocatorKind::Halo};
  Spec.S = Scale::Test;
  Spec.Trials = 1;
  ExperimentPlan Plan = buildPlan({Spec}, {&Eval});
  ASSERT_EQ(Plan.benchmarks().size(), 1u);
  // The caller's instance, not a plan-owned copy...
  EXPECT_EQ(Plan.benchmarks()[0].Eval, &Eval);
  ResultSet Results = runPlan(Plan, /*Jobs=*/1);
  // ...so its caches are warm afterwards: measuring again replays the
  // trace the plan recorded and reads the artifacts it materialised.
  RunMetrics Again = Eval.measure(AllocatorKind::Halo, Scale::Test, 100);
  ASSERT_EQ(Results.cells()[0].Runs.size(), 1u);
  EXPECT_EQ(Again.Cycles, Results.cells()[0].Runs[0].Cycles);
  EXPECT_EQ(Again.Mem.L1Misses, Results.cells()[0].Runs[0].Mem.L1Misses);
}

TEST(RunPlan, ConcurrentRunPlansMatchTheSerialOracle) {
  // Two runPlan calls racing in one process -- the serve daemon's steady
  // state -- must produce exactly what each would serially: the workload
  // registry, trace caches, and ResultSet writes are all either
  // thread-confined or locked.
  ExperimentSpec SpecA = mixedSpec();
  ExperimentSpec SpecB;
  SpecB.Benchmarks = {"health"};
  SpecB.Machines = {preset("mobile")};
  SpecB.Kinds = {AllocatorKind::Jemalloc, AllocatorKind::Hds};
  SpecB.S = Scale::Test;
  SpecB.Trials = 3;

  ExperimentPlan OracleA = buildPlan({SpecA});
  ResultSet SerialA = runPlan(OracleA, /*Jobs=*/1);
  ExperimentPlan OracleB = buildPlan({SpecB});
  ResultSet SerialB = runPlan(OracleB, /*Jobs=*/1);

  ResultSet RacedA, RacedB;
  std::thread TA([&] {
    ExperimentPlan Plan = buildPlan({SpecA});
    RacedA = runPlan(Plan, /*Jobs=*/2);
  });
  std::thread TB([&] {
    ExperimentPlan Plan = buildPlan({SpecB});
    RacedB = runPlan(Plan, /*Jobs=*/2);
  });
  TA.join();
  TB.join();

  ASSERT_EQ(RacedA.size(), SerialA.size());
  for (size_t C = 0; C < SerialA.size(); ++C) {
    SCOPED_TRACE("plan A cell " + std::to_string(C));
    expectSameRuns(RacedA.cells()[C].Runs, SerialA.cells()[C].Runs);
  }
  ASSERT_EQ(RacedB.size(), SerialB.size());
  for (size_t C = 0; C < SerialB.size(); ++C) {
    SCOPED_TRACE("plan B cell " + std::to_string(C));
    expectSameRuns(RacedB.cells()[C].Runs, SerialB.cells()[C].Runs);
  }
}

TEST(RunPlan, ConcurrentRunPlansMayShareAnExternalEvaluation) {
  // Harder still: both racing plans measure through the SAME warm
  // Evaluation (the daemon's warm cache hands one instance to every
  // in-flight plan). Its trace and artifact caches are internally locked,
  // so the race must be invisible in the results.
  Evaluation Shared(paperSetup("health"));
  ExperimentSpec SpecA;
  SpecA.Benchmarks = {"health"};
  SpecA.Machines = {preset("xeon-w2195")};
  SpecA.Kinds = {AllocatorKind::Jemalloc, AllocatorKind::Halo};
  SpecA.S = Scale::Test;
  SpecA.Trials = 2;
  ExperimentSpec SpecB = SpecA;
  SpecB.Machines = {preset("mobile")};
  SpecB.Kinds = {AllocatorKind::Halo, AllocatorKind::Hds};

  ExperimentPlan OracleA = buildPlan({SpecA});
  ResultSet SerialA = runPlan(OracleA, /*Jobs=*/1);
  ExperimentPlan OracleB = buildPlan({SpecB});
  ResultSet SerialB = runPlan(OracleB, /*Jobs=*/1);

  ResultSet RacedA, RacedB;
  std::thread TA([&] {
    ExperimentPlan Plan = buildPlan({SpecA}, {&Shared});
    RacedA = runPlan(Plan, /*Jobs=*/2);
  });
  std::thread TB([&] {
    ExperimentPlan Plan = buildPlan({SpecB}, {&Shared});
    RacedB = runPlan(Plan, /*Jobs=*/2);
  });
  TA.join();
  TB.join();

  ASSERT_EQ(RacedA.size(), SerialA.size());
  for (size_t C = 0; C < SerialA.size(); ++C) {
    SCOPED_TRACE("plan A cell " + std::to_string(C));
    expectSameRuns(RacedA.cells()[C].Runs, SerialA.cells()[C].Runs);
  }
  ASSERT_EQ(RacedB.size(), SerialB.size());
  for (size_t C = 0; C < SerialB.size(); ++C) {
    SCOPED_TRACE("plan B cell " + std::to_string(C));
    expectSameRuns(RacedB.cells()[C].Runs, SerialB.cells()[C].Runs);
  }
}

TEST(RunPlan, OnCellFiresExactlyOncePerCellWithFinalContents) {
  // The streaming hook serve rides on: every cell announced exactly once,
  // as soon as its last trial lands, with runs identical to what the
  // returned ResultSet ends up holding.
  ExperimentPlan Plan = buildPlan({mixedSpec()});
  const size_t NumCells = Plan.cells().size();
  std::mutex Mu;
  std::vector<int> Fired(NumCells, 0);
  std::vector<std::vector<RunMetrics>> Seen(NumCells);
  ResultSet Results = runPlan(
      Plan, /*Jobs=*/2, ReplayMode::Auto, TraceMode::Auto,
      [&](size_t Cell, const ResultSet::Cell &C) {
        std::lock_guard<std::mutex> Lock(Mu);
        ASSERT_LT(Cell, NumCells);
        ++Fired[Cell];
        Seen[Cell] = C.Runs;
      });
  ASSERT_EQ(Results.size(), NumCells);
  for (size_t C = 0; C < NumCells; ++C) {
    SCOPED_TRACE("cell " + std::to_string(C));
    EXPECT_EQ(Fired[C], 1);
    expectSameRuns(Seen[C], Results.cells()[C].Runs);
  }
}

TEST(ResultSet, FindLocatesCellsByFullKey) {
  ExperimentPlan Plan = buildPlan({mixedSpec()});
  ResultSet Results = runPlan(Plan, /*Jobs=*/1);
  const ResultSet::Cell *Cell =
      Results.find("health", "mobile", AllocatorKind::Halo, Scale::Test);
  ASSERT_NE(Cell, nullptr);
  EXPECT_EQ(Cell->Machine, findMachine("mobile"));
  EXPECT_EQ(Cell->Key.Trials, 2);
  // Misses on any key dimension return null.
  EXPECT_EQ(Results.find("health", "mobile", AllocatorKind::Halo,
                         Scale::Ref),
            nullptr);
  EXPECT_EQ(Results.find("health", "server", AllocatorKind::Halo,
                         Scale::Test),
            nullptr);
  EXPECT_EQ(Results.find("roms", "mobile", AllocatorKind::Halo, Scale::Test),
            nullptr);
}

//===----------------------------------------------------------------------===//
// Wrappers
//===----------------------------------------------------------------------===//

TEST(Wrappers, SweepMachinesMatchesManualMeasureTrials) {
  std::vector<const MachineConfig *> Machines = {findMachine("mobile"),
                                                 findMachine("server")};
  Evaluation Eval(paperSetup("ft"));
  std::vector<SweepCell> Cells =
      sweepMachines(Eval, Machines, /*Trials=*/2, Scale::Test,
                    /*SeedBase=*/100, /*Jobs=*/2);

  ASSERT_EQ(Cells.size(), 6u);
  const AllocatorKind KindOrder[] = {AllocatorKind::Jemalloc,
                                     AllocatorKind::Hds,
                                     AllocatorKind::Halo};
  Evaluation Oracle(paperSetup("ft"));
  for (size_t C = 0; C < Cells.size(); ++C) {
    SCOPED_TRACE("cell " + std::to_string(C));
    EXPECT_EQ(Cells[C].Machine, Machines[C / 3]);
    EXPECT_EQ(Cells[C].Kind, KindOrder[C % 3]);
    expectSameRuns(Cells[C].Runs,
                   Oracle.measureTrials(*Machines[C / 3], KindOrder[C % 3],
                                        Scale::Test, 2));
  }
}

TEST(Wrappers, CompareTechniquesMatchesManualComputation) {
  const MachineConfig &Machine = *findMachine("mobile");
  ComparisonRow Row =
      compareTechniques("health", /*Trials=*/2, Scale::Test, /*Jobs=*/2,
                        Machine);

  // The pre-plan construction, verbatim: one Evaluation whose setup
  // machine is the comparison machine, three measureTrials blocks.
  BenchmarkSetup Setup = paperSetup("health");
  Setup.Machine = Machine;
  Evaluation Eval(std::move(Setup));
  auto Base = Eval.measureTrials(AllocatorKind::Jemalloc, Scale::Test, 2);
  auto Hds = Eval.measureTrials(AllocatorKind::Hds, Scale::Test, 2);
  auto Halo = Eval.measureTrials(AllocatorKind::Halo, Scale::Test, 2);

  EXPECT_EQ(Row.Benchmark, "health");
  EXPECT_DOUBLE_EQ(Row.HdsMissReduction,
                   percentImprovement(Evaluation::medianL1Misses(Base),
                                      Evaluation::medianL1Misses(Hds)));
  EXPECT_DOUBLE_EQ(Row.HaloMissReduction,
                   percentImprovement(Evaluation::medianL1Misses(Base),
                                      Evaluation::medianL1Misses(Halo)));
  EXPECT_DOUBLE_EQ(Row.HdsSpeedup,
                   percentImprovement(Evaluation::medianSeconds(Base),
                                      Evaluation::medianSeconds(Hds)));
  EXPECT_DOUBLE_EQ(Row.HaloSpeedup,
                   percentImprovement(Evaluation::medianSeconds(Base),
                                      Evaluation::medianSeconds(Halo)));
}

TEST(Wrappers, CompareAcrossBenchmarksRepeatsDuplicateRows) {
  auto Rows = compareAcrossBenchmarks({"ft", "ft"}, /*Trials=*/2,
                                      Scale::Test, /*Jobs=*/1);
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows[0].Benchmark, "ft");
  EXPECT_DOUBLE_EQ(Rows[0].HaloSpeedup, Rows[1].HaloSpeedup);
  EXPECT_DOUBLE_EQ(Rows[0].HdsMissReduction, Rows[1].HdsMissReduction);
}

//===----------------------------------------------------------------------===//
// Emitters
//===----------------------------------------------------------------------===//

TEST(Emitters, SweepRowsComputeSpeedupAgainstTheirOwnBaseline) {
  ExperimentSpec Spec;
  Spec.Benchmarks = {"health"};
  Spec.Machines = {findMachine("xeon-w2195"), findMachine("mobile")};
  Spec.Kinds = {AllocatorKind::Jemalloc, AllocatorKind::Halo};
  Spec.S = Scale::Test;
  Spec.Trials = 2;
  ExperimentPlan Plan = buildPlan({Spec});
  ResultSet Results = runPlan(Plan, /*Jobs=*/1);

  std::vector<SweepRow> Rows = sweepRows(Results);
  ASSERT_EQ(Rows.size(), 4u);
  for (size_t R = 0; R < Rows.size(); ++R) {
    SCOPED_TRACE("row " + std::to_string(R));
    const ResultSet::Cell &Cell = Results.cells()[R];
    EXPECT_EQ(Rows[R].Bench, Cell.Key.Benchmark);
    EXPECT_EQ(Rows[R].Machine, Cell.Key.Machine);
    EXPECT_EQ(Rows[R].Kind, allocatorKindName(Cell.Key.Kind));
    EXPECT_EQ(Rows[R].Trials, 2);
    double Seconds = Evaluation::medianSeconds(Cell.Runs);
    EXPECT_DOUBLE_EQ(Rows[R].WallMs, Seconds * 1e3);
    if (Cell.Key.Kind == AllocatorKind::Jemalloc) {
      EXPECT_DOUBLE_EQ(Rows[R].SpeedupPercent, 0.0);
    } else {
      const ResultSet::Cell *Base = Results.find(
          Cell.Key.Benchmark, Cell.Key.Machine, AllocatorKind::Jemalloc,
          Scale::Test);
      ASSERT_NE(Base, nullptr);
      EXPECT_DOUBLE_EQ(Rows[R].SpeedupPercent,
                       percentImprovement(
                           Evaluation::medianSeconds(Base->Runs), Seconds));
    }
  }
}

TEST(Emitters, SweepRowsRejectMissingBaselines) {
  // A non-jemalloc cell with no same-key jemalloc baseline must throw:
  // a silent 0.0 would read as a genuine "no improvement" measurement.
  ExperimentSpec Spec;
  Spec.Benchmarks = {"ft"};
  Spec.Kinds = {AllocatorKind::Hds};
  Spec.S = Scale::Test;
  Spec.Trials = 1;
  ExperimentPlan Plan = buildPlan({Spec});
  ResultSet Results = runPlan(Plan, /*Jobs=*/1);
  EXPECT_THROW(sweepRows(Results), std::logic_error);
}

TEST(Emitters, ExperimentsJsonCarriesTheFullMeasurementKey) {
  ExperimentSpec Spec;
  Spec.Benchmarks = {"ft"};
  Spec.Machines = {findMachine("mobile")};
  Spec.Kinds = {AllocatorKind::Jemalloc};
  Spec.S = Scale::Test;
  Spec.Trials = 1;
  Spec.SeedBase = 7;
  ExperimentPlan Plan = buildPlan({Spec});
  ResultSet Results = runPlan(Plan, /*Jobs=*/1);

  char *Buffer = nullptr;
  size_t Size = 0;
  FILE *Out = open_memstream(&Buffer, &Size);
  ASSERT_NE(Out, nullptr);
  writeExperimentsJson(Out, Results);
  std::fclose(Out);
  std::string Json(Buffer, Size);
  free(Buffer);

  EXPECT_NE(Json.find("\"bench\": \"ft\""), std::string::npos);
  EXPECT_NE(Json.find("\"machine\": \"mobile\""), std::string::npos);
  EXPECT_NE(Json.find("\"kind\": \"jemalloc\""), std::string::npos);
  EXPECT_NE(Json.find("\"scale\": \"test\""), std::string::npos);
  EXPECT_NE(Json.find("\"seed_base\": 7"), std::string::npos);
  EXPECT_NE(Json.find("\"median_seconds\""), std::string::npos);
  EXPECT_NE(Json.find("\"runs\""), std::string::npos);
}
