//===- tests/profiler_test.cpp - HeapProfiler behaviour -----------------------===//

#include "mem/SizeClassAllocator.h"
#include "profile/HeapProfiler.h"
#include "profile/LiveObjectMap.h"

#include <gtest/gtest.h>

using namespace halo;

namespace {

/// Two allocation sites inside one function; a scripted driver allocates
/// and accesses objects to produce known affinity patterns.
struct ProfilerHarness {
  Program P;
  FunctionId Main, F;
  CallSiteId MainToF, SiteA, SiteB, SiteC;
  SizeClassAllocator Alloc;
  ProfileOptions Options;

  ProfilerHarness() {
    Main = P.addFunction("main");
    F = P.addFunction("f");
    MainToF = P.addCallSite(Main, F, "main>f");
    SiteA = P.addMallocSite(F, "f>mallocA");
    SiteB = P.addMallocSite(F, "f>mallocB");
    SiteC = P.addMallocSite(Main, "main>mallocC");
    Options.AffinityDistance = 64;
    Options.NodeCoverage = 1.0; // Keep everything unless a test filters.
  }
};

} // namespace

TEST(LiveObjectMap, InsertFindErase) {
  LiveObjectMap M;
  ObjectId A = M.insert(1000, 64, 0, 0);
  ObjectId B = M.insert(2000, 32, 1, 1);
  EXPECT_EQ(M.find(1000), A);
  EXPECT_EQ(M.find(1063), A);
  EXPECT_EQ(M.find(1064), ~0u);
  EXPECT_EQ(M.find(2031), B);
  EXPECT_EQ(M.liveCount(), 2u);
  EXPECT_EQ(M.erase(1000), A);
  EXPECT_EQ(M.find(1000), ~0u);
  EXPECT_EQ(M.totalAllocated(), 2u); // Records persist after free.
}

TEST(LiveObjectMap, SequenceNumbersMonotonic) {
  LiveObjectMap M;
  ObjectId A = M.insert(1000, 8, 0, 0);
  ObjectId B = M.insert(2000, 8, 0, 0);
  EXPECT_LT(M.record(A).AllocSeq, M.record(B).AllocSeq);
}

TEST(LiveObjectMap, ZeroSizeObjectOccupiesOneByte) {
  LiveObjectMap M;
  ObjectId A = M.insert(1000, 0, 0, 0);
  EXPECT_EQ(M.find(1000), A);
  EXPECT_EQ(M.find(1001), ~0u);
}

TEST(Profiler, BuildsEdgeBetweenInterleavedContexts) {
  ProfilerHarness H;
  HeapProfiler Prof(H.P, H.Options);
  Runtime RT(H.P, H.Alloc);
  RT.addObserver(&Prof);

  // Allocate A/B pairs, then access them pairwise.
  std::vector<std::pair<uint64_t, uint64_t>> Pairs;
  {
    Runtime::Scope S(RT, H.MainToF);
    for (int I = 0; I < 50; ++I) {
      uint64_t A = RT.malloc(16, H.SiteA);
      uint64_t B = RT.malloc(16, H.SiteB);
      Pairs.emplace_back(A, B);
    }
  }
  for (auto [A, B] : Pairs) {
    RT.load(A, 16);
    RT.load(B, 16);
  }

  AffinityGraph G = Prof.takeGraph();
  // Contexts: A-context and B-context, with a strong edge between them.
  EXPECT_EQ(G.numNodes(), 2u);
  std::vector<GraphNodeId> N = G.nodes();
  EXPECT_GT(G.edgeWeight(N[0], N[1]), 40u);
}

TEST(Profiler, ContextsDistinguishedByCallPath) {
  ProfilerHarness H;
  HeapProfiler Prof(H.P, H.Options);
  Runtime RT(H.P, H.Alloc);
  RT.addObserver(&Prof);

  uint64_t A1;
  {
    Runtime::Scope S(RT, H.MainToF);
    A1 = RT.malloc(16, H.SiteA);
  }
  uint64_t C = RT.malloc(16, H.SiteC);
  RT.load(A1, 16);
  RT.load(C, 16);
  Prof.takeGraph();
  EXPECT_EQ(Prof.contexts().size(), 2u);
  // One context chains through main>f, the other does not.
  bool SawDeep = false, SawShallow = false;
  for (ContextId Id = 0; Id < Prof.contexts().size(); ++Id) {
    const ContextInfo &Info = Prof.contexts().info(Id);
    if (Info.chainContains(H.MainToF))
      SawDeep = true;
    else
      SawShallow = true;
  }
  EXPECT_TRUE(SawDeep);
  EXPECT_TRUE(SawShallow);
}

TEST(Profiler, SelfEdgeFromSameContextNeighbours) {
  ProfilerHarness H;
  HeapProfiler Prof(H.P, H.Options);
  Runtime RT(H.P, H.Alloc);
  RT.addObserver(&Prof);

  std::vector<uint64_t> Objs;
  {
    Runtime::Scope S(RT, H.MainToF);
    for (int I = 0; I < 20; ++I)
      Objs.push_back(RT.malloc(16, H.SiteA));
  }
  for (uint64_t O : Objs)
    RT.load(O, 16);
  AffinityGraph G = Prof.takeGraph();
  std::vector<GraphNodeId> N = G.nodes();
  ASSERT_EQ(N.size(), 1u);
  EXPECT_GT(G.edgeWeight(N[0], N[0]), 0u); // Loop edge.
}

TEST(Profiler, CoAllocatabilityBlocksInterveningAllocations) {
  // u and v from contexts X and Y, but an allocation from X happens
  // chronologically between them: the pair must NOT contribute.
  ProfilerHarness H;
  HeapProfiler Prof(H.P, H.Options);
  Runtime RT(H.P, H.Alloc);
  RT.addObserver(&Prof);

  uint64_t U, Mid, V;
  {
    Runtime::Scope S(RT, H.MainToF);
    U = RT.malloc(16, H.SiteA);   // Context X, seq 0.
    Mid = RT.malloc(16, H.SiteA); // Context X, seq 1 -- intervenes.
    V = RT.malloc(16, H.SiteB);   // Context Y, seq 2.
  }
  RT.load(U, 16);
  RT.load(V, 16);
  (void)Mid;
  AffinityGraph G = Prof.takeGraph();
  std::vector<GraphNodeId> N = G.nodes();
  ASSERT_EQ(N.size(), 2u);
  EXPECT_EQ(G.edgeWeight(N[0], N[1]), 0u);
}

TEST(Profiler, CoAllocatabilityAllowsAdjacentAllocations) {
  ProfilerHarness H;
  HeapProfiler Prof(H.P, H.Options);
  Runtime RT(H.P, H.Alloc);
  RT.addObserver(&Prof);

  uint64_t U, V;
  {
    Runtime::Scope S(RT, H.MainToF);
    U = RT.malloc(16, H.SiteA);
    V = RT.malloc(16, H.SiteB);
  }
  RT.load(U, 16);
  RT.load(V, 16);
  AffinityGraph G = Prof.takeGraph();
  std::vector<GraphNodeId> N = G.nodes();
  ASSERT_EQ(N.size(), 2u);
  EXPECT_EQ(G.edgeWeight(N[0], N[1]), 1u);
}

TEST(Profiler, CoAllocatabilityCanBeDisabled) {
  ProfilerHarness H;
  H.Options.CoAllocatability = false;
  HeapProfiler Prof(H.P, H.Options);
  Runtime RT(H.P, H.Alloc);
  RT.addObserver(&Prof);

  uint64_t U, Mid, V;
  {
    Runtime::Scope S(RT, H.MainToF);
    U = RT.malloc(16, H.SiteA);
    Mid = RT.malloc(16, H.SiteA);
    V = RT.malloc(16, H.SiteB);
  }
  RT.load(U, 16);
  RT.load(V, 16);
  (void)Mid;
  AffinityGraph G = Prof.takeGraph();
  std::vector<GraphNodeId> N = G.nodes();
  EXPECT_EQ(G.edgeWeight(N[0], N[1]), 1u);
}

TEST(Profiler, LargeObjectsExcludedFromAffinity) {
  ProfilerHarness H;
  H.Options.MaxObjectSize = 64;
  HeapProfiler Prof(H.P, H.Options);
  Runtime RT(H.P, H.Alloc);
  RT.addObserver(&Prof);

  uint64_t Big, Small;
  {
    Runtime::Scope S(RT, H.MainToF);
    Big = RT.malloc(128, H.SiteA);
    Small = RT.malloc(16, H.SiteB);
  }
  RT.load(Big, 64);
  RT.load(Small, 16);
  AffinityGraph G = Prof.takeGraph();
  // Only the small object's context accumulates accesses.
  EXPECT_EQ(G.totalAccesses(), 1u);
}

TEST(Profiler, StackAccessesIgnored) {
  ProfilerHarness H;
  HeapProfiler Prof(H.P, H.Options);
  Runtime RT(H.P, H.Alloc);
  RT.addObserver(&Prof);
  RT.load(0xdead0000, 8); // Never allocated: not heap traffic.
  AffinityGraph G = Prof.takeGraph();
  EXPECT_EQ(G.numNodes(), 0u);
  EXPECT_EQ(Prof.totalAccesses(), 0u);
}

TEST(Profiler, ReferenceTraceDeduplicatesConsecutive) {
  ProfilerHarness H;
  H.Options.RecordReferenceTrace = true;
  HeapProfiler Prof(H.P, H.Options);
  Runtime RT(H.P, H.Alloc);
  RT.addObserver(&Prof);

  uint64_t A, B;
  {
    Runtime::Scope S(RT, H.MainToF);
    A = RT.malloc(16, H.SiteA);
    B = RT.malloc(16, H.SiteB);
  }
  RT.load(A, 8);
  RT.load(A, 8);
  RT.load(B, 8);
  RT.load(A, 8);
  EXPECT_EQ(Prof.referenceTrace().size(), 3u); // A, B, A.
}

TEST(Profiler, FreedObjectAccessesIgnored) {
  ProfilerHarness H;
  HeapProfiler Prof(H.P, H.Options);
  Runtime RT(H.P, H.Alloc);
  RT.addObserver(&Prof);
  uint64_t A;
  {
    Runtime::Scope S(RT, H.MainToF);
    A = RT.malloc(16, H.SiteA);
  }
  RT.load(A, 8);
  RT.free(A);
  EXPECT_EQ(Prof.totalAccesses(), 1u);
}

TEST(Profiler, AllocationCountsPerContext) {
  ProfilerHarness H;
  HeapProfiler Prof(H.P, H.Options);
  Runtime RT(H.P, H.Alloc);
  RT.addObserver(&Prof);
  {
    Runtime::Scope S(RT, H.MainToF);
    for (int I = 0; I < 5; ++I)
      RT.malloc(16, H.SiteA);
  }
  Prof.takeGraph();
  ASSERT_EQ(Prof.contexts().size(), 1u);
  EXPECT_EQ(Prof.contexts().info(0).Allocations, 5u);
}
