//===- tests/arena_test.cpp - VirtualArena tests ------------------------------===//

#include "mem/Arena.h"

#include <gtest/gtest.h>

using namespace halo;

TEST(Arena, ReservationsAreDisjointAndAligned) {
  VirtualArena Arena(0x1000000);
  uint64_t A = Arena.reserve(100);
  uint64_t B = Arena.reserve(100);
  EXPECT_EQ(A % VirtualArena::PageSize, 0u);
  EXPECT_EQ(B % VirtualArena::PageSize, 0u);
  EXPECT_GE(B, A + VirtualArena::PageSize); // Sizes round to whole pages.
}

TEST(Arena, CustomAlignmentHonoured) {
  VirtualArena Arena(0x1000000);
  Arena.reserve(VirtualArena::PageSize); // Misalign the cursor.
  uint64_t Aligned = Arena.reserve(1 << 20, 1 << 20);
  EXPECT_EQ(Aligned % (1 << 20), 0u);
}

TEST(Arena, ReservedBytesTracked) {
  VirtualArena Arena(0x1000000);
  EXPECT_EQ(Arena.reservedBytes(), 0u);
  uint64_t A = Arena.reserve(100); // Rounds to one page.
  EXPECT_EQ(Arena.reservedBytes(), VirtualArena::PageSize);
  Arena.release(A);
  EXPECT_EQ(Arena.reservedBytes(), 0u);
}

TEST(Arena, TouchMakesPagesResident) {
  VirtualArena Arena(0x1000000);
  uint64_t A = Arena.reserve(4 * VirtualArena::PageSize);
  EXPECT_EQ(Arena.residentBytes(), 0u); // Demand paging: nothing yet.
  Arena.touch(A, 1);
  EXPECT_EQ(Arena.residentBytes(), VirtualArena::PageSize);
  Arena.touch(A, 4 * VirtualArena::PageSize);
  EXPECT_EQ(Arena.residentBytes(), 4 * VirtualArena::PageSize);
}

TEST(Arena, TouchSpanningPageBoundary) {
  VirtualArena Arena(0x1000000);
  uint64_t A = Arena.reserve(2 * VirtualArena::PageSize);
  Arena.touch(A + VirtualArena::PageSize - 8, 16);
  EXPECT_EQ(Arena.residentBytes(), 2 * VirtualArena::PageSize);
}

TEST(Arena, TouchIsIdempotent) {
  VirtualArena Arena(0x1000000);
  uint64_t A = Arena.reserve(VirtualArena::PageSize);
  Arena.touch(A, 64);
  Arena.touch(A, 64);
  EXPECT_EQ(Arena.residentBytes(), VirtualArena::PageSize);
}

TEST(Arena, PurgeDropsWholePagesOnly) {
  VirtualArena Arena(0x1000000);
  uint64_t A = Arena.reserve(4 * VirtualArena::PageSize);
  Arena.touch(A, 4 * VirtualArena::PageSize);
  // Purge a range that covers pages 1 and 2 fully, page 0 and 3 partially.
  Arena.purge(A + 8, 3 * VirtualArena::PageSize);
  EXPECT_EQ(Arena.residentBytes(), 2 * VirtualArena::PageSize);
}

TEST(Arena, ReleaseDropsResidency) {
  VirtualArena Arena(0x1000000);
  uint64_t A = Arena.reserve(2 * VirtualArena::PageSize);
  Arena.touch(A, 2 * VirtualArena::PageSize);
  Arena.release(A);
  EXPECT_EQ(Arena.residentBytes(), 0u);
}

TEST(Arena, CoversChecksBounds) {
  VirtualArena Arena(0x1000000);
  uint64_t A = Arena.reserve(VirtualArena::PageSize);
  EXPECT_TRUE(Arena.covers(A, VirtualArena::PageSize));
  EXPECT_TRUE(Arena.covers(A + 100, 8));
  EXPECT_FALSE(Arena.covers(A + VirtualArena::PageSize, 1));
  EXPECT_FALSE(Arena.covers(A - 1, 1));
}

TEST(Arena, DistinctArenasDoNotCollide) {
  VirtualArena A(0x1000000), B(0x2000000);
  uint64_t RA = A.reserve(VirtualArena::PageSize);
  uint64_t RB = B.reserve(VirtualArena::PageSize);
  EXPECT_NE(RA, RB);
}

TEST(Arena, ReservationCount) {
  VirtualArena Arena(0x1000000);
  uint64_t A = Arena.reserve(1);
  Arena.reserve(1);
  EXPECT_EQ(Arena.reservationCount(), 2u);
  Arena.release(A);
  EXPECT_EQ(Arena.reservationCount(), 1u);
}
