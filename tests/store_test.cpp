//===- tests/store_test.cpp - Content-addressed artifact store ---------------===//
//
// The store contract: entries are addressed by a stable content hash of
// their inputs (any key component change re-keys; a schema bump
// invalidates everything), writes publish atomically, reads validate a
// checksum so corruption reads as "absent", and a warm plan built against
// a populated store schedules zero record/materialise tasks while staying
// bit-identical to the cold run that populated it.
//
//===----------------------------------------------------------------------===//

#include "store/ArtifactStore.h"

#include "eval/Experiment.h"
#include "support/BinaryIO.h"
#include "trace/EventTrace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <thread>

#include <dirent.h>
#include <unistd.h>

using namespace halo;

namespace {

/// A store in a fresh private temp directory, removed on destruction.
class TempStore {
public:
  TempStore() {
    char Template[] = "/tmp/halo_store_test.XXXXXX";
    const char *Dir = mkdtemp(Template);
    EXPECT_NE(Dir, nullptr);
    Path = Dir;
    Store.emplace(Path);
  }

  ~TempStore() {
    if (DIR *D = opendir(Path.c_str())) {
      while (struct dirent *E = readdir(D)) {
        std::string Name = E->d_name;
        if (Name != "." && Name != "..")
          unlink((Path + "/" + Name).c_str());
      }
      closedir(D);
    }
    rmdir(Path.c_str());
  }

  ArtifactStore &operator*() { return *Store; }
  ArtifactStore *operator->() { return &*Store; }
  const std::string &path() const { return Path; }

private:
  std::string Path;
  std::optional<ArtifactStore> Store;
};

/// The store file backing \p Key, via the public listing (the file-name
/// scheme is an implementation detail the tests don't hard-code).
std::string entryFile(ArtifactStore &Store, const StoreKey &Key) {
  for (const ArtifactStore::Entry &E : Store.entries())
    if (E.Hash == Key.Hash)
      return Store.dir() + "/" + E.File;
  ADD_FAILURE() << "no entry for " << Key.Label;
  return "";
}

void expectSameRuns(const std::vector<RunMetrics> &A,
                    const std::vector<RunMetrics> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t T = 0; T < A.size(); ++T) {
    SCOPED_TRACE("trial " + std::to_string(T));
    EXPECT_EQ(A[T].Cycles, B[T].Cycles);
    EXPECT_DOUBLE_EQ(A[T].Seconds, B[T].Seconds);
    EXPECT_EQ(A[T].Mem.L1Misses, B[T].Mem.L1Misses);
    EXPECT_EQ(A[T].Mem.TlbMisses, B[T].Mem.TlbMisses);
    EXPECT_EQ(A[T].GroupedAllocs, B[T].GroupedAllocs);
  }
}

/// One-benchmark HALO+HDS spec at test scale: small enough for store
/// round-trip tests, rich enough to exercise every artifact type.
ExperimentSpec smallSpec() {
  ExperimentSpec Spec;
  Spec.Benchmarks = {"ft"};
  Spec.Kinds = {AllocatorKind::Jemalloc, AllocatorKind::Halo,
                AllocatorKind::Hds};
  Spec.S = Scale::Test;
  Spec.Trials = 2;
  return Spec;
}

} // namespace

//===----------------------------------------------------------------------===//
// Raw put/get
//===----------------------------------------------------------------------===//

TEST(ArtifactStoreRaw, PutGetRoundTripsPayloads) {
  TempStore Store;
  StoreKey Key = traceStoreKey("ft", Scale::Test, 1);
  EXPECT_FALSE(Store->contains(Key));
  EXPECT_FALSE(Store->get(Key).has_value());

  std::vector<uint8_t> Payload = {1, 2, 3, 250, 0, 42};
  EXPECT_TRUE(Store->put(Key, Payload));
  EXPECT_TRUE(Store->contains(Key));
  ASSERT_TRUE(Store->get(Key).has_value());
  EXPECT_EQ(*Store->get(Key), Payload);

  // A different key misses even with an entry present.
  EXPECT_FALSE(Store->contains(traceStoreKey("ft", Scale::Test, 2)));
}

TEST(ArtifactStoreRaw, EntriesDescribeWhatLsShows) {
  TempStore Store;
  StoreKey Key = traceStoreKey("health", Scale::Ref, 100);
  ASSERT_TRUE(Store->put(Key, std::vector<uint8_t>(17, 0xAB)));
  std::vector<ArtifactStore::Entry> Entries = Store->entries();
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_EQ(Entries[0].Hash, Key.Hash);
  EXPECT_EQ(Entries[0].Type, ArtifactType::Trace);
  EXPECT_EQ(Entries[0].Label, "trace/health/ref/s100");
  EXPECT_EQ(Entries[0].PayloadSize, 17u);
  EXPECT_TRUE(Entries[0].Valid);
  EXPECT_TRUE(Entries[0].Problem.empty());
}

TEST(ArtifactStoreRaw, RejectsUnusableDirectories) {
  EXPECT_THROW(ArtifactStore("/dev/null/not-a-dir"), std::runtime_error);
  // A plain file where the directory should be is just as unusable.
  char Template[] = "/tmp/halo_store_file.XXXXXX";
  int Fd = mkstemp(Template);
  ASSERT_GE(Fd, 0);
  close(Fd);
  EXPECT_THROW(ArtifactStore(std::string(Template)), std::runtime_error);
  unlink(Template);
}

//===----------------------------------------------------------------------===//
// Key stability
//===----------------------------------------------------------------------===//

TEST(StoreKeys, EveryTraceKeyComponentReKeys) {
  std::set<uint64_t> Hashes;
  Hashes.insert(traceStoreKey("ft", Scale::Test, 1).Hash);
  Hashes.insert(traceStoreKey("health", Scale::Test, 1).Hash); // benchmark
  Hashes.insert(traceStoreKey("ft", Scale::Ref, 1).Hash);      // scale
  Hashes.insert(traceStoreKey("ft", Scale::Test, 2).Hash);     // seed
  Hashes.insert(
      traceStoreKey("ft", Scale::Test, 1, StoreSchemaVersion + 1).Hash);
  EXPECT_EQ(Hashes.size(), 5u);
  // Same inputs, same hash: the address is a pure function of the key.
  EXPECT_EQ(traceStoreKey("ft", Scale::Test, 1).Hash,
            traceStoreKey("ft", Scale::Test, 1).Hash);
}

TEST(StoreKeys, EveryPipelineKnobReKeys) {
  const HaloParameters Base;
  std::set<uint64_t> Hashes;
  auto Add = [&](const HaloParameters &P) {
    Hashes.insert(haloStoreKey("ft", Scale::Test, 1, P).Hash);
  };
  Add(Base);
  HaloParameters P = Base;
  P.Profile.AffinityDistance *= 2;
  Add(P);
  P = Base;
  P.Profile.MaxObjectSize *= 2;
  Add(P);
  P = Base;
  P.Grouping.MaxGroups = 4;
  Add(P);
  P = Base;
  P.Grouping.MergeTolerance += 0.01;
  Add(P);
  P = Base;
  P.Allocator.ChunkSize /= 2;
  Add(P);
  P = Base;
  P.Allocator.PurgeEmptyChunks = !P.Allocator.PurgeEmptyChunks;
  Add(P);
  EXPECT_EQ(Hashes.size(), 7u);

  const HdsParameters HdsBase;
  std::set<uint64_t> HdsHashes;
  HdsHashes.insert(hdsStoreKey("ft", Scale::Test, 1, HdsBase).Hash);
  HdsParameters H = HdsBase;
  H.Streams.MaxLength += 1;
  HdsHashes.insert(hdsStoreKey("ft", Scale::Test, 1, H).Hash);
  H = HdsBase;
  H.CoAllocation.CacheLineSize *= 2;
  HdsHashes.insert(hdsStoreKey("ft", Scale::Test, 1, H).Hash);
  EXPECT_EQ(HdsHashes.size(), 3u);
}

TEST(StoreKeys, SchemaBumpInvalidatesExistingEntries) {
  TempStore Store;
  StoreKey Old = traceStoreKey("ft", Scale::Test, 1);
  ASSERT_TRUE(Store->put(Old, {1, 2, 3}));
  // The next schema's key for the same coordinate addresses nothing: old
  // entries are never read under new assumptions, only gc'd eventually.
  StoreKey Bumped =
      traceStoreKey("ft", Scale::Test, 1, StoreSchemaVersion + 1);
  EXPECT_NE(Bumped.Hash, Old.Hash);
  EXPECT_FALSE(Store->contains(Bumped));
  EXPECT_TRUE(Store->contains(Old));
}

//===----------------------------------------------------------------------===//
// Typed round-trips
//===----------------------------------------------------------------------===//

TEST(StoreRoundTrip, TraceLoadsBitIdenticalAndResavesByteIdentical) {
  Evaluation Eval(paperSetup("ft"));
  const EventTrace &Original = Eval.trace(Scale::Test, 1);

  TempStore Store;
  StoreKey Key = traceStoreKey("ft", Scale::Test, 1);
  ASSERT_TRUE(putTrace(*Store, Key, Original));
  std::optional<EventTrace> Loaded = getTrace(*Store, Key);
  ASSERT_TRUE(Loaded.has_value());

  // The loaded trace re-serializes to exactly the stored bytes: nothing
  // about it is an approximation of the original.
  BinaryWriter Resaved;
  Loaded->save(Resaved);
  EXPECT_EQ(Resaved.buffer(), *Store->get(Key));

  // And it drives a bit-identical measurement through a fresh Evaluation.
  Evaluation Warm(paperSetup("ft"));
  Warm.addTrace(Scale::Test, 1, std::move(*Loaded));
  RunMetrics Cold = Eval.measure(AllocatorKind::Jemalloc, Scale::Test, 1);
  RunMetrics WarmRun = Warm.measure(AllocatorKind::Jemalloc, Scale::Test, 1);
  EXPECT_EQ(Cold.Cycles, WarmRun.Cycles);
  EXPECT_EQ(Cold.Mem.L1Misses, WarmRun.Mem.L1Misses);
  EXPECT_EQ(Cold.Mem.TlbMisses, WarmRun.Mem.TlbMisses);
}

TEST(StoreRoundTrip, PipelineArtifactsDriveBitIdenticalMeasurements) {
  BenchmarkSetup Setup = paperSetup("ft");
  Evaluation Cold(Setup);
  const HaloArtifacts &Halo = Cold.haloArtifacts();
  const HdsArtifacts &Hds = Cold.hdsArtifacts();

  TempStore Store;
  StoreKey HaloKey =
      haloStoreKey("ft", Setup.ProfileScale, Setup.ProfileSeed, Setup.Halo);
  StoreKey HdsKey =
      hdsStoreKey("ft", Setup.ProfileScale, Setup.ProfileSeed, Setup.Hds);
  ASSERT_TRUE(putHaloArtifacts(*Store, HaloKey, Halo));
  ASSERT_TRUE(putHdsArtifacts(*Store, HdsKey, Hds));

  Evaluation Warm(Setup);
  std::optional<HaloArtifacts> LoadedHalo =
      getHaloArtifacts(*Store, HaloKey, Warm.program());
  std::optional<HdsArtifacts> LoadedHds = getHdsArtifacts(*Store, HdsKey);
  ASSERT_TRUE(LoadedHalo.has_value());
  ASSERT_TRUE(LoadedHds.has_value());
  Warm.setHaloArtifacts(std::move(*LoadedHalo));
  Warm.setHdsArtifacts(std::move(*LoadedHds));
  EXPECT_TRUE(Warm.hasHaloArtifacts());
  EXPECT_TRUE(Warm.hasHdsArtifacts());

  // The warm Evaluation never profiles: its measurements come entirely
  // from the loaded bundles, and match the cold ones bit for bit.
  for (AllocatorKind Kind : {AllocatorKind::Halo, AllocatorKind::Hds}) {
    SCOPED_TRACE(allocatorKindName(Kind));
    RunMetrics A = Cold.measure(Kind, Scale::Test, 5);
    RunMetrics B = Warm.measure(Kind, Scale::Test, 5);
    EXPECT_EQ(A.Cycles, B.Cycles);
    EXPECT_EQ(A.Mem.L1Misses, B.Mem.L1Misses);
    EXPECT_EQ(A.GroupedAllocs, B.GroupedAllocs);
    EXPECT_EQ(A.ForwardedAllocs, B.ForwardedAllocs);
  }
}

TEST(StoreRoundTrip, TypeMismatchReadsAsAbsent) {
  Evaluation Eval(paperSetup("ft"));
  TempStore Store;
  StoreKey Key = traceStoreKey("ft", Scale::Test, 1);
  ASSERT_TRUE(putTrace(*Store, Key, Eval.trace(Scale::Test, 1)));
  // The same hash asked for as a different type must miss, not decode.
  StoreKey Wrong = Key;
  Wrong.Type = ArtifactType::Halo;
  EXPECT_FALSE(Store->get(Wrong).has_value());
  EXPECT_FALSE(getHaloArtifacts(*Store, Wrong, Eval.program()).has_value());
}

//===----------------------------------------------------------------------===//
// Corruption
//===----------------------------------------------------------------------===//

namespace {

/// Flips one payload byte near the end of \p File in place.
void flipByte(const std::string &File) {
  FILE *F = std::fopen(File.c_str(), "r+b");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(std::fseek(F, -1, SEEK_END), 0);
  int C = std::fgetc(F);
  ASSERT_NE(C, EOF);
  ASSERT_EQ(std::fseek(F, -1, SEEK_END), 0);
  std::fputc(C ^ 0x40, F);
  std::fclose(F);
}

/// Truncates \p File to half its size.
void truncateFile(const std::string &File) {
  FILE *F = std::fopen(File.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(std::fseek(F, 0, SEEK_END), 0);
  long Size = std::ftell(F);
  std::fclose(F);
  ASSERT_GT(Size, 1);
  ASSERT_EQ(truncate(File.c_str(), Size / 2), 0);
}

} // namespace

TEST(StoreCorruption, BitFlipsAndTruncationReadAsAbsent) {
  TempStore Store;
  StoreKey Flipped = traceStoreKey("ft", Scale::Test, 1);
  StoreKey Truncated = traceStoreKey("ft", Scale::Test, 2);
  ASSERT_TRUE(Store->put(Flipped, std::vector<uint8_t>(64, 7)));
  ASSERT_TRUE(Store->put(Truncated, std::vector<uint8_t>(64, 9)));
  flipByte(entryFile(*Store, Flipped));
  truncateFile(entryFile(*Store, Truncated));

  // Reads treat both as missing; the listing names the reason.
  EXPECT_FALSE(Store->get(Flipped).has_value());
  EXPECT_FALSE(Store->contains(Flipped));
  EXPECT_FALSE(Store->get(Truncated).has_value());
  std::vector<ArtifactStore::Entry> Entries = Store->entries();
  ASSERT_EQ(Entries.size(), 2u);
  for (const ArtifactStore::Entry &E : Entries) {
    EXPECT_FALSE(E.Valid);
    EXPECT_FALSE(E.Problem.empty());
  }

  // gc removes exactly the invalid entries.
  EXPECT_EQ(Store->gc(), 2u);
  EXPECT_TRUE(Store->entries().empty());
}

TEST(StoreCorruption, GcKeepsValidEntries) {
  TempStore Store;
  StoreKey Good = traceStoreKey("ft", Scale::Test, 1);
  StoreKey Bad = traceStoreKey("ft", Scale::Test, 2);
  ASSERT_TRUE(Store->put(Good, std::vector<uint8_t>(32, 1)));
  ASSERT_TRUE(Store->put(Bad, std::vector<uint8_t>(32, 2)));
  flipByte(entryFile(*Store, Bad));
  EXPECT_EQ(Store->gc(), 1u);
  EXPECT_TRUE(Store->contains(Good));
  ASSERT_EQ(Store->entries().size(), 1u);
  EXPECT_EQ(Store->entries()[0].Hash, Good.Hash);
}

//===----------------------------------------------------------------------===//
// On-disk trace entries (putTraceFile / openMappedTrace)
//===----------------------------------------------------------------------===//

namespace {

/// Streams one recording of ("ft", Test, \p Seed) to \p Path.
void recordTraceTo(Evaluation &Eval, uint64_t Seed, const std::string &Path) {
  Eval.recordTraceFile(Scale::Test, Seed, Path);
}

} // namespace

TEST(StoreTraceFiles, PutTraceFileRoundTripsThroughMappedOpen) {
  Evaluation Eval(paperSetup("ft"));
  TempStore Store;
  StoreKey Key = traceStoreKey("ft", Scale::Test, 1);
  std::string Temp = Store.path() + "/tmp.recording";
  recordTraceTo(Eval, 1, Temp);

  ASSERT_TRUE(putTraceFile(*Store, Key, Temp));
  EXPECT_TRUE(Store->contains(Key));

  // The published payload is byte-identical to the recorded file, so the
  // streamed entry is interchangeable with putTrace of the same trace.
  std::optional<std::vector<uint8_t>> Payload = Store->get(Key);
  ASSERT_TRUE(Payload.has_value());
  BinaryWriter Saved;
  Eval.trace(Scale::Test, 1).save(Saved);
  EXPECT_EQ(*Payload, Saved.buffer());

  // Every read path agrees: mmap'd straight off the entry, decoded whole
  // via getTrace, and `trace info`'s entry-file form.
  std::optional<MappedTrace> Mapped = openMappedTrace(*Store, Key);
  ASSERT_TRUE(Mapped.has_value());
  EXPECT_EQ(Mapped->numEvents(), Eval.trace(Scale::Test, 1).numEvents());
  EXPECT_EQ(Mapped->numObjects(), Eval.trace(Scale::Test, 1).numObjects());
  std::optional<EventTrace> Loaded = getTrace(*Store, Key);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->numEvents(), Mapped->numEvents());
  std::optional<MappedTrace> ByPath =
      openTraceEntryFile(entryFile(*Store, Key));
  ASSERT_TRUE(ByPath.has_value());
  EXPECT_EQ(ByPath->numEvents(), Mapped->numEvents());

  // Key discipline holds for the mapped reader too.
  EXPECT_FALSE(
      openMappedTrace(*Store, traceStoreKey("ft", Scale::Test, 2)).has_value());
  unlink(Temp.c_str());
}

TEST(StoreTraceFiles, HeaderOnlyListingStillReportsSizes) {
  // `store ls` must show per-entry payload sizes without paying a full
  // checksum pass -- oversized trace entries stay visible before gc
  // decisions -- while still catching the cheap structural lies.
  Evaluation Eval(paperSetup("ft"));
  TempStore Store;
  StoreKey Key = traceStoreKey("ft", Scale::Test, 1);
  std::string Temp = Store.path() + "/tmp.recording";
  recordTraceTo(Eval, 1, Temp);
  ASSERT_TRUE(putTraceFile(*Store, Key, Temp));
  unlink(Temp.c_str());

  std::vector<ArtifactStore::Entry> Checked = Store->entries();
  std::vector<ArtifactStore::Entry> Listed = Store->entries(/*Validate=*/false);
  ASSERT_EQ(Checked.size(), 1u);
  ASSERT_EQ(Listed.size(), 1u);
  EXPECT_EQ(Listed[0].PayloadSize, Checked[0].PayloadSize);
  EXPECT_EQ(Listed[0].Label, Checked[0].Label);
  EXPECT_TRUE(Listed[0].Valid);

  // A payload bit flip passes the header-only listing (by design) but
  // fails validation; truncation fails both (the extent check is cheap).
  flipByte(entryFile(*Store, Key));
  EXPECT_TRUE(Store->entries(/*Validate=*/false)[0].Valid);
  EXPECT_FALSE(Store->entries()[0].Valid);
  truncateFile(entryFile(*Store, Key));
  EXPECT_FALSE(Store->entries(/*Validate=*/false)[0].Valid);
}

TEST(StoreTraceFiles, CorruptTraceEntriesReadAsAbsent) {
  // The store discipline extends to the block format: a truncated,
  // bit-flipped, or schema-mismatched trace entry reads as absence
  // through every accessor, never as a decode error.
  Evaluation Eval(paperSetup("ft"));
  TempStore Store;
  StoreKey Flipped = traceStoreKey("ft", Scale::Test, 1);
  StoreKey Truncated = traceStoreKey("ft", Scale::Test, 2);
  StoreKey Mismatched = traceStoreKey("ft", Scale::Test, 3);
  for (const auto &P :
       {std::make_pair(Flipped, uint64_t(1)),
        std::make_pair(Truncated, uint64_t(2)),
        std::make_pair(Mismatched, uint64_t(3))}) {
    std::string Temp = Store.path() + "/tmp.recording";
    recordTraceTo(Eval, P.second, Temp);
    ASSERT_TRUE(putTraceFile(*Store, P.first, Temp));
    unlink(Temp.c_str());
  }

  flipByte(entryFile(*Store, Flipped));
  truncateFile(entryFile(*Store, Truncated));
  {
    // Flip one bit of the schema field (offset 4, after the u32 magic):
    // the entry claims a format this build does not speak.
    std::string File = entryFile(*Store, Mismatched);
    FILE *F = std::fopen(File.c_str(), "r+b");
    ASSERT_NE(F, nullptr);
    ASSERT_EQ(std::fseek(F, 4, SEEK_SET), 0);
    int C = std::fgetc(F);
    ASSERT_NE(C, EOF);
    ASSERT_EQ(std::fseek(F, 4, SEEK_SET), 0);
    std::fputc(C ^ 0x20, F);
    std::fclose(F);
  }

  for (const StoreKey &Key : {Flipped, Truncated, Mismatched}) {
    SCOPED_TRACE(Key.Label);
    EXPECT_FALSE(openMappedTrace(*Store, Key).has_value());
    EXPECT_FALSE(getTrace(*Store, Key).has_value());
    EXPECT_FALSE(Store->contains(Key));
  }
  // gc sweeps all three.
  EXPECT_EQ(Store->gc(), 3u);
  EXPECT_TRUE(Store->entries().empty());
}

TEST(StoreTraceFiles, MappedPlansColdWarmAndHealBitIdentically) {
  TempStore Store;

  // Cold mapped run: measurement traces stream into the store.
  ExperimentPlan ColdPlan = buildPlan({smallSpec()}, {}, &*Store);
  EXPECT_EQ(ColdPlan.numRecordings(), 2u);
  ResultSet Cold =
      runPlan(ColdPlan, /*Jobs=*/2, ReplayMode::Auto, TraceMode::Mapped);

  // No abandoned recorder temp files survive a clean cold run.
  for (const ArtifactStore::Entry &E : Store->entries())
    EXPECT_TRUE(E.Valid) << E.File << ": " << E.Problem;
  EXPECT_EQ(Store->gc(), 0u);

  // Warm mapped run: zero recordings scheduled, entries open mmap'd,
  // results bit-identical to cold and to the in-RAM oracle.
  ExperimentPlan WarmPlan = buildPlan({smallSpec()}, {}, &*Store);
  EXPECT_EQ(WarmPlan.numRecordings(), 0u);
  ResultSet Warm =
      runPlan(WarmPlan, /*Jobs=*/2, ReplayMode::Auto, TraceMode::Mapped);
  ExperimentPlan OraclePlan = buildPlan({smallSpec()});
  ResultSet Oracle =
      runPlan(OraclePlan, /*Jobs=*/1, ReplayMode::Auto, TraceMode::Memory);
  ASSERT_EQ(Warm.size(), Cold.size());
  ASSERT_EQ(Oracle.size(), Cold.size());
  for (size_t C = 0; C < Cold.size(); ++C) {
    SCOPED_TRACE("cell " + std::to_string(C));
    expectSameRuns(Cold.cells()[C].Runs, Warm.cells()[C].Runs);
    expectSameRuns(Cold.cells()[C].Runs, Oracle.cells()[C].Runs);
  }

  // Corrupt one trace entry *after* planning: the mapped open fails, the
  // run re-records streaming and re-publishes -- cold fallback, healed
  // store, identical results.
  ExperimentPlan HealPlan = buildPlan({smallSpec()}, {}, &*Store);
  EXPECT_EQ(HealPlan.numRecordings(), 0u);
  StoreKey Lost = traceStoreKey("ft", Scale::Test, 100);
  flipByte(entryFile(*Store, Lost));
  ResultSet Healed =
      runPlan(HealPlan, /*Jobs=*/2, ReplayMode::Auto, TraceMode::Mapped);
  for (size_t C = 0; C < Cold.size(); ++C) {
    SCOPED_TRACE("healed cell " + std::to_string(C));
    expectSameRuns(Cold.cells()[C].Runs, Healed.cells()[C].Runs);
  }
  EXPECT_TRUE(Store->contains(Lost));
  EXPECT_EQ(Store->gc(), 0u);
}

//===----------------------------------------------------------------------===//
// Concurrency
//===----------------------------------------------------------------------===//

TEST(StoreConcurrency, RacingWritersOfOneEntryAllSucceed) {
  TempStore Store;
  StoreKey Key = traceStoreKey("ft", Scale::Test, 1);
  // Identical payloads by construction, as in the real race: every writer
  // serialized the same deterministic recording.
  std::vector<uint8_t> Payload(4096);
  for (size_t I = 0; I < Payload.size(); ++I)
    Payload[I] = static_cast<uint8_t>(I * 31);

  std::vector<std::thread> Writers;
  std::atomic<int> Failures{0};
  for (int T = 0; T < 8; ++T)
    Writers.emplace_back([&] {
      for (int Round = 0; Round < 8; ++Round)
        if (!Store->put(Key, Payload))
          ++Failures;
    });
  for (std::thread &W : Writers)
    W.join();

  EXPECT_EQ(Failures.load(), 0);
  ASSERT_TRUE(Store->get(Key).has_value());
  EXPECT_EQ(*Store->get(Key), Payload);
  // No abandoned temp files: every write published or cleaned up.
  ASSERT_EQ(Store->entries().size(), 1u);
  EXPECT_EQ(Store->gc(), 0u);
}

//===----------------------------------------------------------------------===//
// Plans
//===----------------------------------------------------------------------===//

TEST(StorePlans, WarmPlanSchedulesNothingAndMatchesColdBitIdentically) {
  TempStore Store;

  // Cold: an empty store prunes nothing; the run populates it.
  ExperimentPlan ColdPlan = buildPlan({smallSpec()}, {}, &*Store);
  EXPECT_EQ(ColdPlan.store(), &*Store);
  EXPECT_EQ(ColdPlan.numStoredRecordings(), 0u);
  EXPECT_EQ(ColdPlan.numStoredArtifacts(), 0u);
  EXPECT_EQ(ColdPlan.numRecordings(), 2u);
  EXPECT_EQ(ColdPlan.numArtifactTasks(), 2u);
  EXPECT_EQ(ColdPlan.numProfileRecordings(), 1u);
  ResultSet Cold = runPlan(ColdPlan, /*Jobs=*/2);

  // Warm: every record/materialise stage is deleted from the DAG.
  ExperimentPlan WarmPlan = buildPlan({smallSpec()}, {}, &*Store);
  EXPECT_EQ(WarmPlan.numRecordings(), 0u);
  EXPECT_EQ(WarmPlan.numArtifactTasks(), 0u);
  EXPECT_EQ(WarmPlan.numProfileRecordings(), 0u);
  EXPECT_EQ(WarmPlan.numStoredRecordings(), 2u);
  EXPECT_EQ(WarmPlan.numStoredArtifacts(), 2u);
  ResultSet Warm = runPlan(WarmPlan, /*Jobs=*/2);

  // And a storeless control proves warm == cold == no store at all.
  ExperimentPlan PlainPlan = buildPlan({smallSpec()});
  ResultSet Plain = runPlan(PlainPlan, /*Jobs=*/1);

  ASSERT_EQ(Warm.size(), Cold.size());
  ASSERT_EQ(Plain.size(), Cold.size());
  for (size_t C = 0; C < Cold.size(); ++C) {
    SCOPED_TRACE("cell " + std::to_string(C));
    expectSameRuns(Cold.cells()[C].Runs, Warm.cells()[C].Runs);
    expectSameRuns(Cold.cells()[C].Runs, Plain.cells()[C].Runs);
  }
}

TEST(StorePlans, RunPlanHealsEntriesLostAfterPlanning) {
  TempStore Store;
  ExperimentPlan ColdPlan = buildPlan({smallSpec()}, {}, &*Store);
  ResultSet Cold = runPlan(ColdPlan, /*Jobs=*/1);

  // Plan warm, then corrupt one trace and one artifact bundle *after*
  // buildPlan consulted the store: the load tasks now miss and must fall
  // back to recording/profiling inline, bit-identically.
  ExperimentPlan WarmPlan = buildPlan({smallSpec()}, {}, &*Store);
  EXPECT_EQ(WarmPlan.numRecordings(), 0u);
  flipByte(entryFile(*Store, traceStoreKey("ft", Scale::Test, 100)));
  BenchmarkSetup Setup = paperSetup("ft");
  flipByte(entryFile(
      *Store, haloStoreKey("ft", Setup.ProfileScale, Setup.ProfileSeed,
                           Setup.Halo)));

  ResultSet Healed = runPlan(WarmPlan, /*Jobs=*/2);
  ASSERT_EQ(Healed.size(), Cold.size());
  for (size_t C = 0; C < Cold.size(); ++C) {
    SCOPED_TRACE("cell " + std::to_string(C));
    expectSameRuns(Cold.cells()[C].Runs, Healed.cells()[C].Runs);
  }
  // The fallback re-published: the store is whole again.
  EXPECT_TRUE(Store->contains(traceStoreKey("ft", Scale::Test, 100)));
  EXPECT_TRUE(Store->contains(haloStoreKey(
      "ft", Setup.ProfileScale, Setup.ProfileSeed, Setup.Halo)));
}
